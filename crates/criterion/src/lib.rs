//! Offline stand-in for the `criterion` crate.
//!
//! The build environment for this workspace has no access to crates.io, so
//! this path crate provides the small slice of the `criterion 0.5` API the
//! workspace's benches use: [`Criterion::benchmark_group`],
//! [`BenchmarkGroup::bench_function`] / [`throughput`](BenchmarkGroup::throughput)
//! / [`sample_size`](BenchmarkGroup::sample_size), [`black_box`], and the
//! [`criterion_group!`] / [`criterion_main!`] macros.
//!
//! It is a plain wall-clock harness: each benchmark is warmed up once, then
//! timed over `sample_size` samples, and a median/min/max summary is printed.
//! No statistical analysis, plotting, or baseline comparison is performed —
//! the goal is only that `cargo bench` compiles, runs, and reports useful
//! numbers without network access.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use std::time::{Duration, Instant};

pub use std::hint::black_box;

/// Throughput annotation for a benchmark group, used to report rates.
#[derive(Debug, Clone, Copy)]
pub enum Throughput {
    /// The benchmark processes this many abstract elements per iteration.
    Elements(u64),
    /// The benchmark processes this many bytes per iteration.
    Bytes(u64),
}

/// Top-level benchmark driver. One per process, passed to each bench fn.
#[derive(Debug, Default)]
pub struct Criterion {
    _private: (),
}

impl Criterion {
    /// Starts a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            _criterion: self,
            name: name.into(),
            sample_size: 30,
            throughput: None,
        }
    }
}

/// A named collection of benchmarks sharing configuration.
#[derive(Debug)]
pub struct BenchmarkGroup<'c> {
    _criterion: &'c mut Criterion,
    name: String,
    sample_size: usize,
    throughput: Option<Throughput>,
}

impl BenchmarkGroup<'_> {
    /// Sets how many timed samples to collect per benchmark (default 30).
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        assert!(n > 0, "sample_size must be positive");
        self.sample_size = n;
        self
    }

    /// Declares the amount of work one iteration performs, enabling
    /// rate reporting in the summary line.
    pub fn throughput(&mut self, throughput: Throughput) -> &mut Self {
        self.throughput = Some(throughput);
        self
    }

    /// Runs and times one benchmark.
    pub fn bench_function<F>(&mut self, id: impl Into<String>, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let id = id.into();
        let mut samples = Vec::with_capacity(self.sample_size);
        // One untimed warm-up pass, then `sample_size` timed samples.
        let mut bencher = Bencher {
            elapsed: Duration::ZERO,
        };
        f(&mut bencher);
        for _ in 0..self.sample_size {
            bencher.elapsed = Duration::ZERO;
            f(&mut bencher);
            samples.push(bencher.elapsed);
        }
        samples.sort();
        let median = samples[samples.len() / 2];
        let min = samples[0];
        let max = samples[samples.len() - 1];
        let rate = match self.throughput {
            Some(Throughput::Elements(n)) => {
                format!(" ({:.3e} elem/s)", n as f64 / median.as_secs_f64())
            }
            Some(Throughput::Bytes(n)) => {
                format!(" ({:.3e} B/s)", n as f64 / median.as_secs_f64())
            }
            None => String::new(),
        };
        println!(
            "{}/{}: median {:?} [min {:?}, max {:?}, n={}]{}",
            self.name, id, median, min, max, self.sample_size, rate
        );
        self
    }

    /// Ends the group. Retained for API compatibility; all reporting is
    /// done eagerly in [`bench_function`](Self::bench_function).
    pub fn finish(self) {}
}

/// Timing handle passed to each benchmark closure.
#[derive(Debug)]
pub struct Bencher {
    elapsed: Duration,
}

impl Bencher {
    /// Times `routine`, accumulating only the time spent inside it.
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        let start = Instant::now();
        black_box(routine());
        self.elapsed += start.elapsed();
    }
}

/// Declares a benchmark group function, mirroring criterion's macro.
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        fn $group() {
            let mut criterion = $crate::Criterion::default();
            $( $target(&mut criterion); )+
        }
    };
}

/// Declares the bench entry point, mirroring criterion's macro.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn group_runs_and_times() {
        let mut c = Criterion::default();
        let mut group = c.benchmark_group("smoke");
        group.sample_size(3);
        group.throughput(Throughput::Elements(10));
        let mut runs = 0u32;
        group.bench_function("noop", |b| {
            b.iter(|| {
                runs += 1;
            })
        });
        group.finish();
        // 1 warm-up + 3 samples.
        assert_eq!(runs, 4);
    }
}
