//! Offline stand-in for the `proptest` crate.
//!
//! The build environment has no crates.io access, so this path crate
//! re-implements the subset of proptest this workspace uses: the
//! [`proptest!`] macro (with `#![proptest_config(..)]`, multiple `#[test]`
//! functions, pattern arguments and `arg in strategy` bindings), range and
//! tuple strategies, [`collection::vec`], [`any`], `prop_assert!` and
//! `prop_assert_eq!`.
//!
//! Differences from upstream, by design:
//!
//! * cases are generated from a seed derived from the test name, so runs
//!   are fully deterministic — there is no persistence file and
//!   `*.proptest-regressions` files are ignored;
//! * failing cases are **not** shrunk; the failure message prints the
//!   exact inputs of the failing case instead.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use std::fmt;
use std::ops::{Range, RangeInclusive};

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Test-runner plumbing: configuration, RNG and failure type.
pub mod test_runner {
    use super::*;

    /// Number of random cases each property runs (overridable per block
    /// with `#![proptest_config(ProptestConfig::with_cases(n))]`).
    #[derive(Debug, Clone, Copy)]
    pub struct ProptestConfig {
        /// Cases to execute per property.
        pub cases: u32,
    }

    impl ProptestConfig {
        /// A config running `cases` cases per property.
        pub fn with_cases(cases: u32) -> Self {
            ProptestConfig { cases }
        }
    }

    impl Default for ProptestConfig {
        fn default() -> Self {
            ProptestConfig { cases: 64 }
        }
    }

    /// Deterministic per-test RNG (seeded from the test's name).
    #[derive(Debug, Clone)]
    pub struct TestRng(pub(crate) StdRng);

    impl TestRng {
        /// Builds the RNG for a named test: an FNV-1a hash of the name
        /// seeds the generator, so every run of the suite replays the
        /// same cases.
        pub fn for_test(name: &str) -> Self {
            let mut h: u64 = 0xcbf2_9ce4_8422_2325;
            for b in name.bytes() {
                h ^= b as u64;
                h = h.wrapping_mul(0x0000_0100_0000_01B3);
            }
            TestRng(StdRng::seed_from_u64(h))
        }
    }

    /// A failed property case (produced by `prop_assert!` and friends).
    #[derive(Debug, Clone)]
    pub struct TestCaseError(pub String);

    impl fmt::Display for TestCaseError {
        fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
            f.write_str(&self.0)
        }
    }
}

use test_runner::TestRng;

/// A generator of random values for one property argument.
///
/// Mirrors `proptest::strategy::Strategy` closely enough for
/// `impl Strategy<Value = T>` return types to work.
pub trait Strategy {
    /// The type of value this strategy produces.
    type Value: fmt::Debug;

    /// Draws one value.
    fn new_value(&self, rng: &mut TestRng) -> Self::Value;
}

macro_rules! range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn new_value(&self, rng: &mut TestRng) -> $t {
                rng.0.gen_range(self.clone())
            }
        }
        impl Strategy for RangeInclusive<$t> {
            type Value = $t;
            fn new_value(&self, rng: &mut TestRng) -> $t {
                rng.0.gen_range(self.clone())
            }
        }
    )*};
}

range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize, f64);

/// A strategy producing one fixed value (mirrors `proptest::strategy::Just`).
#[derive(Debug, Clone)]
pub struct Just<T: Clone + fmt::Debug>(pub T);

impl<T: Clone + fmt::Debug> Strategy for Just<T> {
    type Value = T;
    fn new_value(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

macro_rules! tuple_strategy {
    ($($name:ident),+) => {
        impl<$($name: Strategy),+> Strategy for ($($name,)+) {
            type Value = ($($name::Value,)+);
            #[allow(non_snake_case)]
            fn new_value(&self, rng: &mut TestRng) -> Self::Value {
                let ($($name,)+) = self;
                ($($name.new_value(rng),)+)
            }
        }
    };
}

tuple_strategy!(A);
tuple_strategy!(A, B);
tuple_strategy!(A, B, C);
tuple_strategy!(A, B, C, D);
tuple_strategy!(A, B, C, D, E);

/// Types with a canonical strategy over their full domain (see [`any`]).
pub trait Arbitrary: Sized + fmt::Debug {
    /// Strategy type returned by [`any`].
    type Strategy: Strategy<Value = Self>;
    /// The canonical strategy.
    fn arbitrary() -> Self::Strategy;
}

/// Canonical full-domain strategy for `T` (`any::<bool>()`, ...).
pub fn any<T: Arbitrary>() -> T::Strategy {
    T::arbitrary()
}

/// Full-domain strategy used by [`any`].
#[derive(Debug, Clone, Copy)]
pub struct AnyStrategy<T>(std::marker::PhantomData<T>);

macro_rules! arbitrary_via_standard {
    ($($t:ty),*) => {$(
        impl Strategy for AnyStrategy<$t> {
            type Value = $t;
            fn new_value(&self, rng: &mut TestRng) -> $t {
                rng.0.gen()
            }
        }
        impl Arbitrary for $t {
            type Strategy = AnyStrategy<$t>;
            fn arbitrary() -> Self::Strategy {
                AnyStrategy(std::marker::PhantomData)
            }
        }
    )*};
}

arbitrary_via_standard!(bool, u32, u64, f64);

/// Collection strategies (`prop::collection::vec`).
pub mod collection {
    use super::*;

    /// A length specification for [`vec`]: a fixed size or a range.
    #[derive(Debug, Clone)]
    pub struct SizeRange {
        lo: usize,
        hi_inclusive: usize,
    }

    impl From<usize> for SizeRange {
        fn from(n: usize) -> Self {
            SizeRange {
                lo: n,
                hi_inclusive: n,
            }
        }
    }

    impl From<Range<usize>> for SizeRange {
        fn from(r: Range<usize>) -> Self {
            assert!(r.start < r.end, "vec size range must be non-empty");
            SizeRange {
                lo: r.start,
                hi_inclusive: r.end - 1,
            }
        }
    }

    impl From<RangeInclusive<usize>> for SizeRange {
        fn from(r: RangeInclusive<usize>) -> Self {
            assert!(r.start() <= r.end(), "vec size range must be non-empty");
            SizeRange {
                lo: *r.start(),
                hi_inclusive: *r.end(),
            }
        }
    }

    /// Strategy for `Vec<S::Value>` with a length drawn from `size`.
    #[derive(Debug, Clone)]
    pub struct VecStrategy<S> {
        element: S,
        size: SizeRange,
    }

    /// Generates vectors whose elements come from `element` and whose
    /// length is drawn uniformly from `size`.
    pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
        VecStrategy {
            element,
            size: size.into(),
        }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn new_value(&self, rng: &mut TestRng) -> Self::Value {
            let len = rng.0.gen_range(self.size.lo..=self.size.hi_inclusive);
            (0..len).map(|_| self.element.new_value(rng)).collect()
        }
    }
}

/// Namespace alias matching `proptest::prelude::prop`.
pub mod prop {
    pub use crate::collection;
}

/// Everything a test module needs, matching `proptest::prelude::*`.
pub mod prelude {
    pub use crate::test_runner::ProptestConfig;
    pub use crate::{any, prop, prop_assert, prop_assert_eq, proptest, Just, Strategy};
}

/// Fails the current case unless `cond` holds.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        $crate::prop_assert!($cond, "assertion failed: {}", stringify!($cond))
    };
    ($cond:expr, $($fmt:tt)*) => {
        if !$cond {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError(
                format!($($fmt)*),
            ));
        }
    };
}

/// Fails the current case unless the two expressions are equal.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(
            *l == *r,
            "assertion failed: {} == {}\n  left: {:?}\n right: {:?}",
            stringify!($left),
            stringify!($right),
            l,
            r
        );
    }};
    ($left:expr, $right:expr, $($fmt:tt)+) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(
            *l == *r,
            "assertion failed: {} == {} ({})\n  left: {:?}\n right: {:?}",
            stringify!($left),
            stringify!($right),
            format!($($fmt)+),
            l,
            r
        );
    }};
}

/// Declares property tests: each `#[test] fn name(pat in strategy, ...)`
/// inside the block runs `config.cases` random cases.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_tests! { $cfg; $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_tests! {
            $crate::test_runner::ProptestConfig::default(); $($rest)*
        }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_tests {
    ($cfg:expr; $(
        $(#[$meta:meta])*
        fn $name:ident ( $($arg:pat in $strat:expr),+ $(,)? ) $body:block
    )*) => {$(
        $(#[$meta])*
        fn $name() {
            let config: $crate::test_runner::ProptestConfig = $cfg;
            let mut rng = $crate::test_runner::TestRng::for_test(concat!(
                module_path!(), "::", stringify!($name)
            ));
            for case in 0..config.cases {
                let mut inputs = String::new();
                $(
                    let value = $crate::Strategy::new_value(&$strat, &mut rng);
                    inputs.push_str(&format!(
                        "  {} = {:?}\n", stringify!($arg), value
                    ));
                    let $arg = value;
                )+
                let outcome: ::std::result::Result<(), $crate::test_runner::TestCaseError> =
                    (|| {
                        $body
                        #[allow(unreachable_code)]
                        ::std::result::Result::Ok(())
                    })();
                if let ::std::result::Result::Err(e) = outcome {
                    panic!(
                        "property '{}' failed on case {}/{}:\n{}\ninputs:\n{}",
                        stringify!($name), case + 1, config.cases, e, inputs
                    );
                }
            }
        }
    )*};
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(32))]

        /// Range strategies respect their bounds.
        #[test]
        fn ranges_in_bounds(x in 3u32..10, y in -2.0f64..=2.0) {
            prop_assert!((3..10).contains(&x));
            prop_assert!((-2.0..=2.0).contains(&y));
        }

        /// Vec strategies respect the size spec, fixed and ranged.
        #[test]
        fn vec_sizes(
            v in prop::collection::vec(0u64..5, 3),
            w in prop::collection::vec(any::<bool>(), 1..4),
        ) {
            prop_assert_eq!(v.len(), 3);
            prop_assert!((1..4).contains(&w.len()));
        }

        /// Tuple strategies and patterns destructure.
        #[test]
        fn tuples_destructure((a, b) in (0u32..4, 0u32..4)) {
            prop_assert!(a < 4 && b < 4);
        }
    }

    // No `#[test]` meta: expands to a plain fn that `failure_reports_inputs`
    // drives through catch_unwind to inspect the failure message.
    proptest! {
        #![proptest_config(ProptestConfig::with_cases(4))]
        fn always_fails(x in 0u32..2) {
            prop_assert!(x > 100, "x was {}", x);
        }
    }

    #[test]
    fn failure_reports_inputs() {
        let result = std::panic::catch_unwind(always_fails);
        let msg = *result.expect_err("must fail").downcast::<String>().unwrap();
        assert!(msg.contains("always_fails"), "{msg}");
        assert!(msg.contains("x ="), "{msg}");
    }

    #[test]
    fn deterministic_across_runs() {
        let mut a = crate::test_runner::TestRng::for_test("t");
        let mut b = crate::test_runner::TestRng::for_test("t");
        let s = 0.0f64..1.0;
        for _ in 0..16 {
            assert_eq!(s.new_value(&mut a), s.new_value(&mut b));
        }
    }
}
