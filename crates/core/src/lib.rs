//! # pwm-perceptron — a power-elastic mixed-signal perceptron
//!
//! Library reproduction of *"A Pulse Width Modulation based Power-elastic
//! and Robust Mixed-signal Perceptron Design"* (Mileiko, Shafik, Yakovlev,
//! Edwards — DATE 2019). The perceptron performs its multiply–accumulate
//! in the **temporal domain**: inputs are encoded as PWM duty cycles,
//! weights are small integers that enable binary-scaled AND cells, and the
//! weighted sum appears as the average voltage on a shared capacitor
//! (paper Eq. 2). Because a duty cycle survives supply-amplitude and
//! frequency variation unharmed, the resulting classifier keeps working
//! from unregulated energy-harvesting supplies — it is *power-elastic*.
//!
//! ## Layers
//!
//! * [`DutyCycle`], [`WeightVector`], [`encode`] — the temporal encoding.
//! * [`eval`] — three interchangeable evaluators for the weighted adder:
//!   [`eval::AnalyticEvaluator`] (paper Eq. 2, instant),
//!   [`eval::SwitchLevelEvaluator`] (periodic-steady-state switch model,
//!   microseconds), and [`eval::CircuitEvaluator`] (full transistor-level
//!   transient on [`mssim`], the reference) — all behind one
//!   [`eval::Evaluator`] trait with batched entry points.
//! * [`infer`] — the batched inference engine: tiered dispatch over the
//!   evaluators, a duty-quantized memo cache, and serving telemetry.
//! * [`resilience`] — deadline/attempt budgets, per-tier circuit
//!   breakers, the tier-demotion ladder, and a deterministic chaos
//!   evaluator for fault-injection testing of the serving stack.
//! * [`PwmPerceptron`] / [`DifferentialPerceptron`] — classification with
//!   a comparator against an absolute or ratiometric reference.
//! * [`train`] — hardware-in-the-loop integer perceptron learning
//!   (pocket algorithm).
//! * [`elasticity`], [`robustness`], [`energy`] — the paper's power
//!   elasticity, parametric-variation and power analyses as reusable
//!   sweeps.
//! * [`dataset`] — synthetic micro-edge classification tasks.
//!
//! ## Quickstart
//!
//! ```
//! use pwm_perceptron::eval::AnalyticEvaluator;
//! use pwm_perceptron::{DutyCycle, PwmPerceptron, Reference, WeightVector};
//!
//! # fn main() -> Result<(), pwm_perceptron::CoreError> {
//! let evaluator = AnalyticEvaluator::paper(); // Eq. 2 at Vdd = 2.5 V
//! let weights = WeightVector::new(vec![7, 7, 7], 3)?;
//! let mut p = PwmPerceptron::new(evaluator, weights, Reference::ratiometric(0.5));
//! let x = [DutyCycle::new(0.9), DutyCycle::new(0.8), DutyCycle::new(0.7)];
//! assert!(p.classify(&x)?); // strong inputs, full weights → fires
//! let weak = [DutyCycle::new(0.1), DutyCycle::new(0.1), DutyCycle::new(0.2)];
//! assert!(!p.classify(&weak)?);
//! # Ok(())
//! # }
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod comparator;
pub mod dataset;
pub mod duty;
pub mod elasticity;
pub mod encode;
pub mod energy;
pub mod error;
pub mod eval;
pub mod faults;
pub mod infer;
pub mod layer;
pub mod metrics;
pub mod multiclass;
pub mod perceptron;
pub mod resilience;
pub mod robustness;
pub mod train;
pub mod weight;

pub use comparator::Comparator;
pub use dataset::Dataset;
pub use duty::DutyCycle;
pub use error::CoreError;
pub use eval::Evaluator;
pub use faults::{
    switch_adder_campaign, switch_adder_campaign_observed, switch_adder_triage, CampaignConfig,
    CampaignReport, FaultClass, FaultOutcome, TriageReport, TriageRow, TriageStats,
};
pub use infer::{Eval, InferenceEngine, Query, Tier, TierPolicy};
pub use layer::{HardLayer, Mlp};
pub use multiclass::WtaClassifier;
pub use perceptron::{DifferentialPerceptron, PwmPerceptron, Reference};
pub use resilience::{ChaosConfig, ChaosEvaluator, ResilStats, ResiliencePolicy};
pub use weight::{SignedWeightVector, WeightVector};

/// Curated re-exports — the stable serving surface in one `use`.
///
/// ```
/// use pwm_perceptron::prelude::*;
/// ```
pub mod prelude {
    pub use crate::comparator::Comparator;
    pub use crate::duty::DutyCycle;
    pub use crate::error::CoreError;
    pub use crate::eval::{
        AnalyticEvaluator, CircuitEvaluator, Evaluator, NoisyEvaluator, SwitchLevelEvaluator,
    };
    pub use crate::infer::{
        CacheStats, Eval, InferReport, InferenceEngine, MemoCache, Query, Tier, TierPolicy,
    };
    pub use crate::layer::{HardLayer, Mlp};
    pub use crate::multiclass::WtaClassifier;
    pub use crate::perceptron::{DifferentialPerceptron, PwmPerceptron, Reference};
    pub use crate::resilience::{
        chaos_fault_at, BreakerConfig, BreakerState, BreakerTransition, ChaosConfig,
        ChaosEvaluator, ChaosFault, CircuitBreaker, Clock, DegradeReason, ManualClock,
        MonotonicClock, ResilStats, ResiliencePolicy,
    };
    pub use crate::weight::{SignedWeightVector, WeightVector};
}
