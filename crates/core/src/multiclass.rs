//! Multi-class classification by winner-take-all.
//!
//! The paper's architecture generalises beyond binary decisions without
//! new circuit ideas: instantiate one weighted adder per class and let a
//! comparator tree pick the largest output (an analog winner-take-all).
//! Because every adder output is ratiometric in `Vdd`, the *argmax* is
//! supply-independent just like the binary decision.

use mssim::units::Volts;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use crate::duty::DutyCycle;
use crate::error::CoreError;
use crate::eval::Evaluator;
use crate::infer::Query;
use crate::weight::WeightVector;

/// A winner-take-all classifier: one unsigned weight vector per class,
/// decision = class of the largest adder output.
#[derive(Debug, Clone)]
pub struct WtaClassifier<E> {
    evaluator: E,
    classes: Vec<WeightVector>,
}

impl<E: Evaluator> WtaClassifier<E> {
    /// Creates a classifier.
    ///
    /// # Errors
    ///
    /// Returns [`CoreError::DimensionMismatch`] if fewer than two classes
    /// are given or the weight vectors disagree on dimension.
    pub fn new(evaluator: E, classes: Vec<WeightVector>) -> Result<Self, CoreError> {
        if classes.len() < 2 {
            return Err(CoreError::DimensionMismatch {
                expected: 2,
                got: classes.len(),
            });
        }
        let dim = classes[0].len();
        for c in &classes {
            if c.len() != dim {
                return Err(CoreError::DimensionMismatch {
                    expected: dim,
                    got: c.len(),
                });
            }
        }
        Ok(WtaClassifier { evaluator, classes })
    }

    /// Number of classes.
    pub fn class_count(&self) -> usize {
        self.classes.len()
    }

    /// Number of inputs.
    pub fn input_len(&self) -> usize {
        self.classes[0].len()
    }

    /// Per-class weight vectors.
    pub fn classes(&self) -> &[WeightVector] {
        &self.classes
    }

    /// Mutable access for training.
    pub fn classes_mut(&mut self) -> &mut [WeightVector] {
        &mut self.classes
    }

    /// All class adder outputs, through one batched evaluator call (the
    /// class order matches the historical sequential path).
    ///
    /// # Errors
    ///
    /// Propagates evaluator errors.
    pub fn scores(&self, duties: &[DutyCycle]) -> Result<Vec<Volts>, CoreError> {
        let queries = self
            .classes
            .iter()
            .map(|w| Query::new(duties.to_vec(), w.clone()))
            .collect::<Result<Vec<_>, _>>()?;
        self.evaluator
            .evaluate_batch(&queries)
            .into_iter()
            .map(|r| r.map(|e| e.vout))
            .collect()
    }

    /// The winning class index (ties broken toward the lower index, as a
    /// comparator tree would).
    ///
    /// # Errors
    ///
    /// Propagates evaluator errors.
    pub fn classify(&self, duties: &[DutyCycle]) -> Result<usize, CoreError> {
        let scores = self.scores(duties)?;
        let mut best = 0usize;
        for (i, s) in scores.iter().enumerate().skip(1) {
            if s.value() > scores[best].value() {
                best = i;
            }
        }
        Ok(best)
    }

    /// Fraction of `(duties, class)` pairs classified correctly.
    ///
    /// # Errors
    ///
    /// Returns [`CoreError::EmptyDataset`] for no samples and propagates
    /// evaluator errors.
    pub fn accuracy(&self, samples: &[(Vec<DutyCycle>, usize)]) -> Result<f64, CoreError> {
        if samples.is_empty() {
            return Err(CoreError::EmptyDataset);
        }
        let mut correct = 0usize;
        for (duties, label) in samples {
            if self.classify(duties)? == *label {
                correct += 1;
            }
        }
        Ok(correct as f64 / samples.len() as f64)
    }
}

/// One-vs-rest perceptron training for the WTA bank: on a mistake, the
/// correct class's weights grow along the input and the winning wrong
/// class's weights shrink — the classic multi-class perceptron rule, with
/// shadow weights quantised to the hardware integers every update.
///
/// Returns the final training accuracy.
///
/// # Errors
///
/// Returns [`CoreError::EmptyDataset`]/[`CoreError::DimensionMismatch`]
/// on malformed input and propagates evaluator errors.
pub fn train_wta<E: Evaluator>(
    classifier: &mut WtaClassifier<E>,
    samples: &[(Vec<DutyCycle>, usize)],
    epochs: usize,
    learning_rate: f64,
    seed: u64,
) -> Result<f64, CoreError> {
    if samples.is_empty() {
        return Err(CoreError::EmptyDataset);
    }
    for (duties, label) in samples {
        if duties.len() != classifier.input_len() {
            return Err(CoreError::DimensionMismatch {
                expected: classifier.input_len(),
                got: duties.len(),
            });
        }
        if *label >= classifier.class_count() {
            return Err(CoreError::DimensionMismatch {
                expected: classifier.class_count(),
                got: *label,
            });
        }
    }
    let bits = classifier.classes()[0].bits();
    let w_max = classifier.classes()[0].max_weight() as f64;
    let mut shadow: Vec<Vec<f64>> = classifier
        .classes()
        .iter()
        .map(|w| w.iter().map(|&x| x as f64).collect())
        .collect();
    let mut rng = StdRng::seed_from_u64(seed);
    let mut order: Vec<usize> = (0..samples.len()).collect();

    let mut best_acc = classifier.accuracy(samples)?;
    let mut best = classifier.classes().to_vec();
    for _ in 0..epochs {
        for i in (1..order.len()).rev() {
            let j = rng.gen_range(0..=i);
            order.swap(i, j);
        }
        for &i in &order {
            let (duties, label) = &samples[i];
            let pred = classifier.classify(duties)?;
            if pred == *label {
                continue;
            }
            for (k, d) in duties.iter().enumerate() {
                shadow[*label][k] =
                    (shadow[*label][k] + learning_rate * d.value()).clamp(0.0, w_max);
                shadow[pred][k] = (shadow[pred][k] - learning_rate * d.value()).clamp(0.0, w_max);
            }
            for (class, sh) in shadow.iter().enumerate() {
                let quantised: Vec<u32> = sh.iter().map(|&w| w.round() as u32).collect();
                classifier.classes_mut()[class] =
                    WeightVector::new(quantised, bits).expect("clamped weights fit");
            }
        }
        let acc = classifier.accuracy(samples)?;
        if acc > best_acc {
            best_acc = acc;
            best = classifier.classes().to_vec();
        }
        if best_acc >= 1.0 {
            break;
        }
    }
    for (class, w) in best.into_iter().enumerate() {
        classifier.classes_mut()[class] = w;
    }
    Ok(best_acc)
}

/// Generates a `k`-class dataset where class `c` concentrates its energy
/// in input band `c` (a toy spectral classifier): linearly separable by
/// one-hot-ish positive weights.
///
/// # Panics
///
/// Panics if `classes < 2`, `classes > dim`, or `n == 0`.
pub fn banded_dataset(
    n: usize,
    dim: usize,
    classes: usize,
    seed: u64,
) -> Vec<(Vec<DutyCycle>, usize)> {
    assert!(classes >= 2 && classes <= dim, "need 2..=dim classes");
    assert!(n > 0, "need at least one sample");
    let mut rng = StdRng::seed_from_u64(seed);
    let band = dim / classes;
    (0..n)
        .map(|i| {
            let class = i % classes;
            let duties: Vec<DutyCycle> = (0..dim)
                .map(|k| {
                    let in_band =
                        k / band == class || (class == classes - 1 && k / band >= classes);
                    let base = if in_band { 0.75 } else { 0.2 };
                    DutyCycle::clamped(base + rng.gen_range(-0.1..0.1))
                })
                .collect();
            (duties, class)
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::eval::{AnalyticEvaluator, SwitchLevelEvaluator};

    #[test]
    fn construction_validation() {
        let e = AnalyticEvaluator::paper();
        let w = WeightVector::maxed(3, 3);
        assert!(WtaClassifier::new(e, vec![w.clone()]).is_err());
        let e = AnalyticEvaluator::paper();
        let ragged = WeightVector::maxed(2, 3);
        assert!(WtaClassifier::new(e, vec![w, ragged]).is_err());
    }

    #[test]
    fn hand_built_wta_picks_the_hot_band() {
        let e = AnalyticEvaluator::paper();
        // Class 0 looks at inputs {0,1}, class 1 at {2,3}.
        let c0 = WeightVector::new(vec![7, 7, 0, 0], 3).unwrap();
        let c1 = WeightVector::new(vec![0, 0, 7, 7], 3).unwrap();
        let wta = WtaClassifier::new(e, vec![c0, c1]).unwrap();
        let low_hot: Vec<DutyCycle> = [0.9, 0.8, 0.1, 0.2].map(DutyCycle::new).to_vec();
        let high_hot: Vec<DutyCycle> = [0.1, 0.2, 0.9, 0.8].map(DutyCycle::new).to_vec();
        assert_eq!(wta.classify(&low_hot).unwrap(), 0);
        assert_eq!(wta.classify(&high_hot).unwrap(), 1);
        let scores = wta.scores(&low_hot).unwrap();
        assert!(scores[0].value() > scores[1].value());
    }

    #[test]
    fn training_learns_three_bands() {
        let samples = banded_dataset(120, 6, 3, 5);
        let e = AnalyticEvaluator::paper();
        let mut wta = WtaClassifier::new(
            e,
            vec![
                WeightVector::zeros(6, 3),
                WeightVector::zeros(6, 3),
                WeightVector::zeros(6, 3),
            ],
        )
        .unwrap();
        let acc = train_wta(&mut wta, &samples, 40, 1.0, 9).unwrap();
        assert!(acc > 0.95, "training accuracy {acc}");
        // Held-out data from the same generator.
        let test = banded_dataset(60, 6, 3, 77);
        let test_acc = wta.accuracy(&test).unwrap();
        assert!(test_acc > 0.9, "test accuracy {test_acc}");
    }

    #[test]
    fn argmax_is_supply_independent() {
        // Same trained bank evaluated at half supply with the hardware
        // model: the winner never changes.
        let samples = banded_dataset(40, 4, 2, 3);
        let mut nominal = WtaClassifier::new(
            SwitchLevelEvaluator::paper(),
            vec![WeightVector::zeros(4, 3), WeightVector::zeros(4, 3)],
        )
        .unwrap();
        train_wta(&mut nominal, &samples, 30, 1.0, 4).unwrap();
        let low = WtaClassifier::new(
            SwitchLevelEvaluator::paper().with_vdd(Volts(1.25)),
            nominal.classes().to_vec(),
        )
        .unwrap();
        for (duties, _) in &samples {
            assert_eq!(
                nominal.classify(duties).unwrap(),
                low.classify(duties).unwrap(),
                "argmax must survive the supply drop"
            );
        }
    }

    #[test]
    fn training_rejects_bad_labels() {
        let e = AnalyticEvaluator::paper();
        let mut wta = WtaClassifier::new(
            e,
            vec![WeightVector::zeros(2, 3), WeightVector::zeros(2, 3)],
        )
        .unwrap();
        let bad = vec![(vec![DutyCycle::new(0.5); 2], 5usize)];
        assert!(matches!(
            train_wta(&mut wta, &bad, 5, 1.0, 0),
            Err(CoreError::DimensionMismatch { .. })
        ));
    }
}
