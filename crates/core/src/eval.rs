//! Weighted-adder evaluators.
//!
//! The perceptron's forward pass — duty cycles × weights → output voltage
//! — can be computed at three fidelities, all implementing [`Evaluator`]:
//!
//! | Evaluator | Model | Cost per call | Use for |
//! |---|---|---|---|
//! | [`AnalyticEvaluator`] | paper Eq. 2 | ~ns | training, sanity |
//! | [`SwitchLevelEvaluator`] | periodic-steady-state switch model | ~µs | training with hardware effects, Monte Carlo |
//! | [`CircuitEvaluator`] | transistor-level transient ([`mssim`]) | ~s | reference measurements (Table II) |
//!
//! The tiers agree within a few per cent (verified by tests and the
//! `xval` experiment); the differences *are* the hardware effects the
//! paper discusses (on-resistance asymmetry, edge ramps, square-law
//! nonlinearity).

use std::cell::RefCell;
use std::collections::HashMap;

use mssim::prelude::{Hertz, RescuePolicy, Volts};
use pwmcell::{analytic, AdderSpec, AdderTestbench, PwmNode, SimQuality, Technology};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use crate::duty::DutyCycle;
use crate::error::CoreError;
use crate::infer::{Eval, Query, Tier, ANALYTIC_ERROR_BOUND};
use crate::weight::WeightVector;

/// Computes the weighted-adder output voltage for a set of PWM inputs.
///
/// Implementations must be deterministic for the same inputs unless they
/// explicitly model noise (see [`NoisyEvaluator`]).
///
/// The serving surface is [`Evaluator::evaluate`] /
/// [`Evaluator::evaluate_batch`] over [`Query`]/[`Eval`]; `vout` remains
/// as the low-level single-shot entry point the defaults are built on.
/// Implementations override `evaluate_batch` where amortization exists —
/// the circuit tier reuses one prepared testbench per weight vector and
/// fans measurements over the work-stealing sweep driver.
pub trait Evaluator {
    /// Average output voltage for the given duty cycles and weights.
    ///
    /// # Errors
    ///
    /// Returns [`CoreError::DimensionMismatch`] if `duties` and `weights`
    /// differ in length, or [`CoreError::Simulation`] if an underlying
    /// circuit simulation fails.
    fn vout(&self, duties: &[DutyCycle], weights: &WeightVector) -> Result<Volts, CoreError>;

    /// The supply voltage this evaluator models (needed to resolve
    /// ratiometric references).
    fn vdd(&self) -> Volts;

    /// The fidelity tier this evaluator answers at.
    fn tier(&self) -> Tier {
        Tier::Analytic
    }

    /// Answers one [`Query`].
    ///
    /// # Errors
    ///
    /// As for [`Evaluator::vout`].
    fn evaluate(&self, query: &Query) -> Result<Eval, CoreError> {
        Ok(Eval {
            vout: self.vout(query.duties(), query.weights())?,
            tier: self.tier(),
            cached: false,
            degraded: false,
            error_bound: 0.0,
        })
    }

    /// Answers a batch of queries, one result per query in order.
    ///
    /// The default maps [`Evaluator::evaluate`] sequentially; tiers with
    /// per-batch amortization or internal parallelism override it.
    fn evaluate_batch(&self, queries: &[Query]) -> Vec<Result<Eval, CoreError>> {
        queries.iter().map(|q| self.evaluate(q)).collect()
    }
}

fn check_dims(duties: &[DutyCycle], weights: &WeightVector) -> Result<(), CoreError> {
    if duties.len() != weights.len() {
        return Err(CoreError::DimensionMismatch {
            expected: weights.len(),
            got: duties.len(),
        });
    }
    Ok(())
}

/// The paper's Eq. 2 — the ideal, instantaneous model.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct AnalyticEvaluator {
    vdd: Volts,
}

impl AnalyticEvaluator {
    /// Eq. 2 at an arbitrary supply.
    pub fn new(vdd: Volts) -> Self {
        AnalyticEvaluator { vdd }
    }

    /// Eq. 2 at the paper's 2.5 V.
    pub fn paper() -> Self {
        AnalyticEvaluator::new(Volts(2.5))
    }
}

impl Evaluator for AnalyticEvaluator {
    fn vout(&self, duties: &[DutyCycle], weights: &WeightVector) -> Result<Volts, CoreError> {
        check_dims(duties, weights)?;
        let v = analytic::adder_vout(
            self.vdd.value(),
            &DutyCycle::to_raw(duties),
            weights.as_slice(),
            weights.bits(),
        );
        Ok(Volts(v))
    }

    fn vdd(&self) -> Volts {
        self.vdd
    }
}

/// The switch-level periodic-steady-state model — fast enough for
/// hardware-in-the-loop training, faithful to on-resistance effects.
#[derive(Debug, Clone, PartialEq)]
pub struct SwitchLevelEvaluator {
    tech: Technology,
    frequency: Hertz,
    vdd: Volts,
}

impl SwitchLevelEvaluator {
    /// Evaluator at the technology's default supply and frequency.
    pub fn new(tech: Technology) -> Self {
        let frequency = tech.frequency;
        let vdd = tech.vdd;
        SwitchLevelEvaluator {
            tech,
            frequency,
            vdd,
        }
    }

    /// The paper's Table I technology.
    pub fn paper() -> Self {
        Self::new(Technology::umc65_like())
    }

    /// Overrides the supply voltage.
    pub fn with_vdd(mut self, vdd: Volts) -> Self {
        self.vdd = vdd;
        self
    }

    /// Overrides the PWM frequency.
    pub fn with_frequency(mut self, frequency: Hertz) -> Self {
        self.frequency = frequency;
        self
    }

    /// The underlying technology.
    pub fn technology(&self) -> &Technology {
        &self.tech
    }
}

impl Evaluator for SwitchLevelEvaluator {
    fn vout(&self, duties: &[DutyCycle], weights: &WeightVector) -> Result<Volts, CoreError> {
        check_dims(duties, weights)?;
        let node = PwmNode::weighted_adder(
            &self.tech,
            &DutyCycle::to_raw(duties),
            weights.as_slice(),
            weights.bits(),
            self.frequency.value(),
            self.vdd.value(),
            self.tech.cout_adder.value(),
        );
        Ok(Volts(node.steady_state_average()))
    }

    fn vdd(&self) -> Volts {
        self.vdd
    }

    fn tier(&self) -> Tier {
        Tier::SwitchLevel
    }

    fn evaluate_batch(&self, queries: &[Query]) -> Vec<Result<Eval, CoreError>> {
        // The PSS model is pure computation — fan it over the sweep
        // driver's worker pool.
        mssim::sweep::sweep(queries, |q, _| self.evaluate(q))
    }
}

/// The transistor-level reference: builds the full Fig. 3 adder and runs
/// an [`mssim`] transient for every evaluation. Slow but authoritative.
///
/// With [`CircuitEvaluator::with_rescue`], transient solver trouble is
/// first handled by the solver's own rescue ladder; a run that still ends
/// early is served as a *degraded* answer (averaged over the clamped
/// window, flagged [`Eval::degraded`] with the analytic error bound)
/// instead of an error — the measurement that exists beats no measurement.
#[derive(Debug, Clone)]
pub struct CircuitEvaluator {
    tech: Technology,
    quality: SimQuality,
    frequency: Hertz,
    vdd: Volts,
    rescue: Option<RescuePolicy>,
}

impl CircuitEvaluator {
    /// Evaluator at the technology's defaults with the given simulation
    /// quality.
    pub fn new(tech: Technology, quality: SimQuality) -> Self {
        let frequency = tech.frequency;
        let vdd = tech.vdd;
        CircuitEvaluator {
            tech,
            quality,
            frequency,
            vdd,
            rescue: None,
        }
    }

    /// Overrides the supply voltage.
    pub fn with_vdd(mut self, vdd: Volts) -> Self {
        self.vdd = vdd;
        self
    }

    /// Overrides the PWM frequency.
    pub fn with_frequency(mut self, frequency: Hertz) -> Self {
        self.frequency = frequency;
        self
    }

    /// Enables the transient rescue ladder: partially-rescued runs are
    /// served as degraded answers instead of errors.
    pub fn with_rescue(mut self, policy: RescuePolicy) -> Self {
        self.rescue = Some(policy);
        self
    }

    /// Maps a rescued measurement to an [`Eval`]: a partial rescue is a
    /// degraded circuit answer carrying the analytic bound (the loosest
    /// certified bound — the clamped-window average is at least as close
    /// to the true steady state as the closed form is).
    fn rescued_eval(m: pwmcell::RescuedAdderMeasurement) -> Eval {
        Eval {
            vout: m.measurement.vout,
            tier: Tier::Circuit,
            cached: false,
            degraded: m.partial,
            error_bound: if m.partial { ANALYTIC_ERROR_BOUND } else { 0.0 },
        }
    }
}

impl Evaluator for CircuitEvaluator {
    fn vout(&self, duties: &[DutyCycle], weights: &WeightVector) -> Result<Volts, CoreError> {
        check_dims(duties, weights)?;
        let spec = AdderSpec::new(weights.len(), weights.bits());
        let tb = AdderTestbench::new(&self.tech, spec);
        let m = tb.measure_at(
            &DutyCycle::to_raw(duties),
            weights.as_slice(),
            self.frequency,
            self.vdd,
            &self.quality,
        )?;
        Ok(m.vout)
    }

    fn vdd(&self) -> Volts {
        self.vdd
    }

    fn tier(&self) -> Tier {
        Tier::Circuit
    }

    fn evaluate(&self, query: &Query) -> Result<Eval, CoreError> {
        let Some(policy) = &self.rescue else {
            return Ok(Eval {
                vout: self.vout(query.duties(), query.weights())?,
                tier: Tier::Circuit,
                cached: false,
                degraded: false,
                error_bound: 0.0,
            });
        };
        check_dims(query.duties(), query.weights())?;
        let weights = query.weights();
        let spec = AdderSpec::new(weights.len(), weights.bits());
        let tb = AdderTestbench::new(&self.tech, spec);
        let runner = tb.batch_runner(weights.as_slice(), self.frequency, self.vdd, &self.quality);
        let m = runner.measure_rescued(&DutyCycle::to_raw(query.duties()), policy)?;
        Ok(Self::rescued_eval(m))
    }

    fn evaluate_batch(&self, queries: &[Query]) -> Vec<Result<Eval, CoreError>> {
        // Group query indices by weight vector so netlist construction
        // and transient planning are paid once per group; each group's
        // duty vectors then fan over the sweep driver against one
        // prepared runner (bitwise identical to measure_at).
        let mut groups: HashMap<(Vec<u32>, u32), Vec<usize>> = HashMap::new();
        for (i, q) in queries.iter().enumerate() {
            groups
                .entry((q.weights().as_slice().to_vec(), q.weights().bits()))
                .or_default()
                .push(i);
        }
        let mut out: Vec<Option<Result<Eval, CoreError>>> = vec![None; queries.len()];
        for ((weights, bits), indices) in groups {
            let spec = AdderSpec::new(weights.len(), bits);
            let tb = AdderTestbench::new(&self.tech, spec);
            let runner = tb.batch_runner(&weights, self.frequency, self.vdd, &self.quality);
            let duty_sets: Vec<Vec<f64>> = indices
                .iter()
                .map(|&i| DutyCycle::to_raw(queries[i].duties()))
                .collect();
            let measured = mssim::sweep::sweep(&duty_sets, |d, _| match &self.rescue {
                Some(policy) => runner.measure_rescued(d, policy),
                None => runner.measure(d).map(|m| pwmcell::RescuedAdderMeasurement {
                    measurement: m,
                    partial: false,
                    rescue_attempts: 0,
                }),
            });
            for (&i, m) in indices.iter().zip(measured) {
                out[i] = Some(m.map(Self::rescued_eval).map_err(CoreError::from));
            }
        }
        out.into_iter()
            .map(|r| {
                r.unwrap_or(Err(CoreError::Internal {
                    reason: "circuit batch grouping left a query unanswered",
                }))
            })
            .collect()
    }
}

/// Wraps any evaluator with additive Gaussian output noise — models
/// comparator input noise and residual ripple for robustness studies.
///
/// Deterministic for a given seed. Single-shot calls draw from one
/// sequential RNG stream (interior mutability, so the wrapper is not
/// `Sync`; clone per thread for parallel sweeps). Batched calls instead
/// derive an independent RNG per query index via the sweep driver's
/// SplitMix64 hash, so [`Evaluator::evaluate_batch`] is order-invariant
/// and bitwise-reproducible across worker counts.
#[derive(Debug)]
pub struct NoisyEvaluator<E> {
    inner: E,
    sigma: f64,
    seed: u64,
    rng: RefCell<StdRng>,
}

impl<E: Evaluator> NoisyEvaluator<E> {
    /// Adds zero-mean Gaussian noise of standard deviation `sigma` volts.
    ///
    /// # Panics
    ///
    /// Panics if `sigma` is negative or not finite.
    pub fn new(inner: E, sigma: f64, seed: u64) -> Self {
        assert!(
            sigma >= 0.0 && sigma.is_finite(),
            "noise sigma must be non-negative"
        );
        NoisyEvaluator {
            inner,
            sigma,
            seed,
            rng: RefCell::new(StdRng::seed_from_u64(seed)),
        }
    }

    /// The wrapped evaluator.
    pub fn inner(&self) -> &E {
        &self.inner
    }

    /// Box–Muller: two uniforms → one normal deviate.
    fn gauss(rng: &mut StdRng) -> f64 {
        let u1: f64 = rng.gen_range(f64::EPSILON..1.0);
        let u2: f64 = rng.gen_range(0.0..1.0);
        (-2.0 * u1.ln()).sqrt() * (2.0 * std::f64::consts::PI * u2).cos()
    }
}

impl<E: Evaluator> Evaluator for NoisyEvaluator<E> {
    fn vout(&self, duties: &[DutyCycle], weights: &WeightVector) -> Result<Volts, CoreError> {
        let clean = self.inner.vout(duties, weights)?;
        let z = Self::gauss(&mut self.rng.borrow_mut());
        Ok(Volts(clean.value() + self.sigma * z))
    }

    fn vdd(&self) -> Volts {
        self.inner.vdd()
    }

    fn tier(&self) -> Tier {
        self.inner.tier()
    }

    fn evaluate_batch(&self, queries: &[Query]) -> Vec<Result<Eval, CoreError>> {
        // Per-query seeding on (base seed, index) keeps the batch
        // deterministic regardless of evaluation order or worker count —
        // the sequential `vout` stream is deliberately not consumed.
        self.inner
            .evaluate_batch(queries)
            .into_iter()
            .enumerate()
            .map(|(i, r)| {
                r.map(|e| {
                    let mut rng = mssim::sweep::trial_rng(self.seed, i);
                    Eval {
                        vout: Volts(e.vout.value() + self.sigma * Self::gauss(&mut rng)),
                        ..e
                    }
                })
            })
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn duties(raw: &[f64]) -> Vec<DutyCycle> {
        raw.iter().map(|&d| DutyCycle::new(d)).collect()
    }

    #[test]
    fn analytic_matches_eq2_rows() {
        let e = AnalyticEvaluator::paper();
        let w = WeightVector::new(vec![7, 7, 7], 3).unwrap();
        let v = e.vout(&duties(&[0.7, 0.8, 0.9]), &w).unwrap();
        assert!((v.value() - 2.0).abs() < 0.01);
        assert_eq!(e.vdd(), Volts(2.5));
    }

    #[test]
    fn dimension_mismatch_is_reported() {
        let e = AnalyticEvaluator::paper();
        let w = WeightVector::new(vec![7, 7, 7], 3).unwrap();
        let err = e.vout(&duties(&[0.5]), &w).unwrap_err();
        assert!(matches!(
            err,
            CoreError::DimensionMismatch {
                expected: 3,
                got: 1
            }
        ));
    }

    #[test]
    fn switch_level_agrees_with_analytic_within_tolerance() {
        let analytic = AnalyticEvaluator::paper();
        let switch = SwitchLevelEvaluator::paper();
        let w = WeightVector::new(vec![5, 6, 7], 3).unwrap();
        let d = duties(&[0.2, 0.6, 0.8]);
        let va = analytic.vout(&d, &w).unwrap().value();
        let vs = switch.vout(&d, &w).unwrap().value();
        assert!((va - vs).abs() < 0.05, "analytic {va:.4} vs switch {vs:.4}");
    }

    #[test]
    fn switch_level_vdd_override() {
        let e = SwitchLevelEvaluator::paper().with_vdd(Volts(1.5));
        let w = WeightVector::maxed(3, 3);
        let d = duties(&[1.0, 1.0, 1.0]);
        let v = e.vout(&d, &w).unwrap().value();
        assert!((v - 1.5).abs() < 0.01, "v = {v}");
        assert_eq!(e.vdd(), Volts(1.5));
    }

    #[test]
    fn evaluators_are_object_safe() {
        let evals: Vec<Box<dyn Evaluator>> = vec![
            Box::new(AnalyticEvaluator::paper()),
            Box::new(SwitchLevelEvaluator::paper()),
        ];
        let w = WeightVector::new(vec![4, 4], 3).unwrap();
        let d = duties(&[0.5, 0.5]);
        for e in &evals {
            let v = e.vout(&d, &w).unwrap().value();
            // Eq.2: 2.5·(0.5·4 + 0.5·4)/(2·7) ≈ 0.714.
            assert!((v - 0.714).abs() < 0.05, "v = {v}");
        }
    }

    #[test]
    fn noisy_evaluator_is_seed_deterministic_and_unbiased() {
        let w = WeightVector::new(vec![7], 3).unwrap();
        let d = duties(&[0.5]);
        let mk = |seed| NoisyEvaluator::new(AnalyticEvaluator::paper(), 0.05, seed);
        let a: Vec<f64> = (0..50)
            .map(|_| mk(1).vout(&d, &w).unwrap().value())
            .collect();
        // Same seed, fresh instance → same first draw.
        let b = mk(1).vout(&d, &w).unwrap().value();
        assert_eq!(a[0], b);
        // Different draws differ.
        let e = mk(2);
        let x1 = e.vout(&d, &w).unwrap().value();
        let x2 = e.vout(&d, &w).unwrap().value();
        assert_ne!(x1, x2);
        // Mean near the clean value.
        let e = mk(3);
        let n = 2000;
        let mean: f64 = (0..n).map(|_| e.vout(&d, &w).unwrap().value()).sum::<f64>() / n as f64;
        let clean = AnalyticEvaluator::paper().vout(&d, &w).unwrap().value();
        assert!((mean - clean).abs() < 0.01, "mean {mean} vs clean {clean}");
    }

    #[test]
    fn noise_sigma_zero_is_clean() {
        let e = NoisyEvaluator::new(AnalyticEvaluator::paper(), 0.0, 9);
        let w = WeightVector::new(vec![7], 3).unwrap();
        let d = duties(&[0.4]);
        let clean = AnalyticEvaluator::paper().vout(&d, &w).unwrap();
        assert_eq!(e.vout(&d, &w).unwrap(), clean);
        assert_eq!(e.inner().vdd(), Volts(2.5));
    }
}
