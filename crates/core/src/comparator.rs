//! Comparator models — the decision element of Fig. 1.
//!
//! The perceptron's analog sum is turned into a binary decision by
//! comparing against a reference. An ideal comparator is a strict
//! greater-than; real ones add input-referred offset and hysteresis,
//! both of which matter for robustness studies.

use mssim::units::Volts;

/// A comparator with optional offset and hysteresis.
///
/// With hysteresis `h`, the effective threshold is `ref + h/2` while the
/// output is low and `ref − h/2` while it is high (a Schmitt trigger), so
/// the model is stateful — [`Comparator::compare`] takes `&mut self`.
///
/// # Examples
///
/// ```
/// use mssim::units::Volts;
/// use pwm_perceptron::Comparator;
///
/// let mut c = Comparator::ideal();
/// assert!(c.compare(Volts(1.3), Volts(1.25)));
/// assert!(!c.compare(Volts(1.2), Volts(1.25)));
/// ```
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Comparator {
    offset: Volts,
    hysteresis: Volts,
    state: bool,
}

impl Comparator {
    /// Ideal comparator: zero offset, zero hysteresis.
    pub fn ideal() -> Self {
        Comparator {
            offset: Volts(0.0),
            hysteresis: Volts(0.0),
            state: false,
        }
    }

    /// Comparator with a fixed input-referred offset (added to the
    /// reference).
    pub fn with_offset(mut self, offset: Volts) -> Self {
        self.offset = offset;
        self
    }

    /// Comparator with hysteresis of total width `hysteresis`.
    ///
    /// # Panics
    ///
    /// Panics if the width is negative.
    pub fn with_hysteresis(mut self, hysteresis: Volts) -> Self {
        assert!(hysteresis.value() >= 0.0, "hysteresis must be non-negative");
        self.hysteresis = hysteresis;
        self
    }

    /// The configured offset.
    pub fn offset(&self) -> Volts {
        self.offset
    }

    /// The configured hysteresis width.
    pub fn hysteresis(&self) -> Volts {
        self.hysteresis
    }

    /// Current output state (last decision).
    pub fn state(&self) -> bool {
        self.state
    }

    /// Compares `input` against `reference`, updating the internal state.
    pub fn compare(&mut self, input: Volts, reference: Volts) -> bool {
        let half = self.hysteresis.value() * 0.5;
        let threshold =
            reference.value() + self.offset.value() + if self.state { -half } else { half };
        self.state = input.value() > threshold;
        self.state
    }

    /// Resets the hysteresis state to low.
    pub fn reset(&mut self) {
        self.state = false;
    }
}

impl Default for Comparator {
    fn default() -> Self {
        Self::ideal()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ideal_is_strict_greater_than() {
        let mut c = Comparator::ideal();
        assert!(!c.compare(Volts(1.0), Volts(1.0)));
        assert!(c.compare(Volts(1.0 + 1e-12), Volts(1.0)));
    }

    #[test]
    fn offset_shifts_the_threshold() {
        let mut c = Comparator::ideal().with_offset(Volts(0.1));
        assert!(!c.compare(Volts(1.05), Volts(1.0)));
        assert!(c.compare(Volts(1.15), Volts(1.0)));
        assert_eq!(c.offset(), Volts(0.1));
    }

    #[test]
    fn hysteresis_creates_a_dead_band() {
        let mut c = Comparator::ideal().with_hysteresis(Volts(0.2));
        // From low state the threshold is ref + 0.1.
        assert!(!c.compare(Volts(1.05), Volts(1.0)));
        assert!(c.compare(Volts(1.15), Volts(1.0)));
        // Now high: threshold drops to ref − 0.1; 1.05 stays high.
        assert!(c.compare(Volts(1.05), Volts(1.0)));
        // Falls below ref − 0.1 → low.
        assert!(!c.compare(Volts(0.85), Volts(1.0)));
        assert!(!c.state());
    }

    #[test]
    fn reset_clears_state() {
        let mut c = Comparator::ideal().with_hysteresis(Volts(0.2));
        c.compare(Volts(2.0), Volts(1.0));
        assert!(c.state());
        c.reset();
        assert!(!c.state());
    }

    #[test]
    #[should_panic(expected = "non-negative")]
    fn negative_hysteresis_panics() {
        let _ = Comparator::ideal().with_hysteresis(Volts(-0.1));
    }
}
