//! Duty-cycle values — the temporal information carrier.

use std::fmt;

use crate::error::CoreError;

/// A PWM duty cycle in `0.0..=1.0`.
///
/// This is the perceptron's input alphabet: information rides on the
/// *fraction of the period spent high*, which no supply-amplitude or
/// frequency disturbance can corrupt — the root of the design's power
/// elasticity.
///
/// # Examples
///
/// ```
/// use pwm_perceptron::DutyCycle;
///
/// let d = DutyCycle::new(0.3);
/// assert_eq!(d.value(), 0.3);
/// assert_eq!(d.complement().value(), 0.7);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, PartialOrd, Default)]
pub struct DutyCycle(f64);

impl DutyCycle {
    /// Always-low signal.
    pub const ZERO: DutyCycle = DutyCycle(0.0);
    /// Always-high signal.
    pub const ONE: DutyCycle = DutyCycle(1.0);

    /// Creates a duty cycle.
    ///
    /// # Panics
    ///
    /// Panics if `value` is outside `0.0..=1.0` or not finite. Use
    /// [`DutyCycle::try_new`] for fallible construction.
    pub fn new(value: f64) -> Self {
        Self::try_new(value).unwrap_or_else(|_| panic!("duty cycle {value} outside 0..=1"))
    }

    /// Creates a duty cycle, returning an error for out-of-range values.
    ///
    /// # Errors
    ///
    /// Returns [`CoreError::InvalidDuty`] if `value` is outside
    /// `0.0..=1.0` or not finite.
    pub fn try_new(value: f64) -> Result<Self, CoreError> {
        if value.is_finite() && (0.0..=1.0).contains(&value) {
            Ok(DutyCycle(value))
        } else {
            Err(CoreError::InvalidDuty { value })
        }
    }

    /// Creates a duty cycle, clamping out-of-range values into `0..=1`
    /// (NaN clamps to 0).
    pub fn clamped(value: f64) -> Self {
        if value.is_nan() {
            DutyCycle(0.0)
        } else {
            DutyCycle(value.clamp(0.0, 1.0))
        }
    }

    /// The raw fraction in `0.0..=1.0`.
    pub fn value(self) -> f64 {
        self.0
    }

    /// `1 − duty`: what the transcoding inverter outputs (relative to
    /// Vdd).
    pub fn complement(self) -> Self {
        DutyCycle(1.0 - self.0)
    }

    /// Quantises to `levels` equidistant values (inclusive of both rails).
    ///
    /// # Panics
    ///
    /// Panics if `levels < 2`.
    pub fn quantized(self, levels: u32) -> Self {
        assert!(levels >= 2, "need at least two quantisation levels");
        let steps = (levels - 1) as f64;
        DutyCycle((self.0 * steps).round() / steps)
    }

    /// Converts a slice of raw fractions.
    ///
    /// # Errors
    ///
    /// Returns [`CoreError::InvalidDuty`] on the first out-of-range value.
    pub fn try_from_slice(values: &[f64]) -> Result<Vec<Self>, CoreError> {
        values.iter().map(|&v| Self::try_new(v)).collect()
    }

    /// Extracts raw fractions from a slice of duty cycles.
    pub fn to_raw(duties: &[Self]) -> Vec<f64> {
        duties.iter().map(|d| d.0).collect()
    }
}

impl fmt::Display for DutyCycle {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:.1}%", self.0 * 100.0)
    }
}

impl From<DutyCycle> for f64 {
    fn from(d: DutyCycle) -> f64 {
        d.0
    }
}

impl TryFrom<f64> for DutyCycle {
    type Error = CoreError;
    fn try_from(value: f64) -> Result<Self, Self::Error> {
        Self::try_new(value)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn construction_and_bounds() {
        assert_eq!(DutyCycle::new(0.5).value(), 0.5);
        assert_eq!(DutyCycle::ZERO.value(), 0.0);
        assert_eq!(DutyCycle::ONE.value(), 1.0);
        assert!(DutyCycle::try_new(1.0001).is_err());
        assert!(DutyCycle::try_new(-0.0001).is_err());
        assert!(DutyCycle::try_new(f64::NAN).is_err());
    }

    #[test]
    #[should_panic(expected = "outside 0..=1")]
    fn new_panics_out_of_range() {
        let _ = DutyCycle::new(2.0);
    }

    #[test]
    fn clamping() {
        assert_eq!(DutyCycle::clamped(-3.0).value(), 0.0);
        assert_eq!(DutyCycle::clamped(7.0).value(), 1.0);
        assert_eq!(DutyCycle::clamped(0.4).value(), 0.4);
        assert_eq!(DutyCycle::clamped(f64::NAN).value(), 0.0);
    }

    #[test]
    fn complement_is_involutive() {
        let d = DutyCycle::new(0.3);
        assert!((d.complement().complement().value() - 0.3).abs() < 1e-15);
    }

    #[test]
    fn quantisation() {
        // 5 levels: 0, 0.25, 0.5, 0.75, 1.
        assert_eq!(DutyCycle::new(0.3).quantized(5).value(), 0.25);
        assert_eq!(DutyCycle::new(0.4).quantized(5).value(), 0.5);
        assert_eq!(DutyCycle::new(0.99).quantized(5).value(), 1.0);
        assert_eq!(DutyCycle::new(0.5).quantized(2).value(), 1.0); // round half up
    }

    #[test]
    fn slice_roundtrip() {
        let v = DutyCycle::try_from_slice(&[0.1, 0.9]).unwrap();
        assert_eq!(DutyCycle::to_raw(&v), vec![0.1, 0.9]);
        assert!(DutyCycle::try_from_slice(&[0.1, 1.9]).is_err());
    }

    #[test]
    fn display_and_conversions() {
        assert_eq!(DutyCycle::new(0.25).to_string(), "25.0%");
        let f: f64 = DutyCycle::new(0.75).into();
        assert_eq!(f, 0.75);
        let d: DutyCycle = 0.5f64.try_into().unwrap();
        assert_eq!(d.value(), 0.5);
    }
}
