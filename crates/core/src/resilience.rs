//! Resilient serving primitives: deadline/attempt budgets, per-tier
//! circuit breakers, and deterministic chaos injection.
//!
//! The paper's central robustness claim is that the PWM perceptron
//! *degrades gracefully* — a droopy supply shifts the output a bounded
//! amount instead of breaking the classification. This module gives the
//! serving stack the same property: instead of failing a query when the
//! transistor-level tier misbehaves, [`crate::InferenceEngine`] walks a
//! demotion ladder (Circuit → SwitchLevel → Analytic) and serves the
//! next-cheaper tier's answer flagged `degraded` with its certified error
//! bound.
//!
//! * [`ResiliencePolicy`] — per-query deadline and per-tier attempt
//!   budget with deterministic exponential backoff.
//! * [`CircuitBreaker`] — rolling failure-rate window with the classic
//!   closed/open/half-open state machine, so a sick tier sheds load
//!   before queueing work it cannot finish. All timing flows through an
//!   injectable [`Clock`], so state transitions are reproducible in
//!   tests ([`ManualClock`]) while production uses wall time
//!   ([`MonotonicClock`]).
//! * [`ChaosEvaluator`] — a seeded fault-injection wrapper over any
//!   [`Evaluator`]: per-(seed, call-index) forced non-convergence, NaN
//!   outputs and latency spikes, bitwise reproducible for a given seed.

use std::collections::VecDeque;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex, PoisonError};
use std::time::Instant;

use mssim::prelude::Volts;

use crate::duty::DutyCycle;
use crate::error::CoreError;
use crate::eval::Evaluator;
use crate::infer::{Eval, Query, Tier};
use crate::weight::WeightVector;

/// Time source for resilience decisions (deadlines, backoff, breaker
/// cooldowns). Injectable so every state transition is reproducible.
pub trait Clock: Send + Sync {
    /// Monotonic now, in nanoseconds from an arbitrary origin.
    fn now_ns(&self) -> u64;

    /// Blocks (or logically advances) for `ns` nanoseconds — used for
    /// retry backoff and injected latency.
    fn sleep_ns(&self, ns: u64);
}

/// Wall-clock [`Clock`] backed by [`Instant`]; `sleep_ns` really sleeps.
#[derive(Debug)]
pub struct MonotonicClock {
    origin: Instant,
}

impl MonotonicClock {
    /// Clock with its origin at construction time.
    pub fn new() -> Self {
        MonotonicClock {
            origin: Instant::now(),
        }
    }
}

impl Default for MonotonicClock {
    fn default() -> Self {
        Self::new()
    }
}

impl Clock for MonotonicClock {
    fn now_ns(&self) -> u64 {
        self.origin.elapsed().as_nanos() as u64
    }

    fn sleep_ns(&self, ns: u64) {
        std::thread::sleep(std::time::Duration::from_nanos(ns));
    }
}

/// Deterministic test/chaos [`Clock`]: time only moves when advanced, and
/// `sleep_ns` advances it instead of blocking. Shared via [`Arc`] between
/// the engine and the test (or chaos harness) driving it.
#[derive(Debug, Default)]
pub struct ManualClock {
    now: AtomicU64,
}

impl ManualClock {
    /// Clock starting at 0 ns.
    pub fn new() -> Self {
        Self::default()
    }

    /// Clock starting at `ns`.
    pub fn at(ns: u64) -> Self {
        ManualClock {
            now: AtomicU64::new(ns),
        }
    }

    /// Moves time forward by `ns`.
    pub fn advance(&self, ns: u64) {
        self.now.fetch_add(ns, Ordering::Relaxed);
    }
}

impl Clock for ManualClock {
    fn now_ns(&self) -> u64 {
        self.now.load(Ordering::Relaxed)
    }

    fn sleep_ns(&self, ns: u64) {
        self.advance(ns);
    }
}

/// Circuit-breaker tuning.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct BreakerConfig {
    /// Rolling outcome window length (most recent evaluations).
    pub window: usize,
    /// Open when the window's failure rate reaches this fraction.
    pub failure_rate: f64,
    /// Minimum outcomes in the window before the rate can trip — a single
    /// early failure must not open the breaker.
    pub min_samples: usize,
    /// How long an open breaker rejects before probing (half-open).
    pub cooldown_ns: u64,
    /// Consecutive half-open successes required to close again.
    pub half_open_probes: u32,
}

impl Default for BreakerConfig {
    fn default() -> Self {
        BreakerConfig {
            window: 64,
            failure_rate: 0.5,
            min_samples: 16,
            cooldown_ns: 250_000_000,
            half_open_probes: 3,
        }
    }
}

/// Circuit-breaker state.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BreakerState {
    /// Normal operation; outcomes feed the rolling window.
    Closed,
    /// Failure rate tripped: calls are rejected until the cooldown ends.
    Open,
    /// Cooldown elapsed: probe calls are admitted to test recovery.
    HalfOpen,
}

impl BreakerState {
    /// Stable lowercase name (matches the telemetry vocabulary).
    pub fn name(self) -> &'static str {
        match self {
            BreakerState::Closed => "closed",
            BreakerState::Open => "open",
            BreakerState::HalfOpen => "half_open",
        }
    }
}

/// One breaker state transition, for telemetry.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct BreakerTransition {
    /// State before.
    pub from: BreakerState,
    /// State after.
    pub to: BreakerState,
    /// Rolling failure rate observed at the transition (1.0 for a failed
    /// half-open probe, 0.0 for a recovery close).
    pub failure_rate: f64,
}

#[derive(Debug)]
struct BreakerCore {
    /// Most recent outcomes, `true` = failure.
    outcomes: VecDeque<bool>,
    state: BreakerState,
    opened_at_ns: u64,
    probe_successes: u32,
    trips: u64,
}

impl BreakerCore {
    fn rate(&self) -> f64 {
        if self.outcomes.is_empty() {
            0.0
        } else {
            self.outcomes.iter().filter(|&&f| f).count() as f64 / self.outcomes.len() as f64
        }
    }
}

/// Per-tier circuit breaker: a rolling failure-rate window driving the
/// classic closed → open → half-open state machine. All methods take an
/// explicit `now_ns` from the caller's [`Clock`], so the machine itself
/// is a pure function of its inputs — the proptest suite drives it with
/// a [`ManualClock`] and checks every transition is legal.
#[derive(Debug)]
pub struct CircuitBreaker {
    config: BreakerConfig,
    core: Mutex<BreakerCore>,
}

impl CircuitBreaker {
    /// Breaker in the closed state.
    ///
    /// # Panics
    ///
    /// Panics if `window == 0`, `half_open_probes == 0`, or
    /// `failure_rate` is outside `(0, 1]`.
    pub fn new(config: BreakerConfig) -> Self {
        assert!(config.window > 0, "window must be non-empty");
        assert!(config.half_open_probes > 0, "need at least one probe");
        assert!(
            config.failure_rate > 0.0 && config.failure_rate <= 1.0,
            "failure_rate must be in (0, 1]"
        );
        CircuitBreaker {
            config,
            core: Mutex::new(BreakerCore {
                outcomes: VecDeque::with_capacity(config.window),
                state: BreakerState::Closed,
                opened_at_ns: 0,
                probe_successes: 0,
                trips: 0,
            }),
        }
    }

    fn lock(&self) -> std::sync::MutexGuard<'_, BreakerCore> {
        // No caller code runs under the lock, so a poisoned mutex only
        // means a panicking thread died between states — the core is
        // still consistent.
        self.core.lock().unwrap_or_else(PoisonError::into_inner)
    }

    /// Whether a call may proceed now. Transitions open → half-open when
    /// the cooldown has elapsed (the admitted call is the probe).
    pub fn allow(&self, now_ns: u64) -> (bool, Option<BreakerTransition>) {
        let mut c = self.lock();
        match c.state {
            BreakerState::Closed | BreakerState::HalfOpen => (true, None),
            BreakerState::Open => {
                if now_ns.saturating_sub(c.opened_at_ns) >= self.config.cooldown_ns {
                    c.state = BreakerState::HalfOpen;
                    c.probe_successes = 0;
                    (
                        true,
                        Some(BreakerTransition {
                            from: BreakerState::Open,
                            to: BreakerState::HalfOpen,
                            failure_rate: c.rate(),
                        }),
                    )
                } else {
                    (false, None)
                }
            }
        }
    }

    /// Feeds one call outcome (`failed = true` for failure) into the
    /// machine, returning any resulting transition.
    pub fn record(&self, failed: bool, now_ns: u64) -> Option<BreakerTransition> {
        let mut c = self.lock();
        match c.state {
            BreakerState::Closed => {
                if c.outcomes.len() == self.config.window {
                    c.outcomes.pop_front();
                }
                c.outcomes.push_back(failed);
                let rate = c.rate();
                if failed
                    && c.outcomes.len() >= self.config.min_samples
                    && rate >= self.config.failure_rate
                {
                    c.state = BreakerState::Open;
                    c.opened_at_ns = now_ns;
                    c.trips += 1;
                    c.outcomes.clear();
                    Some(BreakerTransition {
                        from: BreakerState::Closed,
                        to: BreakerState::Open,
                        failure_rate: rate,
                    })
                } else {
                    None
                }
            }
            BreakerState::HalfOpen => {
                if failed {
                    c.state = BreakerState::Open;
                    c.opened_at_ns = now_ns;
                    c.trips += 1;
                    c.probe_successes = 0;
                    Some(BreakerTransition {
                        from: BreakerState::HalfOpen,
                        to: BreakerState::Open,
                        failure_rate: 1.0,
                    })
                } else {
                    c.probe_successes += 1;
                    if c.probe_successes >= self.config.half_open_probes {
                        c.state = BreakerState::Closed;
                        c.outcomes.clear();
                        Some(BreakerTransition {
                            from: BreakerState::HalfOpen,
                            to: BreakerState::Closed,
                            failure_rate: 0.0,
                        })
                    } else {
                        None
                    }
                }
            }
            // An outcome from a call admitted before the trip: stale, and
            // the open state already knows the tier is sick — drop it.
            BreakerState::Open => None,
        }
    }

    /// Current state without side effects (an elapsed cooldown still
    /// reads as open until [`CircuitBreaker::allow`] admits the probe).
    pub fn state(&self) -> BreakerState {
        self.lock().state
    }

    /// Number of closed/half-open → open transitions so far.
    pub fn trips(&self) -> u64 {
        self.lock().trips
    }
}

/// Why the demotion ladder served a cheaper tier.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum DegradeReason {
    /// The tier's attempt budget was exhausted by failures.
    Failure,
    /// The query's deadline expired before the tier answered.
    Timeout,
    /// The tier's circuit breaker was open.
    BreakerOpen,
}

impl DegradeReason {
    /// Stable lowercase name (matches the telemetry vocabulary).
    pub fn name(self) -> &'static str {
        match self {
            DegradeReason::Failure => "failure",
            DegradeReason::Timeout => "timeout",
            DegradeReason::BreakerOpen => "breaker_open",
        }
    }
}

/// Per-query resilience budget: how hard to try each tier before walking
/// down the demotion ladder, and when to give up on time instead.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ResiliencePolicy {
    /// Evaluation attempts per tier before demoting (≥ 1).
    pub attempts_per_tier: u32,
    /// Backoff before retry `k` is `backoff_base_ns << (k − 1)` —
    /// deterministic exponential backoff through the [`Clock`].
    pub backoff_base_ns: u64,
    /// Optional per-query deadline. Work that lands past the deadline is
    /// treated as a timeout (the breaker records a failure and the ladder
    /// demotes), mirroring a cancelled in-flight call. The final analytic
    /// resort always answers regardless.
    pub deadline_ns: Option<u64>,
    /// Per-tier circuit-breaker tuning.
    pub breaker: BreakerConfig,
}

impl ResiliencePolicy {
    /// Defaults: 2 attempts per tier, 1 ms backoff base, no deadline.
    pub fn new() -> Self {
        ResiliencePolicy {
            attempts_per_tier: 2,
            backoff_base_ns: 1_000_000,
            deadline_ns: None,
            breaker: BreakerConfig::default(),
        }
    }

    /// Sets the per-tier attempt budget (values below 1 are clamped).
    pub fn with_attempts(mut self, attempts: u32) -> Self {
        self.attempts_per_tier = attempts.max(1);
        self
    }

    /// Sets the backoff base.
    pub fn with_backoff_ns(mut self, base_ns: u64) -> Self {
        self.backoff_base_ns = base_ns;
        self
    }

    /// Sets the per-query deadline.
    pub fn with_deadline_ns(mut self, deadline_ns: u64) -> Self {
        self.deadline_ns = Some(deadline_ns);
        self
    }

    /// Sets the circuit-breaker tuning.
    pub fn with_breaker(mut self, breaker: BreakerConfig) -> Self {
        self.breaker = breaker;
        self
    }

    /// Backoff before retry `attempt` (1-based), capped to avoid shift
    /// overflow.
    pub fn backoff_ns(&self, attempt: u32) -> u64 {
        self.backoff_base_ns << attempt.saturating_sub(1).min(16)
    }
}

impl Default for ResiliencePolicy {
    fn default() -> Self {
        Self::new()
    }
}

/// Counter snapshot of the resilience layer.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct ResilStats {
    /// Retries performed after a failed attempt.
    pub retries: u64,
    /// Ladder demotions (one per tier walked past).
    pub demotions: u64,
    /// Queries answered by a cheaper tier than demanded.
    pub degraded_served: u64,
    /// Deadline expiries (pre-attempt skips and late-landing answers).
    pub deadline_exceeded: u64,
    /// Circuit-breaker trips across all tiers.
    pub breaker_trips: u64,
}

/// Engine-side resilience state: the policy, its clock, one breaker per
/// tier, and incident counters.
pub(crate) struct ResilienceState {
    pub(crate) policy: ResiliencePolicy,
    pub(crate) clock: Arc<dyn Clock>,
    pub(crate) breakers: [CircuitBreaker; 3],
    pub(crate) retries: AtomicU64,
    pub(crate) demotions: AtomicU64,
    pub(crate) degraded_served: AtomicU64,
    pub(crate) deadline_exceeded: AtomicU64,
}

impl ResilienceState {
    pub(crate) fn new(policy: ResiliencePolicy, clock: Arc<dyn Clock>) -> Self {
        ResilienceState {
            breakers: [
                CircuitBreaker::new(policy.breaker),
                CircuitBreaker::new(policy.breaker),
                CircuitBreaker::new(policy.breaker),
            ],
            policy,
            clock,
            retries: AtomicU64::new(0),
            demotions: AtomicU64::new(0),
            degraded_served: AtomicU64::new(0),
            deadline_exceeded: AtomicU64::new(0),
        }
    }

    pub(crate) fn stats(&self) -> ResilStats {
        ResilStats {
            retries: self.retries.load(Ordering::Relaxed),
            demotions: self.demotions.load(Ordering::Relaxed),
            degraded_served: self.degraded_served.load(Ordering::Relaxed),
            deadline_exceeded: self.deadline_exceeded.load(Ordering::Relaxed),
            breaker_trips: self.breakers.iter().map(CircuitBreaker::trips).sum(),
        }
    }
}

/// SplitMix64 — the same finalizer the sweep driver uses for per-trial
/// RNG streams.
fn splitmix64(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
    x = (x ^ (x >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    x = (x ^ (x >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    x ^ (x >> 31)
}

/// Uniform draw in `[0, 1)` from `(seed, index)` — pure, so the injection
/// schedule can be recomputed by a harness without touching the wrapper.
fn unit_draw(seed: u64, index: u64) -> f64 {
    (splitmix64(seed ^ splitmix64(index)) >> 11) as f64 / (1u64 << 53) as f64
}

/// Fault mix for [`ChaosEvaluator`]. Rates are per evaluator call and
/// mutually exclusive (failure wins over NaN wins over spike).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ChaosConfig {
    /// Seed of the injection schedule.
    pub seed: u64,
    /// Probability of a forced [`mssim::Error::NonConvergence`].
    pub fail_rate: f64,
    /// Probability of a NaN output voltage.
    pub nan_rate: f64,
    /// Probability of an injected latency spike.
    pub spike_rate: f64,
    /// Duration of an injected spike (slept on the wrapper's clock).
    pub spike_ns: u64,
}

impl ChaosConfig {
    /// All rates zero — a transparent wrapper.
    pub fn quiet(seed: u64) -> Self {
        ChaosConfig {
            seed,
            fail_rate: 0.0,
            nan_rate: 0.0,
            spike_rate: 0.0,
            spike_ns: 0,
        }
    }
}

/// One injected fault.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ChaosFault {
    /// The call fails with a forced solver non-convergence.
    NonConvergence,
    /// The call answers NaN volts.
    NanOutput,
    /// The call answers correctly but only after a latency spike.
    LatencySpike,
}

/// The fault (if any) injected at evaluator-call `index` — a pure
/// function of `(config.seed, index)`.
pub fn chaos_fault_at(config: &ChaosConfig, index: u64) -> Option<ChaosFault> {
    let draw = unit_draw(config.seed, index);
    if draw < config.fail_rate {
        Some(ChaosFault::NonConvergence)
    } else if draw < config.fail_rate + config.nan_rate {
        Some(ChaosFault::NanOutput)
    } else if draw < config.fail_rate + config.nan_rate + config.spike_rate {
        Some(ChaosFault::LatencySpike)
    } else {
        None
    }
}

/// Seeded fault-injection wrapper over any [`Evaluator`].
///
/// Faults are decided per (seed, evaluator-call index) with a SplitMix64
/// hash, so a replay with the same seed and the same call order injects
/// bitwise-identical faults. Latency spikes sleep on the wrapper's
/// [`Clock`] — with a [`ManualClock`] they advance logical time
/// deterministically (and instantly) instead of stalling the test.
pub struct ChaosEvaluator<E> {
    inner: E,
    config: ChaosConfig,
    clock: Arc<dyn Clock>,
    calls: AtomicU64,
    injected: [AtomicU64; 3],
}

impl<E> std::fmt::Debug for ChaosEvaluator<E> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ChaosEvaluator")
            .field("config", &self.config)
            .field("calls", &self.calls.load(Ordering::Relaxed))
            .finish_non_exhaustive()
    }
}

impl<E: Evaluator> ChaosEvaluator<E> {
    /// Wraps `inner` with the given fault mix, spiking on a real clock.
    pub fn new(inner: E, config: ChaosConfig) -> Self {
        Self::with_clock(inner, config, Arc::new(MonotonicClock::new()))
    }

    /// Wraps `inner`, sleeping injected spikes on `clock`.
    pub fn with_clock(inner: E, config: ChaosConfig, clock: Arc<dyn Clock>) -> Self {
        assert!(
            config.fail_rate >= 0.0
                && config.nan_rate >= 0.0
                && config.spike_rate >= 0.0
                && config.fail_rate + config.nan_rate + config.spike_rate <= 1.0,
            "fault rates must be non-negative and sum to at most 1"
        );
        ChaosEvaluator {
            inner,
            config,
            clock,
            calls: AtomicU64::new(0),
            injected: [AtomicU64::new(0), AtomicU64::new(0), AtomicU64::new(0)],
        }
    }

    /// The wrapped evaluator.
    pub fn inner(&self) -> &E {
        &self.inner
    }

    /// Evaluator calls seen so far (the injection index advances by one
    /// per call, batched or not).
    pub fn calls(&self) -> u64 {
        self.calls.load(Ordering::Relaxed)
    }

    /// Injected fault counts `[non_convergence, nan, spike]`.
    pub fn injected(&self) -> [u64; 3] {
        [
            self.injected[0].load(Ordering::Relaxed),
            self.injected[1].load(Ordering::Relaxed),
            self.injected[2].load(Ordering::Relaxed),
        ]
    }

    fn forced_error() -> CoreError {
        CoreError::Simulation(mssim::Error::NonConvergence {
            analysis: "transient",
            time: 0.0,
            iterations: 0,
            stage: "chaos",
            attempts: 0,
        })
    }

    fn apply(&self, fault: Option<ChaosFault>, query: &Query) -> Result<Eval, CoreError> {
        match fault {
            Some(ChaosFault::NonConvergence) => {
                self.injected[0].fetch_add(1, Ordering::Relaxed);
                Err(Self::forced_error())
            }
            Some(ChaosFault::NanOutput) => {
                self.injected[1].fetch_add(1, Ordering::Relaxed);
                let mut eval = self.inner.evaluate(query)?;
                eval.vout = Volts(f64::NAN);
                Ok(eval)
            }
            Some(ChaosFault::LatencySpike) => {
                self.injected[2].fetch_add(1, Ordering::Relaxed);
                self.clock.sleep_ns(self.config.spike_ns);
                self.inner.evaluate(query)
            }
            None => self.inner.evaluate(query),
        }
    }
}

impl<E: Evaluator> Evaluator for ChaosEvaluator<E> {
    fn vout(&self, duties: &[DutyCycle], weights: &WeightVector) -> Result<Volts, CoreError> {
        let query = Query::new(duties.to_vec(), weights.clone())?;
        Ok(self.evaluate(&query)?.vout)
    }

    fn vdd(&self) -> Volts {
        self.inner.vdd()
    }

    fn tier(&self) -> Tier {
        self.inner.tier()
    }

    fn evaluate(&self, query: &Query) -> Result<Eval, CoreError> {
        let index = self.calls.fetch_add(1, Ordering::Relaxed);
        self.apply(chaos_fault_at(&self.config, index), query)
    }

    fn evaluate_batch(&self, queries: &[Query]) -> Vec<Result<Eval, CoreError>> {
        // Reserve one injection index per query, then route the clean
        // subset through the inner evaluator's batched path.
        let base = self
            .calls
            .fetch_add(queries.len() as u64, Ordering::Relaxed);
        let faults: Vec<Option<ChaosFault>> = (0..queries.len() as u64)
            .map(|i| chaos_fault_at(&self.config, base + i))
            .collect();
        let pass: Vec<usize> = faults
            .iter()
            .enumerate()
            .filter(|(_, f)| !matches!(f, Some(ChaosFault::NonConvergence)))
            .map(|(i, _)| i)
            .collect();
        let pass_queries: Vec<Query> = pass.iter().map(|&i| queries[i].clone()).collect();
        let mut computed = self.inner.evaluate_batch(&pass_queries).into_iter();
        let mut out = Vec::with_capacity(queries.len());
        for fault in &faults {
            match fault {
                Some(ChaosFault::NonConvergence) => {
                    self.injected[0].fetch_add(1, Ordering::Relaxed);
                    out.push(Err(Self::forced_error()));
                }
                Some(ChaosFault::NanOutput) => {
                    self.injected[1].fetch_add(1, Ordering::Relaxed);
                    out.push(computed.next().expect("one result per passed query").map(
                        |mut eval| {
                            eval.vout = Volts(f64::NAN);
                            eval
                        },
                    ));
                }
                Some(ChaosFault::LatencySpike) => {
                    self.injected[2].fetch_add(1, Ordering::Relaxed);
                    self.clock.sleep_ns(self.config.spike_ns);
                    out.push(computed.next().expect("one result per passed query"));
                }
                None => out.push(computed.next().expect("one result per passed query")),
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::eval::AnalyticEvaluator;

    #[test]
    fn manual_clock_advances_on_sleep() {
        let c = ManualClock::at(10);
        assert_eq!(c.now_ns(), 10);
        c.sleep_ns(5);
        c.advance(1);
        assert_eq!(c.now_ns(), 16);
    }

    #[test]
    fn monotonic_clock_moves_forward() {
        let c = MonotonicClock::new();
        let a = c.now_ns();
        let b = c.now_ns();
        assert!(b >= a);
    }

    fn tight_breaker() -> CircuitBreaker {
        CircuitBreaker::new(BreakerConfig {
            window: 4,
            failure_rate: 0.5,
            min_samples: 2,
            cooldown_ns: 100,
            half_open_probes: 2,
        })
    }

    #[test]
    fn breaker_trips_cools_down_and_recovers() {
        let b = tight_breaker();
        assert_eq!(b.state(), BreakerState::Closed);
        assert!(b.record(true, 0).is_none(), "below min_samples");
        let t = b.record(true, 1).expect("trips at 2 failures / 2 samples");
        assert_eq!(t.to, BreakerState::Open);
        assert!((t.failure_rate - 1.0).abs() < 1e-12);
        assert_eq!(b.trips(), 1);

        // Rejected during cooldown.
        assert!(!b.allow(50).0);
        // Probe admitted after the cooldown.
        let (ok, trans) = b.allow(101);
        assert!(ok);
        assert_eq!(trans.unwrap().to, BreakerState::HalfOpen);
        // Two good probes close it.
        assert!(b.record(false, 102).is_none());
        let t = b.record(false, 103).unwrap();
        assert_eq!(t.to, BreakerState::Closed);
        assert_eq!(b.state(), BreakerState::Closed);
    }

    #[test]
    fn failed_probe_reopens() {
        let b = tight_breaker();
        b.record(true, 0);
        b.record(true, 1);
        assert_eq!(b.state(), BreakerState::Open);
        assert!(b.allow(200).0);
        let t = b.record(true, 201).unwrap();
        assert_eq!(t.from, BreakerState::HalfOpen);
        assert_eq!(t.to, BreakerState::Open);
        assert_eq!(b.trips(), 2);
        // The fresh open period starts at the probe failure.
        assert!(!b.allow(250).0);
        assert!(b.allow(301).0);
    }

    #[test]
    fn successes_keep_the_breaker_closed() {
        let b = tight_breaker();
        for i in 0..100 {
            assert!(b.record(false, i).is_none());
            assert!(b.allow(i).0);
        }
        // A sparse failure in a healthy window does not trip.
        assert!(b.record(true, 100).is_none());
        assert_eq!(b.state(), BreakerState::Closed);
    }

    #[test]
    fn chaos_schedule_is_pure_and_matches_wrapper() {
        let config = ChaosConfig {
            seed: 42,
            fail_rate: 0.2,
            nan_rate: 0.1,
            spike_rate: 0.1,
            spike_ns: 5,
        };
        let schedule: Vec<Option<ChaosFault>> =
            (0..200).map(|i| chaos_fault_at(&config, i)).collect();
        assert_eq!(
            schedule,
            (0..200)
                .map(|i| chaos_fault_at(&config, i))
                .collect::<Vec<_>>()
        );
        // All three faults occur at these rates over 200 draws.
        assert!(schedule.contains(&Some(ChaosFault::NonConvergence)));
        assert!(schedule.contains(&Some(ChaosFault::NanOutput)));
        assert!(schedule.contains(&Some(ChaosFault::LatencySpike)));
        assert!(schedule.contains(&None));

        let clock = Arc::new(ManualClock::new());
        let chaos = ChaosEvaluator::with_clock(AnalyticEvaluator::paper(), config, clock.clone());
        let q = Query::from_raw(&[0.5, 0.5], &[7, 7], 3).unwrap();
        for expected in &schedule {
            let got = chaos.evaluate(&q);
            match expected {
                Some(ChaosFault::NonConvergence) => assert!(matches!(
                    got,
                    Err(CoreError::Simulation(mssim::Error::NonConvergence { .. }))
                )),
                Some(ChaosFault::NanOutput) => {
                    assert!(got.unwrap().vout.value().is_nan());
                }
                _ => assert!(got.unwrap().vout.value().is_finite()),
            }
        }
        let spikes = schedule
            .iter()
            .filter(|f| matches!(f, Some(ChaosFault::LatencySpike)))
            .count() as u64;
        assert_eq!(clock.now_ns(), spikes * 5, "spikes slept on the clock");
        assert_eq!(chaos.calls(), 200);
    }

    #[test]
    fn chaos_batch_matches_single_schedule() {
        let config = ChaosConfig {
            seed: 7,
            fail_rate: 0.3,
            nan_rate: 0.1,
            spike_rate: 0.0,
            spike_ns: 0,
        };
        let qs: Vec<Query> = (0..50)
            .map(|i| Query::from_raw(&[i as f64 / 49.0, 0.5], &[7, 3], 3).unwrap())
            .collect();
        let single = ChaosEvaluator::new(AnalyticEvaluator::paper(), config);
        let singles: Vec<_> = qs.iter().map(|q| single.evaluate(q)).collect();
        let batched = ChaosEvaluator::new(AnalyticEvaluator::paper(), config).evaluate_batch(&qs);
        for (s, b) in singles.iter().zip(&batched) {
            match (s, b) {
                (Ok(a), Ok(c)) => {
                    assert!(
                        a.vout == c.vout || (a.vout.value().is_nan() && c.vout.value().is_nan())
                    );
                }
                (Err(_), Err(_)) => {}
                other => panic!("schedule mismatch: {other:?}"),
            }
        }
    }

    #[test]
    fn quiet_chaos_is_transparent() {
        let chaos = ChaosEvaluator::new(AnalyticEvaluator::paper(), ChaosConfig::quiet(1));
        let clean = AnalyticEvaluator::paper();
        let q = Query::from_raw(&[0.25, 0.75], &[7, 7], 3).unwrap();
        assert_eq!(
            chaos.evaluate(&q).unwrap().vout,
            clean.evaluate(&q).unwrap().vout
        );
        assert_eq!(chaos.injected(), [0, 0, 0]);
    }
}
