//! Synthetic classification tasks for the micro-edge scenarios the
//! paper's introduction motivates (sensing, data filtering).

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use self::analytic_label::ideal_ratio;
use crate::duty::DutyCycle;
use crate::error::CoreError;
use crate::weight::WeightVector;

/// One labelled sample: duty-cycle-encoded inputs and a binary label.
#[derive(Debug, Clone, PartialEq)]
pub struct Sample {
    /// Duty-cycle-encoded inputs.
    pub duties: Vec<DutyCycle>,
    /// Target class.
    pub label: bool,
}

impl Sample {
    /// Creates a sample.
    pub fn new(duties: Vec<DutyCycle>, label: bool) -> Self {
        Sample { duties, label }
    }
}

/// A labelled dataset of equal-dimension samples.
#[derive(Debug, Clone, PartialEq)]
pub struct Dataset {
    samples: Vec<Sample>,
    dim: usize,
}

impl Dataset {
    /// Creates a dataset, validating that all samples share one dimension.
    ///
    /// # Errors
    ///
    /// Returns [`CoreError::EmptyDataset`] for no samples, or
    /// [`CoreError::DimensionMismatch`] for ragged samples.
    pub fn new(samples: Vec<Sample>) -> Result<Self, CoreError> {
        let dim = samples.first().map_or(0, |s| s.duties.len());
        if dim == 0 {
            return Err(CoreError::EmptyDataset);
        }
        for s in &samples {
            if s.duties.len() != dim {
                return Err(CoreError::DimensionMismatch {
                    expected: dim,
                    got: s.duties.len(),
                });
            }
        }
        Ok(Dataset { samples, dim })
    }

    /// Number of samples.
    pub fn len(&self) -> usize {
        self.samples.len()
    }

    /// `true` if there are no samples (never, by construction).
    pub fn is_empty(&self) -> bool {
        self.samples.is_empty()
    }

    /// Input dimension.
    pub fn dim(&self) -> usize {
        self.dim
    }

    /// The samples.
    pub fn samples(&self) -> &[Sample] {
        &self.samples
    }

    /// Fraction of positive labels.
    pub fn positive_rate(&self) -> f64 {
        self.samples.iter().filter(|s| s.label).count() as f64 / self.samples.len() as f64
    }

    /// Deterministic shuffled split into `(train, test)` with the given
    /// training fraction.
    ///
    /// # Panics
    ///
    /// Panics if `train_fraction` is not in `(0, 1)` or either split would
    /// be empty.
    pub fn split(&self, train_fraction: f64, seed: u64) -> (Dataset, Dataset) {
        assert!(
            train_fraction > 0.0 && train_fraction < 1.0,
            "train fraction must be in (0,1)"
        );
        let mut idx: Vec<usize> = (0..self.samples.len()).collect();
        let mut rng = StdRng::seed_from_u64(seed);
        // Fisher–Yates.
        for i in (1..idx.len()).rev() {
            let j = rng.gen_range(0..=i);
            idx.swap(i, j);
        }
        let n_train = ((self.samples.len() as f64) * train_fraction).round() as usize;
        assert!(
            n_train > 0 && n_train < self.samples.len(),
            "split would leave an empty side"
        );
        let train: Vec<Sample> = idx[..n_train]
            .iter()
            .map(|&i| self.samples[i].clone())
            .collect();
        let test: Vec<Sample> = idx[n_train..]
            .iter()
            .map(|&i| self.samples[i].clone())
            .collect();
        (
            Dataset::new(train).expect("train split is non-empty"),
            Dataset::new(test).expect("test split is non-empty"),
        )
    }

    /// Random samples labelled by a hidden *positive-weight* teacher —
    /// guaranteed learnable by the single-ended hardware. Returns the
    /// dataset together with the teacher weights and the ratiometric
    /// threshold that generated the labels.
    ///
    /// A margin of 3 % of the supply is enforced around the decision
    /// boundary so the task is cleanly separable.
    ///
    /// # Panics
    ///
    /// Panics if `n == 0` or `dim == 0`.
    pub fn linearly_separable(
        n: usize,
        dim: usize,
        bits: u32,
        seed: u64,
    ) -> (Dataset, WeightVector, f64) {
        Self::linearly_separable_with_margin(n, dim, bits, seed, 0.03)
    }

    /// [`Dataset::linearly_separable`] with an explicit separation margin
    /// (fraction of the supply). Small margins make the task demand more
    /// weight precision — used by the weight-quantisation ablation.
    ///
    /// # Panics
    ///
    /// Panics if `n == 0`, `dim == 0`, or `margin` is not in `[0, 0.2]`.
    pub fn linearly_separable_with_margin(
        n: usize,
        dim: usize,
        bits: u32,
        seed: u64,
        margin: f64,
    ) -> (Dataset, WeightVector, f64) {
        assert!(n > 0 && dim > 0, "need at least one sample and dimension");
        assert!(
            (0.0..=0.2).contains(&margin),
            "margin must be a small fraction of full scale"
        );
        let mut rng = StdRng::seed_from_u64(seed);
        let max = (1u32 << bits) - 1;
        // Teacher: random non-trivial positive weights.
        let weights: Vec<u32> = loop {
            let w: Vec<u32> = (0..dim).map(|_| rng.gen_range(0..=max)).collect();
            if w.iter().any(|&x| x > 0) {
                break w;
            }
        };
        let teacher = WeightVector::new(weights, bits).expect("teacher weights in range");
        let threshold =
            rng.gen_range(0.25..0.75) * teacher.total() as f64 / (dim as f64 * max as f64);

        let mut samples = Vec::with_capacity(n);
        while samples.len() < n {
            let duties: Vec<DutyCycle> = (0..dim)
                .map(|_| DutyCycle::new(rng.gen_range(0.0..1.0)))
                .collect();
            let ratio = ideal_ratio(&duties, &teacher);
            if (ratio - threshold).abs() < margin {
                continue; // too close to the boundary
            }
            samples.push(Sample::new(duties, ratio > threshold));
        }
        (
            Dataset::new(samples).expect("generated dataset is valid"),
            teacher,
            threshold,
        )
    }

    /// The `dim`-input majority function on near-rail duty cycles
    /// (0.15 / 0.85): fires when more than half the inputs are high.
    /// Learnable with equal weights and a mid reference.
    ///
    /// # Panics
    ///
    /// Panics if `dim == 0` or `dim > 16`.
    pub fn majority(dim: usize) -> Dataset {
        assert!(dim > 0 && dim <= 16, "majority dimension must be 1..=16");
        let mut samples = Vec::with_capacity(1 << dim);
        for pattern in 0..(1u32 << dim) {
            let duties: Vec<DutyCycle> = (0..dim)
                .map(|i| {
                    if pattern & (1 << i) != 0 {
                        DutyCycle::new(0.85)
                    } else {
                        DutyCycle::new(0.15)
                    }
                })
                .collect();
            let ones = pattern.count_ones() as usize;
            samples.push(Sample::new(duties, 2 * ones > dim));
        }
        Dataset::new(samples).expect("majority dataset is valid")
    }

    /// The `dim`-input AND function on near-rail duty cycles.
    ///
    /// # Panics
    ///
    /// Panics if `dim == 0` or `dim > 16`.
    pub fn boolean_and(dim: usize) -> Dataset {
        Self::boolean(dim, |ones, d| ones == d)
    }

    /// The `dim`-input OR function on near-rail duty cycles.
    ///
    /// # Panics
    ///
    /// Panics if `dim == 0` or `dim > 16`.
    pub fn boolean_or(dim: usize) -> Dataset {
        Self::boolean(dim, |ones, _| ones > 0)
    }

    fn boolean(dim: usize, label: impl Fn(usize, usize) -> bool) -> Dataset {
        assert!(dim > 0 && dim <= 16, "boolean dimension must be 1..=16");
        let mut samples = Vec::with_capacity(1 << dim);
        for pattern in 0..(1u32 << dim) {
            let duties: Vec<DutyCycle> = (0..dim)
                .map(|i| {
                    if pattern & (1 << i) != 0 {
                        DutyCycle::new(0.85)
                    } else {
                        DutyCycle::new(0.15)
                    }
                })
                .collect();
            samples.push(Sample::new(
                duties,
                label(pattern.count_ones() as usize, dim),
            ));
        }
        Dataset::new(samples).expect("boolean dataset is valid")
    }

    /// A micro-edge *sensor event filter*: three correlated channels
    /// (e.g. accelerometer axes) where an event raises all channels; the
    /// label marks event frames. Channel noise makes the task realistic
    /// but it remains linearly separable with positive weights.
    ///
    /// # Panics
    ///
    /// Panics if `n == 0`.
    pub fn sensor_events(n: usize, seed: u64) -> Dataset {
        assert!(n > 0, "need at least one sample");
        let mut rng = StdRng::seed_from_u64(seed);
        let mut samples = Vec::with_capacity(n);
        for _ in 0..n {
            let event = rng.gen_bool(0.5);
            let base: f64 = if event {
                rng.gen_range(0.62..0.92)
            } else {
                rng.gen_range(0.08..0.38)
            };
            let duties: Vec<DutyCycle> = (0..3)
                .map(|_| DutyCycle::clamped(base + rng.gen_range(-0.06..0.06)))
                .collect();
            samples.push(Sample::new(duties, event));
        }
        Dataset::new(samples).expect("sensor dataset is valid")
    }
}

/// Shared label helper (kept in a private module so `dataset` and tests
/// agree on the teacher model).
pub(crate) mod analytic_label {
    use crate::duty::DutyCycle;
    use crate::weight::WeightVector;

    /// Eq. 2 output as a fraction of Vdd.
    pub(crate) fn ideal_ratio(duties: &[DutyCycle], weights: &WeightVector) -> f64 {
        let acc: f64 = duties
            .iter()
            .zip(weights.iter())
            .map(|(d, &w)| d.value() * w as f64)
            .sum();
        acc / (weights.len() as f64 * weights.max_weight() as f64)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn construction_validation() {
        assert!(matches!(Dataset::new(vec![]), Err(CoreError::EmptyDataset)));
        let ragged = vec![
            Sample::new(vec![DutyCycle::new(0.5)], true),
            Sample::new(vec![DutyCycle::new(0.5), DutyCycle::new(0.1)], false),
        ];
        assert!(matches!(
            Dataset::new(ragged),
            Err(CoreError::DimensionMismatch { .. })
        ));
    }

    #[test]
    fn separable_generator_is_consistent_with_its_teacher() {
        let (data, teacher, threshold) = Dataset::linearly_separable(200, 3, 3, 42);
        assert_eq!(data.dim(), 3);
        assert_eq!(data.len(), 200);
        for s in data.samples() {
            let ratio = ideal_ratio(&s.duties, &teacher);
            assert_eq!(ratio > threshold, s.label, "teacher must agree");
            assert!((ratio - threshold).abs() >= 0.03, "margin enforced");
        }
        // Non-degenerate label mix.
        let rate = data.positive_rate();
        assert!(rate > 0.05 && rate < 0.95, "positive rate {rate}");
    }

    #[test]
    fn separable_generator_is_deterministic() {
        let (a, wa, ta) = Dataset::linearly_separable(50, 3, 3, 7);
        let (b, wb, tb) = Dataset::linearly_separable(50, 3, 3, 7);
        assert_eq!(a, b);
        assert_eq!(wa, wb);
        assert_eq!(ta, tb);
    }

    #[test]
    fn majority_truth_table() {
        let data = Dataset::majority(3);
        assert_eq!(data.len(), 8);
        for s in data.samples() {
            let ones = s.duties.iter().filter(|d| d.value() > 0.5).count();
            assert_eq!(s.label, ones >= 2);
        }
    }

    #[test]
    fn boolean_generators() {
        let and = Dataset::boolean_and(2);
        assert_eq!(and.samples().iter().filter(|s| s.label).count(), 1);
        let or = Dataset::boolean_or(2);
        assert_eq!(or.samples().iter().filter(|s| s.label).count(), 3);
    }

    #[test]
    fn sensor_events_are_separable_by_mean() {
        let data = Dataset::sensor_events(300, 3);
        for s in data.samples() {
            let mean: f64 = s.duties.iter().map(|d| d.value()).sum::<f64>() / s.duties.len() as f64;
            assert_eq!(s.label, mean > 0.5, "mean {mean}");
        }
    }

    #[test]
    fn split_partitions_without_loss() {
        let (data, _, _) = Dataset::linearly_separable(100, 2, 3, 1);
        let (train, test) = data.split(0.7, 9);
        assert_eq!(train.len() + test.len(), 100);
        assert_eq!(train.len(), 70);
        assert_eq!(train.dim(), 2);
        // Deterministic.
        let (train2, _) = data.split(0.7, 9);
        assert_eq!(train, train2);
    }

    #[test]
    #[should_panic(expected = "train fraction")]
    fn bad_split_fraction_panics() {
        let (data, _, _) = Dataset::linearly_separable(10, 2, 3, 1);
        let _ = data.split(1.0, 0);
    }
}
