//! Multi-layer composition — the paper's deep-network motivation.
//!
//! The paper opens with "Perceptron is the basic building block of deep
//! neural networks". This module composes the mixed-signal perceptron
//! into multi-layer networks the way the hardware naturally allows:
//!
//! * each neuron is a **differential** pair of weighted adders (signed
//!   weights) plus a comparator — exactly the paper's cell fabric,
//! * the comparator's binary decision is **re-encoded as a near-rail duty
//!   cycle** for the next layer (a 1-bit PWM DAC: logic high → 85 % duty,
//!   logic low → 15 %), so every inter-layer signal is again a
//!   supply-robust temporal code,
//! * a constant always-high input provides each neuron's bias weight.
//!
//! The result is a classic hard-threshold MLP. [`Mlp::xor`] ships the
//! canonical non-linearly-separable demo (OR ∧ NAND), verified at every
//! evaluator tier by the test-suite.

use crate::duty::DutyCycle;
use crate::error::CoreError;
use crate::eval::Evaluator;
use crate::infer::Query;
use crate::weight::SignedWeightVector;

/// Duty cycle used to encode logic low between layers.
pub const ENCODE_LOW: f64 = 0.15;
/// Duty cycle used to encode logic high between layers.
pub const ENCODE_HIGH: f64 = 0.85;

/// One layer of hard-threshold differential neurons sharing the same
/// inputs.
///
/// Every neuron's weight vector must have length `inputs + 1`: the last
/// weight multiplies an implicit constant always-high input and acts as
/// the bias `b` of the paper's Eq. 1.
#[derive(Debug, Clone)]
pub struct HardLayer {
    neurons: Vec<SignedWeightVector>,
    inputs: usize,
}

impl HardLayer {
    /// Creates a layer.
    ///
    /// # Errors
    ///
    /// Returns [`CoreError::DimensionMismatch`] if the neurons disagree on
    /// input dimension, or [`CoreError::EmptyDataset`]-style error for an
    /// empty layer.
    pub fn new(neurons: Vec<SignedWeightVector>) -> Result<Self, CoreError> {
        let Some(first) = neurons.first() else {
            return Err(CoreError::DimensionMismatch {
                expected: 1,
                got: 0,
            });
        };
        let with_bias = first.len();
        if with_bias < 2 {
            return Err(CoreError::DimensionMismatch {
                expected: 2,
                got: with_bias,
            });
        }
        for n in &neurons {
            if n.len() != with_bias {
                return Err(CoreError::DimensionMismatch {
                    expected: with_bias,
                    got: n.len(),
                });
            }
        }
        Ok(HardLayer {
            inputs: with_bias - 1,
            neurons,
        })
    }

    /// Number of (external) inputs, excluding the bias.
    pub fn inputs(&self) -> usize {
        self.inputs
    }

    /// Number of neurons (= outputs).
    pub fn outputs(&self) -> usize {
        self.neurons.len()
    }

    /// The neurons' signed weight vectors (bias weight last).
    pub fn neurons(&self) -> &[SignedWeightVector] {
        &self.neurons
    }

    /// Evaluates the layer: one comparator decision per neuron.
    ///
    /// # Errors
    ///
    /// Returns [`CoreError::DimensionMismatch`] if `duties.len()` differs
    /// from [`HardLayer::inputs`], and propagates evaluator errors.
    pub fn forward<E: Evaluator>(
        &self,
        evaluator: &E,
        duties: &[DutyCycle],
    ) -> Result<Vec<bool>, CoreError> {
        if duties.len() != self.inputs {
            return Err(CoreError::DimensionMismatch {
                expected: self.inputs,
                got: duties.len(),
            });
        }
        let mut extended = duties.to_vec();
        extended.push(DutyCycle::ONE); // the bias input
                                       // Both halves of every neuron go through one batched call; the
                                       // (pos, neg) per-neuron order matches the historical sequential
                                       // path, so stream-seeded noisy evaluators see the same draws when
                                       // the default sequential batch applies.
        let mut queries = Vec::with_capacity(self.neurons.len() * 2);
        for neuron in &self.neurons {
            let (pos, neg) = neuron.split();
            queries.push(Query::new(extended.clone(), pos)?);
            queries.push(Query::new(extended.clone(), neg)?);
        }
        let evals = evaluator
            .evaluate_batch(&queries)
            .into_iter()
            .collect::<Result<Vec<_>, _>>()?;
        Ok(evals
            .chunks_exact(2)
            .map(|pair| pair[0].vout.value() > pair[1].vout.value())
            .collect())
    }

    /// Evaluates the layer and re-encodes the decisions as near-rail duty
    /// cycles for the next layer.
    ///
    /// # Errors
    ///
    /// Same as [`HardLayer::forward`].
    pub fn forward_encoded<E: Evaluator>(
        &self,
        evaluator: &E,
        duties: &[DutyCycle],
    ) -> Result<Vec<DutyCycle>, CoreError> {
        Ok(self
            .forward(evaluator, duties)?
            .into_iter()
            .map(|b| DutyCycle::new(if b { ENCODE_HIGH } else { ENCODE_LOW }))
            .collect())
    }
}

/// A two-layer hard-threshold network: one hidden [`HardLayer`] and one
/// output neuron, all built from the paper's differential adder cells.
#[derive(Debug, Clone)]
pub struct Mlp {
    hidden: HardLayer,
    output: HardLayer,
}

impl Mlp {
    /// Creates a two-layer network.
    ///
    /// # Errors
    ///
    /// Returns [`CoreError::DimensionMismatch`] if the output layer does
    /// not have exactly one neuron taking `hidden.outputs()` inputs.
    pub fn new(hidden: HardLayer, output: HardLayer) -> Result<Self, CoreError> {
        if output.outputs() != 1 {
            return Err(CoreError::DimensionMismatch {
                expected: 1,
                got: output.outputs(),
            });
        }
        if output.inputs() != hidden.outputs() {
            return Err(CoreError::DimensionMismatch {
                expected: hidden.outputs(),
                got: output.inputs(),
            });
        }
        Ok(Mlp { hidden, output })
    }

    /// The canonical XOR network: hidden neurons OR and NAND, output AND.
    /// Weight derivation (3-bit magnitudes, Eq.-2 semantics, near-rail
    /// encoding 0.15/0.85) is spelled out in the module tests.
    pub fn xor() -> Self {
        let hidden = HardLayer::new(vec![
            // OR: fires if either input is high.
            SignedWeightVector::new(vec![7, 7, -4], 3).expect("valid weights"),
            // NAND: fires unless both inputs are high.
            SignedWeightVector::new(vec![-5, -5, 7], 3).expect("valid weights"),
        ])
        .expect("layer is consistent");
        let output = HardLayer::new(vec![
            // AND of the two hidden outputs.
            SignedWeightVector::new(vec![6, 6, -7], 3).expect("valid weights"),
        ])
        .expect("layer is consistent");
        Mlp::new(hidden, output).expect("shapes match")
    }

    /// The hidden layer.
    pub fn hidden(&self) -> &HardLayer {
        &self.hidden
    }

    /// The output layer.
    pub fn output(&self) -> &HardLayer {
        &self.output
    }

    /// End-to-end classification.
    ///
    /// # Errors
    ///
    /// Propagates layer and evaluator errors.
    pub fn classify<E: Evaluator>(
        &self,
        evaluator: &E,
        duties: &[DutyCycle],
    ) -> Result<bool, CoreError> {
        let hidden = self.hidden.forward_encoded(evaluator, duties)?;
        let out = self.output.forward(evaluator, &hidden)?;
        Ok(out[0])
    }

    /// Total transistor count: every signed weight costs two unsigned
    /// adder columns (positive and negative half), 6 transistors per bit.
    pub fn transistor_count(&self) -> usize {
        let count_layer = |l: &HardLayer| -> usize {
            l.neurons()
                .iter()
                .map(|n| 2 * n.len() * n.bits() as usize * 6)
                .sum()
        };
        count_layer(&self.hidden) + count_layer(&self.output)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::eval::{AnalyticEvaluator, SwitchLevelEvaluator};

    fn logic(b: bool) -> DutyCycle {
        DutyCycle::new(if b { ENCODE_HIGH } else { ENCODE_LOW })
    }

    #[test]
    fn xor_truth_table_analytic() {
        let mlp = Mlp::xor();
        let e = AnalyticEvaluator::paper();
        for (a, b) in [(false, false), (false, true), (true, false), (true, true)] {
            let y = mlp.classify(&e, &[logic(a), logic(b)]).unwrap();
            assert_eq!(y, a ^ b, "XOR({a}, {b})");
        }
    }

    #[test]
    fn xor_truth_table_switch_level() {
        // The same network evaluated with real on-resistances and PSS.
        let mlp = Mlp::xor();
        let e = SwitchLevelEvaluator::paper();
        for (a, b) in [(false, false), (false, true), (true, false), (true, true)] {
            let y = mlp.classify(&e, &[logic(a), logic(b)]).unwrap();
            assert_eq!(y, a ^ b, "XOR({a}, {b})");
        }
    }

    #[test]
    fn hidden_neurons_compute_or_and_nand() {
        let mlp = Mlp::xor();
        let e = AnalyticEvaluator::paper();
        for (a, b) in [(false, false), (false, true), (true, false), (true, true)] {
            let h = mlp.hidden().forward(&e, &[logic(a), logic(b)]).unwrap();
            assert_eq!(h[0], a || b, "OR({a}, {b})");
            assert_eq!(h[1], !(a && b), "NAND({a}, {b})");
        }
    }

    #[test]
    fn layer_validation() {
        assert!(HardLayer::new(vec![]).is_err());
        // Ragged neurons rejected.
        let n1 = SignedWeightVector::new(vec![1, 2, 3], 3).unwrap();
        let n2 = SignedWeightVector::new(vec![1, 2], 3).unwrap();
        assert!(HardLayer::new(vec![n1.clone(), n2]).is_err());
        // Input-count bookkeeping excludes the bias.
        let layer = HardLayer::new(vec![n1]).unwrap();
        assert_eq!(layer.inputs(), 2);
        assert_eq!(layer.outputs(), 1);
    }

    #[test]
    fn mlp_shape_validation() {
        let hidden = HardLayer::new(vec![
            SignedWeightVector::new(vec![1, 0, 0], 3).unwrap(),
            SignedWeightVector::new(vec![0, 1, 0], 3).unwrap(),
        ])
        .unwrap();
        // Output expecting three hidden inputs ≠ two hidden outputs.
        let bad_output =
            HardLayer::new(vec![SignedWeightVector::new(vec![1, 1, 1, 0], 3).unwrap()]).unwrap();
        assert!(Mlp::new(hidden.clone(), bad_output).is_err());
        // Two output neurons rejected.
        let two_outputs = HardLayer::new(vec![
            SignedWeightVector::new(vec![1, 1, 0], 3).unwrap(),
            SignedWeightVector::new(vec![1, 1, 0], 3).unwrap(),
        ])
        .unwrap();
        assert!(Mlp::new(hidden, two_outputs).is_err());
    }

    #[test]
    fn dimension_mismatch_on_forward() {
        let mlp = Mlp::xor();
        let e = AnalyticEvaluator::paper();
        let err = mlp.classify(&e, &[logic(true)]).unwrap_err();
        assert!(matches!(err, CoreError::DimensionMismatch { .. }));
    }

    #[test]
    fn transistor_count_scales_with_network() {
        let mlp = Mlp::xor();
        // 3 neurons × 3 signed weights × 2 halves × 3 bits × 6 T = 324.
        assert_eq!(mlp.transistor_count(), 324);
    }
}
