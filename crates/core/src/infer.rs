//! Batched inference engine — the evaluator stack as a serving product.
//!
//! The paper's perceptron is ultimately an inference device: Eq. 2 gives a
//! closed-form output that the circuit tiers merely refine. PWM inputs are
//! low-resolution discrete (3-bit weights × bounded duty resolution), so
//! throughput lives in memoization and batching, not per-query transients.
//! This module packages that observation behind one call site:
//!
//! * [`Query`] / [`Eval`] — the serving request/response pair used by
//!   [`Evaluator::evaluate`] and [`Evaluator::evaluate_batch`].
//! * [`TierPolicy`] — how much output error the caller tolerates, and
//!   therefore which fidelity [`Tier`] must answer.
//! * [`MemoCache`] — a sharded, duty-quantized memo cache with hit/miss/
//!   eviction counters surfaced through the [`Observer`] telemetry layer
//!   as `infer.*` counters and an `InferBatch` event.
//! * [`InferenceEngine`] — tiered dispatch (analytic fast path, escalating
//!   to switch-level / transistor tiers only when the tolerance demands
//!   it) over the cache, with per-tier counts in the report.
//!
//! The engine itself implements [`Evaluator`], so every consumer that is
//! generic over the trait ([`crate::PwmPerceptron`], [`crate::HardLayer`],
//! [`crate::WtaClassifier`], training, metrics) can serve through it
//! unchanged.

use std::collections::hash_map::DefaultHasher;
use std::collections::HashMap;
use std::hash::{Hash, Hasher};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::RwLock;

use mssim::prelude::Volts;
use mssim::telemetry::{dispatch, Event, Observer};

use crate::duty::DutyCycle;
use crate::error::CoreError;
use crate::eval::{AnalyticEvaluator, CircuitEvaluator, Evaluator, SwitchLevelEvaluator};
use crate::weight::WeightVector;

/// Fidelity tier of an evaluation.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum Tier {
    /// Paper Eq. 2 — closed form, ~ns.
    Analytic,
    /// Periodic-steady-state switch model — ~µs.
    SwitchLevel,
    /// Transistor-level transient on [`mssim`] — the reference, ~ms–s.
    Circuit,
}

impl Tier {
    /// Stable index for per-tier accounting (`0..3`).
    pub fn index(self) -> usize {
        match self {
            Tier::Analytic => 0,
            Tier::SwitchLevel => 1,
            Tier::Circuit => 2,
        }
    }

    /// Human-readable tier name.
    pub fn name(self) -> &'static str {
        match self {
            Tier::Analytic => "analytic",
            Tier::SwitchLevel => "switch-level",
            Tier::Circuit => "circuit",
        }
    }
}

/// One inference request: a duty-cycle vector and the weight vector it
/// multiplies. Dimensions are validated at construction, so an existing
/// `Query` is always internally consistent.
#[derive(Debug, Clone, PartialEq)]
pub struct Query {
    duties: Vec<DutyCycle>,
    weights: WeightVector,
}

impl Query {
    /// Creates a query.
    ///
    /// # Errors
    ///
    /// Returns [`CoreError::DimensionMismatch`] if `duties` and `weights`
    /// differ in length.
    pub fn new(duties: Vec<DutyCycle>, weights: WeightVector) -> Result<Self, CoreError> {
        if duties.len() != weights.len() {
            return Err(CoreError::DimensionMismatch {
                expected: weights.len(),
                got: duties.len(),
            });
        }
        Ok(Query { duties, weights })
    }

    /// Creates a query from raw duty values and weight magnitudes.
    ///
    /// # Errors
    ///
    /// Returns [`CoreError::InvalidDuty`] / [`CoreError::InvalidWeight`]
    /// for out-of-range values and [`CoreError::DimensionMismatch`] for
    /// ragged inputs.
    pub fn from_raw(duties: &[f64], weights: &[u32], bits: u32) -> Result<Self, CoreError> {
        Query::new(
            DutyCycle::try_from_slice(duties)?,
            WeightVector::new(weights.to_vec(), bits)?,
        )
    }

    /// The duty-cycle vector.
    pub fn duties(&self) -> &[DutyCycle] {
        &self.duties
    }

    /// The weight vector.
    pub fn weights(&self) -> &WeightVector {
        &self.weights
    }

    /// The query with every duty snapped to `levels` equidistant values
    /// (rails included) — the cache's input alphabet.
    pub fn quantized(&self, levels: u32) -> Query {
        Query {
            duties: self.duties.iter().map(|d| d.quantized(levels)).collect(),
            weights: self.weights.clone(),
        }
    }
}

/// One inference response.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Eval {
    /// Average output voltage (paper Eq. 2 semantics).
    pub vout: Volts,
    /// Fidelity tier that produced (or originally produced, for cached
    /// responses) the value.
    pub tier: Tier,
    /// Whether the value was served from the memo cache.
    pub cached: bool,
}

/// How much output-voltage error the caller tolerates, and the certified
/// error bounds of the cheap tiers — together they decide which [`Tier`]
/// must answer.
///
/// The defaults come from the `repro xval` cross-validation experiment:
/// the analytic tier tracks the transistor-level reference within a few
/// tens of millivolts and the switch-level tier within ~20 mV on the
/// paper's Table II rows.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct TierPolicy {
    tolerance: f64,
    analytic_error: f64,
    switch_error: f64,
}

/// Default certified |analytic − circuit| bound in volts (`repro xval`).
pub const ANALYTIC_ERROR_BOUND: f64 = 0.05;
/// Default certified |switch-level − circuit| bound in volts.
pub const SWITCH_ERROR_BOUND: f64 = 0.02;

impl TierPolicy {
    /// Accept any answer within `tolerance_volts` of the transistor-level
    /// reference; the engine picks the cheapest tier whose certified
    /// error bound fits.
    ///
    /// # Panics
    ///
    /// Panics if `tolerance_volts` is negative or NaN.
    pub fn tolerance(tolerance_volts: f64) -> Self {
        assert!(
            tolerance_volts >= 0.0,
            "tolerance must be non-negative volts"
        );
        TierPolicy {
            tolerance: tolerance_volts,
            analytic_error: ANALYTIC_ERROR_BOUND,
            switch_error: SWITCH_ERROR_BOUND,
        }
    }

    /// Any tolerance — the analytic fast path always answers.
    pub fn analytic() -> Self {
        Self::tolerance(f64::INFINITY)
    }

    /// Demand switch-level fidelity (tolerance between the two bounds).
    pub fn switch_level() -> Self {
        Self::tolerance(SWITCH_ERROR_BOUND)
    }

    /// Demand the transistor-level reference (zero tolerance).
    pub fn circuit() -> Self {
        Self::tolerance(0.0)
    }

    /// Overrides the certified per-tier error bounds.
    ///
    /// # Panics
    ///
    /// Panics unless `0 <= switch_error <= analytic_error`.
    pub fn with_error_bounds(mut self, analytic_error: f64, switch_error: f64) -> Self {
        assert!(
            (0.0..=analytic_error).contains(&switch_error),
            "bounds must satisfy 0 <= switch <= analytic"
        );
        self.analytic_error = analytic_error;
        self.switch_error = switch_error;
        self
    }

    /// The caller's tolerance in volts.
    pub fn tolerance_volts(&self) -> f64 {
        self.tolerance
    }

    /// The cheapest tier whose certified error bound fits the tolerance.
    pub fn demanded_tier(&self) -> Tier {
        if self.tolerance >= self.analytic_error {
            Tier::Analytic
        } else if self.tolerance >= self.switch_error {
            Tier::SwitchLevel
        } else {
            Tier::Circuit
        }
    }
}

impl Default for TierPolicy {
    fn default() -> Self {
        TierPolicy::analytic()
    }
}

/// Cache key: duty indices on the `resolution`-level grid plus the exact
/// weight vector and producing tier. Weights are part of the key, so a
/// weight mutation can never be served a stale entry — it simply misses.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
struct CacheKey {
    duties: Vec<u16>,
    weights: Vec<u32>,
    bits: u32,
    tier: u8,
}

/// Counter snapshot of a [`MemoCache`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct CacheStats {
    /// Lookups answered from the cache.
    pub hits: u64,
    /// Lookups that fell through to an evaluator.
    pub misses: u64,
    /// Entries stored.
    pub insertions: u64,
    /// Entries discarded by capacity eviction.
    pub evictions: u64,
}

impl CacheStats {
    /// `hits / (hits + misses)`, or 0 for an untouched cache.
    pub fn hit_rate(&self) -> f64 {
        let total = self.hits + self.misses;
        if total == 0 {
            0.0
        } else {
            self.hits as f64 / total as f64
        }
    }
}

/// Sharded memo cache keyed on quantized duty/weight vectors.
///
/// Lock granularity is one `RwLock` per shard, so concurrent batch
/// workers mostly touch disjoint shards. Capacity is enforced per shard
/// with epoch eviction: a shard that reaches its capacity is flushed
/// whole (deterministic, and never serves a stale value — keys carry the
/// full weight vector, so mutated weights miss instead of colliding).
#[derive(Debug)]
pub struct MemoCache {
    shards: Vec<RwLock<HashMap<CacheKey, f64>>>,
    resolution: u32,
    shard_capacity: usize,
    hits: AtomicU64,
    misses: AtomicU64,
    insertions: AtomicU64,
    evictions: AtomicU64,
}

const SHARDS: usize = 16;

impl MemoCache {
    /// Cache with `resolution` duty levels and room for roughly
    /// `capacity` entries.
    ///
    /// # Panics
    ///
    /// Panics if `resolution < 2` or `capacity == 0`.
    pub fn new(resolution: u32, capacity: usize) -> Self {
        assert!(resolution >= 2, "need at least two duty levels");
        assert!(capacity > 0, "capacity must be positive");
        MemoCache {
            shards: (0..SHARDS).map(|_| RwLock::new(HashMap::new())).collect(),
            resolution,
            shard_capacity: capacity.div_ceil(SHARDS).max(1),
            hits: AtomicU64::new(0),
            misses: AtomicU64::new(0),
            insertions: AtomicU64::new(0),
            evictions: AtomicU64::new(0),
        }
    }

    /// The duty grid resolution (levels).
    pub fn resolution(&self) -> u32 {
        self.resolution
    }

    /// Current number of live entries across all shards.
    pub fn len(&self) -> usize {
        self.shards
            .iter()
            .map(|s| s.read().expect("cache lock poisoned").len())
            .sum()
    }

    /// Whether the cache currently holds no entries.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Counter snapshot.
    pub fn stats(&self) -> CacheStats {
        CacheStats {
            hits: self.hits.load(Ordering::Relaxed),
            misses: self.misses.load(Ordering::Relaxed),
            insertions: self.insertions.load(Ordering::Relaxed),
            evictions: self.evictions.load(Ordering::Relaxed),
        }
    }

    /// Drops every entry (counters are kept).
    pub fn clear(&self) {
        for shard in &self.shards {
            shard.write().expect("cache lock poisoned").clear();
        }
    }

    fn key(&self, query: &Query, tier: Tier) -> CacheKey {
        let top = (self.resolution - 1) as f64;
        CacheKey {
            duties: query
                .duties
                .iter()
                .map(|d| (d.value() * top).round() as u16)
                .collect(),
            weights: query.weights.as_slice().to_vec(),
            bits: query.weights.bits(),
            tier: tier.index() as u8,
        }
    }

    fn shard_of(&self, key: &CacheKey) -> usize {
        let mut h = DefaultHasher::new();
        key.hash(&mut h);
        (h.finish() as usize) % self.shards.len()
    }

    fn lookup(&self, key: &CacheKey) -> Option<f64> {
        let shard = self.shards[self.shard_of(key)]
            .read()
            .expect("cache lock poisoned");
        let found = shard.get(key).copied();
        if found.is_some() {
            self.hits.fetch_add(1, Ordering::Relaxed);
        } else {
            self.misses.fetch_add(1, Ordering::Relaxed);
        }
        found
    }

    fn insert(&self, key: CacheKey, vout: f64) {
        let mut shard = self.shards[self.shard_of(&key)]
            .write()
            .expect("cache lock poisoned");
        if shard.len() >= self.shard_capacity && !shard.contains_key(&key) {
            self.evictions
                .fetch_add(shard.len() as u64, Ordering::Relaxed);
            shard.clear();
        }
        if shard.insert(key, vout).is_none() {
            self.insertions.fetch_add(1, Ordering::Relaxed);
        }
    }
}

/// Per-tier evaluation counts plus cache statistics — the engine's
/// serving report.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct InferReport {
    /// Total queries answered.
    pub queries: u64,
    /// Evaluations performed by each tier, indexed by [`Tier::index`]
    /// (cache hits perform none).
    pub tier_evals: [u64; 3],
    /// Cache counters (zeroed when no cache is configured).
    pub cache: CacheStats,
}

impl InferReport {
    /// Evaluations the given tier performed.
    pub fn evals(&self, tier: Tier) -> u64 {
        self.tier_evals[tier.index()]
    }
}

/// Tiered, memoized, batched dispatch over the evaluator stack.
///
/// The analytic tier is always present; switch-level and circuit tiers
/// are optional escalation targets. Dispatch picks the cheapest tier the
/// [`TierPolicy`] allows, degraded to the best *configured* tier: a
/// policy demanding the transistor-level reference on an engine without
/// a circuit tier is answered by the highest tier available.
///
/// When a [`MemoCache`] is configured, queries are first snapped onto the
/// cache's duty grid (the PWM input alphabet is discrete, so serving
/// streams are expected to live on the grid already — quantization is
/// then the identity) and answered from the cache when possible.
///
/// # Examples
///
/// ```
/// use pwm_perceptron::prelude::*;
///
/// # fn main() -> Result<(), pwm_perceptron::CoreError> {
/// let engine = InferenceEngine::paper().with_cache(16, 1 << 16);
/// let q = Query::from_raw(&[0.7, 0.8, 0.9], &[7, 7, 7], 3)?;
/// let first = engine.evaluate(&q)?;
/// let second = engine.evaluate(&q)?;
/// assert!(!first.cached && second.cached);
/// assert_eq!(first.vout, second.vout);
/// # Ok(())
/// # }
/// ```
#[derive(Debug)]
pub struct InferenceEngine {
    analytic: AnalyticEvaluator,
    switch: Option<SwitchLevelEvaluator>,
    circuit: Option<CircuitEvaluator>,
    policy: TierPolicy,
    cache: Option<MemoCache>,
    queries: AtomicU64,
    tier_evals: [AtomicU64; 3],
}

impl InferenceEngine {
    /// Engine with only the analytic tier at the given supply.
    pub fn new(vdd: Volts) -> Self {
        InferenceEngine {
            analytic: AnalyticEvaluator::new(vdd),
            switch: None,
            circuit: None,
            policy: TierPolicy::default(),
            cache: None,
            queries: AtomicU64::new(0),
            tier_evals: [AtomicU64::new(0), AtomicU64::new(0), AtomicU64::new(0)],
        }
    }

    /// Engine at the paper's 2.5 V supply.
    pub fn paper() -> Self {
        Self::new(Volts(2.5))
    }

    /// Adds (or replaces) the switch-level escalation tier.
    pub fn with_switch_tier(mut self, evaluator: SwitchLevelEvaluator) -> Self {
        self.switch = Some(evaluator);
        self
    }

    /// Adds (or replaces) the transistor-level escalation tier.
    pub fn with_circuit_tier(mut self, evaluator: CircuitEvaluator) -> Self {
        self.circuit = Some(evaluator);
        self
    }

    /// Sets the dispatch policy.
    pub fn with_policy(mut self, policy: TierPolicy) -> Self {
        self.policy = policy;
        self
    }

    /// Enables the memo cache with the given duty resolution and
    /// capacity.
    ///
    /// # Panics
    ///
    /// As for [`MemoCache::new`].
    pub fn with_cache(mut self, resolution: u32, capacity: usize) -> Self {
        self.cache = Some(MemoCache::new(resolution, capacity));
        self
    }

    /// The dispatch policy.
    pub fn policy(&self) -> TierPolicy {
        self.policy
    }

    /// The memo cache, when configured.
    pub fn cache(&self) -> Option<&MemoCache> {
        self.cache.as_ref()
    }

    /// The tier that will answer under the current policy and configured
    /// tiers.
    pub fn resolved_tier(&self) -> Tier {
        match self.policy.demanded_tier() {
            Tier::Circuit if self.circuit.is_some() => Tier::Circuit,
            Tier::Circuit if self.switch.is_some() => Tier::SwitchLevel,
            Tier::SwitchLevel if self.switch.is_some() => Tier::SwitchLevel,
            Tier::SwitchLevel if self.circuit.is_some() => Tier::Circuit,
            _ => Tier::Analytic,
        }
    }

    fn tier_evaluator(&self, tier: Tier) -> &dyn Evaluator {
        match tier {
            Tier::Analytic => &self.analytic,
            Tier::SwitchLevel => self.switch.as_ref().expect("switch tier configured"),
            Tier::Circuit => self.circuit.as_ref().expect("circuit tier configured"),
        }
    }

    /// The query the engine actually evaluates: snapped onto the cache's
    /// duty grid when a cache is configured, unchanged otherwise.
    pub fn admitted(&self, query: &Query) -> Query {
        match &self.cache {
            Some(cache) => query.quantized(cache.resolution()),
            None => query.clone(),
        }
    }

    /// Answers one query through the tiered dispatch and memo cache.
    ///
    /// # Errors
    ///
    /// Propagates evaluator errors.
    pub fn evaluate(&self, query: &Query) -> Result<Eval, CoreError> {
        self.queries.fetch_add(1, Ordering::Relaxed);
        let tier = self.resolved_tier();
        let evaluator = self.tier_evaluator(tier);
        let Some(cache) = &self.cache else {
            self.tier_evals[tier.index()].fetch_add(1, Ordering::Relaxed);
            return evaluator.evaluate(query);
        };
        let admitted = query.quantized(cache.resolution());
        let key = cache.key(&admitted, tier);
        if let Some(vout) = cache.lookup(&key) {
            return Ok(Eval {
                vout: Volts(vout),
                tier,
                cached: true,
            });
        }
        self.tier_evals[tier.index()].fetch_add(1, Ordering::Relaxed);
        let eval = evaluator.evaluate(&admitted)?;
        cache.insert(key, eval.vout.value());
        Ok(eval)
    }

    /// Answers a batch: cache hits are served immediately, distinct
    /// misses are deduplicated and fanned over the selected tier's
    /// batched evaluator (which amortizes circuit construction and
    /// parallelises over the work-stealing sweep driver).
    pub fn evaluate_batch(&self, queries: &[Query]) -> Vec<Result<Eval, CoreError>> {
        self.queries
            .fetch_add(queries.len() as u64, Ordering::Relaxed);
        let tier = self.resolved_tier();
        let evaluator = self.tier_evaluator(tier);
        let Some(cache) = &self.cache else {
            self.tier_evals[tier.index()].fetch_add(queries.len() as u64, Ordering::Relaxed);
            return evaluator.evaluate_batch(queries);
        };

        let mut out: Vec<Option<Result<Eval, CoreError>>> = vec![None; queries.len()];
        // Key → position in the deduplicated miss list.
        let mut miss_of: HashMap<CacheKey, usize> = HashMap::new();
        let mut misses: Vec<Query> = Vec::new();
        // Per input query: which miss slot serves it (None = cache hit).
        let mut slot_of: Vec<Option<usize>> = Vec::with_capacity(queries.len());
        for (i, query) in queries.iter().enumerate() {
            let admitted = query.quantized(cache.resolution());
            let key = cache.key(&admitted, tier);
            if let Some(vout) = cache.lookup(&key) {
                out[i] = Some(Ok(Eval {
                    vout: Volts(vout),
                    tier,
                    cached: true,
                }));
                slot_of.push(None);
            } else {
                let slot = *miss_of.entry(key).or_insert_with(|| {
                    misses.push(admitted);
                    misses.len() - 1
                });
                slot_of.push(Some(slot));
            }
        }

        self.tier_evals[tier.index()].fetch_add(misses.len() as u64, Ordering::Relaxed);
        let computed = evaluator.evaluate_batch(&misses);
        for (key, slot) in miss_of {
            if let Ok(eval) = &computed[slot] {
                cache.insert(key, eval.vout.value());
            }
        }
        for (i, slot) in slot_of.iter().enumerate() {
            if let Some(slot) = slot {
                out[i] = Some(computed[*slot].clone());
            }
        }
        out.into_iter()
            .map(|r| r.expect("every query answered"))
            .collect()
    }

    /// [`InferenceEngine::evaluate_batch`] with telemetry: dispatches one
    /// [`Event::InferBatch`] describing the batch to `observer`, which
    /// derives the `infer.*` counters through the standard vocabulary.
    pub fn evaluate_batch_observed(
        &self,
        queries: &[Query],
        observer: &mut dyn Observer,
    ) -> Vec<Result<Eval, CoreError>> {
        let before = self.report();
        let out = self.evaluate_batch(queries);
        let after = self.report();
        dispatch(
            observer,
            &Event::InferBatch {
                queries: queries.len(),
                cache_hits: after.cache.hits - before.cache.hits,
                cache_misses: after.cache.misses - before.cache.misses,
                evictions: after.cache.evictions - before.cache.evictions,
                analytic: after.evals(Tier::Analytic) - before.evals(Tier::Analytic),
                switch_level: after.evals(Tier::SwitchLevel) - before.evals(Tier::SwitchLevel),
                circuit: after.evals(Tier::Circuit) - before.evals(Tier::Circuit),
            },
        );
        out
    }

    /// Serving report: total queries, per-tier evaluation counts and
    /// cache statistics.
    pub fn report(&self) -> InferReport {
        InferReport {
            queries: self.queries.load(Ordering::Relaxed),
            tier_evals: [
                self.tier_evals[0].load(Ordering::Relaxed),
                self.tier_evals[1].load(Ordering::Relaxed),
                self.tier_evals[2].load(Ordering::Relaxed),
            ],
            cache: self
                .cache
                .as_ref()
                .map(MemoCache::stats)
                .unwrap_or_default(),
        }
    }

    /// Drops every cached entry (a weight-space retraining boundary).
    pub fn clear_cache(&self) {
        if let Some(cache) = &self.cache {
            cache.clear();
        }
    }
}

impl Evaluator for InferenceEngine {
    fn vout(&self, duties: &[DutyCycle], weights: &WeightVector) -> Result<Volts, CoreError> {
        let query = Query::new(duties.to_vec(), weights.clone())?;
        Ok(self.evaluate(&query)?.vout)
    }

    fn vdd(&self) -> Volts {
        self.analytic.vdd()
    }

    fn tier(&self) -> Tier {
        self.resolved_tier()
    }

    fn evaluate(&self, query: &Query) -> Result<Eval, CoreError> {
        InferenceEngine::evaluate(self, query)
    }

    fn evaluate_batch(&self, queries: &[Query]) -> Vec<Result<Eval, CoreError>> {
        InferenceEngine::evaluate_batch(self, queries)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn query(duties: &[f64]) -> Query {
        Query::from_raw(duties, &[7, 5, 3], 3).unwrap()
    }

    #[test]
    fn query_validates_dimensions() {
        let err = Query::from_raw(&[0.5], &[7, 7], 3).unwrap_err();
        assert!(matches!(err, CoreError::DimensionMismatch { .. }));
        let q = query(&[0.1, 0.5, 0.9]);
        assert_eq!(q.duties().len(), 3);
        assert_eq!(q.weights().as_slice(), &[7, 5, 3]);
    }

    #[test]
    fn policy_picks_the_cheapest_sufficient_tier() {
        assert_eq!(TierPolicy::analytic().demanded_tier(), Tier::Analytic);
        assert_eq!(
            TierPolicy::tolerance(0.1).demanded_tier(),
            Tier::Analytic,
            "loose tolerance stays on the fast path"
        );
        assert_eq!(
            TierPolicy::tolerance(0.03).demanded_tier(),
            Tier::SwitchLevel
        );
        assert_eq!(
            TierPolicy::switch_level().demanded_tier(),
            Tier::SwitchLevel
        );
        assert_eq!(TierPolicy::tolerance(0.001).demanded_tier(), Tier::Circuit);
        assert_eq!(TierPolicy::circuit().demanded_tier(), Tier::Circuit);
    }

    #[test]
    fn unconfigured_tiers_degrade_to_best_available() {
        let engine = InferenceEngine::paper().with_policy(TierPolicy::circuit());
        assert_eq!(engine.resolved_tier(), Tier::Analytic);
        let engine = engine.with_switch_tier(SwitchLevelEvaluator::paper());
        assert_eq!(engine.resolved_tier(), Tier::SwitchLevel);
    }

    #[test]
    fn cache_hits_after_first_evaluation() {
        let engine = InferenceEngine::paper().with_cache(16, 1024);
        let q = query(&[0.25, 0.5, 0.75]);
        let a = engine.evaluate(&q).unwrap();
        let b = engine.evaluate(&q).unwrap();
        assert!(!a.cached);
        assert!(b.cached);
        assert_eq!(a.vout, b.vout);
        assert_eq!(a.tier, Tier::Analytic);
        let report = engine.report();
        assert_eq!(report.queries, 2);
        assert_eq!(report.cache.hits, 1);
        assert_eq!(report.cache.misses, 1);
        assert_eq!(report.evals(Tier::Analytic), 1);
    }

    #[test]
    fn batch_deduplicates_misses() {
        let engine = InferenceEngine::paper().with_cache(16, 1024);
        let qs = vec![
            query(&[0.25, 0.5, 0.75]),
            query(&[0.25, 0.5, 0.75]),
            query(&[0.0, 0.0, 1.0]),
        ];
        let out = engine.evaluate_batch(&qs);
        assert!(out.iter().all(Result::is_ok));
        let report = engine.report();
        // Two distinct keys computed once each; the duplicate shares.
        assert_eq!(report.evals(Tier::Analytic), 2);
        assert_eq!(out[0].as_ref().unwrap().vout, out[1].as_ref().unwrap().vout);
    }

    #[test]
    fn batched_and_single_evaluation_agree_bitwise() {
        let cached = InferenceEngine::paper().with_cache(32, 1024);
        let plain = InferenceEngine::paper();
        let qs: Vec<Query> = (0..20)
            .map(|i| {
                let step = i as f64 / 31.0;
                Query::from_raw(&[step, 1.0 - step, 0.5], &[7, 5, 3], 3).unwrap()
            })
            .collect();
        let batch = cached.evaluate_batch(&qs);
        for (q, b) in qs.iter().zip(&batch) {
            let single = plain.evaluate(&q.quantized(32)).unwrap();
            assert_eq!(single.vout, b.as_ref().unwrap().vout);
        }
    }

    #[test]
    fn eviction_flushes_but_never_serves_stale_values() {
        // Capacity of one entry per shard: every distinct key in the same
        // shard evicts its predecessor.
        let engine = InferenceEngine::paper().with_cache(64, 1);
        let analytic = AnalyticEvaluator::paper();
        for i in 0..64 {
            let d = i as f64 / 63.0;
            let q = query(&[d, d, d]);
            let got = engine.evaluate(&q).unwrap().vout;
            let expect = analytic.vout(q.duties(), q.weights()).unwrap();
            assert_eq!(got, expect, "entry {i}");
        }
        assert!(engine.report().cache.evictions > 0, "evictions exercised");
    }

    #[test]
    fn observed_batch_reports_infer_counters() {
        use mssim::telemetry::MemoryRecorder;
        let engine = InferenceEngine::paper().with_cache(16, 1024);
        let qs = vec![query(&[0.5, 0.5, 0.5]), query(&[0.5, 0.5, 0.5])];
        let mut rec = MemoryRecorder::new();
        let out = engine.evaluate_batch_observed(&qs, &mut rec);
        assert!(out.iter().all(Result::is_ok));
        assert_eq!(rec.counter_value("infer.queries"), 2);
        // Both lookups miss (insertion happens after the batch computes),
        // but the duplicate deduplicates down to one evaluation.
        assert_eq!(rec.counter_value("infer.cache_misses"), 2);
        assert_eq!(rec.counter_value("infer.tier_analytic"), 1);
        assert!(rec.events().iter().any(|e| matches!(
            e,
            Event::InferBatch {
                queries: 2,
                cache_misses: 2,
                analytic: 1,
                ..
            }
        )));
    }

    #[test]
    fn engine_is_an_evaluator() {
        // Resolution 11 puts 0.7/0.8/0.9 exactly on the duty grid.
        let engine = InferenceEngine::paper().with_cache(11, 1024);
        let e: &dyn Evaluator = &engine;
        let w = WeightVector::new(vec![7, 7, 7], 3).unwrap();
        let d: Vec<DutyCycle> = [0.7, 0.8, 0.9].iter().map(|&x| DutyCycle::new(x)).collect();
        let v = e.vout(&d, &w).unwrap();
        assert!((v.value() - 2.0).abs() < 0.01);
        assert_eq!(e.vdd(), Volts(2.5));
    }
}
