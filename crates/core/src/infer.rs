//! Batched inference engine — the evaluator stack as a serving product.
//!
//! The paper's perceptron is ultimately an inference device: Eq. 2 gives a
//! closed-form output that the circuit tiers merely refine. PWM inputs are
//! low-resolution discrete (3-bit weights × bounded duty resolution), so
//! throughput lives in memoization and batching, not per-query transients.
//! This module packages that observation behind one call site:
//!
//! * [`Query`] / [`Eval`] — the serving request/response pair used by
//!   [`Evaluator::evaluate`] and [`Evaluator::evaluate_batch`].
//! * [`TierPolicy`] — how much output error the caller tolerates, and
//!   therefore which fidelity [`Tier`] must answer.
//! * [`MemoCache`] — a sharded, duty-quantized memo cache with hit/miss/
//!   eviction counters surfaced through the [`Observer`] telemetry layer
//!   as `infer.*` counters and an `InferBatch` event. A shard whose lock
//!   was poisoned by a panicking writer is cleared and served on (counted
//!   as `infer.lock_poisoned`) — memoized values are recomputable, so a
//!   crash in one worker never takes the serving process with it.
//! * [`InferenceEngine`] — tiered dispatch (analytic fast path, escalating
//!   to switch-level / transistor tiers only when the tolerance demands
//!   it) over the cache, with per-tier counts in the report.
//! * Resilient serving (see [`crate::resilience`]) — with a
//!   [`ResiliencePolicy`] installed, each query gets a deadline and
//!   per-tier attempt budget; failures, timeouts and open circuit
//!   breakers walk a demotion ladder (Circuit → SwitchLevel → Analytic)
//!   and the next-cheaper tier's answer is served flagged
//!   [`Eval::degraded`] with its certified error bound instead of
//!   returning an error — the serving-layer analogue of the paper's
//!   graceful degradation under supply droop.
//!
//! The engine itself implements [`Evaluator`], so every consumer that is
//! generic over the trait ([`crate::PwmPerceptron`], [`crate::HardLayer`],
//! [`crate::WtaClassifier`], training, metrics) can serve through it
//! unchanged.

use std::collections::hash_map::DefaultHasher;
use std::collections::HashMap;
use std::fmt;
use std::hash::{Hash, Hasher};
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, PoisonError, RwLock, RwLockReadGuard, RwLockWriteGuard};

use mssim::prelude::Volts;
use mssim::telemetry::{dispatch, Event, Observer};

use crate::duty::DutyCycle;
use crate::error::CoreError;
use crate::eval::{AnalyticEvaluator, Evaluator};
use crate::resilience::{
    BreakerState, BreakerTransition, Clock, DegradeReason, MonotonicClock, ResilStats,
    ResiliencePolicy, ResilienceState,
};
use crate::weight::WeightVector;

/// Fidelity tier of an evaluation.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum Tier {
    /// Paper Eq. 2 — closed form, ~ns.
    Analytic,
    /// Periodic-steady-state switch model — ~µs.
    SwitchLevel,
    /// Transistor-level transient on [`mssim`] — the reference, ~ms–s.
    Circuit,
}

impl Tier {
    /// Stable index for per-tier accounting (`0..3`).
    pub fn index(self) -> usize {
        match self {
            Tier::Analytic => 0,
            Tier::SwitchLevel => 1,
            Tier::Circuit => 2,
        }
    }

    /// Human-readable tier name.
    pub fn name(self) -> &'static str {
        match self {
            Tier::Analytic => "analytic",
            Tier::SwitchLevel => "switch-level",
            Tier::Circuit => "circuit",
        }
    }
}

/// One inference request: a duty-cycle vector and the weight vector it
/// multiplies. Dimensions are validated at construction, so an existing
/// `Query` is always internally consistent.
#[derive(Debug, Clone, PartialEq)]
pub struct Query {
    duties: Vec<DutyCycle>,
    weights: WeightVector,
}

impl Query {
    /// Creates a query.
    ///
    /// # Errors
    ///
    /// Returns [`CoreError::DimensionMismatch`] if `duties` and `weights`
    /// differ in length.
    pub fn new(duties: Vec<DutyCycle>, weights: WeightVector) -> Result<Self, CoreError> {
        if duties.len() != weights.len() {
            return Err(CoreError::DimensionMismatch {
                expected: weights.len(),
                got: duties.len(),
            });
        }
        Ok(Query { duties, weights })
    }

    /// Creates a query from raw duty values and weight magnitudes.
    ///
    /// # Errors
    ///
    /// Returns [`CoreError::InvalidDuty`] / [`CoreError::InvalidWeight`]
    /// for out-of-range values and [`CoreError::DimensionMismatch`] for
    /// ragged inputs.
    pub fn from_raw(duties: &[f64], weights: &[u32], bits: u32) -> Result<Self, CoreError> {
        Query::new(
            DutyCycle::try_from_slice(duties)?,
            WeightVector::new(weights.to_vec(), bits)?,
        )
    }

    /// The duty-cycle vector.
    pub fn duties(&self) -> &[DutyCycle] {
        &self.duties
    }

    /// The weight vector.
    pub fn weights(&self) -> &WeightVector {
        &self.weights
    }

    /// The query with every duty snapped to `levels` equidistant values
    /// (rails included) — the cache's input alphabet.
    pub fn quantized(&self, levels: u32) -> Query {
        Query {
            duties: self.duties.iter().map(|d| d.quantized(levels)).collect(),
            weights: self.weights.clone(),
        }
    }
}

/// One inference response.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Eval {
    /// Average output voltage (paper Eq. 2 semantics).
    pub vout: Volts,
    /// Fidelity tier that produced (or originally produced, for cached
    /// responses) the value.
    pub tier: Tier,
    /// Whether the value was served from the memo cache.
    pub cached: bool,
    /// Whether the answer was served below the demanded fidelity — by a
    /// cheaper tier after a demotion, or from a partially-rescued
    /// transient. Degraded answers are never memoized.
    pub degraded: bool,
    /// Certified |answer − reference| bound in volts when `degraded`
    /// (0.0 for an answer at the demanded fidelity).
    pub error_bound: f64,
}

/// How much output-voltage error the caller tolerates, and the certified
/// error bounds of the cheap tiers — together they decide which [`Tier`]
/// must answer.
///
/// The defaults come from the `repro xval` cross-validation experiment:
/// the analytic tier tracks the transistor-level reference within a few
/// tens of millivolts and the switch-level tier within ~20 mV on the
/// paper's Table II rows.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct TierPolicy {
    tolerance: f64,
    analytic_error: f64,
    switch_error: f64,
}

/// Default certified |analytic − circuit| bound in volts (`repro xval`).
pub const ANALYTIC_ERROR_BOUND: f64 = 0.05;
/// Default certified |switch-level − circuit| bound in volts.
pub const SWITCH_ERROR_BOUND: f64 = 0.02;

impl TierPolicy {
    /// Accept any answer within `tolerance_volts` of the transistor-level
    /// reference; the engine picks the cheapest tier whose certified
    /// error bound fits.
    ///
    /// # Panics
    ///
    /// Panics if `tolerance_volts` is negative or NaN.
    pub fn tolerance(tolerance_volts: f64) -> Self {
        assert!(
            tolerance_volts >= 0.0,
            "tolerance must be non-negative volts"
        );
        TierPolicy {
            tolerance: tolerance_volts,
            analytic_error: ANALYTIC_ERROR_BOUND,
            switch_error: SWITCH_ERROR_BOUND,
        }
    }

    /// Any tolerance — the analytic fast path always answers.
    pub fn analytic() -> Self {
        Self::tolerance(f64::INFINITY)
    }

    /// Demand switch-level fidelity (tolerance between the two bounds).
    pub fn switch_level() -> Self {
        Self::tolerance(SWITCH_ERROR_BOUND)
    }

    /// Demand the transistor-level reference (zero tolerance).
    pub fn circuit() -> Self {
        Self::tolerance(0.0)
    }

    /// Overrides the certified per-tier error bounds.
    ///
    /// # Panics
    ///
    /// Panics unless `0 <= switch_error <= analytic_error`.
    pub fn with_error_bounds(mut self, analytic_error: f64, switch_error: f64) -> Self {
        assert!(
            (0.0..=analytic_error).contains(&switch_error),
            "bounds must satisfy 0 <= switch <= analytic"
        );
        self.analytic_error = analytic_error;
        self.switch_error = switch_error;
        self
    }

    /// The caller's tolerance in volts.
    pub fn tolerance_volts(&self) -> f64 {
        self.tolerance
    }

    /// The certified |tier − circuit reference| bound in volts — what a
    /// degraded answer served by `tier` is annotated with.
    pub fn tier_bound(&self, tier: Tier) -> f64 {
        match tier {
            Tier::Analytic => self.analytic_error,
            Tier::SwitchLevel => self.switch_error,
            Tier::Circuit => 0.0,
        }
    }

    /// The cheapest tier whose certified error bound fits the tolerance.
    pub fn demanded_tier(&self) -> Tier {
        if self.tolerance >= self.analytic_error {
            Tier::Analytic
        } else if self.tolerance >= self.switch_error {
            Tier::SwitchLevel
        } else {
            Tier::Circuit
        }
    }
}

impl Default for TierPolicy {
    fn default() -> Self {
        TierPolicy::analytic()
    }
}

/// Cache key: duty indices on the `resolution`-level grid plus the exact
/// weight vector and producing tier. Weights are part of the key, so a
/// weight mutation can never be served a stale entry — it simply misses.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
struct CacheKey {
    duties: Vec<u16>,
    weights: Vec<u32>,
    bits: u32,
    tier: u8,
}

/// Counter snapshot of a [`MemoCache`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct CacheStats {
    /// Lookups answered from the cache.
    pub hits: u64,
    /// Lookups that fell through to an evaluator.
    pub misses: u64,
    /// Entries stored.
    pub insertions: u64,
    /// Entries discarded by capacity eviction.
    pub evictions: u64,
    /// Poisoned shard locks recovered by clearing the shard.
    pub lock_poisoned: u64,
}

impl CacheStats {
    /// `hits / (hits + misses)`, or 0 for an untouched cache.
    pub fn hit_rate(&self) -> f64 {
        let total = self.hits + self.misses;
        if total == 0 {
            0.0
        } else {
            self.hits as f64 / total as f64
        }
    }
}

/// Sharded memo cache keyed on quantized duty/weight vectors.
///
/// Lock granularity is one `RwLock` per shard, so concurrent batch
/// workers mostly touch disjoint shards. Capacity is enforced per shard
/// with epoch eviction: a shard that reaches its capacity is flushed
/// whole (deterministic, and never serves a stale value — keys carry the
/// full weight vector, so mutated weights miss instead of colliding).
///
/// A poisoned shard lock (a panic while a writer held it) is recovered,
/// not propagated: the shard is cleared — its entries are memoized
/// recomputables, so the only cost is re-evaluation — the poison flag is
/// reset, and the incident is counted in [`CacheStats::lock_poisoned`].
#[derive(Debug)]
pub struct MemoCache {
    shards: Vec<RwLock<HashMap<CacheKey, f64>>>,
    resolution: u32,
    shard_capacity: usize,
    hits: AtomicU64,
    misses: AtomicU64,
    insertions: AtomicU64,
    evictions: AtomicU64,
    lock_poisoned: AtomicU64,
}

const SHARDS: usize = 16;

impl MemoCache {
    /// Cache with `resolution` duty levels and room for roughly
    /// `capacity` entries.
    ///
    /// # Panics
    ///
    /// Panics if `resolution < 2` or `capacity == 0`.
    pub fn new(resolution: u32, capacity: usize) -> Self {
        assert!(resolution >= 2, "need at least two duty levels");
        assert!(capacity > 0, "capacity must be positive");
        MemoCache {
            shards: (0..SHARDS).map(|_| RwLock::new(HashMap::new())).collect(),
            resolution,
            shard_capacity: capacity.div_ceil(SHARDS).max(1),
            hits: AtomicU64::new(0),
            misses: AtomicU64::new(0),
            insertions: AtomicU64::new(0),
            evictions: AtomicU64::new(0),
            lock_poisoned: AtomicU64::new(0),
        }
    }

    /// The duty grid resolution (levels).
    pub fn resolution(&self) -> u32 {
        self.resolution
    }

    /// Number of shards every cache uses (fixed).
    pub fn shard_count() -> usize {
        SHARDS
    }

    /// Write access to a shard, recovering a poisoned lock by clearing
    /// the shard (entries are recomputable) and resetting the flag.
    fn write_shard(&self, idx: usize) -> RwLockWriteGuard<'_, HashMap<CacheKey, f64>> {
        match self.shards[idx].write() {
            Ok(guard) => guard,
            Err(poisoned) => {
                self.lock_poisoned.fetch_add(1, Ordering::Relaxed);
                self.shards[idx].clear_poison();
                let mut guard = poisoned.into_inner();
                guard.clear();
                guard
            }
        }
    }

    /// Read access to a shard, routing a poisoned lock through the write
    /// path first so it is cleared and counted exactly once.
    fn read_shard(&self, idx: usize) -> RwLockReadGuard<'_, HashMap<CacheKey, f64>> {
        if self.shards[idx].is_poisoned() {
            drop(self.write_shard(idx));
        }
        self.shards[idx]
            .read()
            .unwrap_or_else(PoisonError::into_inner)
    }

    /// Current number of live entries across all shards.
    pub fn len(&self) -> usize {
        (0..self.shards.len())
            .map(|i| self.read_shard(i).len())
            .sum()
    }

    /// Whether the cache currently holds no entries.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Counter snapshot.
    pub fn stats(&self) -> CacheStats {
        CacheStats {
            hits: self.hits.load(Ordering::Relaxed),
            misses: self.misses.load(Ordering::Relaxed),
            insertions: self.insertions.load(Ordering::Relaxed),
            evictions: self.evictions.load(Ordering::Relaxed),
            lock_poisoned: self.lock_poisoned.load(Ordering::Relaxed),
        }
    }

    /// Drops every entry (counters are kept).
    pub fn clear(&self) {
        for i in 0..self.shards.len() {
            self.write_shard(i).clear();
        }
    }

    /// Chaos hook: poisons one shard's lock by panicking while holding
    /// its write guard (the panic is caught here). Returns whether the
    /// shard is poisoned afterwards. The next access recovers it.
    pub fn poison_shard(&self, shard: usize) -> bool {
        let lock = &self.shards[shard % self.shards.len()];
        let _ = catch_unwind(AssertUnwindSafe(|| {
            let _guard = lock.write().unwrap_or_else(PoisonError::into_inner);
            panic!("chaos-poison: injected cache-shard poisoning");
        }));
        lock.is_poisoned()
    }

    fn key(&self, query: &Query, tier: Tier) -> CacheKey {
        let top = (self.resolution - 1) as f64;
        CacheKey {
            duties: query
                .duties
                .iter()
                .map(|d| (d.value() * top).round() as u16)
                .collect(),
            weights: query.weights.as_slice().to_vec(),
            bits: query.weights.bits(),
            tier: tier.index() as u8,
        }
    }

    fn shard_of(&self, key: &CacheKey) -> usize {
        let mut h = DefaultHasher::new();
        key.hash(&mut h);
        (h.finish() as usize) % self.shards.len()
    }

    fn lookup(&self, key: &CacheKey) -> Option<f64> {
        let found = self.read_shard(self.shard_of(key)).get(key).copied();
        if found.is_some() {
            self.hits.fetch_add(1, Ordering::Relaxed);
        } else {
            self.misses.fetch_add(1, Ordering::Relaxed);
        }
        found
    }

    fn insert(&self, key: CacheKey, vout: f64) {
        let mut shard = self.write_shard(self.shard_of(&key));
        if shard.len() >= self.shard_capacity && !shard.contains_key(&key) {
            self.evictions
                .fetch_add(shard.len() as u64, Ordering::Relaxed);
            shard.clear();
        }
        if shard.insert(key, vout).is_none() {
            self.insertions.fetch_add(1, Ordering::Relaxed);
        }
    }
}

/// Per-tier evaluation counts plus cache statistics — the engine's
/// serving report.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct InferReport {
    /// Total queries answered.
    pub queries: u64,
    /// Evaluations performed by each tier, indexed by [`Tier::index`]
    /// (cache hits perform none).
    pub tier_evals: [u64; 3],
    /// Cache counters (zeroed when no cache is configured).
    pub cache: CacheStats,
    /// Resilience counters (zeroed when no policy is installed).
    pub resil: ResilStats,
}

impl InferReport {
    /// Evaluations the given tier performed.
    pub fn evals(&self, tier: Tier) -> u64 {
        self.tier_evals[tier.index()]
    }
}

/// What one tier's attempt budget concluded.
enum TierVerdict {
    /// The tier answered (possibly from cache).
    Answered(Eval),
    /// Walk down the ladder for this reason, keeping the error (if any)
    /// in case the ladder bottoms out.
    Demote(DegradeReason, Option<CoreError>),
    /// A structural error retries cannot help (bad dimensions etc.).
    Fatal(CoreError),
}

fn emit_event(observer: &mut Option<&mut dyn Observer>, event: &Event) {
    if let Some(obs) = observer {
        dispatch(&mut **obs, event);
    }
}

fn emit_counter(observer: &mut Option<&mut dyn Observer>, name: &'static str, delta: u64) {
    if let Some(obs) = observer {
        obs.counter(name, delta);
    }
}

fn emit_trip(tier: Tier, t: &BreakerTransition, observer: &mut Option<&mut dyn Observer>) {
    emit_event(
        observer,
        &Event::ResilienceTrip {
            tier: tier.name(),
            from: t.from.name(),
            to: t.to.name(),
            failure_rate: t.failure_rate,
        },
    );
}

/// Whether an evaluator error is worth retrying (transient solver
/// trouble) as opposed to structural (bad query).
fn retryable(err: &CoreError) -> bool {
    matches!(err, CoreError::Simulation(_) | CoreError::Internal { .. })
}

/// Tiered, memoized, batched dispatch over the evaluator stack.
///
/// The analytic tier is always present; switch-level and circuit tiers
/// are optional escalation targets (any [`Evaluator`] — the production
/// tiers, or wrappers like [`crate::resilience::ChaosEvaluator`]).
/// Dispatch picks the cheapest tier the [`TierPolicy`] allows, degraded
/// to the best *configured* tier: a policy demanding the transistor-level
/// reference on an engine without a circuit tier is answered by the
/// highest tier available.
///
/// When a [`MemoCache`] is configured, queries are first snapped onto the
/// cache's duty grid (the PWM input alphabet is discrete, so serving
/// streams are expected to live on the grid already — quantization is
/// then the identity) and answered from the cache when possible.
///
/// With [`InferenceEngine::with_resilience`], tier failures walk the
/// demotion ladder instead of erroring — see [`crate::resilience`].
///
/// # Examples
///
/// ```
/// use pwm_perceptron::prelude::*;
///
/// # fn main() -> Result<(), pwm_perceptron::CoreError> {
/// let engine = InferenceEngine::paper().with_cache(16, 1 << 16);
/// let q = Query::from_raw(&[0.7, 0.8, 0.9], &[7, 7, 7], 3)?;
/// let first = engine.evaluate(&q)?;
/// let second = engine.evaluate(&q)?;
/// assert!(!first.cached && second.cached);
/// assert_eq!(first.vout, second.vout);
/// # Ok(())
/// # }
/// ```
pub struct InferenceEngine {
    analytic: AnalyticEvaluator,
    switch: Option<Box<dyn Evaluator + Send + Sync>>,
    circuit: Option<Box<dyn Evaluator + Send + Sync>>,
    policy: TierPolicy,
    cache: Option<MemoCache>,
    resilience: Option<ResilienceState>,
    queries: AtomicU64,
    tier_evals: [AtomicU64; 3],
}

impl fmt::Debug for InferenceEngine {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("InferenceEngine")
            .field("analytic", &self.analytic)
            .field("switch", &self.switch.as_ref().map(|_| "dyn Evaluator"))
            .field("circuit", &self.circuit.as_ref().map(|_| "dyn Evaluator"))
            .field("policy", &self.policy)
            .field("cache", &self.cache)
            .field("resilient", &self.resilience.is_some())
            .finish_non_exhaustive()
    }
}

impl InferenceEngine {
    /// Engine with only the analytic tier at the given supply.
    pub fn new(vdd: Volts) -> Self {
        InferenceEngine {
            analytic: AnalyticEvaluator::new(vdd),
            switch: None,
            circuit: None,
            policy: TierPolicy::default(),
            cache: None,
            resilience: None,
            queries: AtomicU64::new(0),
            tier_evals: [AtomicU64::new(0), AtomicU64::new(0), AtomicU64::new(0)],
        }
    }

    /// Engine at the paper's 2.5 V supply.
    pub fn paper() -> Self {
        Self::new(Volts(2.5))
    }

    /// Adds (or replaces) the switch-level escalation tier.
    pub fn with_switch_tier(mut self, evaluator: impl Evaluator + Send + Sync + 'static) -> Self {
        self.switch = Some(Box::new(evaluator));
        self
    }

    /// Adds (or replaces) the transistor-level escalation tier.
    pub fn with_circuit_tier(mut self, evaluator: impl Evaluator + Send + Sync + 'static) -> Self {
        self.circuit = Some(Box::new(evaluator));
        self
    }

    /// Sets the dispatch policy.
    pub fn with_policy(mut self, policy: TierPolicy) -> Self {
        self.policy = policy;
        self
    }

    /// Enables the memo cache with the given duty resolution and
    /// capacity.
    ///
    /// # Panics
    ///
    /// As for [`MemoCache::new`].
    pub fn with_cache(mut self, resolution: u32, capacity: usize) -> Self {
        self.cache = Some(MemoCache::new(resolution, capacity));
        self
    }

    /// Installs a resilience policy on wall-clock time: retry budgets,
    /// deadlines, per-tier circuit breakers and the demotion ladder.
    pub fn with_resilience(self, policy: ResiliencePolicy) -> Self {
        self.with_resilience_clock(policy, Arc::new(MonotonicClock::new()))
    }

    /// [`InferenceEngine::with_resilience`] on an injected clock — tests
    /// and the chaos harness use a [`crate::resilience::ManualClock`] so
    /// deadline expiry and breaker cooldowns are deterministic.
    pub fn with_resilience_clock(
        mut self,
        policy: ResiliencePolicy,
        clock: Arc<dyn Clock>,
    ) -> Self {
        self.resilience = Some(ResilienceState::new(policy, clock));
        self
    }

    /// The dispatch policy.
    pub fn policy(&self) -> TierPolicy {
        self.policy
    }

    /// The memo cache, when configured.
    pub fn cache(&self) -> Option<&MemoCache> {
        self.cache.as_ref()
    }

    /// Resilience counter snapshot (zeroed when no policy is installed).
    pub fn resilience_stats(&self) -> ResilStats {
        self.resilience
            .as_ref()
            .map(ResilienceState::stats)
            .unwrap_or_default()
    }

    /// The given tier's circuit-breaker state, when a resilience policy
    /// is installed.
    pub fn breaker_state(&self, tier: Tier) -> Option<BreakerState> {
        self.resilience
            .as_ref()
            .map(|res| res.breakers[tier.index()].state())
    }

    /// The tier that will answer under the current policy and configured
    /// tiers.
    pub fn resolved_tier(&self) -> Tier {
        match self.policy.demanded_tier() {
            Tier::Circuit if self.circuit.is_some() => Tier::Circuit,
            Tier::Circuit if self.switch.is_some() => Tier::SwitchLevel,
            Tier::SwitchLevel if self.switch.is_some() => Tier::SwitchLevel,
            Tier::SwitchLevel if self.circuit.is_some() => Tier::Circuit,
            _ => Tier::Analytic,
        }
    }

    fn tier_evaluator(&self, tier: Tier) -> &dyn Evaluator {
        match tier {
            Tier::Analytic => &self.analytic,
            Tier::SwitchLevel => self.switch.as_deref().expect("switch tier configured"),
            Tier::Circuit => self.circuit.as_deref().expect("circuit tier configured"),
        }
    }

    /// The next-cheaper *configured* tier on the demotion ladder.
    fn tier_below(&self, tier: Tier) -> Option<Tier> {
        match tier {
            Tier::Circuit if self.switch.is_some() => Some(Tier::SwitchLevel),
            Tier::Circuit => Some(Tier::Analytic),
            Tier::SwitchLevel => Some(Tier::Analytic),
            Tier::Analytic => None,
        }
    }

    /// The query the engine actually evaluates: snapped onto the cache's
    /// duty grid when a cache is configured, unchanged otherwise.
    pub fn admitted(&self, query: &Query) -> Query {
        match &self.cache {
            Some(cache) => query.quantized(cache.resolution()),
            None => query.clone(),
        }
    }

    /// One cache-aware evaluation at exactly `tier`. Degraded or
    /// non-finite answers are never memoized, so a cache hit is always a
    /// full-fidelity answer for its keyed tier.
    fn evaluate_at(&self, tier: Tier, query: &Query) -> Result<Eval, CoreError> {
        let evaluator = self.tier_evaluator(tier);
        let Some(cache) = &self.cache else {
            self.tier_evals[tier.index()].fetch_add(1, Ordering::Relaxed);
            return evaluator.evaluate(query);
        };
        let admitted = query.quantized(cache.resolution());
        let key = cache.key(&admitted, tier);
        if let Some(vout) = cache.lookup(&key) {
            return Ok(Eval {
                vout: Volts(vout),
                tier,
                cached: true,
                degraded: false,
                error_bound: 0.0,
            });
        }
        self.tier_evals[tier.index()].fetch_add(1, Ordering::Relaxed);
        let eval = evaluator.evaluate(&admitted)?;
        if eval.vout.value().is_finite() && !eval.degraded {
            cache.insert(key, eval.vout.value());
        }
        Ok(eval)
    }

    /// Runs one tier's attempt budget: breaker gate, retries with
    /// deterministic backoff, deadline checks. `last_resort` (the bottom
    /// of the ladder) ignores the breaker and the deadline — an answer,
    /// however cheap, always beats an error.
    fn attempt_tier(
        &self,
        tier: Tier,
        query: &Query,
        res: &ResilienceState,
        start_ns: u64,
        last_resort: bool,
        observer: &mut Option<&mut dyn Observer>,
    ) -> TierVerdict {
        let breaker = &res.breakers[tier.index()];
        let (allowed, transition) = breaker.allow(res.clock.now_ns());
        if let Some(t) = &transition {
            emit_trip(tier, t, observer);
        }
        if !allowed && !last_resort {
            return TierVerdict::Demote(DegradeReason::BreakerOpen, None);
        }
        let past_deadline = |now: u64| {
            res.policy
                .deadline_ns
                .is_some_and(|d| now.saturating_sub(start_ns) >= d)
        };
        let mut last_err: Option<CoreError> = None;
        for attempt in 0..res.policy.attempts_per_tier.max(1) {
            if !last_resort && past_deadline(res.clock.now_ns()) {
                res.deadline_exceeded.fetch_add(1, Ordering::Relaxed);
                emit_counter(observer, "resil.deadline_exceeded", 1);
                return TierVerdict::Demote(DegradeReason::Timeout, last_err);
            }
            if attempt > 0 {
                res.retries.fetch_add(1, Ordering::Relaxed);
                emit_counter(observer, "resil.retries", 1);
                res.clock.sleep_ns(res.policy.backoff_ns(attempt));
            }
            match self.evaluate_at(tier, query) {
                Ok(eval) if eval.vout.value().is_finite() => {
                    if !last_resort && past_deadline(res.clock.now_ns()) {
                        // Landed past the deadline: the caller's budget is
                        // spent, so treat it as a timeout (and let the
                        // breaker see the slowness) rather than serving a
                        // late answer at full latency cost downstream.
                        res.deadline_exceeded.fetch_add(1, Ordering::Relaxed);
                        emit_counter(observer, "resil.deadline_exceeded", 1);
                        if !eval.cached {
                            if let Some(t) = breaker.record(true, res.clock.now_ns()) {
                                emit_trip(tier, &t, observer);
                            }
                        }
                        return TierVerdict::Demote(DegradeReason::Timeout, last_err);
                    }
                    if !eval.cached {
                        if let Some(t) = breaker.record(false, res.clock.now_ns()) {
                            emit_trip(tier, &t, observer);
                        }
                    }
                    return TierVerdict::Answered(eval);
                }
                Ok(_) => {
                    // Non-finite output — a failure the cache refused to
                    // memoize; retry like any transient.
                    if let Some(t) = breaker.record(true, res.clock.now_ns()) {
                        emit_trip(tier, &t, observer);
                    }
                    last_err = Some(CoreError::Internal {
                        reason: "evaluator produced a non-finite output",
                    });
                }
                Err(e) if retryable(&e) => {
                    if let Some(t) = breaker.record(true, res.clock.now_ns()) {
                        emit_trip(tier, &t, observer);
                    }
                    last_err = Some(e);
                }
                Err(e) => return TierVerdict::Fatal(e),
            }
        }
        TierVerdict::Demote(DegradeReason::Failure, last_err)
    }

    /// The demotion ladder: walks from the demanded tier down to the
    /// analytic closed form, serving the first answer and annotating it
    /// as degraded (with the serving tier's certified error bound) when
    /// it came from below the demanded fidelity.
    fn evaluate_resilient(
        &self,
        query: &Query,
        res: &ResilienceState,
        observer: &mut Option<&mut dyn Observer>,
    ) -> Result<Eval, CoreError> {
        let start_ns = res.clock.now_ns();
        let demanded = self.resolved_tier();
        let mut tier = demanded;
        let mut reason = DegradeReason::Failure;
        let mut last_err: Option<CoreError> = None;
        loop {
            let last_resort = self.tier_below(tier).is_none();
            match self.attempt_tier(tier, query, res, start_ns, last_resort, observer) {
                TierVerdict::Answered(mut eval) => {
                    if tier != demanded {
                        eval.degraded = true;
                        eval.error_bound = self.policy.tier_bound(tier);
                        res.degraded_served.fetch_add(1, Ordering::Relaxed);
                        emit_event(
                            observer,
                            &Event::Degraded {
                                demanded: demanded.name(),
                                served: tier.name(),
                                reason: reason.name(),
                                error_bound: eval.error_bound,
                            },
                        );
                    }
                    return Ok(eval);
                }
                TierVerdict::Demote(r, err) => {
                    if err.is_some() {
                        last_err = err;
                    }
                    reason = r;
                    match self.tier_below(tier) {
                        Some(below) => {
                            res.demotions.fetch_add(1, Ordering::Relaxed);
                            tier = below;
                        }
                        None => {
                            return Err(last_err.unwrap_or(CoreError::Internal {
                                reason: "resilience ladder exhausted without a recorded error",
                            }))
                        }
                    }
                }
                TierVerdict::Fatal(e) => return Err(e),
            }
        }
    }

    /// Answers one query through the tiered dispatch and memo cache; with
    /// a resilience policy installed, through the demotion ladder.
    ///
    /// # Errors
    ///
    /// Propagates evaluator errors (structural ones only, once a
    /// resilience policy is installed — transient failures degrade).
    pub fn evaluate(&self, query: &Query) -> Result<Eval, CoreError> {
        self.evaluate_inner(query, &mut None)
    }

    /// [`InferenceEngine::evaluate`] with telemetry: `resil.*` counters
    /// and [`Event::ResilienceTrip`] / [`Event::Degraded`] events reach
    /// `observer` as they happen.
    ///
    /// # Errors
    ///
    /// As for [`InferenceEngine::evaluate`].
    pub fn evaluate_observed(
        &self,
        query: &Query,
        observer: &mut dyn Observer,
    ) -> Result<Eval, CoreError> {
        self.evaluate_inner(query, &mut Some(observer))
    }

    fn evaluate_inner(
        &self,
        query: &Query,
        observer: &mut Option<&mut dyn Observer>,
    ) -> Result<Eval, CoreError> {
        self.queries.fetch_add(1, Ordering::Relaxed);
        match &self.resilience {
            Some(res) => self.evaluate_resilient(query, res, observer),
            None => self.evaluate_at(self.resolved_tier(), query),
        }
    }

    /// One batched, deduplicated dispatch at exactly `tier` (the old
    /// non-resilient batch path, factored so the resilient path can reuse
    /// it per ladder rung). Feeds per-miss outcomes to the tier's breaker
    /// when resilience is active.
    fn dispatch_batch(
        &self,
        tier: Tier,
        queries: &[Query],
        res: Option<&ResilienceState>,
        observer: &mut Option<&mut dyn Observer>,
    ) -> Vec<Result<Eval, CoreError>> {
        let evaluator = self.tier_evaluator(tier);
        let record_outcomes =
            |results: &[Result<Eval, CoreError>], observer: &mut Option<&mut dyn Observer>| {
                if let Some(res) = res {
                    let breaker = &res.breakers[tier.index()];
                    for r in results {
                        let failed = match r {
                            Ok(e) => !e.vout.value().is_finite(),
                            Err(_) => true,
                        };
                        if let Some(t) = breaker.record(failed, res.clock.now_ns()) {
                            emit_trip(tier, &t, observer);
                        }
                    }
                }
            };

        let Some(cache) = &self.cache else {
            self.tier_evals[tier.index()].fetch_add(queries.len() as u64, Ordering::Relaxed);
            let out = evaluator.evaluate_batch(queries);
            record_outcomes(&out, observer);
            return out;
        };

        let mut out: Vec<Option<Result<Eval, CoreError>>> = vec![None; queries.len()];
        // Key → position in the deduplicated miss list.
        let mut miss_of: HashMap<CacheKey, usize> = HashMap::new();
        let mut misses: Vec<Query> = Vec::new();
        // Per input query: which miss slot serves it (None = cache hit).
        let mut slot_of: Vec<Option<usize>> = Vec::with_capacity(queries.len());
        for (i, query) in queries.iter().enumerate() {
            let admitted = query.quantized(cache.resolution());
            let key = cache.key(&admitted, tier);
            if let Some(vout) = cache.lookup(&key) {
                out[i] = Some(Ok(Eval {
                    vout: Volts(vout),
                    tier,
                    cached: true,
                    degraded: false,
                    error_bound: 0.0,
                }));
                slot_of.push(None);
            } else {
                let slot = *miss_of.entry(key).or_insert_with(|| {
                    misses.push(admitted);
                    misses.len() - 1
                });
                slot_of.push(Some(slot));
            }
        }

        self.tier_evals[tier.index()].fetch_add(misses.len() as u64, Ordering::Relaxed);
        let computed = evaluator.evaluate_batch(&misses);
        record_outcomes(&computed, observer);
        for (key, slot) in miss_of {
            if let Ok(eval) = &computed[slot] {
                if eval.vout.value().is_finite() && !eval.degraded {
                    cache.insert(key, eval.vout.value());
                }
            }
        }
        for (i, slot) in slot_of.iter().enumerate() {
            if let Some(slot) = slot {
                out[i] = Some(computed[*slot].clone());
            }
        }
        out.into_iter()
            .map(|r| {
                r.unwrap_or(Err(CoreError::Internal {
                    reason: "batch dispatch left a query unanswered",
                }))
            })
            .collect()
    }

    /// Answers a batch: cache hits are served immediately, distinct
    /// misses are deduplicated and fanned over the selected tier's
    /// batched evaluator (which amortizes circuit construction and
    /// parallelises over the work-stealing sweep driver).
    ///
    /// With a resilience policy installed, the batch starts at the
    /// highest tier whose breaker admits calls; queries that still fail
    /// transiently (or answer non-finite) are rerouted one-by-one through
    /// the full demotion ladder, so a sick tier degrades the affected
    /// queries instead of failing the batch.
    pub fn evaluate_batch(&self, queries: &[Query]) -> Vec<Result<Eval, CoreError>> {
        self.evaluate_batch_inner(queries, &mut None)
    }

    fn evaluate_batch_inner(
        &self,
        queries: &[Query],
        observer: &mut Option<&mut dyn Observer>,
    ) -> Vec<Result<Eval, CoreError>> {
        self.queries
            .fetch_add(queries.len() as u64, Ordering::Relaxed);
        let demanded = self.resolved_tier();
        let Some(res) = &self.resilience else {
            return self.dispatch_batch(demanded, queries, None, observer);
        };

        // Pick the highest tier whose breaker admits calls right now; the
        // bottom of the ladder always serves.
        let mut tier = demanded;
        loop {
            let (allowed, transition) = res.breakers[tier.index()].allow(res.clock.now_ns());
            if let Some(t) = &transition {
                emit_trip(tier, t, observer);
            }
            if allowed {
                break;
            }
            match self.tier_below(tier) {
                Some(below) => {
                    res.demotions.fetch_add(1, Ordering::Relaxed);
                    tier = below;
                }
                None => break,
            }
        }

        let mut out = self.dispatch_batch(tier, queries, Some(res), observer);
        // Transient failures and non-finite answers get the full ladder,
        // one by one (they are the rare case by construction).
        for (i, slot) in out.iter_mut().enumerate() {
            let reroute = match slot {
                Ok(e) => !e.vout.value().is_finite(),
                Err(e) => retryable(e),
            };
            if reroute {
                *slot = self.evaluate_resilient(&queries[i], res, observer);
            }
        }
        // Everything still answered at a walked-down batch tier is a
        // degraded serve against the demanded fidelity.
        if tier != demanded {
            let bound = self.policy.tier_bound(tier);
            for slot in out.iter_mut().flatten() {
                if slot.tier == tier && !slot.degraded {
                    slot.degraded = true;
                    slot.error_bound = bound;
                    res.degraded_served.fetch_add(1, Ordering::Relaxed);
                    emit_event(
                        observer,
                        &Event::Degraded {
                            demanded: demanded.name(),
                            served: tier.name(),
                            reason: DegradeReason::BreakerOpen.name(),
                            error_bound: bound,
                        },
                    );
                }
            }
        }
        out
    }

    /// [`InferenceEngine::evaluate_batch`] with telemetry: resilience
    /// counters and events stream to `observer` as they happen, and one
    /// [`Event::InferBatch`] describing the batch (plus an
    /// `infer.lock_poisoned` counter when shards were recovered) is
    /// dispatched at the end.
    pub fn evaluate_batch_observed(
        &self,
        queries: &[Query],
        observer: &mut dyn Observer,
    ) -> Vec<Result<Eval, CoreError>> {
        let before = self.report();
        let out = self.evaluate_batch_inner(queries, &mut Some(&mut *observer));
        let after = self.report();
        dispatch(
            observer,
            &Event::InferBatch {
                queries: queries.len(),
                cache_hits: after.cache.hits - before.cache.hits,
                cache_misses: after.cache.misses - before.cache.misses,
                evictions: after.cache.evictions - before.cache.evictions,
                analytic: after.evals(Tier::Analytic) - before.evals(Tier::Analytic),
                switch_level: after.evals(Tier::SwitchLevel) - before.evals(Tier::SwitchLevel),
                circuit: after.evals(Tier::Circuit) - before.evals(Tier::Circuit),
            },
        );
        let poisoned = after.cache.lock_poisoned - before.cache.lock_poisoned;
        if poisoned > 0 {
            observer.counter("infer.lock_poisoned", poisoned);
        }
        out
    }

    /// Serving report: total queries, per-tier evaluation counts, cache
    /// and resilience statistics.
    pub fn report(&self) -> InferReport {
        InferReport {
            queries: self.queries.load(Ordering::Relaxed),
            tier_evals: [
                self.tier_evals[0].load(Ordering::Relaxed),
                self.tier_evals[1].load(Ordering::Relaxed),
                self.tier_evals[2].load(Ordering::Relaxed),
            ],
            cache: self
                .cache
                .as_ref()
                .map(MemoCache::stats)
                .unwrap_or_default(),
            resil: self.resilience_stats(),
        }
    }

    /// Drops every cached entry (a weight-space retraining boundary).
    pub fn clear_cache(&self) {
        if let Some(cache) = &self.cache {
            cache.clear();
        }
    }
}

impl Evaluator for InferenceEngine {
    fn vout(&self, duties: &[DutyCycle], weights: &WeightVector) -> Result<Volts, CoreError> {
        let query = Query::new(duties.to_vec(), weights.clone())?;
        Ok(self.evaluate(&query)?.vout)
    }

    fn vdd(&self) -> Volts {
        self.analytic.vdd()
    }

    fn tier(&self) -> Tier {
        self.resolved_tier()
    }

    fn evaluate(&self, query: &Query) -> Result<Eval, CoreError> {
        InferenceEngine::evaluate(self, query)
    }

    fn evaluate_batch(&self, queries: &[Query]) -> Vec<Result<Eval, CoreError>> {
        InferenceEngine::evaluate_batch(self, queries)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::eval::SwitchLevelEvaluator;
    use crate::resilience::{BreakerConfig, ManualClock};

    fn query(duties: &[f64]) -> Query {
        Query::from_raw(duties, &[7, 5, 3], 3).unwrap()
    }

    #[test]
    fn query_validates_dimensions() {
        let err = Query::from_raw(&[0.5], &[7, 7], 3).unwrap_err();
        assert!(matches!(err, CoreError::DimensionMismatch { .. }));
        let q = query(&[0.1, 0.5, 0.9]);
        assert_eq!(q.duties().len(), 3);
        assert_eq!(q.weights().as_slice(), &[7, 5, 3]);
    }

    #[test]
    fn policy_picks_the_cheapest_sufficient_tier() {
        assert_eq!(TierPolicy::analytic().demanded_tier(), Tier::Analytic);
        assert_eq!(
            TierPolicy::tolerance(0.1).demanded_tier(),
            Tier::Analytic,
            "loose tolerance stays on the fast path"
        );
        assert_eq!(
            TierPolicy::tolerance(0.03).demanded_tier(),
            Tier::SwitchLevel
        );
        assert_eq!(
            TierPolicy::switch_level().demanded_tier(),
            Tier::SwitchLevel
        );
        assert_eq!(TierPolicy::tolerance(0.001).demanded_tier(), Tier::Circuit);
        assert_eq!(TierPolicy::circuit().demanded_tier(), Tier::Circuit);
    }

    #[test]
    fn tier_bounds_follow_the_policy() {
        let p = TierPolicy::switch_level();
        assert_eq!(p.tier_bound(Tier::Analytic), ANALYTIC_ERROR_BOUND);
        assert_eq!(p.tier_bound(Tier::SwitchLevel), SWITCH_ERROR_BOUND);
        assert_eq!(p.tier_bound(Tier::Circuit), 0.0);
        let p = p.with_error_bounds(0.2, 0.1);
        assert_eq!(p.tier_bound(Tier::Analytic), 0.2);
        assert_eq!(p.tier_bound(Tier::SwitchLevel), 0.1);
    }

    #[test]
    fn unconfigured_tiers_degrade_to_best_available() {
        let engine = InferenceEngine::paper().with_policy(TierPolicy::circuit());
        assert_eq!(engine.resolved_tier(), Tier::Analytic);
        let engine = engine.with_switch_tier(SwitchLevelEvaluator::paper());
        assert_eq!(engine.resolved_tier(), Tier::SwitchLevel);
    }

    #[test]
    fn cache_hits_after_first_evaluation() {
        let engine = InferenceEngine::paper().with_cache(16, 1024);
        let q = query(&[0.25, 0.5, 0.75]);
        let a = engine.evaluate(&q).unwrap();
        let b = engine.evaluate(&q).unwrap();
        assert!(!a.cached);
        assert!(b.cached);
        assert!(!a.degraded && !b.degraded);
        assert_eq!(a.error_bound, 0.0);
        assert_eq!(a.vout, b.vout);
        assert_eq!(a.tier, Tier::Analytic);
        let report = engine.report();
        assert_eq!(report.queries, 2);
        assert_eq!(report.cache.hits, 1);
        assert_eq!(report.cache.misses, 1);
        assert_eq!(report.evals(Tier::Analytic), 1);
        assert_eq!(report.resil, ResilStats::default());
    }

    #[test]
    fn batch_deduplicates_misses() {
        let engine = InferenceEngine::paper().with_cache(16, 1024);
        let qs = vec![
            query(&[0.25, 0.5, 0.75]),
            query(&[0.25, 0.5, 0.75]),
            query(&[0.0, 0.0, 1.0]),
        ];
        let out = engine.evaluate_batch(&qs);
        assert!(out.iter().all(Result::is_ok));
        let report = engine.report();
        // Two distinct keys computed once each; the duplicate shares.
        assert_eq!(report.evals(Tier::Analytic), 2);
        assert_eq!(out[0].as_ref().unwrap().vout, out[1].as_ref().unwrap().vout);
    }

    #[test]
    fn batched_and_single_evaluation_agree_bitwise() {
        let cached = InferenceEngine::paper().with_cache(32, 1024);
        let plain = InferenceEngine::paper();
        let qs: Vec<Query> = (0..20)
            .map(|i| {
                let step = i as f64 / 31.0;
                Query::from_raw(&[step, 1.0 - step, 0.5], &[7, 5, 3], 3).unwrap()
            })
            .collect();
        let batch = cached.evaluate_batch(&qs);
        for (q, b) in qs.iter().zip(&batch) {
            let single = plain.evaluate(&q.quantized(32)).unwrap();
            assert_eq!(single.vout, b.as_ref().unwrap().vout);
        }
    }

    #[test]
    fn eviction_flushes_but_never_serves_stale_values() {
        // Capacity of one entry per shard: every distinct key in the same
        // shard evicts its predecessor.
        let engine = InferenceEngine::paper().with_cache(64, 1);
        let analytic = AnalyticEvaluator::paper();
        for i in 0..64 {
            let d = i as f64 / 63.0;
            let q = query(&[d, d, d]);
            let got = engine.evaluate(&q).unwrap().vout;
            let expect = analytic.vout(q.duties(), q.weights()).unwrap();
            assert_eq!(got, expect, "entry {i}");
        }
        assert!(engine.report().cache.evictions > 0, "evictions exercised");
    }

    #[test]
    fn observed_batch_reports_infer_counters() {
        use mssim::telemetry::MemoryRecorder;
        let engine = InferenceEngine::paper().with_cache(16, 1024);
        let qs = vec![query(&[0.5, 0.5, 0.5]), query(&[0.5, 0.5, 0.5])];
        let mut rec = MemoryRecorder::new();
        let out = engine.evaluate_batch_observed(&qs, &mut rec);
        assert!(out.iter().all(Result::is_ok));
        assert_eq!(rec.counter_value("infer.queries"), 2);
        // Both lookups miss (insertion happens after the batch computes),
        // but the duplicate deduplicates down to one evaluation.
        assert_eq!(rec.counter_value("infer.cache_misses"), 2);
        assert_eq!(rec.counter_value("infer.tier_analytic"), 1);
        assert!(rec.events().iter().any(|e| matches!(
            e,
            Event::InferBatch {
                queries: 2,
                cache_misses: 2,
                analytic: 1,
                ..
            }
        )));
    }

    #[test]
    fn engine_is_an_evaluator() {
        // Resolution 11 puts 0.7/0.8/0.9 exactly on the duty grid.
        let engine = InferenceEngine::paper().with_cache(11, 1024);
        let e: &dyn Evaluator = &engine;
        let w = WeightVector::new(vec![7, 7, 7], 3).unwrap();
        let d: Vec<DutyCycle> = [0.7, 0.8, 0.9].iter().map(|&x| DutyCycle::new(x)).collect();
        let v = e.vout(&d, &w).unwrap();
        assert!((v.value() - 2.0).abs() < 0.01);
        assert_eq!(e.vdd(), Volts(2.5));
    }

    #[test]
    fn poisoned_shard_recovers_and_is_counted() {
        let cache = MemoCache::new(16, 1024);
        assert!(cache.poison_shard(3), "shard lock must end up poisoned");
        // Every surface keeps working; the first touch clears the shard.
        assert_eq!(cache.len(), 0);
        assert_eq!(cache.stats().lock_poisoned, 1);
        let engine = InferenceEngine::paper().with_cache(16, 1024);
        let q = query(&[0.25, 0.5, 0.75]);
        engine.evaluate(&q).unwrap();
        let poisoned_one = engine.cache().unwrap().poison_shard(0);
        let poisoned_two = engine.cache().unwrap().poison_shard(1);
        assert!(poisoned_one && poisoned_two);
        // Serving continues; the poisoned shards were cleared, so the
        // answer is correct either way (recompute or surviving shard).
        let again = engine.evaluate(&q).unwrap();
        let clean = AnalyticEvaluator::paper()
            .evaluate(&q.quantized(16))
            .unwrap();
        assert_eq!(again.vout, clean.vout);
        // Touching every shard recovers (and counts) both poisoned locks.
        let _ = engine.cache().unwrap().len();
        assert_eq!(engine.report().cache.lock_poisoned, 2);
    }

    /// Test evaluator that fails its first `remaining` calls with a
    /// transient non-convergence, then answers analytically, posing as
    /// the given tier.
    #[derive(Debug)]
    struct FlakyEvaluator {
        inner: AnalyticEvaluator,
        remaining: Arc<AtomicU64>,
        calls: Arc<AtomicU64>,
        pose_as: Tier,
    }

    impl FlakyEvaluator {
        fn new(failures: u64, pose_as: Tier) -> (Self, Arc<AtomicU64>, Arc<AtomicU64>) {
            let remaining = Arc::new(AtomicU64::new(failures));
            let calls = Arc::new(AtomicU64::new(0));
            (
                FlakyEvaluator {
                    inner: AnalyticEvaluator::paper(),
                    remaining: remaining.clone(),
                    calls: calls.clone(),
                    pose_as,
                },
                remaining,
                calls,
            )
        }
    }

    impl Evaluator for FlakyEvaluator {
        fn vout(&self, duties: &[DutyCycle], weights: &WeightVector) -> Result<Volts, CoreError> {
            self.calls.fetch_add(1, Ordering::Relaxed);
            let failing = self
                .remaining
                .fetch_update(Ordering::Relaxed, Ordering::Relaxed, |n| n.checked_sub(1))
                .is_ok();
            if failing {
                return Err(CoreError::Simulation(mssim::Error::NonConvergence {
                    analysis: "transient",
                    time: 0.0,
                    iterations: 0,
                    stage: "flaky",
                    attempts: 0,
                }));
            }
            self.inner.vout(duties, weights)
        }

        fn vdd(&self) -> Volts {
            self.inner.vdd()
        }

        fn tier(&self) -> Tier {
            self.pose_as
        }
    }

    fn resilient_engine(flaky_failures: u64) -> (InferenceEngine, Arc<AtomicU64>, Arc<AtomicU64>) {
        let (flaky, remaining, calls) = FlakyEvaluator::new(flaky_failures, Tier::SwitchLevel);
        let clock = Arc::new(ManualClock::new());
        let engine = InferenceEngine::paper()
            .with_switch_tier(flaky)
            .with_policy(TierPolicy::switch_level())
            .with_resilience_clock(
                ResiliencePolicy::new()
                    .with_attempts(2)
                    .with_breaker(BreakerConfig {
                        window: 8,
                        failure_rate: 0.5,
                        min_samples: 4,
                        cooldown_ns: 1_000,
                        half_open_probes: 2,
                    }),
                clock,
            );
        (engine, remaining, calls)
    }

    #[test]
    fn retry_rescues_a_transient_failure() {
        let (engine, _, calls) = resilient_engine(1);
        let eval = engine.evaluate(&query(&[0.25, 0.5, 0.75])).unwrap();
        assert!(!eval.degraded, "the retry answered at full fidelity");
        assert_eq!(eval.tier, Tier::SwitchLevel);
        assert_eq!(calls.load(Ordering::Relaxed), 2);
        let stats = engine.resilience_stats();
        assert_eq!(stats.retries, 1);
        assert_eq!(stats.demotions, 0);
        assert_eq!(stats.degraded_served, 0);
    }

    #[test]
    fn exhausted_attempts_demote_to_analytic_with_bound() {
        use mssim::telemetry::MemoryRecorder;
        let (engine, _, _) = resilient_engine(u64::MAX);
        let q = query(&[0.25, 0.5, 0.75]);
        let mut rec = MemoryRecorder::new();
        let eval = engine.evaluate_observed(&q, &mut rec).unwrap();
        assert!(eval.degraded);
        assert_eq!(eval.tier, Tier::Analytic);
        assert_eq!(eval.error_bound, ANALYTIC_ERROR_BOUND);
        // The degraded answer still matches the analytic closed form.
        let clean = AnalyticEvaluator::paper().evaluate(&q).unwrap();
        assert_eq!(eval.vout, clean.vout);
        let stats = engine.resilience_stats();
        assert_eq!(stats.demotions, 1);
        assert_eq!(stats.degraded_served, 1);
        assert_eq!(rec.counter_value("resil.degraded"), 1);
        assert_eq!(rec.counter_value("resil.demote_failure"), 1);
        assert!(rec.events().iter().any(|e| matches!(
            e,
            Event::Degraded {
                served: "analytic",
                reason: "failure",
                ..
            }
        )));
    }

    #[test]
    fn open_breaker_sheds_to_analytic_then_recovers() {
        let (engine, remaining, calls) = resilient_engine(u64::MAX);
        let q = query(&[0.25, 0.5, 0.75]);
        // Two failing queries × 2 attempts = 4 failures ≥ min_samples at
        // 100% failure rate: the switch breaker opens.
        for _ in 0..2 {
            assert!(engine.evaluate(&q).unwrap().degraded);
        }
        assert_eq!(
            engine.breaker_state(Tier::SwitchLevel),
            Some(BreakerState::Open)
        );
        let before = calls.load(Ordering::Relaxed);
        let eval = engine.evaluate(&q).unwrap();
        assert!(eval.degraded);
        assert_eq!(eval.tier, Tier::Analytic);
        assert_eq!(
            calls.load(Ordering::Relaxed),
            before,
            "an open breaker sheds load without touching the sick tier"
        );
        assert!(engine.resilience_stats().breaker_trips >= 1);

        // Heal the tier, run out the cooldown: probes close the breaker
        // and full-fidelity service resumes.
        remaining.store(0, Ordering::Relaxed);
        let res = engine.resilience.as_ref().unwrap();
        res.clock.sleep_ns(2_000);
        for _ in 0..2 {
            assert!(!engine.evaluate(&q).unwrap().degraded);
        }
        assert_eq!(
            engine.breaker_state(Tier::SwitchLevel),
            Some(BreakerState::Closed)
        );
    }

    #[test]
    fn deadline_expiry_demotes_with_timeout_reason() {
        use crate::resilience::{ChaosConfig, ChaosEvaluator};
        use mssim::telemetry::MemoryRecorder;
        let clock = Arc::new(ManualClock::new());
        // Every switch-tier call spikes 100 µs against a 50 µs deadline.
        let chaos = ChaosEvaluator::with_clock(
            SwitchLevelEvaluator::paper(),
            ChaosConfig {
                seed: 1,
                fail_rate: 0.0,
                nan_rate: 0.0,
                spike_rate: 1.0,
                spike_ns: 100_000,
            },
            clock.clone(),
        );
        let engine = InferenceEngine::paper()
            .with_switch_tier(chaos)
            .with_policy(TierPolicy::switch_level())
            .with_resilience_clock(ResiliencePolicy::new().with_deadline_ns(50_000), clock);
        let mut rec = MemoryRecorder::new();
        let eval = engine
            .evaluate_observed(&query(&[0.25, 0.5, 0.75]), &mut rec)
            .unwrap();
        assert!(eval.degraded);
        assert_eq!(eval.tier, Tier::Analytic);
        assert!(engine.resilience_stats().deadline_exceeded >= 1);
        assert_eq!(rec.counter_value("resil.demote_timeout"), 1);
        assert!(rec.events().iter().any(|e| matches!(
            e,
            Event::Degraded {
                reason: "timeout",
                ..
            }
        )));
    }

    #[test]
    fn resilient_batch_reroutes_failures_instead_of_erroring() {
        let (engine, _, _) = resilient_engine(3);
        let qs: Vec<Query> = (0..8).map(|i| query(&[i as f64 / 7.0, 0.5, 0.5])).collect();
        let out = engine.evaluate_batch(&qs);
        for (q, r) in qs.iter().zip(&out) {
            let eval = r
                .as_ref()
                .expect("resilient batch never errors transiently");
            assert!(eval.vout.value().is_finite());
            if eval.degraded {
                assert_eq!(eval.error_bound, ANALYTIC_ERROR_BOUND);
                let clean = AnalyticEvaluator::paper().evaluate(q).unwrap();
                assert_eq!(eval.vout, clean.vout);
            }
        }
    }

    #[test]
    fn degraded_answers_are_not_memoized_across_tiers() {
        // A degraded (analytic-served) answer must not later be served as
        // a switch-level cache hit: keys carry the answering tier, and
        // degraded values are never inserted.
        let (flaky, rem2, _) = FlakyEvaluator::new(2, Tier::SwitchLevel);
        let clock = Arc::new(ManualClock::new());
        let engine = InferenceEngine::paper()
            .with_switch_tier(flaky)
            .with_policy(TierPolicy::switch_level())
            .with_cache(16, 1024)
            .with_resilience_clock(ResiliencePolicy::new().with_attempts(1), clock);
        let q = query(&[0.25, 0.5, 0.75]);
        let degraded = engine.evaluate(&q).unwrap();
        assert!(degraded.degraded, "first serve degrades (flaky fails)");
        rem2.store(0, Ordering::Relaxed);
        let healed = engine.evaluate(&q).unwrap();
        assert!(!healed.degraded, "healed tier serves at full fidelity");
        assert!(!healed.cached, "the degraded answer was never cached");
        assert_eq!(healed.tier, Tier::SwitchLevel);
    }
}
