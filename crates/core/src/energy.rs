//! Energy-per-decision accounting.
//!
//! The paper reports average power (Fig. 8); a micro-edge designer cares
//! about the energy of one classification: power × the time until the
//! output capacitor has settled close enough for the comparator to
//! decide. This module converts the measured quantities into that metric
//! and provides the settling-time model.

use mssim::units::{Joules, Seconds, Watts};

/// Energy budget of one classification.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct DecisionEnergy {
    /// Average supply power during evaluation.
    pub power: Watts,
    /// Time from input application to a valid comparator decision.
    pub decision_time: Seconds,
    /// `power × decision_time`.
    pub energy: Joules,
}

impl DecisionEnergy {
    /// Combines a measured power with a decision time.
    ///
    /// # Panics
    ///
    /// Panics if either quantity is negative.
    pub fn new(power: Watts, decision_time: Seconds) -> Self {
        assert!(
            power.value() >= 0.0 && decision_time.value() >= 0.0,
            "power and time must be non-negative"
        );
        DecisionEnergy {
            power,
            decision_time,
            energy: power * decision_time,
        }
    }
}

/// Time for the adder output to settle within `tolerance` (fraction of
/// the final value): `τ·ln(1/tol)`, rounded **up to whole PWM periods**
/// (the comparator should sample cycle-aligned to dodge ripple).
///
/// # Panics
///
/// Panics if `tau`/`period` are not positive or `tolerance` is not in
/// `(0, 1)`.
pub fn decision_time(tau: Seconds, period: Seconds, tolerance: f64) -> Seconds {
    assert!(
        tau.value() > 0.0 && period.value() > 0.0,
        "tau and period must be positive"
    );
    assert!(
        tolerance > 0.0 && tolerance < 1.0,
        "tolerance must be in (0,1)"
    );
    let raw = tau.value() * (1.0 / tolerance).ln();
    let periods = (raw / period.value()).ceil().max(1.0);
    Seconds(periods * period.value())
}

/// Energy efficiency comparison between two implementations of the same
/// decision.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct EnergyComparison {
    /// Energy per decision of the PWM mixed-signal design.
    pub pwm: DecisionEnergy,
    /// Energy per decision of the digital baseline.
    pub digital: DecisionEnergy,
}

impl EnergyComparison {
    /// `digital / pwm` energy ratio (> 1 means the PWM design wins).
    pub fn ratio(&self) -> f64 {
        if self.pwm.energy.value() <= 0.0 {
            f64::INFINITY
        } else {
            self.digital.energy.value() / self.pwm.energy.value()
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn energy_is_power_times_time() {
        let d = DecisionEnergy::new(Watts(400e-6), Seconds(200e-9));
        assert!((d.energy.value() - 80e-12).abs() < 1e-18);
    }

    #[test]
    fn decision_time_rounds_to_periods() {
        // τ = 47.6 ns, T = 2 ns, 1 % tolerance → 4.6·τ ≈ 219 ns → 110 T.
        let t = decision_time(Seconds(47.6e-9), Seconds(2e-9), 0.01);
        let periods = t.value() / 2e-9;
        assert!((periods.fract()).abs() < 1e-9, "whole periods");
        assert!((109.0..=111.0).contains(&periods), "periods = {periods}");
    }

    #[test]
    fn decision_time_is_at_least_one_period() {
        let t = decision_time(Seconds(1e-12), Seconds(1e-6), 0.5);
        assert_eq!(t, Seconds(1e-6));
    }

    #[test]
    fn comparison_ratio() {
        let cmp = EnergyComparison {
            pwm: DecisionEnergy::new(Watts(100e-6), Seconds(100e-9)),
            digital: DecisionEnergy::new(Watts(500e-6), Seconds(100e-9)),
        };
        assert!((cmp.ratio() - 5.0).abs() < 1e-12);
    }

    #[test]
    #[should_panic(expected = "tolerance must be in (0,1)")]
    fn bad_tolerance_panics() {
        let _ = decision_time(Seconds(1e-9), Seconds(1e-9), 1.5);
    }
}
