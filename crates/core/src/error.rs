//! Error type of the perceptron layer.

use std::fmt;

/// Errors produced by the perceptron APIs.
#[derive(Debug, Clone, PartialEq)]
#[non_exhaustive]
pub enum CoreError {
    /// A duty cycle was outside `0.0..=1.0`.
    InvalidDuty {
        /// The offending value.
        value: f64,
    },
    /// A weight exceeded its bit width.
    InvalidWeight {
        /// The offending weight.
        weight: i64,
        /// The configured width.
        bits: u32,
    },
    /// Input dimension did not match the perceptron's weight count.
    DimensionMismatch {
        /// Dimension the perceptron expects.
        expected: usize,
        /// Dimension that was provided.
        got: usize,
    },
    /// A dataset was empty or otherwise unusable for training.
    EmptyDataset,
    /// The underlying circuit simulation failed.
    Simulation(mssim::Error),
    /// An internal invariant of the serving stack was violated — a bug,
    /// reported as a structured error instead of a panic so one bad query
    /// cannot take down a serving process.
    Internal {
        /// Which invariant broke.
        reason: &'static str,
    },
}

impl fmt::Display for CoreError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CoreError::InvalidDuty { value } => {
                write!(f, "duty cycle {value} outside 0..=1")
            }
            CoreError::InvalidWeight { weight, bits } => {
                write!(f, "weight {weight} does not fit in {bits} bits")
            }
            CoreError::DimensionMismatch { expected, got } => {
                write!(f, "expected {expected} inputs, got {got}")
            }
            CoreError::EmptyDataset => write!(f, "dataset has no samples"),
            CoreError::Simulation(e) => write!(f, "simulation failed: {e}"),
            CoreError::Internal { reason } => {
                write!(f, "internal serving invariant violated: {reason}")
            }
        }
    }
}

impl std::error::Error for CoreError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            CoreError::Simulation(e) => Some(e),
            _ => None,
        }
    }
}

impl From<mssim::Error> for CoreError {
    fn from(e: mssim::Error) -> Self {
        CoreError::Simulation(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_and_source() {
        use std::error::Error as _;
        let e = CoreError::InvalidDuty { value: 1.5 };
        assert!(e.to_string().contains("1.5"));
        assert!(e.source().is_none());

        let e = CoreError::from(mssim::Error::SingularMatrix { row: 1 });
        assert!(e.to_string().contains("simulation failed"));
        assert!(e.source().is_some());
    }

    #[test]
    fn is_send_sync() {
        fn check<T: Send + Sync>() {}
        check::<CoreError>();
    }
}
