//! Digital weight vectors.
//!
//! In the hardware each weight is an `n`-bit unsigned integer whose bits
//! enable binary-scaled AND cells ([`pwmcell::WeightedAdder`]); weight 0
//! cells still load the output node. Negative weights are realised
//! differentially by the [`crate::DifferentialPerceptron`], which splits a
//! signed vector into a positive and a negative unsigned half.

use std::fmt;

use crate::error::CoreError;

/// An unsigned integer weight vector with a fixed bit width.
///
/// # Examples
///
/// ```
/// use pwm_perceptron::WeightVector;
///
/// let w = WeightVector::new(vec![7, 2, 5], 3)?;
/// assert_eq!(w.max_weight(), 7);
/// assert_eq!(w.len(), 3);
/// # Ok::<(), pwm_perceptron::CoreError>(())
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct WeightVector {
    weights: Vec<u32>,
    bits: u32,
}

impl WeightVector {
    /// Creates a weight vector.
    ///
    /// # Errors
    ///
    /// Returns [`CoreError::InvalidWeight`] if any weight exceeds
    /// `2^bits − 1`, or [`CoreError::EmptyDataset`]-style dimension error
    /// if `weights` is empty.
    pub fn new(weights: Vec<u32>, bits: u32) -> Result<Self, CoreError> {
        assert!((1..=16).contains(&bits), "weight width must be 1..=16 bits");
        if weights.is_empty() {
            return Err(CoreError::DimensionMismatch {
                expected: 1,
                got: 0,
            });
        }
        let max = (1u32 << bits) - 1;
        for &w in &weights {
            if w > max {
                return Err(CoreError::InvalidWeight {
                    weight: w as i64,
                    bits,
                });
            }
        }
        Ok(WeightVector { weights, bits })
    }

    /// All-zero weights of the given dimension.
    pub fn zeros(len: usize, bits: u32) -> Self {
        Self::new(vec![0; len.max(1)], bits).expect("zeros are always valid")
    }

    /// All-maximal weights of the given dimension (the paper's Table II
    /// row 1 style).
    pub fn maxed(len: usize, bits: u32) -> Self {
        let max = (1u32 << bits) - 1;
        Self::new(vec![max; len.max(1)], bits).expect("max weights are always valid")
    }

    /// Number of weights.
    pub fn len(&self) -> usize {
        self.weights.len()
    }

    /// `true` if the vector is empty (never, by construction).
    pub fn is_empty(&self) -> bool {
        self.weights.is_empty()
    }

    /// Bit width `n`.
    pub fn bits(&self) -> u32 {
        self.bits
    }

    /// Largest representable weight, `2ⁿ − 1`.
    pub fn max_weight(&self) -> u32 {
        (1u32 << self.bits) - 1
    }

    /// The weights as a slice.
    pub fn as_slice(&self) -> &[u32] {
        &self.weights
    }

    /// One weight.
    ///
    /// # Panics
    ///
    /// Panics if `index` is out of bounds.
    pub fn get(&self, index: usize) -> u32 {
        self.weights[index]
    }

    /// Replaces one weight, clamping into range.
    ///
    /// # Panics
    ///
    /// Panics if `index` is out of bounds.
    pub fn set_clamped(&mut self, index: usize, value: i64) {
        let clamped = value.clamp(0, self.max_weight() as i64) as u32;
        self.weights[index] = clamped;
    }

    /// Adjusts one weight by a signed step, saturating at the range ends.
    /// Returns the new value.
    ///
    /// # Panics
    ///
    /// Panics if `index` is out of bounds.
    pub fn nudge(&mut self, index: usize, delta: i64) -> u32 {
        let new = self.weights[index] as i64 + delta;
        self.set_clamped(index, new);
        self.weights[index]
    }

    /// Iterates over the weights.
    pub fn iter(&self) -> std::slice::Iter<'_, u32> {
        self.weights.iter()
    }

    /// Sum of all weights (useful for normalisation).
    pub fn total(&self) -> u64 {
        self.weights.iter().map(|&w| w as u64).sum()
    }
}

impl fmt::Display for WeightVector {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "[")?;
        for (i, w) in self.weights.iter().enumerate() {
            if i > 0 {
                write!(f, ", ")?;
            }
            write!(f, "{w}")?;
        }
        write!(f, "]:{}b", self.bits)
    }
}

impl<'a> IntoIterator for &'a WeightVector {
    type Item = &'a u32;
    type IntoIter = std::slice::Iter<'a, u32>;
    fn into_iter(self) -> Self::IntoIter {
        self.weights.iter()
    }
}

/// A signed weight vector for the differential perceptron: each weight in
/// `−(2ⁿ−1) ..= 2ⁿ−1` is split into a positive and a negative unsigned
/// magnitude driving the two adder halves.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SignedWeightVector {
    weights: Vec<i32>,
    bits: u32,
}

impl SignedWeightVector {
    /// Creates a signed vector.
    ///
    /// # Errors
    ///
    /// Returns [`CoreError::InvalidWeight`] if any |weight| exceeds
    /// `2^bits − 1`.
    pub fn new(weights: Vec<i32>, bits: u32) -> Result<Self, CoreError> {
        assert!((1..=16).contains(&bits), "weight width must be 1..=16 bits");
        if weights.is_empty() {
            return Err(CoreError::DimensionMismatch {
                expected: 1,
                got: 0,
            });
        }
        let max = (1i32 << bits) - 1;
        for &w in &weights {
            if w.abs() > max {
                return Err(CoreError::InvalidWeight {
                    weight: w as i64,
                    bits,
                });
            }
        }
        Ok(SignedWeightVector { weights, bits })
    }

    /// All-zero signed weights.
    pub fn zeros(len: usize, bits: u32) -> Self {
        Self::new(vec![0; len.max(1)], bits).expect("zeros are valid")
    }

    /// Number of weights.
    pub fn len(&self) -> usize {
        self.weights.len()
    }

    /// `true` if empty (never, by construction).
    pub fn is_empty(&self) -> bool {
        self.weights.is_empty()
    }

    /// Bit width of each magnitude.
    pub fn bits(&self) -> u32 {
        self.bits
    }

    /// The signed weights.
    pub fn as_slice(&self) -> &[i32] {
        &self.weights
    }

    /// Adjusts one weight by a signed step, saturating at ±(2ⁿ−1).
    ///
    /// # Panics
    ///
    /// Panics if `index` is out of bounds.
    pub fn nudge(&mut self, index: usize, delta: i32) {
        let max = (1i32 << self.bits) - 1;
        self.weights[index] = (self.weights[index] + delta).clamp(-max, max);
    }

    /// Splits into the positive and negative unsigned halves that drive
    /// the two adders of a differential perceptron.
    pub fn split(&self) -> (WeightVector, WeightVector) {
        let pos: Vec<u32> = self.weights.iter().map(|&w| w.max(0) as u32).collect();
        let neg: Vec<u32> = self.weights.iter().map(|&w| (-w).max(0) as u32).collect();
        (
            WeightVector::new(pos, self.bits).expect("split halves are in range"),
            WeightVector::new(neg, self.bits).expect("split halves are in range"),
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn construction_and_validation() {
        let w = WeightVector::new(vec![0, 3, 7], 3).unwrap();
        assert_eq!(w.len(), 3);
        assert_eq!(w.bits(), 3);
        assert_eq!(w.max_weight(), 7);
        assert_eq!(w.get(1), 3);
        assert_eq!(w.total(), 10);
        assert!(WeightVector::new(vec![8], 3).is_err());
        assert!(WeightVector::new(vec![], 3).is_err());
    }

    #[test]
    fn zeros_and_maxed() {
        assert_eq!(WeightVector::zeros(3, 3).as_slice(), &[0, 0, 0]);
        assert_eq!(WeightVector::maxed(2, 3).as_slice(), &[7, 7]);
    }

    #[test]
    fn nudge_saturates() {
        let mut w = WeightVector::new(vec![6], 3).unwrap();
        assert_eq!(w.nudge(0, 5), 7);
        assert_eq!(w.nudge(0, -20), 0);
        assert_eq!(w.nudge(0, 3), 3);
    }

    #[test]
    fn display_format() {
        let w = WeightVector::new(vec![1, 2], 3).unwrap();
        assert_eq!(w.to_string(), "[1, 2]:3b");
    }

    #[test]
    fn iteration() {
        let w = WeightVector::new(vec![1, 2, 3], 3).unwrap();
        let sum: u32 = w.iter().sum();
        assert_eq!(sum, 6);
        let sum2: u32 = (&w).into_iter().sum();
        assert_eq!(sum2, 6);
    }

    #[test]
    fn signed_split() {
        let s = SignedWeightVector::new(vec![3, -5, 0], 3).unwrap();
        let (p, n) = s.split();
        assert_eq!(p.as_slice(), &[3, 0, 0]);
        assert_eq!(n.as_slice(), &[0, 5, 0]);
    }

    #[test]
    fn signed_validation_and_nudge() {
        assert!(SignedWeightVector::new(vec![-8], 3).is_err());
        let mut s = SignedWeightVector::new(vec![6], 3).unwrap();
        s.nudge(0, 5);
        assert_eq!(s.as_slice(), &[7]);
        s.nudge(0, -100);
        assert_eq!(s.as_slice(), &[-7]);
    }
}
