//! Input encoders: real-valued sensor samples → duty cycles.

use crate::duty::DutyCycle;
use crate::error::CoreError;

/// Affine encoder mapping a sensor range `[min, max]` onto duty cycles
/// `[0, 1]`, clamping out-of-range samples.
///
/// # Examples
///
/// ```
/// use pwm_perceptron::encode::LinearEncoder;
///
/// let enc = LinearEncoder::new(-40.0, 85.0); // a temperature sensor
/// let d = enc.encode(22.5);
/// assert!((d.value() - 0.5).abs() < 1e-12);
/// ```
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct LinearEncoder {
    min: f64,
    max: f64,
}

impl LinearEncoder {
    /// Creates an encoder for the sample range `[min, max]`.
    ///
    /// # Panics
    ///
    /// Panics if `min >= max` or either bound is not finite.
    pub fn new(min: f64, max: f64) -> Self {
        assert!(
            min.is_finite() && max.is_finite() && min < max,
            "encoder range must be finite with min < max"
        );
        LinearEncoder { min, max }
    }

    /// The unit range `[0, 1]` (identity with clamping).
    pub fn unit() -> Self {
        LinearEncoder::new(0.0, 1.0)
    }

    /// Lower bound of the sample range.
    pub fn min(&self) -> f64 {
        self.min
    }

    /// Upper bound of the sample range.
    pub fn max(&self) -> f64 {
        self.max
    }

    /// Encodes one sample, clamping into range.
    pub fn encode(&self, sample: f64) -> DutyCycle {
        DutyCycle::clamped((sample - self.min) / (self.max - self.min))
    }

    /// Encodes a slice of samples.
    pub fn encode_slice(&self, samples: &[f64]) -> Vec<DutyCycle> {
        samples.iter().map(|&s| self.encode(s)).collect()
    }

    /// Decodes a duty cycle back into the sample range (the inverse of
    /// [`LinearEncoder::encode`] for in-range samples).
    pub fn decode(&self, duty: DutyCycle) -> f64 {
        self.min + duty.value() * (self.max - self.min)
    }

    /// Encodes with quantisation to `levels` duty steps — what a
    /// counter-based PWM generator with `log2(levels)` bits produces
    /// (see `gatesim::kessels`).
    ///
    /// # Panics
    ///
    /// Panics if `levels < 2`.
    pub fn encode_quantized(&self, sample: f64, levels: u32) -> DutyCycle {
        self.encode(sample).quantized(levels)
    }
}

/// Encodes a strictly-validated slice (no clamping): errors on any sample
/// outside `[0, 1]`.
///
/// # Errors
///
/// Returns [`CoreError::InvalidDuty`] on the first out-of-range sample.
pub fn encode_unit_strict(samples: &[f64]) -> Result<Vec<DutyCycle>, CoreError> {
    DutyCycle::try_from_slice(samples)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn affine_mapping_and_inverse() {
        let enc = LinearEncoder::new(10.0, 20.0);
        assert!((enc.encode(15.0).value() - 0.5).abs() < 1e-12);
        assert_eq!(enc.encode(5.0).value(), 0.0); // clamped
        assert_eq!(enc.encode(25.0).value(), 1.0); // clamped
        let d = enc.encode(17.5);
        assert!((enc.decode(d) - 17.5).abs() < 1e-12);
        assert_eq!(enc.min(), 10.0);
        assert_eq!(enc.max(), 20.0);
    }

    #[test]
    fn unit_encoder_is_identity() {
        let enc = LinearEncoder::unit();
        assert_eq!(enc.encode(0.3).value(), 0.3);
    }

    #[test]
    fn slice_encoding() {
        let enc = LinearEncoder::new(0.0, 100.0);
        let ds = enc.encode_slice(&[0.0, 50.0, 100.0]);
        assert_eq!(DutyCycle::to_raw(&ds), vec![0.0, 0.5, 1.0]);
    }

    #[test]
    fn quantized_encoding() {
        let enc = LinearEncoder::unit();
        let d = enc.encode_quantized(0.33, 5);
        assert_eq!(d.value(), 0.25);
    }

    #[test]
    fn strict_encoding_errors() {
        assert!(encode_unit_strict(&[0.2, 0.8]).is_ok());
        assert!(encode_unit_strict(&[0.2, 1.2]).is_err());
    }

    #[test]
    #[should_panic(expected = "min < max")]
    fn inverted_range_panics() {
        let _ = LinearEncoder::new(5.0, 5.0);
    }
}
