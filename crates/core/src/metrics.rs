//! Binary classification metrics.
//!
//! Accuracy alone hides class imbalance — a sensor event filter that
//! never fires scores 50 % on a balanced stream and 95 % on a rare-event
//! stream. This module provides the standard confusion-matrix metrics
//! for evaluating trained perceptrons on the [`crate::Dataset`] tasks.

use crate::dataset::Dataset;
use crate::error::CoreError;
use crate::eval::Evaluator;
use crate::perceptron::PwmPerceptron;

/// A binary confusion matrix.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct ConfusionMatrix {
    /// Positive samples classified positive.
    pub true_positives: usize,
    /// Negative samples classified positive.
    pub false_positives: usize,
    /// Negative samples classified negative.
    pub true_negatives: usize,
    /// Positive samples classified negative.
    pub false_negatives: usize,
}

impl ConfusionMatrix {
    /// Accumulates one `(prediction, truth)` observation.
    pub fn record(&mut self, prediction: bool, truth: bool) {
        match (prediction, truth) {
            (true, true) => self.true_positives += 1,
            (true, false) => self.false_positives += 1,
            (false, false) => self.true_negatives += 1,
            (false, true) => self.false_negatives += 1,
        }
    }

    /// Total observations.
    pub fn total(&self) -> usize {
        self.true_positives + self.false_positives + self.true_negatives + self.false_negatives
    }

    /// Fraction classified correctly.
    pub fn accuracy(&self) -> f64 {
        let total = self.total();
        if total == 0 {
            return 0.0;
        }
        (self.true_positives + self.true_negatives) as f64 / total as f64
    }

    /// `TP / (TP + FP)` — how trustworthy a positive decision is.
    /// Returns 1.0 when the classifier never fired (vacuous precision).
    pub fn precision(&self) -> f64 {
        let fired = self.true_positives + self.false_positives;
        if fired == 0 {
            1.0
        } else {
            self.true_positives as f64 / fired as f64
        }
    }

    /// `TP / (TP + FN)` — how many real events are caught.
    /// Returns 1.0 when there were no positive samples.
    pub fn recall(&self) -> f64 {
        let positives = self.true_positives + self.false_negatives;
        if positives == 0 {
            1.0
        } else {
            self.true_positives as f64 / positives as f64
        }
    }

    /// Harmonic mean of precision and recall.
    pub fn f1(&self) -> f64 {
        let p = self.precision();
        let r = self.recall();
        if p + r == 0.0 {
            0.0
        } else {
            2.0 * p * r / (p + r)
        }
    }

    /// Matthews correlation coefficient — balanced even when the classes
    /// are not; in `[-1, 1]`, 0 for a coin flip.
    pub fn mcc(&self) -> f64 {
        let tp = self.true_positives as f64;
        let fp = self.false_positives as f64;
        let tn = self.true_negatives as f64;
        let fn_ = self.false_negatives as f64;
        let denom = ((tp + fp) * (tp + fn_) * (tn + fp) * (tn + fn_)).sqrt();
        if denom == 0.0 {
            0.0
        } else {
            (tp * tn - fp * fn_) / denom
        }
    }
}

/// Runs a perceptron over a dataset and collects the confusion matrix.
///
/// # Errors
///
/// Returns [`CoreError::EmptyDataset`] for an empty dataset and
/// propagates evaluator errors.
pub fn evaluate<E: Evaluator>(
    perceptron: &mut PwmPerceptron<E>,
    data: &Dataset,
) -> Result<ConfusionMatrix, CoreError> {
    if data.is_empty() {
        return Err(CoreError::EmptyDataset);
    }
    let mut cm = ConfusionMatrix::default();
    for sample in data.samples() {
        let pred = perceptron.classify(&sample.duties)?;
        cm.record(pred, sample.label);
    }
    Ok(cm)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::eval::AnalyticEvaluator;
    use crate::{Reference, WeightVector};

    #[test]
    fn hand_counted_matrix() {
        let mut cm = ConfusionMatrix::default();
        // 3 TP, 1 FP, 4 TN, 2 FN.
        for _ in 0..3 {
            cm.record(true, true);
        }
        cm.record(true, false);
        for _ in 0..4 {
            cm.record(false, false);
        }
        for _ in 0..2 {
            cm.record(false, true);
        }
        assert_eq!(cm.total(), 10);
        assert!((cm.accuracy() - 0.7).abs() < 1e-12);
        assert!((cm.precision() - 0.75).abs() < 1e-12);
        assert!((cm.recall() - 0.6).abs() < 1e-12);
        let f1 = 2.0 * 0.75 * 0.6 / 1.35;
        assert!((cm.f1() - f1).abs() < 1e-12);
        assert!(cm.mcc() > 0.0 && cm.mcc() < 1.0);
    }

    #[test]
    fn degenerate_cases() {
        let empty = ConfusionMatrix::default();
        assert_eq!(empty.accuracy(), 0.0);
        assert_eq!(empty.precision(), 1.0);
        assert_eq!(empty.recall(), 1.0);
        assert_eq!(empty.mcc(), 0.0);

        // Perfect classifier.
        let mut perfect = ConfusionMatrix::default();
        perfect.record(true, true);
        perfect.record(false, false);
        assert_eq!(perfect.accuracy(), 1.0);
        assert_eq!(perfect.f1(), 1.0);
        assert!((perfect.mcc() - 1.0).abs() < 1e-12);

        // Always-wrong classifier.
        let mut inverted = ConfusionMatrix::default();
        inverted.record(true, false);
        inverted.record(false, true);
        assert!((inverted.mcc() + 1.0).abs() < 1e-12);
    }

    #[test]
    fn never_firing_on_rare_events_has_high_accuracy_low_recall() {
        // The motivating case: 9 negatives, 1 positive, classifier silent.
        let mut cm = ConfusionMatrix::default();
        for _ in 0..9 {
            cm.record(false, false);
        }
        cm.record(false, true);
        assert!((cm.accuracy() - 0.9).abs() < 1e-12);
        assert_eq!(cm.recall(), 0.0);
        assert_eq!(cm.f1(), 0.0);
    }

    #[test]
    fn evaluate_a_perceptron_end_to_end() {
        let data = Dataset::majority(3);
        let mut p = PwmPerceptron::new(
            AnalyticEvaluator::paper(),
            WeightVector::maxed(3, 3),
            Reference::ratiometric(0.5),
        );
        let cm = evaluate(&mut p, &data).unwrap();
        assert_eq!(cm.total(), 8);
        assert_eq!(cm.accuracy(), 1.0);
        assert_eq!(cm.mcc(), 1.0);

        // A broken reference fires always → recall 1, precision = base
        // rate.
        let mut always = PwmPerceptron::new(
            AnalyticEvaluator::paper(),
            WeightVector::maxed(3, 3),
            Reference::ratiometric(0.0),
        );
        let cm = evaluate(&mut always, &data).unwrap();
        assert_eq!(cm.recall(), 1.0);
        assert!((cm.precision() - 0.5).abs() < 1e-12);
    }
}
