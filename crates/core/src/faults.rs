//! Fault-injection campaigns — the paper's "Robust" claim under hard
//! defects instead of parametric variation.
//!
//! [`crate::robustness`] asks how the perceptron behaves when every
//! device drifts a little; this module asks what happens when one device
//! breaks outright. A campaign takes the golden switch-level adder
//! netlist, enumerates its single-fault universe (via
//! [`pwmcell::faults`]), simulates every faulty copy under the
//! convergence-rescue ladder, and classifies each outcome against the
//! paper's Eq. 2 analytic output:
//!
//! * [`FaultClass::Masked`] — the defect is invisible at the output,
//! * [`FaultClass::Degraded`] — measurable error, still the right side
//!   of the decision band,
//! * [`FaultClass::FunctionalFail`] — the analog sum is wrong enough to
//!   flip decisions,
//! * [`FaultClass::SolverFail`] — the simulation itself could not
//!   deliver a settled output (a [`mssim`] `Partial` outcome or a hard
//!   solver error).
//!
//! Faults fan out over [`mssim::sweep::sweep`], which preserves input
//! order, and the universe enumeration is insertion-ordered, so a
//! campaign is deterministic: same netlist, same config, same report.
//!
//! With [`CampaignConfig::collapse`] enabled, the static fault
//! collapsing of [`mssim::analyze`] first partitions the universe by
//! compiled-plan identity: faults whose stamped plans are bitwise
//! indistinguishable from the golden netlist replicate the golden
//! verdict, and faults indistinguishable from each other share one
//! representative transient. Because equal plan keys guarantee bitwise
//! identical transients, the collapsed report's outcomes are
//! bitwise identical to the uncollapsed ones — only fewer transients
//! run.
//!
//! With [`CampaignConfig::triage`] enabled, a *static triage tier* runs
//! between collapsing and simulation: each class representative's
//! faulted netlist is pushed through the guaranteed interval solver
//! ([`mssim::analyze::triage_circuit`]), and a class whose settled-output
//! enclosure certifies as `GuaranteedMasked` or `GuaranteedFail` against
//! the Eq. 2 bands is classified right there — only the
//! `NeedsSimulation` bucket reaches the transient/rescue pipeline.
//! Statically-resolved rows carry their verdict and enclosure in
//! [`FaultOutcome::static_verdict`] / [`FaultOutcome::enclosure`], and
//! the certified class tag is the one a transient would have produced
//! (the soundness proptests and the CI contradiction gate check exactly
//! that).

use mssim::faults::UniverseConfig;
use mssim::prelude::{
    collapse_faults, triage_circuit, Circuit, CollapseMember, Error as SimError, LabeledFault,
    NodeId, Ranges, RescuePolicy, Session, StaticVerdict, Transient, TransientOutcome,
    TriageVerdict, VerdictBands, Waveform,
};
use mssim::sweep;
use mssim::telemetry::{dispatch, Event, Observer};
use pwmcell::faults::{switch_adder_universe, weighted_adder_universe};
use pwmcell::{AdderSpec, SwitchAdder, Technology, WeightedAdder};

use crate::error::CoreError;
use crate::eval::{AnalyticEvaluator, Evaluator};
use crate::infer::Query;
use crate::robustness::McSummary;
use crate::weight::WeightVector;

/// Outcome class of one injected fault.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum FaultClass {
    /// Output within `masked_epsilon` of the analytic Eq. 2 value.
    Masked,
    /// Output off by more than `masked_epsilon` but within
    /// `fail_epsilon` — degraded yet plausibly decision-safe.
    Degraded {
        /// Absolute output error in volts.
        error_v: f64,
    },
    /// Output error beyond `fail_epsilon`: the analog sum is wrong.
    FunctionalFail {
        /// Absolute output error in volts.
        error_v: f64,
    },
    /// No settled output: the rescue ladder degraded to a partial
    /// waveform, or the solver failed outright.
    SolverFail {
        /// `true` when the ladder salvaged a partial waveform,
        /// `false` on a hard solver error.
        partial: bool,
    },
}

impl FaultClass {
    /// Machine-readable class tag (stable, used in the exported JSON).
    pub fn tag(&self) -> &'static str {
        match self {
            FaultClass::Masked => "masked",
            FaultClass::Degraded { .. } => "degraded",
            FaultClass::FunctionalFail { .. } => "functional_fail",
            FaultClass::SolverFail { .. } => "solver_fail",
        }
    }
}

/// One row of a campaign report: a fault and what it did.
#[derive(Debug, Clone, PartialEq)]
pub struct FaultOutcome {
    /// The fault's campaign label (`kind:target`).
    pub label: String,
    /// The fault kind tag (`switch_stuck_open`, …).
    pub kind: &'static str,
    /// Settled output voltage, when one was measured.
    pub vout: Option<f64>,
    /// `|vout − analytic|`, when an output was measured.
    pub error_v: Option<f64>,
    /// The verdict.
    pub class: FaultClass,
    /// Rescue-ladder rungs burned while simulating this fault.
    pub rescue_attempts: usize,
    /// Rescue incidents the ladder recovered from.
    pub rescue_recoveries: usize,
    /// Solver error display, for `SolverFail` rows.
    pub error: Option<String>,
    /// Static triage verdict, when the triage tier classified this row
    /// without a transient ([`CampaignConfig::triage`]). `None` on
    /// simulated rows and in non-triaged campaigns.
    pub static_verdict: Option<StaticVerdict>,
    /// Guaranteed Vout enclosure `(lo, hi)` backing a static verdict.
    pub enclosure: Option<(f64, f64)>,
}

/// Knobs of a fault campaign.
#[derive(Debug, Clone, PartialEq)]
pub struct CampaignConfig {
    /// PWM input frequency, hertz. The paper's power-elasticity claim
    /// makes the settled average frequency-independent, so campaigns
    /// default to 50 MHz, where the adder's RC settling (τ ≈ R·Cout)
    /// spans a handful of periods instead of hundreds.
    pub frequency: f64,
    /// Simulated PWM periods per fault.
    pub periods: usize,
    /// Fixed time steps per period.
    pub steps_per_period: usize,
    /// Trailing periods averaged into the settled output.
    pub avg_periods: usize,
    /// Output error below which a fault counts as [`FaultClass::Masked`],
    /// volts.
    pub masked_epsilon: f64,
    /// Output error above which a fault counts as
    /// [`FaultClass::FunctionalFail`], volts.
    pub fail_epsilon: f64,
    /// Convergence-rescue ladder applied to every faulty transient.
    pub rescue: RescuePolicy,
    /// Universe enumeration knobs (drift factors, jitter seed, …).
    pub universe: UniverseConfig,
    /// Statically collapse the fault universe before simulating
    /// ([`mssim::analyze::collapse_faults`]): only one representative
    /// per plan-equivalence class runs a transient, replicas copy its
    /// verdict. Off by default so existing campaigns stay bitwise
    /// reproducible rung for rung; the collapsed outcomes are bitwise
    /// identical either way.
    pub collapse: bool,
    /// Statically triage each plan-equivalence class through the
    /// guaranteed interval solver before simulating: classes certified
    /// `GuaranteedMasked`/`GuaranteedFail` against the Eq. 2 bands skip
    /// the transient entirely. Implies the collapse partition (the
    /// triage tier works per class). Off by default.
    pub triage: bool,
}

impl Default for CampaignConfig {
    fn default() -> Self {
        CampaignConfig {
            frequency: 50e6,
            periods: 24,
            steps_per_period: 100,
            avg_periods: 4,
            masked_epsilon: 0.05,
            fail_epsilon: 0.25,
            rescue: RescuePolicy::default(),
            universe: UniverseConfig::default(),
            collapse: false,
            triage: false,
        }
    }
}

/// Static fault-collapsing statistics of one campaign run (present on
/// the report only when [`CampaignConfig::collapse`] was enabled).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CollapseStats {
    /// Faults in the enumerated universe.
    pub universe: usize,
    /// Distinct plan-equivalence classes (golden class included when
    /// populated).
    pub classes: usize,
    /// Transients actually simulated (class representatives only).
    pub simulated: usize,
    /// Faults statically indistinguishable from the golden netlist.
    pub golden: usize,
}

/// Static-triage statistics of one campaign run (present on the report
/// only when [`CampaignConfig::triage`] was enabled). Counts are over
/// the whole universe: replicas inherit their representative's verdict.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TriageStats {
    /// Faults in the enumerated universe.
    pub universe: usize,
    /// Faults certified `GuaranteedMasked` without a transient.
    pub masked: usize,
    /// Faults certified `GuaranteedFail` without a transient.
    pub failed: usize,
    /// Faults left for the transient/rescue pipeline (golden-class rows
    /// included — the golden transient runs regardless).
    pub simulated: usize,
}

impl TriageStats {
    /// Fraction of the universe resolved without simulation.
    pub fn triage_ratio(&self) -> f64 {
        if self.universe == 0 {
            return 0.0;
        }
        (self.masked + self.failed) as f64 / self.universe as f64
    }
}

/// A finished campaign: the references and every fault's verdict, in
/// universe order.
#[derive(Debug, Clone, PartialEq)]
pub struct CampaignReport {
    /// Eq. 2 analytic output, the classification reference.
    pub analytic_vout: f64,
    /// Settled output of the fault-free netlist.
    pub golden_vout: f64,
    /// One row per enumerated fault.
    pub outcomes: Vec<FaultOutcome>,
    /// Collapsing statistics, when static collapsing ran.
    pub collapse: Option<CollapseStats>,
    /// Triage statistics, when the static triage tier ran.
    pub triage: Option<TriageStats>,
}

impl CampaignReport {
    /// Number of outcomes in class `tag`.
    pub fn count(&self, tag: &str) -> usize {
        self.outcomes
            .iter()
            .filter(|o| o.class.tag() == tag)
            .count()
    }

    /// Distribution of the absolute output error across every fault that
    /// produced a settled output, or `None` when no fault did (routes
    /// through [`McSummary::try_from_samples`], which owns the empty
    /// case).
    pub fn error_summary(&self) -> Option<McSummary> {
        McSummary::try_from_samples(self.outcomes.iter().filter_map(|o| o.error_v).collect())
    }

    /// Total rescue-ladder rungs burned across the whole campaign.
    pub fn rescue_attempts(&self) -> usize {
        self.outcomes.iter().map(|o| o.rescue_attempts).sum()
    }
}

/// Result of simulating one (possibly faulty) netlist. `Clone` so a
/// collapsed campaign can replicate one representative's measurement
/// across its whole equivalence class.
#[derive(Clone)]
struct Measured {
    vout: Option<f64>,
    rescue_attempts: usize,
    rescue_recoveries: usize,
    partial: bool,
    error: Option<String>,
}

/// Trapezoidal mean of `(time, values)` over `[t_from, t_last]`, or
/// `None` when fewer than two samples fall in the window.
fn trailing_average(time: &[f64], values: &[f64], t_from: f64) -> Option<f64> {
    let start = time.iter().position(|&t| t >= t_from)?;
    if start + 1 >= time.len() {
        return None;
    }
    let mut area = 0.0;
    for i in start..time.len() - 1 {
        area += 0.5 * (values[i] + values[i + 1]) * (time[i + 1] - time[i]);
    }
    let span = time[time.len() - 1] - time[start];
    (span > 0.0).then(|| area / span)
}

fn measure(
    circuit: &Circuit,
    output: NodeId,
    tran: &Transient,
    rescue: &RescuePolicy,
    t_avg_from: f64,
    limited: bool,
) -> Measured {
    match Session::new(circuit)
        .with_device_limiting(limited)
        .transient_rescued(tran, rescue)
    {
        Ok(outcome) => {
            let rescues = outcome.rescues();
            let (attempts, recoveries) = (rescues.total_attempts(), rescues.recovered());
            match outcome {
                TransientOutcome::Complete { result, .. } => {
                    let v = result.voltage(output);
                    Measured {
                        vout: trailing_average(result.time(), v.values(), t_avg_from),
                        rescue_attempts: attempts,
                        rescue_recoveries: recoveries,
                        partial: false,
                        error: None,
                    }
                }
                TransientOutcome::Partial { error, .. } => Measured {
                    vout: None,
                    rescue_attempts: attempts,
                    rescue_recoveries: recoveries,
                    partial: true,
                    error: Some(error.to_string()),
                },
            }
        }
        Err(e) => Measured {
            vout: None,
            rescue_attempts: 0,
            rescue_recoveries: 0,
            partial: false,
            error: Some(e.to_string()),
        },
    }
}

fn classify(measured: &Measured, analytic_vout: f64, config: &CampaignConfig) -> FaultClass {
    match measured.vout {
        Some(v) if v.is_finite() => {
            let error_v = (v - analytic_vout).abs();
            if error_v <= config.masked_epsilon {
                FaultClass::Masked
            } else if error_v <= config.fail_epsilon {
                FaultClass::Degraded { error_v }
            } else {
                FaultClass::FunctionalFail { error_v }
            }
        }
        // A non-finite average is a solver artefact, not a circuit verdict.
        Some(_) => FaultClass::SolverFail {
            partial: measured.partial,
        },
        None => FaultClass::SolverFail {
            partial: measured.partial,
        },
    }
}

/// Builds the campaign's switch-level adder testbench.
fn adder_fixture(
    tech: &Technology,
    spec: AdderSpec,
    weights: &[u32],
    duties: &[f64],
    frequency: f64,
) -> Result<(Circuit, SwitchAdder), CoreError> {
    if duties.len() != weights.len() {
        return Err(CoreError::DimensionMismatch {
            expected: weights.len(),
            got: duties.len(),
        });
    }
    for &d in duties {
        if !(0.0..=1.0).contains(&d) || !d.is_finite() {
            return Err(CoreError::InvalidDuty { value: d });
        }
    }
    // Re-validate the weights through the shared domain type so the
    // campaign rejects what the netlist builder would panic on.
    WeightVector::new(weights.to_vec(), spec.bits)?;
    let mut ckt = Circuit::new();
    let vdd = ckt.node("vdd");
    ckt.vsource("VDD", vdd, Circuit::GND, Waveform::dc(tech.vdd.value()));
    let adder = SwitchAdder::build(&mut ckt, tech, "add", vdd, weights, spec);
    for (i, &d) in duties.iter().enumerate() {
        ckt.vsource(
            &format!("VIN{i}"),
            adder.inputs[i],
            Circuit::GND,
            Waveform::pwm(tech.vdd.value(), frequency, d),
        );
    }
    Ok((ckt, adder))
}

/// Builds the campaign's transistor-level (Fig. 3) adder testbench.
fn weighted_adder_fixture(
    tech: &Technology,
    spec: AdderSpec,
    weights: &[u32],
    duties: &[f64],
    frequency: f64,
) -> Result<(Circuit, WeightedAdder), CoreError> {
    if duties.len() != weights.len() {
        return Err(CoreError::DimensionMismatch {
            expected: weights.len(),
            got: duties.len(),
        });
    }
    for &d in duties {
        if !(0.0..=1.0).contains(&d) || !d.is_finite() {
            return Err(CoreError::InvalidDuty { value: d });
        }
    }
    WeightVector::new(weights.to_vec(), spec.bits)?;
    let mut ckt = Circuit::new();
    let vdd = ckt.node("vdd");
    ckt.vsource("VDD", vdd, Circuit::GND, Waveform::dc(tech.vdd.value()));
    let adder = WeightedAdder::build(&mut ckt, tech, "add", vdd, weights, spec);
    for (i, &d) in duties.iter().enumerate() {
        ckt.vsource(
            &format!("VIN{i}"),
            adder.inputs[i],
            Circuit::GND,
            Waveform::pwm(tech.vdd.value(), frequency, d),
        );
    }
    Ok((ckt, adder))
}

/// Eq.-2 golden reference for a campaign fixture, computed through the
/// same [`Evaluator`] surface the serving engine dispatches to.
fn analytic_reference(
    tech: &Technology,
    duties: &[f64],
    weights: &[u32],
    bits: u32,
) -> Result<f64, CoreError> {
    let query = Query::from_raw(duties, weights, bits)?;
    Ok(AnalyticEvaluator::new(tech.vdd)
        .evaluate(&query)?
        .vout
        .value())
}

/// Everything [`run_campaign_over`] needs that depends on which cell
/// family (switch-level or transistor-level) the campaign targets.
struct CampaignFixture {
    ckt: Circuit,
    output: NodeId,
    universe: Vec<LabeledFault>,
    analytic_vout: f64,
    /// Run every transient with MOSFET voltage limiting + device latency
    /// on. The transistor-level campaign enables this so the fault sweep
    /// exercises the same batched limited evaluator the benchmarks ship;
    /// switch-level netlists carry no MOSFETs and keep the exact path.
    limited: bool,
}

fn run_campaign(
    tech: &Technology,
    spec: AdderSpec,
    weights: &[u32],
    duties: &[f64],
    config: &CampaignConfig,
    observer: Option<&mut dyn Observer>,
) -> Result<CampaignReport, CoreError> {
    let (ckt, adder) = adder_fixture(tech, spec, weights, duties, config.frequency)?;
    let universe = switch_adder_universe(&ckt, &adder, &config.universe);
    let analytic_vout = analytic_reference(tech, duties, weights, spec.bits)?;
    let fixture = CampaignFixture {
        ckt,
        output: adder.output,
        universe,
        analytic_vout,
        limited: false,
    };
    run_campaign_over(fixture, config, observer)
}

fn run_weighted_campaign(
    tech: &Technology,
    spec: AdderSpec,
    weights: &[u32],
    duties: &[f64],
    config: &CampaignConfig,
    observer: Option<&mut dyn Observer>,
) -> Result<CampaignReport, CoreError> {
    let (ckt, adder) = weighted_adder_fixture(tech, spec, weights, duties, config.frequency)?;
    let universe = weighted_adder_universe(&ckt, &adder, &config.universe);
    let analytic_vout = analytic_reference(tech, duties, weights, spec.bits)?;
    let fixture = CampaignFixture {
        ckt,
        output: adder.output,
        universe,
        analytic_vout,
        limited: true,
    };
    run_campaign_over(fixture, config, observer)
}

fn run_campaign_over(
    fixture: CampaignFixture,
    config: &CampaignConfig,
    observer: Option<&mut dyn Observer>,
) -> Result<CampaignReport, CoreError> {
    assert!(config.periods > 0, "campaign needs at least one period");
    assert!(
        config.avg_periods > 0 && config.avg_periods <= config.periods,
        "averaging window must fit inside the simulated periods"
    );
    assert!(
        config.masked_epsilon > 0.0 && config.fail_epsilon > config.masked_epsilon,
        "epsilons must satisfy 0 < masked < fail"
    );
    assert!(
        config.frequency > 0.0 && config.frequency.is_finite(),
        "campaign frequency must be positive and finite"
    );
    let CampaignFixture {
        ckt,
        output,
        universe,
        analytic_vout,
        limited,
    } = fixture;

    let period = 1.0 / config.frequency;
    let dt = period / config.steps_per_period as f64;
    let t_stop = config.periods as f64 * period;
    let t_avg_from = t_stop - config.avg_periods as f64 * period;
    let tran = Transient::new(dt, t_stop).use_initial_conditions();

    let golden = measure(&ckt, output, &tran, &config.rescue, t_avg_from, limited);
    let golden_vout = golden
        .vout
        .ok_or(CoreError::Simulation(SimError::NonConvergence {
            analysis: "transient",
            time: t_stop,
            iterations: 0,
            stage: "golden",
            attempts: golden.rescue_attempts,
        }))?;

    let measure_fault = |lf: &LabeledFault| match lf.fault.apply(&ckt) {
        Ok(faulty) => measure(&faulty, output, &tran, &config.rescue, t_avg_from, limited),
        Err(e) => Measured {
            vout: None,
            rescue_attempts: 0,
            rescue_recoveries: 0,
            partial: false,
            error: Some(e.to_string()),
        },
    };
    let outcome_of = |lf: &LabeledFault, measured: Measured| FaultOutcome {
        label: lf.label.clone(),
        kind: lf.fault.kind(),
        vout: measured.vout,
        error_v: measured.vout.map(|v| (v - analytic_vout).abs()),
        class: classify(&measured, analytic_vout, config),
        rescue_attempts: measured.rescue_attempts,
        rescue_recoveries: measured.rescue_recoveries,
        error: measured.error,
        static_verdict: None,
        enclosure: None,
    };

    // Triage works per plan-equivalence class, so it implies the
    // collapse partition.
    let collapse_on = config.collapse || config.triage;
    if !collapse_on {
        let run_one = |lf: &LabeledFault, _i: usize| outcome_of(lf, measure_fault(lf));
        let outcomes = match observer {
            Some(obs) => sweep::sweep_observed(&universe, obs, run_one),
            None => sweep::sweep(&universe, run_one),
        };
        return Ok(CampaignReport {
            analytic_vout,
            golden_vout,
            outcomes,
            collapse: None,
            triage: None,
        });
    }

    // Static fault collapsing: partition the universe by compiled-plan
    // identity, simulate one representative per class, and replicate its
    // measurement across the class. Equal plan keys replay bit-identical
    // op programs, so the replicated verdicts are bitwise what a full
    // sweep would have produced.
    let collapse = collapse_faults(&ckt, &universe);
    let stats = CollapseStats {
        universe: universe.len(),
        classes: collapse.n_classes,
        simulated: collapse.n_simulated,
        golden: collapse.n_golden,
    };

    // Static triage tier: push each representative's *applied* faulted
    // netlist through the guaranteed interval solver and keep whatever
    // certifies. Point ranges — all interval width comes from waveform
    // hulls and unresolved switch branches of the faulted topology.
    let triage_at: Vec<Option<TriageVerdict>> = if config.triage {
        let bands = VerdictBands {
            center: analytic_vout,
            masked: config.masked_epsilon,
            fail: config.fail_epsilon,
        };
        collapse
            .members
            .iter()
            .enumerate()
            .map(|(i, m)| {
                if !matches!(m, CollapseMember::Representative) {
                    return None;
                }
                // A fault that fails to apply is left for the transient
                // path, which owns the error reporting.
                let faulty = universe[i].fault.apply(&ckt).ok()?;
                Some(triage_circuit(&faulty, output, &Ranges::default(), &bands))
            })
            .collect()
    } else {
        vec![None; universe.len()]
    };
    let certified = |i: usize| {
        triage_at[i]
            .as_ref()
            .map(|t| t.verdict)
            .filter(|v| *v != StaticVerdict::NeedsSimulation)
    };
    let verdict_of = |i: usize| match collapse.members[i] {
        CollapseMember::Golden => None,
        CollapseMember::Representative => certified(i),
        CollapseMember::ReplicaOf(rep) => certified(rep),
    };
    let tstats = config.triage.then(|| {
        let masked = (0..universe.len())
            .filter(|&i| verdict_of(i) == Some(StaticVerdict::GuaranteedMasked))
            .count();
        let failed = (0..universe.len())
            .filter(|&i| verdict_of(i) == Some(StaticVerdict::GuaranteedFail))
            .count();
        TriageStats {
            universe: universe.len(),
            masked,
            failed,
            simulated: universe.len() - masked - failed,
        }
    });

    let rep_indices: Vec<usize> = collapse
        .members
        .iter()
        .enumerate()
        .filter(|&(i, m)| matches!(m, CollapseMember::Representative) && certified(i).is_none())
        .map(|(i, _)| i)
        .collect();
    let run_rep = |&i: &usize, _k: usize| measure_fault(&universe[i]);
    let rep_results = match observer {
        Some(obs) => {
            dispatch(
                obs,
                &Event::FaultCollapse {
                    universe: stats.universe,
                    classes: stats.classes,
                    simulated: stats.simulated,
                    golden: stats.golden,
                },
            );
            if let Some(t) = &tstats {
                dispatch(
                    obs,
                    &Event::FaultTriage {
                        universe: t.universe,
                        masked: t.masked,
                        failed: t.failed,
                        simulated: t.simulated,
                    },
                );
            }
            sweep::sweep_observed(&rep_indices, obs, run_rep)
        }
        None => sweep::sweep(&rep_indices, run_rep),
    };
    let mut measured_at: Vec<Option<Measured>> = vec![None; universe.len()];
    for (&i, m) in rep_indices.iter().zip(rep_results) {
        measured_at[i] = Some(m);
    }
    // A statically-certified class never ran a transient: its rows carry
    // the guaranteed verdict and enclosure instead of a measurement. The
    // class tag is the one the transient would have produced — certified
    // masked is `Masked`, certified fail is `FunctionalFail` with the
    // *proven lower bound* of the output error.
    let static_outcome = |lf: &LabeledFault, t: &TriageVerdict| {
        let class = match t.verdict {
            StaticVerdict::GuaranteedMasked => FaultClass::Masked,
            StaticVerdict::GuaranteedFail => FaultClass::FunctionalFail {
                error_v: t.error.map(|e| e.lo).unwrap_or(f64::INFINITY),
            },
            StaticVerdict::NeedsSimulation => unreachable!("certified classes only"),
        };
        FaultOutcome {
            label: lf.label.clone(),
            kind: lf.fault.kind(),
            vout: None,
            error_v: None,
            class,
            rescue_attempts: 0,
            rescue_recoveries: 0,
            error: None,
            static_verdict: Some(t.verdict),
            enclosure: t.vout.map(|iv| (iv.lo, iv.hi)),
        }
    };
    let outcomes = universe
        .iter()
        .enumerate()
        .map(|(i, lf)| {
            let rep = match collapse.members[i] {
                CollapseMember::Golden => return outcome_of(lf, golden.clone()),
                CollapseMember::Representative => i,
                CollapseMember::ReplicaOf(rep) => rep,
            };
            if certified(rep).is_some() {
                let t = triage_at[rep].as_ref().expect("certified class triaged");
                static_outcome(lf, t)
            } else {
                let measured = measured_at[rep]
                    .clone()
                    .expect("uncertified representative was simulated");
                outcome_of(lf, measured)
            }
        })
        .collect();

    Ok(CampaignReport {
        analytic_vout,
        golden_vout,
        outcomes,
        collapse: Some(stats),
        triage: tstats,
    })
}

/// Runs the single-fault campaign over the switch-level weighted adder:
/// enumerates the universe, simulates every faulty netlist in parallel
/// under the rescue ladder, and classifies each settled output against
/// the Eq. 2 analytic value.
///
/// Outcomes come back in universe (netlist insertion) order, so the
/// report is deterministic for a given netlist and config. With
/// [`CampaignConfig::collapse`] set, plan-equivalent faults share one
/// transient and the report carries [`CollapseStats`]; the outcome rows
/// are bitwise identical to an uncollapsed run.
///
/// # Errors
///
/// Returns [`CoreError::DimensionMismatch`] / [`CoreError::InvalidDuty`] /
/// [`CoreError::InvalidWeight`] on malformed inputs, and
/// [`CoreError::Simulation`] when the *golden* (fault-free) netlist fails
/// to produce a settled output — individual fault failures are reported
/// as [`FaultClass::SolverFail`] rows, never as errors.
///
/// # Panics
///
/// Panics if `config` is internally inconsistent (zero periods, an
/// averaging window longer than the run, or `fail_epsilon ≤
/// masked_epsilon`).
pub fn switch_adder_campaign(
    tech: &Technology,
    spec: AdderSpec,
    weights: &[u32],
    duties: &[f64],
    config: &CampaignConfig,
) -> Result<CampaignReport, CoreError> {
    run_campaign(tech, spec, weights, duties, config, None)
}

/// [`switch_adder_campaign`] with telemetry: per-fault wall times, worker
/// indices and steal counts are delivered to `observer` via
/// [`mssim::sweep::sweep_observed`]. The report is identical to the
/// unobserved version.
///
/// # Errors
///
/// As for [`switch_adder_campaign`].
///
/// # Panics
///
/// As for [`switch_adder_campaign`].
pub fn switch_adder_campaign_observed(
    tech: &Technology,
    spec: AdderSpec,
    weights: &[u32],
    duties: &[f64],
    config: &CampaignConfig,
    observer: &mut dyn Observer,
) -> Result<CampaignReport, CoreError> {
    run_campaign(tech, spec, weights, duties, config, Some(observer))
}

/// [`switch_adder_campaign`] over the transistor-level (Fig. 3)
/// [`WeightedAdder`] instead of the switch-level cell: MOSFET AND gates
/// under fault, with `mosfet_stuck_open` / `mosfet_stuck_short` rows and
/// gate-to-output bridges joining the universe. Every transient —
/// golden and faulty — runs with MOSFET voltage limiting and device
/// latency enabled, so the campaign stresses the batched limited
/// evaluator the benchmarks ship, under netlists deliberately broken in
/// ways the limiter's region bookkeeping must survive.
///
/// # Errors
///
/// As for [`switch_adder_campaign`].
///
/// # Panics
///
/// As for [`switch_adder_campaign`].
pub fn weighted_adder_campaign(
    tech: &Technology,
    spec: AdderSpec,
    weights: &[u32],
    duties: &[f64],
    config: &CampaignConfig,
) -> Result<CampaignReport, CoreError> {
    run_weighted_campaign(tech, spec, weights, duties, config, None)
}

/// [`weighted_adder_campaign`] with telemetry, mirroring
/// [`switch_adder_campaign_observed`].
///
/// # Errors
///
/// As for [`switch_adder_campaign`].
///
/// # Panics
///
/// As for [`switch_adder_campaign`].
pub fn weighted_adder_campaign_observed(
    tech: &Technology,
    spec: AdderSpec,
    weights: &[u32],
    duties: &[f64],
    config: &CampaignConfig,
    observer: &mut dyn Observer,
) -> Result<CampaignReport, CoreError> {
    run_weighted_campaign(tech, spec, weights, duties, config, Some(observer))
}

/// One row of a triage-only report: a fault's static verdict and the
/// enclosure that backs it, with no transient run.
#[derive(Debug, Clone, PartialEq)]
pub struct TriageRow {
    /// The fault's campaign label (`kind:target`).
    pub label: String,
    /// The fault kind tag (`switch_stuck_open`, …).
    pub kind: &'static str,
    /// The static verdict (golden-class rows are `NeedsSimulation`:
    /// they ride the golden transient, which a campaign runs anyway).
    pub verdict: StaticVerdict,
    /// Guaranteed Vout enclosure `(lo, hi)` when one was certified.
    pub enclosure: Option<(f64, f64)>,
    /// Krawczyk contraction bound β of the class's DC system (`None`
    /// for golden-class rows and faults that fail to apply).
    pub beta: Option<f64>,
}

/// A triage-only pass over a fault universe: verdicts and statistics
/// with zero transients. Produced by [`switch_adder_triage`] /
/// [`weighted_adder_triage`], printed by `repro faults --triage-only`.
#[derive(Debug, Clone, PartialEq)]
pub struct TriageReport {
    /// Eq. 2 analytic output, the band center.
    pub analytic_vout: f64,
    /// One row per enumerated fault, in universe order.
    pub rows: Vec<TriageRow>,
    /// The collapse partition triage worked over.
    pub collapse: CollapseStats,
    /// Verdict counts, identical in definition to a triaged campaign's
    /// [`CampaignReport::triage`] stats.
    pub stats: TriageStats,
}

fn run_triage_over(fixture: CampaignFixture, config: &CampaignConfig) -> TriageReport {
    assert!(
        config.masked_epsilon > 0.0 && config.fail_epsilon > config.masked_epsilon,
        "epsilons must satisfy 0 < masked < fail"
    );
    let CampaignFixture {
        ckt,
        output,
        universe,
        analytic_vout,
        ..
    } = fixture;
    let collapse = collapse_faults(&ckt, &universe);
    let cstats = CollapseStats {
        universe: universe.len(),
        classes: collapse.n_classes,
        simulated: collapse.n_simulated,
        golden: collapse.n_golden,
    };
    let bands = VerdictBands {
        center: analytic_vout,
        masked: config.masked_epsilon,
        fail: config.fail_epsilon,
    };
    let triage_at: Vec<Option<TriageVerdict>> = collapse
        .members
        .iter()
        .enumerate()
        .map(|(i, m)| {
            if !matches!(m, CollapseMember::Representative) {
                return None;
            }
            let faulty = universe[i].fault.apply(&ckt).ok()?;
            Some(triage_circuit(&faulty, output, &Ranges::default(), &bands))
        })
        .collect();
    let rows: Vec<TriageRow> = universe
        .iter()
        .enumerate()
        .map(|(i, lf)| {
            let rep = match collapse.members[i] {
                CollapseMember::Golden => None,
                CollapseMember::Representative => Some(i),
                CollapseMember::ReplicaOf(rep) => Some(rep),
            };
            let t = rep.and_then(|r| triage_at[r].as_ref());
            TriageRow {
                label: lf.label.clone(),
                kind: lf.fault.kind(),
                verdict: t
                    .map(|t| t.verdict)
                    .unwrap_or(StaticVerdict::NeedsSimulation),
                enclosure: t.and_then(|t| t.vout.map(|iv| (iv.lo, iv.hi))),
                beta: t.map(|t| t.beta),
            }
        })
        .collect();
    let masked = rows
        .iter()
        .filter(|r| r.verdict == StaticVerdict::GuaranteedMasked)
        .count();
    let failed = rows
        .iter()
        .filter(|r| r.verdict == StaticVerdict::GuaranteedFail)
        .count();
    let stats = TriageStats {
        universe: rows.len(),
        masked,
        failed,
        simulated: rows.len() - masked - failed,
    };
    TriageReport {
        analytic_vout,
        rows,
        collapse: cstats,
        stats,
    }
}

/// Triage-only pass over the switch-level adder's single-fault universe:
/// enumerates and collapses the universe, statically triages every class
/// representative, and returns per-fault verdicts — no transient runs,
/// golden included.
///
/// The verdicts and statistics are exactly what a triaged campaign
/// ([`CampaignConfig::triage`]) would resolve statically; only the
/// `NeedsSimulation` rows would go on to simulate.
///
/// # Errors
///
/// As for [`switch_adder_campaign`] on malformed inputs.
///
/// # Panics
///
/// Panics if `fail_epsilon ≤ masked_epsilon`.
pub fn switch_adder_triage(
    tech: &Technology,
    spec: AdderSpec,
    weights: &[u32],
    duties: &[f64],
    config: &CampaignConfig,
) -> Result<TriageReport, CoreError> {
    let (ckt, adder) = adder_fixture(tech, spec, weights, duties, config.frequency)?;
    let universe = switch_adder_universe(&ckt, &adder, &config.universe);
    let analytic_vout = analytic_reference(tech, duties, weights, spec.bits)?;
    Ok(run_triage_over(
        CampaignFixture {
            ckt,
            output: adder.output,
            universe,
            analytic_vout,
            limited: false,
        },
        config,
    ))
}

/// [`switch_adder_triage`] over the transistor-level (Fig. 3) adder.
///
/// # Errors
///
/// As for [`switch_adder_campaign`] on malformed inputs.
///
/// # Panics
///
/// Panics if `fail_epsilon ≤ masked_epsilon`.
pub fn weighted_adder_triage(
    tech: &Technology,
    spec: AdderSpec,
    weights: &[u32],
    duties: &[f64],
    config: &CampaignConfig,
) -> Result<TriageReport, CoreError> {
    let (ckt, adder) = weighted_adder_fixture(tech, spec, weights, duties, config.frequency)?;
    let universe = weighted_adder_universe(&ckt, &adder, &config.universe);
    let analytic_vout = analytic_reference(tech, duties, weights, spec.bits)?;
    Ok(run_triage_over(
        CampaignFixture {
            ckt,
            output: adder.output,
            universe,
            analytic_vout,
            limited: true,
        },
        config,
    ))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn fast_config() -> CampaignConfig {
        CampaignConfig {
            periods: 20,
            steps_per_period: 60,
            avg_periods: 2,
            ..CampaignConfig::default()
        }
    }

    #[test]
    fn trailing_average_windows() {
        let t = [0.0, 1.0, 2.0, 3.0, 4.0];
        let v = [0.0, 0.0, 2.0, 2.0, 2.0];
        // Whole-trace average: trapezoid over the ramp.
        let a = trailing_average(&t, &v, 0.0).unwrap();
        assert!((a - 1.25).abs() < 1e-12);
        // Settled tail only.
        let b = trailing_average(&t, &v, 2.0).unwrap();
        assert!((b - 2.0).abs() < 1e-12);
        // Window past the data: no verdict.
        assert!(trailing_average(&t, &v, 4.0).is_none());
        assert!(trailing_average(&t, &v, 10.0).is_none());
    }

    #[test]
    fn classification_thresholds() {
        let config = CampaignConfig::default();
        let m = |vout| Measured {
            vout,
            rescue_attempts: 0,
            rescue_recoveries: 0,
            partial: false,
            error: None,
        };
        assert_eq!(classify(&m(Some(1.0)), 1.0, &config), FaultClass::Masked);
        assert!(matches!(
            classify(&m(Some(1.1)), 1.0, &config),
            FaultClass::Degraded { .. }
        ));
        assert!(matches!(
            classify(&m(Some(2.0)), 1.0, &config),
            FaultClass::FunctionalFail { .. }
        ));
        assert!(matches!(
            classify(&m(None), 1.0, &config),
            FaultClass::SolverFail { partial: false }
        ));
        assert!(matches!(
            classify(&m(Some(f64::NAN)), 1.0, &config),
            FaultClass::SolverFail { .. }
        ));
    }

    #[test]
    fn malformed_inputs_are_rejected() {
        let tech = Technology::umc65_like();
        let config = fast_config();
        assert!(matches!(
            switch_adder_campaign(&tech, AdderSpec::new(2, 3), &[7, 7], &[0.5], &config),
            Err(CoreError::DimensionMismatch { .. })
        ));
        assert!(matches!(
            switch_adder_campaign(&tech, AdderSpec::new(2, 3), &[7, 7], &[0.5, 1.5], &config),
            Err(CoreError::InvalidDuty { .. })
        ));
        assert!(matches!(
            switch_adder_campaign(&tech, AdderSpec::new(2, 3), &[7, 9], &[0.5, 0.5], &config),
            Err(CoreError::InvalidWeight { .. })
        ));
    }

    /// The headline acceptance property: the 3×3 single-fault campaign is
    /// deterministic, classifies every fault, and sees through the
    /// golden netlist (which must be `Masked` against Eq. 2 by
    /// construction).
    #[test]
    fn paper_adder_campaign_classifies_every_fault_deterministically() {
        let tech = Technology::umc65_like();
        let config = fast_config();
        let weights = [7, 5, 3];
        let duties = [0.3, 0.5, 0.7];
        let a = switch_adder_campaign(&tech, AdderSpec::paper_3x3(), &weights, &duties, &config)
            .unwrap();
        assert!(
            (a.golden_vout - a.analytic_vout).abs() <= config.masked_epsilon,
            "golden {} vs analytic {}",
            a.golden_vout,
            a.analytic_vout
        );
        assert!(!a.outcomes.is_empty());
        // Stuck-open on a pull-up of the heaviest input must at least
        // degrade the output; a stuck-closed pull-down fights the bus.
        assert!(
            a.count("masked")
                + a.count("degraded")
                + a.count("functional_fail")
                + a.count("solver_fail")
                == a.outcomes.len(),
            "every outcome is classified"
        );
        assert!(
            a.count("masked") < a.outcomes.len(),
            "a single-fault universe must contain observable faults"
        );
        let b = switch_adder_campaign(&tech, AdderSpec::paper_3x3(), &weights, &duties, &config)
            .unwrap();
        assert_eq!(a, b, "campaign must be deterministic");
    }

    #[test]
    fn error_summary_routes_through_try_from_samples() {
        let report = CampaignReport {
            analytic_vout: 1.0,
            golden_vout: 1.0,
            outcomes: vec![FaultOutcome {
                label: "x".into(),
                kind: "resistor_open",
                vout: None,
                error_v: None,
                class: FaultClass::SolverFail { partial: false },
                rescue_attempts: 0,
                rescue_recoveries: 0,
                error: Some("boom".into()),
                static_verdict: None,
                enclosure: None,
            }],
            collapse: None,
            triage: None,
        };
        assert!(report.error_summary().is_none(), "no settled outputs");
    }

    /// Static collapsing changes how many transients run, never what
    /// any fault's verdict is: the collapsed 3×3 campaign's outcome rows
    /// are bitwise equal to the full sweep's, while strictly fewer
    /// faults are simulated (the two stuck-open faults on statically-off
    /// pull-ups land in the golden class).
    #[test]
    fn collapsed_campaign_is_bitwise_identical_to_full_sweep() {
        let tech = Technology::umc65_like();
        let config = CampaignConfig {
            periods: 6,
            steps_per_period: 40,
            avg_periods: 1,
            ..CampaignConfig::default()
        };
        let weights = [7, 5, 3];
        let duties = [0.3, 0.5, 0.7];
        let full = switch_adder_campaign(&tech, AdderSpec::paper_3x3(), &weights, &duties, &config)
            .unwrap();
        assert!(full.collapse.is_none(), "collapsing is opt-in");
        let collapsed_config = CampaignConfig {
            collapse: true,
            ..config
        };
        let collapsed = switch_adder_campaign(
            &tech,
            AdderSpec::paper_3x3(),
            &weights,
            &duties,
            &collapsed_config,
        )
        .unwrap();
        assert_eq!(
            full.outcomes, collapsed.outcomes,
            "collapsed verdicts must be bitwise identical to the full sweep"
        );
        assert_eq!(full.analytic_vout, collapsed.analytic_vout);
        assert_eq!(full.golden_vout, collapsed.golden_vout);
        let stats = collapsed.collapse.expect("collapsed run records stats");
        assert_eq!(stats.universe, full.outcomes.len());
        assert!(
            stats.simulated < stats.universe,
            "collapsing must save transients ({} of {})",
            stats.simulated,
            stats.universe
        );
        assert_eq!(stats.golden, 2, "two pull-ups are statically off");
        assert_eq!(stats.universe, stats.simulated + stats.golden);
    }

    /// A collapsed, observed campaign reports the partition through the
    /// telemetry vocabulary before any representative runs.
    #[test]
    fn collapsed_campaign_reports_through_the_observer() {
        use mssim::telemetry::MemoryRecorder;
        let tech = Technology::umc65_like();
        let config = CampaignConfig {
            periods: 6,
            steps_per_period: 40,
            avg_periods: 1,
            collapse: true,
            ..CampaignConfig::default()
        };
        let mut rec = MemoryRecorder::new();
        let report = switch_adder_campaign_observed(
            &tech,
            AdderSpec::new(1, 2),
            &[3],
            &[0.5],
            &config,
            &mut rec,
        )
        .unwrap();
        let stats = report.collapse.unwrap();
        assert_eq!(
            rec.counter_value("collapse.universe"),
            stats.universe as u64
        );
        assert_eq!(
            rec.counter_value("collapse.simulated"),
            stats.simulated as u64
        );
        assert!(rec
            .events()
            .iter()
            .any(|e| matches!(e, Event::FaultCollapse { .. })));
        // Only the representatives fanned out over the sweep.
        assert_eq!(rec.counter_value("sweep.points"), stats.simulated as u64);
    }

    #[test]
    fn observed_campaign_matches_plain() {
        use mssim::telemetry::MemoryRecorder;
        let tech = Technology::umc65_like();
        let config = CampaignConfig {
            periods: 6,
            steps_per_period: 40,
            avg_periods: 1,
            ..CampaignConfig::default()
        };
        let plain =
            switch_adder_campaign(&tech, AdderSpec::new(1, 2), &[3], &[0.5], &config).unwrap();
        let mut rec = MemoryRecorder::new();
        let observed = switch_adder_campaign_observed(
            &tech,
            AdderSpec::new(1, 2),
            &[3],
            &[0.5],
            &config,
            &mut rec,
        )
        .unwrap();
        assert_eq!(plain, observed);
        assert_eq!(
            rec.counter_value("sweep.points"),
            plain.outcomes.len() as u64
        );
    }

    /// The triage acceptance property on the paper's 3×3 universe: every
    /// statically-certified verdict agrees with the fully-simulated class
    /// tag (zero contradictions), and the tier resolves a real share of
    /// the universe without running its transients.
    #[test]
    fn triaged_campaign_never_contradicts_the_full_sweep() {
        let tech = Technology::umc65_like();
        let config = CampaignConfig {
            periods: 6,
            steps_per_period: 40,
            avg_periods: 1,
            ..CampaignConfig::default()
        };
        let weights = [7, 5, 3];
        let duties = [0.3, 0.5, 0.7];
        let full = switch_adder_campaign(&tech, AdderSpec::paper_3x3(), &weights, &duties, &config)
            .unwrap();
        let triaged_config = CampaignConfig {
            triage: true,
            ..config
        };
        let triaged = switch_adder_campaign(
            &tech,
            AdderSpec::paper_3x3(),
            &weights,
            &duties,
            &triaged_config,
        )
        .unwrap();
        let stats = triaged.triage.expect("triaged run records stats");
        assert_eq!(stats.universe, full.outcomes.len());
        assert_eq!(
            stats.universe,
            stats.masked + stats.failed + stats.simulated
        );
        assert!(
            stats.masked + stats.failed > 0,
            "the tier must resolve part of the universe statically"
        );
        for (t, f) in triaged.outcomes.iter().zip(&full.outcomes) {
            assert_eq!(t.label, f.label);
            if let Some(v) = t.static_verdict {
                assert_ne!(v, StaticVerdict::NeedsSimulation);
                assert_eq!(
                    t.class.tag(),
                    f.class.tag(),
                    "static verdict contradicts simulation on {}",
                    t.label
                );
                assert!(t.enclosure.is_some(), "certified rows carry an enclosure");
            } else {
                assert_eq!(t.class.tag(), f.class.tag());
            }
        }
        // Triage implies collapsing even when collapse is off.
        assert!(triaged.collapse.is_some());
    }

    /// A triage-only pass runs zero transients, covers the whole
    /// universe, is deterministic, and its statistics match the triaged
    /// campaign's.
    #[test]
    fn triage_only_report_matches_the_triaged_campaign() {
        let tech = Technology::umc65_like();
        let config = CampaignConfig {
            periods: 6,
            steps_per_period: 40,
            avg_periods: 1,
            triage: true,
            ..CampaignConfig::default()
        };
        let weights = [7, 5, 3];
        let duties = [0.3, 0.5, 0.7];
        let only =
            switch_adder_triage(&tech, AdderSpec::paper_3x3(), &weights, &duties, &config).unwrap();
        let campaign =
            switch_adder_campaign(&tech, AdderSpec::paper_3x3(), &weights, &duties, &config)
                .unwrap();
        assert_eq!(only.rows.len(), campaign.outcomes.len());
        assert_eq!(Some(only.stats), campaign.triage);
        assert_eq!(Some(only.collapse), campaign.collapse);
        for (r, o) in only.rows.iter().zip(&campaign.outcomes) {
            assert_eq!(r.label, o.label);
            match o.static_verdict {
                Some(v) => {
                    assert_eq!(r.verdict, v);
                    assert_eq!(r.enclosure, o.enclosure);
                }
                None => assert_eq!(r.verdict, StaticVerdict::NeedsSimulation),
            }
        }
        let again =
            switch_adder_triage(&tech, AdderSpec::paper_3x3(), &weights, &duties, &config).unwrap();
        assert_eq!(only, again, "triage-only pass must be deterministic");
    }

    /// A triaged, observed campaign reports the tier through the
    /// telemetry vocabulary, and only uncertified representatives fan
    /// out over the sweep.
    #[test]
    fn triaged_campaign_reports_through_the_observer() {
        use mssim::telemetry::MemoryRecorder;
        let tech = Technology::umc65_like();
        let config = CampaignConfig {
            periods: 6,
            steps_per_period: 40,
            avg_periods: 1,
            triage: true,
            ..CampaignConfig::default()
        };
        let mut rec = MemoryRecorder::new();
        let report = switch_adder_campaign_observed(
            &tech,
            AdderSpec::paper_3x3(),
            &[7, 5, 3],
            &[0.3, 0.5, 0.7],
            &config,
            &mut rec,
        )
        .unwrap();
        let stats = report.triage.unwrap();
        assert_eq!(rec.counter_value("triage.universe"), stats.universe as u64);
        assert_eq!(rec.counter_value("triage.masked"), stats.masked as u64);
        assert_eq!(rec.counter_value("triage.failed"), stats.failed as u64);
        assert_eq!(
            rec.counter_value("triage.simulated"),
            stats.simulated as u64
        );
        assert!(rec
            .events()
            .iter()
            .any(|e| matches!(e, Event::FaultTriage { .. })));
        let simulated_reps = report
            .outcomes
            .iter()
            .filter(|o| o.static_verdict.is_none())
            .count();
        // Every sweep point is an uncertified representative, so the
        // fan-out stays strictly below the collapse partition's count.
        assert!(rec.counter_value("sweep.points") <= simulated_reps as u64);
        assert!(
            rec.counter_value("sweep.points")
                < report.collapse.unwrap().simulated as u64
                    + u64::from(stats.masked + stats.failed == 0)
        );
    }
}
