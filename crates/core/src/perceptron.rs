//! The perceptron: weighted adder + comparator (paper Fig. 1 / Eq. 1).

use mssim::units::Volts;

use crate::comparator::Comparator;
use crate::dataset::Dataset;
use crate::duty::DutyCycle;
use crate::error::CoreError;
use crate::eval::Evaluator;
use crate::infer::Query;
use crate::weight::{SignedWeightVector, WeightVector};

/// The comparator reference of Fig. 1.
///
/// A **ratiometric** reference (a fixed fraction of the supply, e.g. from
/// a resistive divider) is what makes the whole classifier power-elastic:
/// both the adder output (paper Fig. 7) and the reference then scale with
/// `Vdd` and the *decision* is supply-independent. An **absolute**
/// reference (a bandgap) breaks that property — quantified by
/// [`crate::elasticity::accuracy_vs_vdd`].
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum Reference {
    /// Fixed voltage, independent of the supply.
    Absolute(Volts),
    /// Fraction of the supply voltage, `0.0..=1.0`.
    Ratiometric(f64),
}

impl Reference {
    /// An absolute reference.
    pub fn absolute(v: Volts) -> Self {
        Reference::Absolute(v)
    }

    /// A ratiometric reference.
    ///
    /// # Panics
    ///
    /// Panics if `fraction` is outside `0.0..=1.0`.
    pub fn ratiometric(fraction: f64) -> Self {
        assert!(
            (0.0..=1.0).contains(&fraction),
            "reference fraction must be in 0..=1"
        );
        Reference::Ratiometric(fraction)
    }

    /// The threshold voltage at a given supply.
    pub fn resolve(&self, vdd: Volts) -> Volts {
        match *self {
            Reference::Absolute(v) => v,
            Reference::Ratiometric(f) => Volts(vdd.value() * f),
        }
    }
}

/// A single-ended PWM perceptron: unsigned weights, one weighted adder,
/// one comparator (exactly the paper's architecture).
///
/// Generic over the [`Evaluator`] fidelity tier.
#[derive(Debug, Clone)]
pub struct PwmPerceptron<E> {
    evaluator: E,
    weights: WeightVector,
    reference: Reference,
    comparator: Comparator,
}

impl<E: Evaluator> PwmPerceptron<E> {
    /// Creates a perceptron with an ideal comparator.
    pub fn new(evaluator: E, weights: WeightVector, reference: Reference) -> Self {
        PwmPerceptron {
            evaluator,
            weights,
            reference,
            comparator: Comparator::ideal(),
        }
    }

    /// Replaces the comparator model.
    pub fn with_comparator(mut self, comparator: Comparator) -> Self {
        self.comparator = comparator;
        self
    }

    /// Number of inputs.
    pub fn input_len(&self) -> usize {
        self.weights.len()
    }

    /// The current weights.
    pub fn weights(&self) -> &WeightVector {
        &self.weights
    }

    /// Mutable access to the weights (training).
    pub fn weights_mut(&mut self) -> &mut WeightVector {
        &mut self.weights
    }

    /// Replaces the weights.
    pub fn set_weights(&mut self, weights: WeightVector) {
        self.weights = weights;
    }

    /// The comparator reference.
    pub fn reference(&self) -> Reference {
        self.reference
    }

    /// Replaces the reference.
    pub fn set_reference(&mut self, reference: Reference) {
        self.reference = reference;
    }

    /// The evaluator.
    pub fn evaluator(&self) -> &E {
        &self.evaluator
    }

    /// The analog weighted sum (before the comparator).
    ///
    /// # Errors
    ///
    /// Propagates evaluator errors (dimension mismatch, simulation
    /// failure).
    pub fn forward(&self, duties: &[DutyCycle]) -> Result<Volts, CoreError> {
        let query = Query::new(duties.to_vec(), self.weights.clone())?;
        Ok(self.evaluator.evaluate(&query)?.vout)
    }

    /// The analog weighted sums for a batch of inputs, through the
    /// evaluator's amortized batch path.
    ///
    /// # Errors
    ///
    /// Fails on the first evaluator error.
    pub fn forward_batch(&self, inputs: &[Vec<DutyCycle>]) -> Result<Vec<Volts>, CoreError> {
        let queries = inputs
            .iter()
            .map(|d| Query::new(d.clone(), self.weights.clone()))
            .collect::<Result<Vec<_>, _>>()?;
        self.evaluator
            .evaluate_batch(&queries)
            .into_iter()
            .map(|r| r.map(|e| e.vout))
            .collect()
    }

    /// Classifies one sample: `vout > reference`.
    ///
    /// Takes `&mut self` because a hysteretic comparator is stateful.
    ///
    /// # Errors
    ///
    /// Propagates evaluator errors.
    pub fn classify(&mut self, duties: &[DutyCycle]) -> Result<bool, CoreError> {
        let v = self.forward(duties)?;
        let vref = self.reference.resolve(self.evaluator.vdd());
        Ok(self.comparator.compare(v, vref))
    }

    /// Classifies a batch of inputs, resetting the comparator before each
    /// sample (matching [`Self::accuracy`] semantics).
    ///
    /// # Errors
    ///
    /// Fails on the first evaluator error.
    pub fn classify_batch(&mut self, inputs: &[Vec<DutyCycle>]) -> Result<Vec<bool>, CoreError> {
        let vouts = self.forward_batch(inputs)?;
        let vref = self.reference.resolve(self.evaluator.vdd());
        Ok(vouts
            .into_iter()
            .map(|v| {
                self.comparator.reset();
                self.comparator.compare(v, vref)
            })
            .collect())
    }

    /// Fraction of `data` classified correctly.
    ///
    /// # Errors
    ///
    /// Returns [`CoreError::EmptyDataset`] for an empty dataset, and
    /// propagates evaluator errors.
    pub fn accuracy(&mut self, data: &Dataset) -> Result<f64, CoreError> {
        if data.is_empty() {
            return Err(CoreError::EmptyDataset);
        }
        let mut correct = 0usize;
        for sample in data.samples() {
            self.comparator.reset();
            if self.classify(&sample.duties)? == sample.label {
                correct += 1;
            }
        }
        Ok(correct as f64 / data.len() as f64)
    }
}

/// A differential PWM perceptron: **signed** weights realised as two
/// weighted adders (positive and negative halves) feeding the two
/// comparator inputs. This is the natural extension the paper's
/// architecture admits for general linear classifiers, at twice the cell
/// cost.
#[derive(Debug, Clone)]
pub struct DifferentialPerceptron<E> {
    evaluator: E,
    weights: SignedWeightVector,
    comparator: Comparator,
}

impl<E: Evaluator> DifferentialPerceptron<E> {
    /// Creates a differential perceptron with an ideal comparator.
    pub fn new(evaluator: E, weights: SignedWeightVector) -> Self {
        DifferentialPerceptron {
            evaluator,
            weights,
            comparator: Comparator::ideal(),
        }
    }

    /// Replaces the comparator model.
    pub fn with_comparator(mut self, comparator: Comparator) -> Self {
        self.comparator = comparator;
        self
    }

    /// Number of inputs.
    pub fn input_len(&self) -> usize {
        self.weights.len()
    }

    /// The signed weights.
    pub fn weights(&self) -> &SignedWeightVector {
        &self.weights
    }

    /// Mutable access to the weights (training).
    pub fn weights_mut(&mut self) -> &mut SignedWeightVector {
        &mut self.weights
    }

    /// The evaluator.
    pub fn evaluator(&self) -> &E {
        &self.evaluator
    }

    /// The differential analog sum `v⁺ − v⁻`.
    ///
    /// # Errors
    ///
    /// Propagates evaluator errors.
    pub fn forward(&self, duties: &[DutyCycle]) -> Result<Volts, CoreError> {
        let (vp, vn) = self.halves(duties)?;
        Ok(vp - vn)
    }

    /// Classifies one sample: `v⁺ > v⁻` (through the comparator model).
    ///
    /// # Errors
    ///
    /// Propagates evaluator errors.
    pub fn classify(&mut self, duties: &[DutyCycle]) -> Result<bool, CoreError> {
        let (vp, vn) = self.halves(duties)?;
        Ok(self.comparator.compare(vp, vn))
    }

    /// Evaluates the positive and negative adder halves, in that order
    /// (the order matters for stream-seeded noisy evaluators).
    fn halves(&self, duties: &[DutyCycle]) -> Result<(Volts, Volts), CoreError> {
        let (pos, neg) = self.weights.split();
        let vp = self
            .evaluator
            .evaluate(&Query::new(duties.to_vec(), pos)?)?
            .vout;
        let vn = self
            .evaluator
            .evaluate(&Query::new(duties.to_vec(), neg)?)?
            .vout;
        Ok((vp, vn))
    }

    /// The differential sums for a batch of inputs: positive and negative
    /// halves of every sample go through one [`Evaluator::evaluate_batch`]
    /// call, so the circuit tier builds at most two netlists.
    ///
    /// # Errors
    ///
    /// Fails on the first evaluator error.
    pub fn forward_batch(&self, inputs: &[Vec<DutyCycle>]) -> Result<Vec<Volts>, CoreError> {
        let (pos, neg) = self.weights.split();
        let mut queries = Vec::with_capacity(inputs.len() * 2);
        for d in inputs {
            queries.push(Query::new(d.clone(), pos.clone())?);
            queries.push(Query::new(d.clone(), neg.clone())?);
        }
        let evals = self
            .evaluator
            .evaluate_batch(&queries)
            .into_iter()
            .collect::<Result<Vec<_>, _>>()?;
        Ok(evals
            .chunks_exact(2)
            .map(|pair| pair[0].vout - pair[1].vout)
            .collect())
    }

    /// Fraction of `data` classified correctly.
    ///
    /// # Errors
    ///
    /// Returns [`CoreError::EmptyDataset`] for an empty dataset, and
    /// propagates evaluator errors.
    pub fn accuracy(&mut self, data: &Dataset) -> Result<f64, CoreError> {
        if data.is_empty() {
            return Err(CoreError::EmptyDataset);
        }
        let mut correct = 0usize;
        for sample in data.samples() {
            self.comparator.reset();
            if self.classify(&sample.duties)? == sample.label {
                correct += 1;
            }
        }
        Ok(correct as f64 / data.len() as f64)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::eval::AnalyticEvaluator;

    fn duties(raw: &[f64]) -> Vec<DutyCycle> {
        raw.iter().map(|&d| DutyCycle::new(d)).collect()
    }

    #[test]
    fn reference_resolution() {
        let vdd = Volts(2.5);
        assert_eq!(Reference::absolute(Volts(1.0)).resolve(vdd), Volts(1.0));
        assert_eq!(Reference::ratiometric(0.4).resolve(vdd), Volts(1.0));
    }

    #[test]
    #[should_panic(expected = "fraction must be in 0..=1")]
    fn bad_ratiometric_panics() {
        let _ = Reference::ratiometric(1.5);
    }

    #[test]
    fn classify_against_ratiometric_reference() {
        let w = WeightVector::maxed(3, 3);
        let mut p = PwmPerceptron::new(AnalyticEvaluator::paper(), w, Reference::ratiometric(0.5));
        // Eq. 2 with max weights: vout/vdd = mean duty.
        assert!(p.classify(&duties(&[0.9, 0.8, 0.7])).unwrap());
        assert!(!p.classify(&duties(&[0.1, 0.2, 0.3])).unwrap());
        assert_eq!(p.input_len(), 3);
    }

    #[test]
    fn forward_exposes_the_analog_sum() {
        let w = WeightVector::new(vec![7, 7, 7], 3).unwrap();
        let p = PwmPerceptron::new(AnalyticEvaluator::paper(), w, Reference::ratiometric(0.5));
        let v = p.forward(&duties(&[0.7, 0.8, 0.9])).unwrap();
        assert!((v.value() - 2.0).abs() < 0.01);
    }

    #[test]
    fn weight_and_reference_updates() {
        let w = WeightVector::zeros(2, 3);
        let mut p = PwmPerceptron::new(AnalyticEvaluator::paper(), w, Reference::ratiometric(0.9));
        assert!(!p.classify(&duties(&[1.0, 1.0])).unwrap());
        p.set_weights(WeightVector::maxed(2, 3));
        assert!(p.classify(&duties(&[1.0, 1.0])).unwrap());
        p.set_reference(Reference::absolute(Volts(3.0)));
        assert!(!p.classify(&duties(&[1.0, 1.0])).unwrap());
        assert_eq!(p.weights().as_slice(), &[7, 7]);
    }

    #[test]
    fn differential_classifies_signed_problems() {
        // w = [+7, −7]: fires when duty0 > duty1 — impossible for the
        // single-ended perceptron with any fixed reference.
        let s = SignedWeightVector::new(vec![7, -7], 3).unwrap();
        let mut p = DifferentialPerceptron::new(AnalyticEvaluator::paper(), s);
        assert!(p.classify(&duties(&[0.8, 0.2])).unwrap());
        assert!(!p.classify(&duties(&[0.2, 0.8])).unwrap());
        let v = p.forward(&duties(&[0.8, 0.2])).unwrap();
        assert!(v.value() > 0.0);
    }

    #[test]
    fn accuracy_on_a_toy_dataset() {
        use crate::dataset::Sample;
        let data = Dataset::new(vec![
            Sample::new(duties(&[0.9, 0.9]), true),
            Sample::new(duties(&[0.1, 0.1]), false),
            Sample::new(duties(&[0.8, 0.9]), true),
        ])
        .unwrap();
        let w = WeightVector::maxed(2, 3);
        let mut p = PwmPerceptron::new(AnalyticEvaluator::paper(), w, Reference::ratiometric(0.5));
        assert!((p.accuracy(&data).unwrap() - 1.0).abs() < 1e-12);
    }
}
