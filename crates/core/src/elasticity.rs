//! Power-elasticity analysis — the paper's Figs. 6 and 7, generalised.
//!
//! The core claim: because information is carried by duty cycle, the
//! *ratio* `Vout/Vdd` is supply-independent above ~1–1.5 V (Fig. 7), so a
//! classifier whose reference is **ratiometric** keeps its accuracy under
//! arbitrary supply variation. This module provides the sweeps that
//! quantify both halves of that claim.

use mssim::units::Volts;
use pwmcell::{PwmNode, Technology};

use crate::dataset::Dataset;
use crate::error::CoreError;
use crate::eval::SwitchLevelEvaluator;
use crate::perceptron::{PwmPerceptron, Reference};
use crate::weight::WeightVector;

/// One point of a supply sweep.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct RatioPoint {
    /// Supply voltage in volts.
    pub vdd: f64,
    /// Absolute output voltage.
    pub vout: f64,
    /// `Vout/Vdd` — the power-elastic quantity.
    pub ratio: f64,
}

/// Sweeps the transcoding inverter's output over supply voltages at a
/// fixed duty cycle (switch-level model; the transistor-level version is
/// the `fig6`/`fig7` bench).
///
/// Validity: the switch-level model has no threshold physics, so it is
/// accurate **above ~1.5 V**; the sub-threshold collapse the paper's
/// Fig. 7 shows below ~1 V only appears at the transistor-level tier.
///
/// # Panics
///
/// Panics if `duty` is outside `0..=1` or any supply is not positive.
pub fn inverter_ratio_sweep(tech: &Technology, duty: f64, vdds: &[f64]) -> Vec<RatioPoint> {
    assert!((0.0..=1.0).contains(&duty), "duty must be in 0..=1");
    vdds.iter()
        .map(|&vdd| {
            assert!(vdd > 0.0, "supply must be positive");
            let node = PwmNode::inverter(
                tech,
                Some(tech.rout.value()),
                tech.cout_inverter.value(),
                duty,
                tech.frequency.value(),
                vdd,
            );
            let vout = node.steady_state_average();
            RatioPoint {
                vdd,
                vout,
                ratio: vout / vdd,
            }
        })
        .collect()
}

/// [`inverter_ratio_sweep`] with telemetry: the supply points are run
/// through [`mssim::sweep::sweep_observed`], so `observer` receives one
/// `sweep.wall_ns` histogram sample and `SweepPoint` event per supply
/// plus the work-steal counter. Results are identical to the unobserved
/// version.
///
/// # Panics
///
/// Panics if `duty` is outside `0..=1` or any supply is not positive.
pub fn inverter_ratio_sweep_observed(
    tech: &Technology,
    duty: f64,
    vdds: &[f64],
    observer: &mut dyn mssim::telemetry::Observer,
) -> Vec<RatioPoint> {
    assert!((0.0..=1.0).contains(&duty), "duty must be in 0..=1");
    mssim::sweep::sweep_observed(vdds, observer, |&vdd, _| {
        assert!(vdd > 0.0, "supply must be positive");
        let node = PwmNode::inverter(
            tech,
            Some(tech.rout.value()),
            tech.cout_inverter.value(),
            duty,
            tech.frequency.value(),
            vdd,
        );
        let vout = node.steady_state_average();
        RatioPoint {
            vdd,
            vout,
            ratio: vout / vdd,
        }
    })
}

/// Maximum deviation of `Vout/Vdd` across the sweep — 0 means perfectly
/// power-elastic.
///
/// # Panics
///
/// Panics if `points` is empty.
pub fn ratio_flatness(points: &[RatioPoint]) -> f64 {
    assert!(!points.is_empty(), "need at least one point");
    let lo = points.iter().map(|p| p.ratio).fold(f64::INFINITY, f64::min);
    let hi = points
        .iter()
        .map(|p| p.ratio)
        .fold(f64::NEG_INFINITY, f64::max);
    hi - lo
}

/// One point of an accuracy-vs-supply sweep.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct AccuracyPoint {
    /// Supply voltage in volts.
    pub vdd: f64,
    /// Classification accuracy at that supply.
    pub accuracy: f64,
}

/// Evaluates a trained weight/reference pair across supply voltages
/// using the switch-level evaluator. A [`Reference::Ratiometric`]
/// classifier should stay flat; a [`Reference::Absolute`] one collapses
/// away from its training supply — the design argument for deriving the
/// comparator reference from the supply rail.
///
/// # Errors
///
/// Propagates evaluator/dataset errors.
///
/// # Panics
///
/// Panics if any supply is not positive.
pub fn accuracy_vs_vdd(
    tech: &Technology,
    weights: &WeightVector,
    reference: Reference,
    data: &Dataset,
    vdds: &[f64],
) -> Result<Vec<AccuracyPoint>, CoreError> {
    let mut out = Vec::with_capacity(vdds.len());
    for &vdd in vdds {
        assert!(vdd > 0.0, "supply must be positive");
        let eval = SwitchLevelEvaluator::new(tech.clone()).with_vdd(Volts(vdd));
        let mut p = PwmPerceptron::new(eval, weights.clone(), reference);
        let accuracy = p.accuracy(data)?;
        out.push(AccuracyPoint { vdd, accuracy });
    }
    Ok(out)
}

/// Time-varying supply profiles of typical energy harvesters, for
/// end-to-end "classify while the supply moves" demonstrations.
#[derive(Debug, Clone, Copy, PartialEq)]
#[non_exhaustive]
pub enum HarvesterProfile {
    /// Photovoltaic under moving clouds: slow large-amplitude sine.
    Solar {
        /// Mean supply in volts.
        mean: f64,
        /// Peak deviation in volts.
        swing: f64,
        /// Variation period in seconds.
        period: f64,
    },
    /// Vibration harvester: mid supply with fast ripple.
    Vibration {
        /// Base supply in volts.
        base: f64,
        /// Ripple amplitude in volts.
        ripple: f64,
        /// Ripple frequency in hertz.
        frequency: f64,
    },
    /// Storage capacitor discharging between recharge bursts.
    Decay {
        /// Voltage at the start of the window.
        v0: f64,
        /// Discharge time constant in seconds.
        tau: f64,
        /// Floor the supply never drops below.
        floor: f64,
    },
}

impl HarvesterProfile {
    /// Supply voltage at time `t` (seconds from the window start).
    pub fn vdd_at(&self, t: f64) -> f64 {
        match *self {
            HarvesterProfile::Solar {
                mean,
                swing,
                period,
            } => mean + swing * (2.0 * std::f64::consts::PI * t / period).sin(),
            HarvesterProfile::Vibration {
                base,
                ripple,
                frequency,
            } => base + ripple * (2.0 * std::f64::consts::PI * frequency * t).sin(),
            HarvesterProfile::Decay { v0, tau, floor } => floor + (v0 - floor) * (-t / tau).exp(),
        }
    }

    /// Samples the profile at `n` evenly spaced times across `duration`.
    ///
    /// # Panics
    ///
    /// Panics if `n == 0` or `duration <= 0`.
    pub fn sample(&self, duration: f64, n: usize) -> Vec<f64> {
        assert!(n > 0 && duration > 0.0, "empty profile window");
        (0..n)
            .map(|i| self.vdd_at(duration * i as f64 / n as f64))
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ratio_is_flat_above_one_and_a_half_volts() {
        // The paper's Fig. 7 observation.
        let tech = Technology::umc65_like();
        let points = inverter_ratio_sweep(&tech, 0.25, &[1.5, 2.0, 2.5, 3.5, 5.0]);
        let flat = ratio_flatness(&points);
        assert!(flat < 0.05, "ratio varies by {flat}");
        // And the ratio is near 1 − duty.
        for p in &points {
            assert!((p.ratio - 0.75).abs() < 0.05, "{p:?}");
        }
    }

    #[test]
    fn observed_ratio_sweep_matches_and_counts_points() {
        use mssim::telemetry::MemoryRecorder;
        let tech = Technology::umc65_like();
        let vdds = [1.5, 2.0, 2.5, 3.5, 5.0];
        let plain = inverter_ratio_sweep(&tech, 0.25, &vdds);
        let mut rec = MemoryRecorder::new();
        let observed = inverter_ratio_sweep_observed(&tech, 0.25, &vdds, &mut rec);
        assert_eq!(plain, observed);
        assert_eq!(rec.counter_value("sweep.points"), vdds.len() as u64);
    }

    #[test]
    fn absolute_vout_scales_with_vdd() {
        // The paper's Fig. 6 observation: absolute output is NOT stable.
        let tech = Technology::umc65_like();
        let points = inverter_ratio_sweep(&tech, 0.5, &[2.0, 4.0]);
        assert!(
            points[1].vout > 1.8 * points[0].vout,
            "vout should track vdd: {points:?}"
        );
    }

    #[test]
    fn ratiometric_reference_survives_supply_variation() {
        let tech = Technology::umc65_like();
        let data = Dataset::majority(3);
        let weights = WeightVector::maxed(3, 3);
        let pts = accuracy_vs_vdd(
            &tech,
            &weights,
            Reference::ratiometric(0.5),
            &data,
            &[1.5, 2.5, 4.0],
        )
        .unwrap();
        for p in &pts {
            assert!(
                p.accuracy == 1.0,
                "ratiometric reference must hold at {} V, got {}",
                p.vdd,
                p.accuracy
            );
        }
    }

    #[test]
    fn absolute_reference_collapses_away_from_nominal() {
        let tech = Technology::umc65_like();
        let data = Dataset::majority(3);
        let weights = WeightVector::maxed(3, 3);
        // Absolute 1.25 V reference, correct at 2.5 V.
        let pts = accuracy_vs_vdd(
            &tech,
            &weights,
            Reference::absolute(Volts(1.25)),
            &data,
            &[1.2, 2.5, 5.0],
        )
        .unwrap();
        let at = |v: f64| {
            pts.iter()
                .find(|p| (p.vdd - v).abs() < 1e-9)
                .expect("point exists")
                .accuracy
        };
        assert!(at(2.5) == 1.0, "nominal supply works: {}", at(2.5));
        assert!(
            at(1.2) < 1.0 || at(5.0) < 1.0,
            "absolute reference should fail off-nominal: {pts:?}"
        );
    }

    #[test]
    fn harvester_profiles_are_sane() {
        let solar = HarvesterProfile::Solar {
            mean: 2.5,
            swing: 1.0,
            period: 10.0,
        };
        assert!((solar.vdd_at(0.0) - 2.5).abs() < 1e-12);
        assert!((solar.vdd_at(2.5) - 3.5).abs() < 1e-9);

        let decay = HarvesterProfile::Decay {
            v0: 3.0,
            tau: 1.0,
            floor: 1.0,
        };
        assert!((decay.vdd_at(0.0) - 3.0).abs() < 1e-12);
        assert!(decay.vdd_at(100.0) - 1.0 < 1e-9);

        let vib = HarvesterProfile::Vibration {
            base: 2.0,
            ripple: 0.3,
            frequency: 50.0,
        };
        let samples = vib.sample(1.0, 100);
        assert_eq!(samples.len(), 100);
        assert!(samples.iter().all(|&v| (1.69..=2.31).contains(&v)));
    }

    #[test]
    #[should_panic(expected = "at least one point")]
    fn flatness_of_empty_sweep_panics() {
        let _ = ratio_flatness(&[]);
    }
}
