//! Hardware-in-the-loop perceptron training.
//!
//! The paper's Fig. 1 shows the training loop: the adder output is
//! compared against a reference and the weights are updated until the
//! reference is matched. This module implements that loop as a pocket
//! perceptron algorithm: floating-point *shadow weights* accumulate the
//! classic `Δw = η·err·x` updates, are quantised to the hardware's `n`-bit
//! integers for every forward pass (which runs through whichever
//! [`Evaluator`] tier you picked — including the transistor-level one),
//! and the best-scoring quantised weights are kept ("pocketed").

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use crate::dataset::Dataset;
use crate::error::CoreError;
use crate::eval::Evaluator;
use crate::perceptron::{DifferentialPerceptron, PwmPerceptron, Reference};
use crate::weight::{SignedWeightVector, WeightVector};

/// Training hyper-parameters.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct TrainConfig {
    /// Maximum number of passes over the data.
    pub epochs: usize,
    /// Learning rate for the shadow weights (in weight LSBs per unit
    /// duty-cycle error).
    pub learning_rate: f64,
    /// Step applied to a ratiometric reference per misclassification, as
    /// a fraction of the supply. Ignored for absolute references.
    pub reference_rate: f64,
    /// Whether the reference is adapted during training.
    pub adapt_reference: bool,
    /// Shuffle seed.
    pub seed: u64,
    /// Stop early once training accuracy reaches this value.
    pub target_accuracy: f64,
}

impl Default for TrainConfig {
    fn default() -> Self {
        TrainConfig {
            epochs: 60,
            learning_rate: 0.75,
            reference_rate: 0.01,
            adapt_reference: true,
            seed: 0xDA7E,
            target_accuracy: 1.0,
        }
    }
}

/// Outcome of a training run.
#[derive(Debug, Clone, PartialEq)]
pub struct TrainReport {
    /// Epochs actually executed.
    pub epochs_run: usize,
    /// Best training accuracy seen (the pocketed weights).
    pub best_accuracy: f64,
    /// Accuracy of the final (pocketed) state.
    pub final_accuracy: f64,
    /// Per-epoch training accuracy.
    pub history: Vec<f64>,
}

/// Trains a single-ended perceptron in place; on return the perceptron
/// holds the best (pocketed) weights and reference.
///
/// # Errors
///
/// Returns [`CoreError::EmptyDataset`] for an empty dataset,
/// [`CoreError::DimensionMismatch`] if the data does not match the
/// perceptron, and propagates evaluator errors.
pub fn train<E: Evaluator>(
    perceptron: &mut PwmPerceptron<E>,
    data: &Dataset,
    cfg: &TrainConfig,
) -> Result<TrainReport, CoreError> {
    if data.is_empty() {
        return Err(CoreError::EmptyDataset);
    }
    if data.dim() != perceptron.input_len() {
        return Err(CoreError::DimensionMismatch {
            expected: perceptron.input_len(),
            got: data.dim(),
        });
    }
    let bits = perceptron.weights().bits();
    let w_max = perceptron.weights().max_weight() as f64;
    let mut shadow: Vec<f64> = perceptron.weights().iter().map(|&w| w as f64).collect();
    let mut ref_frac = match perceptron.reference() {
        Reference::Ratiometric(f) => f,
        Reference::Absolute(v) => v.value() / perceptron.evaluator().vdd().value(),
    };
    let ratiometric = matches!(perceptron.reference(), Reference::Ratiometric(_));

    let mut rng = StdRng::seed_from_u64(cfg.seed);
    let mut history = Vec::with_capacity(cfg.epochs);
    let mut best_accuracy = perceptron.accuracy(data)?;
    let mut best_weights = perceptron.weights().clone();
    let mut best_ref = ref_frac;

    let mut order: Vec<usize> = (0..data.len()).collect();
    for _epoch in 0..cfg.epochs {
        for i in (1..order.len()).rev() {
            let j = rng.gen_range(0..=i);
            order.swap(i, j);
        }
        for &i in &order {
            let sample = &data.samples()[i];
            let pred = perceptron.classify(&sample.duties)?;
            if pred == sample.label {
                continue;
            }
            let err = if sample.label { 1.0 } else { -1.0 };
            for (k, d) in sample.duties.iter().enumerate() {
                shadow[k] = (shadow[k] + cfg.learning_rate * err * d.value()).clamp(0.0, w_max);
            }
            if cfg.adapt_reference {
                ref_frac = (ref_frac - err * cfg.reference_rate).clamp(0.0, 1.0);
            }
            apply(perceptron, &shadow, bits, ref_frac, ratiometric);
        }
        let acc = perceptron.accuracy(data)?;
        history.push(acc);
        if acc > best_accuracy {
            best_accuracy = acc;
            best_weights = perceptron.weights().clone();
            best_ref = ref_frac;
        }
        if best_accuracy >= cfg.target_accuracy {
            break;
        }
    }

    // Restore the pocketed state.
    perceptron.set_weights(best_weights);
    set_ref(perceptron, best_ref, ratiometric);
    let final_accuracy = perceptron.accuracy(data)?;
    Ok(TrainReport {
        epochs_run: history.len(),
        best_accuracy,
        final_accuracy,
        history,
    })
}

fn apply<E: Evaluator>(
    p: &mut PwmPerceptron<E>,
    shadow: &[f64],
    bits: u32,
    ref_frac: f64,
    ratiometric: bool,
) {
    let quantised: Vec<u32> = shadow.iter().map(|&w| w.round() as u32).collect();
    p.set_weights(WeightVector::new(quantised, bits).expect("clamped shadow weights fit"));
    set_ref(p, ref_frac, ratiometric);
}

fn set_ref<E: Evaluator>(p: &mut PwmPerceptron<E>, ref_frac: f64, ratiometric: bool) {
    if ratiometric {
        p.set_reference(Reference::ratiometric(ref_frac.clamp(0.0, 1.0)));
    } else {
        let vdd = p.evaluator().vdd();
        p.set_reference(Reference::absolute(vdd * ref_frac));
    }
}

/// Trains a differential perceptron in place (signed weights, no
/// reference to adapt — the two halves compare against each other).
///
/// # Errors
///
/// Same conditions as [`train`].
pub fn train_differential<E: Evaluator>(
    perceptron: &mut DifferentialPerceptron<E>,
    data: &Dataset,
    cfg: &TrainConfig,
) -> Result<TrainReport, CoreError> {
    if data.is_empty() {
        return Err(CoreError::EmptyDataset);
    }
    if data.dim() != perceptron.input_len() {
        return Err(CoreError::DimensionMismatch {
            expected: perceptron.input_len(),
            got: data.dim(),
        });
    }
    let bits = perceptron.weights().bits();
    let w_max = ((1i32 << bits) - 1) as f64;
    let mut shadow: Vec<f64> = perceptron
        .weights()
        .as_slice()
        .iter()
        .map(|&w| w as f64)
        .collect();

    let mut rng = StdRng::seed_from_u64(cfg.seed);
    let mut history = Vec::with_capacity(cfg.epochs);
    let mut best_accuracy = perceptron.accuracy(data)?;
    let mut best_weights = perceptron.weights().clone();

    let mut order: Vec<usize> = (0..data.len()).collect();
    for _ in 0..cfg.epochs {
        for i in (1..order.len()).rev() {
            let j = rng.gen_range(0..=i);
            order.swap(i, j);
        }
        for &i in &order {
            let sample = &data.samples()[i];
            let pred = perceptron.classify(&sample.duties)?;
            if pred == sample.label {
                continue;
            }
            let err = if sample.label { 1.0 } else { -1.0 };
            // Centre the input so negative evidence pushes weights down.
            for (k, d) in sample.duties.iter().enumerate() {
                let x = 2.0 * d.value() - 1.0;
                shadow[k] = (shadow[k] + cfg.learning_rate * err * x).clamp(-w_max, w_max);
            }
            let quantised: Vec<i32> = shadow.iter().map(|&w| w.round() as i32).collect();
            *perceptron.weights_mut() =
                SignedWeightVector::new(quantised, bits).expect("clamped weights fit");
        }
        let acc = perceptron.accuracy(data)?;
        history.push(acc);
        if acc > best_accuracy {
            best_accuracy = acc;
            best_weights = perceptron.weights().clone();
        }
        if best_accuracy >= cfg.target_accuracy {
            break;
        }
    }
    *perceptron.weights_mut() = best_weights;
    let final_accuracy = perceptron.accuracy(data)?;
    Ok(TrainReport {
        epochs_run: history.len(),
        best_accuracy,
        final_accuracy,
        history,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::eval::{AnalyticEvaluator, SwitchLevelEvaluator};

    #[test]
    fn learns_a_separable_task_with_the_analytic_evaluator() {
        let (data, _, _) = Dataset::linearly_separable(120, 3, 3, 11);
        let mut p = PwmPerceptron::new(
            AnalyticEvaluator::paper(),
            WeightVector::zeros(3, 3),
            Reference::ratiometric(0.5),
        );
        let report = train(&mut p, &data, &TrainConfig::default()).unwrap();
        assert!(
            report.final_accuracy >= 0.95,
            "accuracy {} after {} epochs",
            report.final_accuracy,
            report.epochs_run
        );
        assert_eq!(report.final_accuracy, report.best_accuracy);
        assert!(!report.history.is_empty());
    }

    #[test]
    fn learns_majority_with_the_switch_level_evaluator() {
        // True hardware-in-the-loop: every forward pass solves the
        // periodic steady state of the 3×3 cell array.
        let data = Dataset::majority(3);
        let mut p = PwmPerceptron::new(
            SwitchLevelEvaluator::paper(),
            WeightVector::zeros(3, 3),
            Reference::ratiometric(0.5),
        );
        let report = train(&mut p, &data, &TrainConfig::default()).unwrap();
        assert!(
            report.final_accuracy == 1.0,
            "majority should be fully learnable, got {}",
            report.final_accuracy
        );
    }

    #[test]
    fn pocket_never_regresses() {
        let (data, _, _) = Dataset::linearly_separable(80, 3, 3, 5);
        let mut p = PwmPerceptron::new(
            AnalyticEvaluator::paper(),
            WeightVector::zeros(3, 3),
            Reference::ratiometric(0.5),
        );
        let before = p.accuracy(&data).unwrap();
        let report = train(&mut p, &data, &TrainConfig::default()).unwrap();
        assert!(report.final_accuracy >= before);
        assert!(report.best_accuracy >= report.history.iter().copied().fold(0.0, f64::max) - 1e-12);
    }

    #[test]
    fn early_stop_on_target() {
        let data = Dataset::boolean_or(2);
        let mut p = PwmPerceptron::new(
            AnalyticEvaluator::paper(),
            WeightVector::zeros(2, 3),
            Reference::ratiometric(0.5),
        );
        let cfg = TrainConfig {
            epochs: 200,
            ..TrainConfig::default()
        };
        let report = train(&mut p, &data, &cfg).unwrap();
        assert!(report.final_accuracy == 1.0);
        assert!(
            report.epochs_run < 200,
            "stopped after {}",
            report.epochs_run
        );
    }

    #[test]
    fn dimension_mismatch_rejected() {
        let data = Dataset::majority(4);
        let mut p = PwmPerceptron::new(
            AnalyticEvaluator::paper(),
            WeightVector::zeros(3, 3),
            Reference::ratiometric(0.5),
        );
        assert!(matches!(
            train(&mut p, &data, &TrainConfig::default()),
            Err(CoreError::DimensionMismatch { .. })
        ));
    }

    #[test]
    fn differential_learns_a_signed_task() {
        // Fires when input 0 exceeds input 1 — needs a negative weight.
        let mut samples = Vec::new();
        let mut rng = StdRng::seed_from_u64(3);
        for _ in 0..100 {
            let a: f64 = rng.gen_range(0.0..1.0);
            let b: f64 = rng.gen_range(0.0..1.0);
            if (a - b).abs() < 0.08 {
                continue;
            }
            samples.push(crate::dataset::Sample::new(
                vec![crate::DutyCycle::new(a), crate::DutyCycle::new(b)],
                a > b,
            ));
        }
        let data = Dataset::new(samples).unwrap();
        let mut p = DifferentialPerceptron::new(
            AnalyticEvaluator::paper(),
            SignedWeightVector::zeros(2, 3),
        );
        let report = train_differential(&mut p, &data, &TrainConfig::default()).unwrap();
        assert!(
            report.final_accuracy >= 0.95,
            "accuracy {}",
            report.final_accuracy
        );
        // The learned solution must use a negative weight.
        assert!(p.weights().as_slice()[1] < 0, "weights {:?}", p.weights());
    }

    #[test]
    fn training_is_seed_deterministic() {
        let (data, _, _) = Dataset::linearly_separable(60, 3, 3, 21);
        let run = || {
            let mut p = PwmPerceptron::new(
                AnalyticEvaluator::paper(),
                WeightVector::zeros(3, 3),
                Reference::ratiometric(0.5),
            );
            let r = train(&mut p, &data, &TrainConfig::default()).unwrap();
            (r, p.weights().clone())
        };
        let (r1, w1) = run();
        let (r2, w2) = run();
        assert_eq!(r1, r2);
        assert_eq!(w1, w2);
    }
}
