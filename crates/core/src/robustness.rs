//! Robustness under parametric variation — the paper's "Robust" claim.
//!
//! The paper validates resilience against amplitude and frequency
//! variation; a 65 nm fabrication additionally brings device mismatch
//! (threshold-voltage and geometry sigma). This module provides
//! Monte-Carlo machinery at two fidelities:
//!
//! * **global corners** on the [`Technology`] (fast, switch-level), and
//! * **per-device perturbation** of an elaborated [`mssim::Circuit`]
//!   (transistor-level, used by the `repro mc` experiment).

use mssim::elements::Element;
use mssim::prelude::Circuit;
use mssim::sweep;
use pwmcell::{PwmNode, Technology};
use rand::rngs::StdRng;
use rand::Rng;

use crate::eval::{Evaluator, SwitchLevelEvaluator};
use crate::infer::Query;

/// Standard deviations of the varied parameters.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct VariationSpec {
    /// Threshold-voltage sigma in volts (absolute).
    pub vth_sigma: f64,
    /// Relative width sigma (fraction of nominal).
    pub width_sigma_rel: f64,
    /// Relative resistor sigma (fraction of nominal).
    pub rout_sigma_rel: f64,
}

impl VariationSpec {
    /// Representative mismatch for large (1.2 µm) devices in a 65 nm bulk
    /// process: σ(Vth) = 30 mV, σ(W)/W = 3 %, σ(R)/R = 5 %.
    pub fn typical_65nm() -> Self {
        VariationSpec {
            vth_sigma: 0.03,
            width_sigma_rel: 0.03,
            rout_sigma_rel: 0.05,
        }
    }

    /// No variation (for A/B testing the MC machinery itself).
    pub fn none() -> Self {
        VariationSpec {
            vth_sigma: 0.0,
            width_sigma_rel: 0.0,
            rout_sigma_rel: 0.0,
        }
    }
}

/// One standard normal deviate (Box–Muller).
fn gauss(rng: &mut StdRng) -> f64 {
    let u1: f64 = rng.gen_range(f64::EPSILON..1.0);
    let u2: f64 = rng.gen_range(0.0..1.0);
    (-2.0 * u1.ln()).sqrt() * (2.0 * std::f64::consts::PI * u2).cos()
}

/// Draws a global process corner: every parameter of the technology
/// shifted by one correlated draw (all N devices move together, ditto P).
pub fn perturbed_technology(
    tech: &Technology,
    spec: &VariationSpec,
    rng: &mut StdRng,
) -> Technology {
    let mut t = tech.clone();
    t.nmos = t
        .nmos
        .with_vth0((t.nmos.vth0 + spec.vth_sigma * gauss(rng)).max(0.05));
    t.pmos = t
        .pmos
        .with_vth0((t.pmos.vth0 + spec.vth_sigma * gauss(rng)).max(0.05));
    t.nmos.w *= (1.0 + spec.width_sigma_rel * gauss(rng)).max(0.2);
    t.pmos.w *= (1.0 + spec.width_sigma_rel * gauss(rng)).max(0.2);
    t.rout = t.rout * (1.0 + spec.rout_sigma_rel * gauss(rng)).max(0.2);
    t
}

/// Applies **independent per-device** mismatch to every MOSFET and
/// resistor of an elaborated circuit — local variation, the harder test.
pub fn perturb_circuit(circuit: &mut Circuit, spec: &VariationSpec, rng: &mut StdRng) {
    let ids: Vec<_> = circuit.elements().map(|(id, _, _)| id).collect();
    for id in ids {
        match circuit.element(id) {
            Element::Mosfet { params, .. } => {
                let mut p = *params;
                p = p.with_vth0((p.vth0 + spec.vth_sigma * gauss(rng)).max(0.05));
                p.w *= (1.0 + spec.width_sigma_rel * gauss(rng)).max(0.2);
                circuit.set_mos_params(id, p).expect("element is a mosfet");
            }
            Element::Resistor { ohms, .. } => {
                let r = *ohms * (1.0 + spec.rout_sigma_rel * gauss(rng)).max(0.2);
                circuit
                    .set_resistance(id, r)
                    .expect("element is a resistor");
            }
            _ => {}
        }
    }
}

/// Summary statistics of a Monte-Carlo sample.
#[derive(Debug, Clone, PartialEq)]
pub struct McSummary {
    /// Sample mean.
    pub mean: f64,
    /// Sample standard deviation (n−1).
    pub std: f64,
    /// Smallest observation.
    pub min: f64,
    /// Largest observation.
    pub max: f64,
    /// The raw observations.
    pub samples: Vec<f64>,
}

impl McSummary {
    /// Computes the summary, or `None` when `samples` is empty — the
    /// total function behind [`McSummary::from_samples`], for callers
    /// (fault campaigns, filtered MC paths) whose sample sets can
    /// legitimately come up empty.
    pub fn try_from_samples(samples: Vec<f64>) -> Option<Self> {
        if samples.is_empty() {
            return None;
        }
        let n = samples.len() as f64;
        let mean = samples.iter().sum::<f64>() / n;
        let var = if samples.len() > 1 {
            samples.iter().map(|x| (x - mean).powi(2)).sum::<f64>() / (n - 1.0)
        } else {
            0.0
        };
        let min = samples.iter().copied().fold(f64::INFINITY, f64::min);
        let max = samples.iter().copied().fold(f64::NEG_INFINITY, f64::max);
        Some(McSummary {
            mean,
            std: var.sqrt(),
            min,
            max,
            samples,
        })
    }

    /// Computes the summary.
    ///
    /// # Panics
    ///
    /// Panics if `samples` is empty.
    pub fn from_samples(samples: Vec<f64>) -> Self {
        Self::try_from_samples(samples).expect("need at least one sample")
    }

    /// Relative spread `std/mean` (coefficient of variation).
    pub fn relative_std(&self) -> f64 {
        if self.mean.abs() < 1e-30 {
            0.0
        } else {
            self.std / self.mean.abs()
        }
    }
}

/// Monte-Carlo distribution of the weighted-adder output voltage under
/// global process corners. Each trial draws a perturbed [`Technology`]
/// and answers the query through a [`SwitchLevelEvaluator`] — the same
/// [`Evaluator`] surface the serving engine uses, so the distribution is
/// exactly what a deployed classifier would see. Deterministic in `seed`;
/// trials run in parallel.
///
/// # Panics
///
/// Panics if `trials == 0`.
pub fn switch_corner_monte_carlo(
    tech: &Technology,
    query: &Query,
    spec: &VariationSpec,
    trials: usize,
    seed: u64,
) -> McSummary {
    assert!(trials > 0, "need at least one trial");
    let samples = sweep::monte_carlo(trials, seed, |rng, _| corner_vout(tech, query, spec, rng));
    McSummary::try_from_samples(samples).expect("trials > 0 yields samples")
}

/// [`switch_corner_monte_carlo`] with telemetry: per-trial wall times,
/// worker indices and steal counts are delivered to `observer` via
/// [`mssim::sweep::monte_carlo_observed`]. The sample distribution is
/// identical to the unobserved version with the same seed.
///
/// # Panics
///
/// Panics if `trials == 0`.
pub fn switch_corner_monte_carlo_observed(
    tech: &Technology,
    query: &Query,
    spec: &VariationSpec,
    trials: usize,
    seed: u64,
    observer: &mut dyn mssim::telemetry::Observer,
) -> McSummary {
    assert!(trials > 0, "need at least one trial");
    let samples = sweep::monte_carlo_observed(trials, seed, observer, |rng, _| {
        corner_vout(tech, query, spec, rng)
    });
    McSummary::try_from_samples(samples).expect("trials > 0 yields samples")
}

/// One corner draw evaluated through the trait surface.
fn corner_vout(tech: &Technology, query: &Query, spec: &VariationSpec, rng: &mut StdRng) -> f64 {
    let t = perturbed_technology(tech, spec, rng);
    SwitchLevelEvaluator::new(t)
        .vout(query.duties(), query.weights())
        .expect("query dimensions are validated at construction")
        .value()
}

/// Superseded spelling of [`switch_corner_monte_carlo`] over raw slices.
///
/// # Panics
///
/// Panics if `trials == 0` or the raw inputs are out of range.
#[deprecated(note = "build a `Query` and call `switch_corner_monte_carlo`")]
#[allow(clippy::too_many_arguments)]
pub fn adder_vout_monte_carlo(
    tech: &Technology,
    duties: &[f64],
    weights: &[u32],
    bits: u32,
    spec: &VariationSpec,
    trials: usize,
    seed: u64,
) -> McSummary {
    let query = Query::from_raw(duties, weights, bits).expect("raw inputs in range");
    switch_corner_monte_carlo(tech, &query, spec, trials, seed)
}

/// Superseded spelling of [`switch_corner_monte_carlo_observed`] over raw
/// slices.
///
/// # Panics
///
/// Panics if `trials == 0` or the raw inputs are out of range.
#[deprecated(note = "build a `Query` and call `switch_corner_monte_carlo_observed`")]
#[allow(clippy::too_many_arguments)]
pub fn adder_vout_monte_carlo_observed(
    tech: &Technology,
    duties: &[f64],
    weights: &[u32],
    bits: u32,
    spec: &VariationSpec,
    trials: usize,
    seed: u64,
    observer: &mut dyn mssim::telemetry::Observer,
) -> McSummary {
    let query = Query::from_raw(duties, weights, bits).expect("raw inputs in range");
    switch_corner_monte_carlo_observed(tech, &query, spec, trials, seed, observer)
}

/// Output voltage across a frequency sweep (switch-level) — supports the
/// paper's statement that Table II is unaffected from 1 MHz to 1 GHz.
pub fn vout_vs_frequency(
    tech: &Technology,
    duties: &[f64],
    weights: &[u32],
    bits: u32,
    frequencies: &[f64],
) -> Vec<(f64, f64)> {
    frequencies
        .iter()
        .map(|&f| {
            let v = PwmNode::weighted_adder(
                tech,
                duties,
                weights,
                bits,
                f,
                tech.vdd.value(),
                tech.cout_adder.value(),
            )
            .steady_state_average();
            (f, v)
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;

    #[test]
    fn summary_statistics() {
        let s = McSummary::from_samples(vec![1.0, 2.0, 3.0, 4.0]);
        assert!((s.mean - 2.5).abs() < 1e-12);
        assert!((s.std - (5.0f64 / 3.0).sqrt()).abs() < 1e-12);
        assert_eq!(s.min, 1.0);
        assert_eq!(s.max, 4.0);
        assert!(s.relative_std() > 0.0);
    }

    #[test]
    fn try_from_samples_owns_the_empty_case() {
        assert!(McSummary::try_from_samples(Vec::new()).is_none());
        let s = McSummary::try_from_samples(vec![2.0]).unwrap();
        assert_eq!(s.mean, 2.0);
        assert_eq!(s.std, 0.0);
    }

    fn query(duties: &[f64], weights: &[u32]) -> Query {
        Query::from_raw(duties, weights, 3).unwrap()
    }

    #[test]
    fn zero_variation_gives_zero_spread() {
        let tech = Technology::umc65_like();
        let q = query(&[0.5, 0.5, 0.5], &[7, 7, 7]);
        let s = switch_corner_monte_carlo(&tech, &q, &VariationSpec::none(), 16, 1);
        assert!(s.std < 1e-12, "std = {}", s.std);
    }

    #[test]
    fn variation_spreads_but_mean_stays_near_nominal() {
        let tech = Technology::umc65_like();
        let duties = [0.2, 0.6, 0.8];
        let weights = [5, 6, 7];
        let nominal = PwmNode::weighted_adder(
            &tech,
            &duties,
            &weights,
            3,
            tech.frequency.value(),
            tech.vdd.value(),
            tech.cout_adder.value(),
        )
        .steady_state_average();
        let s = switch_corner_monte_carlo(
            &tech,
            &query(&duties, &weights),
            &VariationSpec::typical_65nm(),
            64,
            7,
        );
        assert!(s.std > 1e-4, "mismatch must spread the output");
        assert!(
            (s.mean - nominal).abs() < 0.05,
            "mean {} vs nominal {nominal}",
            s.mean
        );
        // The headline robustness: spread stays small (a few per cent).
        assert!(s.relative_std() < 0.05, "cv = {}", s.relative_std());
    }

    #[test]
    fn monte_carlo_is_seed_deterministic() {
        let tech = Technology::umc65_like();
        let spec = VariationSpec::typical_65nm();
        let q = query(&[0.5], &[7]);
        let a = switch_corner_monte_carlo(&tech, &q, &spec, 8, 3);
        let b = switch_corner_monte_carlo(&tech, &q, &spec, 8, 3);
        assert_eq!(a.samples, b.samples);
    }

    #[test]
    fn observed_monte_carlo_matches_and_counts_trials() {
        use mssim::telemetry::MemoryRecorder;
        let tech = Technology::umc65_like();
        let spec = VariationSpec::typical_65nm();
        let q = query(&[0.5], &[7]);
        let plain = switch_corner_monte_carlo(&tech, &q, &spec, 8, 3);
        let mut rec = MemoryRecorder::new();
        let observed = switch_corner_monte_carlo_observed(&tech, &q, &spec, 8, 3, &mut rec);
        assert_eq!(plain.samples, observed.samples);
        assert_eq!(rec.counter_value("sweep.points"), 8);
        assert_eq!(rec.histogram_values("sweep.wall_ns").len(), 8);
    }

    #[test]
    #[allow(deprecated)]
    fn deprecated_raw_slice_wrappers_are_bitwise_identical() {
        let tech = Technology::umc65_like();
        let spec = VariationSpec::typical_65nm();
        let duties = [0.2, 0.6, 0.8];
        let weights = [5, 6, 7];
        let old = adder_vout_monte_carlo(&tech, &duties, &weights, 3, &spec, 16, 7);
        let new = switch_corner_monte_carlo(&tech, &query(&duties, &weights), &spec, 16, 7);
        assert_eq!(old.samples, new.samples);
    }

    #[test]
    fn per_device_perturbation_touches_all_devices() {
        use mssim::prelude::*;
        let tech = Technology::umc65_like();
        let mut ckt = Circuit::new();
        let vdd = ckt.node("vdd");
        ckt.vsource("VDD", vdd, Circuit::GND, Waveform::dc(2.5));
        let adder = pwmcell::WeightedAdder::build(
            &mut ckt,
            &tech,
            "a",
            vdd,
            &[7, 7, 7],
            pwmcell::AdderSpec::paper_3x3(),
        );
        let before: Vec<f64> = ckt
            .elements()
            .filter_map(|(_, _, e)| match e {
                Element::Mosfet { params, .. } => Some(params.vth0),
                _ => None,
            })
            .collect();
        assert_eq!(before.len(), adder.transistor_count());
        let mut rng = StdRng::seed_from_u64(11);
        perturb_circuit(&mut ckt, &VariationSpec::typical_65nm(), &mut rng);
        let after: Vec<f64> = ckt
            .elements()
            .filter_map(|(_, _, e)| match e {
                Element::Mosfet { params, .. } => Some(params.vth0),
                _ => None,
            })
            .collect();
        let changed = before
            .iter()
            .zip(&after)
            .filter(|(b, a)| (*b - *a).abs() > 1e-9)
            .count();
        assert_eq!(changed, before.len(), "every device perturbed");
        // And the perturbations are device-local (not all equal).
        let deltas: Vec<f64> = before.iter().zip(&after).map(|(b, a)| a - b).collect();
        assert!(deltas.windows(2).any(|w| (w[0] - w[1]).abs() > 1e-9));
    }

    #[test]
    fn frequency_sweep_is_flat() {
        let tech = Technology::umc65_like();
        let pts = vout_vs_frequency(
            &tech,
            &[0.2, 0.6, 0.8],
            &[5, 6, 7],
            3,
            &[1e6, 10e6, 100e6, 1e9],
        );
        let lo = pts.iter().map(|p| p.1).fold(f64::INFINITY, f64::min);
        let hi = pts.iter().map(|p| p.1).fold(f64::NEG_INFINITY, f64::max);
        assert!(hi - lo < 0.03, "spread {} over frequency", hi - lo);
    }
}
