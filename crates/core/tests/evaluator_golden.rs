//! Golden tests for the `Evaluator`-trait migration: every consumer that
//! moved onto `evaluate`/`evaluate_batch` must produce outputs **bitwise
//! identical** to the pre-trait computation it replaced. Each golden
//! below re-derives the historical path from primitives (`PwmNode`,
//! `analytic::adder_vout`, per-call `vout`) and `assert_eq!`s against the
//! migrated API — no tolerances.

use mssim::sweep;
use mssim::units::{Farads, Hertz};
use pwm_perceptron::prelude::*;
use pwm_perceptron::robustness::{perturbed_technology, switch_corner_monte_carlo, VariationSpec};
use pwmcell::{analytic, PwmNode, SimQuality, Technology};

fn duties(values: &[f64]) -> Vec<DutyCycle> {
    values.iter().copied().map(DutyCycle::new).collect()
}

/// Small output caps + 50 MHz so circuit-tier transients settle quickly.
fn quick_tech() -> Technology {
    let mut t = Technology::umc65_like();
    t.cout_inverter = Farads(100e-15);
    t.cout_adder = Farads(500e-15);
    t.frequency = Hertz(50e6);
    t
}

/// `PwmPerceptron::forward` (now routed through `Evaluator::evaluate`)
/// against the raw primitives, at both fidelity tiers.
#[test]
fn perceptron_forward_matches_the_primitive_computation() {
    let tech = Technology::umc65_like();
    let weights = WeightVector::new(vec![7, 3, 4], 3).unwrap();
    let input = duties(&[0.8, 0.2, 0.5]);

    let analytic_p = PwmPerceptron::new(
        AnalyticEvaluator::new(tech.vdd),
        weights.clone(),
        Reference::ratiometric(0.5),
    );
    let golden = analytic::adder_vout(tech.vdd.value(), &[0.8, 0.2, 0.5], &[7, 3, 4], 3);
    assert_eq!(analytic_p.forward(&input).unwrap().value(), golden);

    let switch_p = PwmPerceptron::new(
        SwitchLevelEvaluator::new(tech.clone()),
        weights,
        Reference::ratiometric(0.5),
    );
    let node = PwmNode::weighted_adder(
        &tech,
        &[0.8, 0.2, 0.5],
        &[7, 3, 4],
        3,
        tech.frequency.value(),
        tech.vdd.value(),
        tech.cout_adder.value(),
    );
    assert_eq!(
        switch_p.forward(&input).unwrap().value(),
        node.steady_state_average()
    );
}

/// `forward_batch` agrees bitwise with the sequential single-query path.
#[test]
fn perceptron_forward_batch_matches_sequential_forward() {
    let p = PwmPerceptron::new(
        SwitchLevelEvaluator::paper(),
        WeightVector::new(vec![7, 7, 7], 3).unwrap(),
        Reference::ratiometric(0.5),
    );
    let inputs: Vec<Vec<DutyCycle>> = [
        [0.70, 0.80, 0.90],
        [0.50, 0.50, 0.50],
        [0.05, 0.95, 0.40],
        [1.00, 0.00, 0.25],
    ]
    .iter()
    .map(|row| duties(row))
    .collect();
    let batched = p.forward_batch(&inputs).unwrap();
    for (input, b) in inputs.iter().zip(&batched) {
        assert_eq!(p.forward(input).unwrap(), *b);
    }
}

/// The differential perceptron equals pos-rail minus neg-rail, each half
/// computed directly through the evaluator it wraps.
#[test]
fn differential_forward_matches_manual_halves() {
    let signed = SignedWeightVector::new(vec![7, -3, 2], 3).unwrap();
    let eval = AnalyticEvaluator::paper();
    let p = DifferentialPerceptron::new(eval, signed.clone());
    let input = duties(&[0.9, 0.4, 0.6]);
    let (pos, neg) = signed.split();
    let golden =
        eval.vout(&input, &pos).unwrap().value() - eval.vout(&input, &neg).unwrap().value();
    assert_eq!(p.forward(&input).unwrap().value(), golden);
}

/// `HardLayer::forward` (now one batched call) against the historical
/// per-neuron sequential comparisons.
#[test]
fn hard_layer_matches_manual_per_neuron_comparisons() {
    let layer = HardLayer::new(vec![
        SignedWeightVector::new(vec![7, 7, -4], 3).unwrap(),
        SignedWeightVector::new(vec![-5, -5, 7], 3).unwrap(),
        SignedWeightVector::new(vec![1, 2, 3], 3).unwrap(),
    ])
    .unwrap();
    let eval = SwitchLevelEvaluator::paper();
    // Neurons are (inputs + bias)-wide: three weights → two inputs.
    for raw in [[0.1, 0.9], [0.8, 0.2], [0.0, 1.0]] {
        let input = duties(&raw);
        let mut extended = input.clone();
        extended.push(DutyCycle::ONE);
        let golden: Vec<bool> = layer
            .neurons()
            .iter()
            .map(|neuron| {
                let (pos, neg) = neuron.split();
                eval.vout(&extended, &pos).unwrap().value()
                    > eval.vout(&extended, &neg).unwrap().value()
            })
            .collect();
        assert_eq!(layer.forward(&eval, &input).unwrap(), golden);
    }
}

/// `WtaClassifier::scores` (one batched call) against per-class `vout`.
#[test]
fn wta_scores_match_per_class_vout() {
    let classes = vec![
        WeightVector::new(vec![7, 1, 1], 3).unwrap(),
        WeightVector::new(vec![1, 7, 1], 3).unwrap(),
        WeightVector::new(vec![1, 1, 7], 3).unwrap(),
    ];
    let eval = SwitchLevelEvaluator::paper();
    let wta = WtaClassifier::new(eval.clone(), classes.clone()).unwrap();
    let input = duties(&[0.2, 0.9, 0.4]);
    let scores = wta.scores(&input).unwrap();
    for (class, score) in classes.iter().zip(&scores) {
        assert_eq!(eval.vout(&input, class).unwrap(), *score);
    }
}

/// The re-curated `switch_corner_monte_carlo` against the historical
/// inline loop: one global corner per trial (`perturbed_technology`),
/// evaluated by the switch-level PSS model, over the same
/// `sweep::monte_carlo` RNG streams.
#[test]
fn switch_corner_mc_matches_the_direct_corner_loop() {
    let tech = Technology::umc65_like();
    let spec = VariationSpec::typical_65nm();
    let query = Query::from_raw(&[0.7, 0.8, 0.9], &[7, 7, 7], 3).unwrap();
    let summary = switch_corner_monte_carlo(&tech, &query, &spec, 24, 0xFEED);

    let golden = sweep::monte_carlo(24, 0xFEED, |rng, _| {
        let corner = perturbed_technology(&tech, &spec, rng);
        SwitchLevelEvaluator::new(corner)
            .vout(query.duties(), query.weights())
            .unwrap()
            .value()
    });
    let golden = pwm_perceptron::robustness::McSummary::from_samples(golden);
    assert_eq!(summary.mean, golden.mean);
    assert_eq!(summary.std, golden.std);
    assert_eq!(summary.min, golden.min);
    assert_eq!(summary.max, golden.max);
}

/// The circuit tier's amortized batch path (one netlist + plan reused
/// per weight group) against fresh per-query transients.
#[test]
fn circuit_batch_matches_sequential_vout_bitwise() {
    let eval = CircuitEvaluator::new(quick_tech(), SimQuality::fast());
    let weights = WeightVector::new(vec![7, 5, 3], 3).unwrap();
    let queries: Vec<Query> = [[0.3, 0.5, 0.7], [0.9, 0.1, 0.5], [0.5, 0.5, 0.5]]
        .iter()
        .map(|row| Query::new(duties(row), weights.clone()).unwrap())
        .collect();
    let batched = eval.evaluate_batch(&queries);
    for (q, b) in queries.iter().zip(batched) {
        let b = b.unwrap();
        assert_eq!(eval.vout(q.duties(), q.weights()).unwrap(), b.vout);
        assert_eq!(b.tier, Tier::Circuit);
    }
}

/// The noisy wrapper's single-shot draw stream is untouched by the
/// migration: a fresh wrapper replays the same sequence, and `evaluate`
/// consumes the very same stream as `vout`.
#[test]
fn noisy_single_shot_stream_is_reproducible_across_entry_points() {
    let weights = WeightVector::new(vec![7, 3, 4], 3).unwrap();
    let inputs = [[0.8, 0.2, 0.5], [0.1, 0.9, 0.3], [0.5, 0.5, 0.5]];

    let via_vout = NoisyEvaluator::new(AnalyticEvaluator::paper(), 0.05, 42);
    let a: Vec<f64> = inputs
        .iter()
        .map(|row| via_vout.vout(&duties(row), &weights).unwrap().value())
        .collect();

    let via_evaluate = NoisyEvaluator::new(AnalyticEvaluator::paper(), 0.05, 42);
    let b: Vec<f64> = inputs
        .iter()
        .map(|row| {
            let q = Query::new(duties(row), weights.clone()).unwrap();
            via_evaluate.evaluate(&q).unwrap().vout.value()
        })
        .collect();
    assert_eq!(a, b);
}

/// Regression for the batch-seeding fix: batched noisy evaluation keys
/// each draw on (base seed, query index), so results are invariant under
/// reordering of the batch — the draw follows the query, not the
/// evaluation sequence.
#[test]
fn noisy_batch_draws_are_order_invariant() {
    let weights = WeightVector::new(vec![7, 3, 4], 3).unwrap();
    let queries: Vec<Query> = [[0.8, 0.2, 0.5], [0.1, 0.9, 0.3], [0.5, 0.5, 0.5]]
        .iter()
        .map(|row| Query::new(duties(row), weights.clone()).unwrap())
        .collect();

    let eval = NoisyEvaluator::new(AnalyticEvaluator::paper(), 0.05, 7);
    let forward: Vec<f64> = eval
        .evaluate_batch(&queries)
        .into_iter()
        .map(|e| e.unwrap().vout.value())
        .collect();

    // Same queries, new wrapper: identical (the RefCell stream the
    // single-shot path uses plays no part in batching).
    let replay: Vec<f64> = NoisyEvaluator::new(AnalyticEvaluator::paper(), 0.05, 7)
        .evaluate_batch(&queries)
        .into_iter()
        .map(|e| e.unwrap().vout.value())
        .collect();
    assert_eq!(forward, replay);

    // Reversed batch: each query carries its own index, so position in
    // the submission order must not change any draw.
    let reversed_queries: Vec<Query> = queries.iter().rev().cloned().collect();
    let mut reversed: Vec<f64> = NoisyEvaluator::new(AnalyticEvaluator::paper(), 0.05, 7)
        .evaluate_batch(&reversed_queries)
        .into_iter()
        .map(|e| e.unwrap().vout.value())
        .collect();
    reversed.reverse();
    assert_ne!(
        forward, reversed,
        "distinct queries at distinct indices draw distinct noise"
    );

    // The contract that matters for sweep workers: chunking the batch
    // does not exist at this API level, but duplicate submissions of the
    // same query at the same index must agree even interleaved with
    // other work.
    let doubled: Vec<Query> = queries.iter().chain(queries.iter()).cloned().collect();
    let twice: Vec<f64> = NoisyEvaluator::new(AnalyticEvaluator::paper(), 0.05, 7)
        .evaluate_batch(&doubled)
        .into_iter()
        .map(|e| e.unwrap().vout.value())
        .collect();
    assert_eq!(&twice[..queries.len()], forward.as_slice());
}

/// The `#[deprecated]` raw-slice robustness wrappers still forward to
/// computations that agree bitwise with the `Query`-based spelling.
#[test]
#[allow(deprecated)]
fn deprecated_wrappers_stay_bitwise_faithful() {
    let tech = Technology::umc65_like();
    let spec = VariationSpec::typical_65nm();
    let old = pwm_perceptron::robustness::adder_vout_monte_carlo(
        &tech,
        &[0.3, 0.6, 0.9],
        &[1, 2, 4],
        3,
        &spec,
        16,
        99,
    );
    let query = Query::from_raw(&[0.3, 0.6, 0.9], &[1, 2, 4], 3).unwrap();
    let new = switch_corner_monte_carlo(&tech, &query, &spec, 16, 99);
    assert_eq!(old.mean, new.mean);
    assert_eq!(old.std, new.std);
}
