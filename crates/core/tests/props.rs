//! Property-based tests of the perceptron layer's invariants.

use mssim::units::Volts;
use proptest::prelude::*;
use pwm_perceptron::comparator::Comparator;
use pwm_perceptron::encode::LinearEncoder;
use pwm_perceptron::eval::{AnalyticEvaluator, Evaluator};
use pwm_perceptron::{DutyCycle, Reference, SignedWeightVector, WeightVector};

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    /// try_new accepts exactly the closed unit interval.
    #[test]
    fn duty_domain(x in -2.0f64..3.0) {
        let r = DutyCycle::try_new(x);
        prop_assert_eq!(r.is_ok(), (0.0..=1.0).contains(&x));
    }

    /// clamped() is the identity on in-range values and always lands in
    /// range.
    #[test]
    fn duty_clamp(x in -10.0f64..10.0) {
        let d = DutyCycle::clamped(x);
        prop_assert!((0.0..=1.0).contains(&d.value()));
        if (0.0..=1.0).contains(&x) {
            prop_assert_eq!(d.value(), x);
        }
    }

    /// Quantisation is idempotent and within half a step.
    #[test]
    fn duty_quantisation(x in 0.0f64..=1.0, levels in 2u32..64) {
        let q = DutyCycle::new(x).quantized(levels);
        prop_assert_eq!(q.quantized(levels), q, "idempotent");
        let step = 1.0 / (levels - 1) as f64;
        prop_assert!((q.value() - x).abs() <= step / 2.0 + 1e-12);
    }

    /// Complement is an involution.
    #[test]
    fn duty_complement_involutive(x in 0.0f64..=1.0) {
        let d = DutyCycle::new(x);
        prop_assert!((d.complement().complement().value() - x).abs() < 1e-15);
    }

    /// Weight nudging never escapes the representable range.
    #[test]
    fn weight_nudge_stays_in_range(
        start in 0u32..=7,
        deltas in prop::collection::vec(-20i64..20, 0..30),
    ) {
        let mut w = WeightVector::new(vec![start], 3).unwrap();
        for d in deltas {
            let v = w.nudge(0, d);
            prop_assert!(v <= 7);
        }
    }

    /// Signed weights split losslessly: pos − neg reconstructs the value,
    /// and the halves never overlap.
    #[test]
    fn signed_split_reconstructs(ws in prop::collection::vec(-7i32..=7, 1..6)) {
        let s = SignedWeightVector::new(ws.clone(), 3).unwrap();
        let (pos, neg) = s.split();
        #[allow(clippy::needless_range_loop)]
        for i in 0..ws.len() {
            prop_assert_eq!(pos.get(i) as i32 - neg.get(i) as i32, ws[i]);
            prop_assert!(pos.get(i) == 0 || neg.get(i) == 0);
        }
    }

    /// Encoder decode ∘ encode is the identity on in-range samples.
    #[test]
    fn encoder_roundtrip(lo in -100.0f64..0.0, width in 1.0f64..100.0, frac in 0.0f64..=1.0) {
        let enc = LinearEncoder::new(lo, lo + width);
        let sample = lo + frac * width;
        let d = enc.encode(sample);
        prop_assert!((enc.decode(d) - sample).abs() < 1e-9 * width.max(1.0));
    }

    /// An offset-free, hysteresis-free comparator is exactly `>`.
    #[test]
    fn ideal_comparator_is_gt(input in -5.0f64..5.0, reference in -5.0f64..5.0) {
        let mut c = Comparator::ideal();
        prop_assert_eq!(c.compare(Volts(input), Volts(reference)), input > reference);
    }

    /// With hysteresis, decisions are monotone in the input: once high at
    /// x, it is high at every x' > x (same state).
    #[test]
    fn comparator_hysteresis_monotone(h in 0.0f64..1.0, x in -2.0f64..2.0) {
        let mut c1 = Comparator::ideal().with_hysteresis(Volts(h));
        let mut c2 = Comparator::ideal().with_hysteresis(Volts(h));
        let up = c1.compare(Volts(x), Volts(0.0));
        let up_higher = c2.compare(Volts(x + 0.5), Volts(0.0));
        if up {
            prop_assert!(up_higher);
        }
    }

    /// Ratiometric references scale exactly with the supply.
    #[test]
    fn reference_scaling(frac in 0.0f64..=1.0, vdd in 0.1f64..6.0) {
        let r = Reference::ratiometric(frac);
        prop_assert!((r.resolve(Volts(vdd)).value() - frac * vdd).abs() < 1e-12);
        let a = Reference::absolute(Volts(1.3));
        prop_assert_eq!(a.resolve(Volts(vdd)), Volts(1.3));
    }

    /// The analytic evaluator's output is bounded by the rails and equals
    /// zero for zero weights.
    #[test]
    fn analytic_evaluator_bounds(
        duties in prop::collection::vec(0.0f64..=1.0, 3),
        weights in prop::collection::vec(0u32..=7, 3),
    ) {
        let e = AnalyticEvaluator::paper();
        let d: Vec<DutyCycle> = duties.iter().map(|&x| DutyCycle::new(x)).collect();
        let w = WeightVector::new(weights, 3).unwrap();
        let v = e.vout(&d, &w).unwrap().value();
        prop_assert!((0.0..=2.5 + 1e-12).contains(&v));
        let z = WeightVector::zeros(3, 3);
        prop_assert_eq!(e.vout(&d, &z).unwrap().value(), 0.0);
    }

    /// Dataset split partitions the data with the requested sizes and is
    /// seed-deterministic.
    #[test]
    fn dataset_split_partitions(n in 10usize..80, frac in 0.2f64..0.8, seed in 0u64..100) {
        let (data, _, _) = pwm_perceptron::Dataset::linearly_separable(n, 3, 3, seed);
        let (train, test) = data.split(frac, seed);
        prop_assert_eq!(train.len() + test.len(), n);
        let (train2, test2) = data.split(frac, seed);
        prop_assert_eq!(train, train2);
        prop_assert_eq!(test, test2);
    }
}
