//! Property-based tests of the resilience layer: the circuit breaker's
//! state machine admits only legal transitions under arbitrary outcome
//! sequences and clock advances, and the chaos evaluator's injection
//! schedule is a pure function of its seed.

use proptest::prelude::*;
use pwm_perceptron::prelude::*;

/// One scripted interaction with the breaker.
#[derive(Debug, Clone, Copy)]
enum Op {
    /// `allow(now)` — may transition open → half-open.
    Allow,
    /// `record(failed, now)` — may trip or close.
    Record { failed: bool },
    /// Advance the clock.
    Advance { ns: u64 },
}

/// Raw op encoding for proptest's tuple strategies: (kind 0..3, flag,
/// advance amount).
type RawOp = (u8, bool, u64);

fn decode(raw: RawOp) -> Op {
    match raw.0 % 3 {
        0 => Op::Allow,
        1 => Op::Record { failed: raw.1 },
        _ => Op::Advance { ns: raw.2 },
    }
}

fn config() -> BreakerConfig {
    BreakerConfig {
        window: 8,
        failure_rate: 0.5,
        min_samples: 3,
        cooldown_ns: 500,
        half_open_probes: 2,
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    /// Under any op sequence: every transition is one of the four legal
    /// edges, the breaker never admits a call while open before its
    /// cooldown has elapsed, and it never flaps open without a recorded
    /// failure.
    #[test]
    fn breaker_state_machine_admits_only_legal_transitions(
        raws in prop::collection::vec((0u8..3, any::<bool>(), 0u64..400), 1..200),
    ) {
        let cfg = config();
        let breaker = CircuitBreaker::new(cfg);
        let mut now: u64 = 0;
        let mut opened_at: Option<u64> = None;
        let mut state = BreakerState::Closed;
        for raw in raws {
            match decode(raw) {
                Op::Advance { ns } => now += ns,
                Op::Allow => {
                    let (admitted, transition) = breaker.allow(now);
                    match transition {
                        None => {
                            // Without a transition, admission mirrors the
                            // pre-call state.
                            prop_assert_eq!(admitted, state != BreakerState::Open);
                            if state == BreakerState::Open {
                                let opened = opened_at.expect("open state has a trip time");
                                prop_assert!(
                                    now.saturating_sub(opened) < cfg.cooldown_ns,
                                    "an open breaker past its cooldown must probe"
                                );
                            }
                        }
                        Some(t) => {
                            // allow() only performs open → half-open, only
                            // after the cooldown, and admits the probe.
                            prop_assert_eq!(t.from, BreakerState::Open);
                            prop_assert_eq!(t.to, BreakerState::HalfOpen);
                            prop_assert_eq!(state, BreakerState::Open);
                            let opened = opened_at.expect("open state has a trip time");
                            prop_assert!(now.saturating_sub(opened) >= cfg.cooldown_ns);
                            prop_assert!(admitted);
                            state = BreakerState::HalfOpen;
                        }
                    }
                }
                Op::Record { failed } => {
                    let before = state;
                    match breaker.record(failed, now) {
                        None => {
                            // No transition: the state is unchanged.
                            prop_assert_eq!(breaker.state(), before);
                        }
                        Some(t) => {
                            prop_assert_eq!(t.from, before);
                            match (t.from, t.to) {
                                (BreakerState::Closed, BreakerState::Open)
                                | (BreakerState::HalfOpen, BreakerState::Open) => {
                                    // Trips require an actual failure.
                                    prop_assert!(failed, "a success never opens the breaker");
                                    prop_assert!(t.failure_rate >= cfg.failure_rate);
                                    opened_at = Some(now);
                                }
                                (BreakerState::HalfOpen, BreakerState::Closed) => {
                                    prop_assert!(!failed, "a failure never closes the breaker");
                                }
                                edge => {
                                    prop_assert!(false, "illegal transition {:?}", edge);
                                }
                            }
                            state = t.to;
                        }
                    }
                    prop_assert_eq!(breaker.state(), state);
                }
            }
        }
    }

    /// The breaker is deterministic: the same op script replayed against
    /// a fresh breaker yields the identical state/trip trajectory.
    #[test]
    fn breaker_is_deterministic(
        raws in prop::collection::vec((0u8..3, any::<bool>(), 0u64..400), 1..200),
    ) {
        let run = || {
            let breaker = CircuitBreaker::new(config());
            let mut now: u64 = 0;
            let mut trace: Vec<(BreakerState, u64)> = Vec::new();
            for &raw in &raws {
                match decode(raw) {
                    Op::Advance { ns } => now += ns,
                    Op::Allow => {
                        let _ = breaker.allow(now);
                    }
                    Op::Record { failed } => {
                        let _ = breaker.record(failed, now);
                    }
                }
                trace.push((breaker.state(), breaker.trips()));
            }
            trace
        };
        prop_assert_eq!(run(), run());
    }

    /// The chaos schedule is pure: any (seed, index) draws the same fault
    /// on every evaluation, and distinct seeds are genuinely different
    /// schedules (checked in aggregate).
    #[test]
    fn chaos_schedule_is_reproducible(seed in any::<u64>(), len in 1usize..300) {
        let cfg = ChaosConfig {
            seed,
            fail_rate: 0.2,
            nan_rate: 0.1,
            spike_rate: 0.1,
            spike_ns: 10,
        };
        let a: Vec<Option<ChaosFault>> =
            (0..len as u64).map(|i| chaos_fault_at(&cfg, i)).collect();
        let b: Vec<Option<ChaosFault>> =
            (0..len as u64).map(|i| chaos_fault_at(&cfg, i)).collect();
        prop_assert_eq!(a, b);
    }

    /// A resilient engine over a chaotic switch tier never returns an
    /// error or a non-finite voltage — every injected fault is retried or
    /// degraded to the analytic closed form, and degraded answers carry
    /// the certified bound.
    #[test]
    fn chaotic_serving_always_answers_finite(
        seed in any::<u64>(),
        duty_raw in prop::collection::vec((0u32..16, 0u32..16, 0u32..16), 1..24),
    ) {
        let clock = std::sync::Arc::new(ManualClock::new());
        let chaos = ChaosEvaluator::with_clock(
            AnalyticEvaluator::paper(),
            ChaosConfig {
                seed,
                fail_rate: 0.3,
                nan_rate: 0.1,
                spike_rate: 0.0,
                spike_ns: 0,
            },
            clock.clone(),
        );
        // Pose the chaotic evaluator as the switch tier (its inner tier
        // is analytic, but the ladder only cares about configuration).
        let engine = InferenceEngine::paper()
            .with_switch_tier(chaos)
            .with_policy(TierPolicy::switch_level())
            .with_resilience_clock(ResiliencePolicy::new().with_attempts(2), clock);
        let queries: Vec<Query> = duty_raw
            .iter()
            .map(|&(a, b, c)| {
                Query::from_raw(
                    &[a as f64 / 15.0, b as f64 / 15.0, c as f64 / 15.0],
                    &[7, 5, 3],
                    3,
                )
                .unwrap()
            })
            .collect();
        for q in &queries {
            let eval = engine.evaluate(q).unwrap();
            prop_assert!(eval.vout.value().is_finite());
            if eval.degraded {
                prop_assert!(eval.error_bound > 0.0);
            } else {
                prop_assert_eq!(eval.error_bound, 0.0);
            }
        }
        // The batched path obeys the same invariant.
        for r in engine.evaluate_batch(&queries) {
            let eval = r.unwrap();
            prop_assert!(eval.vout.value().is_finite());
        }
    }
}
