//! Property-based tests of the inference engine's memo cache: duty
//! quantization, hit/miss transparency, deduplication and eviction must
//! never change what a caller observes.

use proptest::prelude::*;
use pwm_perceptron::prelude::*;

/// Raw material for one query: three duty values and three 3-bit weights.
type RawQuery = ((f64, f64, f64), (u32, u32, u32));

/// Raw material for one on-grid query: three grid indices and weights.
type GridQuery = ((u32, u32, u32), (u32, u32, u32));

/// Tuple-of-range strategy producing a [`RawQuery`].
type FreeRawStrategy = (
    (
        std::ops::RangeInclusive<f64>,
        std::ops::RangeInclusive<f64>,
        std::ops::RangeInclusive<f64>,
    ),
    (
        std::ops::RangeInclusive<u32>,
        std::ops::RangeInclusive<u32>,
        std::ops::RangeInclusive<u32>,
    ),
);

/// Tuple-of-range strategy producing a [`GridQuery`].
type GridRawStrategy = (
    (
        std::ops::Range<u32>,
        std::ops::Range<u32>,
        std::ops::Range<u32>,
    ),
    (
        std::ops::RangeInclusive<u32>,
        std::ops::RangeInclusive<u32>,
        std::ops::RangeInclusive<u32>,
    ),
);

/// Strategy for arbitrary continuous (off-grid) raw queries.
fn free_raw() -> FreeRawStrategy {
    (
        (0.0..=1.0, 0.0..=1.0, 0.0..=1.0),
        (0u32..=7, 0u32..=7, 0u32..=7),
    )
}

/// Strategy for raw queries whose duties sit ON a `levels`-point grid.
fn grid_raw(levels: u32) -> GridRawStrategy {
    (
        (0..levels, 0..levels, 0..levels),
        (0u32..=7, 0u32..=7, 0u32..=7),
    )
}

fn free_query(raw: RawQuery) -> Query {
    let ((d0, d1, d2), (w0, w1, w2)) = raw;
    Query::from_raw(&[d0, d1, d2], &[w0, w1, w2], 3).expect("raw inputs in range")
}

fn grid_query(levels: u32, raw: GridQuery) -> Query {
    let ((i0, i1, i2), (w0, w1, w2)) = raw;
    let step = 1.0 / (levels - 1) as f64;
    Query::from_raw(
        &[i0 as f64 * step, i1 as f64 * step, i2 as f64 * step],
        &[w0, w1, w2],
        3,
    )
    .expect("grid points are in range")
}

fn engine(levels: u32, capacity: usize) -> InferenceEngine {
    InferenceEngine::new(mssim::units::Volts(2.5)).with_cache(levels, capacity)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    /// Quantizing a query moves each duty at most half a grid step, so
    /// by Eq. 2's Lipschitz bound the analytic output moves at most
    /// `vdd · (step/2) · Σw / (k·(2ⁿ−1))`. Whenever the original output
    /// clears the firing threshold by more than that bound, the
    /// quantized query classifies identically.
    #[test]
    fn quantization_never_flips_a_clear_classification(
        raw in free_raw(),
        levels in 2u32..64,
    ) {
        let query = free_query(raw);
        let eval = AnalyticEvaluator::paper();
        let vdd = eval.vdd().value();
        let threshold = 0.5 * vdd;
        let v = eval.evaluate(&query).unwrap().vout.value();

        let step = 1.0 / (levels - 1) as f64;
        let wsum: u32 = query.weights().as_slice().iter().sum();
        let k = query.duties().len() as f64;
        let full_scale = 2f64.powi(query.weights().bits() as i32) - 1.0;
        let bound = vdd * (step / 2.0) * wsum as f64 / (k * full_scale);

        if (v - threshold).abs() <= bound + 1e-12 {
            // Within the quantization error band of the threshold —
            // classification is legitimately undefined there.
            return Ok(());
        }
        let vq = eval
            .evaluate(&query.quantized(levels))
            .unwrap()
            .vout
            .value();
        prop_assert_eq!(v >= threshold, vq >= threshold);
    }

    /// On the grid, quantization is the identity: the admitted query the
    /// cache evaluates IS the submitted query, bitwise.
    #[test]
    fn grid_queries_survive_quantization_roundtrip(raw in grid_raw(16)) {
        let query = grid_query(16, raw);
        prop_assert_eq!(query.quantized(16), query);
    }

    /// A cached engine answers exactly like the bare analytic evaluator
    /// for on-grid streams — the cache is observationally transparent,
    /// hits and misses alike.
    #[test]
    fn cache_on_and_cache_off_agree_on_grid_streams(
        raws in prop::collection::vec(grid_raw(16), 1..40),
    ) {
        let stream: Vec<Query> = raws.into_iter().map(|r| grid_query(16, r)).collect();
        let cached = engine(16, 1024);
        let bare = AnalyticEvaluator::paper();
        for q in &stream {
            let via_cache = cached.evaluate(q).unwrap().vout;
            let direct = bare.evaluate(q).unwrap().vout;
            prop_assert_eq!(via_cache, direct);
        }
        // And again, now that everything is hot.
        for q in &stream {
            let hit = cached.evaluate(q).unwrap();
            prop_assert!(hit.cached);
            prop_assert_eq!(hit.vout, bare.evaluate(q).unwrap().vout);
        }
    }

    /// Off-grid queries are admitted at the nearest grid point: the
    /// engine's answer equals the bare evaluator on the quantized query,
    /// and repeats are hits with the identical value.
    #[test]
    fn admission_is_deterministic_for_free_queries(raw in free_raw()) {
        let query = free_query(raw);
        let cached = engine(16, 1024);
        let bare = AnalyticEvaluator::paper();
        let cold = cached.evaluate(&query).unwrap();
        prop_assert!(!cold.cached);
        prop_assert_eq!(cold.vout, bare.evaluate(&query.quantized(16)).unwrap().vout);
        let hot = cached.evaluate(&query).unwrap();
        prop_assert!(hot.cached);
        prop_assert_eq!(hot.vout, cold.vout);
    }

    /// Batched evaluation (with its miss deduplication) agrees bitwise
    /// with the sequential path on a fresh engine, duplicates included.
    #[test]
    fn batched_and_sequential_evaluation_agree(
        raws in prop::collection::vec(grid_raw(16), 1..40),
        dup in 0usize..4096,
    ) {
        let mut stream: Vec<Query> = raws.into_iter().map(|r| grid_query(16, r)).collect();
        // Force at least one in-batch duplicate.
        let copy = stream[dup % stream.len()].clone();
        stream.push(copy);

        let a = engine(16, 1024);
        let batched: Vec<_> = a
            .evaluate_batch(&stream)
            .into_iter()
            .map(|e| e.unwrap().vout)
            .collect();
        let b = engine(16, 1024);
        let sequential: Vec<_> = stream
            .iter()
            .map(|q| b.evaluate(q).unwrap().vout)
            .collect();
        prop_assert_eq!(batched, sequential);
    }

    /// Evictions under a tiny capacity and interleaved weight mutations
    /// never serve a stale value: weights are part of the key, and a
    /// flushed entry is recomputed, so every answer always equals the
    /// bare evaluator's.
    #[test]
    fn eviction_and_weight_changes_never_serve_stale(
        raws in prop::collection::vec(grid_raw(16), 1..60),
        bumps in prop::collection::vec(0usize..4096, 1..10),
    ) {
        let mut stream: Vec<Query> = raws.into_iter().map(|r| grid_query(16, r)).collect();
        // 16 shards × capacity ⌈4/16⌉ = 1 entry each: constant churn.
        let cached = engine(16, 4);
        let bare = AnalyticEvaluator::paper();
        // Mutate some queries' weights mid-stream by rebuilding them —
        // the cache must key the new weights, not the old answer.
        for b in bumps {
            let i = b % stream.len();
            let w: Vec<u32> = stream[i]
                .weights()
                .as_slice()
                .iter()
                .map(|&x| (x + 1) % 8)
                .collect();
            let weights = WeightVector::new(w, 3).unwrap();
            stream[i] = Query::new(stream[i].duties().to_vec(), weights).unwrap();
        }
        for pass in 0..2 {
            for q in &stream {
                let got = cached.evaluate(q).unwrap().vout;
                let want = bare.evaluate(q).unwrap().vout;
                prop_assert_eq!(got, want, "pass {}", pass);
            }
        }
        // Bookkeeping stays coherent under churn.
        let stats = cached.report().cache;
        prop_assert!(stats.insertions >= stats.evictions);
    }
}
