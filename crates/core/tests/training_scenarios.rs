//! Training under non-ideal conditions: noise, comparator imperfections,
//! quantised inputs — the situations a deployed micro-edge perceptron
//! actually faces.

use mssim::units::Volts;
use pwm_perceptron::comparator::Comparator;
use pwm_perceptron::dataset::Dataset;
use pwm_perceptron::eval::{AnalyticEvaluator, NoisyEvaluator, SwitchLevelEvaluator};
use pwm_perceptron::metrics::evaluate;
use pwm_perceptron::train::{train, TrainConfig};
use pwm_perceptron::{DutyCycle, PwmPerceptron, Reference, WeightVector};

#[test]
fn training_survives_output_noise() {
    // 20 mV RMS output noise (≈ 2× the steady-state ripple) during
    // training; evaluation on the clean model must still be good.
    let (data, _, _) = Dataset::linearly_separable(150, 3, 3, 77);
    let (train_set, test_set) = data.split(0.7, 1);
    let noisy = NoisyEvaluator::new(AnalyticEvaluator::paper(), 0.02, 99);
    let mut p = PwmPerceptron::new(
        noisy,
        WeightVector::zeros(3, 3),
        Reference::ratiometric(0.5),
    );
    let report = train(&mut p, &train_set, &TrainConfig::default()).unwrap();
    assert!(
        report.best_accuracy > 0.9,
        "noisy training accuracy {}",
        report.best_accuracy
    );
    // Deploy the learned weights on the clean evaluator.
    let mut clean = PwmPerceptron::new(
        AnalyticEvaluator::paper(),
        p.weights().clone(),
        p.reference(),
    );
    let acc = clean.accuracy(&test_set).unwrap();
    assert!(acc > 0.9, "clean deployment accuracy {acc}");
}

#[test]
fn comparator_offset_is_absorbed_by_reference_adaptation() {
    // A 100 mV input-referred comparator offset is nearly one output LSB;
    // reference adaptation during training must compensate it.
    let data = Dataset::majority(3);
    let mut p = PwmPerceptron::new(
        SwitchLevelEvaluator::paper(),
        WeightVector::zeros(3, 3),
        Reference::ratiometric(0.5),
    )
    .with_comparator(Comparator::ideal().with_offset(Volts(0.1)));
    let report = train(&mut p, &data, &TrainConfig::default()).unwrap();
    assert_eq!(
        report.final_accuracy, 1.0,
        "offset must be trained around: {report:?}"
    );
}

#[test]
fn hysteretic_comparator_still_classifies_cleanly_off_boundary() {
    let mut p = PwmPerceptron::new(
        AnalyticEvaluator::paper(),
        WeightVector::maxed(3, 3),
        Reference::ratiometric(0.5),
    )
    .with_comparator(Comparator::ideal().with_hysteresis(Volts(0.1)));
    let hi = [0.9, 0.9, 0.9].map(DutyCycle::new);
    let lo = [0.1, 0.1, 0.1].map(DutyCycle::new);
    // Alternate aggressively: hysteresis must not latch wrong decisions
    // for inputs far from the boundary.
    for _ in 0..5 {
        assert!(p.classify(&hi).unwrap());
        assert!(!p.classify(&lo).unwrap());
    }
}

#[test]
fn quantised_inputs_train_as_well_as_continuous() {
    // Inputs produced by a 6-bit counter PWM generator (64 duty levels).
    let (data, _, _) = Dataset::linearly_separable(150, 3, 3, 13);
    let quantised_samples: Vec<_> = data
        .samples()
        .iter()
        .map(|s| {
            pwm_perceptron::dataset::Sample::new(
                s.duties.iter().map(|d| d.quantized(64)).collect(),
                s.label,
            )
        })
        .collect();
    let qdata = Dataset::new(quantised_samples).unwrap();
    let mut p = PwmPerceptron::new(
        AnalyticEvaluator::paper(),
        WeightVector::zeros(3, 3),
        Reference::ratiometric(0.5),
    );
    let report = train(&mut p, &qdata, &TrainConfig::default()).unwrap();
    assert!(
        report.final_accuracy > 0.97,
        "quantised accuracy {}",
        report.final_accuracy
    );
}

#[test]
fn metrics_surface_one_sided_failures() {
    // Train on a class-imbalanced stream and check the confusion matrix
    // rather than raw accuracy.
    let base = Dataset::sensor_events(300, 21);
    // Build an imbalanced set: drop most positives.
    let mut kept = Vec::new();
    let mut positives = 0;
    for s in base.samples() {
        if s.label {
            if positives < 25 {
                kept.push(s.clone());
                positives += 1;
            }
        } else {
            kept.push(s.clone());
        }
    }
    let data = Dataset::new(kept).unwrap();
    assert!(data.positive_rate() < 0.2, "imbalance holds");
    let mut p = PwmPerceptron::new(
        AnalyticEvaluator::paper(),
        WeightVector::zeros(3, 3),
        Reference::ratiometric(0.5),
    );
    train(&mut p, &data, &TrainConfig::default()).unwrap();
    let cm = evaluate(&mut p, &data).unwrap();
    // The trained filter must catch events, not just play the base rate.
    assert!(cm.recall() > 0.9, "recall {}", cm.recall());
    assert!(cm.precision() > 0.9, "precision {}", cm.precision());
    assert!(cm.mcc() > 0.8, "mcc {}", cm.mcc());
}

#[test]
fn higher_learning_rates_still_converge_via_pocket() {
    let (data, _, _) = Dataset::linearly_separable(100, 3, 3, 31);
    for lr in [0.25, 1.0, 3.0] {
        let mut p = PwmPerceptron::new(
            AnalyticEvaluator::paper(),
            WeightVector::zeros(3, 3),
            Reference::ratiometric(0.5),
        );
        let cfg = TrainConfig {
            learning_rate: lr,
            ..TrainConfig::default()
        };
        let report = train(&mut p, &data, &cfg).unwrap();
        assert!(
            report.best_accuracy > 0.9,
            "lr = {lr}: accuracy {}",
            report.best_accuracy
        );
    }
}
