//! Soundness of the static fault-triage tier against the simulator.
//!
//! A `GuaranteedMasked` / `GuaranteedFail` verdict is produced from a
//! Krawczyk solution enclosure alone — no transient ever runs — so its
//! one obligation is to never contradict what the full simulated sweep
//! would have concluded. These properties randomise the switch-level
//! adder (shape, weights, duty cycles) and hold the triage tier to that
//! contract on every generated universe.

use mssim::StaticVerdict;
use proptest::prelude::*;
use pwm_perceptron::faults::{switch_adder_campaign, CampaignConfig, FaultClass};
use pwmcell::{AdderSpec, Technology};

/// Short campaigns keep each case affordable: the classification gap
/// between `GuaranteedMasked` (≤ 0.05 V) and `GuaranteedFail` (> 0.25 V)
/// is wide enough that six settled periods classify identically to the
/// paper-quality run.
fn fast_config(triage: bool) -> CampaignConfig {
    CampaignConfig {
        periods: 6,
        steps_per_period: 40,
        avg_periods: 1,
        triage,
        ..CampaignConfig::default()
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(8))]

    /// Over random switch-level universes, every statically certified
    /// verdict agrees with the class the full simulated sweep assigns to
    /// the same fault — and the two campaigns classify the whole
    /// universe identically.
    #[test]
    fn certified_verdicts_never_contradict_the_simulated_sweep(
        bits in 2u32..=3,
        raw_weights in prop::collection::vec(1u32..=7, 1..=2),
        raw_duties in prop::collection::vec(0.05f64..=0.95, 2),
    ) {
        let inputs = raw_weights.len();
        let spec = AdderSpec::new(inputs, bits);
        let max_weight = (1u32 << bits) - 1;
        let weights: Vec<u32> = raw_weights.iter().map(|w| w.min(&max_weight)).copied().collect();
        let duties = &raw_duties[..inputs];
        let tech = Technology::umc65_like();

        let full = switch_adder_campaign(&tech, spec, &weights, duties, &fast_config(false))
            .expect("full sweep simulates");
        let triaged = switch_adder_campaign(&tech, spec, &weights, duties, &fast_config(true))
            .expect("triaged campaign runs");

        prop_assert_eq!(full.outcomes.len(), triaged.outcomes.len());
        let stats = triaged.triage.expect("triaged campaign records stats");
        prop_assert_eq!(
            stats.masked + stats.failed + stats.simulated,
            stats.universe,
            "triage stats tile the universe"
        );

        for (f, t) in full.outcomes.iter().zip(&triaged.outcomes) {
            prop_assert_eq!(&f.label, &t.label, "campaigns enumerate identically");
            prop_assert_eq!(
                f.class.tag(),
                t.class.tag(),
                "fault '{}' classified {} simulated but {} triaged",
                f.label,
                f.class.tag(),
                t.class.tag()
            );
            match t.static_verdict {
                Some(StaticVerdict::GuaranteedMasked) => {
                    prop_assert!(
                        matches!(f.class, FaultClass::Masked),
                        "'{}' certified masked, simulation says {}",
                        f.label,
                        f.class.tag()
                    );
                }
                Some(StaticVerdict::GuaranteedFail) => {
                    prop_assert!(
                        matches!(f.class, FaultClass::FunctionalFail { .. }),
                        "'{}' certified fail, simulation says {}",
                        f.label,
                        f.class.tag()
                    );
                }
                Some(StaticVerdict::NeedsSimulation) | None => {}
            }
            if t.static_verdict.is_some_and(|v| v != StaticVerdict::NeedsSimulation) {
                let (lo, hi) = t.enclosure.expect("certified rows carry their enclosure");
                prop_assert!(lo <= hi && lo.is_finite() && hi.is_finite());
                if let Some(vout) = f.vout {
                    // The settled simulated output of the same fault must
                    // live inside the guaranteed DC enclosure, up to the
                    // finite settling of one short transient.
                    prop_assert!(
                        vout >= lo - 0.05 && vout <= hi + 0.05,
                        "'{}' simulated to {:.4} V outside enclosure [{:.4}, {:.4}]",
                        f.label,
                        vout,
                        lo,
                        hi
                    );
                }
            }
        }
    }

    /// A triaged campaign is a pure reduction of the simulated one: it
    /// never invents outcomes, and re-running it is deterministic.
    #[test]
    fn triage_is_deterministic(duty in 0.10f64..=0.90) {
        let tech = Technology::umc65_like();
        let spec = AdderSpec::new(1, 2);
        let a = switch_adder_campaign(&tech, spec, &[3], &[duty], &fast_config(true))
            .expect("campaign runs");
        let b = switch_adder_campaign(&tech, spec, &[3], &[duty], &fast_config(true))
            .expect("campaign runs");
        prop_assert_eq!(a.outcomes.len(), b.outcomes.len());
        for (x, y) in a.outcomes.iter().zip(&b.outcomes) {
            prop_assert_eq!(&x.label, &y.label);
            prop_assert_eq!(x.class.tag(), y.class.tag());
            prop_assert_eq!(x.static_verdict, y.static_verdict);
            prop_assert_eq!(x.enclosure, y.enclosure);
            prop_assert_eq!(x.vout, y.vout);
        }
    }
}
