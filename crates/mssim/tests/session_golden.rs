//! Golden equivalence: the deprecated free-function entry points must
//! produce **bitwise identical** results to the [`Session`] API they now
//! delegate to, and the telemetry counters a session derives from its
//! event stream must agree exactly with the solver's own statistics.
//!
//! These tests pin the 0.2.0 migration contract: callers can swap
//! `dc_operating_point(&ckt)` for `Session::new(&ckt).dc_operating_point()`
//! (and likewise for sweep/AC/noise/transient) without any result drift.

#![allow(deprecated)]

use mssim::analysis::{ac_analysis, dc_operating_point, dc_sweep, noise_analysis};
use mssim::elements::MosParams;
use mssim::prelude::*;
use mssim::telemetry::Event;

const VDD: f64 = 2.5;
const FREQ: f64 = 500e6;
const ROUT: f64 = 100e3;
const R_OFF: f64 = 1e12;

/// CMOS inverter driving its output capacitor from a PWM gate drive —
/// the paper's Fig. 2 transcoding cell (hand-rolled: a dev-dependency on
/// `pwmcell` would create a cycle).
fn mos_inverter() -> (Circuit, NodeId, ElementId) {
    let mut ckt = Circuit::new();
    let vdd = ckt.node("vdd");
    let g = ckt.node("g");
    let out = ckt.node("out");
    ckt.vsource("VDD", vdd, Circuit::GND, Waveform::dc(VDD));
    let vin = ckt.vsource("VIN", g, Circuit::GND, Waveform::pwm(VDD, FREQ, 0.7));
    ckt.mosfet("MP", out, g, vdd, MosParams::pmos(865e-9, 1.2e-6));
    ckt.mosfet("MN", out, g, Circuit::GND, MosParams::nmos(320e-9, 1.2e-6));
    ckt.capacitor("COUT", out, Circuit::GND, 1e-12);
    (ckt, out, vin)
}

/// Switch-level 3×3 weighted adder, the topology of `pwmcell::SwitchAdder`
/// at the paper's technology numbers.
fn switch_adder_3x3() -> (Circuit, NodeId) {
    let duties = [0.70, 0.80, 0.90];
    let mut ckt = Circuit::new();
    let vdd = ckt.node("vdd");
    let out = ckt.node("out");
    ckt.vsource("VDD", vdd, Circuit::GND, Waveform::dc(VDD));
    for (i, &d) in duties.iter().enumerate() {
        let input = ckt.node(&format!("in{i}"));
        ckt.vsource(
            &format!("VIN{i}"),
            input,
            Circuit::GND,
            Waveform::pwm(VDD, FREQ, d),
        );
        for b in 0..3u32 {
            let r_on = ROUT / (1u32 << b) as f64;
            ckt.switch(
                &format!("SU{i}b{b}"),
                vdd,
                out,
                input,
                Circuit::GND,
                VDD / 2.0,
                r_on,
                R_OFF,
            );
            ckt.switch(
                &format!("SD{i}b{b}"),
                out,
                Circuit::GND,
                Circuit::GND,
                input,
                -VDD / 2.0,
                r_on,
                R_OFF,
            );
        }
    }
    ckt.capacitor("COUT", out, Circuit::GND, 10e-12);
    (ckt, out)
}

#[test]
fn wrapper_dc_operating_point_is_bitwise_identical_to_session() {
    let (ckt, _, _) = mos_inverter();
    let legacy = dc_operating_point(&ckt).expect("legacy op converges");
    let session = Session::new(&ckt)
        .dc_operating_point()
        .expect("session op converges");
    assert_eq!(legacy.raw(), session.raw());
}

#[test]
fn wrapper_dc_sweep_is_bitwise_identical_to_session() {
    let (ckt, out, vin) = mos_inverter();
    let points = mssim::sweep::linspace(0.0, VDD, 21);
    let legacy = dc_sweep(ckt.clone(), vin, &points).expect("legacy sweep converges");
    let session = Session::new(&ckt)
        .dc_sweep(vin, &points)
        .expect("session sweep converges");
    assert_eq!(legacy.values(), session.values());
    assert_eq!(legacy.transfer(out), session.transfer(out));
}

#[test]
fn wrapper_ac_analysis_is_bitwise_identical_to_session() {
    let (ckt, out, vin) = mos_inverter();
    let freqs = mssim::sweep::logspace(1e3, 1e9, 31);
    let legacy = ac_analysis(&ckt, vin, &freqs).expect("legacy ac converges");
    let session = Session::new(&ckt)
        .ac(vin, &freqs)
        .expect("session ac converges");
    assert_eq!(legacy.magnitude(out), session.magnitude(out));
    assert_eq!(legacy.phase_deg(out), session.phase_deg(out));
}

#[test]
fn wrapper_noise_analysis_is_bitwise_identical_to_session() {
    let (ckt, out, _) = mos_inverter();
    let freqs = mssim::sweep::logspace(1e3, 1e9, 11);
    let legacy = noise_analysis(&ckt, out, &freqs).expect("legacy noise converges");
    let session = Session::new(&ckt)
        .noise(out, &freqs)
        .expect("session noise converges");
    assert_eq!(legacy.density(), session.density());
}

#[test]
fn wrapper_transient_is_bitwise_identical_to_session() {
    let (ckt, out) = switch_adder_3x3();
    let tran = Transient::new(10e-12, 200.0 * 10e-12)
        .use_initial_conditions()
        .record_every(4);
    let legacy = tran.run(&ckt).expect("legacy transient converges");
    let session = Session::new(&ckt)
        .transient(&tran)
        .expect("session transient converges");
    assert_eq!(legacy.time(), session.time());
    assert_eq!(legacy.voltage(out).values(), session.voltage(out).values());
}

/// The acceptance-gated cross-check: Newton-iteration and cache-hit
/// counters derived from the event stream agree with the solver's own
/// `SolverStats`, surfaced on the end-of-analysis [`Event::SolverReport`].
#[test]
fn telemetry_counters_match_solver_stats_on_adder_transient() {
    let (ckt, _) = switch_adder_3x3();
    let tran = Transient::new(10e-12, 500.0 * 10e-12).record_every(16);
    let mut rec = MemoryRecorder::new();
    Session::new(&ckt)
        .observe(&mut rec)
        .transient(&tran)
        .expect("transient converges");
    let (mut iterations, mut bypasses, mut factorizations, mut back_substitutions) = (0, 0, 0, 0);
    let mut reports = 0usize;
    for e in rec.events() {
        if let Event::SolverReport { counters, .. } = e {
            iterations += counters.iterations;
            bypasses += counters.bypasses;
            factorizations += counters.factorizations;
            back_substitutions += counters.back_substitutions;
            reports += 1;
        }
    }
    // One report per analysis: the transient plus its nested DC op.
    assert_eq!(reports, 2);
    assert!(iterations > 0, "solver must have iterated");
    assert_eq!(rec.counter_value("newton.iterations"), iterations);
    assert_eq!(rec.counter_value("plan.bypasses"), bypasses);
    assert_eq!(rec.counter_value("plan.factorizations"), factorizations);
    assert_eq!(
        rec.counter_value("plan.back_substitutions"),
        back_substitutions
    );
    // And the step accounting is exact for a fixed-step run.
    assert_eq!(rec.counter_value("tran.steps_accepted"), 500);
}
