//! Property-based golden equivalence: on randomly generated RC and RLC
//! ladder networks, the compiled-plan solver must reproduce the naive
//! reference assembler's transient waveforms within 1e-12 (in practice,
//! bitwise — the plan replays the reference's accumulation order).

use mssim::prelude::*;
use proptest::prelude::*;

/// Builds an n-stage ladder driven by a PWM source. Per stage: a series
/// resistor, optionally a series inductor, and a capacitor to ground.
fn ladder(
    stages: usize,
    r_ohms: &[f64],
    c_farads: &[f64],
    with_inductors: bool,
    duty: f64,
) -> (Circuit, Vec<NodeId>) {
    let mut ckt = Circuit::new();
    let mut prev = ckt.node("n0");
    let mut probes = vec![prev];
    ckt.vsource("VIN", prev, Circuit::GND, Waveform::pwm(2.5, 100e6, duty));
    for s in 0..stages {
        let node = ckt.node(&format!("n{}", s + 1));
        if with_inductors && s % 2 == 1 {
            let mid = ckt.node(&format!("m{}", s + 1));
            ckt.resistor(&format!("R{s}"), prev, mid, r_ohms[s]);
            ckt.inductor(&format!("L{s}"), mid, node, 50e-9);
            probes.push(mid);
        } else {
            ckt.resistor(&format!("R{s}"), prev, node, r_ohms[s]);
        }
        ckt.capacitor(&format!("C{s}"), node, Circuit::GND, c_farads[s]);
        probes.push(node);
        prev = node;
    }
    (ckt, probes)
}

fn max_divergence(ckt: &Circuit, probes: &[NodeId], dt: f64, steps: usize) -> f64 {
    let tran = |reference: bool| {
        Transient::new(dt, steps as f64 * dt)
            .use_initial_conditions()
            .with_reference_solver(reference)
    };
    let plan = Session::new(ckt)
        .transient(&tran(false))
        .expect("plan converges");
    let reference = Session::new(ckt)
        .transient(&tran(true))
        .expect("reference converges");
    let mut worst = 0.0f64;
    for &node in probes {
        for (a, b) in plan
            .voltage(node)
            .values()
            .iter()
            .zip(reference.voltage(node).values())
        {
            worst = worst.max((a - b).abs());
        }
    }
    worst
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Random RC ladders: plan == reference within 1e-12.
    #[test]
    fn rc_ladder_plan_matches_reference(
        stages in 1usize..6,
        r_ohms in prop::collection::vec(100.0f64..10e3, 6),
        c_farads in prop::collection::vec(0.1e-12f64..10e-12, 6),
        duty in 0.1f64..0.9,
    ) {
        let (ckt, probes) = ladder(stages, &r_ohms, &c_farads, false, duty);
        let d = max_divergence(&ckt, &probes, 100e-12, 120);
        prop_assert!(d <= 1e-12, "RC ladder diverges by {d:e}");
    }

    /// Random RLC ladders (inductor on every other stage): the extra
    /// branch-current rows must not disturb equivalence.
    #[test]
    fn rlc_ladder_plan_matches_reference(
        stages in 2usize..6,
        r_ohms in prop::collection::vec(100.0f64..10e3, 6),
        c_farads in prop::collection::vec(0.1e-12f64..10e-12, 6),
        duty in 0.1f64..0.9,
    ) {
        let (ckt, probes) = ladder(stages, &r_ohms, &c_farads, true, duty);
        let d = max_divergence(&ckt, &probes, 100e-12, 120);
        prop_assert!(d <= 1e-12, "RLC ladder diverges by {d:e}");
    }
}
