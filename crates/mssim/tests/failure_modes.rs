//! Failure injection: the simulator must *diagnose* broken inputs, not
//! hang or return garbage.

use mssim::prelude::*;

/// Two ideal voltage sources fighting over one node: the pre-flight lint
/// names both sources instead of letting the solver hit a singular pivot.
#[test]
fn conflicting_sources_are_singular() {
    let mut ckt = Circuit::new();
    let a = ckt.node("a");
    ckt.vsource("V1", a, Circuit::GND, Waveform::dc(1.0));
    ckt.vsource("V2", a, Circuit::GND, Waveform::dc(2.0));
    ckt.resistor("R1", a, Circuit::GND, 1e3);
    let err = Session::new(&ckt).dc_operating_point().unwrap_err();
    match &err {
        Error::LintRejected { violations, .. } => {
            assert!(
                violations
                    .iter()
                    .any(|v| v.contains("MS005") && v.contains("V1") && v.contains("V2")),
                "expected MS005 naming both sources, got {violations:?}"
            );
        }
        other => panic!("expected lint rejection, got {other}"),
    }
    // The raw solver still degrades safely if the lint is silenced. The
    // structural pass independently proves this topology singular (both
    // branch-current columns can only match the one KCL row), so it has
    // to be allowed too before anything reaches the solver.
    ckt.set_lint_config(
        LintConfig::new()
            .allow(LintCode::VoltageSourceLoop)
            .allow(LintCode::StructurallySingular),
    );
    let err = Session::new(&ckt).dc_operating_point().unwrap_err();
    assert!(
        matches!(err, Error::SingularMatrix { .. }),
        "expected singular matrix, got {err}"
    );
}

/// A loop of ideal voltage sources is rejected for transient too.
#[test]
fn source_loop_fails_in_transient() {
    let mut ckt = Circuit::new();
    let a = ckt.node("a");
    let b = ckt.node("b");
    ckt.vsource("V1", a, Circuit::GND, Waveform::dc(1.0));
    ckt.vsource("V2", b, a, Waveform::dc(0.5));
    ckt.vsource("V3", b, Circuit::GND, Waveform::dc(2.0)); // loop closed
    ckt.resistor("RL", b, Circuit::GND, 1e3);
    let err = Session::new(&ckt)
        .transient(&Transient::new(1e-9, 10e-9))
        .unwrap_err();
    assert!(
        matches!(
            err,
            Error::LintRejected {
                analysis: "transient",
                ..
            }
        ),
        "{err}"
    );
}

/// An island disconnected from ground is caught by the pre-flight lint
/// before any numerics run.
#[test]
fn disconnected_island_is_rejected() {
    let mut ckt = Circuit::new();
    let a = ckt.node("a");
    ckt.vsource("V1", a, Circuit::GND, Waveform::dc(1.0));
    ckt.resistor("R1", a, Circuit::GND, 1e3);
    let x = ckt.node("x");
    let y = ckt.node("y");
    ckt.resistor("R2", x, y, 1e3);
    ckt.capacitor("C1", y, x, 1e-12);
    for result in [
        Session::new(&ckt).dc_operating_point().map(|_| ()),
        Session::new(&ckt)
            .transient(&Transient::new(1e-9, 10e-9))
            .map(|_| ()),
    ] {
        let err = result.unwrap_err();
        assert!(
            matches!(err, Error::LintRejected { .. }),
            "expected lint rejection, got {err}"
        );
        assert!(err.to_string().contains("not connected to ground"));
        assert!(err.to_string().contains("MS002"));
    }
}

/// Starving Newton of iterations produces a clean non-convergence error
/// that reports the failing time point.
#[test]
fn iteration_starvation_reports_nonconvergence() {
    let mut ckt = Circuit::new();
    let vdd = ckt.node("vdd");
    let inp = ckt.node("in");
    let out = ckt.node("out");
    ckt.vsource("VDD", vdd, Circuit::GND, Waveform::dc(2.5));
    ckt.vsource("VIN", inp, Circuit::GND, Waveform::pwm(2.5, 100e6, 0.5));
    ckt.mosfet(
        "MP",
        out,
        inp,
        vdd,
        mssim::elements::MosParams::pmos(865e-9, 1.2e-6),
    );
    ckt.mosfet(
        "MN",
        out,
        inp,
        Circuit::GND,
        mssim::elements::MosParams::nmos(320e-9, 1.2e-6),
    );
    ckt.capacitor("CL", out, Circuit::GND, 1e-13);
    let err = Session::new(&ckt)
        .transient(
            &Transient::new(1e-10, 100e-9)
                .use_initial_conditions()
                .with_max_iterations(1),
        )
        .unwrap_err();
    match err {
        Error::NonConvergence {
            analysis,
            iterations,
            ..
        } => {
            assert_eq!(analysis, "transient");
            assert_eq!(iterations, 1);
        }
        other => panic!("expected non-convergence, got {other}"),
    }
}

/// Probing a nonexistent branch current is an error, not a panic.
#[test]
fn bad_probe_is_an_error() {
    let mut ckt = Circuit::new();
    let a = ckt.node("a");
    ckt.vsource("V1", a, Circuit::GND, Waveform::dc(1.0));
    let r = ckt.resistor("R1", a, Circuit::GND, 1e3);
    let op = Session::new(&ckt).dc_operating_point().unwrap();
    let err = op.branch_current(r).unwrap_err();
    assert!(matches!(err, Error::UnknownProbe { .. }));
}

/// Extremely stiff circuits (τ spanning 9 decades) still run without
/// blowing up — the implicit integrators are unconditionally stable.
#[test]
fn stiff_circuit_remains_stable() {
    let mut ckt = Circuit::new();
    let a = ckt.node("a");
    let fast = ckt.node("fast");
    let slow = ckt.node("slow");
    ckt.vsource("V1", a, Circuit::GND, Waveform::dc(1.0));
    ckt.resistor("R1", a, fast, 1.0); // τ = 1 ns
    ckt.capacitor("C1", fast, Circuit::GND, 1e-9);
    ckt.resistor("R2", a, slow, 1e6); // τ = 1 ms
    ckt.capacitor("C2", slow, Circuit::GND, 1e-9);
    // Step chosen way beyond the fast time constant. Backward Euler is
    // L-stable: the unresolved fast mode is annihilated, not rung.
    let result = Session::new(&ckt)
        .transient(
            &Transient::new(1e-6, 200e-6)
                .use_initial_conditions()
                .with_method(IntegrationMethod::BackwardEuler),
        )
        .unwrap();
    let v_fast = result.voltage(fast);
    let v_slow = result.voltage(slow);
    // Fast node snapped to the rail without oscillating.
    assert!((v_fast.last_value() - 1.0).abs() < 1e-6);
    assert!(v_fast.max() < 1.0 + 1e-6, "no overshoot allowed");
    // Slow node still charging at 200 µs (τ = 1 ms); BE at h = τ/1000 is
    // plenty accurate here.
    let expected = 1.0 - f64::exp(-200e-6 / 1e-3);
    assert!((v_slow.last_value() - expected).abs() < 5e-3);

    // Trapezoidal on the same grid stays bounded (A-stable) even though
    // the fast mode rings; it must still end within a millivolt.
    let result = Session::new(&ckt)
        .transient(&Transient::new(1e-6, 200e-6).use_initial_conditions())
        .unwrap();
    let v_fast = result.voltage(fast);
    assert!(v_fast.max() < 1.01 && v_fast.min() > -0.01, "bounded");
    assert!((v_fast.last_value() - 1.0).abs() < 1e-2);
}

/// Zero-valued parameters are rejected at construction, never reaching
/// the solver.
#[test]
fn invalid_parameters_panic_at_construction() {
    use std::panic::catch_unwind;
    let r = catch_unwind(|| {
        let mut ckt = Circuit::new();
        let a = ckt.node("a");
        ckt.resistor("R1", a, Circuit::GND, 0.0);
    });
    assert!(r.is_err());
    let c = catch_unwind(|| {
        let mut ckt = Circuit::new();
        let a = ckt.node("a");
        ckt.capacitor("C1", a, Circuit::GND, -1e-12);
    });
    assert!(c.is_err());
    let l = catch_unwind(|| {
        let mut ckt = Circuit::new();
        let a = ckt.node("a");
        ckt.inductor("L1", a, Circuit::GND, f64::NAN);
    });
    assert!(l.is_err());
}
