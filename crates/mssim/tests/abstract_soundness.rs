//! Property-based soundness tests of the abstract interpreter
//! ([`mssim::analyze`]): on random RC/RLC/switch circuits the concretely
//! assembled DC stamp always lies inside the abstract intervals computed
//! from point-width ranges, and widening the declared ranges only ever
//! widens the intervals.

use mssim::analyze::{abstract_dc_stamp, concrete_dc_stamp, plan_key, Ranges};
use mssim::prelude::*;
use proptest::prelude::*;

/// Deterministic xorshift so generated circuits are reproducible from the
/// proptest-chosen seed alone.
struct Rng(u64);

impl Rng {
    fn new(seed: u64) -> Self {
        Rng(seed.wrapping_mul(0x9E3779B97F4A7C15) | 1)
    }

    fn next(&mut self) -> u64 {
        self.0 ^= self.0 << 13;
        self.0 ^= self.0 >> 7;
        self.0 ^= self.0 << 17;
        self.0
    }
}

/// A random but well-formed RLC/switch ladder: every node reaches ground
/// through resistors, one supply, occasional capacitors, inductors and
/// voltage-controlled switches (some with both controls grounded, so the
/// static switch resolution path is exercised too).
fn ladder(seed: u64, n: usize) -> Circuit {
    let mut rng = Rng::new(seed);
    let mut ckt = Circuit::new();
    let top = ckt.node("vdd");
    ckt.vsource("V0", top, Circuit::GND, Waveform::dc(2.5));
    let mut nodes = vec![Circuit::GND, top];
    for i in 0..n {
        let nd = ckt.node(&format!("n{i}"));
        let anchor = nodes[(rng.next() % nodes.len() as u64) as usize];
        let ohms = 1e3 * (1 + rng.next() % 100) as f64;
        ckt.resistor(&format!("R{i}"), nd, anchor, ohms);
        match rng.next() % 4 {
            0 => {
                ckt.capacitor(&format!("C{i}"), nd, Circuit::GND, 1e-12);
            }
            1 => {
                let other = nodes[(rng.next() % nodes.len() as u64) as usize];
                if other != nd {
                    ckt.inductor(&format!("L{i}"), nd, other, 1e-6);
                }
            }
            2 => {
                // Half the switches get live controls, half are tied to
                // ground on both control terminals (statically resolved).
                let ctrl = if rng.next().is_multiple_of(2) {
                    nodes[(rng.next() % nodes.len() as u64) as usize]
                } else {
                    Circuit::GND
                };
                let threshold = if rng.next().is_multiple_of(2) {
                    1.25
                } else {
                    -1.25
                };
                ckt.switch(
                    &format!("S{i}"),
                    nd,
                    Circuit::GND,
                    ctrl,
                    Circuit::GND,
                    threshold,
                    5e3,
                    1e12,
                );
            }
            _ => {}
        }
        nodes.push(nd);
    }
    ckt
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Soundness: with point-width ranges, every concretely assembled DC
    /// stamp value lies inside its abstract interval.
    #[test]
    fn concrete_stamp_lies_inside_point_abstraction(seed in 0u64..10_000, n in 1usize..10) {
        let ckt = ladder(seed, n);
        let (size, mat, rhs) = concrete_dc_stamp(&ckt);
        let stamp = abstract_dc_stamp(&ckt, &Ranges::point());
        prop_assert_eq!(stamp.size(), size);
        prop_assert!(
            stamp.encloses_concrete(&mat, &rhs),
            "concrete stamp escapes the abstract interval (seed {seed}, n {n})"
        );
    }

    /// Soundness under widening: the concrete stamp also lies inside every
    /// widened envelope, not just the point one.
    #[test]
    fn concrete_stamp_lies_inside_widened_abstraction(seed in 0u64..10_000, n in 1usize..10) {
        let ckt = ladder(seed, n);
        let (_, mat, rhs) = concrete_dc_stamp(&ckt);
        let ranges = Ranges::point()
            .with_tolerance(0.05)
            .with_supply_scale(0.9, 1.0);
        let stamp = abstract_dc_stamp(&ckt, &ranges);
        prop_assert!(stamp.encloses_concrete(&mat, &rhs));
    }

    /// Monotonicity: widening the declared ranges only widens intervals —
    /// every interval of the tighter envelope is enclosed by the wider
    /// one's.
    #[test]
    fn widening_ranges_only_widens_intervals(seed in 0u64..10_000, n in 1usize..10) {
        let ckt = ladder(seed, n);
        let tight = abstract_dc_stamp(&ckt, &Ranges::point().with_tolerance(0.01));
        let wide = abstract_dc_stamp(&ckt, &Ranges::point().with_tolerance(0.05));
        prop_assert!(
            wide.encloses(&tight),
            "wider tolerance produced a narrower interval (seed {seed}, n {n})"
        );
        let supply_wide = abstract_dc_stamp(
            &ckt,
            &Ranges::point().with_tolerance(0.05).with_supply_scale(0.8, 1.0),
        );
        prop_assert!(supply_wide.encloses(&wide));
    }

    /// The canonical plan key is a pure function of the circuit: two
    /// builds from the same seed agree, and the key is insensitive to
    /// widened analysis ranges (it describes the circuit, not the
    /// envelope).
    #[test]
    fn plan_key_is_reproducible(seed in 0u64..10_000, n in 1usize..10) {
        let a = ladder(seed, n);
        let b = ladder(seed, n);
        prop_assert_eq!(plan_key(&a), plan_key(&b));
    }

    /// Clean random ladders never produce a deny-level analyze finding,
    /// even over a widened envelope.
    #[test]
    fn well_formed_circuits_analyze_deny_clean(seed in 0u64..10_000, n in 1usize..10) {
        let ckt = ladder(seed, n);
        let ranges = Ranges::point()
            .with_tolerance(0.05)
            .with_supply_scale(0.9, 1.0);
        let report = analyze_circuit(&ckt, &ranges);
        prop_assert!(!report.has_denials(), "unexpected denials:\n{report}");
    }
}
