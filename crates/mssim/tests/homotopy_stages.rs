//! DC homotopy fallback stages, forced deliberately.
//!
//! Newton damping clamps updates to 0.5 V per iteration, so a 2.5 V rail
//! needs at least five iterations from a cold start. Starving the DC
//! budget with `Session::with_dc_max_iterations` therefore pushes the
//! operating-point solve down the homotopy ladder on demand: the direct
//! solve and the gmin ladder (which still enforce the full-rail source
//! rows) fail, while source stepping — which ramps the rails in 0.25 V
//! increments — survives small budgets.

use mssim::prelude::*;
use mssim::telemetry::Event;

/// The paper's CMOS inverter, input parked at mid-rail so both devices
/// conduct and the DC solve is genuinely nonlinear.
fn cmos_inverter() -> (Circuit, NodeId) {
    let mut ckt = Circuit::new();
    let vdd = ckt.node("vdd");
    let inp = ckt.node("in");
    let out = ckt.node("out");
    ckt.vsource("VDD", vdd, Circuit::GND, Waveform::dc(2.5));
    ckt.vsource("VIN", inp, Circuit::GND, Waveform::dc(1.25));
    ckt.mosfet(
        "MP",
        out,
        inp,
        vdd,
        mssim::elements::MosParams::pmos(865e-9, 1.2e-6),
    );
    ckt.mosfet(
        "MN",
        out,
        inp,
        Circuit::GND,
        mssim::elements::MosParams::nmos(320e-9, 1.2e-6),
    );
    (ckt, out)
}

fn homotopy_events(rec: &MemoryRecorder) -> Vec<(&'static str, u32, bool)> {
    rec.events()
        .iter()
        .filter_map(|e| match e {
            Event::Homotopy {
                stage,
                step,
                converged,
                ..
            } => Some((*stage, *step, *converged)),
            _ => None,
        })
        .collect()
}

/// A one-iteration budget kills every stage in order: the final error
/// names the last stage tried and counts the continuation attempts, and
/// each stage's failure is visible as a `Homotopy` telemetry event.
#[test]
fn starved_budget_walks_and_exhausts_every_stage() {
    let (ckt, _) = cmos_inverter();
    let mut rec = MemoryRecorder::new();
    let err = Session::new(&ckt)
        .observe(&mut rec)
        .with_dc_max_iterations(1)
        .dc_operating_point()
        .unwrap_err();
    match &err {
        Error::NonConvergence {
            analysis,
            iterations,
            stage,
            attempts,
            ..
        } => {
            assert_eq!(*analysis, "dc");
            assert_eq!(*iterations, 1);
            assert_eq!(*stage, "source", "the ladder dies in its last stage");
            // direct + first gmin rung + first source step, all failed.
            assert_eq!(*attempts, 3);
        }
        other => panic!("expected NonConvergence, got {other}"),
    }
    // The enriched context also reads well for humans.
    let msg = err.to_string();
    assert!(msg.contains("stage: source"), "{msg}");
    assert!(msg.contains("3 continuation attempts"), "{msg}");

    // Telemetry saw each stage fail in ladder order.
    let events = homotopy_events(&rec);
    assert_eq!(
        events,
        vec![
            ("direct", 0, false),
            ("gmin", 0, false),
            ("source", 1, false),
        ]
    );
}

/// A budget of seven is one short of what the direct solve needs (five
/// damped rail-moving iterations plus nonlinear settling) but enough for
/// each warm-started gmin rung: the solve must fail the direct stage and
/// walk the whole gmin ladder to a converged answer.
#[test]
fn gmin_ladder_rescues_a_tight_budget() {
    let (ckt, out) = cmos_inverter();
    // Reference answer with the default budget.
    let golden = Session::new(&ckt).dc_operating_point().unwrap();

    let mut rec = MemoryRecorder::new();
    let op = Session::new(&ckt)
        .observe(&mut rec)
        .with_dc_max_iterations(7)
        .dc_operating_point()
        .expect("the gmin ladder should survive a 7-iteration budget");
    assert!(
        (op.voltage(out) - golden.voltage(out)).abs() < 1e-6,
        "rescued operating point must match the golden one"
    );

    let events = homotopy_events(&rec);
    assert_eq!(events.first(), Some(&("direct", 0, false)));
    let gmin_steps: Vec<_> = events
        .iter()
        .filter(|(stage, _, _)| *stage == "gmin")
        .collect();
    assert_eq!(gmin_steps.len(), 13, "all thirteen gmin rungs should run");
    assert!(gmin_steps.iter().all(|(_, _, converged)| *converged));
    assert!(
        !events.iter().any(|(stage, _, _)| *stage == "source"),
        "source stepping must not run once gmin converges: {events:?}"
    );
}

/// A budget of two gets partway up the source-stepping ramp (the early
/// 0.25 V increments are nearly linear) before the MOS turn-on knee
/// kills it: the error's `attempts` field counts every continuation
/// solve burned across all three stages.
#[test]
fn source_stepping_progress_is_counted_on_failure() {
    let (ckt, _) = cmos_inverter();
    let mut rec = MemoryRecorder::new();
    let err = Session::new(&ckt)
        .observe(&mut rec)
        .with_dc_max_iterations(2)
        .dc_operating_point()
        .unwrap_err();
    let events = homotopy_events(&rec);
    assert_eq!(
        events,
        vec![
            ("direct", 0, false),
            ("gmin", 0, false),
            ("source", 1, true),
            ("source", 2, true),
            ("source", 3, true),
            ("source", 4, false),
        ]
    );
    match err {
        Error::NonConvergence {
            stage, attempts, ..
        } => {
            assert_eq!(stage, "source");
            assert_eq!(attempts, events.len());
        }
        other => panic!("expected NonConvergence, got {other}"),
    }
}

/// With the default budget the direct solve wins immediately — the knob
/// changes nothing it shouldn't.
#[test]
fn default_budget_converges_directly() {
    let (ckt, out) = cmos_inverter();
    let mut rec = MemoryRecorder::new();
    let op = Session::new(&ckt)
        .observe(&mut rec)
        .dc_operating_point()
        .unwrap();
    // The inverter is balanced near mid-rail; just sanity-bound it.
    assert!(op.voltage(out) > 0.0 && op.voltage(out) < 2.5);
    assert_eq!(homotopy_events(&rec), vec![("direct", 0, true)]);
}

#[test]
#[should_panic(expected = "DC iteration budget must be at least 1")]
fn zero_budget_is_rejected() {
    let (ckt, _) = cmos_inverter();
    let _ = Session::new(&ckt).with_dc_max_iterations(0);
}
