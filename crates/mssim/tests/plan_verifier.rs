//! Integration tests of the static verifier: structurally singular
//! fixtures are denied with the documented MS020-series code, healthy
//! circuits verify end to end, and randomly generated RC/RLC/MOS
//! networks either lint-reject or compile to verifier-accepted plans.
//!
//! The PL-code mutation tests (corrupting a compiled plan's indices,
//! tiers and cache hookup) live next to the verifier in
//! `src/verify.rs`, where the plan internals are visible; this file
//! exercises the public surface.

use mssim::lint::{lint, LintCode, LintContext, Severity};
use mssim::prelude::*;
use proptest::prelude::*;

/// Deterministic xorshift so generated circuits are reproducible from the
/// proptest-chosen seed alone.
struct Rng(u64);

impl Rng {
    fn new(seed: u64) -> Self {
        Rng(seed.wrapping_mul(0x9E3779B97F4A7C15) | 1)
    }

    fn next(&mut self) -> u64 {
        self.0 ^= self.0 << 13;
        self.0 ^= self.0 >> 7;
        self.0 ^= self.0 << 17;
        self.0
    }

    fn pick(&mut self, n: usize) -> usize {
        (self.next() % n as u64) as usize
    }
}

// --- structural fixtures -------------------------------------------------

/// A VCVS that controls itself with unit gain: its constraint row cancels
/// to nothing, so the MNA matrix is singular for every element value.
fn degenerate_vcvs() -> Circuit {
    let mut ckt = Circuit::new();
    let a = ckt.node("a");
    let b = ckt.node("b");
    ckt.vsource("V1", a, Circuit::GND, Waveform::dc(1.0));
    ckt.resistor("R1", a, b, 1e3);
    ckt.resistor("R2", b, Circuit::GND, 1e3);
    ckt.vcvs("E1", a, b, a, b, 1.0);
    ckt
}

#[test]
fn structurally_singular_fixture_denied_with_ms020() {
    let report = lint(&degenerate_vcvs());
    let d = report
        .denials()
        .find(|d| d.code == LintCode::StructurallySingular)
        .expect("MS020 must fire");
    assert_eq!(d.code.id(), "MS020");
    assert!(d.message.contains("structurally singular"), "{}", d.message);
}

#[test]
fn structurally_singular_fixture_rejected_by_preflight() {
    let err = Session::new(&degenerate_vcvs())
        .dc_operating_point()
        .unwrap_err();
    match err {
        Error::LintRejected { violations, .. } => {
            assert!(
                violations.iter().any(|v| v.contains("MS020")),
                "{violations:?}"
            );
        }
        other => panic!("expected LintRejected, got {other:?}"),
    }
}

#[test]
fn vcvs_loop_denied_with_ms021() {
    // Two controlled sources forcing the same node pair: the pattern
    // still admits a perfect matching, only the incidence-cycle pass
    // proves the branch columns linearly dependent.
    let mut ckt = Circuit::new();
    let a = ckt.node("a");
    let b = ckt.node("b");
    let c = ckt.node("c");
    ckt.vsource("V1", c, Circuit::GND, Waveform::dc(1.0));
    ckt.resistor("Rc", c, Circuit::GND, 1e3);
    ckt.vcvs("E1", a, b, c, Circuit::GND, 2.0);
    ckt.vcvs("E2", a, b, c, Circuit::GND, 3.0);
    ckt.resistor("Ra", a, Circuit::GND, 1e3);
    ckt.resistor("Rb", b, Circuit::GND, 1e3);
    let report = lint(&ckt);
    let d = report
        .denials()
        .find(|d| d.code == LintCode::DependentVoltageConstraints)
        .expect("MS021 must fire");
    assert_eq!(d.code.id(), "MS021");
}

#[test]
fn conditioning_warning_can_be_promoted_to_deny() {
    let mut ckt = Circuit::new();
    let a = ckt.node("a");
    let b = ckt.node("b");
    let c = ckt.node("c");
    ckt.vsource("V1", a, Circuit::GND, Waveform::dc(1.0));
    ckt.resistor("Rsmall", a, b, 1e-3);
    ckt.resistor("Rhuge", b, c, 1e12);
    ckt.resistor("Rload", c, Circuit::GND, 1e12);

    let report = lint(&ckt);
    assert!(
        report
            .diagnostics()
            .iter()
            .any(|d| d.code == LintCode::IllConditionedBlock && d.severity == Severity::Warn),
        "MS022 should warn by default:\n{report}"
    );
    assert!(!report.has_denials(), "{report}");

    ckt.lint_config_mut()
        .set_severity(LintCode::IllConditionedBlock, Severity::Deny);
    assert!(matches!(
        Session::new(&ckt).dc_operating_point(),
        Err(Error::LintRejected { .. })
    ));
}

// --- end-to-end verification --------------------------------------------

#[test]
fn healthy_mixed_circuit_verifies_end_to_end() {
    let mut ckt = Circuit::new();
    let vin = ckt.node("in");
    let mid = ckt.node("mid");
    let out = ckt.node("out");
    ckt.vsource("V1", vin, Circuit::GND, Waveform::pwm(2.5, 500e6, 0.5));
    ckt.resistor("R1", vin, mid, 1e3);
    ckt.inductor("L1", mid, out, 1e-6);
    ckt.capacitor("C1", out, Circuit::GND, 1e-12);
    ckt.resistor("R2", out, Circuit::GND, 1e4);
    ckt.mosfet(
        "M1",
        mid,
        vin,
        Circuit::GND,
        MosParams::nmos(320e-9, 1.2e-6),
    );
    ckt.diode("D1", out, Circuit::GND, 1e-14, 1.0);
    ckt.vccs("G1", out, Circuit::GND, vin, Circuit::GND, 1e-4);

    let report = verify_circuit(&ckt);
    assert!(report.is_sound(), "{report}");
    assert!(report.plan_violations.is_empty());
}

#[test]
fn denied_circuit_reports_unsound_without_plan_violations() {
    let report = verify_circuit(&degenerate_vcvs());
    assert!(!report.is_sound());
    // Plans are never compiled for a denied circuit, so the violations
    // list stays empty: the lint denial is the finding.
    assert!(report.plan_violations.is_empty());
}

// --- generative coverage -------------------------------------------------

/// A random circuit mixing resistors, capacitors, inductors, MOSFETs,
/// diodes and controlled sources over a small node set. Nothing
/// guarantees it is well-formed: islands, shorts and singular topologies
/// all occur — which is the point.
fn random_circuit(seed: u64, n_nodes: usize, n_elems: usize) -> Circuit {
    let mut rng = Rng::new(seed);
    let mut ckt = Circuit::new();
    let mut nodes = vec![Circuit::GND];
    for i in 0..n_nodes {
        nodes.push(ckt.node(&format!("n{i}")));
    }
    ckt.vsource("V0", nodes[1], Circuit::GND, Waveform::dc(2.5));
    for i in 0..n_elems {
        let a = nodes[rng.pick(nodes.len())];
        let b = nodes[rng.pick(nodes.len())];
        match rng.pick(6) {
            0 => {
                ckt.resistor(&format!("R{i}"), a, b, 1e3 * (1 + rng.pick(100)) as f64);
            }
            1 => {
                ckt.capacitor(&format!("C{i}"), a, b, 1e-12 * (1 + rng.pick(10)) as f64);
            }
            2 => {
                ckt.inductor(&format!("L{i}"), a, b, 1e-6 * (1 + rng.pick(10)) as f64);
            }
            3 => {
                let g = nodes[rng.pick(nodes.len())];
                ckt.mosfet(&format!("M{i}"), a, g, b, MosParams::nmos(320e-9, 1.2e-6));
            }
            4 => {
                ckt.diode(&format!("D{i}"), a, b, 1e-14, 1.0);
            }
            _ => {
                let cp = nodes[rng.pick(nodes.len())];
                let cn = nodes[rng.pick(nodes.len())];
                ckt.vccs(&format!("G{i}"), a, b, cp, cn, 1e-4);
            }
        }
    }
    ckt
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// The central soundness property: every randomly generated circuit
    /// is either rejected by the lint pre-flight or compiles (in both
    /// modes) to plans the verifier accepts. There is no third outcome —
    /// a lint-clean circuit whose plan fails verification would be a
    /// compiler bug, and under `debug_assertions` the compile-time hook
    /// would already have panicked.
    #[test]
    fn random_circuits_lint_reject_or_verify_clean(
        seed in 0u64..10_000,
        n_nodes in 2usize..7,
        n_elems in 1usize..12,
    ) {
        let ckt = random_circuit(seed, n_nodes, n_elems);
        let report = verify_circuit(&ckt);
        prop_assert!(
            report.plan_violations.is_empty(),
            "lint-clean circuit compiled to an unsound plan:\n{report}"
        );
    }

    /// Transient lint context agrees: inductor voltage loops that only
    /// deny at DC must not make the transient structural pass deny.
    #[test]
    fn random_circuits_structurally_consistent_across_contexts(
        seed in 0u64..10_000,
        n_nodes in 2usize..7,
        n_elems in 1usize..12,
    ) {
        let ckt = random_circuit(seed, n_nodes, n_elems);
        let dc = mssim::lint::lint_with(&ckt, ckt.lint_config(), LintContext::Dc);
        let tran = mssim::lint::lint_with(&ckt, ckt.lint_config(), LintContext::TransientUic);
        // MS020 in the transient pattern implies MS020 in the DC pattern:
        // the DC pattern has strictly fewer nonzero candidates (inductor
        // shorts replace companion diagonals), so anything unmatched at
        // transient is unmatched at DC too.
        if tran.denials().any(|d| d.code == LintCode::StructurallySingular) {
            prop_assert!(
                dc.denials().any(|d| d.code == LintCode::StructurallySingular),
                "tran-only MS020:\ndc:\n{dc}\ntran:\n{tran}"
            );
        }
    }
}
