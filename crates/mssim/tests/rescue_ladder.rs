//! The transient convergence-rescue ladder: forced non-convergence must
//! degrade gracefully — recovered steps or a `Partial` outcome with the
//! waveform-so-far — and every rung must show up in telemetry.

use mssim::prelude::*;
use mssim::telemetry::Event;

/// CMOS inverter driven by a PWM gate signal: nonlinear enough that a
/// starved Newton budget fails at the switching edges.
fn cmos_inverter() -> (Circuit, NodeId) {
    let mut ckt = Circuit::new();
    let vdd = ckt.node("vdd");
    let inp = ckt.node("in");
    let out = ckt.node("out");
    ckt.vsource("VDD", vdd, Circuit::GND, Waveform::dc(2.5));
    ckt.vsource("VIN", inp, Circuit::GND, Waveform::pwm(2.5, 100e6, 0.5));
    ckt.mosfet(
        "MP",
        out,
        inp,
        vdd,
        mssim::elements::MosParams::pmos(865e-9, 1.2e-6),
    );
    ckt.mosfet(
        "MN",
        out,
        inp,
        Circuit::GND,
        mssim::elements::MosParams::nmos(320e-9, 1.2e-6),
    );
    ckt.capacitor("CL", out, Circuit::GND, 1e-13);
    (ckt, out)
}

fn starved_tran() -> Transient {
    Transient::new(1e-10, 100e-9)
        .use_initial_conditions()
        .with_max_iterations(1)
}

/// The exact fixture that makes `Session::transient` abort with
/// `NonConvergence` must, under the rescue ladder, come back as either a
/// fully recovered run or a `Partial` carrying the waveform-so-far —
/// never a hard error.
#[test]
fn forced_nonconvergence_degrades_gracefully() {
    let (ckt, _) = cmos_inverter();
    // Sanity: without the ladder this is a hard failure.
    let err = Session::new(&ckt).transient(&starved_tran()).unwrap_err();
    assert!(matches!(err, Error::NonConvergence { .. }), "{err}");

    let mut rec = MemoryRecorder::new();
    let outcome = Session::new(&ckt)
        .observe(&mut rec)
        .transient_rescued(&starved_tran(), &RescuePolicy::default())
        .expect("the ladder must not surface a hard NonConvergence");

    // Whatever the verdict, the ladder was exercised and reported.
    assert!(
        !outcome.rescues().is_clean(),
        "a starved Newton budget must trigger at least one rescue"
    );
    assert!(outcome.rescues().total_attempts() > 0);
    match &outcome {
        TransientOutcome::Complete { result, rescues } => {
            assert!(result.samples() > 1);
            assert_eq!(rescues.recovered(), rescues.incidents.len());
        }
        TransientOutcome::Partial {
            result,
            rescues,
            error,
        } => {
            // The waveform-so-far is present and time-consistent.
            assert!(result.samples() >= 1);
            let t_last = *result.time().last().unwrap();
            assert!(t_last < 100e-9, "partial run must stop before t_stop");
            // The fatal incident is recorded as unrecovered.
            let last = rescues.incidents.last().unwrap();
            assert!(last.recovered_by.is_none());
            match error {
                Error::NonConvergence {
                    stage, attempts, ..
                } => {
                    assert_eq!(*stage, "rescue");
                    assert_eq!(*attempts, last.attempts);
                }
                other => panic!("partial error must be NonConvergence, got {other}"),
            }
        }
    }

    // Telemetry: every rung tried is an event; the verdict is an event.
    let attempts = rec
        .events()
        .iter()
        .filter(|e| matches!(e, Event::RescueAttempt { .. }))
        .count();
    let outcomes = rec
        .events()
        .iter()
        .filter(|e| matches!(e, Event::RescueOutcome { .. }))
        .count();
    assert_eq!(attempts, outcome.rescues().total_attempts());
    assert_eq!(outcomes, outcome.rescues().incidents.len());
    assert_eq!(rec.counter_value("tran.rescue_attempts"), attempts as u64);
}

/// With a merely tight (not starved) budget the ladder should actually
/// recover: timestep cutting or the BE fallback rescues the switching
/// edges and the run completes end-to-end.
///
/// Budget choice: Newton damping clamps updates to 0.5 V/iteration, so
/// tracking a full 2.5 V input edge inside one 0.1 ns step needs ≥ 5
/// iterations — 4 fails there, while the quiet stretches (started from a
/// converged DC point) fit comfortably. Timestep cutting splits the edge
/// into sub-0.5 V slews, which is exactly what the `dt_cut` rung does.
#[test]
fn tight_budget_is_recovered_to_completion() {
    let (ckt, out) = cmos_inverter();
    let tran = Transient::new(1e-10, 20e-9).with_max_iterations(4);
    let mut rec = MemoryRecorder::new();
    let outcome = Session::new(&ckt)
        .observe(&mut rec)
        .transient_rescued(&tran, &RescuePolicy::default())
        .unwrap();
    match &outcome {
        TransientOutcome::Complete { result, rescues } => {
            // The full horizon was reached and the inverter still
            // inverts: the output swings across the supply.
            let t_last = *result.time().last().unwrap();
            assert!((t_last - 20e-9).abs() < 1e-12);
            let v = result.voltage(out);
            assert!(v.max() > 2.0 && v.min() < 0.5, "inverter must swing");
            // This budget fails without rescue, so the ladder must have
            // fired at least once and won every time.
            assert!(!rescues.is_clean());
            assert_eq!(rescues.recovered(), rescues.incidents.len());
            for i in &rescues.incidents {
                assert!(matches!(
                    i.recovered_by,
                    Some("dt_cut") | Some("be") | Some("gmin")
                ));
            }
        }
        TransientOutcome::Partial { error, .. } => {
            panic!("a 3-iteration budget should be rescuable, got partial: {error}")
        }
    }
    assert!(rec.counter_value("tran.rescue_recoveries") > 0);
    assert_eq!(rec.counter_value("tran.rescue_exhausted"), 0);
}

/// A healthy circuit under a rescue policy is a plain complete run with
/// a clean report and zero rescue telemetry — the ladder costs nothing
/// when nothing fails.
#[test]
fn healthy_run_reports_clean() {
    let mut ckt = Circuit::new();
    let a = ckt.node("a");
    let b = ckt.node("b");
    ckt.vsource("V1", a, Circuit::GND, Waveform::dc(1.0));
    ckt.resistor("R1", a, b, 1e3);
    ckt.capacitor("C1", b, Circuit::GND, 1e-9);
    let tran = Transient::new(1e-7, 10e-6).use_initial_conditions();
    let mut rec = MemoryRecorder::new();
    let outcome = Session::new(&ckt)
        .observe(&mut rec)
        .transient_rescued(&tran, &RescuePolicy::default())
        .unwrap();
    assert!(!outcome.is_partial());
    assert!(outcome.rescues().is_clean());
    assert_eq!(rec.counter_value("tran.rescue_attempts"), 0);
    // The rescued entry point returns the same waveform as the plain one.
    let plain = Session::new(&ckt).transient(&tran).unwrap();
    assert_eq!(plain.time(), outcome.result().time());
    assert_eq!(
        plain.voltage(b).values(),
        outcome.result().voltage(b).values()
    );
}

/// The adaptive stepper threads the same ladder: a starved budget on an
/// adaptive run must also degrade gracefully instead of erroring.
#[test]
fn adaptive_runs_are_rescued_too() {
    let (ckt, _) = cmos_inverter();
    let tran = Transient::new(1e-9, 50e-9)
        .use_initial_conditions()
        .with_max_iterations(2)
        .adaptive(AdaptiveConfig::default());
    assert!(Session::new(&ckt).transient(&tran).is_err());
    let mut rec = MemoryRecorder::new();
    let outcome = Session::new(&ckt)
        .observe(&mut rec)
        .transient_rescued(&tran, &RescuePolicy::default())
        .expect("adaptive rescue must not surface NonConvergence");
    assert!(!outcome.rescues().is_clean());
    assert!(rec.counter_value("tran.rescue_attempts") > 0);
    if let TransientOutcome::Partial { result, .. } = &outcome {
        assert!(result.samples() >= 1, "waveform-so-far must be kept");
    }
}
