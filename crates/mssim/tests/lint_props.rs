//! Property-based tests of the lint engine: well-formed circuits never
//! trip a deny-level lint, and seeded structural violations are always
//! caught with the documented code.

use mssim::lint::{lint, LintCode, Severity};
use mssim::prelude::*;
use proptest::prelude::*;

/// Deterministic xorshift so generated circuits are reproducible from the
/// proptest-chosen seed alone.
struct Rng(u64);

impl Rng {
    fn new(seed: u64) -> Self {
        Rng(seed.wrapping_mul(0x9E3779B97F4A7C15) | 1)
    }

    fn next(&mut self) -> u64 {
        self.0 ^= self.0 << 13;
        self.0 ^= self.0 >> 7;
        self.0 ^= self.0 << 17;
        self.0
    }
}

/// A random but well-formed ladder network: every node reaches ground
/// through resistors (so there is always a DC path), one supply, sane
/// component values, unique names.
fn ladder(seed: u64, n: usize) -> (Circuit, Vec<NodeId>) {
    let mut rng = Rng::new(seed);
    let mut ckt = Circuit::new();
    let top = ckt.node("vdd");
    ckt.vsource("V0", top, Circuit::GND, Waveform::dc(2.5));
    let mut nodes = vec![Circuit::GND, top];
    for i in 0..n {
        let nd = ckt.node(&format!("n{i}"));
        let anchor = nodes[(rng.next() % nodes.len() as u64) as usize];
        let ohms = 1e3 * (1 + rng.next() % 100) as f64;
        ckt.resistor(&format!("R{i}"), nd, anchor, ohms);
        if rng.next().is_multiple_of(3) {
            ckt.capacitor(&format!("C{i}"), nd, Circuit::GND, 1e-12);
        }
        nodes.push(nd);
    }
    (ckt, nodes)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Well-formed circuits never produce a deny-level diagnostic.
    #[test]
    fn well_formed_circuits_pass_lint(seed in 0u64..10_000, n in 1usize..10) {
        let (ckt, _) = ladder(seed, n);
        let report = lint(&ckt);
        prop_assert!(
            !report.has_denials(),
            "unexpected denials:\n{report}"
        );
        // And the analyses accept them: preflight must not reject.
        prop_assert!(Session::new(&ckt).dc_operating_point().is_ok());
    }

    /// A subgraph detached from ground is always caught as MS002, naming
    /// the stranded nodes.
    #[test]
    fn detached_subgraph_always_caught(seed in 0u64..10_000, n in 1usize..8) {
        let (mut ckt, _) = ladder(seed, n);
        let x = ckt.node("island_x");
        let y = ckt.node("island_y");
        ckt.resistor("Risland", x, y, 1e3);
        let report = lint(&ckt);
        let d = report
            .diagnostics()
            .iter()
            .find(|d| d.code == LintCode::FloatingNode)
            .expect("MS002 must fire");
        prop_assert_eq!(d.severity, Severity::Deny);
        prop_assert!(d.elements.iter().any(|e| e == "island_x"));
    }

    /// A second source in parallel with the supply is always caught as
    /// MS005 and names both sources.
    #[test]
    fn vsource_loop_always_caught(seed in 0u64..10_000, n in 1usize..8) {
        let (mut ckt, nodes) = ladder(seed, n);
        ckt.vsource("Vdup", nodes[1], Circuit::GND, Waveform::dc(1.0));
        let report = lint(&ckt);
        let d = report
            .diagnostics()
            .iter()
            .find(|d| d.code == LintCode::VoltageSourceLoop)
            .expect("MS005 must fire");
        prop_assert_eq!(d.severity, Severity::Deny);
        prop_assert!(d.elements.iter().any(|e| e == "V0"), "{:?}", d.elements);
        prop_assert!(d.elements.iter().any(|e| e == "Vdup"), "{:?}", d.elements);
    }

    /// A non-finite parameter anywhere in the circuit is always caught as
    /// MS008 and rejected by every analysis pre-flight.
    #[test]
    fn nan_parameter_always_caught(seed in 0u64..10_000, n in 1usize..8) {
        let (mut ckt, nodes) = ladder(seed, n);
        let mut rng = Rng::new(seed ^ 0xDEAD);
        let nd = nodes[1 + (rng.next() % (nodes.len() - 1) as u64) as usize];
        ckt.capacitor_with_ic("Cbad", nd, Circuit::GND, 1e-12, f64::NAN);
        let report = lint(&ckt);
        let d = report
            .diagnostics()
            .iter()
            .find(|d| d.code == LintCode::NonFiniteParameter)
            .expect("MS008 must fire");
        prop_assert_eq!(d.severity, Severity::Deny);
        prop_assert_eq!(&d.elements, &vec!["Cbad".to_owned()]);
        prop_assert!(matches!(
            Session::new(&ckt).dc_operating_point(),
            Err(Error::LintRejected { .. })
        ));
    }

    /// The full static verifier agrees with the lint engine on both
    /// clean and broken circuits: a clean ladder is sound end to end, a
    /// detached island makes the combined report unsound.
    #[test]
    fn verify_circuit_agrees_with_lint(seed in 0u64..10_000, n in 1usize..8) {
        let (mut ckt, _) = ladder(seed, n);
        prop_assert!(verify_circuit(&ckt).is_sound());
        let x = ckt.node("island_x");
        let y = ckt.node("island_y");
        ckt.resistor("Risland", x, y, 1e3);
        prop_assert!(!verify_circuit(&ckt).is_sound());
    }
}
