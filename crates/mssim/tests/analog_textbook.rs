//! Textbook-circuit validation: closed-form answers from a first analog
//! course, reproduced by the engine. These pin the simulator's physics
//! independently of the perceptron work.

use mssim::prelude::*;

/// Wheatstone bridge: balanced when R1/R2 = R3/R4.
#[test]
fn wheatstone_bridge_balance() {
    let solve = |r4: f64| -> f64 {
        let mut ckt = Circuit::new();
        let top = ckt.node("top");
        let left = ckt.node("left");
        let right = ckt.node("right");
        ckt.vsource("V1", top, Circuit::GND, Waveform::dc(5.0));
        ckt.resistor("R1", top, left, 1e3);
        ckt.resistor("R2", left, Circuit::GND, 2e3);
        ckt.resistor("R3", top, right, 10e3);
        ckt.resistor("R4", right, Circuit::GND, r4);
        let op = Session::new(&ckt).dc_operating_point().unwrap();
        op.voltage(left) - op.voltage(right)
    };
    // Balance: R4 = R2·R3/R1 = 20 kΩ. Lowering R4 drops the right node
    // (diff positive); raising it lifts the right node (diff negative).
    assert!(solve(20e3).abs() < 1e-9, "balanced bridge: {}", solve(20e3));
    assert!(solve(10e3) > 0.1, "detuned low: {}", solve(10e3));
    assert!(solve(40e3) < -0.1, "detuned high: {}", solve(40e3));
}

/// Current divider: parallel resistors split a source current by
/// conductance.
#[test]
fn current_divider() {
    let mut ckt = Circuit::new();
    let n = ckt.node("n");
    ckt.isource("I1", Circuit::GND, n, Waveform::dc(3e-3));
    ckt.resistor("R1", n, Circuit::GND, 1e3);
    ckt.resistor("R2", n, Circuit::GND, 2e3);
    let op = Session::new(&ckt).dc_operating_point().unwrap();
    // Req = 2/3 kΩ → v = 2 V; i1 = 2 mA, i2 = 1 mA.
    assert!((op.voltage(n) - 2.0).abs() < 1e-9);
}

/// Half-wave rectifier with smoothing capacitor: output rides near the
/// peak with small droop between peaks.
#[test]
fn halfwave_rectifier_with_smoothing() {
    let mut ckt = Circuit::new();
    let ac = ckt.node("ac");
    let out = ckt.node("out");
    ckt.vsource("V1", ac, Circuit::GND, Waveform::sine(0.0, 5.0, 1e3));
    ckt.diode("D1", ac, out, 1e-12, 1.0);
    ckt.capacitor("C1", out, Circuit::GND, 10e-6);
    ckt.resistor("RL", out, Circuit::GND, 10e3); // τ = 100 ms ≫ 1 ms period
    let result = Session::new(&ckt)
        .transient(&Transient::new(2e-6, 5e-3).use_initial_conditions())
        .unwrap();
    let v = result.voltage(out);
    // After the first peak the output sits near 5 V − V_diode.
    let v_end = v.last_value();
    assert!(v_end > 4.0 && v_end < 5.0, "v_out = {v_end}");
    // Droop between peaks stays small.
    let ripple = v.ripple_between(1.2e-3, 5e-3);
    assert!(ripple < 0.4, "ripple = {ripple}");
}

/// RC differentiator: for f ≪ 1/(2πRC) the output leads the input by
/// ~90° and scales with frequency.
#[test]
fn rc_highpass_gain_scales_with_frequency() {
    let r = 10e3;
    let c = 1e-9;
    let fc = 1.0 / (2.0 * std::f64::consts::PI * r * c); // ≈ 15.9 kHz
    let mut ckt = Circuit::new();
    let vin = ckt.node("in");
    let out = ckt.node("out");
    let src = ckt.vsource("V1", vin, Circuit::GND, Waveform::dc(0.0));
    ckt.capacitor("C1", vin, out, c);
    ckt.resistor("R1", out, Circuit::GND, r);
    let ac = Session::new(&ckt)
        .ac(src, &[fc / 100.0, fc / 10.0])
        .unwrap();
    let m = ac.magnitude(out);
    // One decade in frequency → 10× gain in the stopband.
    assert!((m[1] / m[0] - 10.0).abs() < 0.2, "{m:?}");
    // Phase leads toward +90°.
    let ph = ac.phase_deg(out)[0];
    assert!((ph - 90.0).abs() < 2.0, "phase {ph}");
}

/// Maximum power transfer: a loaded source delivers the most power when
/// R_load = R_source.
#[test]
fn maximum_power_transfer() {
    let power_into = |r_load: f64| -> f64 {
        let mut ckt = Circuit::new();
        let src = ckt.node("src");
        let out = ckt.node("out");
        ckt.vsource("V1", src, Circuit::GND, Waveform::dc(2.0));
        ckt.resistor("Rs", src, out, 1e3);
        ckt.resistor("RL", out, Circuit::GND, r_load);
        let op = Session::new(&ckt).dc_operating_point().unwrap();
        let v = op.voltage(out);
        v * v / r_load
    };
    let matched = power_into(1e3);
    assert!(matched > power_into(0.3e3));
    assert!(matched > power_into(3e3));
    // P_max = V²/(4·Rs) = 1 mW.
    assert!((matched - 1e-3).abs() < 1e-9);
}

/// LC tank energy conservation: with no resistance in the loop, the
/// oscillation amplitude persists (trapezoidal integration is
/// non-dissipative).
#[test]
fn lc_tank_oscillates_without_decay() {
    let l = 1e-6f64;
    let c = 1e-9f64;
    let f0 = 1.0 / (2.0 * std::f64::consts::PI * (l * c).sqrt());
    let mut ckt = Circuit::new();
    let n = ckt.node("n");
    ckt.inductor("L1", n, Circuit::GND, l);
    ckt.capacitor_with_ic("C1", n, Circuit::GND, c, 1.0);
    let period = 1.0 / f0;
    let result = Session::new(&ckt)
        .transient(&Transient::new(period / 200.0, 20.0 * period).use_initial_conditions())
        .unwrap();
    let v = result.voltage(n);
    // Amplitude in the last five periods still ≈ 1 V.
    let (_, t_end) = v.span();
    let late_peak = v
        .times()
        .iter()
        .zip(v.values())
        .filter(|(t, _)| **t > t_end - 5.0 * period)
        .map(|(_, v)| v.abs())
        .fold(0.0f64, f64::max);
    assert!(
        late_peak > 0.97 && late_peak < 1.03,
        "amplitude after 20 cycles: {late_peak}"
    );
    // Oscillation frequency near f0: count zero crossings.
    let crossings = v
        .values()
        .windows(2)
        .filter(|w| w[0].signum() != w[1].signum())
        .count();
    let measured_f = crossings as f64 / 2.0 / (t_end);
    assert!(
        (measured_f / f0 - 1.0).abs() < 0.02,
        "f = {measured_f:.3e} vs f0 = {f0:.3e}"
    );
}
