//! Limited-mode equivalence and mutation suite.
//!
//! `Session::with_device_limiting(true)` relinearizes MOSFETs at
//! slightly stale operating points (device latency) and clamps trial
//! voltages (`fetlim`/`limvds`), so its waveforms agree with the exact
//! reference only to solver tolerance — the bench harness gates the
//! shipped fixtures at 1e-4. This suite pins that contract on a
//! hand-rolled transistor fixture, property-tests it across the MOS
//! parameter space, and — the mutation half — proves the gate has teeth:
//! a broken latency check (bands wide enough that devices never
//! re-evaluate inside their operating region) must push the deviation
//! *past* the tolerance, and a disabled latency check (zero bands) must
//! land far under it.

use mssim::elements::MosParams;
use mssim::prelude::*;
use mssim::session::LimitOpts;
use proptest::prelude::*;

/// The shipped limited-mode equivalence budget (mirrors
/// `EQUIVALENCE_TOL_LIMITED` in the bench harness).
const LIMITED_TOL: f64 = 1e-4;

/// Two-stage CMOS inverter chain driving an RC load, PWM input: every
/// device crosses regions each period, so latency anchors are exercised
/// in cutoff, triode and saturation.
fn inverter_chain(wn: f64, wp: f64, duty: f64, cload: f64) -> (Circuit, Vec<NodeId>) {
    let mut ckt = Circuit::new();
    let vdd = ckt.node("vdd");
    let inp = ckt.node("in");
    let mid = ckt.node("mid");
    let out = ckt.node("out");
    ckt.vsource("VDD", vdd, Circuit::GND, Waveform::dc(2.5));
    ckt.vsource("VIN", inp, Circuit::GND, Waveform::pwm(2.5, 500e6, duty));
    ckt.mosfet("MP1", mid, inp, vdd, MosParams::pmos(865e-9, wp));
    ckt.mosfet("MN1", mid, inp, Circuit::GND, MosParams::nmos(320e-9, wn));
    ckt.capacitor("CM", mid, Circuit::GND, 0.4e-12);
    ckt.mosfet("MP2", out, mid, vdd, MosParams::pmos(865e-9, wp));
    ckt.mosfet("MN2", out, mid, Circuit::GND, MosParams::nmos(320e-9, wn));
    ckt.capacitor("CL", out, Circuit::GND, cload);
    (ckt, vec![inp, mid, out])
}

/// Largest probe deviation between a limited run under `opts` and the
/// exact reference assembler.
fn limited_divergence(
    ckt: &Circuit,
    probes: &[NodeId],
    dt: f64,
    steps: usize,
    opts: LimitOpts,
) -> f64 {
    let tran = |reference: bool| {
        Transient::new(dt, steps as f64 * dt)
            .use_initial_conditions()
            .with_reference_solver(reference)
    };
    let limited = Session::new(ckt)
        .with_limit_opts(opts)
        .transient(&tran(false))
        .expect("limited transient converges");
    let reference = Session::new(ckt)
        .transient(&tran(true))
        .expect("reference transient converges");
    let mut worst = 0.0f64;
    for &node in probes {
        for (a, b) in limited
            .voltage(node)
            .values()
            .iter()
            .zip(reference.voltage(node).values())
        {
            worst = worst.max((a - b).abs());
        }
    }
    worst
}

#[test]
fn limited_mode_matches_reference_within_tolerance() {
    let (ckt, probes) = inverter_chain(1.2e-6, 1.2e-6, 0.7, 1e-12);
    let d = limited_divergence(&ckt, &probes, 10e-12, 600, LimitOpts::default());
    assert!(
        d <= LIMITED_TOL,
        "shipped latency bands deviate by {d:e} (> {LIMITED_TOL:e})"
    );
}

/// Mutation: a latency check broken *open* — bands so wide that a device
/// re-evaluates only when its operating region flips — must be caught by
/// the very equivalence gate the shipped bands are certified against. If
/// this test ever starts passing the 1e-4 gate, the gate has lost its
/// power to detect frozen-device bugs and must be tightened.
#[test]
fn broken_latency_check_is_caught_by_the_equivalence_gate() {
    let (ckt, probes) = inverter_chain(1.2e-6, 1.2e-6, 0.7, 1e-12);
    let broken = LimitOpts {
        latency_reltol: 1e3,
        latency_abstol: 1e3,
    };
    let d = limited_divergence(&ckt, &probes, 10e-12, 600, broken);
    assert!(
        d > LIMITED_TOL,
        "a wide-open latency check deviated by only {d:e} — the equivalence \
         gate can no longer detect a broken latency test"
    );
}

/// Mutation complement: latency disabled (zero bands) means every
/// iteration evaluates every device at its true trial voltages, so the
/// limited path collapses to the exact square-law model and the
/// deviation must sit far below the gate — within an order of magnitude
/// of solver tolerance, not the latency budget.
#[test]
fn zero_latency_bands_track_the_reference_closely() {
    let (ckt, probes) = inverter_chain(1.2e-6, 1.2e-6, 0.7, 1e-12);
    let off = LimitOpts {
        latency_reltol: 0.0,
        latency_abstol: 0.0,
    };
    let d = limited_divergence(&ckt, &probes, 10e-12, 600, off);
    assert!(
        d <= LIMITED_TOL / 10.0,
        "zero-band latency should be near-exact, deviated by {d:e}"
    );
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Limiting + latency never move the converged solution beyond the
    /// equivalence budget, across device widths, duty cycles and loads.
    #[test]
    fn limiting_never_changes_converged_solution_beyond_tolerance(
        wn in 0.4e-6..2.4e-6f64,
        wp in 0.4e-6..2.4e-6f64,
        duty in 0.1..0.9f64,
        cload in 0.2e-12..2e-12f64,
    ) {
        let (ckt, probes) = inverter_chain(wn, wp, duty, cload);
        let d = limited_divergence(&ckt, &probes, 10e-12, 240, LimitOpts::default());
        prop_assert!(
            d <= LIMITED_TOL,
            "wn={wn:e} wp={wp:e} duty={duty} cload={cload:e}: deviation {d:e}"
        );
    }
}
