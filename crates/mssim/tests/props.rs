//! Property-based tests of the simulation engine's invariants.

use mssim::linear::DenseMatrix;
use mssim::prelude::*;
use mssim::trace::Trace;
use proptest::prelude::*;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// LU solves random diagonally-dominant systems to tight residuals.
    #[test]
    fn lu_solver_residual_is_small(
        seed in 0u64..1000,
        n in 2usize..12,
    ) {
        let mut state = seed.wrapping_mul(0x9E3779B97F4A7C15).wrapping_add(1);
        let mut next = move || {
            state ^= state << 13;
            state ^= state >> 7;
            state ^= state << 17;
            (state >> 11) as f64 / (1u64 << 53) as f64 - 0.5
        };
        let mut m = DenseMatrix::zeros(n);
        for r in 0..n {
            for c in 0..n {
                m.set(r, c, next());
            }
            m.add(r, r, n as f64); // diagonal dominance
        }
        let x_true: Vec<f64> = (0..n).map(|_| next() * 10.0).collect();
        let mut rhs = m.mul_vec(&x_true);
        let mut lu = m.clone();
        lu.solve_in_place(&mut rhs).unwrap();
        for (a, b) in rhs.iter().zip(&x_true) {
            prop_assert!((a - b).abs() < 1e-8, "{a} vs {b}");
        }
    }

    /// Trapezoidal averages always lie between the extremes.
    #[test]
    fn trace_average_is_bounded(values in prop::collection::vec(-10.0f64..10.0, 2..50)) {
        let t: Vec<f64> = (0..values.len()).map(|i| i as f64).collect();
        let tr = Trace::new(&t, &values);
        let avg = tr.average();
        prop_assert!(avg >= tr.min() - 1e-12 && avg <= tr.max() + 1e-12);
    }

    /// Integration is additive over adjacent windows.
    #[test]
    fn trace_integral_is_additive(
        values in prop::collection::vec(-5.0f64..5.0, 4..40),
        split in 0.1f64..0.9,
    ) {
        let t: Vec<f64> = (0..values.len()).map(|i| i as f64).collect();
        let tr = Trace::new(&t, &values);
        let (t0, t1) = tr.span();
        let tm = t0 + (t1 - t0) * split;
        let whole = tr.integrate_between(t0, t1);
        let parts = tr.integrate_between(t0, tm) + tr.integrate_between(tm, t1);
        prop_assert!((whole - parts).abs() < 1e-9, "{whole} vs {parts}");
    }

    /// A PWM waveform's numeric time-average equals amplitude × duty,
    /// within the duty range representable with the default 1 % edges
    /// (requests outside `[edge, 1 − edge]` saturate — a pulse narrower
    /// than its own edges does not exist).
    #[test]
    fn pwm_average_equals_duty(
        duty in 0.0f64..=1.0,
        amplitude in 0.1f64..5.0,
        freq in 1e6f64..1e9,
    ) {
        let w = Waveform::pwm(amplitude, freq, duty);
        let period = 1.0 / freq;
        let n = 20_000;
        let mut sum = 0.0;
        for i in 0..n {
            sum += w.value(period * (i as f64 + 0.5) / n as f64);
        }
        let avg = sum / n as f64;
        let effective = if duty == 0.0 || duty == 1.0 {
            duty // exact-rail requests become DC
        } else {
            duty.clamp(0.01, 0.99)
        };
        prop_assert!(
            (avg - amplitude * effective).abs() < amplitude * 2e-3,
            "avg {avg} vs {}", amplitude * effective
        );
    }

    /// DC resistive divider matches the analytic answer for random values.
    #[test]
    fn divider_matches_analytic(
        v in 0.5f64..10.0,
        r1 in 1e2f64..1e6,
        r2 in 1e2f64..1e6,
    ) {
        let mut ckt = Circuit::new();
        let a = ckt.node("a");
        let b = ckt.node("b");
        ckt.vsource("V1", a, Circuit::GND, Waveform::dc(v));
        ckt.resistor("R1", a, b, r1);
        ckt.resistor("R2", b, Circuit::GND, r2);
        let op = Session::new(&ckt).dc_operating_point().unwrap();
        let expect = v * r2 / (r1 + r2);
        prop_assert!((op.voltage(b) - expect).abs() < 1e-6 * v.max(1.0));
    }

    /// Superposition holds on a linear two-source network.
    #[test]
    fn superposition_of_two_sources(
        v1 in -5.0f64..5.0,
        v2 in -5.0f64..5.0,
        r in 1e3f64..1e5,
    ) {
        let solve = |va: f64, vb: f64| -> f64 {
            let mut ckt = Circuit::new();
            let a = ckt.node("a");
            let b = ckt.node("b");
            let mid = ckt.node("mid");
            ckt.vsource("V1", a, Circuit::GND, Waveform::dc(va));
            ckt.vsource("V2", b, Circuit::GND, Waveform::dc(vb));
            ckt.resistor("R1", a, mid, r);
            ckt.resistor("R2", b, mid, 2.0 * r);
            ckt.resistor("R3", mid, Circuit::GND, r);
            Session::new(&ckt).dc_operating_point().unwrap().voltage(mid)
        };
        let both = solve(v1, v2);
        let sum = solve(v1, 0.0) + solve(0.0, v2);
        prop_assert!((both - sum).abs() < 1e-9, "{both} vs {sum}");
    }

    /// RC charge hits 1 − 1/e at t = τ for random component values.
    #[test]
    fn rc_charge_at_tau(
        r in 1e2f64..1e5,
        c in 1e-10f64..1e-7,
    ) {
        let tau = r * c;
        let mut ckt = Circuit::new();
        let a = ckt.node("a");
        let b = ckt.node("b");
        ckt.vsource("V1", a, Circuit::GND, Waveform::dc(1.0));
        ckt.resistor("R1", a, b, r);
        ckt.capacitor("C1", b, Circuit::GND, c);
        let result = Session::new(&ckt).transient(&Transient::new(tau / 400.0, 2.0 * tau)
            .use_initial_conditions())
            .unwrap();
        let got = result.voltage(b).value_at(tau);
        let expect = 1.0 - (-1.0f64).exp();
        prop_assert!((got - expect).abs() < 5e-3, "{got} vs {expect}");
    }

    /// Sweeps preserve input order regardless of size.
    #[test]
    fn sweep_preserves_order(n in 0usize..500) {
        let pts: Vec<usize> = (0..n).collect();
        let out = mssim::sweep::sweep(&pts, |&p, i| {
            assert_eq!(p, i);
            p * 3
        });
        prop_assert_eq!(out.len(), n);
        for (i, v) in out.iter().enumerate() {
            prop_assert_eq!(*v, i * 3);
        }
    }

    /// Monte Carlo is reproducible and independent of parallel scheduling.
    #[test]
    fn monte_carlo_reproducible(seed in 0u64..1000, n in 1usize..100) {
        use rand::Rng;
        let a = mssim::sweep::monte_carlo(n, seed, |rng, _| rng.gen::<u64>());
        let b = mssim::sweep::monte_carlo(n, seed, |rng, _| rng.gen::<u64>());
        prop_assert_eq!(a, b);
    }
}
