//! Golden-equivalence suite: the optimized solver path (compiled stamp
//! plans + factorization reuse + Newton bypass) must reproduce the naive
//! reference assembler's waveforms within 1e-12 on every shipped circuit
//! shape. In practice the plan is designed for *bitwise* agreement — the
//! assembled system is replayed in the reference's exact accumulation
//! order — so these tests usually observe a max deviation of exactly 0.
//!
//! Also holds the PWM-edge regression: the bypass caches must never skip
//! a breakpoint under adaptive stepping.

use mssim::elements::MosParams;
use mssim::prelude::*;

const TOL: f64 = 1e-12;

/// Runs `ckt` on both solver paths and returns the largest voltage
/// deviation over `probes`.
fn transient_divergence(ckt: &Circuit, probes: &[NodeId], dt: f64, steps: usize) -> f64 {
    let tran = |reference: bool| {
        Transient::new(dt, steps as f64 * dt)
            .use_initial_conditions()
            .with_reference_solver(reference)
    };
    let plan = Session::new(ckt)
        .transient(&tran(false))
        .expect("plan transient converges");
    let reference = Session::new(ckt)
        .transient(&tran(true))
        .expect("reference transient converges");
    assert_eq!(plan.samples(), reference.samples());
    let mut worst = 0.0f64;
    for &node in probes {
        for (a, b) in plan
            .voltage(node)
            .values()
            .iter()
            .zip(reference.voltage(node).values())
        {
            worst = worst.max((a - b).abs());
        }
    }
    worst
}

#[test]
fn mos_inverter_matches_reference() {
    let mut ckt = Circuit::new();
    let vdd = ckt.node("vdd");
    let g = ckt.node("g");
    let out = ckt.node("out");
    ckt.vsource("VDD", vdd, Circuit::GND, Waveform::dc(2.5));
    ckt.vsource("VIN", g, Circuit::GND, Waveform::pwm(2.5, 500e6, 0.7));
    ckt.mosfet("MP", out, g, vdd, MosParams::pmos(865e-9, 1.2e-6));
    ckt.mosfet("MN", out, g, Circuit::GND, MosParams::nmos(320e-9, 1.2e-6));
    ckt.capacitor("COUT", out, Circuit::GND, 1e-12);
    let d = transient_divergence(&ckt, &[vdd, g, out], 10e-12, 600);
    assert!(d <= TOL, "inverter diverges by {d:e}");
}

#[test]
fn switch_adder_matches_reference() {
    let mut ckt = Circuit::new();
    let vdd = ckt.node("vdd");
    let out = ckt.node("out");
    ckt.vsource("VDD", vdd, Circuit::GND, Waveform::dc(2.5));
    let mut probes = vec![vdd, out];
    for (i, duty) in [0.7, 0.8, 0.9].into_iter().enumerate() {
        let input = ckt.node(&format!("in{i}"));
        probes.push(input);
        ckt.vsource(
            &format!("VIN{i}"),
            input,
            Circuit::GND,
            Waveform::pwm(2.5, 500e6, duty),
        );
        for b in 0..3u32 {
            let r_on = 100e3 / (1u32 << b) as f64;
            ckt.switch(
                &format!("SU{i}b{b}"),
                vdd,
                out,
                input,
                Circuit::GND,
                1.25,
                r_on,
                1e12,
            );
            ckt.switch(
                &format!("SD{i}b{b}"),
                out,
                Circuit::GND,
                Circuit::GND,
                input,
                -1.25,
                r_on,
                1e12,
            );
        }
    }
    ckt.capacitor("COUT", out, Circuit::GND, 10e-12);
    let d = transient_divergence(&ckt, &probes, 10e-12, 600);
    assert!(d <= TOL, "switch adder diverges by {d:e}");
}

#[test]
fn rlc_tank_matches_reference() {
    let mut ckt = Circuit::new();
    let a = ckt.node("a");
    let b = ckt.node("b");
    let out = ckt.node("out");
    ckt.vsource(
        "VIN",
        a,
        Circuit::GND,
        Waveform::pwl(vec![(0.0, 0.0), (1e-9, 1.0)]),
    );
    ckt.resistor("R1", a, b, 50.0);
    ckt.inductor("L1", b, out, 100e-9);
    ckt.capacitor("C1", out, Circuit::GND, 10e-12);
    // Underdamped: the waveform rings, exercising sign changes in the
    // companion currents.
    let d = transient_divergence(&ckt, &[a, b, out], 50e-12, 800);
    assert!(d <= TOL, "RLC tank diverges by {d:e}");
}

#[test]
fn diode_clipper_matches_reference() {
    let mut ckt = Circuit::new();
    let inp = ckt.node("in");
    let out = ckt.node("out");
    let bias = ckt.node("bias");
    ckt.vsource("VIN", inp, Circuit::GND, Waveform::sine(0.0, 3.0, 10e6));
    ckt.vsource("VB", bias, Circuit::GND, Waveform::dc(1.0));
    ckt.resistor("RS", inp, out, 1e3);
    ckt.diode("D1", out, bias, 1e-14, 1.0);
    ckt.diode("D2", Circuit::GND, out, 1e-14, 1.0);
    ckt.capacitor("CL", out, Circuit::GND, 1e-12);
    let d = transient_divergence(&ckt, &[inp, out, bias], 1e-9, 600);
    assert!(d <= TOL, "diode clipper diverges by {d:e}");
}

/// DC sweep equivalence on the inverter voltage-transfer characteristic.
#[test]
fn dc_sweep_matches_reference() {
    let mut ckt = Circuit::new();
    let vdd = ckt.node("vdd");
    let g = ckt.node("g");
    let out = ckt.node("out");
    ckt.vsource("VDD", vdd, Circuit::GND, Waveform::dc(2.5));
    let vg = ckt.vsource("VG", g, Circuit::GND, Waveform::dc(0.0));
    ckt.mosfet("MP", out, g, vdd, MosParams::pmos(865e-9, 1.2e-6));
    ckt.mosfet("MN", out, g, Circuit::GND, MosParams::nmos(320e-9, 1.2e-6));
    ckt.resistor("RL", out, Circuit::GND, 10e6);
    let points = mssim::sweep::linspace(0.0, 2.5, 51);
    let plan = Session::new(&ckt)
        .dc_sweep(vg, &points)
        .expect("plan sweep");
    let reference = mssim::analysis::dc_sweep_reference(ckt, vg, &points).expect("reference sweep");
    for (i, (&(_, a), (_, b))) in plan
        .transfer(out)
        .iter()
        .zip(reference.transfer(out))
        .enumerate()
    {
        assert!(
            (a - b).abs() <= TOL,
            "sweep point {i}: {a} vs {b} diverges by {:e}",
            (a - b).abs()
        );
    }
}

/// The bypass caches must never cause the adaptive controller to step
/// over a PWM edge: both paths must accept the *same* time grid, and
/// every source breakpoint must land exactly on an accepted step.
#[test]
fn adaptive_stepping_never_skips_a_pwm_edge() {
    // A deliberately narrow 4 % duty pulse: the flat stretches between
    // edges are long, so an unsafe bypass that coasted past a breakpoint
    // would miss essentially the whole pulse.
    let duty = 0.04;
    let freq = 100e6;
    let t_stop = 3.0 / freq;
    let mut ckt = Circuit::new();
    let inp = ckt.node("in");
    let out = ckt.node("out");
    ckt.vsource("VIN", inp, Circuit::GND, Waveform::pwm(1.0, freq, duty));
    ckt.resistor("R1", inp, out, 1e3);
    ckt.capacitor("C1", out, Circuit::GND, 1e-12);

    let tran = |reference: bool| {
        Transient::new(t_stop / 200.0, t_stop)
            .adaptive(AdaptiveConfig::default())
            .use_initial_conditions()
            .with_reference_solver(reference)
    };
    let plan = Session::new(&ckt)
        .transient(&tran(false))
        .expect("plan adaptive run");
    let reference = Session::new(&ckt)
        .transient(&tran(true))
        .expect("reference adaptive run");

    // Identical accepted grids: the plan path's step-size decisions are
    // driven by bitwise-identical solutions.
    assert_eq!(plan.time(), reference.time(), "accepted time grids differ");

    // Every breakpoint of the PWM source inside the window was stepped
    // on exactly (the controller clamps dt to the next breakpoint).
    let w = Waveform::pwm(1.0, freq, duty);
    let mut t = 0.0;
    while let Some(bp) = w.next_breakpoint(t) {
        if bp >= t_stop {
            break;
        }
        assert!(
            plan.time().iter().any(|&s| (s - bp).abs() < 1e-15),
            "breakpoint at {bp:e} s missing from the accepted grid"
        );
        t = bp;
    }

    // The pulse actually delivered charge: the RC output moved well away
    // from zero, so no edge was optimized into a flat line.
    let peak = plan
        .voltage(out)
        .values()
        .iter()
        .fold(0.0f64, |m, &v| m.max(v));
    assert!(peak > 0.2, "narrow pulse lost: peak out voltage {peak}");
}
