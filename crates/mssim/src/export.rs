//! SPICE netlist export.
//!
//! Writes a [`Circuit`] as a standard SPICE deck so any result produced
//! here can be cross-checked in ngspice/Xyce/Spectre. Level-1 MOSFETs
//! map onto `.model ... NMOS (LEVEL=1 ...)` cards with identical
//! parameters, so the exported deck describes the same device physics.

use std::collections::BTreeMap;
use std::fmt::Write as _;

use crate::elements::{Element, MosParams, MosPolarity};
use crate::netlist::Circuit;
use crate::waveform::Waveform;

/// Renders the circuit as a SPICE deck with the given title line.
///
/// Independent sources keep their waveforms (`DC`, `PULSE`, `SIN`,
/// `PWL`); every distinct MOSFET parameter set becomes one `.model`
/// card. Node 0 is ground, as in SPICE. Element names are prefixed
/// with their SPICE type letter (R/C/L/V/I/M/S/D) so the deck parses in
/// ngspice regardless of the netlist names used here.
///
/// # Examples
///
/// ```
/// use mssim::{export::to_spice, Circuit, Waveform};
///
/// let mut ckt = Circuit::new();
/// let a = ckt.node("a");
/// ckt.vsource("V1", a, Circuit::GND, Waveform::dc(2.5));
/// ckt.resistor("R1", a, Circuit::GND, 100e3);
/// let deck = to_spice(&ckt, "divider");
/// assert!(deck.contains("RR1 a 0 100000"));
/// assert!(deck.ends_with(".end\n"));
/// ```
pub fn to_spice(circuit: &Circuit, title: &str) -> String {
    let mut out = String::new();
    let _ = writeln!(out, "* {title}");
    let _ = writeln!(out, "* exported by mssim");

    // Collect distinct MOSFET models.
    let mut models: BTreeMap<String, MosParams> = BTreeMap::new();
    let model_name = |p: &MosParams| -> String {
        format!(
            "{}_{:.0}u{:.0}",
            match p.polarity {
                MosPolarity::Nmos => "mn",
                MosPolarity::Pmos => "mp",
            },
            p.kp * 1e6,
            (p.vth0 * 1000.0) as i64
        )
    };

    let node = |n: crate::NodeId| circuit.node_name(n).to_owned();

    for (_, name, elem) in circuit.elements() {
        match elem {
            Element::Resistor { a, b, ohms } => {
                let _ = writeln!(out, "R{name} {} {} {ohms}", node(*a), node(*b));
            }
            Element::Capacitor {
                a,
                b,
                farads,
                initial_voltage,
            } => {
                let _ = write!(out, "C{name} {} {} {farads:e}", node(*a), node(*b));
                if *initial_voltage != 0.0 {
                    let _ = write!(out, " IC={initial_voltage}");
                }
                let _ = writeln!(out);
            }
            Element::Inductor {
                a,
                b,
                henries,
                initial_current,
            } => {
                let _ = write!(out, "L{name} {} {} {henries:e}", node(*a), node(*b));
                if *initial_current != 0.0 {
                    let _ = write!(out, " IC={initial_current}");
                }
                let _ = writeln!(out);
            }
            Element::VoltageSource { pos, neg, waveform } => {
                let _ = writeln!(
                    out,
                    "V{name} {} {} {}",
                    node(*pos),
                    node(*neg),
                    waveform_card(waveform)
                );
            }
            Element::CurrentSource { from, to, waveform } => {
                let _ = writeln!(
                    out,
                    "I{name} {} {} {}",
                    node(*from),
                    node(*to),
                    waveform_card(waveform)
                );
            }
            Element::Mosfet { d, g, s, params } => {
                let model = model_name(params);
                models.insert(model.clone(), *params);
                // Bulk tied to source, as the level-1 model assumes.
                let _ = writeln!(
                    out,
                    "M{name} {} {} {} {} {model} W={:e} L={:e}",
                    node(*d),
                    node(*g),
                    node(*s),
                    node(*s),
                    params.w,
                    params.l
                );
            }
            Element::Switch {
                a,
                b,
                ctrl_pos,
                ctrl_neg,
                threshold,
                r_on,
                r_off,
            } => {
                let _ = writeln!(
                    out,
                    "S{name} {} {} {} {} sw_{name} * VT={threshold} RON={r_on} ROFF={r_off}",
                    node(*a),
                    node(*b),
                    node(*ctrl_pos),
                    node(*ctrl_neg)
                );
                let _ = writeln!(
                    out,
                    ".model sw_{name} SW (VT={threshold} RON={r_on} ROFF={r_off})"
                );
            }
            Element::Diode { a, k, i_sat, n } => {
                let _ = writeln!(out, "D{name} {} {} d_{name}", node(*a), node(*k));
                let _ = writeln!(out, ".model d_{name} D (IS={i_sat:e} N={n})");
            }
            Element::Vcvs { p, n, cp, cn, gain } => {
                let _ = writeln!(
                    out,
                    "E{name} {} {} {} {} {gain}",
                    node(*p),
                    node(*n),
                    node(*cp),
                    node(*cn)
                );
            }
            Element::Vccs {
                from,
                to,
                cp,
                cn,
                gm,
            } => {
                // SPICE G card lists N+ (current drawn) then N−.
                let _ = writeln!(
                    out,
                    "G{name} {} {} {} {} {gm}",
                    node(*from),
                    node(*to),
                    node(*cp),
                    node(*cn)
                );
            }
        }
    }

    for (model, p) in &models {
        let kind = match p.polarity {
            MosPolarity::Nmos => "NMOS",
            MosPolarity::Pmos => "PMOS",
        };
        let _ = writeln!(
            out,
            ".model {model} {kind} (LEVEL=1 VTO={}{} KP={:e} LAMBDA={})",
            if p.polarity == MosPolarity::Pmos {
                "-"
            } else {
                ""
            },
            p.vth0,
            p.kp,
            p.lambda
        );
    }
    out.push_str(".end\n");
    out
}

fn waveform_card(w: &Waveform) -> String {
    match w {
        Waveform::Dc(v) => format!("DC {v}"),
        Waveform::Pulse(p) => format!(
            "PULSE({} {} {:e} {:e} {:e} {:e} {:e})",
            p.low, p.high, p.delay, p.rise, p.fall, p.width, p.period
        ),
        Waveform::Sine {
            offset,
            amplitude,
            frequency,
            delay,
        } => format!("SIN({offset} {amplitude} {frequency:e} {delay:e})"),
        Waveform::Pwl(points) => {
            let mut s = String::from("PWL(");
            for (i, (t, v)) in points.iter().enumerate() {
                if i > 0 {
                    s.push(' ');
                }
                let _ = write!(s, "{t:e} {v}");
            }
            s.push(')');
            s
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn exports_rc_divider() {
        let mut ckt = Circuit::new();
        let a = ckt.node("in");
        let b = ckt.node("out");
        ckt.vsource("V1", a, Circuit::GND, Waveform::dc(2.5));
        ckt.resistor("R1", a, b, 1e3);
        ckt.capacitor("C1", b, Circuit::GND, 1e-12);
        let deck = to_spice(&ckt, "rc");
        assert!(deck.starts_with("* rc\n"));
        assert!(deck.contains("VV1 in 0 DC 2.5"));
        assert!(deck.contains("RR1 in out 1000"));
        assert!(deck.contains("CC1 out 0 1e-12"));
        assert!(deck.ends_with(".end\n"));
    }

    #[test]
    fn exports_mosfets_with_shared_models() {
        let mut ckt = Circuit::new();
        let vdd = ckt.node("vdd");
        let g = ckt.node("g");
        let o = ckt.node("o");
        ckt.vsource("VDD", vdd, Circuit::GND, Waveform::dc(2.5));
        ckt.mosfet("MP1", o, g, vdd, MosParams::pmos(865e-9, 1.2e-6));
        ckt.mosfet("MN1", o, g, Circuit::GND, MosParams::nmos(320e-9, 1.2e-6));
        ckt.mosfet("MN2", o, g, Circuit::GND, MosParams::nmos(640e-9, 1.2e-6));
        let deck = to_spice(&ckt, "inv");
        // Two models (one N, one P): MN1 and MN2 share parameters except
        // geometry, which lives on the instance line.
        let model_lines = deck.lines().filter(|l| l.contains("LEVEL=1")).count();
        assert_eq!(model_lines, 2, "{deck}");
        assert!(deck.contains("W=3.2e-7"));
        assert!(deck.contains("W=6.4e-7"));
        assert!(deck.contains("PMOS"));
        assert!(deck.contains("VTO=-0.45"));
    }

    #[test]
    fn exports_pulse_and_pwl_sources() {
        let mut ckt = Circuit::new();
        let a = ckt.node("a");
        let b = ckt.node("b");
        ckt.vsource("V1", a, Circuit::GND, Waveform::pwm(2.5, 500e6, 0.25));
        ckt.vsource(
            "V2",
            b,
            Circuit::GND,
            Waveform::pwl(vec![(0.0, 0.0), (1e-9, 1.0)]),
        );
        ckt.resistor("R1", a, b, 1e3);
        let deck = to_spice(&ckt, "src");
        assert!(deck.contains("PULSE(0 2.5"), "{deck}");
        assert!(deck.contains("PWL(0e0 0 1e-9 1)"), "{deck}");
    }

    #[test]
    fn exports_inductor_and_diode() {
        let mut ckt = Circuit::new();
        let a = ckt.node("a");
        let b = ckt.node("b");
        ckt.vsource("V1", a, Circuit::GND, Waveform::sine(0.0, 1.0, 1e6));
        ckt.inductor_with_ic("L1", a, b, 1e-6, 1e-3);
        ckt.diode("D1", b, Circuit::GND, 1e-14, 1.0);
        let deck = to_spice(&ckt, "rect");
        assert!(deck.contains("LL1 a b 1e-6 IC=0.001"));
        assert!(deck.contains(".model d_D1 D (IS=1e-14 N=1)"));
        assert!(deck.contains("SIN(0 1 1e6"));
    }
}
