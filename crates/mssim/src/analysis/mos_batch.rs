//! Batched struct-of-arrays MOSFET evaluation for the compiled stamp plan.
//!
//! The per-iteration walk in [`plan`](super::plan) used to evaluate each
//! MOSFET inline through `MosParams::evaluate`, re-reading the parameter
//! struct and re-deriving `beta = kp·W/L` per device per Newton iteration.
//! On the MOS-level adder that makes device evaluation *and* the
//! factorizations it forces the dominant cost: every µV of drift changes
//! the linearisation bits, so the LU cache never fires mid-transient.
//!
//! This module packs all MOSFETs of a plan into one contiguous
//! struct-of-arrays block at compile time — thresholds, gains,
//! channel-length modulation, polarity and pre-resolved MNA rows side by
//! side — and evaluates the whole block in a single tight loop per
//! iteration. Two evaluation flavours exist:
//!
//! * **exact** — runs [`eval_flat`] (the same arithmetic sequence as
//!   `MosParams::evaluate`) on every device, every iteration. Bit-for-bit
//!   identical to the scalar path by construction.
//! * **limited** — SPICE-style robustness and latency on top of the batch:
//!   trial gate and drain voltages are clamped by [`fetlim`]/[`limvds`]
//!   (the SPICE3f5 damping heuristics, preventing square-law overshoot on
//!   large Newton steps), and a device whose terminal voltages moved less
//!   than a tolerance band since its last evaluation *with the operating
//!   region unchanged* reuses its previous `(ids, gm, gds)` linearisation
//!   verbatim. Frozen devices keep their exact previous bits, so an
//!   unchanged block keeps the plan's generation counters — and therefore
//!   the LU factorization cache — stable across time steps. Limited mode
//!   trades bitwise identity for speed; the solver forces an extra Newton
//!   iteration whenever a clamp fired, so accepted solutions always
//!   satisfy the *unclamped* device equations to solver tolerance.
//!
//! The batch only changes how device values are *produced*. The plan's
//! `iter_ops` walk still consumes them in element order, so the write
//! replay, the PL001–PL004 verifier and the `analyze` interval
//! interpreter are untouched.

use super::plan::IterOp;
use crate::elements::mosfet::{eval_flat, region_flat, MosRegion};
use crate::elements::MosPolarity;

/// Sentinel row index for a grounded terminal (reads as 0.0 V).
const GND: usize = usize::MAX;

/// Tolerances of the limited-mode latency test. A device is *latent* when
/// each terminal voltage satisfies
/// `|v − v_anchor| ≤ abstol + reltol·max(|v|, |v_anchor|)`
/// against the voltages of its last real evaluation and its operating
/// region is unchanged; latent devices reuse their previous linearisation
/// bits. Anchors advance only on real evaluations, so drift cannot
/// accumulate beyond one band.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct LimitOpts {
    /// Relative latency band (fraction of the larger voltage magnitude).
    pub latency_reltol: f64,
    /// Absolute latency band in volts.
    pub latency_abstol: f64,
}

impl Default for LimitOpts {
    fn default() -> Self {
        // The frozen linearisation error is O(beta·band²), which the
        // channel conductances turn into tens-of-µV solution deviation at
        // these bands — a few times under the limited-mode equivalence
        // tolerance, and the region-stability clip keeps the effective
        // window much tighter wherever a device approaches a region
        // boundary. Equilibrium analyses that report the solution
        // directly (DC sweeps) override these with far tighter bands.
        LimitOpts {
            latency_reltol: 1e-1,
            latency_abstol: 5e-3,
        }
    }
}

/// Per-eval work counters reported back to the solver's stats.
#[derive(Debug, Clone, Copy, Default)]
pub(crate) struct BatchTally {
    /// Devices actually evaluated (latency misses + all exact evals).
    pub evals: u64,
    /// Devices whose trial voltages were clamped by `fetlim`/`limvds`.
    pub clamps: u64,
    /// Devices that reused their previous linearisation.
    pub latency_hits: u64,
}

impl BatchTally {
    fn clamped(&self) -> bool {
        self.clamps > 0
    }
}

/// The struct-of-arrays MOSFET block of one compiled plan.
///
/// Parameter and row arrays are filled once at plan compile time from the
/// `IterOp::Mosfet` entries *in op order*; the k-th block entry is the
/// k-th MOSFET op of the walk, so consumers index with a running counter.
/// Output arrays persist between evaluations: limited mode freezes latent
/// devices simply by not overwriting them.
#[derive(Debug, Clone)]
pub(crate) struct MosBatch {
    len: usize,
    // Compile-time constants.
    rd: Vec<usize>,
    rg: Vec<usize>,
    rs: Vec<usize>,
    pmos: Vec<bool>,
    vth0: Vec<f64>,
    beta: Vec<f64>,
    lambda: Vec<f64>,
    // Outputs of the most recent evaluation of each device.
    pub(crate) gdd: Vec<f64>,
    pub(crate) gdg: Vec<f64>,
    pub(crate) gds_node: Vec<f64>,
    pub(crate) i_const: Vec<f64>,
    // Limited-mode anchors: terminal voltages, region and validity of the
    // last real evaluation.
    anchor_vd: Vec<f64>,
    anchor_vg: Vec<f64>,
    anchor_vs: Vec<f64>,
    anchor_region: Vec<MosRegion>,
    anchored: Vec<bool>,
    // Precomputed latency windows, interleaved per device as
    // `[d_lo, d_hi, g_lo, g_hi, s_lo, s_hi]` so the hot-path scan walks
    // one sequential stream: the anchor band clipped so that no point
    // inside can change the operating region (see `anchor_windows`). The
    // latency test is then six compares; an unanchored device holds an
    // empty window (`lo > hi`).
    win: Vec<f64>,
    // Half-radius inner windows (same layout) for re-anchor herding: once
    // any device misses its outer window, every device outside its inner
    // window re-anchors in the same evaluation. Drifting devices thereby
    // re-linearise together — one factorization instead of a trickle.
    win2: Vec<f64>,
}

/// Interleaved empty window: any trial voltage misses it.
const EMPTY_WIN: [f64; 6] = [
    f64::INFINITY,
    f64::NEG_INFINITY,
    f64::INFINITY,
    f64::NEG_INFINITY,
    f64::INFINITY,
    f64::NEG_INFINITY,
];

#[inline]
fn read(x: &[f64], r: usize) -> f64 {
    if r == GND {
        0.0
    } else {
        x[r]
    }
}

impl MosBatch {
    /// Gathers every `IterOp::Mosfet` of `iter_ops` (in op order) into a
    /// packed block.
    pub fn gather(iter_ops: &[IterOp]) -> Self {
        let mut b = MosBatch {
            len: 0,
            rd: Vec::new(),
            rg: Vec::new(),
            rs: Vec::new(),
            pmos: Vec::new(),
            vth0: Vec::new(),
            beta: Vec::new(),
            lambda: Vec::new(),
            gdd: Vec::new(),
            gdg: Vec::new(),
            gds_node: Vec::new(),
            i_const: Vec::new(),
            anchor_vd: Vec::new(),
            anchor_vg: Vec::new(),
            anchor_vs: Vec::new(),
            anchor_region: Vec::new(),
            anchored: Vec::new(),
            win: Vec::new(),
            win2: Vec::new(),
        };
        for op in iter_ops {
            if let IterOp::Mosfet { rd, rg, rs, params } = op {
                b.rd.push(rd.unwrap_or(GND));
                b.rg.push(rg.unwrap_or(GND));
                b.rs.push(rs.unwrap_or(GND));
                b.pmos.push(params.polarity == MosPolarity::Pmos);
                b.vth0.push(params.vth0);
                b.beta.push(params.beta());
                b.lambda.push(params.lambda);
            }
        }
        b.len = b.rd.len();
        b.gdd = vec![0.0; b.len];
        b.gdg = vec![0.0; b.len];
        b.gds_node = vec![0.0; b.len];
        b.i_const = vec![0.0; b.len];
        b.anchor_vd = vec![0.0; b.len];
        b.anchor_vg = vec![0.0; b.len];
        b.anchor_vs = vec![0.0; b.len];
        b.anchor_region = vec![MosRegion::Cutoff; b.len];
        b.anchored = vec![false; b.len];
        b.win = EMPTY_WIN.repeat(b.len);
        b.win2 = EMPTY_WIN.repeat(b.len);
        b
    }

    /// Number of MOSFETs in the block.
    pub fn len(&self) -> usize {
        self.len
    }

    /// Exact batch evaluation: every device, straight through
    /// [`eval_flat`], no limiting, no latency. Identical bits to the
    /// scalar per-op path.
    pub fn eval_exact(&mut self, x: &[f64]) -> BatchTally {
        for k in 0..self.len {
            let vd = read(x, self.rd[k]);
            let vg = read(x, self.rg[k]);
            let vs = read(x, self.rs[k]);
            let (id, gdd, gdg, gds_node, _) = eval_flat(
                self.pmos[k],
                self.vth0[k],
                self.beta[k],
                self.lambda[k],
                vd,
                vg,
                vs,
            );
            self.gdd[k] = gdd;
            self.gdg[k] = gdg;
            self.gds_node[k] = gds_node;
            self.i_const[k] = id - gdd * vd - gdg * vg - gds_node * vs;
        }
        BatchTally {
            evals: self.len as u64,
            ..BatchTally::default()
        }
    }

    /// Limited batch evaluation: latency test first (reuse the previous
    /// linearisation bits when the device barely moved and stayed in
    /// region), then `fetlim`/`limvds` clamping of the trial voltages
    /// before the square-law evaluation. Returns the tally; the solver
    /// must treat `clamps > 0` as "not converged yet" because clamped
    /// devices were evaluated at voltages other than the trial solution.
    pub fn eval_limited(&mut self, x: &[f64], opts: &LimitOpts) -> BatchTally {
        let mut tally = BatchTally::default();
        // Pass 1: pure window scan — six compares per device against the
        // windows precomputed at anchor time. A window point can neither
        // leave the latency band nor change the operating region (the band
        // is clipped by the region-boundary margins), so a hit guarantees
        // the full band-and-region test would also pass. NaN trial
        // voltages compare false and count as a miss. If every device is
        // inside its window the whole batch is latent — the common case.
        let mut any_miss = false;
        for k in 0..self.len {
            let vd = read(x, self.rd[k]);
            let vg = read(x, self.rg[k]);
            let vs = read(x, self.rs[k]);
            let w = &self.win[k * 6..k * 6 + 6];
            if !(vd >= w[0] && vd <= w[1] && vg >= w[2] && vg <= w[3] && vs >= w[4] && vs <= w[5]) {
                any_miss = true;
                break;
            }
        }
        if !any_miss {
            tally.latency_hits = self.len as u64;
            return tally;
        }
        // Pass 2 — re-anchor herding. Some device must re-linearise, so a
        // refactorization is already unavoidable this iteration; fold in
        // every device that has drifted past HALF of its window (the
        // `win2` inner windows). Devices drifting at similar rates thereby
        // re-anchor together instead of each forcing its own
        // factorization a few steps apart.
        for k in 0..self.len {
            let vd = read(x, self.rd[k]);
            let vg = read(x, self.rg[k]);
            let vs = read(x, self.rs[k]);
            let w = &self.win2[k * 6..k * 6 + 6];
            if vd >= w[0] && vd <= w[1] && vg >= w[2] && vg <= w[3] && vs >= w[4] && vs <= w[5] {
                // Window invariant: the region clip in `anchor_windows`
                // guarantees no in-window point changes operating region.
                debug_assert_eq!(
                    region_flat(self.pmos[k], self.vth0[k], vd, vg, vs),
                    self.anchor_region[k],
                );
                tally.latency_hits += 1;
                continue;
            }
            // Voltage limiting in source-referenced local (NMOS-folded)
            // coordinates, against the last-evaluated operating point.
            let (mut vd_t, mut vg_t, vs_t) = if self.pmos[k] {
                (-vd, -vg, -vs)
            } else {
                (vd, vg, vs)
            };
            let mut clamped = false;
            if self.anchored[k] {
                let (avd, avg, avs) = if self.pmos[k] {
                    (-self.anchor_vd[k], -self.anchor_vg[k], -self.anchor_vs[k])
                } else {
                    (self.anchor_vd[k], self.anchor_vg[k], self.anchor_vs[k])
                };
                let vgs_new = vg_t - vs_t;
                let vds_new = vd_t - vs_t;
                let vgs_lim = fetlim(vgs_new, avg - avs, self.vth0[k]);
                let vds_old = avd - avs;
                let vds_lim = if vds_new >= 0.0 {
                    limvds(vds_new, vds_old.max(0.0))
                } else {
                    -limvds(-vds_new, (-vds_old).max(0.0))
                };
                if vgs_lim != vgs_new || vds_lim != vds_new {
                    clamped = true;
                    vg_t = vs_t + vgs_lim;
                    vd_t = vs_t + vds_lim;
                }
            }
            // Back to global node voltages for the stamp-consistent
            // i_const; the limited trial point is what the linearisation
            // is expanded around.
            let (vd_e, vg_e, vs_e) = if self.pmos[k] {
                (-vd_t, -vg_t, -vs_t)
            } else {
                (vd_t, vg_t, vs_t)
            };
            let (id, gdd, gdg, gds_node, region_e) = eval_flat(
                self.pmos[k],
                self.vth0[k],
                self.beta[k],
                self.lambda[k],
                vd_e,
                vg_e,
                vs_e,
            );
            self.gdd[k] = gdd;
            self.gdg[k] = gdg;
            self.gds_node[k] = gds_node;
            self.i_const[k] = id - gdd * vd_e - gdg * vg_e - gds_node * vs_e;
            self.anchor_vd[k] = vd_e;
            self.anchor_vg[k] = vg_e;
            self.anchor_vs[k] = vs_e;
            self.anchor_region[k] = region_e;
            self.anchored[k] = true;
            self.anchor_windows(k, opts);
            tally.evals += 1;
            if clamped {
                tally.clamps += 1;
            }
        }
        tally
    }

    /// Computes the per-terminal latency windows of device `k` around its
    /// freshly set anchor.
    ///
    /// Start from the band radius `abstol + reltol·|anchor|` (using the
    /// anchor magnitude only — never wider than the two-sided
    /// `max(|v|,|anchor|)` band, so every window hit is also a band hit).
    /// Then clip by the conservative region-stability radius: with every
    /// terminal within `r` of its anchor, the swap-folded `vgs` moves by
    /// at most `2r` and `vds` by at most `2r`, so
    ///
    /// * cutoff boundary (`vov = 0`): safe while `2r ≤ |vov|`,
    /// * triode/saturation boundary (`vds = vov`): safe while
    ///   `4r ≤ |vds − vov|` (both coordinates can move against it).
    ///
    /// A device parked on a boundary gets an empty-ish window and simply
    /// re-evaluates — which the exact band-and-region test would force
    /// anyway.
    fn anchor_windows(&mut self, k: usize, opts: &LimitOpts) {
        let (fd, fg, fs) = if self.pmos[k] {
            (-self.anchor_vd[k], -self.anchor_vg[k], -self.anchor_vs[k])
        } else {
            (self.anchor_vd[k], self.anchor_vg[k], self.anchor_vs[k])
        };
        let (vgs, vds) = if fd >= fs {
            (fg - fs, fd - fs)
        } else {
            (fg - fd, fs - fd)
        };
        let vov = vgs - self.vth0[k];
        let r_region = if vov <= 0.0 {
            -vov * 0.5
        } else {
            (vov * 0.5).min((vds - vov).abs() * 0.25)
        };
        let band = |a: f64| (opts.latency_abstol + opts.latency_reltol * a.abs()).min(r_region);
        let (ad, ag, avs) = (self.anchor_vd[k], self.anchor_vg[k], self.anchor_vs[k]);
        let (bd, bg, bs) = (band(ad), band(ag), band(avs));
        self.win[k * 6..k * 6 + 6].copy_from_slice(&[
            ad - bd,
            ad + bd,
            ag - bg,
            ag + bg,
            avs - bs,
            avs + bs,
        ]);
        self.win2[k * 6..k * 6 + 6].copy_from_slice(&[
            ad - 0.5 * bd,
            ad + 0.5 * bd,
            ag - 0.5 * bg,
            ag + 0.5 * bg,
            avs - 0.5 * bs,
            avs + 0.5 * bs,
        ]);
    }

    /// Drops every anchor so the next limited evaluation is unconditional.
    /// Called when `gmin` changes: the frozen linearisations themselves
    /// stay valid (they do not depend on gmin), but homotopy stages move
    /// the solution in large steps and must not inherit stale anchors.
    pub fn invalidate_anchors(&mut self) {
        self.anchored.fill(false);
        for k in 0..self.len {
            self.win[k * 6..k * 6 + 6].copy_from_slice(&EMPTY_WIN);
            self.win2[k * 6..k * 6 + 6].copy_from_slice(&EMPTY_WIN);
        }
    }
}

/// Whether a limited evaluation must be treated as non-converged.
pub(crate) fn forces_iteration(tally: &BatchTally) -> bool {
    tally.clamped()
}

/// SPICE3f5 `DEVfetlim`: limits the per-iteration excursion of a FET
/// gate-source voltage relative to the threshold `vto`, with wide bands
/// when the device is strongly on and tight bands around the threshold so
/// Newton cannot leap across the square law. Returns the (possibly
/// clamped) new voltage; returns `vnew` unchanged inside the bands — in
/// particular `fetlim(v, v, vto) == v`, so a converged point is a fixed
/// point.
pub(crate) fn fetlim(vnew: f64, vold: f64, vto: f64) -> f64 {
    let vtsthi = (2.0 * (vold - vto)).abs() + 2.0;
    let vtstlo = vtsthi / 2.0 + 2.0;
    let vtox = vto + 3.5;
    let delv = vnew - vold;
    if vold >= vto {
        if vold >= vtox {
            if delv <= 0.0 {
                // Going off.
                if vnew >= vtox {
                    if -delv > vtstlo {
                        return vold - vtstlo;
                    }
                } else {
                    return vnew.max(vto + 2.0);
                }
            } else if delv >= vtsthi {
                // Staying on.
                return vold + vtsthi;
            }
        } else if delv <= 0.0 {
            // Middle region, heading down.
            return vnew.max(vto - 0.5);
        } else {
            // Middle region, heading up.
            return vnew.min(vto + 4.0);
        }
    } else if delv <= 0.0 {
        // Off, heading further off.
        if -delv > vtsthi {
            return vold - vtsthi;
        }
    } else {
        // Off, heading on: approach the threshold gently.
        let vtemp = vto + 0.5;
        if vnew <= vtemp {
            if delv > vtstlo {
                return vold + vtstlo;
            }
        } else {
            return vtemp;
        }
    }
    vnew
}

/// SPICE3f5 `DEVlimvds`: limits the drain-source excursion (normal mode,
/// `vnew`/`vold` source-referenced and `vold ≥ 0`). Like [`fetlim`], a
/// converged point is a fixed point.
pub(crate) fn limvds(vnew: f64, vold: f64) -> f64 {
    if vold >= 3.5 {
        if vnew > vold {
            vnew.min(3.0 * vold + 2.0)
        } else if vnew < 3.5 {
            vnew.max(2.0)
        } else {
            vnew
        }
    } else if vnew > vold {
        vnew.min(4.0)
    } else {
        vnew.max(-0.5)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::elements::MosParams;

    fn grid() -> Vec<f64> {
        let mut v = Vec::new();
        let mut t = -3.0;
        while t <= 3.0 {
            v.push(t);
            t += 0.17;
        }
        v
    }

    #[test]
    fn fetlim_fixed_point_at_convergence() {
        // A converged Newton point presents vnew == vold; a limiter that
        // moved it would poison accepted solutions. (This is the property
        // the broken-limiter mutant below violates.)
        for &v in &grid() {
            for &vto in &[0.45, 0.6, -0.2] {
                assert_eq!(fetlim(v, v, vto), v, "v={v} vto={vto}");
            }
        }
    }

    #[test]
    fn limvds_fixed_point_at_convergence() {
        for &v in &grid() {
            if v >= 0.0 {
                assert_eq!(limvds(v, v), v, "v={v}");
            }
        }
    }

    #[test]
    fn fetlim_never_amplifies_the_step() {
        // The limiter may shorten the Newton excursion, never lengthen it
        // or flip its direction.
        for &vold in &grid() {
            for &vnew in &grid() {
                let lim = fetlim(vnew, vold, 0.45);
                assert!(
                    (lim - vold).abs() <= (vnew - vold).abs() + 1e-12,
                    "vold={vold} vnew={vnew} lim={lim}"
                );
                assert!(
                    (lim - vold) * (vnew - vold) >= 0.0,
                    "direction flipped: vold={vold} vnew={vnew} lim={lim}"
                );
            }
        }
    }

    #[test]
    fn fetlim_clamps_large_turn_on_step() {
        // 0 V → 2.5 V gate step across vto = 0.45 must be shortened.
        let lim = fetlim(2.5, 0.0, 0.45);
        assert!(lim < 2.5, "got {lim}");
        assert!(lim > 0.0);
    }

    #[test]
    fn mutant_limiter_is_caught_by_the_property_suite() {
        // Mutation test: the two realistic ways to break the limiter are
        // pinned by properties the real fetlim satisfies, so a mutant
        // cannot land silently.
        // (1) Overshoot (momentum) violates the fixed point that
        // `fetlim_fixed_point_at_convergence` asserts:
        let overshoot = |vnew: f64, vold: f64| vnew + 0.1 * (vnew - vold) + 0.01;
        assert_ne!(overshoot(1.0, 1.0), 1.0, "mutant must fail fixed-point");
        assert_eq!(fetlim(1.0, 1.0, 0.45), 1.0);
        // (2) Stalling (returning vold on every excursion) passes the
        // fixed point but kills turn-on progress, which
        // `fetlim_clamps_large_turn_on_step` requires to stay positive:
        let stall = |_vnew: f64, vold: f64| vold;
        assert!(stall(2.5, 0.0) <= 0.0, "mutant must fail progress");
        assert!(fetlim(2.5, 0.0, 0.45) > 0.0);
    }

    #[test]
    fn exact_batch_matches_scalar_evaluate_bitwise() {
        let params = [
            MosParams::nmos(320e-9, 1.2e-6),
            MosParams::pmos(865e-9, 1.2e-6),
            MosParams::nmos(1.28e-6, 1.2e-6).with_lambda(0.0),
        ];
        let ops: Vec<IterOp> = params
            .iter()
            .enumerate()
            .map(|(k, p)| IterOp::Mosfet {
                rd: Some(k),
                rg: Some((k + 1) % 3),
                rs: if k == 2 { None } else { Some((k + 2) % 3) },
                params: *p,
            })
            .collect();
        let mut batch = MosBatch::gather(&ops);
        assert_eq!(batch.len(), 3);
        let x = [1.9, 0.3, 2.5];
        let tally = batch.eval_exact(&x);
        assert_eq!(tally.evals, 3);
        assert_eq!(tally.latency_hits, 0);
        for (k, p) in params.iter().enumerate() {
            let vd = x[k];
            let vg = x[(k + 1) % 3];
            let vs = if k == 2 { 0.0 } else { x[(k + 2) % 3] };
            let op = p.evaluate(vd, vg, vs);
            assert_eq!(batch.gdd[k].to_bits(), op.gdd.to_bits());
            assert_eq!(batch.gdg[k].to_bits(), op.gdg.to_bits());
            assert_eq!(batch.gds_node[k].to_bits(), op.gds_node.to_bits());
            let i_const = op.id - op.gdd * vd - op.gdg * vg - op.gds_node * vs;
            assert_eq!(batch.i_const[k].to_bits(), i_const.to_bits());
        }
    }

    #[test]
    fn latency_freezes_bits_within_band_and_releases_outside() {
        let ops = [IterOp::Mosfet {
            rd: Some(0),
            rg: Some(1),
            rs: None,
            params: MosParams::nmos(320e-9, 1.2e-6),
        }];
        let mut batch = MosBatch::gather(&ops);
        let opts = LimitOpts::default();
        let x0 = [1.2, 2.5];
        let t0 = batch.eval_limited(&x0, &opts);
        assert_eq!(t0.evals, 1);
        let frozen = (batch.gdd[0], batch.gdg[0], batch.i_const[0]);
        // Sub-band wiggle: reuse, bit-identical outputs.
        let x1 = [1.2 + 1e-7, 2.5 - 1e-7];
        let t1 = batch.eval_limited(&x1, &opts);
        assert_eq!(t1.latency_hits, 1);
        assert_eq!(t1.evals, 0);
        assert_eq!(batch.gdd[0].to_bits(), frozen.0.to_bits());
        assert_eq!(batch.gdg[0].to_bits(), frozen.1.to_bits());
        assert_eq!(batch.i_const[0].to_bits(), frozen.2.to_bits());
        // Past the band: re-evaluates. (Check `gdd`, not `gdg`: the device
        // sits in triode where gm depends only on vds, which did not move.)
        let x2 = [1.2, 2.2];
        let t2 = batch.eval_limited(&x2, &opts);
        assert_eq!(t2.evals, 1);
        assert_ne!(batch.gdd[0].to_bits(), frozen.0.to_bits());
    }

    #[test]
    fn region_change_forces_reevaluation_even_inside_band() {
        // Park the device just above threshold so a tiny wiggle crosses
        // into cutoff: the region test must override the voltage band.
        let ops = [IterOp::Mosfet {
            rd: Some(0),
            rg: Some(1),
            rs: None,
            params: MosParams::nmos(320e-9, 1.2e-6),
        }];
        let mut batch = MosBatch::gather(&ops);
        let opts = LimitOpts {
            latency_reltol: 1e-1,
            latency_abstol: 1e-2,
        };
        let t0 = batch.eval_limited(&[2.0, 0.45 + 1e-3], &opts);
        assert_eq!(t0.evals, 1);
        let t1 = batch.eval_limited(&[2.0, 0.45 - 1e-3], &opts);
        assert_eq!(t1.evals, 1, "cutoff crossing must re-evaluate");
        assert_eq!(batch.i_const[0], 0.0);
    }

    #[test]
    fn clamped_eval_reports_clamp() {
        let ops = [IterOp::Mosfet {
            rd: Some(0),
            rg: Some(1),
            rs: None,
            params: MosParams::nmos(320e-9, 1.2e-6),
        }];
        let mut batch = MosBatch::gather(&ops);
        let opts = LimitOpts::default();
        // Anchor at gate off…
        batch.eval_limited(&[0.0, 0.0], &opts);
        // …then slam the gate to 2.5 V: fetlim must clamp and report.
        let t = batch.eval_limited(&[2.5, 2.5], &opts);
        assert_eq!(t.evals, 1);
        assert_eq!(t.clamps, 1);
        assert!(forces_iteration(&t));
        // Converging to the clamp point releases it.
        let t2 = batch.eval_limited(&[2.5, 2.5], &opts);
        let t3 = batch.eval_limited(&[2.5, 2.5], &opts);
        assert!(
            !forces_iteration(&t3) || t2.clamps + t3.clamps < 2,
            "clamp window must widen towards the trial point"
        );
    }
}
