//! DC operating-point analysis.
//!
//! Finds the static solution of a circuit with capacitors open. For
//! nonlinear circuits that refuse to converge from a cold start, the
//! solver falls back to **gmin stepping** (a shunt conductance from every
//! node to ground that is relaxed toward zero) and then **source stepping**
//! (all independent sources ramped from 0 to 100 %), the same continuation
//! strategies used by production SPICE implementations.

use crate::analysis::mna::{MnaLayout, NewtonOpts, SolveContext};
use crate::analysis::plan::{EngineSel, PlanMode, SolverEngine};
use crate::analysis::solution::Solution;
use crate::error::Error;
use crate::netlist::{Circuit, ElementId, NodeId};
use crate::telemetry::{Event, Probe};

/// Result of a DC operating-point analysis.
#[derive(Debug, Clone)]
pub struct DcSolution {
    x: Vec<f64>,
    n_nodes: usize,
    branch_of: Vec<Option<usize>>,
}

impl DcSolution {
    /// Voltage of `node` in volts.
    ///
    /// # Panics
    ///
    /// Panics if the node does not belong to the analysed circuit.
    pub fn voltage(&self, node: NodeId) -> f64 {
        let i = node.index();
        assert!(i < self.n_nodes, "node {node} out of range");
        if i == 0 {
            0.0
        } else {
            self.x[i - 1]
        }
    }

    /// Branch current of a voltage source, in the SPICE convention
    /// (positive into the `pos` terminal), or an error for other elements.
    ///
    /// # Errors
    ///
    /// Returns [`Error::UnknownProbe`] if the element is not a voltage
    /// source.
    pub fn branch_current(&self, element: ElementId) -> Result<f64, Error> {
        let idx = element.index();
        match self.branch_of.get(idx).copied().flatten() {
            Some(b) => Ok(self.x[self.n_nodes - 1 + b]),
            None => Err(Error::UnknownProbe {
                what: format!("branch current of {element}"),
            }),
        }
    }

    /// The raw solution vector (node voltages then branch currents).
    pub fn raw(&self) -> &[f64] {
        &self.x
    }
}

impl Solution for DcSolution {
    /// Node voltage in volts.
    type Voltage = f64;
    /// Branch current in amperes (SPICE convention).
    type Current = f64;

    fn voltage(&self, node: NodeId) -> Result<f64, Error> {
        let i = node.index();
        if i >= self.n_nodes {
            return Err(Error::UnknownProbe {
                what: format!("voltage of {node}"),
            });
        }
        Ok(if i == 0 { 0.0 } else { self.x[i - 1] })
    }

    fn branch_current(&self, element: ElementId) -> Result<f64, Error> {
        DcSolution::branch_current(self, element)
    }
}

/// Computes the DC operating point of `circuit`.
///
/// # Errors
///
/// Returns [`Error::InvalidCircuit`] for structurally broken netlists,
/// [`Error::SingularMatrix`] for under-determined ones, and
/// [`Error::NonConvergence`] if every continuation strategy fails.
///
/// # Examples
///
/// ```
/// use mssim::prelude::*;
///
/// # fn main() -> Result<(), mssim::Error> {
/// let mut ckt = Circuit::new();
/// let a = ckt.node("a");
/// let b = ckt.node("b");
/// ckt.vsource("V1", a, Circuit::GND, Waveform::dc(3.0));
/// ckt.resistor("R1", a, b, 2e3);
/// ckt.resistor("R2", b, Circuit::GND, 1e3);
/// let op = Session::new(&ckt).dc_operating_point()?;
/// assert!((op.voltage(b) - 1.0).abs() < 1e-9);
/// # Ok(())
/// # }
/// ```
#[deprecated(
    since = "0.2.0",
    note = "use `Session::new(&circuit).dc_operating_point()` instead"
)]
pub fn dc_operating_point(circuit: &Circuit) -> Result<DcSolution, Error> {
    crate::session::Session::new(circuit).dc_operating_point()
}

/// [`Session::dc_operating_point`](crate::Session::dc_operating_point) on
/// the naive per-iteration assembler, bypassing the compiled stamp plan.
/// Kept for golden-equivalence tests and as the benchmark baseline; not
/// part of the supported API.
///
/// # Errors
///
/// Same conditions as [`Session::dc_operating_point`](crate::Session::dc_operating_point).
#[doc(hidden)]
pub fn dc_operating_point_reference(circuit: &Circuit) -> Result<DcSolution, Error> {
    crate::session::Session::new(circuit)
        .with_reference_solver(true)
        .dc_operating_point()
}

pub(crate) fn dc_operating_point_impl(
    circuit: &Circuit,
    sel: EngineSel,
    probe: Probe<'_>,
) -> Result<DcSolution, Error> {
    dc_operating_point_opts(circuit, sel, None, probe)
}

/// [`dc_operating_point_impl`] with an explicit per-solve Newton iteration
/// budget (`None` = [`NewtonOpts::default`]). The budget applies to every
/// rung of the homotopy ladder, which makes convergence failures cheap to
/// provoke in tests and lets fault campaigns bound worst-case solve time.
pub(crate) fn dc_operating_point_opts(
    circuit: &Circuit,
    sel: EngineSel,
    max_iter: Option<usize>,
    mut probe: Probe<'_>,
) -> Result<DcSolution, Error> {
    crate::lint::preflight(circuit, "dc", crate::lint::LintContext::Dc)?;
    let layout = MnaLayout::new(circuit);
    let mut engine = SolverEngine::new(circuit, &layout, PlanMode::Dc, sel);
    probe.emit(Event::AnalysisStart { analysis: "dc" });
    let result = solve_dc_opts(circuit, &layout, &mut engine, max_iter, &mut probe);
    probe.report(&engine, "dc");
    if result.is_ok() {
        probe.emit(Event::AnalysisEnd { analysis: "dc" });
    }
    result
}

/// The continuation ladder of [`solve_dc_opts`], but with the direct
/// Newton attempt seeded from
/// `warm` — typically the previous sweep point's solution — instead of
/// zeros; on success the accepted solution is written back into `warm`.
/// Adjacent sweep points differ by one small source step, so the seeded
/// attempt usually converges in a couple of iterations and, on the plan
/// engine, keeps the device anchors and factorization caches hot. The
/// continuation ladder still starts from its usual cold states when the
/// seeded attempt fails, so robustness is unchanged (`warm` is then left
/// untouched: a stale seed is still a valid next guess).
pub(crate) fn solve_dc_seeded(
    circuit: &Circuit,
    layout: &MnaLayout,
    engine: &mut SolverEngine,
    warm: &mut [f64],
    probe: &mut Probe<'_>,
) -> Result<DcSolution, Error> {
    let mut x = warm.to_vec();
    let direct = probe.solve(
        engine,
        circuit,
        layout,
        &mut x,
        SolveContext {
            time: 0.0,
            source_scale: 1.0,
            caps: None,
            inds: None,
            gshunt: 0.0,
        },
        &NewtonOpts::default(),
        "dc",
    );
    probe.emit(Event::Homotopy {
        stage: "direct",
        step: 0,
        param: 0.0,
        converged: direct.is_ok(),
    });
    if direct.is_ok() {
        warm.copy_from_slice(&x);
        return Ok(pack(circuit, layout, x));
    }
    solve_dc_opts(circuit, layout, engine, None, probe)
}

/// [`solve_dc_with`] with an explicit per-solve Newton iteration budget.
pub(crate) fn solve_dc_opts(
    circuit: &Circuit,
    layout: &MnaLayout,
    engine: &mut SolverEngine,
    max_iter: Option<usize>,
    probe: &mut Probe<'_>,
) -> Result<DcSolution, Error> {
    let n = layout.size();
    let opts = match max_iter {
        Some(max_iter) => NewtonOpts {
            max_iter,
            ..NewtonOpts::default()
        },
        None => NewtonOpts::default(),
    };
    // Total continuation attempts across all stages, reported on the final
    // error so callers can see how much of the ladder was consumed.
    let mut attempts = 0usize;

    let mut x = vec![0.0; n];
    let direct = probe.solve(
        engine,
        circuit,
        layout,
        &mut x,
        SolveContext {
            time: 0.0,
            source_scale: 1.0,
            caps: None,
            inds: None,
            gshunt: 0.0,
        },
        &opts,
        "dc",
    );
    probe.emit(Event::Homotopy {
        stage: "direct",
        step: 0,
        param: 0.0,
        converged: direct.is_ok(),
    });
    attempts += 1;
    if direct.is_ok() {
        return Ok(pack(circuit, layout, x));
    }

    // Gmin stepping: relax a node shunt from strong to none, warm-starting
    // each stage from the previous solution.
    let mut x = vec![0.0; n];
    let mut ok = true;
    for k in 0..=12 {
        let gshunt = if k == 12 { 0.0 } else { 10f64.powi(-k - 1) };
        let r = probe.solve(
            engine,
            circuit,
            layout,
            &mut x,
            SolveContext {
                time: 0.0,
                source_scale: 1.0,
                caps: None,
                inds: None,
                gshunt,
            },
            &opts,
            "dc",
        );
        probe.emit(Event::Homotopy {
            stage: "gmin",
            step: k as u32,
            param: gshunt,
            converged: r.is_ok(),
        });
        attempts += 1;
        if r.is_err() {
            ok = false;
            break;
        }
    }
    if ok {
        return Ok(pack(circuit, layout, x));
    }

    // Source stepping: ramp all sources from 10 % to 100 %.
    let mut x = vec![0.0; n];
    for step in 1..=10 {
        let scale = step as f64 / 10.0;
        let r = probe.solve(
            engine,
            circuit,
            layout,
            &mut x,
            SolveContext {
                time: 0.0,
                source_scale: scale,
                caps: None,
                inds: None,
                gshunt: 0.0,
            },
            &opts,
            "dc",
        );
        probe.emit(Event::Homotopy {
            stage: "source",
            step: step as u32,
            param: scale,
            converged: r.is_ok(),
        });
        attempts += 1;
        // The whole ladder is spent: report which stage died and how many
        // continuation attempts were burned getting there.
        r.map_err(|e| match e {
            Error::NonConvergence {
                analysis,
                time,
                iterations,
                ..
            } => Error::NonConvergence {
                analysis,
                time,
                iterations,
                stage: "source",
                attempts,
            },
            other => other,
        })?;
    }
    Ok(pack(circuit, layout, x))
}

fn pack(circuit: &Circuit, layout: &MnaLayout, x: Vec<f64>) -> DcSolution {
    DcSolution {
        x,
        n_nodes: circuit.node_count(),
        branch_of: layout.branch_of.clone(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::elements::MosParams;
    use crate::session::Session;
    use crate::waveform::Waveform;

    #[test]
    fn divider() {
        let mut ckt = Circuit::new();
        let a = ckt.node("a");
        let b = ckt.node("b");
        let v1 = ckt.vsource("V1", a, Circuit::GND, Waveform::dc(3.0));
        ckt.resistor("R1", a, b, 2e3);
        let r2 = ckt.resistor("R2", b, Circuit::GND, 1e3);
        let op = Session::new(&ckt).dc_operating_point().unwrap();
        assert!((op.voltage(b) - 1.0).abs() < 1e-9);
        assert!((op.voltage(a) - 3.0).abs() < 1e-9);
        assert_eq!(op.voltage(Circuit::GND), 0.0);
        // 1 mA flows; SPICE convention: negative at the source.
        assert!((op.branch_current(v1).unwrap() + 1e-3).abs() < 1e-9);
        assert!(op.branch_current(r2).is_err());
    }

    #[test]
    fn capacitor_is_open_in_dc() {
        let mut ckt = Circuit::new();
        let a = ckt.node("a");
        let b = ckt.node("b");
        ckt.vsource("V1", a, Circuit::GND, Waveform::dc(5.0));
        ckt.resistor("R1", a, b, 1e3);
        ckt.capacitor("C1", b, Circuit::GND, 1e-9);
        let op = Session::new(&ckt).dc_operating_point().unwrap();
        // No DC path through the cap: the full supply appears across it.
        assert!((op.voltage(b) - 5.0).abs() < 1e-3);
    }

    #[test]
    fn nmos_inverter_static_transfer() {
        // Resistive-load NMOS inverter: gate high pulls the output low.
        let mut ckt = Circuit::new();
        let vdd = ckt.node("vdd");
        let gate = ckt.node("g");
        let out = ckt.node("out");
        ckt.vsource("VDD", vdd, Circuit::GND, Waveform::dc(2.5));
        ckt.vsource("VG", gate, Circuit::GND, Waveform::dc(2.5));
        ckt.resistor("RL", vdd, out, 100e3);
        ckt.mosfet(
            "M1",
            out,
            gate,
            Circuit::GND,
            MosParams::nmos(320e-9, 1.2e-6),
        );
        let op = Session::new(&ckt).dc_operating_point().unwrap();
        let v_out = op.voltage(out);
        // Ron ≈ 9.1 kΩ against 100 kΩ load → ~0.21 V.
        assert!(v_out > 0.05 && v_out < 0.4, "v_out = {v_out}");
    }

    #[test]
    fn nmos_inverter_gate_low_output_high() {
        let mut ckt = Circuit::new();
        let vdd = ckt.node("vdd");
        let gate = ckt.node("g");
        let out = ckt.node("out");
        ckt.vsource("VDD", vdd, Circuit::GND, Waveform::dc(2.5));
        ckt.vsource("VG", gate, Circuit::GND, Waveform::dc(0.0));
        ckt.resistor("RL", vdd, out, 100e3);
        ckt.mosfet(
            "M1",
            out,
            gate,
            Circuit::GND,
            MosParams::nmos(320e-9, 1.2e-6),
        );
        let op = Session::new(&ckt).dc_operating_point().unwrap();
        assert!((op.voltage(out) - 2.5).abs() < 0.01);
    }

    #[test]
    fn cmos_inverter_rails() {
        let params_n = MosParams::nmos(320e-9, 1.2e-6);
        let params_p = MosParams::pmos(865e-9, 1.2e-6);
        for (vin, expect_hi) in [(0.0, true), (2.5, false)] {
            let mut ckt = Circuit::new();
            let vdd = ckt.node("vdd");
            let gate = ckt.node("g");
            let out = ckt.node("out");
            ckt.vsource("VDD", vdd, Circuit::GND, Waveform::dc(2.5));
            ckt.vsource("VG", gate, Circuit::GND, Waveform::dc(vin));
            ckt.mosfet("MP", out, gate, vdd, params_p);
            ckt.mosfet("MN", out, gate, Circuit::GND, params_n);
            // Small load so the output is well defined.
            ckt.resistor("RL", out, Circuit::GND, 10e6);
            let op = Session::new(&ckt).dc_operating_point().unwrap();
            let v = op.voltage(out);
            if expect_hi {
                assert!(v > 2.4, "vin={vin}: v_out={v}");
            } else {
                assert!(v < 0.1, "vin={vin}: v_out={v}");
            }
        }
    }

    #[test]
    fn diode_forward_drop() {
        let mut ckt = Circuit::new();
        let a = ckt.node("a");
        let k = ckt.node("k");
        ckt.vsource("V1", a, Circuit::GND, Waveform::dc(5.0));
        ckt.resistor("R1", a, k, 1e3);
        ckt.diode("D1", k, Circuit::GND, 1e-14, 1.0);
        let op = Session::new(&ckt).dc_operating_point().unwrap();
        let vd = op.voltage(k);
        assert!(vd > 0.5 && vd < 0.8, "diode drop {vd}");
    }

    #[test]
    fn invalid_circuit_is_rejected() {
        let ckt = Circuit::new();
        assert!(matches!(
            Session::new(&ckt).dc_operating_point(),
            Err(Error::LintRejected { analysis: "dc", .. })
        ));
    }

    #[test]
    fn switch_follows_control() {
        let mut ckt = Circuit::new();
        let vdd = ckt.node("vdd");
        let ctl = ckt.node("ctl");
        let out = ckt.node("out");
        ckt.vsource("VDD", vdd, Circuit::GND, Waveform::dc(2.0));
        ckt.vsource("VC", ctl, Circuit::GND, Waveform::dc(1.5));
        ckt.switch("S1", vdd, out, ctl, Circuit::GND, 1.0, 1.0, 1e9);
        ckt.resistor("RL", out, Circuit::GND, 1e3);
        let op = Session::new(&ckt).dc_operating_point().unwrap();
        assert!((op.voltage(out) - 2.0).abs() < 0.01, "closed switch passes");
    }
}
