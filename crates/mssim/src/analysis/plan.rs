//! Compiled stamp plans: the transient/DC hot path.
//!
//! [`mna::assemble`] walks the element enum list and re-resolves every
//! `Option<row>` on **every Newton iteration of every time point**. For the
//! paper's sweeps that is thousands of transients, each re-doing identical
//! work. This module compiles a circuit once into a flat stamp program with
//! pre-resolved matrix indices, partitioned by how often each contribution
//! can change:
//!
//! * **base** — resistor conductances, source/inductor incidence entries,
//!   gmin shunts and capacitor/inductor companion `geq` terms. Rebuilt only
//!   when the *base key* (gshunt, gmin, companion `geq` values) changes,
//!   i.e. once per (`dt`, method) combination or gmin-stepping stage.
//! * **per-solve rhs** — independent source values and companion history
//!   currents `ieq`; constant across the Newton iterations of one solve.
//! * **per-iteration** — MOSFET/diode linearisations and switch states,
//!   plus any base/rhs contribution *demoted* because a dynamic device
//!   writes the same matrix entry or rhs row earlier in element order
//!   (floating-point addition is commutative but not associative, so the
//!   per-entry accumulation order of the reference assembler must be
//!   preserved exactly to keep results bitwise identical).
//!
//! On top of the plan, [`PlanSolver`] separates *evaluating* the dynamic
//! contributions from *writing* them. Each iteration only evaluates the
//! devices into small value lists; the assembled system's identity is the
//! pair (base generation counter, dynamic value bits), so cache checks
//! compare a handful of floats instead of O(n²) matrix bytes. Three reuse
//! tiers follow, cheapest first:
//!
//! * **Newton bypass** — if no solution entry a device reads moved since
//!   the last evaluation of this solve, even the evaluation is skipped and
//!   the previous solution is reused (this makes the Newton confirmation
//!   iteration and linear circuits near-free).
//! * **solution cache** — same identity as the last solved system ⇒ the
//!   previous solution verbatim.
//! * **factorization cache** — same matrix identity as the last factored
//!   system ⇒ the matrix is never even written; only the rhs is replayed
//!   and back-substituted through the retained [`LuFactors`] in O(n²).
//!
//! Every tier keys on exact bit patterns, so it can never fire on a system
//! that differs from the one it cached — the optimized path is bit-for-bit
//! equivalent to [`mna::solve_newton`] by construction.

use super::mna::{self, MnaLayout, NewtonOpts, SolveContext};
use super::mos_batch::{self, MosBatch};
use crate::elements::{Element, MosParams};
use crate::error::Error;
use crate::linear::{DenseMatrix, LuFactors, SparseReplayLu};
use crate::netlist::{Circuit, ElementId};

pub use super::mos_batch::LimitOpts;

/// How the batched MOSFET block evaluates devices.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub(crate) enum DeviceEval {
    /// Every device, every iteration, through the exact arithmetic of
    /// `MosParams::evaluate` — bit-for-bit identical to the reference
    /// assembler.
    #[default]
    Exact,
    /// SPICE-style `fetlim`/`limvds` voltage limiting plus device latency
    /// (see [`MosBatch::eval_limited`]): equivalent to [`Exact`]
    /// (DeviceEval::Exact) at solver tolerance, not bitwise.
    Limited(LimitOpts),
}

/// Which solver backs an analysis run: the reference assembler or the
/// compiled plan, and in the latter case how devices are evaluated.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub(crate) struct EngineSel {
    /// Run the naive per-iteration assembler.
    pub reference: bool,
    /// Device evaluation flavour of the plan path (ignored when
    /// `reference` is set).
    pub eval: DeviceEval,
}

/// Which analysis family the plan stamps for. The capacitor/inductor
/// patterns differ structurally between DC (caps open behind gmin,
/// inductors ideal shorts) and transient (integration companions), so the
/// mode is fixed at compile time and asserted against the solve context.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) enum PlanMode {
    /// DC operating point / sweep: `ctx.caps`/`ctx.inds` are `None`.
    Dc,
    /// Transient step: companion slices are present.
    Tran,
}

/// A value producer for one stamp contribution. `sign` fields are ±1.0;
/// multiplying by ±1.0 is exact, so sign-folded reads match the reference
/// assembler's negations bit for bit.
#[derive(Debug, Clone, Copy)]
pub(crate) enum ValRef {
    /// Fixed at compile time (resistor conductances, incidence ±1).
    Const(f64),
    /// The Newton gmin option (DC capacitor leak conductance).
    Gmin { sign: f64 },
    /// Capacitor companion conductance for slot `slot`.
    CapGeq { slot: usize, sign: f64 },
    /// Inductor companion conductance for slot `slot`.
    IndGeq { slot: usize, sign: f64 },
    /// Capacitor companion history current for slot `slot`.
    CapIeq { slot: usize, sign: f64 },
    /// Inductor companion history current for slot `slot`.
    IndIeq { slot: usize },
    /// Scaled waveform value of independent source `src`.
    Src { src: usize, sign: f64 },
}

/// Evaluates a [`ValRef`] against the current solve inputs.
#[inline]
fn eval_val(val: ValRef, ctx: &SolveContext<'_>, gmin: f64, src_vals: &[f64]) -> f64 {
    match val {
        ValRef::Const(c) => c,
        ValRef::Gmin { sign } => sign * gmin,
        ValRef::CapGeq { slot, sign } => sign * ctx.caps.expect("tran plan needs caps")[slot].geq,
        ValRef::IndGeq { slot, sign } => sign * ctx.inds.expect("tran plan needs inds")[slot].geq,
        ValRef::CapIeq { slot, sign } => sign * ctx.caps.expect("tran plan needs caps")[slot].ieq,
        ValRef::IndIeq { slot } => ctx.inds.expect("tran plan needs inds")[slot].ieq,
        ValRef::Src { src, sign } => sign * src_vals[src],
    }
}

/// One contribution to the system matrix at flat index `idx = row·n + col`.
#[derive(Debug, Clone, Copy)]
pub(crate) struct MatOp {
    pub(crate) idx: usize,
    pub(crate) val: ValRef,
}

/// One contribution to the right-hand side at `row`.
#[derive(Debug, Clone, Copy)]
pub(crate) struct RhsOp {
    pub(crate) row: usize,
    pub(crate) val: ValRef,
}

/// A per-iteration stamp: either a demoted base/rhs contribution replayed
/// at its original element position, or a nonlinear device linearisation.
#[derive(Debug, Clone, Copy)]
pub(crate) enum IterOp {
    Mat(MatOp),
    Rhs(RhsOp),
    Mosfet {
        rd: Option<usize>,
        rg: Option<usize>,
        rs: Option<usize>,
        params: MosParams,
    },
    Switch {
        ra: Option<usize>,
        rb: Option<usize>,
        rp: Option<usize>,
        rn: Option<usize>,
        threshold: f64,
        g_on: f64,
        g_off: f64,
    },
    Diode {
        ra: Option<usize>,
        rk: Option<usize>,
        i_sat: f64,
        nvt: f64,
    },
}

/// The compiled stamp program for one circuit/mode/layout combination.
#[derive(Debug, Clone)]
pub(crate) struct StampPlan {
    pub(crate) n: usize,
    pub(crate) node_rows: usize,
    pub(crate) mode: PlanMode,
    /// Contributions baked into the cached base matrix at rebase time.
    pub(crate) base_ops: Vec<MatOp>,
    /// Contributions baked into `rhs0` once per solve.
    pub(crate) rhs0_ops: Vec<RhsOp>,
    /// Replayed every Newton iteration, in element order.
    pub(crate) iter_ops: Vec<IterOp>,
    /// Element ids of independent sources, in element order; `ValRef::Src`
    /// indexes into this list. Waveforms are read live from the circuit at
    /// each solve, so `set_waveform` between solves needs no recompile.
    pub(crate) sources: Vec<ElementId>,
    /// Sorted, deduplicated rows of the solution vector that the dynamic
    /// stamps read (device terminal voltages). If none of these entries
    /// changed bit patterns since the last evaluation within one solve,
    /// re-assembly would reproduce the identical system — the basis of
    /// the Newton bypass.
    pub(crate) dyn_reads: Vec<usize>,
    pub(crate) n_cap_slots: usize,
    pub(crate) n_ind_slots: usize,
    /// Element index (into the circuit's element list) that produced each
    /// entry of `base_ops`, for the abstract interpreter's per-element
    /// widening. Parallel to `base_ops`.
    pub(crate) base_elems: Vec<usize>,
    /// Originating element index of each `rhs0_ops` entry.
    pub(crate) rhs0_elems: Vec<usize>,
    /// Originating element index of each `iter_ops` entry.
    pub(crate) iter_elems: Vec<usize>,
}

/// Classification of a pending (non-device) stamp atom during compilation.
#[derive(Debug, Clone, Copy)]
enum Target {
    Mat(usize),
    Rhs(usize),
}

struct PendingAtom {
    seq: usize,
    target: Target,
    val: ValRef,
}

impl StampPlan {
    /// Compiles `ckt` for `mode` against `layout`.
    pub fn compile(ckt: &Circuit, layout: &MnaLayout, mode: PlanMode) -> Self {
        let n = layout.size();
        let node_rows = layout.n_nodes - 1;
        // `first_dyn[target]` is the element index of the first nonlinear
        // device touching that matrix entry / rhs row, or usize::MAX.
        let mut mat_first_dyn = vec![usize::MAX; n * n];
        let mut rhs_first_dyn = vec![usize::MAX; n];

        // Worst-case atom counts: 4 per two-terminal conductance, 2 rhs
        // atoms per capacitor, 1 per inductor — the layout's cap/ind counts
        // give exact preallocation for the companion-driven portions.
        let mut pending: Vec<PendingAtom> =
            Vec::with_capacity(4 * ckt.element_count() + 4 * layout.n_caps + 5 * layout.n_inds);
        let mut rhs_pending: Vec<PendingAtom> =
            Vec::with_capacity(2 * layout.n_caps + layout.n_inds + ckt.element_count());
        let mut devices: Vec<(usize, IterOp)> = Vec::new();
        let mut sources: Vec<ElementId> = Vec::new();

        let row = |node| layout.node_row(node);
        let midx = |r: usize, c: usize| r * n + c;

        // Replicates `stamp_conductance`'s four adds with sign folded into
        // the value reference; entries for grounded terminals are skipped
        // exactly as the reference assembler skips them.
        let push_g = |pending: &mut Vec<PendingAtom>,
                      seq: usize,
                      ra: Option<usize>,
                      rb: Option<usize>,
                      pos: ValRef,
                      neg: ValRef| {
            if let Some(ra) = ra {
                pending.push(PendingAtom {
                    seq,
                    target: Target::Mat(midx(ra, ra)),
                    val: pos,
                });
                if let Some(rb) = rb {
                    pending.push(PendingAtom {
                        seq,
                        target: Target::Mat(midx(ra, rb)),
                        val: neg,
                    });
                }
            }
            if let Some(rb) = rb {
                pending.push(PendingAtom {
                    seq,
                    target: Target::Mat(midx(rb, rb)),
                    val: pos,
                });
                if let Some(ra) = ra {
                    pending.push(PendingAtom {
                        seq,
                        target: Target::Mat(midx(rb, ra)),
                        val: neg,
                    });
                }
            }
        };
        let mark_g =
            |mat_first_dyn: &mut [usize], seq: usize, ra: Option<usize>, rb: Option<usize>| {
                let mut mark = |idx: usize| {
                    if mat_first_dyn[idx] == usize::MAX {
                        mat_first_dyn[idx] = seq;
                    }
                };
                if let Some(ra) = ra {
                    mark(midx(ra, ra));
                    if let Some(rb) = rb {
                        mark(midx(ra, rb));
                    }
                }
                if let Some(rb) = rb {
                    mark(midx(rb, rb));
                    if let Some(ra) = ra {
                        mark(midx(rb, ra));
                    }
                }
            };

        for (seq, (_, _, elem)) in ckt.elements().enumerate() {
            match elem {
                Element::Resistor { a, b, ohms } => {
                    let g = 1.0 / ohms;
                    push_g(
                        &mut pending,
                        seq,
                        row(*a),
                        row(*b),
                        ValRef::Const(g),
                        ValRef::Const(-g),
                    );
                }
                Element::Capacitor { a, b, .. } => {
                    let (ra, rb) = (row(*a), row(*b));
                    match mode {
                        PlanMode::Tran => {
                            let slot = layout.cap_of[seq].expect("capacitor slot");
                            push_g(
                                &mut pending,
                                seq,
                                ra,
                                rb,
                                ValRef::CapGeq { slot, sign: 1.0 },
                                ValRef::CapGeq { slot, sign: -1.0 },
                            );
                            // stamp_current(b → a): `to` (a) first, then `from` (b).
                            if let Some(ra) = ra {
                                rhs_pending.push(PendingAtom {
                                    seq,
                                    target: Target::Rhs(ra),
                                    val: ValRef::CapIeq { slot, sign: 1.0 },
                                });
                            }
                            if let Some(rb) = rb {
                                rhs_pending.push(PendingAtom {
                                    seq,
                                    target: Target::Rhs(rb),
                                    val: ValRef::CapIeq { slot, sign: -1.0 },
                                });
                            }
                        }
                        PlanMode::Dc => {
                            push_g(
                                &mut pending,
                                seq,
                                ra,
                                rb,
                                ValRef::Gmin { sign: 1.0 },
                                ValRef::Gmin { sign: -1.0 },
                            );
                        }
                    }
                }
                Element::Inductor { a, b, .. } => {
                    let br = layout.branch_row(layout.branch_of[seq].expect("inductor branch"));
                    let (ra, rb) = (row(*a), row(*b));
                    if let Some(ra) = ra {
                        pending.push(PendingAtom {
                            seq,
                            target: Target::Mat(midx(ra, br)),
                            val: ValRef::Const(1.0),
                        });
                    }
                    if let Some(rb) = rb {
                        pending.push(PendingAtom {
                            seq,
                            target: Target::Mat(midx(rb, br)),
                            val: ValRef::Const(-1.0),
                        });
                    }
                    match mode {
                        PlanMode::Tran => {
                            let slot = layout.ind_of[seq].expect("inductor slot");
                            pending.push(PendingAtom {
                                seq,
                                target: Target::Mat(midx(br, br)),
                                val: ValRef::Const(1.0),
                            });
                            if let Some(ra) = ra {
                                pending.push(PendingAtom {
                                    seq,
                                    target: Target::Mat(midx(br, ra)),
                                    val: ValRef::IndGeq { slot, sign: -1.0 },
                                });
                            }
                            if let Some(rb) = rb {
                                pending.push(PendingAtom {
                                    seq,
                                    target: Target::Mat(midx(br, rb)),
                                    val: ValRef::IndGeq { slot, sign: 1.0 },
                                });
                            }
                            rhs_pending.push(PendingAtom {
                                seq,
                                target: Target::Rhs(br),
                                val: ValRef::IndIeq { slot },
                            });
                        }
                        PlanMode::Dc => {
                            if let Some(ra) = ra {
                                pending.push(PendingAtom {
                                    seq,
                                    target: Target::Mat(midx(br, ra)),
                                    val: ValRef::Const(1.0),
                                });
                            }
                            if let Some(rb) = rb {
                                pending.push(PendingAtom {
                                    seq,
                                    target: Target::Mat(midx(br, rb)),
                                    val: ValRef::Const(-1.0),
                                });
                            }
                            // rhs[br] = 0.0 on a zeroed rhs: no atom needed.
                        }
                    }
                }
                Element::VoltageSource { pos, neg, .. } => {
                    let src = sources.len();
                    sources.push(ElementId(seq));
                    let br = layout.branch_row(layout.branch_of[seq].expect("vsource branch"));
                    if let Some(rp) = row(*pos) {
                        pending.push(PendingAtom {
                            seq,
                            target: Target::Mat(midx(rp, br)),
                            val: ValRef::Const(1.0),
                        });
                        pending.push(PendingAtom {
                            seq,
                            target: Target::Mat(midx(br, rp)),
                            val: ValRef::Const(1.0),
                        });
                    }
                    if let Some(rn) = row(*neg) {
                        pending.push(PendingAtom {
                            seq,
                            target: Target::Mat(midx(rn, br)),
                            val: ValRef::Const(-1.0),
                        });
                        pending.push(PendingAtom {
                            seq,
                            target: Target::Mat(midx(br, rn)),
                            val: ValRef::Const(-1.0),
                        });
                    }
                    rhs_pending.push(PendingAtom {
                        seq,
                        target: Target::Rhs(br),
                        val: ValRef::Src { src, sign: 1.0 },
                    });
                }
                Element::CurrentSource { from, to, .. } => {
                    let src = sources.len();
                    sources.push(ElementId(seq));
                    if let Some(rt) = row(*to) {
                        rhs_pending.push(PendingAtom {
                            seq,
                            target: Target::Rhs(rt),
                            val: ValRef::Src { src, sign: 1.0 },
                        });
                    }
                    if let Some(rf) = row(*from) {
                        rhs_pending.push(PendingAtom {
                            seq,
                            target: Target::Rhs(rf),
                            val: ValRef::Src { src, sign: -1.0 },
                        });
                    }
                }
                Element::Mosfet { d, g, s, params } => {
                    let (rd, rg, rs) = (row(*d), row(*g), row(*s));
                    devices.push((
                        seq,
                        IterOp::Mosfet {
                            rd,
                            rg,
                            rs,
                            params: *params,
                        },
                    ));
                    let mut mark = |r: Option<usize>, c: Option<usize>| {
                        if let (Some(r), Some(c)) = (r, c) {
                            let idx = midx(r, c);
                            if mat_first_dyn[idx] == usize::MAX {
                                mat_first_dyn[idx] = seq;
                            }
                        }
                    };
                    mark(rd, rd);
                    mark(rd, rg);
                    mark(rd, rs);
                    mark(rs, rd);
                    mark(rs, rg);
                    mark(rs, rs);
                    for r in [rd, rs].into_iter().flatten() {
                        if rhs_first_dyn[r] == usize::MAX {
                            rhs_first_dyn[r] = seq;
                        }
                    }
                }
                Element::Switch {
                    a,
                    b,
                    ctrl_pos,
                    ctrl_neg,
                    threshold,
                    r_on,
                    r_off,
                } => {
                    let (ra, rb) = (row(*a), row(*b));
                    devices.push((
                        seq,
                        IterOp::Switch {
                            ra,
                            rb,
                            rp: row(*ctrl_pos),
                            rn: row(*ctrl_neg),
                            threshold: *threshold,
                            g_on: 1.0 / r_on,
                            g_off: 1.0 / r_off,
                        },
                    ));
                    mark_g(&mut mat_first_dyn, seq, ra, rb);
                }
                Element::Diode { a, k, i_sat, n } => {
                    let (ra, rk) = (row(*a), row(*k));
                    devices.push((
                        seq,
                        IterOp::Diode {
                            ra,
                            rk,
                            i_sat: *i_sat,
                            nvt: n * mna::VT,
                        },
                    ));
                    mark_g(&mut mat_first_dyn, seq, ra, rk);
                    for r in [ra, rk].into_iter().flatten() {
                        if rhs_first_dyn[r] == usize::MAX {
                            rhs_first_dyn[r] = seq;
                        }
                    }
                }
                Element::Vcvs { p, n, cp, cn, gain } => {
                    let br = layout.branch_row(layout.branch_of[seq].expect("vcvs branch"));
                    if let Some(rp) = row(*p) {
                        pending.push(PendingAtom {
                            seq,
                            target: Target::Mat(midx(rp, br)),
                            val: ValRef::Const(1.0),
                        });
                        pending.push(PendingAtom {
                            seq,
                            target: Target::Mat(midx(br, rp)),
                            val: ValRef::Const(1.0),
                        });
                    }
                    if let Some(rn) = row(*n) {
                        pending.push(PendingAtom {
                            seq,
                            target: Target::Mat(midx(rn, br)),
                            val: ValRef::Const(-1.0),
                        });
                        pending.push(PendingAtom {
                            seq,
                            target: Target::Mat(midx(br, rn)),
                            val: ValRef::Const(-1.0),
                        });
                    }
                    if let Some(rcp) = row(*cp) {
                        pending.push(PendingAtom {
                            seq,
                            target: Target::Mat(midx(br, rcp)),
                            val: ValRef::Const(-gain),
                        });
                    }
                    if let Some(rcn) = row(*cn) {
                        pending.push(PendingAtom {
                            seq,
                            target: Target::Mat(midx(br, rcn)),
                            val: ValRef::Const(*gain),
                        });
                    }
                }
                Element::Vccs {
                    from,
                    to,
                    cp,
                    cn,
                    gm,
                } => {
                    let (rcp, rcn) = (row(*cp), row(*cn));
                    if let Some(rt) = row(*to) {
                        if let Some(rcp) = rcp {
                            pending.push(PendingAtom {
                                seq,
                                target: Target::Mat(midx(rt, rcp)),
                                val: ValRef::Const(-gm),
                            });
                        }
                        if let Some(rcn) = rcn {
                            pending.push(PendingAtom {
                                seq,
                                target: Target::Mat(midx(rt, rcn)),
                                val: ValRef::Const(*gm),
                            });
                        }
                    }
                    if let Some(rf) = row(*from) {
                        if let Some(rcp) = rcp {
                            pending.push(PendingAtom {
                                seq,
                                target: Target::Mat(midx(rf, rcp)),
                                val: ValRef::Const(*gm),
                            });
                        }
                        if let Some(rcn) = rcn {
                            pending.push(PendingAtom {
                                seq,
                                target: Target::Mat(midx(rf, rcn)),
                                val: ValRef::Const(-gm),
                            });
                        }
                    }
                }
            }
        }

        // Partition: an atom stays in the cached base / per-solve rhs only
        // if no dynamic device touches its target *earlier* in element
        // order; otherwise it is demoted and replayed at its original
        // position each iteration, preserving the reference assembler's
        // per-entry accumulation order (and therefore exact bit patterns).
        let mut base_ops = Vec::with_capacity(pending.len());
        let mut base_elems = Vec::with_capacity(pending.len());
        let mut rhs0_ops = Vec::with_capacity(rhs_pending.len());
        let mut rhs0_elems = Vec::with_capacity(rhs_pending.len());
        let mut iter_tagged = devices;
        for atom in pending {
            let Target::Mat(idx) = atom.target else {
                unreachable!()
            };
            if mat_first_dyn[idx] < atom.seq {
                iter_tagged.push((atom.seq, IterOp::Mat(MatOp { idx, val: atom.val })));
            } else {
                base_ops.push(MatOp { idx, val: atom.val });
                base_elems.push(atom.seq);
            }
        }
        for atom in rhs_pending {
            let Target::Rhs(r) = atom.target else {
                unreachable!()
            };
            if rhs_first_dyn[r] < atom.seq {
                iter_tagged.push((
                    atom.seq,
                    IterOp::Rhs(RhsOp {
                        row: r,
                        val: atom.val,
                    }),
                ));
            } else {
                rhs0_ops.push(RhsOp {
                    row: r,
                    val: atom.val,
                });
                rhs0_elems.push(atom.seq);
            }
        }
        // Stable sort: atoms sharing an element keep their stamp order.
        iter_tagged.sort_by_key(|(seq, _)| *seq);
        let iter_elems: Vec<usize> = iter_tagged.iter().map(|(seq, _)| *seq).collect();
        let iter_ops: Vec<IterOp> = iter_tagged.into_iter().map(|(_, op)| op).collect();

        let mut dyn_reads: Vec<usize> = Vec::new();
        for op in &iter_ops {
            match *op {
                IterOp::Mosfet { rd, rg, rs, .. } => {
                    dyn_reads.extend([rd, rg, rs].into_iter().flatten());
                }
                IterOp::Switch { rp, rn, .. } => {
                    dyn_reads.extend([rp, rn].into_iter().flatten());
                }
                IterOp::Diode { ra, rk, .. } => {
                    dyn_reads.extend([ra, rk].into_iter().flatten());
                }
                // Demoted atoms depend on the solve context, not on x.
                IterOp::Mat(_) | IterOp::Rhs(_) => {}
            }
        }
        dyn_reads.sort_unstable();
        dyn_reads.dedup();

        let plan = StampPlan {
            n,
            node_rows,
            mode,
            base_ops,
            rhs0_ops,
            iter_ops,
            sources,
            dyn_reads,
            n_cap_slots: layout.n_caps,
            n_ind_slots: layout.n_inds,
            base_elems,
            rhs0_elems,
            iter_elems,
        };
        // Debug builds prove every freshly compiled plan sound before it
        // is allowed near a solver; the `verify-release` feature extends
        // the same proof to release-mode plans so CI can exercise the
        // exact optimized code path (plain release builds skip the check;
        // `repro verify` covers the shipped circuits there).
        #[cfg(any(debug_assertions, feature = "verify-release"))]
        {
            let violations = crate::verify::verify_plan(ckt, layout, &plan);
            assert!(
                violations.is_empty(),
                "stamp-plan verifier rejected a freshly compiled plan: {violations:?}"
            );
        }
        plan
    }
}

/// Hot-path work counters, exposed for tests and benchmarks.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub(crate) struct SolverStats {
    /// Newton iterations executed.
    pub iterations: u64,
    /// Full O(n³) LU factorizations performed.
    pub factorizations: u64,
    /// O(n²) back-substitutions performed.
    pub back_substitutions: u64,
    /// Linear solves skipped entirely because the system was bit-identical
    /// to the previous one (solution cache or Newton bypass).
    pub bypasses: u64,
    /// Base-matrix rebuilds.
    pub rebases: u64,
    /// MOSFET evaluations actually performed by the batched device block
    /// (latency hits are *not* counted here).
    pub device_evals: u64,
    /// Devices whose trial voltages were clamped by `fetlim`/`limvds`
    /// (limited mode only; always 0 in exact mode).
    pub limit_clamps: u64,
    /// Devices that reused their previous linearisation because their
    /// terminal voltages stayed inside the latency band with the
    /// operating region unchanged (limited mode only).
    pub latency_hits: u64,
}

/// Newton–Raphson solver driven by a [`StampPlan`], bit-for-bit equivalent
/// to [`mna::solve_newton`] over the same sequence of calls.
///
/// # Cache identity without byte-comparing matrices
///
/// The assembled system is a pure function of six inputs, each guarded by
/// a generation counter that bumps exactly when its bits change:
///
/// * matrix — `base_gen` (static + step-constant part), `iter_mat_gen`
///   (demoted context-only matrix atoms), `dyn_mat_gen` (device
///   linearisations),
/// * rhs — `rhs0_gen` (solve-constant part), `iter_rhs_gen` (demoted
///   context-only rhs atoms), `dyn_rhs_gen` (device currents).
///
/// The replay order is fixed at compile time, so equal generation tuples
/// imply the replay produces the identical system: the solution and
/// factorization caches reduce to a handful of `u64` compares, and the
/// matrix is never even written unless a factorization is actually due.
/// Device evaluations themselves are skipped when every solution entry
/// the devices read (`plan.dyn_reads`) is bit-unchanged since the last
/// evaluation — device values depend only on those reads, the compiled
/// parameters and `gmin`, all of which are checked.
#[derive(Debug, Clone)]
pub(crate) struct PlanSolver {
    plan: StampPlan,
    n: usize,
    /// Packed struct-of-arrays block of every MOSFET in the plan; the
    /// k-th entry corresponds to the k-th `IterOp::Mosfet` of the walk.
    mos: MosBatch,
    /// Device evaluation flavour (exact or limited).
    eval_mode: DeviceEval,
    /// Set when the most recent limited evaluation clamped a trial
    /// voltage: device values were computed at a point other than `x`, so
    /// the Newton bypass must not reuse them and the iteration cannot be
    /// accepted as converged.
    limit_pending: bool,
    /// Whether any demoted context-only atoms live in `iter_ops` (skips
    /// the per-solve refresh walk for the common all-device case).
    has_demoted: bool,
    /// Cached static + step-constant matrix and the bit patterns of the
    /// inputs it was built from.
    base: DenseMatrix,
    base_valid: bool,
    base_gshunt: u64,
    base_gmin: u64,
    base_geq: Vec<u64>,
    /// Bumped on every rebase; part of every matrix identity key.
    base_gen: u64,
    /// Solve-constant rhs portion; the generation bumps only when a
    /// refresh actually changes its bits.
    rhs0: Vec<f64>,
    rhs0_scratch: Vec<f64>,
    rhs0_gen: u64,
    /// Demoted context-only per-iteration atom values (constant across
    /// the iterations of one solve), split by target array, in op order.
    iter_mat_ctx: Vec<f64>,
    iter_mat_scratch: Vec<f64>,
    iter_mat_gen: u64,
    iter_rhs_ctx: Vec<f64>,
    iter_rhs_scratch: Vec<f64>,
    iter_rhs_gen: u64,
    rhs: Vec<f64>,
    src_vals: Vec<f64>,
    /// Evaluated device contributions, in op order; the generations bump
    /// only when an evaluation changes the bits.
    dyn_mat_vals: Vec<f64>,
    dyn_mat_scratch: Vec<f64>,
    dyn_mat_gen: u64,
    dyn_rhs_vals: Vec<f64>,
    dyn_rhs_scratch: Vec<f64>,
    dyn_rhs_gen: u64,
    /// Snapshot of `x[plan.dyn_reads]` and the gmin bits at the last
    /// device evaluation; if both still match, the evaluation is skipped.
    last_reads: Vec<f64>,
    last_eval_gmin: u64,
    reads_valid: bool,
    /// True when no `Switch`/`Diode` ops live in the walk: with every
    /// MOSFET latent, `eval_dynamic` can skip the copy-out walk and the
    /// bit comparison entirely — the recorded values are provably
    /// unchanged.
    dyn_all_mos: bool,
    /// Packed rhs replay program (see [`RhsProg`]): one entry per rhs
    /// contribution of the walk, skipping matrix-only ops entirely.
    rhs_prog: Vec<RhsProg>,
    lu: LuFactors,
    /// Structure-replay factorization engine of the limited path: frozen
    /// pivot sequence + recorded fill-in replace the dense O(n³) sweep.
    /// The exact path never touches it (its factors must stay bitwise).
    slu: SparseReplayLu,
    /// Structural nonzero pattern handed to `slu` (row-major u64 chunks)
    /// and the base generation it was built against.
    slu_pattern: Vec<u64>,
    slu_pattern_gen: u64,
    slu_pattern_valid: bool,
    lu_valid: bool,
    lu_base_gen: u64,
    lu_iter_mat_gen: u64,
    lu_dyn_mat_gen: u64,
    prev_valid: bool,
    prev_base_gen: u64,
    prev_rhs0_gen: u64,
    prev_iter_mat_gen: u64,
    prev_iter_rhs_gen: u64,
    prev_dyn_mat_gen: u64,
    prev_dyn_rhs_gen: u64,
    prev_sol: Vec<f64>,
    stats: SolverStats,
    /// Maximum node-voltage update of the most recent Newton iteration —
    /// a residual proxy published through telemetry. Stored
    /// unconditionally (one f64 write per iteration, already computed for
    /// damping) so attaching an observer cannot change solver behaviour.
    last_max_dv: f64,
}

/// One packed step of the rhs replay walk: the same operations
/// `write_rhs` used to pull out of the full `iter_ops` list, in the same
/// order (so every rhs entry keeps its accumulation order and bits), but
/// stored in 12 bytes instead of a full op. Row `u32::MAX` marks a
/// grounded terminal with no rhs entry.
#[derive(Debug, Clone, Copy)]
enum RhsProg {
    /// `rhs[row] += iter_rhs_ctx[next]`
    Ctx { row: u32 },
    /// `rhs[rd] -= dyn_rhs_vals[next]; rhs[rs] += …` (MOSFET pair).
    Mos { rd: u32, rs: u32 },
    /// `rhs[rk] += dyn_rhs_vals[next]; rhs[ra] -= …` (diode pair).
    Diode { rk: u32, ra: u32 },
}

/// Exact bit-pattern equality of two float slices (length included).
/// `==` on floats would conflate ±0.0 and reject NaN; the caches must key
/// on identity.
#[inline]
fn bits_eq(a: &[f64], b: &[f64]) -> bool {
    a.len() == b.len() && a.iter().zip(b).all(|(x, y)| x.to_bits() == y.to_bits())
}

impl PlanSolver {
    /// Compiles `ckt` and readies all scratch storage.
    pub fn new(ckt: &Circuit, layout: &MnaLayout, mode: PlanMode, eval: DeviceEval) -> Self {
        let plan = StampPlan::compile(ckt, layout, mode);
        let mos = MosBatch::gather(&plan.iter_ops);
        let n = plan.n;
        let n_src = plan.sources.len();
        let has_demoted = plan
            .iter_ops
            .iter()
            .any(|op| matches!(op, IterOp::Mat(_) | IterOp::Rhs(_)));
        let dyn_all_mos = !plan
            .iter_ops
            .iter()
            .any(|op| matches!(op, IterOp::Switch { .. } | IterOp::Diode { .. }));
        let row32 = |r: Option<usize>| r.map_or(u32::MAX, |r| r as u32);
        let rhs_prog = plan
            .iter_ops
            .iter()
            .filter_map(|op| match *op {
                IterOp::Mat(_) | IterOp::Switch { .. } => None,
                IterOp::Rhs(RhsOp { row, .. }) => Some(RhsProg::Ctx { row: row as u32 }),
                IterOp::Mosfet { rd, rs, .. } => Some(RhsProg::Mos {
                    rd: row32(rd),
                    rs: row32(rs),
                }),
                IterOp::Diode { ra, rk, .. } => Some(RhsProg::Diode {
                    rk: row32(rk),
                    ra: row32(ra),
                }),
            })
            .collect();
        // Exact slot counts per value list, so the first evaluation does
        // not reallocate mid-push.
        let (mut n_dyn_mat, mut n_dyn_rhs, mut n_ctx_mat, mut n_ctx_rhs) = (0, 0, 0, 0);
        for op in &plan.iter_ops {
            match op {
                IterOp::Mat(_) => n_ctx_mat += 1,
                IterOp::Rhs(_) => n_ctx_rhs += 1,
                IterOp::Mosfet { .. } => {
                    n_dyn_mat += 3;
                    n_dyn_rhs += 1;
                }
                IterOp::Switch { .. } => n_dyn_mat += 1,
                IterOp::Diode { .. } => {
                    n_dyn_mat += 1;
                    n_dyn_rhs += 1;
                }
            }
        }
        PlanSolver {
            plan,
            n,
            mos,
            eval_mode: eval,
            limit_pending: false,
            has_demoted,
            base: DenseMatrix::zeros(n),
            base_valid: false,
            base_gshunt: 0,
            base_gmin: 0,
            base_geq: Vec::new(),
            base_gen: 0,
            rhs0: vec![0.0; n],
            rhs0_scratch: vec![0.0; n],
            rhs0_gen: 0,
            iter_mat_ctx: Vec::with_capacity(n_ctx_mat),
            iter_mat_scratch: Vec::with_capacity(n_ctx_mat),
            iter_mat_gen: 0,
            iter_rhs_ctx: Vec::with_capacity(n_ctx_rhs),
            iter_rhs_scratch: Vec::with_capacity(n_ctx_rhs),
            iter_rhs_gen: 0,
            rhs: vec![0.0; n],
            src_vals: vec![0.0; n_src],
            dyn_mat_vals: Vec::with_capacity(n_dyn_mat),
            dyn_mat_scratch: Vec::with_capacity(n_dyn_mat),
            dyn_mat_gen: 0,
            dyn_rhs_vals: Vec::with_capacity(n_dyn_rhs),
            dyn_rhs_scratch: Vec::with_capacity(n_dyn_rhs),
            dyn_rhs_gen: 0,
            last_reads: Vec::new(),
            last_eval_gmin: 0,
            reads_valid: false,
            dyn_all_mos,
            rhs_prog,
            lu: LuFactors::new(n),
            slu: SparseReplayLu::new(n),
            slu_pattern: Vec::new(),
            slu_pattern_gen: 0,
            slu_pattern_valid: false,
            lu_valid: false,
            lu_base_gen: 0,
            lu_iter_mat_gen: 0,
            lu_dyn_mat_gen: 0,
            prev_valid: false,
            prev_base_gen: 0,
            prev_rhs0_gen: 0,
            prev_iter_mat_gen: 0,
            prev_iter_rhs_gen: 0,
            prev_dyn_mat_gen: 0,
            prev_dyn_rhs_gen: 0,
            prev_sol: vec![0.0; n],
            stats: SolverStats::default(),
            last_max_dv: 0.0,
        }
    }

    /// Work counters accumulated since construction.
    pub fn stats(&self) -> SolverStats {
        self.stats
    }

    /// Maximum node-voltage update of the most recent Newton iteration.
    pub fn last_max_dv(&self) -> f64 {
        self.last_max_dv
    }

    /// Rebuilds the cached base matrix if any input it depends on changed
    /// bit patterns (compared allocation-free against the stored key). A
    /// rebase bumps `base_gen`, which implicitly invalidates the LU and
    /// solution caches.
    fn ensure_base(&mut self, ctx: &SolveContext<'_>, gmin: f64) {
        fn geq_bits<'a>(ctx: &'a SolveContext<'_>) -> impl Iterator<Item = u64> + 'a {
            ctx.caps
                .into_iter()
                .flatten()
                .map(|c| c.geq.to_bits())
                .chain(ctx.inds.into_iter().flatten().map(|i| i.geq.to_bits()))
        }
        debug_assert!(
            ctx.caps.is_none_or(|c| c.len() == self.plan.n_cap_slots),
            "capacitor companion slice does not match the compiled plan"
        );
        debug_assert!(
            ctx.inds.is_none_or(|i| i.len() == self.plan.n_ind_slots),
            "inductor companion slice does not match the compiled plan"
        );
        let gshunt_bits = ctx.gshunt.to_bits();
        let gmin_bits = gmin.to_bits();
        if self.base_valid
            && self.base_gshunt == gshunt_bits
            && self.base_gmin == gmin_bits
            && geq_bits(ctx).eq(self.base_geq.iter().copied())
        {
            return;
        }
        self.base_gshunt = gshunt_bits;
        self.base_gmin = gmin_bits;
        self.base_geq.clear();
        self.base_geq.extend(geq_bits(ctx));
        self.base_valid = true;
        self.base_gen = self.base_gen.wrapping_add(1);

        self.base.clear();
        if ctx.gshunt > 0.0 {
            for r in 0..self.plan.node_rows {
                self.base.add(r, r, ctx.gshunt);
            }
        }
        let slice = self.base.as_mut_slice();
        for op in &self.plan.base_ops {
            slice[op.idx] += eval_val(op.val, ctx, gmin, &self.src_vals);
        }
        self.stats.rebases += 1;
    }

    /// Refreshes the per-solve inputs: scaled source values (read live from
    /// the circuit, so `set_waveform` between solves is honoured), the
    /// solve-constant portion of the right-hand side, and the demoted
    /// context-only per-iteration atoms (their values cannot change within
    /// a solve, so they are computed once here rather than per iteration).
    /// Each generation bumps only when the refreshed bits actually differ,
    /// so a repeated solve keeps its cache identity.
    fn refresh_solve_inputs(&mut self, ckt: &Circuit, ctx: &SolveContext<'_>, gmin: f64) {
        for (k, &id) in self.plan.sources.iter().enumerate() {
            let w = match ckt.element(id) {
                Element::VoltageSource { waveform, .. }
                | Element::CurrentSource { waveform, .. } => waveform,
                _ => unreachable!("source list points at a non-source"),
            };
            self.src_vals[k] = ctx.source_scale * w.value(ctx.time);
        }
        self.rhs0_scratch.fill(0.0);
        for op in &self.plan.rhs0_ops {
            self.rhs0_scratch[op.row] += eval_val(op.val, ctx, gmin, &self.src_vals);
        }
        if !bits_eq(&self.rhs0_scratch, &self.rhs0) {
            std::mem::swap(&mut self.rhs0, &mut self.rhs0_scratch);
            self.rhs0_gen = self.rhs0_gen.wrapping_add(1);
        }
        if !self.has_demoted {
            return;
        }
        self.iter_mat_scratch.clear();
        self.iter_rhs_scratch.clear();
        for op in &self.plan.iter_ops {
            match *op {
                IterOp::Mat(MatOp { val, .. }) => {
                    self.iter_mat_scratch
                        .push(eval_val(val, ctx, gmin, &self.src_vals));
                }
                IterOp::Rhs(RhsOp { val, .. }) => {
                    self.iter_rhs_scratch
                        .push(eval_val(val, ctx, gmin, &self.src_vals));
                }
                _ => {}
            }
        }
        if !bits_eq(&self.iter_mat_scratch, &self.iter_mat_ctx) {
            std::mem::swap(&mut self.iter_mat_ctx, &mut self.iter_mat_scratch);
            self.iter_mat_gen = self.iter_mat_gen.wrapping_add(1);
        }
        if !bits_eq(&self.iter_rhs_scratch, &self.iter_rhs_ctx) {
            std::mem::swap(&mut self.iter_rhs_ctx, &mut self.iter_rhs_scratch);
            self.iter_rhs_gen = self.iter_rhs_gen.wrapping_add(1);
        }
    }

    /// Evaluates every device contribution at `x` into the dynamic value
    /// lists (in op order) and snapshots the x entries the devices read.
    /// Nothing is written to the matrix or rhs here: `fill_mat` /
    /// `write_rhs` replay the recorded values only when the identity keys
    /// say the system actually changed. The generations bump only when an
    /// evaluation changes the bits, so an oscillation-free Newton tail
    /// keeps its factorization identity for free.
    fn eval_dynamic(&mut self, x: &[f64], gmin: f64) {
        // Batched MOSFET pass: one tight loop over the packed
        // struct-of-arrays block replaces per-device dispatch; the walk
        // below only copies the results out in op order, preserving the
        // reference assembler's accumulation order (and bits).
        if self.mos.len() > 0 {
            let tally = match self.eval_mode {
                DeviceEval::Exact => self.mos.eval_exact(x),
                DeviceEval::Limited(opts) => {
                    if self.last_eval_gmin != gmin.to_bits() {
                        // Homotopy stage change: drop stale anchors.
                        self.mos.invalidate_anchors();
                    }
                    self.mos.eval_limited(x, &opts)
                }
            };
            self.stats.device_evals += tally.evals;
            self.stats.limit_clamps += tally.clamps;
            self.stats.latency_hits += tally.latency_hits;
            self.limit_pending = mos_batch::forces_iteration(&tally);
            // Whole-batch latency hit with no other dynamic devices in the
            // walk: every recorded value is provably bit-unchanged, so the
            // copy-out walk and the generation comparison are skipped.
            // Only the read snapshot below still needs refreshing.
            if self.dyn_all_mos && tally.evals == 0 && tally.clamps == 0 {
                self.snapshot_reads(x, gmin);
                return;
            }
        }
        self.dyn_mat_scratch.clear();
        self.dyn_rhs_scratch.clear();
        let v = |r: Option<usize>| r.map_or(0.0, |r| x[r]);
        let mut mk = 0;
        for op in &self.plan.iter_ops {
            match *op {
                // Context-only atoms are refreshed per solve, not here.
                IterOp::Mat(_) | IterOp::Rhs(_) => {}
                IterOp::Mosfet { .. } => {
                    self.dyn_mat_scratch.push(self.mos.gdd[mk]);
                    self.dyn_mat_scratch.push(self.mos.gdg[mk]);
                    self.dyn_mat_scratch.push(self.mos.gds_node[mk]);
                    self.dyn_rhs_scratch.push(self.mos.i_const[mk]);
                    mk += 1;
                }
                IterOp::Switch {
                    rp,
                    rn,
                    threshold,
                    g_on,
                    g_off,
                    ..
                } => {
                    let vc = v(rp) - v(rn);
                    self.dyn_mat_scratch
                        .push(if vc > threshold { g_on } else { g_off });
                }
                IterOp::Diode { ra, rk, i_sat, nvt } => {
                    let vd = v(ra) - v(rk);
                    let arg = vd / nvt;
                    let (i, g) = if arg > mna::DIODE_EXP_MAX {
                        let e = mna::DIODE_EXP_MAX.exp();
                        let i0 = i_sat * (e - 1.0);
                        let g0 = i_sat * e / nvt;
                        (i0 + g0 * (vd - mna::DIODE_EXP_MAX * nvt), g0)
                    } else {
                        let e = arg.exp();
                        (i_sat * (e - 1.0), i_sat * e / nvt)
                    };
                    self.dyn_mat_scratch.push(g + gmin);
                    self.dyn_rhs_scratch.push(i - g * vd);
                }
            }
        }
        debug_assert_eq!(mk, self.mos.len());
        if !bits_eq(&self.dyn_mat_scratch, &self.dyn_mat_vals) {
            std::mem::swap(&mut self.dyn_mat_vals, &mut self.dyn_mat_scratch);
            self.dyn_mat_gen = self.dyn_mat_gen.wrapping_add(1);
        }
        if !bits_eq(&self.dyn_rhs_scratch, &self.dyn_rhs_vals) {
            std::mem::swap(&mut self.dyn_rhs_vals, &mut self.dyn_rhs_scratch);
            self.dyn_rhs_gen = self.dyn_rhs_gen.wrapping_add(1);
        }
        self.snapshot_reads(x, gmin);
    }

    /// Records the solution entries and gmin the devices were last
    /// evaluated (or latched) against, arming the Newton bypass.
    fn snapshot_reads(&mut self, x: &[f64], gmin: f64) {
        self.last_reads.clear();
        self.last_reads
            .extend(self.plan.dyn_reads.iter().map(|&r| x[r]));
        self.last_eval_gmin = gmin.to_bits();
        self.reads_valid = true;
    }

    /// rhs0 copy + recorded rhs contributions, replayed in op order:
    /// demoted context-only atoms from `iter_rhs_ctx`, device currents
    /// from `dyn_rhs_vals`. (rhs and matrix writes target disjoint arrays,
    /// so splitting them keeps every entry's accumulation order, and
    /// therefore its bits.)
    fn write_rhs(&mut self) {
        self.rhs.copy_from_slice(&self.rhs0);
        let rhs = &mut self.rhs[..];
        let mut cc = 0;
        let mut dc = 0;
        for op in &self.rhs_prog {
            match *op {
                RhsProg::Ctx { row } => {
                    rhs[row as usize] += self.iter_rhs_ctx[cc];
                    cc += 1;
                }
                RhsProg::Mos { rd, rs } => {
                    let i_const = self.dyn_rhs_vals[dc];
                    dc += 1;
                    if rd != u32::MAX {
                        rhs[rd as usize] -= i_const;
                    }
                    if rs != u32::MAX {
                        rhs[rs as usize] += i_const;
                    }
                }
                RhsProg::Diode { rk, ra } => {
                    let i_const = self.dyn_rhs_vals[dc];
                    dc += 1;
                    // stamp_current(a → k): `to` (k) first, then `from` (a).
                    if rk != u32::MAX {
                        rhs[rk as usize] += i_const;
                    }
                    if ra != u32::MAX {
                        rhs[ra as usize] -= i_const;
                    }
                }
            }
        }
        debug_assert_eq!(cc, self.iter_rhs_ctx.len());
        debug_assert_eq!(dc, self.dyn_rhs_vals.len());
    }
}

impl PlanSolver {
    /// Rebuilds the structural nonzero pattern handed to the sparse
    /// replay engine: base nonzeros, the diagonal, and every position an
    /// iteration op can write (conditional MOSFET rows included). Base
    /// *values* are constant within one base generation, so the scan of
    /// its numeric nonzeros is structurally sound until the next rebase.
    fn rebuild_slu_pattern(&mut self) {
        let n = self.n;
        let chunks = n.div_ceil(64);
        let mut pat = std::mem::take(&mut self.slu_pattern);
        pat.clear();
        pat.resize(n * chunks, 0u64);
        let set = |pat: &mut Vec<u64>, r: usize, c: usize| {
            pat[r * chunks + c / 64] |= 1u64 << (c % 64);
        };
        let b = self.base.as_slice();
        for r in 0..n {
            for c in 0..n {
                if b[r * n + c] != 0.0 {
                    set(&mut pat, r, c);
                }
            }
            set(&mut pat, r, r);
        }
        for op in &self.plan.iter_ops {
            match *op {
                IterOp::Mat(MatOp { idx, .. }) => set(&mut pat, idx / n, idx % n),
                IterOp::Rhs(_) => {}
                IterOp::Mosfet { rd, rg, rs, .. } => {
                    for row in [rd, rs].into_iter().flatten() {
                        set(&mut pat, row, row);
                        for col in [rd, rg, rs].into_iter().flatten() {
                            set(&mut pat, row, col);
                        }
                    }
                }
                IterOp::Switch { ra, rb, .. } | IterOp::Diode { ra, rk: rb, .. } => {
                    for row in [ra, rb].into_iter().flatten() {
                        set(&mut pat, row, row);
                        for col in [ra, rb].into_iter().flatten() {
                            set(&mut pat, row, col);
                        }
                    }
                }
            }
        }
        self.slu_pattern = pat;
        self.slu.invalidate_structure();
        self.slu_pattern_gen = self.base_gen;
        self.slu_pattern_valid = true;
    }

    /// Factors the currently recorded system, stamping the generation
    /// identity so `fresh`/`lu_hit` checks see the new factors. The exact
    /// path uses the dense partial-pivot engine (bitwise contract); the
    /// limited path goes through the sparse replay engine.
    fn factor_current(&mut self, gmin: f64) -> Result<(), Error> {
        self.lu_valid = false;
        let n = self.n;
        if matches!(self.eval_mode, DeviceEval::Limited(_)) && self.mos.len() > 0 {
            if !self.slu_pattern_valid || self.slu_pattern_gen != self.base_gen {
                self.rebuild_slu_pattern();
            }
            let PlanSolver {
                slu,
                slu_pattern,
                base,
                plan,
                iter_mat_ctx,
                dyn_mat_vals,
                ..
            } = self;
            slu.factor_with(n, slu_pattern, |buf| {
                fill_mat(
                    buf,
                    base,
                    &plan.iter_ops,
                    iter_mat_ctx,
                    dyn_mat_vals,
                    gmin,
                    n,
                )
            })?;
        } else {
            let base = &self.base;
            let iter_ops = &self.plan.iter_ops;
            let ctx_vals = &self.iter_mat_ctx;
            let dev_vals = &self.dyn_mat_vals;
            self.lu.factor_with(n, |buf| {
                fill_mat(buf, base, iter_ops, ctx_vals, dev_vals, gmin, n)
            })?;
        }
        self.lu_base_gen = self.base_gen;
        self.lu_iter_mat_gen = self.iter_mat_gen;
        self.lu_dyn_mat_gen = self.dyn_mat_gen;
        self.lu_valid = true;
        self.stats.factorizations += 1;
        Ok(())
    }
}

/// Base copy + recorded matrix contributions, replayed in op order — the
/// exact additions `mna::assemble` performs on the matrix. Demoted
/// context-only atoms come from `ctx_vals`, device linearisations from
/// `dev_vals`. A free function (not a method) so `LuFactors::factor_with`
/// can assemble straight into the factorization buffer while the solver's
/// other fields stay borrowed.
fn fill_mat(
    mat: &mut [f64],
    base: &DenseMatrix,
    iter_ops: &[IterOp],
    ctx_vals: &[f64],
    dev_vals: &[f64],
    gmin: f64,
    n: usize,
) {
    mat.copy_from_slice(base.as_slice());
    let mut cc = 0;
    let mut dc = 0;
    for op in iter_ops {
        match *op {
            IterOp::Mat(MatOp { idx, .. }) => {
                mat[idx] += ctx_vals[cc];
                cc += 1;
            }
            IterOp::Rhs(_) => {}
            IterOp::Mosfet { rd, rg, rs, .. } => {
                let gdd = dev_vals[dc];
                let gdg = dev_vals[dc + 1];
                let gds_node = dev_vals[dc + 2];
                dc += 3;
                if let Some(rd) = rd {
                    mat[rd * n + rd] += gdd;
                    if let Some(rg) = rg {
                        mat[rd * n + rg] += gdg;
                    }
                    if let Some(rs) = rs {
                        mat[rd * n + rs] += gds_node;
                    }
                }
                if let Some(rs_row) = rs {
                    if let Some(rd) = rd {
                        mat[rs_row * n + rd] += -gdd;
                    }
                    if let Some(rg) = rg {
                        mat[rs_row * n + rg] += -gdg;
                    }
                    mat[rs_row * n + rs_row] += -gds_node;
                }
                // Channel gmin, in stamp_conductance's entry order.
                if let Some(ra) = rd {
                    mat[ra * n + ra] += gmin;
                    if let Some(rb) = rs {
                        mat[ra * n + rb] += -gmin;
                    }
                }
                if let Some(rb) = rs {
                    mat[rb * n + rb] += gmin;
                    if let Some(ra) = rd {
                        mat[rb * n + ra] += -gmin;
                    }
                }
            }
            IterOp::Switch { ra, rb, .. } => {
                let g = dev_vals[dc];
                dc += 1;
                if let Some(ra) = ra {
                    mat[ra * n + ra] += g;
                    if let Some(rb) = rb {
                        mat[ra * n + rb] += -g;
                    }
                }
                if let Some(rb) = rb {
                    mat[rb * n + rb] += g;
                    if let Some(ra) = ra {
                        mat[rb * n + ra] += -g;
                    }
                }
            }
            IterOp::Diode { ra, rk, .. } => {
                let gt = dev_vals[dc];
                dc += 1;
                if let Some(ra) = ra {
                    mat[ra * n + ra] += gt;
                    if let Some(rk) = rk {
                        mat[ra * n + rk] += -gt;
                    }
                }
                if let Some(rk) = rk {
                    mat[rk * n + rk] += gt;
                    if let Some(ra) = ra {
                        mat[rk * n + ra] += -gt;
                    }
                }
            }
        }
    }
    debug_assert_eq!(cc, ctx_vals.len());
    debug_assert_eq!(dc, dev_vals.len());
}

impl PlanSolver {
    /// Solves the evaluated system, leaving the solution in `self.rhs`.
    /// Tiers: solution cache (skip everything), factorization cache (skip
    /// the O(n³) elimination), full factorization. Every tier is bit-for-
    /// bit equivalent to a fresh `solve_in_place` on the assembled system.
    fn solve_linear(&mut self, gmin: f64) -> Result<(), Error> {
        if self.prev_valid
            && self.prev_base_gen == self.base_gen
            && self.prev_iter_mat_gen == self.iter_mat_gen
            && self.prev_dyn_mat_gen == self.dyn_mat_gen
            && self.prev_rhs0_gen == self.rhs0_gen
            && self.prev_iter_rhs_gen == self.iter_rhs_gen
            && self.prev_dyn_rhs_gen == self.dyn_rhs_gen
        {
            self.rhs.copy_from_slice(&self.prev_sol);
            self.stats.bypasses += 1;
            return Ok(());
        }
        let lu_hit = self.lu_valid
            && self.lu_base_gen == self.base_gen
            && self.lu_iter_mat_gen == self.iter_mat_gen
            && self.lu_dyn_mat_gen == self.dyn_mat_gen;
        // The sparse replay engine serves MOSFET circuits under limited
        // evaluation only: switch conductances swing a dozen decades, for
        // which a frozen pivot order is numerically fragile — and keeping
        // MOSFET-free circuits on the dense engine keeps them bitwise
        // identical to the reference even in limited mode.
        let limited = matches!(self.eval_mode, DeviceEval::Limited(_)) && self.mos.len() > 0;
        self.write_rhs();
        if lu_hit {
            if limited {
                self.slu.solve(&mut self.rhs);
            } else {
                self.lu.solve(&mut self.rhs);
            }
        } else if limited {
            // Limited path: replay the recorded elimination structure —
            // no bitwise contract to honour, so the frozen-pivot sparse
            // sweep replaces the dense O(n³) factorization.
            self.factor_current(gmin)?;
            self.slu.solve(&mut self.rhs);
        } else {
            // Factor miss: fuse the rhs forward-elimination into the
            // factorization sweep (one pass, as the reference assembler's
            // solve_in_place does) while still storing the factors for the
            // next hit. Bitwise identical to factor_with + solve.
            self.lu_valid = false;
            let n = self.n;
            let base = &self.base;
            let iter_ops = &self.plan.iter_ops;
            let ctx_vals = &self.iter_mat_ctx;
            let dev_vals = &self.dyn_mat_vals;
            self.lu.factor_and_solve_with(
                n,
                |buf| fill_mat(buf, base, iter_ops, ctx_vals, dev_vals, gmin, n),
                &mut self.rhs,
            )?;
            self.lu_base_gen = self.base_gen;
            self.lu_iter_mat_gen = self.iter_mat_gen;
            self.lu_dyn_mat_gen = self.dyn_mat_gen;
            self.lu_valid = true;
            self.stats.factorizations += 1;
        }
        self.stats.back_substitutions += 1;
        self.prev_base_gen = self.base_gen;
        self.prev_iter_mat_gen = self.iter_mat_gen;
        self.prev_dyn_mat_gen = self.dyn_mat_gen;
        self.prev_rhs0_gen = self.rhs0_gen;
        self.prev_iter_rhs_gen = self.iter_rhs_gen;
        self.prev_dyn_rhs_gen = self.dyn_rhs_gen;
        self.prev_sol.copy_from_slice(&self.rhs);
        self.prev_valid = true;
        Ok(())
    }

    /// Damped Newton–Raphson over the compiled plan; drop-in replacement
    /// for [`mna::solve_newton`] with identical results and errors.
    pub fn solve(
        &mut self,
        ckt: &Circuit,
        layout: &MnaLayout,
        x: &mut [f64],
        ctx: SolveContext<'_>,
        opts: &NewtonOpts,
        analysis: &'static str,
    ) -> Result<usize, Error> {
        let n = self.n;
        let node_rows = layout.n_nodes - 1;
        debug_assert_eq!(x.len(), n);
        debug_assert_eq!(
            self.plan.mode,
            if ctx.caps.is_some() {
                PlanMode::Tran
            } else {
                PlanMode::Dc
            },
            "plan mode does not match solve context"
        );
        self.ensure_base(&ctx, opts.gmin);
        self.refresh_solve_inputs(ckt, &ctx, opts.gmin);
        let damp_enabled = ckt.has_nonlinear_elements();
        let gmin_bits = opts.gmin.to_bits();

        for iter in 1..=opts.max_iter {
            self.stats.iterations += 1;
            // Newton bypass: device values are pure functions of
            // `x[dyn_reads]`, the compiled parameters and gmin, so if no
            // read moved since the last evaluation — whether that was an
            // earlier iteration or a previous solve — re-evaluating would
            // reproduce the same bits and is skipped. `solve_linear` then
            // decides from the generation keys how much of the linear
            // solve can be reused.
            let unchanged = self.reads_valid
                && !self.limit_pending
                && self.last_eval_gmin == gmin_bits
                && self
                    .plan
                    .dyn_reads
                    .iter()
                    .zip(&self.last_reads)
                    .all(|(&r, lv)| x[r].to_bits() == lv.to_bits());
            if !unchanged {
                self.eval_dynamic(x, opts.gmin);
            }
            // A clamped limited evaluation linearised some device at a
            // point other than the trial solution; the step may not be
            // accepted until a clamp-free evaluation confirms it.
            let clamp_forced = self.limit_pending;
            self.solve_linear(opts.gmin)?;
            let work = &self.rhs;

            let mut max_dv = 0.0f64;
            for (r, w) in work.iter().enumerate().take(node_rows) {
                max_dv = max_dv.max((w - x[r]).abs());
            }
            self.last_max_dv = max_dv;
            let damp = if damp_enabled && max_dv > opts.max_step_v {
                opts.max_step_v / max_dv
            } else {
                1.0
            };

            let mut converged = damp == 1.0 && !clamp_forced;
            for r in 0..n {
                let delta = (work[r] - x[r]) * damp;
                let tol = if r < node_rows {
                    opts.abstol_v + opts.reltol * x[r].abs()
                } else {
                    opts.abstol_i + opts.reltol * x[r].abs()
                };
                if delta.abs() > tol {
                    converged = false;
                }
                x[r] += delta;
            }

            if converged {
                return Ok(iter);
            }
        }
        Err(Error::NonConvergence {
            analysis,
            time: ctx.time,
            iterations: opts.max_iter,
            stage: "newton",
            attempts: 0,
        })
    }
}

/// The solver behind an analysis run: either the compiled plan path or the
/// naive reference assembler (kept for golden-equivalence tests and as the
/// benchmark baseline).
#[derive(Debug)]
pub(crate) enum SolverEngine {
    /// Compiled stamp plan with factorization reuse and solve bypass.
    Plan(Box<PlanSolver>),
    /// Per-iteration `assemble` + `solve_in_place`, exactly as shipped
    /// before the hot-path overhaul.
    Reference { mat: DenseMatrix, work: Vec<f64> },
}

impl SolverEngine {
    /// Builds the engine for `ckt`; `sel` picks the reference path or the
    /// plan path with its device-evaluation flavour.
    pub fn new(ckt: &Circuit, layout: &MnaLayout, mode: PlanMode, sel: EngineSel) -> Self {
        if sel.reference {
            SolverEngine::Reference {
                mat: DenseMatrix::zeros(layout.size()),
                work: Vec::new(),
            }
        } else {
            SolverEngine::Plan(Box::new(PlanSolver::new(ckt, layout, mode, sel.eval)))
        }
    }

    /// Runs one Newton solve; both variants produce identical results.
    #[allow(clippy::too_many_arguments)] // mirrors solve_newton's plumbing
    pub fn solve(
        &mut self,
        ckt: &Circuit,
        layout: &MnaLayout,
        x: &mut [f64],
        ctx: SolveContext<'_>,
        opts: &NewtonOpts,
        analysis: &'static str,
    ) -> Result<usize, Error> {
        match self {
            SolverEngine::Plan(p) => p.solve(ckt, layout, x, ctx, opts, analysis),
            SolverEngine::Reference { mat, work } => {
                mna::solve_newton(ckt, layout, x, ctx, opts, analysis, mat, work)
            }
        }
    }

    /// Plan work counters; `None` on the reference path.
    #[allow(dead_code)] // used by tests and benchmarks
    pub fn stats(&self) -> Option<SolverStats> {
        match self {
            SolverEngine::Plan(p) => Some(p.stats()),
            SolverEngine::Reference { .. } => None,
        }
    }

    /// Public counter snapshot for telemetry; `None` on the reference
    /// path, which keeps no counters.
    pub fn counters(&self) -> Option<crate::telemetry::SolverCounters> {
        self.stats().map(crate::telemetry::SolverCounters::from)
    }

    /// Maximum node-voltage update of the most recent Newton iteration;
    /// `None` on the reference path.
    pub fn last_max_dv(&self) -> Option<f64> {
        match self {
            SolverEngine::Plan(p) => Some(p.last_max_dv()),
            SolverEngine::Reference { .. } => None,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::analysis::mna::{CapCompanion, IndCompanion};
    use crate::linear::DenseMatrix;
    use crate::waveform::Waveform;

    /// Runs both paths over the same solve sequence and asserts exact
    /// bit-level agreement of the solution vectors.
    fn assert_bitwise_parity(
        ckt: &Circuit,
        mode: PlanMode,
        contexts: &[(f64, f64, f64)], // (time, source_scale, gshunt)
    ) -> SolverStats {
        let layout = MnaLayout::new(ckt);
        let n = layout.size();
        let opts = NewtonOpts::default();
        let mut plan = PlanSolver::new(ckt, &layout, mode, DeviceEval::Exact);
        let mut mat = DenseMatrix::zeros(n);
        let mut work = Vec::new();
        let mut x_plan = vec![0.0; n];
        let mut x_ref = vec![0.0; n];
        for &(time, source_scale, gshunt) in contexts {
            let ctx = SolveContext {
                time,
                source_scale,
                caps: None,
                inds: None,
                gshunt,
            };
            let it_p = plan
                .solve(ckt, &layout, &mut x_plan, ctx, &opts, "dc")
                .unwrap();
            let it_r = mna::solve_newton(
                ckt, &layout, &mut x_ref, ctx, &opts, "dc", &mut mat, &mut work,
            )
            .unwrap();
            assert_eq!(it_p, it_r, "iteration counts diverged");
            for (a, b) in x_plan.iter().zip(&x_ref) {
                assert_eq!(a.to_bits(), b.to_bits(), "{a} vs {b}");
            }
        }
        plan.stats()
    }

    fn nmos_inverter() -> Circuit {
        let mut ckt = Circuit::new();
        let vdd = ckt.node("vdd");
        let vin = ckt.node("in");
        let out = ckt.node("out");
        ckt.vsource("VDD", vdd, Circuit::GND, Waveform::dc(2.5));
        ckt.vsource("VIN", vin, Circuit::GND, Waveform::dc(2.5));
        // Depletion-free NMOS inverter with resistive pull-up; the mosfet
        // is stamped BEFORE the resistor that shares the output node, so
        // the resistor's (out, out) contribution must be demoted to keep
        // the accumulation order of the reference assembler.
        ckt.mosfet(
            "M1",
            out,
            vin,
            Circuit::GND,
            crate::elements::MosParams::nmos(320e-9, 1.2e-6),
        );
        ckt.resistor("RL", vdd, out, 10e3);
        ckt
    }

    #[test]
    fn linear_divider_matches_reference_bitwise() {
        let mut ckt = Circuit::new();
        let vin = ckt.node("in");
        let mid = ckt.node("mid");
        ckt.vsource("V1", vin, Circuit::GND, Waveform::dc(2.5));
        ckt.resistor("R1", vin, mid, 1e3);
        ckt.resistor("R2", mid, Circuit::GND, 1e3);
        let stats = assert_bitwise_parity(
            &ckt,
            PlanMode::Dc,
            &[(0.0, 1.0, 0.0), (0.0, 1.0, 0.0), (0.0, 0.5, 0.0)],
        );
        // Same matrix across all three solves: one factorization total.
        assert_eq!(stats.factorizations, 1);
        // Second solve is identical (A, b): served from the solution cache.
        assert!(stats.bypasses >= 1, "stats: {stats:?}");
    }

    #[test]
    fn mosfet_demotion_keeps_bitwise_parity() {
        let ckt = nmos_inverter();
        let stats = assert_bitwise_parity(
            &ckt,
            PlanMode::Dc,
            &[(0.0, 1.0, 0.0), (0.0, 1.0, 1e-3), (0.0, 1.0, 0.0)],
        );
        // 0 → 1e-3 → 0: each gshunt change differs from the cached key.
        assert_eq!(stats.rebases, 3, "gshunt changes must rebase");
    }

    #[test]
    fn switch_circuit_hits_solution_cache() {
        let mut ckt = Circuit::new();
        let vdd = ckt.node("vdd");
        let ctrl = ckt.node("ctrl");
        let out = ckt.node("out");
        ckt.vsource("VDD", vdd, Circuit::GND, Waveform::dc(2.5));
        ckt.vsource("VC", ctrl, Circuit::GND, Waveform::dc(2.5));
        ckt.switch("S1", vdd, out, ctrl, Circuit::GND, 1.25, 1e3, 1e12);
        ckt.resistor("RL", out, Circuit::GND, 1e4);
        let stats = assert_bitwise_parity(
            &ckt,
            PlanMode::Dc,
            &[(0.0, 1.0, 0.0), (0.0, 1.0, 0.0), (0.0, 1.0, 0.0)],
        );
        // The cold start sees the switch off (vc = 0); from iteration 2 on
        // the source-pinned control holds it on, so exactly two distinct
        // Jacobians exist across all three solves and every repeated
        // (A, b) system is served from the solution cache.
        assert_eq!(stats.factorizations, 2, "stats: {stats:?}");
        assert!(stats.bypasses >= 5, "stats: {stats:?}");
    }

    #[test]
    fn diode_circuit_matches_reference_bitwise() {
        let mut ckt = Circuit::new();
        let vin = ckt.node("in");
        let out = ckt.node("out");
        ckt.vsource("V1", vin, Circuit::GND, Waveform::dc(5.0));
        ckt.resistor("R1", vin, out, 1e3);
        ckt.diode("D1", out, Circuit::GND, 1e-14, 1.0);
        assert_bitwise_parity(&ckt, PlanMode::Dc, &[(0.0, 1.0, 0.0), (0.0, 1.0, 0.0)]);
    }

    #[test]
    fn transient_companions_match_reference_bitwise() {
        let mut ckt = Circuit::new();
        let vin = ckt.node("in");
        let out = ckt.node("out");
        ckt.vsource("V1", vin, Circuit::GND, Waveform::dc(1.0));
        ckt.resistor("R1", vin, out, 1e3);
        ckt.capacitor("C1", out, Circuit::GND, 1e-9);
        let l = ckt.node("l");
        ckt.inductor("L1", out, l, 1e-6);
        ckt.resistor("R2", l, Circuit::GND, 50.0);

        let layout = MnaLayout::new(&ckt);
        let n = layout.size();
        let opts = NewtonOpts::default();
        let mut plan = PlanSolver::new(&ckt, &layout, PlanMode::Tran, DeviceEval::Exact);
        let mut mat = DenseMatrix::zeros(n);
        let mut work = Vec::new();
        let mut x_plan = vec![0.0; n];
        let mut x_ref = vec![0.0; n];
        let caps = [CapCompanion {
            geq: 1e-9 / 1e-9,
            ieq: 0.125,
        }];
        let inds = [IndCompanion {
            geq: 1e-9 / 1e-6,
            ieq: 3e-4,
        }];
        for _ in 0..3 {
            let ctx = SolveContext {
                time: 1e-9,
                source_scale: 1.0,
                caps: Some(&caps),
                inds: Some(&inds),
                gshunt: 0.0,
            };
            plan.solve(&ckt, &layout, &mut x_plan, ctx, &opts, "tran")
                .unwrap();
            mna::solve_newton(
                &ckt, &layout, &mut x_ref, ctx, &opts, "tran", &mut mat, &mut work,
            )
            .unwrap();
            for (a, b) in x_plan.iter().zip(&x_ref) {
                assert_eq!(a.to_bits(), b.to_bits(), "{a} vs {b}");
            }
        }
        // Linear circuit at fixed companions: exactly one factorization.
        assert_eq!(plan.stats().factorizations, 1);
    }

    #[test]
    fn singular_system_reports_same_error() {
        let mut ckt = Circuit::new();
        let a = ckt.node("a");
        // A current source into a node with no DC path anywhere: singular.
        ckt.isource("I1", Circuit::GND, a, Waveform::dc(1e-3));
        let layout = MnaLayout::new(&ckt);
        let opts = NewtonOpts::default();
        let ctx = SolveContext {
            time: 0.0,
            source_scale: 1.0,
            caps: None,
            inds: None,
            gshunt: 0.0,
        };
        let mut plan = PlanSolver::new(&ckt, &layout, PlanMode::Dc, DeviceEval::Exact);
        let mut x = vec![0.0; layout.size()];
        let got = plan.solve(&ckt, &layout, &mut x, ctx, &opts, "dc");
        let mut mat = DenseMatrix::zeros(layout.size());
        let mut work = Vec::new();
        let mut xr = vec![0.0; layout.size()];
        let want = mna::solve_newton(
            &ckt, &layout, &mut xr, ctx, &opts, "dc", &mut mat, &mut work,
        );
        match (got, want) {
            (Err(Error::SingularMatrix { row: a }), Err(Error::SingularMatrix { row: b })) => {
                assert_eq!(a, b)
            }
            other => panic!("expected matching singular errors, got {other:?}"),
        }
    }
}
