//! DC sweep analysis: the static transfer curve.
//!
//! Repeats the DC operating-point solve while stepping one voltage
//! source through a range — the `.DC` analysis of SPICE. Used for
//! voltage-transfer curves (e.g. the static characteristic of the
//! transcoding inverter) and for locating switching thresholds.

use crate::analysis::dcop::{solve_dc_seeded, DcSolution};
use crate::analysis::mna::MnaLayout;
use crate::analysis::plan::{EngineSel, PlanMode, SolverEngine};
use crate::analysis::solution::Solution;
use crate::elements::Element;
use crate::error::Error;
use crate::netlist::{Circuit, ElementId, NodeId};
use crate::telemetry::{Event, Probe};
use crate::waveform::Waveform;

/// Result of a DC sweep: one full operating point per sweep value.
#[derive(Debug, Clone)]
pub struct DcSweepResult {
    values: Vec<f64>,
    solutions: Vec<DcSolution>,
}

impl DcSweepResult {
    /// The swept source values.
    pub fn values(&self) -> &[f64] {
        &self.values
    }

    /// The operating point at sweep index `idx`.
    ///
    /// # Panics
    ///
    /// Panics if `idx` is out of range.
    pub fn solution(&self, idx: usize) -> &DcSolution {
        &self.solutions[idx]
    }

    /// Transfer curve of one node: `(sweep value, node voltage)` pairs.
    pub fn transfer(&self, node: NodeId) -> Vec<(f64, f64)> {
        self.values
            .iter()
            .zip(&self.solutions)
            .map(|(&v, s)| (v, s.voltage(node)))
            .collect()
    }

    /// First sweep value at which `node` crosses `level` (linear
    /// interpolation between sweep points), or `None`.
    pub fn crossing(&self, node: NodeId, level: f64) -> Option<f64> {
        let curve = self.transfer(node);
        for pair in curve.windows(2) {
            let (x0, y0) = pair[0];
            let (x1, y1) = pair[1];
            if (y0 - level) * (y1 - level) <= 0.0 && y0 != y1 {
                return Some(x0 + (x1 - x0) * (level - y0) / (y1 - y0));
            }
        }
        None
    }
}

impl Solution for DcSweepResult {
    /// Node voltage at each sweep point, in volts.
    type Voltage = Vec<f64>;
    /// Branch current at each sweep point, in amperes.
    type Current = Vec<f64>;

    fn voltage(&self, node: NodeId) -> Result<Vec<f64>, Error> {
        self.solutions
            .iter()
            .map(|s| Solution::voltage(s, node))
            .collect()
    }

    fn branch_current(&self, element: ElementId) -> Result<Vec<f64>, Error> {
        self.solutions
            .iter()
            .map(|s| s.branch_current(element))
            .collect()
    }
}

/// Sweeps the DC value of `source` through `values`, solving the
/// operating point at each step.
///
/// The source's waveform is temporarily replaced by each DC value; the
/// circuit is handed in by value to make that explicit (clone it if you
/// need it afterwards).
///
/// # Errors
///
/// Returns [`Error::InvalidParameter`] if `source` is not a voltage
/// source, and propagates operating-point errors.
///
/// # Examples
///
/// Locating a CMOS inverter's switching threshold:
///
/// ```
/// use mssim::prelude::*;
/// use mssim::elements::MosParams;
/// use mssim::sweep::linspace;
///
/// # fn main() -> Result<(), mssim::Error> {
/// let mut ckt = Circuit::new();
/// let vdd = ckt.node("vdd");
/// let g = ckt.node("g");
/// let out = ckt.node("out");
/// ckt.vsource("VDD", vdd, Circuit::GND, Waveform::dc(2.5));
/// let vg = ckt.vsource("VG", g, Circuit::GND, Waveform::dc(0.0));
/// ckt.mosfet("MP", out, g, vdd, MosParams::pmos(865e-9, 1.2e-6));
/// ckt.mosfet("MN", out, g, Circuit::GND, MosParams::nmos(320e-9, 1.2e-6));
/// ckt.resistor("RL", out, Circuit::GND, 10e6);
/// let sweep = Session::new(&ckt).dc_sweep(vg, &linspace(0.0, 2.5, 51))?;
/// let vm = sweep.crossing(out, 1.25).expect("inverter switches");
/// assert!(vm > 0.8 && vm < 1.6);
/// # Ok(())
/// # }
/// ```
#[deprecated(
    since = "0.2.0",
    note = "use `Session::new(&circuit).dc_sweep(source, values)` instead"
)]
pub fn dc_sweep(
    circuit: Circuit,
    source: ElementId,
    values: &[f64],
) -> Result<DcSweepResult, Error> {
    crate::session::Session::new(&circuit).dc_sweep(source, values)
}

/// [`Session::dc_sweep`](crate::Session::dc_sweep) on the naive
/// per-iteration assembler, bypassing the compiled stamp plan. Kept for
/// golden-equivalence tests and as the benchmark baseline; not part of the
/// supported API.
///
/// # Errors
///
/// Same conditions as [`Session::dc_sweep`](crate::Session::dc_sweep).
#[doc(hidden)]
pub fn dc_sweep_reference(
    circuit: Circuit,
    source: ElementId,
    values: &[f64],
) -> Result<DcSweepResult, Error> {
    crate::session::Session::new(&circuit)
        .with_reference_solver(true)
        .dc_sweep(source, values)
}

pub(crate) fn dc_sweep_impl(
    mut circuit: Circuit,
    source: ElementId,
    values: &[f64],
    mut sel: EngineSel,
    mut probe: Probe<'_>,
) -> Result<DcSweepResult, Error> {
    // The latency bands shrink well below the transient defaults here: a
    // sweep point is a *converged equilibrium* whose full frozen-device
    // error lands directly in the reported curve, with no subsequent step
    // to damp it, so the sweep trades back most of the latency for
    // accuracy. The sparse replay factorization still carries the speed.
    if let crate::analysis::plan::DeviceEval::Limited(ref mut lopts) = sel.eval {
        lopts.latency_reltol = 5e-3;
        lopts.latency_abstol = 2.5e-4;
    }
    crate::lint::preflight(&circuit, "dc-sweep", crate::lint::LintContext::Dc)?;
    if !matches!(circuit.element(source), Element::VoltageSource { .. }) {
        return Err(Error::InvalidParameter {
            element: circuit.element_name(source).to_owned(),
            reason: "DC sweep target must be a voltage source".into(),
        });
    }
    // One layout and one engine for the whole sweep: the stamp plan reads
    // source waveforms live at each solve, so `set_waveform` between points
    // (the only mutation here) needs no recompilation, and the plan's
    // factorization cache carries across points whose Jacobian repeats.
    let layout = MnaLayout::new(&circuit);
    let mut engine = SolverEngine::new(&circuit, &layout, PlanMode::Dc, sel);
    probe.emit(Event::AnalysisStart {
        analysis: "dc-sweep",
    });
    let mut solutions = Vec::with_capacity(values.len());
    // Warm start: each point's Newton seeds from the previous accepted
    // solution (standard SPICE sweep continuation). Both engines benefit;
    // the plan engine additionally keeps its device anchors and
    // factorization caches valid across points this way.
    let mut warm = vec![0.0; layout.size()];
    for &v in values {
        circuit
            .set_waveform(source, Waveform::dc(v))
            .expect("checked: element is a source");
        let point = solve_dc_seeded(&circuit, &layout, &mut engine, &mut warm, &mut probe);
        match point {
            Ok(sol) => solutions.push(sol),
            Err(e) => {
                probe.report(&engine, "dc-sweep");
                return Err(e);
            }
        }
    }
    probe.report(&engine, "dc-sweep");
    probe.emit(Event::AnalysisEnd {
        analysis: "dc-sweep",
    });
    Ok(DcSweepResult {
        values: values.to_vec(),
        solutions,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::elements::MosParams;
    use crate::session::Session;
    use crate::sweep::linspace;

    #[test]
    fn divider_sweep_is_linear() {
        let mut ckt = Circuit::new();
        let a = ckt.node("a");
        let b = ckt.node("b");
        let src = ckt.vsource("V1", a, Circuit::GND, Waveform::dc(0.0));
        ckt.resistor("R1", a, b, 1e3);
        ckt.resistor("R2", b, Circuit::GND, 1e3);
        let sweep = Session::new(&ckt)
            .dc_sweep(src, &linspace(0.0, 4.0, 5))
            .unwrap();
        for (vin, vout) in sweep.transfer(b) {
            assert!((vout - vin / 2.0).abs() < 1e-9);
        }
        assert_eq!(sweep.values(), &[0.0, 1.0, 2.0, 3.0, 4.0]);
    }

    #[test]
    fn inverter_vtc_has_a_steep_transition() {
        let mut ckt = Circuit::new();
        let vdd = ckt.node("vdd");
        let g = ckt.node("g");
        let out = ckt.node("out");
        ckt.vsource("VDD", vdd, Circuit::GND, Waveform::dc(2.5));
        let vg = ckt.vsource("VG", g, Circuit::GND, Waveform::dc(0.0));
        ckt.mosfet("MP", out, g, vdd, MosParams::pmos(865e-9, 1.2e-6));
        ckt.mosfet("MN", out, g, Circuit::GND, MosParams::nmos(320e-9, 1.2e-6));
        ckt.resistor("RL", out, Circuit::GND, 10e6);
        let sweep = Session::new(&ckt)
            .dc_sweep(vg, &linspace(0.0, 2.5, 101))
            .unwrap();
        let curve = sweep.transfer(out);
        // Rails at the ends.
        assert!(curve[0].1 > 2.45);
        assert!(curve[100].1 < 0.05);
        // Monotone non-increasing.
        for w in curve.windows(2) {
            assert!(w[1].1 <= w[0].1 + 1e-6);
        }
        // Switching threshold near the analytic V_M ≈ 1.27 V.
        let vm = sweep.crossing(out, 1.25).expect("crosses mid-rail");
        assert!((vm - 1.27).abs() < 0.1, "V_M = {vm}");
        // Max gain well above 1 (it is an amplifier in transition).
        let gain = curve
            .windows(2)
            .map(|w| (w[1].1 - w[0].1).abs() / (w[1].0 - w[0].0))
            .fold(0.0f64, f64::max);
        assert!(gain > 5.0, "peak |dVout/dVin| = {gain}");
    }

    #[test]
    fn sweep_rejects_non_source_target() {
        let mut ckt = Circuit::new();
        let a = ckt.node("a");
        ckt.vsource("V1", a, Circuit::GND, Waveform::dc(1.0));
        let r = ckt.resistor("R1", a, Circuit::GND, 1e3);
        assert!(matches!(
            Session::new(&ckt).dc_sweep(r, &[0.0, 1.0]),
            Err(Error::InvalidParameter { .. })
        ));
    }

    #[test]
    fn crossing_returns_none_when_never_crossed() {
        let mut ckt = Circuit::new();
        let a = ckt.node("a");
        let b = ckt.node("b");
        let src = ckt.vsource("V1", a, Circuit::GND, Waveform::dc(0.0));
        ckt.resistor("R1", a, b, 1e3);
        ckt.resistor("R2", b, Circuit::GND, 1e3);
        let sweep = Session::new(&ckt)
            .dc_sweep(src, &linspace(0.0, 1.0, 3))
            .unwrap();
        assert_eq!(sweep.crossing(b, 5.0), None);
    }
}
