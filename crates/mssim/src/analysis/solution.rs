//! The common probing surface shared by every analysis result.
//!
//! Each of the five analyses returns its own result type with accessors
//! shaped to the analysis (a scalar voltage at a DC operating point, a
//! waveform over time for a transient, a phasor per frequency for AC).
//! [`Solution`] overlays a uniform, fallible vocabulary on top: every
//! result answers `voltage(node)` and `branch_current(element)` with a
//! `Result`, so generic post-processing (report generators, probing
//! helpers, assertion harnesses) can treat the results alike without
//! matching on the concrete type.
//!
//! The associated types keep each analysis honest about its payload:
//!
//! | result              | `Voltage`        | `Current`        |
//! |---------------------|------------------|------------------|
//! | `DcSolution`        | `f64`            | `f64`            |
//! | `DcSweepResult`     | `Vec<f64>`       | `Vec<f64>`       |
//! | `AcResult`          | `Vec<Complex>`   | `Vec<Complex>`   |
//! | `NoiseResult`       | `Vec<f64>`       | `Vec<f64>`       |
//! | `TransientResult`   | `TraceData`      | `TraceData`      |

use crate::error::Error;
use crate::netlist::{ElementId, NodeId};

/// Uniform, fallible probing of an analysis result.
///
/// Implemented by all five analysis result types. Unlike the inherent
/// accessors (which panic on out-of-range nodes, matching long-standing
/// behaviour), these methods return [`Error::UnknownProbe`] for any probe
/// the result cannot answer — an unknown node, an element that carries no
/// branch current, or a quantity the analysis never computed.
pub trait Solution {
    /// Payload of a voltage probe (scalar, per-sweep-point vector, or
    /// waveform, depending on the analysis).
    type Voltage;
    /// Payload of a branch-current probe.
    type Current;

    /// The solved voltage quantity at `node`.
    ///
    /// # Errors
    ///
    /// Returns [`Error::UnknownProbe`] if the node does not belong to the
    /// analysed circuit or the analysis holds no voltage for it.
    fn voltage(&self, node: NodeId) -> Result<Self::Voltage, Error>;

    /// The solved branch current through `element`.
    ///
    /// # Errors
    ///
    /// Returns [`Error::UnknownProbe`] if the element carries no branch
    /// current (resistor, capacitor, ...) or the analysis holds none.
    fn branch_current(&self, element: ElementId) -> Result<Self::Current, Error>;
}
