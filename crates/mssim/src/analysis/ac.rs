//! AC (small-signal) analysis.
//!
//! Linearises the circuit around its DC operating point and solves the
//! complex phasor system at each requested frequency: capacitors become
//! `jωC`, inductors `jωL`, nonlinear devices their operating-point
//! conductances (`gm`, `gds`, diode `g`), and one designated voltage
//! source drives a unit AC stimulus while all other independent sources
//! are nulled (voltage sources shorted, current sources opened) — the
//! standard SPICE `.AC` semantics.

use crate::analysis::dcop::{dc_operating_point_impl, DcSolution};
use crate::analysis::mna::MnaLayout;
use crate::analysis::plan::EngineSel;
use crate::analysis::solution::Solution;
use crate::complex::{Complex, ComplexMatrix};
use crate::elements::Element;
use crate::error::Error;
use crate::netlist::{Circuit, ElementId, NodeId};
use crate::telemetry::{Event, Probe};

/// Result of an AC sweep: one complex phasor per node per frequency.
#[derive(Debug, Clone)]
pub struct AcResult {
    frequencies: Vec<f64>,
    /// `phasors[freq_idx][row]`, rows as in the MNA layout.
    phasors: Vec<Vec<Complex>>,
    n_nodes: usize,
    branch_of: Vec<Option<usize>>,
}

impl AcResult {
    /// The analysed frequencies in hertz.
    pub fn frequencies(&self) -> &[f64] {
        &self.frequencies
    }

    /// Node voltage phasor at frequency index `idx`.
    ///
    /// # Panics
    ///
    /// Panics if `idx` or the node is out of range.
    pub fn phasor(&self, node: NodeId, idx: usize) -> Complex {
        let n = node.index();
        assert!(n < self.n_nodes, "node {node} out of range");
        if n == 0 {
            Complex::ZERO
        } else {
            self.phasors[idx][n - 1]
        }
    }

    /// Transfer magnitude `|V(node)|` across the sweep (unit stimulus, so
    /// this is `|H|`).
    pub fn magnitude(&self, node: NodeId) -> Vec<f64> {
        (0..self.frequencies.len())
            .map(|i| self.phasor(node, i).abs())
            .collect()
    }

    /// Transfer magnitude in dB across the sweep.
    pub fn magnitude_db(&self, node: NodeId) -> Vec<f64> {
        (0..self.frequencies.len())
            .map(|i| self.phasor(node, i).db())
            .collect()
    }

    /// Phase in degrees across the sweep.
    pub fn phase_deg(&self, node: NodeId) -> Vec<f64> {
        (0..self.frequencies.len())
            .map(|i| self.phasor(node, i).arg_deg())
            .collect()
    }
}

impl Solution for AcResult {
    /// Node-voltage phasor across the sweep.
    type Voltage = Vec<Complex>;
    /// Branch-current phasor across the sweep.
    type Current = Vec<Complex>;

    fn voltage(&self, node: NodeId) -> Result<Vec<Complex>, Error> {
        if node.index() >= self.n_nodes {
            return Err(Error::UnknownProbe {
                what: format!("voltage of {node}"),
            });
        }
        Ok((0..self.frequencies.len())
            .map(|i| self.phasor(node, i))
            .collect())
    }

    fn branch_current(&self, element: ElementId) -> Result<Vec<Complex>, Error> {
        match self.branch_of.get(element.index()).copied().flatten() {
            Some(b) => Ok(self
                .phasors
                .iter()
                .map(|row| row[self.n_nodes - 1 + b])
                .collect()),
            None => Err(Error::UnknownProbe {
                what: format!("branch current of {element}"),
            }),
        }
    }
}

/// Runs an AC sweep with a unit stimulus on `source`.
///
/// # Errors
///
/// Returns [`Error::InvalidParameter`] if `source` is not a voltage
/// source, and propagates DC-operating-point and solver errors.
///
/// # Examples
///
/// An RC low-pass is 3 dB down at its corner frequency:
///
/// ```
/// use mssim::prelude::*;
///
/// # fn main() -> Result<(), mssim::Error> {
/// let mut ckt = Circuit::new();
/// let vin = ckt.node("in");
/// let out = ckt.node("out");
/// let src = ckt.vsource("V1", vin, Circuit::GND, Waveform::dc(0.0));
/// ckt.resistor("R1", vin, out, 1e3);
/// ckt.capacitor("C1", out, Circuit::GND, 1e-9);
/// let fc = 1.0 / (2.0 * std::f64::consts::PI * 1e3 * 1e-9);
/// let ac = Session::new(&ckt).ac(src, &[fc])?;
/// let gain_db = ac.magnitude_db(out)[0];
/// assert!((gain_db + 3.0103).abs() < 0.01);
/// # Ok(())
/// # }
/// ```
#[deprecated(
    since = "0.2.0",
    note = "use `Session::new(&circuit).ac(source, frequencies)` instead"
)]
pub fn ac_analysis(
    circuit: &Circuit,
    source: ElementId,
    frequencies: &[f64],
) -> Result<AcResult, Error> {
    crate::session::Session::new(circuit).ac(source, frequencies)
}

pub(crate) fn ac_analysis_impl(
    circuit: &Circuit,
    source: ElementId,
    frequencies: &[f64],
    sel: EngineSel,
    mut probe: Probe<'_>,
) -> Result<AcResult, Error> {
    crate::lint::preflight(circuit, "ac", crate::lint::LintContext::Dc)?;
    if !matches!(circuit.element(source), Element::VoltageSource { .. }) {
        return Err(Error::InvalidParameter {
            element: circuit.element_name(source).to_owned(),
            reason: "AC stimulus must be a voltage source".into(),
        });
    }
    probe.emit(Event::AnalysisStart { analysis: "ac" });
    let op = dc_operating_point_impl(circuit, sel, probe.reborrow())?;
    let layout = MnaLayout::new(circuit);
    let n = layout.size();

    let mut phasors = Vec::with_capacity(frequencies.len());
    let mut mat = ComplexMatrix::zeros(n);
    for &freq in frequencies {
        let omega = 2.0 * std::f64::consts::PI * freq;
        mat.clear();
        let mut rhs = vec![Complex::ZERO; n];
        stamp_ac(
            circuit,
            &layout,
            &op,
            Some(source),
            omega,
            &mut mat,
            &mut rhs,
        );
        mat.solve_in_place(&mut rhs)?;
        phasors.push(rhs);
    }
    probe.emit(Event::AnalysisEnd { analysis: "ac" });
    Ok(AcResult {
        frequencies: frequencies.to_vec(),
        phasors,
        n_nodes: circuit.node_count(),
        branch_of: layout.branch_of.clone(),
    })
}

/// Stamps the AC-linearised system with every independent source nulled
/// (voltage sources shorted, current sources opened). Shared with the
/// noise analysis, which supplies its own excitation via the adjoint.
pub(crate) fn stamp_ac_matrix(
    ckt: &Circuit,
    layout: &MnaLayout,
    op: &DcSolution,
    omega: f64,
    mat: &mut ComplexMatrix,
    rhs: &mut [Complex],
) {
    stamp_ac(ckt, layout, op, None, omega, mat, rhs);
}

fn stamp_ac(
    ckt: &Circuit,
    layout: &MnaLayout,
    op: &DcSolution,
    source: Option<ElementId>,
    omega: f64,
    mat: &mut ComplexMatrix,
    rhs: &mut [Complex],
) {
    let row = |node: NodeId| layout.node_row(node);
    let stamp_g = |mat: &mut ComplexMatrix, a: NodeId, b: NodeId, g: Complex| {
        if let Some(ra) = row(a) {
            mat.add(ra, ra, g);
            if let Some(rb) = row(b) {
                mat.add(ra, rb, -g);
            }
        }
        if let Some(rb) = row(b) {
            mat.add(rb, rb, g);
            if let Some(ra) = row(a) {
                mat.add(rb, ra, -g);
            }
        }
    };

    for (idx, (id, _, elem)) in ckt.elements().enumerate() {
        match elem {
            Element::Resistor { a, b, ohms } => {
                stamp_g(mat, *a, *b, Complex::real(1.0 / ohms));
            }
            Element::Capacitor { a, b, farads, .. } => {
                stamp_g(mat, *a, *b, Complex::imag(omega * farads));
            }
            Element::Inductor { a, b, henries, .. } => {
                let br = layout.branch_row(layout.branch_of[idx].expect("inductor branch"));
                if let Some(ra) = row(*a) {
                    mat.add(ra, br, Complex::ONE);
                    mat.add(br, ra, Complex::ONE);
                }
                if let Some(rb) = row(*b) {
                    mat.add(rb, br, -Complex::ONE);
                    mat.add(br, rb, -Complex::ONE);
                }
                // v(a) − v(b) − jωL·i = 0.
                mat.add(br, br, Complex::imag(-omega * henries));
            }
            Element::VoltageSource { pos, neg, .. } => {
                let br = layout.branch_row(layout.branch_of[idx].expect("vsource branch"));
                if let Some(rp) = row(*pos) {
                    mat.add(rp, br, Complex::ONE);
                    mat.add(br, rp, Complex::ONE);
                }
                if let Some(rn) = row(*neg) {
                    mat.add(rn, br, -Complex::ONE);
                    mat.add(br, rn, -Complex::ONE);
                }
                rhs[br] = if Some(id) == source {
                    Complex::ONE
                } else {
                    Complex::ZERO // AC-nulled: ideal short
                };
            }
            Element::CurrentSource { .. } => {
                // AC-nulled: open circuit — no stamp.
            }
            Element::Mosfet { d, g, s, params } => {
                let vd = op.voltage(*d);
                let vg = op.voltage(*g);
                let vs = op.voltage(*s);
                let pt = params.evaluate(vd, vg, vs);
                // Small-signal: i_d = gdd·v_d + gdg·v_g + gds·v_s.
                let rd = row(*d);
                let rg = row(*g);
                let rs = row(*s);
                if let Some(rd) = rd {
                    mat.add(rd, rd, Complex::real(pt.gdd));
                    if let Some(rg) = rg {
                        mat.add(rd, rg, Complex::real(pt.gdg));
                    }
                    if let Some(rs) = rs {
                        mat.add(rd, rs, Complex::real(pt.gds_node));
                    }
                }
                if let Some(rs_row) = rs {
                    if let Some(rd) = rd {
                        mat.add(rs_row, rd, Complex::real(-pt.gdd));
                    }
                    if let Some(rg) = rg {
                        mat.add(rs_row, rg, Complex::real(-pt.gdg));
                    }
                    mat.add(rs_row, rs_row, Complex::real(-pt.gds_node));
                }
                stamp_g(mat, *d, *s, Complex::real(1e-12)); // gmin
            }
            Element::Switch {
                a,
                b,
                ctrl_pos,
                ctrl_neg,
                threshold,
                r_on,
                r_off,
            } => {
                let vc = op.voltage(*ctrl_pos) - op.voltage(*ctrl_neg);
                let g = if vc > *threshold {
                    1.0 / r_on
                } else {
                    1.0 / r_off
                };
                stamp_g(mat, *a, *b, Complex::real(g));
            }
            Element::Diode { a, k, i_sat, n } => {
                let v = op.voltage(*a) - op.voltage(*k);
                let nvt = n * 0.025852;
                let g = i_sat / nvt * (v / nvt).min(40.0).exp();
                stamp_g(mat, *a, *k, Complex::real(g + 1e-12));
            }
            Element::Vcvs { p, n, cp, cn, gain } => {
                let br = layout.branch_row(layout.branch_of[idx].expect("vcvs branch"));
                if let Some(rp) = row(*p) {
                    mat.add(rp, br, Complex::ONE);
                    mat.add(br, rp, Complex::ONE);
                }
                if let Some(rn) = row(*n) {
                    mat.add(rn, br, -Complex::ONE);
                    mat.add(br, rn, -Complex::ONE);
                }
                // v(p) − v(n) − gain·(v(cp) − v(cn)) = 0.
                if let Some(rcp) = row(*cp) {
                    mat.add(br, rcp, Complex::real(-gain));
                }
                if let Some(rcn) = row(*cn) {
                    mat.add(br, rcn, Complex::real(*gain));
                }
            }
            Element::Vccs {
                from,
                to,
                cp,
                cn,
                gm,
            } => {
                let rcp = row(*cp);
                let rcn = row(*cn);
                if let Some(rt) = row(*to) {
                    if let Some(rcp) = rcp {
                        mat.add(rt, rcp, Complex::real(-gm));
                    }
                    if let Some(rcn) = rcn {
                        mat.add(rt, rcn, Complex::real(*gm));
                    }
                }
                if let Some(rf) = row(*from) {
                    if let Some(rcp) = rcp {
                        mat.add(rf, rcp, Complex::real(*gm));
                    }
                    if let Some(rcn) = rcn {
                        mat.add(rf, rcn, Complex::real(-gm));
                    }
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::elements::MosParams;
    use crate::session::Session;
    use crate::sweep::logspace;
    use crate::waveform::Waveform;

    #[test]
    fn rc_lowpass_bode() {
        let r = 1e3;
        let c = 1e-9;
        let fc = 1.0 / (2.0 * std::f64::consts::PI * r * c);
        let mut ckt = Circuit::new();
        let vin = ckt.node("in");
        let out = ckt.node("out");
        let src = ckt.vsource("V1", vin, Circuit::GND, Waveform::dc(0.0));
        ckt.resistor("R1", vin, out, r);
        ckt.capacitor("C1", out, Circuit::GND, c);
        let ac = Session::new(&ckt)
            .ac(src, &[fc / 100.0, fc, fc * 100.0])
            .unwrap();
        let mag = ac.magnitude_db(out);
        let phase = ac.phase_deg(out);
        assert!(mag[0].abs() < 0.01, "passband flat: {} dB", mag[0]);
        assert!((mag[1] + 3.0103).abs() < 0.01, "corner: {} dB", mag[1]);
        assert!((mag[2] + 40.0).abs() < 0.1, "-20 dB/dec: {} dB", mag[2]);
        assert!((phase[1] + 45.0).abs() < 0.1, "corner phase {}", phase[1]);
    }

    #[test]
    fn rl_highpass() {
        // L to ground after a series R: V(out)/V(in) = jωL/(R + jωL).
        let r = 100.0;
        let l = 1e-3;
        let fc = r / (2.0 * std::f64::consts::PI * l);
        let mut ckt = Circuit::new();
        let vin = ckt.node("in");
        let out = ckt.node("out");
        let src = ckt.vsource("V1", vin, Circuit::GND, Waveform::dc(0.0));
        ckt.resistor("R1", vin, out, r);
        ckt.inductor("L1", out, Circuit::GND, l);
        let ac = Session::new(&ckt)
            .ac(src, &[fc / 100.0, fc, fc * 100.0])
            .unwrap();
        let mag = ac.magnitude_db(out);
        assert!((mag[0] + 40.0).abs() < 0.1, "stopband {} dB", mag[0]);
        assert!((mag[1] + 3.0103).abs() < 0.01, "corner {} dB", mag[1]);
        assert!(mag[2].abs() < 0.01, "passband {} dB", mag[2]);
    }

    #[test]
    fn rlc_series_resonance_peak() {
        // Voltage across C in a series RLC peaks near f0 by the quality
        // factor Q = (1/R)·√(L/C).
        let r = 10.0f64;
        let l = 1e-6f64;
        let c = 1e-9f64;
        let f0 = 1.0 / (2.0 * std::f64::consts::PI * (l * c).sqrt());
        let q = (l / c).sqrt() / r;
        let mut ckt = Circuit::new();
        let vin = ckt.node("in");
        let mid = ckt.node("mid");
        let out = ckt.node("out");
        let src = ckt.vsource("V1", vin, Circuit::GND, Waveform::dc(0.0));
        ckt.resistor("R1", vin, mid, r);
        ckt.inductor("L1", mid, out, l);
        ckt.capacitor("C1", out, Circuit::GND, c);
        let ac = Session::new(&ckt).ac(src, &[f0]).unwrap();
        let gain = ac.magnitude(out)[0];
        assert!((gain - q).abs() / q < 0.01, "peak {gain} vs Q {q}");
    }

    #[test]
    fn nmos_common_source_gain() {
        // Resistor-loaded common-source amp: |A| ≈ gm·(RL ∥ rds) at low
        // frequency, rolling off with the load capacitor.
        let mut ckt = Circuit::new();
        let vdd = ckt.node("vdd");
        let gate = ckt.node("g");
        let out = ckt.node("out");
        ckt.vsource("VDD", vdd, Circuit::GND, Waveform::dc(2.5));
        // Bias for saturation: vov ≈ 0.4 V puts ~26 µA through the 50 kΩ
        // load, leaving vds ≈ 1.2 V > vov.
        let vbias = 0.85;
        let vg = ckt.vsource("VG", gate, Circuit::GND, Waveform::dc(vbias));
        let rl = 50e3;
        ckt.resistor("RL", vdd, out, rl);
        ckt.mosfet("M1", out, gate, Circuit::GND, MosParams::nmos(2e-6, 1.2e-6));
        ckt.capacitor("CL", out, Circuit::GND, 1e-12);

        // Predict gm and rds from the DC OP.
        let op = Session::new(&ckt).dc_operating_point().unwrap();
        let pt = MosParams::nmos(2e-6, 1.2e-6).evaluate(op.voltage(out), vbias, 0.0);
        let rds = 1.0 / pt.gdd.max(1e-12);
        let expect = pt.gdg * (rl * rds / (rl + rds));

        let ac = Session::new(&ckt).ac(vg, &[1e3]).unwrap();
        let gain = ac.magnitude(out)[0];
        assert!(
            (gain - expect).abs() / expect < 0.01,
            "gain {gain} vs predicted {expect}"
        );
        assert!(gain > 2.0, "should actually amplify, |A| = {gain}");
        // Phase inversion: output ~180° from input at low frequency.
        let ph = ac.phase_deg(out)[0].abs();
        assert!((ph - 180.0).abs() < 5.0, "phase {ph}");
    }

    #[test]
    fn transcoding_inverter_output_pole() {
        // The Fig. 2 inverter's output RC sets a pole near
        // 1/(2π(Rout+Ron)Cout) when driven in its linear region.
        let mut ckt = Circuit::new();
        let vdd = ckt.node("vdd");
        let gate = ckt.node("g");
        let drv = ckt.node("drv");
        let out = ckt.node("out");
        ckt.vsource("VDD", vdd, Circuit::GND, Waveform::dc(2.5));
        let vg = ckt.vsource("VG", gate, Circuit::GND, Waveform::dc(1.1));
        ckt.mosfet("MP", drv, gate, vdd, MosParams::pmos(865e-9, 1.2e-6));
        ckt.mosfet(
            "MN",
            drv,
            gate,
            Circuit::GND,
            MosParams::nmos(320e-9, 1.2e-6),
        );
        ckt.resistor("Rout", drv, out, 100e3);
        ckt.capacitor("Cout", out, Circuit::GND, 1e-12);
        let freqs = logspace(1e3, 100e6, 11);
        let ac = Session::new(&ckt).ac(vg, &freqs).unwrap();
        let mag = ac.magnitude(out);
        // Monotone low-pass behaviour at the output node.
        for w in mag.windows(2) {
            assert!(w[1] <= w[0] * 1.001, "low-pass must roll off: {mag:?}");
        }
        // High-frequency magnitude strongly attenuated.
        assert!(mag[10] < mag[0] * 0.05);
    }

    #[test]
    fn stimulus_must_be_a_voltage_source() {
        let mut ckt = Circuit::new();
        let a = ckt.node("a");
        ckt.vsource("V1", a, Circuit::GND, Waveform::dc(1.0));
        let r = ckt.resistor("R1", a, Circuit::GND, 1e3);
        assert!(matches!(
            Session::new(&ckt).ac(r, &[1e3]),
            Err(Error::InvalidParameter { .. })
        ));
    }

    #[test]
    fn other_sources_are_nulled() {
        // Two sources; stimulate one: the other contributes nothing.
        let mut ckt = Circuit::new();
        let a = ckt.node("a");
        let b = ckt.node("b");
        let mid = ckt.node("mid");
        let s1 = ckt.vsource("V1", a, Circuit::GND, Waveform::dc(5.0));
        ckt.vsource("V2", b, Circuit::GND, Waveform::dc(3.0));
        ckt.resistor("R1", a, mid, 1e3);
        ckt.resistor("R2", b, mid, 1e3);
        let ac = Session::new(&ckt).ac(s1, &[1e3]).unwrap();
        // mid sees the divider of the unit stimulus: 0.5.
        assert!((ac.magnitude(mid)[0] - 0.5).abs() < 1e-9);
    }
}
