//! Modified nodal analysis: system layout, element stamping and the damped
//! Newton–Raphson kernel shared by the DC and transient analyses.
//!
//! Unknown vector layout: rows `0..n_nodes-1` are the voltages of nodes
//! `1..n_nodes` (ground is eliminated); the remaining rows are the branch
//! currents of voltage sources in netlist order.

use crate::elements::Element;
use crate::error::Error;
use crate::linear::DenseMatrix;
use crate::netlist::{Circuit, NodeId};

/// Thermal voltage at room temperature, used by the diode model.
pub(crate) const VT: f64 = 0.025852;
/// Exponent cap for the diode law; beyond this the exponential is
/// continued linearly to avoid overflow.
pub(crate) const DIODE_EXP_MAX: f64 = 40.0;

/// Static description of the MNA system for one circuit.
#[derive(Debug, Clone)]
pub(crate) struct MnaLayout {
    /// Total node count, including ground.
    pub n_nodes: usize,
    /// Per-element branch index (voltage sources only).
    pub branch_of: Vec<Option<usize>>,
    /// Per-element capacitor slot (capacitors only).
    pub cap_of: Vec<Option<usize>>,
    /// Per-element inductor slot (inductors only).
    pub ind_of: Vec<Option<usize>>,
    /// Number of branch-current unknowns.
    pub n_branches: usize,
    /// Number of capacitors.
    pub n_caps: usize,
    /// Number of inductors.
    pub n_inds: usize,
}

impl MnaLayout {
    pub fn new(ckt: &Circuit) -> Self {
        let mut branch_of = Vec::with_capacity(ckt.element_count());
        let mut cap_of = Vec::with_capacity(ckt.element_count());
        let mut ind_of = Vec::with_capacity(ckt.element_count());
        let mut n_branches = 0;
        let mut n_caps = 0;
        let mut n_inds = 0;
        for (_, _, e) in ckt.elements() {
            if e.has_branch_current() {
                branch_of.push(Some(n_branches));
                n_branches += 1;
            } else {
                branch_of.push(None);
            }
            if matches!(e, Element::Capacitor { .. }) {
                cap_of.push(Some(n_caps));
                n_caps += 1;
            } else {
                cap_of.push(None);
            }
            if matches!(e, Element::Inductor { .. }) {
                ind_of.push(Some(n_inds));
                n_inds += 1;
            } else {
                ind_of.push(None);
            }
        }
        MnaLayout {
            n_nodes: ckt.node_count(),
            branch_of,
            cap_of,
            ind_of,
            n_branches,
            n_caps,
            n_inds,
        }
    }

    /// Total number of unknowns.
    pub fn size(&self) -> usize {
        self.n_nodes - 1 + self.n_branches
    }

    /// Row of a node's voltage unknown, or `None` for ground.
    #[inline]
    pub fn node_row(&self, node: NodeId) -> Option<usize> {
        let i = node.index();
        if i == 0 {
            None
        } else {
            Some(i - 1)
        }
    }

    /// Row of branch-current unknown `b`.
    #[inline]
    pub fn branch_row(&self, b: usize) -> usize {
        self.n_nodes - 1 + b
    }
}

/// Integration companion for one capacitor at the current time step:
/// a conductance `geq` in parallel with a history current `ieq` injected
/// into the positive terminal.
#[derive(Debug, Clone, Copy, Default)]
pub(crate) struct CapCompanion {
    pub geq: f64,
    pub ieq: f64,
}

/// Integration companion for one inductor at the current time step. The
/// branch equation becomes `i − geq·(v(a)−v(b)) = ieq` with
/// `geq = h/(2L)` (trapezoidal) or `h/L` (backward Euler) and
/// `ieq = i_prev + geq·v_prev` (trapezoidal) or `i_prev` (BE).
#[derive(Debug, Clone, Copy, Default)]
pub(crate) struct IndCompanion {
    pub geq: f64,
    pub ieq: f64,
}

/// Newton–Raphson settings.
#[derive(Debug, Clone, Copy)]
pub(crate) struct NewtonOpts {
    pub max_iter: usize,
    pub abstol_v: f64,
    pub abstol_i: f64,
    pub reltol: f64,
    /// Maximum per-iteration node-voltage change; larger updates are
    /// scaled down (simple damping that keeps square-law devices stable).
    pub max_step_v: f64,
    /// Minimum conductance inserted across nonlinear devices.
    pub gmin: f64,
}

impl Default for NewtonOpts {
    fn default() -> Self {
        NewtonOpts {
            max_iter: 200,
            abstol_v: 1e-6,
            abstol_i: 1e-9,
            reltol: 1e-4,
            max_step_v: 0.5,
            gmin: 1e-12,
        }
    }
}

/// Inputs that vary between Newton solves.
#[derive(Debug, Clone, Copy)]
pub(crate) struct SolveContext<'a> {
    /// Simulation time used to evaluate source waveforms.
    pub time: f64,
    /// Multiplier applied to all independent sources (source stepping).
    pub source_scale: f64,
    /// Capacitor companions; `None` means DC (capacitors open).
    pub caps: Option<&'a [CapCompanion]>,
    /// Inductor companions; `None` means DC (inductors short).
    pub inds: Option<&'a [IndCompanion]>,
    /// Extra node-to-ground shunt conductance (gmin stepping).
    pub gshunt: f64,
}

/// Voltage of `node` under the guess vector `x`.
#[inline]
fn v_at(layout: &MnaLayout, x: &[f64], node: NodeId) -> f64 {
    match layout.node_row(node) {
        None => 0.0,
        Some(r) => x[r],
    }
}

/// Stamps a conductance `g` between nodes `a` and `b`.
#[inline]
fn stamp_conductance(layout: &MnaLayout, mat: &mut DenseMatrix, a: NodeId, b: NodeId, g: f64) {
    let ra = layout.node_row(a);
    let rb = layout.node_row(b);
    if let Some(ra) = ra {
        mat.add(ra, ra, g);
        if let Some(rb) = rb {
            mat.add(ra, rb, -g);
        }
    }
    if let Some(rb) = rb {
        mat.add(rb, rb, g);
        if let Some(ra) = ra {
            mat.add(rb, ra, -g);
        }
    }
}

/// Stamps a current `i` injected into node `to` and drawn from node `from`.
#[inline]
fn stamp_current(layout: &MnaLayout, rhs: &mut [f64], from: NodeId, to: NodeId, i: f64) {
    if let Some(r) = layout.node_row(to) {
        rhs[r] += i;
    }
    if let Some(r) = layout.node_row(from) {
        rhs[r] -= i;
    }
}

/// Assembles `G(x)·x_new = b(x)` into `mat`/`rhs` (cleared first).
pub(crate) fn assemble(
    ckt: &Circuit,
    layout: &MnaLayout,
    x: &[f64],
    ctx: SolveContext<'_>,
    gmin: f64,
    mat: &mut DenseMatrix,
    rhs: &mut [f64],
) {
    mat.clear();
    rhs.fill(0.0);

    if ctx.gshunt > 0.0 {
        for row in 0..layout.n_nodes - 1 {
            mat.add(row, row, ctx.gshunt);
        }
    }

    for (idx, (_, _, elem)) in ckt.elements().enumerate() {
        match elem {
            Element::Resistor { a, b, ohms } => {
                stamp_conductance(layout, mat, *a, *b, 1.0 / ohms);
            }
            Element::Capacitor { a, b, .. } => match ctx.caps {
                Some(companions) => {
                    let slot = layout.cap_of[idx].expect("capacitor slot");
                    let comp = companions[slot];
                    stamp_conductance(layout, mat, *a, *b, comp.geq);
                    stamp_current(layout, rhs, *b, *a, comp.ieq);
                }
                None => {
                    // DC: open circuit, with gmin to avoid floating nodes.
                    stamp_conductance(layout, mat, *a, *b, gmin);
                }
            },
            Element::Inductor { a, b, .. } => {
                let br = layout.branch_row(layout.branch_of[idx].expect("inductor branch"));
                let ra = layout.node_row(*a);
                let rb = layout.node_row(*b);
                // KCL: branch current i flows a → b.
                if let Some(ra) = ra {
                    mat.add(ra, br, 1.0);
                }
                if let Some(rb) = rb {
                    mat.add(rb, br, -1.0);
                }
                match ctx.inds {
                    Some(companions) => {
                        let slot = layout.ind_of[idx].expect("inductor slot");
                        let comp = companions[slot];
                        // i − geq·(v(a)−v(b)) = ieq.
                        mat.add(br, br, 1.0);
                        if let Some(ra) = ra {
                            mat.add(br, ra, -comp.geq);
                        }
                        if let Some(rb) = rb {
                            mat.add(br, rb, comp.geq);
                        }
                        rhs[br] = comp.ieq;
                    }
                    None => {
                        // DC: ideal short, v(a) = v(b).
                        if let Some(ra) = ra {
                            mat.add(br, ra, 1.0);
                        }
                        if let Some(rb) = rb {
                            mat.add(br, rb, -1.0);
                        }
                        rhs[br] = 0.0;
                    }
                }
            }
            Element::VoltageSource { pos, neg, waveform } => {
                let b = layout.branch_of[idx].expect("vsource branch");
                let br = layout.branch_row(b);
                if let Some(rp) = layout.node_row(*pos) {
                    mat.add(rp, br, 1.0);
                    mat.add(br, rp, 1.0);
                }
                if let Some(rn) = layout.node_row(*neg) {
                    mat.add(rn, br, -1.0);
                    mat.add(br, rn, -1.0);
                }
                rhs[br] = ctx.source_scale * waveform.value(ctx.time);
            }
            Element::CurrentSource { from, to, waveform } => {
                let i = ctx.source_scale * waveform.value(ctx.time);
                stamp_current(layout, rhs, *from, *to, i);
            }
            Element::Mosfet { d, g, s, params } => {
                let vd = v_at(layout, x, *d);
                let vg = v_at(layout, x, *g);
                let vs = v_at(layout, x, *s);
                let op = params.evaluate(vd, vg, vs);
                // Linearised drain current:
                // id(v) ≈ id0 + gdd·(vd−vd0) + gdg·(vg−vg0) + gds·(vs−vs0).
                // KCL: id enters the drain row positively, the source row
                // negatively.
                let i_const = op.id - op.gdd * vd - op.gdg * vg - op.gds_node * vs;
                let rd = layout.node_row(*d);
                let rg = layout.node_row(*g);
                let rs = layout.node_row(*s);
                if let Some(rd) = rd {
                    mat.add(rd, rd, op.gdd);
                    if let Some(rg) = rg {
                        mat.add(rd, rg, op.gdg);
                    }
                    if let Some(rs) = rs {
                        mat.add(rd, rs, op.gds_node);
                    }
                    rhs[rd] -= i_const;
                }
                if let Some(rs_row) = rs {
                    if let Some(rd) = rd {
                        mat.add(rs_row, rd, -op.gdd);
                    }
                    if let Some(rg) = rg {
                        mat.add(rs_row, rg, -op.gdg);
                    }
                    mat.add(rs_row, rs_row, -op.gds_node);
                    rhs[rs_row] += i_const;
                }
                // Convergence aid across the channel.
                stamp_conductance(layout, mat, *d, *s, gmin);
            }
            Element::Switch {
                a,
                b,
                ctrl_pos,
                ctrl_neg,
                threshold,
                r_on,
                r_off,
            } => {
                let vc = v_at(layout, x, *ctrl_pos) - v_at(layout, x, *ctrl_neg);
                let g = if vc > *threshold {
                    1.0 / r_on
                } else {
                    1.0 / r_off
                };
                stamp_conductance(layout, mat, *a, *b, g);
            }
            Element::Diode { a, k, i_sat, n } => {
                let v = v_at(layout, x, *a) - v_at(layout, x, *k);
                let nvt = n * VT;
                let arg = v / nvt;
                let (i, g) = if arg > DIODE_EXP_MAX {
                    // Linear continuation beyond the exponent cap.
                    let e = DIODE_EXP_MAX.exp();
                    let i0 = i_sat * (e - 1.0);
                    let g0 = i_sat * e / nvt;
                    (i0 + g0 * (v - DIODE_EXP_MAX * nvt), g0)
                } else {
                    let e = arg.exp();
                    (i_sat * (e - 1.0), i_sat * e / nvt)
                };
                let i_const = i - g * v;
                stamp_conductance(layout, mat, *a, *k, g + gmin);
                stamp_current(layout, rhs, *a, *k, i_const);
            }
            Element::Vcvs { p, n, cp, cn, gain } => {
                // Branch row: v(p) − v(n) − gain·(v(cp) − v(cn)) = 0, with
                // the branch current entering `p` (SPICE convention).
                let b = layout.branch_of[idx].expect("vcvs branch");
                let br = layout.branch_row(b);
                if let Some(rp) = layout.node_row(*p) {
                    mat.add(rp, br, 1.0);
                    mat.add(br, rp, 1.0);
                }
                if let Some(rn) = layout.node_row(*n) {
                    mat.add(rn, br, -1.0);
                    mat.add(br, rn, -1.0);
                }
                if let Some(rcp) = layout.node_row(*cp) {
                    mat.add(br, rcp, -gain);
                }
                if let Some(rcn) = layout.node_row(*cn) {
                    mat.add(br, rcn, *gain);
                }
            }
            Element::Vccs {
                from,
                to,
                cp,
                cn,
                gm,
            } => {
                // i = gm·(v(cp) − v(cn)) injected into `to`, drawn from
                // `from`; solution-independent of the output pair, so it
                // stamps only control columns.
                let rcp = layout.node_row(*cp);
                let rcn = layout.node_row(*cn);
                if let Some(rt) = layout.node_row(*to) {
                    if let Some(rcp) = rcp {
                        mat.add(rt, rcp, -gm);
                    }
                    if let Some(rcn) = rcn {
                        mat.add(rt, rcn, *gm);
                    }
                }
                if let Some(rf) = layout.node_row(*from) {
                    if let Some(rcp) = rcp {
                        mat.add(rf, rcp, *gm);
                    }
                    if let Some(rcn) = rcn {
                        mat.add(rf, rcn, -gm);
                    }
                }
            }
        }
    }
}

/// Damped Newton–Raphson: iterates `G(x_k)·x_{k+1} = b(x_k)` until the
/// update is below tolerance. Linear circuits converge in one iteration.
///
/// On success `x` holds the solution and the iteration count is returned.
#[allow(clippy::too_many_arguments)] // solver plumbing: every argument is load-bearing
pub(crate) fn solve_newton(
    ckt: &Circuit,
    layout: &MnaLayout,
    x: &mut [f64],
    ctx: SolveContext<'_>,
    opts: &NewtonOpts,
    analysis: &'static str,
    mat: &mut DenseMatrix,
    work: &mut Vec<f64>,
) -> Result<usize, Error> {
    let n = layout.size();
    let node_rows = layout.n_nodes - 1;
    debug_assert_eq!(x.len(), n);
    work.resize(n, 0.0);
    // Damping exists to keep square-law devices on track; for a purely
    // linear circuit the first solve is exact and must not be throttled.
    let damp_enabled = ckt.has_nonlinear_elements();

    for iter in 1..=opts.max_iter {
        assemble(ckt, layout, x, ctx, opts.gmin, mat, work);
        mat.solve_in_place(work)?;

        // work now holds x_new; compute damped update.
        let mut max_dv = 0.0f64;
        for (r, w) in work.iter().enumerate().take(node_rows) {
            max_dv = max_dv.max((w - x[r]).abs());
        }
        let damp = if damp_enabled && max_dv > opts.max_step_v {
            opts.max_step_v / max_dv
        } else {
            1.0
        };

        let mut converged = damp == 1.0;
        for r in 0..n {
            let delta = (work[r] - x[r]) * damp;
            let tol = if r < node_rows {
                opts.abstol_v + opts.reltol * x[r].abs()
            } else {
                opts.abstol_i + opts.reltol * x[r].abs()
            };
            if delta.abs() > tol {
                converged = false;
            }
            x[r] += delta;
        }

        if converged {
            return Ok(iter);
        }
    }
    Err(Error::NonConvergence {
        analysis,
        time: ctx.time,
        iterations: opts.max_iter,
        stage: "newton",
        attempts: 0,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::waveform::Waveform;

    /// Resistive divider: 2.5 V through 1 kΩ / 1 kΩ → midpoint 1.25 V.
    #[test]
    fn linear_divider_solves_in_one_iteration() {
        let mut ckt = Circuit::new();
        let vin = ckt.node("in");
        let mid = ckt.node("mid");
        ckt.vsource("V1", vin, Circuit::GND, Waveform::dc(2.5));
        ckt.resistor("R1", vin, mid, 1e3);
        ckt.resistor("R2", mid, Circuit::GND, 1e3);

        let layout = MnaLayout::new(&ckt);
        let mut x = vec![0.0; layout.size()];
        let mut mat = DenseMatrix::zeros(layout.size());
        let mut work = Vec::new();
        let ctx = SolveContext {
            time: 0.0,
            source_scale: 1.0,
            caps: None,
            inds: None,
            gshunt: 0.0,
        };
        let iters = solve_newton(
            &ckt,
            &layout,
            &mut x,
            ctx,
            &NewtonOpts::default(),
            "dc",
            &mut mat,
            &mut work,
        )
        .unwrap();
        // One iteration to land, one to confirm convergence at most.
        assert!(iters <= 2, "took {iters} iterations");
        let mid_row = layout.node_row(mid).unwrap();
        assert!((x[mid_row] - 1.25).abs() < 1e-9);
        // Branch current: 2.5 V across 2 kΩ = 1.25 mA drawn from the
        // source, so the SPICE-convention branch current is negative.
        let br = layout.branch_row(0);
        assert!((x[br] + 1.25e-3).abs() < 1e-9, "i = {}", x[br]);
    }

    #[test]
    fn current_source_into_resistor() {
        let mut ckt = Circuit::new();
        let out = ckt.node("out");
        ckt.isource("I1", Circuit::GND, out, Waveform::dc(1e-3));
        ckt.resistor("R1", out, Circuit::GND, 1e3);

        let layout = MnaLayout::new(&ckt);
        let mut x = vec![0.0; layout.size()];
        let mut mat = DenseMatrix::zeros(layout.size());
        let mut work = Vec::new();
        let ctx = SolveContext {
            time: 0.0,
            source_scale: 1.0,
            caps: None,
            inds: None,
            gshunt: 0.0,
        };
        solve_newton(
            &ckt,
            &layout,
            &mut x,
            ctx,
            &NewtonOpts::default(),
            "dc",
            &mut mat,
            &mut work,
        )
        .unwrap();
        assert!((x[0] - 1.0).abs() < 1e-9, "v = {}", x[0]);
    }

    #[test]
    fn source_scale_scales_solution() {
        let mut ckt = Circuit::new();
        let out = ckt.node("out");
        ckt.vsource("V1", out, Circuit::GND, Waveform::dc(2.0));
        ckt.resistor("R1", out, Circuit::GND, 1e3);

        let layout = MnaLayout::new(&ckt);
        let mut x = vec![0.0; layout.size()];
        let mut mat = DenseMatrix::zeros(layout.size());
        let mut work = Vec::new();
        let ctx = SolveContext {
            time: 0.0,
            source_scale: 0.5,
            caps: None,
            inds: None,
            gshunt: 0.0,
        };
        solve_newton(
            &ckt,
            &layout,
            &mut x,
            ctx,
            &NewtonOpts::default(),
            "dc",
            &mut mat,
            &mut work,
        )
        .unwrap();
        assert!((x[0] - 1.0).abs() < 1e-9);
    }

    #[test]
    fn layout_counts() {
        let mut ckt = Circuit::new();
        let a = ckt.node("a");
        let b = ckt.node("b");
        ckt.vsource("V1", a, Circuit::GND, Waveform::dc(1.0));
        ckt.resistor("R1", a, b, 1e3);
        ckt.capacitor("C1", b, Circuit::GND, 1e-12);
        let layout = MnaLayout::new(&ckt);
        assert_eq!(layout.n_nodes, 3);
        assert_eq!(layout.n_branches, 1);
        assert_eq!(layout.n_caps, 1);
        assert_eq!(layout.size(), 3); // 2 node rows + 1 branch
        assert_eq!(layout.node_row(Circuit::GND), None);
    }
}
