//! Circuit analyses: DC operating point, DC sweep, AC, noise, transient.
//!
//! The analyses share the modified-nodal-analysis assembly and damped
//! Newton–Raphson kernel (crate-private `mna` module). They are run
//! through [`Session`](crate::Session), the unified entry point that owns
//! lint pre-flight, plan compilation and observer registration; the free
//! functions ([`dc_operating_point`], [`dc_sweep`], [`ac_analysis`],
//! [`noise_analysis`]) and [`Transient::run`] are deprecated thin wrappers
//! over it. Every result type implements the common [`Solution`] probing
//! trait.

pub(crate) mod mna;
pub(crate) mod mos_batch;
pub(crate) mod plan;

pub(crate) mod ac;
pub(crate) mod dcop;
pub(crate) mod dcsweep;
pub(crate) mod noise;
mod solution;
pub(crate) mod transient;

#[allow(deprecated)]
pub use ac::ac_analysis;
pub use ac::AcResult;
#[allow(deprecated)]
pub use dcop::dc_operating_point;
pub use dcop::{dc_operating_point_reference, DcSolution};
#[allow(deprecated)]
pub use dcsweep::dc_sweep;
pub use dcsweep::{dc_sweep_reference, DcSweepResult};
#[allow(deprecated)]
pub use noise::noise_analysis;
pub use noise::NoiseResult;
pub use solution::Solution;
pub use transient::{
    AdaptiveConfig, IntegrationMethod, RescueIncident, RescuePolicy, RescueReport, Transient,
    TransientOutcome, TransientResult,
};
