//! Circuit analyses: DC operating point and transient.
//!
//! The analyses share the modified-nodal-analysis assembly and damped
//! Newton–Raphson kernel (crate-private `mna` module). The public entry
//! points are [`dc_operating_point`], [`dc_sweep`], [`Transient::run`],
//! [`ac_analysis`] and [`noise_analysis`].

pub(crate) mod mna;
pub(crate) mod plan;

pub(crate) mod ac;
mod dcop;
mod dcsweep;
mod noise;
mod transient;

pub use ac::{ac_analysis, AcResult};
pub use dcop::{dc_operating_point, dc_operating_point_reference, DcSolution};
pub use dcsweep::{dc_sweep, dc_sweep_reference, DcSweepResult};
pub use noise::{noise_analysis, NoiseResult};
pub use transient::{AdaptiveConfig, IntegrationMethod, Transient, TransientResult};
