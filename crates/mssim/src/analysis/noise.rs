//! Small-signal noise analysis (SPICE `.NOISE`).
//!
//! Computes the output-referred noise voltage density at a node, summing
//! the thermal noise of every resistor (`4kT/R` current PSD) and the
//! channel noise of every MOSFET (`4kT·γ·(gm+gds)` with the long-channel
//! `γ = 2/3`), each shaped by its own transfer function to the output.
//!
//! Rather than solving one AC system per noise source, the solver uses
//! the **adjoint (transpose) method**: one factorisation of `Aᵀ` per
//! frequency yields the transfer from a current injection at *every*
//! node pair to the output simultaneously — the standard trick in
//! production noise analysis.
//!
//! The classic validation is the RC low-pass: integrating the resistor's
//! filtered thermal noise over all frequencies gives `√(kT/C)`
//! independent of R — reproduced by this module's tests.

use crate::analysis::dcop::dc_operating_point_impl;
use crate::analysis::mna::MnaLayout;
use crate::analysis::plan::EngineSel;
use crate::analysis::solution::Solution;
use crate::complex::{Complex, ComplexMatrix};
use crate::elements::Element;
use crate::error::Error;
use crate::netlist::{Circuit, ElementId, NodeId};
use crate::telemetry::{Event, Probe};

/// Boltzmann constant × nominal temperature (300 K), in joules.
const KT: f64 = 1.380649e-23 * 300.0;
/// Long-channel MOSFET channel-noise factor.
const GAMMA: f64 = 2.0 / 3.0;

/// Result of a noise analysis.
#[derive(Debug, Clone)]
pub struct NoiseResult {
    frequencies: Vec<f64>,
    /// Output noise voltage density per frequency, V/√Hz.
    density: Vec<f64>,
    /// The node the analysis was referred to.
    output: NodeId,
}

impl NoiseResult {
    /// The analysed frequencies in hertz.
    pub fn frequencies(&self) -> &[f64] {
        &self.frequencies
    }

    /// Output noise voltage density in V/√Hz at each frequency.
    pub fn density(&self) -> &[f64] {
        &self.density
    }

    /// Total RMS output noise, integrating the density over the analysed
    /// band with the trapezoidal rule (in linear frequency).
    ///
    /// # Panics
    ///
    /// Panics if fewer than two frequencies were analysed.
    pub fn integrated_rms(&self) -> f64 {
        assert!(self.frequencies.len() >= 2, "need a band to integrate");
        let mut power = 0.0;
        for i in 1..self.frequencies.len() {
            let df = self.frequencies[i] - self.frequencies[i - 1];
            let p0 = self.density[i - 1] * self.density[i - 1];
            let p1 = self.density[i] * self.density[i];
            power += 0.5 * (p0 + p1) * df;
        }
        power.sqrt()
    }
}

impl Solution for NoiseResult {
    /// Output noise voltage density across the sweep, V/√Hz.
    type Voltage = Vec<f64>;
    /// Noise analysis keeps no branch currents; always an error.
    type Current = Vec<f64>;

    /// The noise density, available only at the analysed output node.
    fn voltage(&self, node: NodeId) -> Result<Vec<f64>, Error> {
        if node == self.output {
            Ok(self.density.clone())
        } else {
            Err(Error::UnknownProbe {
                what: format!(
                    "noise density of {node} (analysis referred to {})",
                    self.output
                ),
            })
        }
    }

    fn branch_current(&self, element: ElementId) -> Result<Vec<f64>, Error> {
        Err(Error::UnknownProbe {
            what: format!("branch current of {element} in a noise analysis"),
        })
    }
}

/// Computes the output-referred noise density at `output` across
/// `frequencies`. All independent sources are AC-nulled (the circuit's
/// own devices are the only noise sources).
///
/// # Errors
///
/// Propagates DC-operating-point and solver errors.
///
/// # Panics
///
/// Panics if `output` is the ground node.
#[deprecated(
    since = "0.2.0",
    note = "use `Session::new(&circuit).noise(output, frequencies)` instead"
)]
pub fn noise_analysis(
    circuit: &Circuit,
    output: NodeId,
    frequencies: &[f64],
) -> Result<NoiseResult, Error> {
    crate::session::Session::new(circuit).noise(output, frequencies)
}

pub(crate) fn noise_analysis_impl(
    circuit: &Circuit,
    output: NodeId,
    frequencies: &[f64],
    sel: EngineSel,
    mut probe: Probe<'_>,
) -> Result<NoiseResult, Error> {
    assert!(!output.is_ground(), "noise at ground is identically zero");
    crate::lint::preflight(circuit, "noise", crate::lint::LintContext::Dc)?;
    probe.emit(Event::AnalysisStart { analysis: "noise" });
    let op = dc_operating_point_impl(circuit, sel, probe.reborrow())?;
    let layout = MnaLayout::new(circuit);
    let n = layout.size();

    // Collect noise current sources: (node a, node b, current PSD A²/Hz),
    // current injected between the element's terminals.
    let mut sources: Vec<(NodeId, NodeId, f64)> = Vec::new();
    for (_, _, e) in circuit.elements() {
        match e {
            Element::Resistor { a, b, ohms } => {
                sources.push((*a, *b, 4.0 * KT / ohms));
            }
            Element::Mosfet { d, s, g, params } => {
                let pt = params.evaluate(op.voltage(*d), op.voltage(*g), op.voltage(*s));
                // Conservative long-channel channel noise: 4kTγ(gm + gds).
                let g_noise = (pt.gdg.abs() + pt.gdd.abs()) * GAMMA;
                if g_noise > 0.0 {
                    sources.push((*d, *s, 4.0 * KT * g_noise));
                }
            }
            _ => {}
        }
    }

    let mut density = Vec::with_capacity(frequencies.len());
    for &freq in frequencies {
        let omega = 2.0 * std::f64::consts::PI * freq;
        // Build the AC matrix (no stimulus) and transpose it for the
        // adjoint solve.
        let mut mat = ComplexMatrix::zeros(n);
        let mut dummy_rhs = vec![Complex::ZERO; n];
        super::ac::stamp_ac_matrix(circuit, &layout, &op, omega, &mut mat, &mut dummy_rhs);
        let mut at = ComplexMatrix::zeros(n);
        for r in 0..n {
            for c in 0..n {
                at.add(r, c, mat.get(c, r));
            }
        }
        // Adjoint excitation: unit at the output row.
        let mut y = vec![Complex::ZERO; n];
        let out_row = layout.node_row(output).expect("output checked non-ground");
        y[out_row] = Complex::ONE;
        at.solve_in_place(&mut y)?;

        // Sum contributions: |y_a − y_b|² · S_i.
        let y_at = |node: NodeId| -> Complex {
            match layout.node_row(node) {
                None => Complex::ZERO,
                Some(r) => y[r],
            }
        };
        let mut psd = 0.0;
        for &(a, b, s_i) in &sources {
            let h = y_at(a) - y_at(b);
            psd += h.norm_sqr() * s_i;
        }
        density.push(psd.sqrt());
    }

    probe.emit(Event::AnalysisEnd { analysis: "noise" });
    Ok(NoiseResult {
        frequencies: frequencies.to_vec(),
        density,
        output,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::session::Session;
    use crate::sweep::logspace;
    use crate::waveform::Waveform;

    /// The kT/C law: an RC low-pass's integrated output noise is
    /// √(kT/C), independent of the resistor value.
    #[test]
    fn ktc_noise_of_rc_lowpass() {
        for r in [1e3, 100e3] {
            let c = 1e-12;
            let mut ckt = Circuit::new();
            let vin = ckt.node("in");
            let out = ckt.node("out");
            ckt.vsource("V1", vin, Circuit::GND, Waveform::dc(0.0));
            ckt.resistor("R1", vin, out, r);
            ckt.capacitor("C1", out, Circuit::GND, c);
            // Band: 4 decades below fc to 4 above captures ~all power.
            let fc = 1.0 / (2.0 * std::f64::consts::PI * r * c);
            let freqs = logspace(fc / 1e4, fc * 1e4, 400);
            let result = Session::new(&ckt).noise(out, &freqs).unwrap();
            let expect = (KT / c).sqrt(); // ≈ 64.4 µV at 300 K, 1 pF
            let got = result.integrated_rms();
            assert!(
                (got / expect - 1.0).abs() < 0.02,
                "R = {r}: {got:.3e} vs kT/C {expect:.3e}"
            );
        }
    }

    /// Density at low frequency equals the resistor's open √(4kTR).
    #[test]
    fn flatband_density_is_4ktr() {
        let r = 10e3;
        let mut ckt = Circuit::new();
        let vin = ckt.node("in");
        let out = ckt.node("out");
        ckt.vsource("V1", vin, Circuit::GND, Waveform::dc(0.0));
        ckt.resistor("R1", vin, out, r);
        ckt.capacitor("C1", out, Circuit::GND, 1e-12);
        let result = Session::new(&ckt).noise(out, &[1.0]).unwrap();
        let expect = (4.0 * KT * r).sqrt(); // ≈ 12.9 nV/√Hz for 10 kΩ
        let got = result.density()[0];
        assert!(
            (got / expect - 1.0).abs() < 1e-6,
            "{got:.3e} vs {expect:.3e}"
        );
    }

    /// Two parallel resistors make exactly the noise of their parallel
    /// equivalent (noise adds as power, conductance adds linearly).
    #[test]
    fn parallel_resistors_equal_their_equivalent() {
        let run = |build: &dyn Fn(&mut Circuit, NodeId)| -> f64 {
            let mut ckt = Circuit::new();
            let out = ckt.node("out");
            build(&mut ckt, out);
            ckt.capacitor("C1", out, Circuit::GND, 1e-12);
            Session::new(&ckt).noise(out, &[1e3]).unwrap().density()[0]
        };
        let two = run(&|ckt, out| {
            ckt.resistor("R1", out, Circuit::GND, 2e3);
            ckt.resistor("R2", out, Circuit::GND, 2e3);
        });
        let one = run(&|ckt, out| {
            ckt.resistor("Req", out, Circuit::GND, 1e3);
        });
        assert!((two / one - 1.0).abs() < 1e-9, "{two:.3e} vs {one:.3e}");
    }

    /// MOSFET channel noise raises the output noise of a loaded amplifier
    /// above the load resistor's own contribution.
    #[test]
    fn mosfet_adds_channel_noise() {
        use crate::elements::MosParams;
        let build = |with_fet: bool| -> f64 {
            let mut ckt = Circuit::new();
            let vdd = ckt.node("vdd");
            let g = ckt.node("g");
            let out = ckt.node("out");
            ckt.vsource("VDD", vdd, Circuit::GND, Waveform::dc(2.5));
            ckt.vsource("VG", g, Circuit::GND, Waveform::dc(0.85));
            ckt.resistor("RL", vdd, out, 50e3);
            if with_fet {
                ckt.mosfet("M1", out, g, Circuit::GND, MosParams::nmos(2e-6, 1.2e-6));
            } else {
                // Same small-signal load without noise: nothing (output
                // held by RL only; add a big resistor to ground to keep
                // the node defined).
                ckt.resistor("Rbig", out, Circuit::GND, 50e6);
            }
            ckt.capacitor("CL", out, Circuit::GND, 1e-12);
            Session::new(&ckt).noise(out, &[1e3]).unwrap().density()[0]
        };
        let with_fet = build(true);
        let without = build(false);
        assert!(
            with_fet > 1.2 * without,
            "fet {with_fet:.3e} vs resistors only {without:.3e}"
        );
    }
}
