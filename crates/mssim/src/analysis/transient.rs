//! Fixed-step transient analysis.
//!
//! Capacitors are replaced by integration companions (trapezoidal by
//! default, backward Euler on the first step and on request) and the
//! resulting nonlinear system is solved by damped Newton–Raphson at every
//! time point, warm-started from the previous solution.

use crate::analysis::dcop::dc_operating_point_impl;
use crate::analysis::mna::{CapCompanion, IndCompanion, MnaLayout, NewtonOpts, SolveContext};
use crate::analysis::plan::{DeviceEval, EngineSel, LimitOpts, PlanMode, SolverEngine};
use crate::analysis::solution::Solution;
use crate::elements::Element;
use crate::error::Error;
use crate::netlist::{Circuit, ElementId, NodeId};
use crate::telemetry::{Event, Probe};
use crate::trace::{Trace, TraceData};

/// Numerical integration scheme for reactive elements.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum IntegrationMethod {
    /// First-order, L-stable; strongly damped.
    BackwardEuler,
    /// Second-order, A-stable; the default (first step still uses
    /// backward Euler to absorb initial-condition discontinuities).
    #[default]
    Trapezoidal,
}

/// A configured transient analysis.
///
/// # Examples
///
/// ```
/// use mssim::prelude::*;
///
/// # fn main() -> Result<(), mssim::Error> {
/// let mut ckt = Circuit::new();
/// let inp = ckt.node("in");
/// let out = ckt.node("out");
/// ckt.vsource("V1", inp, Circuit::GND, Waveform::pwm(2.5, 1e6, 0.25));
/// ckt.resistor("R1", inp, out, 10e3);
/// ckt.capacitor("C1", out, Circuit::GND, 1e-9);
/// let result = Session::new(&ckt).transient(&Transient::new(2e-9, 100e-6).use_initial_conditions())?;
/// let avg = result.voltage(out).steady_state_average(1e-6, 10);
/// assert!((avg - 2.5 * 0.25).abs() < 0.05); // PWM average = Vdd · duty
/// # Ok(())
/// # }
/// ```
/// Settings for adaptive time-stepping.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct AdaptiveConfig {
    /// Smallest step the controller may take, seconds.
    pub min_dt: f64,
    /// Local-truncation-error tolerance: the step is accepted when the
    /// predictor–corrector discrepancy is below
    /// `tol · (1 + |v|)` on every node.
    pub tolerance: f64,
}

impl Default for AdaptiveConfig {
    fn default() -> Self {
        AdaptiveConfig {
            min_dt: 0.0, // resolved to max_dt/10⁶ at run time
            tolerance: 1e-3,
        }
    }
}

/// Policy for the transient convergence-rescue ladder (see
/// [`Session::transient_rescued`](crate::session::Session::transient_rescued)).
///
/// When a time step refuses to converge the ladder tries, in order:
///
/// 1. **`dt_cut`** — the step is re-integrated as `2^k` sub-steps for
///    `k = 1..=max_step_cuts`, keeping the caller's integration method
///    (exponential backoff: every retry halves the sub-step again);
/// 2. **`be`** — the same progression forced to backward Euler, whose
///    L-stability damps the modes trapezoidal integration can ring on
///    (skipped when the caller already integrates with backward Euler);
/// 3. **`gmin`** — the full step solved with a shunt conductance from
///    every node to ground, walked down [`RescuePolicy::gmin_ladder`] and
///    finishing at zero shunt, each solve warm-starting the next.
///
/// A step no rung can save ends the run early: the caller receives
/// [`TransientOutcome::Partial`] carrying the waveform up to the last
/// accepted step. Every attempt is emitted as an
/// [`Event::RescueAttempt`]; every verdict as an
/// [`Event::RescueOutcome`].
#[derive(Debug, Clone, PartialEq)]
pub struct RescuePolicy {
    /// Maximum binary timestep cuts tried by the `dt_cut` and `be`
    /// stages (rung `k` splits the failing step into `2^k` sub-steps).
    pub max_step_cuts: u32,
    /// Shunt conductances for the `gmin` stage, strongest first. A final
    /// zero-shunt solve always follows, so an accepted solution is never
    /// polluted by the rescue shunt.
    pub gmin_ladder: Vec<f64>,
    /// Troubled steps rescued before the run is abandoned as partial — a
    /// circuit needing more than this is failing structurally, not
    /// numerically.
    pub max_rescued_steps: usize,
}

impl Default for RescuePolicy {
    fn default() -> Self {
        RescuePolicy {
            max_step_cuts: 4,
            gmin_ladder: vec![1e-3, 1e-6, 1e-9],
            max_rescued_steps: 64,
        }
    }
}

/// One troubled time step and how the rescue ladder fared on it.
#[derive(Debug, Clone, PartialEq)]
pub struct RescueIncident {
    /// Target time of the failing step, seconds.
    pub time: f64,
    /// Ladder rungs tried (sub-step retries, BE retries, gmin solves).
    pub attempts: usize,
    /// Stage that recovered the step (`"dt_cut"`, `"be"` or `"gmin"`);
    /// `None` when the ladder was exhausted.
    pub recovered_by: Option<&'static str>,
}

/// Structured account of every rescue a transient run needed.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct RescueReport {
    /// One entry per troubled step, in time order.
    pub incidents: Vec<RescueIncident>,
}

impl RescueReport {
    /// `true` when no step needed rescuing.
    pub fn is_clean(&self) -> bool {
        self.incidents.is_empty()
    }

    /// Number of steps the ladder recovered.
    pub fn recovered(&self) -> usize {
        self.incidents
            .iter()
            .filter(|i| i.recovered_by.is_some())
            .count()
    }

    /// Total ladder rungs tried across all incidents.
    pub fn total_attempts(&self) -> usize {
        self.incidents.iter().map(|i| i.attempts).sum()
    }
}

/// Outcome of a transient run executed under a [`RescuePolicy`].
#[derive(Debug, Clone)]
pub enum TransientOutcome {
    /// The run reached `t_stop`, possibly after recovered rescues.
    Complete {
        /// The full waveform set.
        result: TransientResult,
        /// Every rescue the run needed (empty for a clean run).
        rescues: RescueReport,
    },
    /// The rescue ladder ran dry at some time point: the waveform is
    /// valid up to the last accepted step and then stops.
    Partial {
        /// The waveforms up to the last accepted step.
        result: TransientResult,
        /// Every rescue the run attempted, including the fatal one.
        rescues: RescueReport,
        /// The non-convergence that ended the run (stage `"rescue"`).
        error: Error,
    },
}

impl TransientOutcome {
    /// The recorded waveforms, full or partial.
    pub fn result(&self) -> &TransientResult {
        match self {
            TransientOutcome::Complete { result, .. }
            | TransientOutcome::Partial { result, .. } => result,
        }
    }

    /// The rescue report.
    pub fn rescues(&self) -> &RescueReport {
        match self {
            TransientOutcome::Complete { rescues, .. }
            | TransientOutcome::Partial { rescues, .. } => rescues,
        }
    }

    /// `true` when the run stopped before `t_stop`.
    pub fn is_partial(&self) -> bool {
        matches!(self, TransientOutcome::Partial { .. })
    }

    /// Consumes the outcome, keeping the waveforms (full or partial).
    pub fn into_result(self) -> TransientResult {
        match self {
            TransientOutcome::Complete { result, .. }
            | TransientOutcome::Partial { result, .. } => result,
        }
    }
}

/// Deep copy of the integrator state, taken before a step so any rescue
/// rung can rewind to the last accepted point.
struct StateSnapshot {
    x: Vec<f64>,
    v_prev: Vec<f64>,
    i_prev: Vec<f64>,
    il_prev: Vec<f64>,
    vl_prev: Vec<f64>,
}

impl StateSnapshot {
    fn capture(
        x: &[f64],
        v_prev: &[f64],
        i_prev: &[f64],
        il_prev: &[f64],
        vl_prev: &[f64],
    ) -> Self {
        StateSnapshot {
            x: x.to_vec(),
            v_prev: v_prev.to_vec(),
            i_prev: i_prev.to_vec(),
            il_prev: il_prev.to_vec(),
            vl_prev: vl_prev.to_vec(),
        }
    }

    fn restore(
        &self,
        x: &mut [f64],
        v_prev: &mut [f64],
        i_prev: &mut [f64],
        il_prev: &mut [f64],
        vl_prev: &mut [f64],
    ) {
        x.copy_from_slice(&self.x);
        self.restore_reactive(v_prev, i_prev, il_prev, vl_prev);
    }

    /// Restores the reactive-element history but keeps `x` — the gmin
    /// stage warm-starts each solve from the previous rung's iterate.
    fn restore_reactive(
        &self,
        v_prev: &mut [f64],
        i_prev: &mut [f64],
        il_prev: &mut [f64],
        vl_prev: &mut [f64],
    ) {
        v_prev.copy_from_slice(&self.v_prev);
        i_prev.copy_from_slice(&self.i_prev);
        il_prev.copy_from_slice(&self.il_prev);
        vl_prev.copy_from_slice(&self.vl_prev);
    }
}

/// Walks the rescue ladder over one failing step `t_from → t_target`.
///
/// `take_step` is the integrator's single-step primitive
/// `(t_new, h, be, gshunt, probe, x, v_prev, i_prev, il_prev, vl_prev)`.
/// Returns the rungs tried and the stage that recovered the step, or
/// `None` when exhausted (in which case the state is rewound to `snap`).
#[allow(clippy::too_many_arguments)]
fn rescue_ladder<F>(
    policy: &RescuePolicy,
    take_step: &mut F,
    probe: &mut Probe<'_>,
    t_from: f64,
    t_target: f64,
    method_be: bool,
    snap: &StateSnapshot,
    x: &mut Vec<f64>,
    v_prev: &mut [f64],
    i_prev: &mut [f64],
    il_prev: &mut [f64],
    vl_prev: &mut [f64],
) -> (usize, Option<&'static str>)
where
    F: FnMut(
        f64,
        f64,
        bool,
        f64,
        &mut Probe<'_>,
        &mut Vec<f64>,
        &mut [f64],
        &mut [f64],
        &mut [f64],
        &mut [f64],
    ) -> Result<(), Error>,
{
    let h_full = t_target - t_from;
    let mut attempts = 0usize;

    // Stages 1 and 2: timestep cutting, first with the caller's method,
    // then forced backward Euler. A BE caller skips the redundant rerun.
    let stages: &[(&'static str, bool)] = if method_be {
        &[("dt_cut", true)]
    } else {
        &[("dt_cut", false), ("be", true)]
    };
    for &(stage, be) in stages {
        let k_first = if stage == "be" { 0 } else { 1 };
        for k in k_first..=policy.max_step_cuts {
            let n_sub = 1u32 << k;
            let h_sub = h_full / f64::from(n_sub);
            snap.restore(x, v_prev, i_prev, il_prev, vl_prev);
            attempts += 1;
            let mut converged = true;
            for i in 1..=n_sub {
                let t_new = if i == n_sub {
                    t_target
                } else {
                    t_from + f64::from(i) * h_sub
                };
                if take_step(
                    t_new, h_sub, be, 0.0, probe, x, v_prev, i_prev, il_prev, vl_prev,
                )
                .is_err()
                {
                    converged = false;
                    break;
                }
            }
            probe.emit(Event::RescueAttempt {
                stage,
                time: t_target,
                dt: h_sub,
                param: 0.0,
                converged,
            });
            if converged {
                return (attempts, Some(stage));
            }
        }
    }

    // Stage 3: per-point gmin. Solve the full step (backward Euler) with
    // a shunt to ground, relaxing it rung by rung down to exactly zero;
    // each solve warm-starts the next, so only the final zero-shunt
    // solution is ever committed to the waveform.
    snap.restore(x, v_prev, i_prev, il_prev, vl_prev);
    let mut converged_all = true;
    for g in policy
        .gmin_ladder
        .iter()
        .copied()
        .chain(std::iter::once(0.0))
    {
        // Rewind the reactive history but keep `x` as the warm start.
        snap.restore_reactive(v_prev, i_prev, il_prev, vl_prev);
        attempts += 1;
        let r = take_step(
            t_target, h_full, true, g, probe, x, v_prev, i_prev, il_prev, vl_prev,
        );
        probe.emit(Event::RescueAttempt {
            stage: "gmin",
            time: t_target,
            dt: h_full,
            param: g,
            converged: r.is_ok(),
        });
        if r.is_err() {
            converged_all = false;
            break;
        }
    }
    if converged_all {
        return (attempts, Some("gmin"));
    }

    // Exhausted: rewind so the partial waveform ends at the last
    // accepted step.
    snap.restore(x, v_prev, i_prev, il_prev, vl_prev);
    (attempts, None)
}

/// Budget check + ladder walk + telemetry + report entry for one
/// troubled step. Returns `true` when the step was recovered.
#[allow(clippy::too_many_arguments)]
fn attempt_rescue<F>(
    policy: &RescuePolicy,
    report: &mut RescueReport,
    take_step: &mut F,
    probe: &mut Probe<'_>,
    t_from: f64,
    t_target: f64,
    method_be: bool,
    snap: &StateSnapshot,
    x: &mut Vec<f64>,
    v_prev: &mut [f64],
    i_prev: &mut [f64],
    il_prev: &mut [f64],
    vl_prev: &mut [f64],
) -> bool
where
    F: FnMut(
        f64,
        f64,
        bool,
        f64,
        &mut Probe<'_>,
        &mut Vec<f64>,
        &mut [f64],
        &mut [f64],
        &mut [f64],
        &mut [f64],
    ) -> Result<(), Error>,
{
    let (attempts, stage) = if report.incidents.len() >= policy.max_rescued_steps {
        // Rescue budget spent: rewind without burning more solves.
        snap.restore(x, v_prev, i_prev, il_prev, vl_prev);
        (0, None)
    } else {
        rescue_ladder(
            policy, take_step, probe, t_from, t_target, method_be, snap, x, v_prev, i_prev,
            il_prev, vl_prev,
        )
    };
    probe.emit(Event::RescueOutcome {
        time: t_target,
        stage: stage.unwrap_or("exhausted"),
        attempts: attempts as u32,
        recovered: stage.is_some(),
    });
    report.incidents.push(RescueIncident {
        time: t_target,
        attempts,
        recovered_by: stage,
    });
    stage.is_some()
}

/// A configured transient analysis (see the crate-level example and
/// [`Transient::new`]).
#[derive(Debug, Clone)]
pub struct Transient {
    dt: f64,
    t_stop: f64,
    method: IntegrationMethod,
    uic: bool,
    record_every: usize,
    max_iter: usize,
    adaptive: Option<AdaptiveConfig>,
    reference: bool,
    limited: bool,
}

impl Transient {
    /// Creates a transient analysis with time step `dt` running to
    /// `t_stop` (both in seconds).
    ///
    /// # Panics
    ///
    /// Panics if `dt` is not strictly positive or `t_stop < dt`.
    pub fn new(dt: f64, t_stop: f64) -> Self {
        assert!(dt > 0.0 && dt.is_finite(), "dt must be positive");
        assert!(t_stop >= dt, "t_stop must be at least one step");
        Transient {
            dt,
            t_stop,
            method: IntegrationMethod::default(),
            uic: false,
            record_every: 1,
            max_iter: 200,
            adaptive: None,
            reference: false,
            limited: false,
        }
    }

    /// Runs on the naive per-iteration assembler instead of the compiled
    /// stamp plan. Kept for golden-equivalence tests and as the benchmark
    /// baseline; not part of the supported API.
    #[doc(hidden)]
    pub fn with_reference_solver(mut self, on: bool) -> Self {
        self.reference = on;
        self
    }

    /// Enables SPICE-style device limiting and latency on the compiled
    /// stamp plan: MOSFET trial voltages are clamped by the `fetlim` /
    /// `limvds` heuristics and devices whose terminal voltages barely
    /// moved (operating region unchanged) reuse their previous
    /// linearisation, which keeps the factorization cache hot across
    /// time steps. Results agree with the default exact mode to solver
    /// tolerance (typically within microvolts) but are not bitwise
    /// identical. Ignored on the reference solver.
    pub fn with_device_limiting(mut self, on: bool) -> Self {
        self.limited = on;
        self
    }

    /// Enables adaptive time-stepping: `dt` becomes the *maximum* step,
    /// and the controller shrinks/grows the step from a local-truncation-
    /// error estimate (predictor–corrector discrepancy), never stepping
    /// across a source breakpoint (pulse corners, PWL points) so narrow
    /// pulses cannot be skipped. `record_every` is ignored in adaptive
    /// mode — every accepted point is recorded.
    pub fn adaptive(mut self, config: AdaptiveConfig) -> Self {
        self.adaptive = Some(config);
        self
    }

    /// Skips the DC operating point and starts from capacitor initial
    /// conditions (node voltages start at zero) — SPICE `UIC`.
    pub fn use_initial_conditions(mut self) -> Self {
        self.uic = true;
        self
    }

    /// Selects the integration method.
    pub fn with_method(mut self, method: IntegrationMethod) -> Self {
        self.method = method;
        self
    }

    /// Records only every `n`-th time point (the final point is always
    /// recorded). Reduces memory for long runs.
    ///
    /// # Panics
    ///
    /// Panics if `n == 0`.
    pub fn record_every(mut self, n: usize) -> Self {
        assert!(n > 0, "record decimation must be at least 1");
        self.record_every = n;
        self
    }

    /// Sets the Newton iteration limit per time step.
    ///
    /// # Panics
    ///
    /// Panics if `n == 0`.
    pub fn with_max_iterations(mut self, n: usize) -> Self {
        assert!(n > 0, "iteration limit must be at least 1");
        self.max_iter = n;
        self
    }

    /// Runs the analysis.
    ///
    /// # Errors
    ///
    /// Returns [`Error::LintRejected`] for broken netlists (see
    /// [`crate::lint`]), [`Error::NonConvergence`] if Newton iteration
    /// fails at some time point, and [`Error::SingularMatrix`] for
    /// under-determined systems.
    #[deprecated(
        since = "0.2.0",
        note = "use `Session::new(&circuit).transient(&tran)` instead"
    )]
    pub fn run(&self, circuit: &Circuit) -> Result<TransientResult, Error> {
        crate::session::Session::new(circuit).transient(self)
    }

    /// The analysis proper, with the solver flavour and instrumentation
    /// handle supplied by [`Session`](crate::Session).
    pub(crate) fn run_with(
        &self,
        circuit: &Circuit,
        sel: EngineSel,
        probe: Probe<'_>,
    ) -> Result<TransientResult, Error> {
        match self.run_impl(circuit, sel, None, probe)? {
            TransientOutcome::Complete { result, .. } => Ok(result),
            // Unreachable without a rescue policy, but cheap to honour.
            TransientOutcome::Partial { error, .. } => Err(error),
        }
    }

    /// Like [`run_with`](Self::run_with) but under a [`RescuePolicy`]:
    /// non-convergent steps enter the rescue ladder and an exhausted
    /// ladder degrades to [`TransientOutcome::Partial`] instead of an
    /// error.
    pub(crate) fn run_rescued(
        &self,
        circuit: &Circuit,
        sel: EngineSel,
        policy: &RescuePolicy,
        probe: Probe<'_>,
    ) -> Result<TransientOutcome, Error> {
        self.run_impl(circuit, sel, Some(policy), probe)
    }

    fn run_impl(
        &self,
        circuit: &Circuit,
        sel: EngineSel,
        policy: Option<&RescuePolicy>,
        mut probe: Probe<'_>,
    ) -> Result<TransientOutcome, Error> {
        let sel = EngineSel {
            reference: sel.reference || self.reference,
            eval: if self.limited {
                DeviceEval::Limited(LimitOpts::default())
            } else {
                sel.eval
            },
        };
        let ctx = if self.uic {
            crate::lint::LintContext::TransientUic
        } else {
            crate::lint::LintContext::Dc
        };
        crate::lint::preflight(circuit, "transient", ctx)?;
        probe.emit(Event::AnalysisStart {
            analysis: "transient",
        });
        let layout = MnaLayout::new(circuit);
        let n = layout.size();
        let node_rows = layout.n_nodes - 1;

        // Collect capacitor and source bookkeeping.
        struct CapInfo {
            a: NodeId,
            b: NodeId,
            farads: f64,
            ic: f64,
        }
        struct IndInfo {
            a: NodeId,
            b: NodeId,
            henries: f64,
            ic: f64,
            branch: usize,
        }
        let mut caps: Vec<CapInfo> = Vec::new();
        let mut inds: Vec<IndInfo> = Vec::new();
        let mut sources: Vec<SourceInfo> = Vec::new();
        let mut branch_elements: Vec<(usize, usize)> = Vec::new();
        for (idx, (_, _, e)) in circuit.elements().enumerate() {
            match e {
                Element::Capacitor {
                    a,
                    b,
                    farads,
                    initial_voltage,
                } => caps.push(CapInfo {
                    a: *a,
                    b: *b,
                    farads: *farads,
                    ic: *initial_voltage,
                }),
                Element::Inductor {
                    a,
                    b,
                    henries,
                    initial_current,
                } => {
                    let branch = layout.branch_of[idx].expect("inductor branch");
                    inds.push(IndInfo {
                        a: *a,
                        b: *b,
                        henries: *henries,
                        ic: *initial_current,
                        branch,
                    });
                    branch_elements.push((idx, branch));
                }
                Element::VoltageSource { pos, neg, .. } => {
                    let branch = layout.branch_of[idx].expect("vsource branch");
                    sources.push(SourceInfo {
                        element: idx,
                        pos: *pos,
                        neg: *neg,
                        branch,
                    });
                    branch_elements.push((idx, branch));
                }
                _ => {}
            }
        }

        // Initial solution.
        let mut x = vec![0.0; n];
        let mut v_prev: Vec<f64>;
        let mut il_prev: Vec<f64>;
        let mut vl_prev: Vec<f64>;
        if self.uic {
            v_prev = caps.iter().map(|c| c.ic).collect();
            il_prev = inds.iter().map(|l| l.ic).collect();
            vl_prev = vec![0.0; inds.len()];
            // Seed the branch unknowns with the initial currents so the
            // first Newton iterate starts consistent.
            for l in &inds {
                x[layout.branch_row(l.branch)] = l.ic;
            }
        } else {
            let op = dc_operating_point_impl(circuit, sel, probe.reborrow())?;
            x.copy_from_slice(op.raw());
            v_prev = caps
                .iter()
                .map(|c| op.voltage(c.a) - op.voltage(c.b))
                .collect();
            il_prev = inds
                .iter()
                .map(|l| op.raw()[layout.branch_row(l.branch)])
                .collect();
            vl_prev = vec![0.0; inds.len()]; // DC: zero volts across L
        }
        let mut i_prev = vec![0.0; caps.len()];

        let opts = NewtonOpts {
            max_iter: self.max_iter,
            ..NewtonOpts::default()
        };
        let mut engine = SolverEngine::new(circuit, &layout, PlanMode::Tran, sel);
        let mut companions = vec![CapCompanion::default(); caps.len()];
        let mut ind_companions = vec![IndCompanion::default(); inds.len()];

        let steps = (self.t_stop / self.dt).round().max(1.0) as usize;
        let recorded = steps / self.record_every + 2;
        let mut times = Vec::with_capacity(recorded);
        let mut signals: Vec<Vec<f64>> = (0..n).map(|_| Vec::with_capacity(recorded)).collect();

        let record = |t: f64, x: &[f64], times: &mut Vec<f64>, signals: &mut [Vec<f64>]| {
            times.push(t);
            for (sig, &val) in signals.iter_mut().zip(x) {
                sig.push(val);
            }
        };
        record(0.0, &x, &mut times, &mut signals);

        let v_of = |x: &[f64], node: NodeId| -> f64 {
            match layout.node_row(node) {
                None => 0.0,
                Some(r) => x[r],
            }
        };

        // One implicit step of size `h` from the current state at time
        // `t_now` to `t_now + h`, updating x and the reactive states.
        let mut take_step = |t_new: f64,
                             h: f64,
                             be: bool,
                             gshunt: f64,
                             probe: &mut Probe<'_>,
                             x: &mut Vec<f64>,
                             v_prev: &mut [f64],
                             i_prev: &mut [f64],
                             il_prev: &mut [f64],
                             vl_prev: &mut [f64]|
         -> Result<(), Error> {
            for (k, c) in caps.iter().enumerate() {
                let (geq, ieq) = if be {
                    let geq = c.farads / h;
                    (geq, geq * v_prev[k])
                } else {
                    let geq = 2.0 * c.farads / h;
                    (geq, geq * v_prev[k] + i_prev[k])
                };
                companions[k] = CapCompanion { geq, ieq };
            }
            for (k, l) in inds.iter().enumerate() {
                let (geq, ieq) = if be {
                    let geq = h / l.henries;
                    (geq, il_prev[k])
                } else {
                    let geq = 0.5 * h / l.henries;
                    (geq, il_prev[k] + geq * vl_prev[k])
                };
                ind_companions[k] = IndCompanion { geq, ieq };
            }
            let ctx = SolveContext {
                time: t_new,
                source_scale: 1.0,
                caps: Some(&companions),
                inds: Some(&ind_companions),
                gshunt,
            };
            probe.solve(&mut engine, circuit, &layout, x, ctx, &opts, "transient")?;
            for (k, c) in caps.iter().enumerate() {
                let v_new = v_of(x, c.a) - v_of(x, c.b);
                i_prev[k] = companions[k].geq * v_new - companions[k].ieq;
                v_prev[k] = v_new;
            }
            for (k, l) in inds.iter().enumerate() {
                il_prev[k] = x[layout.branch_row(l.branch)];
                vl_prev[k] = v_of(x, l.a) - v_of(x, l.b);
            }
            Ok(())
        };

        let mut report = RescueReport::default();
        let mut partial_error: Option<Error> = None;

        if let Some(cfg) = self.adaptive {
            // ---- adaptive stepping ---------------------------------
            let max_dt = self.dt;
            let min_dt = if cfg.min_dt > 0.0 {
                cfg.min_dt
            } else {
                max_dt * 1e-6
            };
            // Breakpoint lookup across all independent sources.
            let waveforms: Vec<&crate::waveform::Waveform> = circuit
                .elements()
                .filter_map(|(_, _, e)| match e {
                    Element::VoltageSource { waveform, .. }
                    | Element::CurrentSource { waveform, .. } => Some(waveform),
                    _ => None,
                })
                .collect();
            let next_bp = |t: f64| -> Option<f64> {
                waveforms
                    .iter()
                    .filter_map(|w| w.next_breakpoint(t))
                    .min_by(|a, b| a.partial_cmp(b).expect("finite breakpoints"))
            };

            let mut t_now = 0.0f64;
            // Start two decades below the ceiling: the error controller
            // has no history yet, so the first accepted step is blind.
            let mut h = (max_dt / 100.0).max(min_dt);
            let mut first = true;
            // Slope history for the predictor.
            let mut x_prev = x.clone();
            let mut h_last = 0.0f64;
            while t_now < self.t_stop - 1e-18 * self.t_stop.max(1.0) {
                let mut h_try = h.min(self.t_stop - t_now).max(min_dt * 1e-3);
                if let Some(bp) = next_bp(t_now) {
                    if bp < t_now + h_try {
                        h_try = (bp - t_now).max(min_dt * 1e-3);
                        probe.emit(Event::EdgeSnap {
                            time: t_now,
                            dt: h_try,
                            breakpoint: bp,
                        });
                    }
                }
                // Save state for possible rejection.
                let x_save = x.clone();
                let vp_save = v_prev.clone();
                let ip_save = i_prev.clone();
                let ilp_save = il_prev.clone();
                let vlp_save = vl_prev.clone();

                let be = matches!(self.method, IntegrationMethod::BackwardEuler) || first;
                let t_new = t_now + h_try;
                let mut rescued = false;
                match take_step(
                    t_new,
                    h_try,
                    be,
                    0.0,
                    &mut probe,
                    &mut x,
                    &mut v_prev,
                    &mut i_prev,
                    &mut il_prev,
                    &mut vl_prev,
                ) {
                    Ok(()) => {}
                    Err(e @ Error::NonConvergence { .. }) => {
                        let Some(policy) = policy else { return Err(e) };
                        let snap = StateSnapshot {
                            x: x_save.clone(),
                            v_prev: vp_save.clone(),
                            i_prev: ip_save.clone(),
                            il_prev: ilp_save.clone(),
                            vl_prev: vlp_save.clone(),
                        };
                        if !attempt_rescue(
                            policy,
                            &mut report,
                            &mut take_step,
                            &mut probe,
                            t_now,
                            t_new,
                            be,
                            &snap,
                            &mut x,
                            &mut v_prev,
                            &mut i_prev,
                            &mut il_prev,
                            &mut vl_prev,
                        ) {
                            partial_error = Some(Error::NonConvergence {
                                analysis: "transient",
                                time: t_new,
                                iterations: self.max_iter,
                                stage: "rescue",
                                attempts: report.incidents.last().map_or(0, |i| i.attempts),
                            });
                            break;
                        }
                        rescued = true;
                    }
                    Err(e) => return Err(e),
                }

                // LTE estimate: discrepancy against the linear predictor
                // x_pred = x_prev + slope·h. Only meaningful with history
                // and away from breakpoints just crossed. A rescued step
                // is accepted unconditionally: the predictor comparison
                // is meaningless across a sub-stepped interval.
                let mut err = 0.0f64;
                if !rescued && !first && h_last > 0.0 {
                    for r in 0..node_rows {
                        let slope = (x_save[r] - x_prev[r]) / h_last;
                        let pred = x_save[r] + slope * h_try;
                        let scale = 1.0 + x[r].abs();
                        err = err.max((x[r] - pred).abs() / scale);
                    }
                }

                if !first && err > cfg.tolerance && h_try > min_dt {
                    // Reject: restore and halve.
                    probe.emit(Event::StepRejected {
                        time: t_new,
                        dt: h_try,
                        lte: err,
                    });
                    x = x_save;
                    v_prev = vp_save;
                    i_prev = ip_save;
                    il_prev = ilp_save;
                    vl_prev = vlp_save;
                    h = (h_try * 0.5).max(min_dt);
                    continue;
                }

                // Accept.
                probe.emit(Event::StepAccepted {
                    time: t_new,
                    dt: h_try,
                    lte: err,
                });
                x_prev = x_save;
                h_last = h_try;
                t_now = t_new;
                first = false;
                record(t_now, &x, &mut times, &mut signals);
                h = if err < cfg.tolerance * 0.25 {
                    (h_try * 1.5).min(max_dt)
                } else {
                    h_try.min(max_dt)
                };
            }
        } else {
            // ---- fixed stepping ------------------------------------
            for step in 1..=steps {
                let t = step as f64 * self.dt;
                let t_prev = (step - 1) as f64 * self.dt;
                let be = matches!(self.method, IntegrationMethod::BackwardEuler) || step == 1;
                // Snapshots only exist under a rescue policy, so the
                // plain hot path stays allocation-free per step.
                let snap = policy
                    .map(|_| StateSnapshot::capture(&x, &v_prev, &i_prev, &il_prev, &vl_prev));
                match take_step(
                    t,
                    self.dt,
                    be,
                    0.0,
                    &mut probe,
                    &mut x,
                    &mut v_prev,
                    &mut i_prev,
                    &mut il_prev,
                    &mut vl_prev,
                ) {
                    Ok(()) => {}
                    Err(e @ Error::NonConvergence { .. }) => {
                        let (Some(policy), Some(snap)) = (policy, snap.as_ref()) else {
                            return Err(e);
                        };
                        if !attempt_rescue(
                            policy,
                            &mut report,
                            &mut take_step,
                            &mut probe,
                            t_prev,
                            t,
                            be,
                            snap,
                            &mut x,
                            &mut v_prev,
                            &mut i_prev,
                            &mut il_prev,
                            &mut vl_prev,
                        ) {
                            partial_error = Some(Error::NonConvergence {
                                analysis: "transient",
                                time: t,
                                iterations: self.max_iter,
                                stage: "rescue",
                                attempts: report.incidents.last().map_or(0, |i| i.attempts),
                            });
                            // Put the last accepted point on record if
                            // decimation skipped it.
                            if times.last().copied() != Some(t_prev) {
                                record(t_prev, &x, &mut times, &mut signals);
                            }
                            break;
                        }
                    }
                    Err(e) => return Err(e),
                }
                probe.emit(Event::StepAccepted {
                    time: t,
                    dt: self.dt,
                    lte: 0.0,
                });
                if step % self.record_every == 0 || step == steps {
                    record(t, &x, &mut times, &mut signals);
                }
            }
        }

        probe.report(&engine, "transient");
        let ground = vec![0.0; times.len()];
        let result = TransientResult {
            times,
            signals,
            ground,
            node_rows,
            n_nodes: layout.n_nodes,
            sources,
            branch_elements,
        };
        match partial_error {
            None => {
                probe.emit(Event::AnalysisEnd {
                    analysis: "transient",
                });
                Ok(TransientOutcome::Complete {
                    result,
                    rescues: report,
                })
            }
            Some(error) => Ok(TransientOutcome::Partial {
                result,
                rescues: report,
                error,
            }),
        }
    }
}

#[derive(Debug, Clone)]
struct SourceInfo {
    element: usize,
    pos: NodeId,
    neg: NodeId,
    branch: usize,
}

/// Recorded waveforms of a transient analysis.
#[derive(Debug, Clone)]
pub struct TransientResult {
    times: Vec<f64>,
    signals: Vec<Vec<f64>>,
    ground: Vec<f64>,
    node_rows: usize,
    n_nodes: usize,
    sources: Vec<SourceInfo>,
    /// `(element index, branch index)` for every branch-current element
    /// (voltage sources and inductors).
    branch_elements: Vec<(usize, usize)>,
}

impl TransientResult {
    /// Recorded sample times.
    pub fn time(&self) -> &[f64] {
        &self.times
    }

    /// Number of recorded samples.
    pub fn samples(&self) -> usize {
        self.times.len()
    }

    /// Voltage waveform of a node.
    ///
    /// # Panics
    ///
    /// Panics if the node does not belong to the analysed circuit.
    pub fn voltage(&self, node: NodeId) -> Trace<'_> {
        let i = node.index();
        assert!(i < self.n_nodes, "node {node} out of range");
        if i == 0 {
            Trace::new(&self.times, &self.ground)
        } else {
            Trace::new(&self.times, &self.signals[i - 1])
        }
    }

    /// Differential voltage waveform `v(a) - v(b)` as owned data.
    ///
    /// # Panics
    ///
    /// Panics if either node does not belong to the analysed circuit.
    pub fn voltage_between(&self, a: NodeId, b: NodeId) -> TraceData {
        let va = self.voltage(a);
        let vb = self.voltage(b);
        let v = va
            .values()
            .iter()
            .zip(vb.values())
            .map(|(x, y)| x - y)
            .collect();
        TraceData::new(self.times.clone(), v)
    }

    /// Branch-current waveform of a voltage source or inductor. For a
    /// voltage source, positive current flows into the `pos` terminal
    /// (SPICE convention); for an inductor, positive current flows from
    /// terminal `a` to terminal `b`.
    ///
    /// # Errors
    ///
    /// Returns [`Error::UnknownProbe`] if the element carries no branch
    /// current (resistor, capacitor, ...).
    pub fn branch_current(&self, element: ElementId) -> Result<Trace<'_>, Error> {
        let (_, branch) = self
            .branch_elements
            .iter()
            .find(|(e, _)| *e == element.index())
            .ok_or_else(|| Error::UnknownProbe {
                what: format!("branch current of {element}"),
            })?;
        Ok(Trace::new(
            &self.times,
            &self.signals[self.node_rows + branch],
        ))
    }

    /// Instantaneous power *delivered by* a voltage source:
    /// `(v_pos − v_neg) · (−i_branch)`. Positive for a supply feeding the
    /// circuit.
    ///
    /// # Errors
    ///
    /// Returns [`Error::UnknownProbe`] if the element is not a voltage
    /// source of the analysed circuit.
    pub fn source_power(&self, element: ElementId) -> Result<TraceData, Error> {
        let info = self
            .sources
            .iter()
            .find(|s| s.element == element.index())
            .ok_or_else(|| Error::UnknownProbe {
                what: format!("source power of {element}"),
            })?;
        let vp = self.voltage(info.pos);
        let vn = self.voltage(info.neg);
        let ib = &self.signals[self.node_rows + info.branch];
        let p = vp
            .values()
            .iter()
            .zip(vn.values())
            .zip(ib)
            .map(|((vp, vn), i)| (vp - vn) * (-i))
            .collect();
        Ok(TraceData::new(self.times.clone(), p))
    }
}

impl Solution for TransientResult {
    /// Node voltage waveform over the recorded samples.
    type Voltage = TraceData;
    /// Branch current waveform over the recorded samples.
    type Current = TraceData;

    fn voltage(&self, node: NodeId) -> Result<TraceData, Error> {
        let i = node.index();
        if i >= self.n_nodes {
            return Err(Error::UnknownProbe {
                what: format!("voltage of {node}"),
            });
        }
        let values = if i == 0 {
            self.ground.clone()
        } else {
            self.signals[i - 1].clone()
        };
        Ok(TraceData::new(self.times.clone(), values))
    }

    fn branch_current(&self, element: ElementId) -> Result<TraceData, Error> {
        let trace = TransientResult::branch_current(self, element)?;
        let values = trace.values().to_vec();
        Ok(TraceData::new(self.times.clone(), values))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::elements::MosParams;
    use crate::session::Session;
    use crate::waveform::Waveform;

    /// RC step response: v(t) = V·(1 − e^(−t/τ)).
    #[test]
    fn rc_charge_matches_analytic() {
        let mut ckt = Circuit::new();
        let vin = ckt.node("in");
        let out = ckt.node("out");
        ckt.vsource("V1", vin, Circuit::GND, Waveform::dc(1.0));
        ckt.resistor("R1", vin, out, 1e3);
        ckt.capacitor("C1", out, Circuit::GND, 1e-6);
        let result = Session::new(&ckt)
            .transient(&Transient::new(1e-6, 5e-3).use_initial_conditions())
            .unwrap();
        let v = result.voltage(out);
        let tau = 1e-3;
        for &t in &[0.5e-3, 1e-3, 2e-3, 4e-3_f64] {
            let expect = 1.0 - (-t / tau).exp();
            let got = v.value_at(t);
            assert!(
                (got - expect).abs() < 2e-3,
                "t={t}: got {got}, expected {expect}"
            );
        }
    }

    #[test]
    fn trapezoidal_is_more_accurate_than_backward_euler() {
        let build = || {
            let mut ckt = Circuit::new();
            let vin = ckt.node("in");
            let out = ckt.node("out");
            ckt.vsource("V1", vin, Circuit::GND, Waveform::dc(1.0));
            ckt.resistor("R1", vin, out, 1e3);
            ckt.capacitor("C1", out, Circuit::GND, 1e-6);
            (ckt, out)
        };
        let tau = 1e-3;
        let expect = 1.0 - (-1.0f64).exp(); // at t = tau
        let (ckt, out) = build();
        // Deliberately coarse step to expose truncation error.
        let be = Session::new(&ckt)
            .transient(
                &Transient::new(50e-6, 1e-3)
                    .use_initial_conditions()
                    .with_method(IntegrationMethod::BackwardEuler),
            )
            .unwrap();
        let (ckt2, out2) = build();
        let tr = Session::new(&ckt2)
            .transient(
                &Transient::new(50e-6, 1e-3)
                    .use_initial_conditions()
                    .with_method(IntegrationMethod::Trapezoidal),
            )
            .unwrap();
        let err_be = (be.voltage(out).value_at(tau) - expect).abs();
        let err_tr = (tr.voltage(out2).value_at(tau) - expect).abs();
        assert!(
            err_tr < err_be,
            "trap err {err_tr} should beat BE err {err_be}"
        );
    }

    #[test]
    fn capacitor_initial_condition_is_honoured() {
        let mut ckt = Circuit::new();
        let out = ckt.node("out");
        ckt.resistor("R1", out, Circuit::GND, 1e3);
        ckt.capacitor_with_ic("C1", out, Circuit::GND, 1e-6, 2.0);
        let result = Session::new(&ckt)
            .transient(&Transient::new(1e-6, 1e-3).use_initial_conditions())
            .unwrap();
        let v = result.voltage(out);
        // Discharges from 2 V: v(τ) = 2/e.
        let got = v.value_at(1e-3);
        let expect = 2.0 * (-1.0f64).exp();
        assert!((got - expect).abs() < 5e-3, "got {got}, expected {expect}");
    }

    #[test]
    fn starts_from_dc_operating_point_by_default() {
        let mut ckt = Circuit::new();
        let a = ckt.node("a");
        let b = ckt.node("b");
        ckt.vsource("V1", a, Circuit::GND, Waveform::dc(2.0));
        ckt.resistor("R1", a, b, 1e3);
        ckt.resistor("R2", b, Circuit::GND, 1e3);
        ckt.capacitor("C1", b, Circuit::GND, 1e-9);
        let result = Session::new(&ckt)
            .transient(&Transient::new(1e-9, 100e-9))
            .unwrap();
        let v = result.voltage(b);
        // Already at equilibrium: stays at 1 V throughout.
        assert!((v.value_at(0.0) - 1.0).abs() < 1e-6);
        assert!((v.last_value() - 1.0).abs() < 1e-6);
    }

    #[test]
    fn pwm_average_on_rc_filter() {
        let mut ckt = Circuit::new();
        let vin = ckt.node("in");
        let out = ckt.node("out");
        ckt.vsource("V1", vin, Circuit::GND, Waveform::pwm(2.0, 1e6, 0.3));
        ckt.resistor("R1", vin, out, 10e3);
        ckt.capacitor("C1", out, Circuit::GND, 1e-9);
        let result = Session::new(&ckt)
            .transient(
                &Transient::new(2e-9, 100e-6)
                    .use_initial_conditions()
                    .record_every(5),
            )
            .unwrap();
        let avg = result.voltage(out).steady_state_average(1e-6, 10);
        assert!((avg - 0.6).abs() < 0.02, "avg = {avg}");
    }

    #[test]
    fn energy_balance_of_rc_charge() {
        // Charging a capacitor through a resistor takes C·V² from the
        // source: ½CV² stored, ½CV² dissipated.
        let mut ckt = Circuit::new();
        let vin = ckt.node("in");
        let out = ckt.node("out");
        let v1 = ckt.vsource("V1", vin, Circuit::GND, Waveform::dc(2.0));
        ckt.resistor("R1", vin, out, 1e3);
        ckt.capacitor("C1", out, Circuit::GND, 1e-6);
        let result = Session::new(&ckt)
            .transient(&Transient::new(2e-6, 10e-3).use_initial_conditions())
            .unwrap();
        let p = result.source_power(v1).unwrap();
        let e = p.as_trace().integrate_between(0.0, 10e-3);
        let expect = 1e-6 * 2.0 * 2.0; // C·V²
        assert!(
            (e - expect).abs() / expect < 0.02,
            "energy {e} vs expected {expect}"
        );
    }

    #[test]
    fn cmos_inverter_inverts_a_slow_square_wave() {
        let mut ckt = Circuit::new();
        let vdd = ckt.node("vdd");
        let vin = ckt.node("in");
        let out = ckt.node("out");
        ckt.vsource("VDD", vdd, Circuit::GND, Waveform::dc(2.5));
        ckt.vsource("VIN", vin, Circuit::GND, Waveform::pwm(2.5, 1e6, 0.5));
        ckt.mosfet("MP", out, vin, vdd, MosParams::pmos(865e-9, 1.2e-6));
        ckt.mosfet(
            "MN",
            out,
            vin,
            Circuit::GND,
            MosParams::nmos(320e-9, 1.2e-6),
        );
        ckt.capacitor("CL", out, Circuit::GND, 10e-15);
        let result = Session::new(&ckt)
            .transient(&Transient::new(2e-9, 3e-6).use_initial_conditions())
            .unwrap();
        let v_in = result.voltage(vin);
        let v_out = result.voltage(out);
        // Probe mid-high and mid-low phases of the final cycle.
        let t_hi = 2.25e-6; // input high
        let t_lo = 2.75e-6; // input low
        assert!(v_in.value_at(t_hi) > 2.0);
        assert!(v_out.value_at(t_hi) < 0.3, "out = {}", v_out.value_at(t_hi));
        assert!(v_in.value_at(t_lo) < 0.5);
        assert!(v_out.value_at(t_lo) > 2.2, "out = {}", v_out.value_at(t_lo));
    }

    #[test]
    fn record_decimation_reduces_samples() {
        let mut ckt = Circuit::new();
        let a = ckt.node("a");
        ckt.vsource("V1", a, Circuit::GND, Waveform::dc(1.0));
        ckt.resistor("R1", a, Circuit::GND, 1e3);
        let fine = Session::new(&ckt)
            .transient(&Transient::new(1e-9, 1e-6))
            .unwrap();
        let coarse = Session::new(&ckt)
            .transient(&Transient::new(1e-9, 1e-6).record_every(10))
            .unwrap();
        assert!(coarse.samples() < fine.samples() / 5);
        // Final point always recorded.
        assert!((coarse.time().last().unwrap() - 1e-6).abs() < 1e-12);
    }

    #[test]
    fn branch_current_probe_errors_on_non_source() {
        let mut ckt = Circuit::new();
        let a = ckt.node("a");
        ckt.vsource("V1", a, Circuit::GND, Waveform::dc(1.0));
        let r = ckt.resistor("R1", a, Circuit::GND, 1e3);
        let result = Session::new(&ckt)
            .transient(&Transient::new(1e-9, 10e-9))
            .unwrap();
        assert!(result.branch_current(r).is_err());
        assert!(result.source_power(r).is_err());
    }

    #[test]
    fn voltage_between_is_differential() {
        let mut ckt = Circuit::new();
        let a = ckt.node("a");
        let b = ckt.node("b");
        ckt.vsource("V1", a, Circuit::GND, Waveform::dc(3.0));
        ckt.resistor("R1", a, b, 1e3);
        ckt.resistor("R2", b, Circuit::GND, 2e3);
        let result = Session::new(&ckt)
            .transient(&Transient::new(1e-9, 10e-9))
            .unwrap();
        let vab = result.voltage_between(a, b);
        assert!((vab.as_trace().last_value() - 1.0).abs() < 1e-9);
    }

    #[test]
    #[should_panic(expected = "dt must be positive")]
    fn zero_dt_panics() {
        let _ = Transient::new(0.0, 1.0);
    }

    /// Adaptive stepping reproduces the RC charge with far fewer points
    /// than the fixed grid needs for the same accuracy.
    #[test]
    fn adaptive_rc_charge_is_accurate_and_cheap() {
        let build = || {
            let mut ckt = Circuit::new();
            let vin = ckt.node("in");
            let out = ckt.node("out");
            ckt.vsource("V1", vin, Circuit::GND, Waveform::dc(1.0));
            ckt.resistor("R1", vin, out, 1e3);
            ckt.capacitor("C1", out, Circuit::GND, 1e-6);
            (ckt, out)
        };
        let tau = 1e-3;
        let (ckt, out) = build();
        let result = Session::new(&ckt)
            .transient(
                &Transient::new(tau / 2.0, 10.0 * tau) // max step τ/2
                    .use_initial_conditions()
                    .adaptive(AdaptiveConfig::default()),
            )
            .unwrap();
        let v = result.voltage(out);
        for &t in &[0.5 * tau, tau, 3.0 * tau] {
            let expect = 1.0 - f64::exp(-t / tau);
            assert!(
                (v.value_at(t) - expect).abs() < 5e-3,
                "t={t}: {} vs {expect}",
                v.value_at(t)
            );
        }
        // A fixed grid resolving the initial transient this well needs
        // hundreds of points; the controller should do it in far fewer.
        assert!(
            result.samples() < 120,
            "adaptive used {} samples",
            result.samples()
        );
        // Steps should grow once the exponential flattens.
        let t = result.time();
        let first_step = t[1] - t[0];
        let last_step = t[t.len() - 1] - t[t.len() - 2];
        assert!(
            last_step > 3.0 * first_step,
            "controller should stretch: {first_step:e} → {last_step:e}"
        );
    }

    /// Breakpoint handling: a pulse far narrower than the maximum step
    /// must not be skipped.
    #[test]
    fn adaptive_does_not_skip_narrow_pulses() {
        let mut ckt = Circuit::new();
        let vin = ckt.node("in");
        let out = ckt.node("out");
        // 1 µs-wide pulse at t = 50 µs inside a 200 µs window.
        ckt.vsource(
            "V1",
            vin,
            Circuit::GND,
            Waveform::Pulse(crate::waveform::Pulse {
                low: 0.0,
                high: 1.0,
                delay: 50e-6,
                rise: 1e-8,
                fall: 1e-8,
                width: 1e-6,
                period: 1.0, // effectively one-shot in this window
            }),
        );
        ckt.resistor("R1", vin, out, 1e3);
        ckt.capacitor("C1", out, Circuit::GND, 1e-10); // τ = 100 ns
        let result = Session::new(&ckt)
            .transient(
                &Transient::new(20e-6, 200e-6) // max step ≫ pulse width
                    .use_initial_conditions()
                    .adaptive(AdaptiveConfig::default()),
            )
            .unwrap();
        let v = result.voltage(out);
        // The capacitor must have charged during the pulse.
        assert!(v.max() > 0.9, "pulse was skipped: max = {}", v.max());
        // And discharged afterwards.
        assert!(v.last_value() < 0.05);
    }

    /// Adaptive PWM averaging matches the fixed-step reference.
    #[test]
    fn adaptive_pwm_average_matches_fixed() {
        let build = || {
            let mut ckt = Circuit::new();
            let vin = ckt.node("in");
            let out = ckt.node("out");
            ckt.vsource("V1", vin, Circuit::GND, Waveform::pwm(2.0, 1e6, 0.3));
            ckt.resistor("R1", vin, out, 10e3);
            ckt.capacitor("C1", out, Circuit::GND, 1e-9);
            (ckt, out)
        };
        let (ckt, out) = build();
        let adaptive = Session::new(&ckt)
            .transient(
                &Transient::new(0.5e-6, 100e-6)
                    .use_initial_conditions()
                    .adaptive(AdaptiveConfig::default()),
            )
            .unwrap();
        let avg = adaptive.voltage(out).steady_state_average(1e-6, 10);
        assert!((avg - 0.6).abs() < 0.03, "avg = {avg}");
    }

    /// RL step response: i(t) = (V/R)·(1 − e^(−t·R/L)).
    #[test]
    fn rl_current_rise_matches_analytic() {
        let mut ckt = Circuit::new();
        let vin = ckt.node("in");
        let mid = ckt.node("mid");
        ckt.vsource("V1", vin, Circuit::GND, Waveform::dc(1.0));
        ckt.resistor("R1", vin, mid, 100.0);
        let l1 = ckt.inductor("L1", mid, Circuit::GND, 1e-3); // τ = 10 µs
        let result = Session::new(&ckt)
            .transient(&Transient::new(20e-9, 50e-6).use_initial_conditions())
            .unwrap();
        let i = result.branch_current(l1).unwrap();
        let tau = 1e-3 / 100.0;
        for &t in &[0.5 * tau, tau, 3.0 * tau] {
            let expect = (1.0 / 100.0) * (1.0 - f64::exp(-t / tau));
            let got = i.value_at(t);
            assert!(
                (got - expect).abs() < 2e-4,
                "t={t}: i={got}, expected {expect}"
            );
        }
        // Fully risen at 5τ.
        assert!((i.last_value() - 0.01).abs() < 1e-4);
    }

    /// Inductor is a DC short: the operating point puts the full supply
    /// across the resistor.
    #[test]
    fn inductor_is_short_in_dc_derived_initial_condition() {
        let mut ckt = Circuit::new();
        let vin = ckt.node("in");
        let mid = ckt.node("mid");
        ckt.vsource("V1", vin, Circuit::GND, Waveform::dc(2.0));
        ckt.resistor("R1", vin, mid, 1e3);
        let l1 = ckt.inductor("L1", mid, Circuit::GND, 1e-3);
        // No UIC: start from the DC OP, where i(L) = 2 mA already.
        let result = Session::new(&ckt)
            .transient(&Transient::new(1e-7, 1e-5))
            .unwrap();
        let i = result.branch_current(l1).unwrap();
        assert!((i.value_at(0.0) - 2e-3).abs() < 1e-8);
        assert!((i.last_value() - 2e-3).abs() < 1e-8, "steady state holds");
    }

    /// Series RLC ringing: underdamped response oscillates near the
    /// natural frequency and decays at R/(2L).
    #[test]
    fn rlc_underdamped_oscillation() {
        let r = 10.0;
        let l = 1e-6;
        let c = 1e-9;
        let mut ckt = Circuit::new();
        let vin = ckt.node("in");
        let mid = ckt.node("mid");
        let out = ckt.node("out");
        ckt.vsource("V1", vin, Circuit::GND, Waveform::dc(1.0));
        ckt.resistor("R1", vin, mid, r);
        ckt.inductor("L1", mid, out, l);
        ckt.capacitor("C1", out, Circuit::GND, c);
        let f0 = 1.0 / (2.0 * std::f64::consts::PI * (l * c).sqrt()); // ≈ 5 MHz
        let period = 1.0 / f0;
        let result = Session::new(&ckt)
            .transient(&Transient::new(period / 400.0, 6.0 * period).use_initial_conditions())
            .unwrap();
        let v = result.voltage(out);
        // Underdamped: overshoot beyond the final value.
        let peak = v.max();
        assert!(peak > 1.3, "expected ringing overshoot, peak = {peak}");
        // First peak lands near half the natural period.
        let t_half = period / 2.0;
        let v_half = v.value_at(t_half);
        assert!(v_half > 1.3, "v({t_half}) = {v_half}");
        // Decays toward 1 V.
        assert!((v.last_value() - 1.0).abs() < 0.25);
    }
}
