//! Dense linear algebra: the LU solver behind every Newton iteration.
//!
//! The paper's circuits have at most a few tens of nodes, so a dense
//! row-major matrix with partial-pivoting Gaussian elimination is both the
//! simplest and the fastest appropriate solver — no sparse machinery, no
//! external dependencies.

use crate::error::Error;

/// A dense square matrix in row-major storage.
#[derive(Debug, Clone, PartialEq)]
pub struct DenseMatrix {
    n: usize,
    data: Vec<f64>,
}

impl DenseMatrix {
    /// Creates an `n × n` zero matrix.
    pub fn zeros(n: usize) -> Self {
        DenseMatrix {
            n,
            data: vec![0.0; n * n],
        }
    }

    /// Matrix dimension.
    pub fn dim(&self) -> usize {
        self.n
    }

    /// Resets all entries to zero, keeping the allocation.
    pub fn clear(&mut self) {
        self.data.fill(0.0);
    }

    /// Entry at `(row, col)`.
    ///
    /// # Panics
    ///
    /// Panics if either index is out of bounds.
    #[inline]
    pub fn get(&self, row: usize, col: usize) -> f64 {
        assert!(row < self.n && col < self.n, "matrix index out of bounds");
        self.data[row * self.n + col]
    }

    /// Sets the entry at `(row, col)`.
    ///
    /// # Panics
    ///
    /// Panics if either index is out of bounds.
    #[inline]
    pub fn set(&mut self, row: usize, col: usize, value: f64) {
        assert!(row < self.n && col < self.n, "matrix index out of bounds");
        self.data[row * self.n + col] = value;
    }

    /// Adds `value` to the entry at `(row, col)` — the MNA stamping
    /// primitive.
    ///
    /// # Panics
    ///
    /// Panics if either index is out of bounds.
    #[inline]
    pub fn add(&mut self, row: usize, col: usize, value: f64) {
        debug_assert!(row < self.n && col < self.n, "matrix index out of bounds");
        self.data[row * self.n + col] += value;
    }

    /// Computes `self * x`.
    ///
    /// # Panics
    ///
    /// Panics if `x.len() != n`.
    pub fn mul_vec(&self, x: &[f64]) -> Vec<f64> {
        assert_eq!(x.len(), self.n);
        let mut y = vec![0.0; self.n];
        for (r, yr) in y.iter_mut().enumerate() {
            let row = &self.data[r * self.n..(r + 1) * self.n];
            *yr = row.iter().zip(x).map(|(a, b)| a * b).sum();
        }
        y
    }

    /// Solves `self * x = rhs` in place by Gaussian elimination with
    /// partial pivoting, destroying the matrix and replacing `rhs` with the
    /// solution.
    ///
    /// # Errors
    ///
    /// Returns [`Error::SingularMatrix`] if a pivot smaller than `1e-14`
    /// times the largest initial entry is encountered.
    ///
    /// # Panics
    ///
    /// Panics if `rhs.len() != n`.
    // Index loops mirror the textbook elimination; iterator forms obscure
    // the pivot structure.
    #[allow(clippy::needless_range_loop)]
    pub fn solve_in_place(&mut self, rhs: &mut [f64]) -> Result<(), Error> {
        let n = self.n;
        assert_eq!(rhs.len(), n, "rhs length must equal matrix dimension");
        if n == 0 {
            return Ok(());
        }
        let scale = self
            .data
            .iter()
            .fold(0.0f64, |m, &v| m.max(v.abs()))
            .max(1e-30);
        let tol = scale * 1e-14;

        for k in 0..n {
            // Partial pivot: largest |entry| in column k at/below row k.
            let mut pivot_row = k;
            let mut pivot_mag = self.data[k * n + k].abs();
            for r in (k + 1)..n {
                let mag = self.data[r * n + k].abs();
                if mag > pivot_mag {
                    pivot_mag = mag;
                    pivot_row = r;
                }
            }
            if pivot_mag < tol {
                return Err(Error::SingularMatrix { row: k });
            }
            if pivot_row != k {
                for c in 0..n {
                    self.data.swap(k * n + c, pivot_row * n + c);
                }
                rhs.swap(k, pivot_row);
            }
            let pivot = self.data[k * n + k];
            for r in (k + 1)..n {
                let factor = self.data[r * n + k] / pivot;
                if factor == 0.0 {
                    continue;
                }
                self.data[r * n + k] = 0.0;
                for c in (k + 1)..n {
                    self.data[r * n + c] -= factor * self.data[k * n + c];
                }
                rhs[r] -= factor * rhs[k];
            }
        }
        // Back substitution.
        for k in (0..n).rev() {
            let mut sum = rhs[k];
            for c in (k + 1)..n {
                sum -= self.data[k * n + c] * rhs[c];
            }
            rhs[k] = sum / self.data[k * n + k];
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn solves_identity() {
        let mut m = DenseMatrix::zeros(3);
        for i in 0..3 {
            m.set(i, i, 1.0);
        }
        let mut rhs = vec![1.0, 2.0, 3.0];
        m.solve_in_place(&mut rhs).unwrap();
        assert_eq!(rhs, vec![1.0, 2.0, 3.0]);
    }

    #[test]
    fn solves_small_system() {
        // 2x + y = 5; x + 3y = 10 → x = 1, y = 3.
        let mut m = DenseMatrix::zeros(2);
        m.set(0, 0, 2.0);
        m.set(0, 1, 1.0);
        m.set(1, 0, 1.0);
        m.set(1, 1, 3.0);
        let mut rhs = vec![5.0, 10.0];
        m.solve_in_place(&mut rhs).unwrap();
        assert!((rhs[0] - 1.0).abs() < 1e-12);
        assert!((rhs[1] - 3.0).abs() < 1e-12);
    }

    #[test]
    fn pivoting_handles_zero_diagonal() {
        // First diagonal entry zero requires a row swap.
        let mut m = DenseMatrix::zeros(2);
        m.set(0, 0, 0.0);
        m.set(0, 1, 1.0);
        m.set(1, 0, 1.0);
        m.set(1, 1, 0.0);
        let mut rhs = vec![2.0, 3.0];
        m.solve_in_place(&mut rhs).unwrap();
        assert!((rhs[0] - 3.0).abs() < 1e-12);
        assert!((rhs[1] - 2.0).abs() < 1e-12);
    }

    #[test]
    fn singular_matrix_is_reported() {
        let mut m = DenseMatrix::zeros(2);
        m.set(0, 0, 1.0);
        m.set(0, 1, 2.0);
        m.set(1, 0, 2.0);
        m.set(1, 1, 4.0); // rank 1
        let mut rhs = vec![1.0, 2.0];
        assert!(matches!(
            m.solve_in_place(&mut rhs),
            Err(Error::SingularMatrix { .. })
        ));
    }

    #[test]
    fn residual_is_small_for_random_system() {
        // Deterministic pseudo-random fill (LCG) to avoid rand dependency
        // in the hot path tests.
        let n = 12;
        let mut state = 0x1234_5678_u64;
        let mut next = move || {
            state = state
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            ((state >> 33) as f64 / (1u64 << 31) as f64) - 1.0
        };
        let mut m = DenseMatrix::zeros(n);
        for r in 0..n {
            for c in 0..n {
                m.set(r, c, next());
            }
            m.add(r, r, 4.0); // diagonal dominance ⇒ nonsingular
        }
        let x_true: Vec<f64> = (0..n).map(|i| i as f64 - 3.0).collect();
        let mut rhs = m.mul_vec(&x_true);
        let mut lu = m.clone();
        lu.solve_in_place(&mut rhs).unwrap();
        for (xs, xt) in rhs.iter().zip(&x_true) {
            assert!((xs - xt).abs() < 1e-10, "{xs} vs {xt}");
        }
    }

    #[test]
    fn clear_keeps_dimension() {
        let mut m = DenseMatrix::zeros(4);
        m.set(2, 3, 5.0);
        m.clear();
        assert_eq!(m.dim(), 4);
        assert_eq!(m.get(2, 3), 0.0);
    }

    #[test]
    fn empty_system_is_ok() {
        let mut m = DenseMatrix::zeros(0);
        let mut rhs: Vec<f64> = vec![];
        m.solve_in_place(&mut rhs).unwrap();
    }
}
