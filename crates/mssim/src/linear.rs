//! Dense linear algebra: the LU solver behind every Newton iteration.
//!
//! The paper's circuits have at most a few tens of nodes, so a dense
//! row-major matrix with partial-pivoting Gaussian elimination is both the
//! simplest and the fastest appropriate solver — no sparse machinery, no
//! external dependencies.

use crate::error::Error;

/// A dense square matrix in row-major storage.
#[derive(Debug, Clone, PartialEq)]
pub struct DenseMatrix {
    n: usize,
    data: Vec<f64>,
}

impl DenseMatrix {
    /// Creates an `n × n` zero matrix.
    pub fn zeros(n: usize) -> Self {
        DenseMatrix {
            n,
            data: vec![0.0; n * n],
        }
    }

    /// Matrix dimension.
    pub fn dim(&self) -> usize {
        self.n
    }

    /// Resets all entries to zero, keeping the allocation.
    pub fn clear(&mut self) {
        self.data.fill(0.0);
    }

    /// Entry at `(row, col)`.
    ///
    /// # Panics
    ///
    /// Panics if either index is out of bounds.
    #[inline]
    pub fn get(&self, row: usize, col: usize) -> f64 {
        assert!(row < self.n && col < self.n, "matrix index out of bounds");
        self.data[row * self.n + col]
    }

    /// Sets the entry at `(row, col)`.
    ///
    /// # Panics
    ///
    /// Panics if either index is out of bounds.
    #[inline]
    pub fn set(&mut self, row: usize, col: usize, value: f64) {
        assert!(row < self.n && col < self.n, "matrix index out of bounds");
        self.data[row * self.n + col] = value;
    }

    /// Adds `value` to the entry at `(row, col)` — the MNA stamping
    /// primitive.
    ///
    /// # Panics
    ///
    /// Panics if either index is out of bounds.
    #[inline]
    pub fn add(&mut self, row: usize, col: usize, value: f64) {
        debug_assert!(row < self.n && col < self.n, "matrix index out of bounds");
        self.data[row * self.n + col] += value;
    }

    /// The raw row-major entries.
    pub(crate) fn as_slice(&self) -> &[f64] {
        &self.data
    }

    /// The raw row-major entries, mutably.
    pub(crate) fn as_mut_slice(&mut self) -> &mut [f64] {
        &mut self.data
    }

    /// Computes `self * x`.
    ///
    /// # Panics
    ///
    /// Panics if `x.len() != n`.
    pub fn mul_vec(&self, x: &[f64]) -> Vec<f64> {
        assert_eq!(x.len(), self.n);
        let mut y = vec![0.0; self.n];
        for (r, yr) in y.iter_mut().enumerate() {
            let row = &self.data[r * self.n..(r + 1) * self.n];
            *yr = row.iter().zip(x).map(|(a, b)| a * b).sum();
        }
        y
    }

    /// Solves `self * x = rhs` in place by Gaussian elimination with
    /// partial pivoting, destroying the matrix and replacing `rhs` with the
    /// solution.
    ///
    /// # Errors
    ///
    /// Returns [`Error::SingularMatrix`] if a pivot smaller than `1e-14`
    /// times the largest initial entry is encountered.
    ///
    /// # Panics
    ///
    /// Panics if `rhs.len() != n`.
    // Index loops mirror the textbook elimination; iterator forms obscure
    // the pivot structure.
    #[allow(clippy::needless_range_loop)]
    pub fn solve_in_place(&mut self, rhs: &mut [f64]) -> Result<(), Error> {
        let n = self.n;
        assert_eq!(rhs.len(), n, "rhs length must equal matrix dimension");
        if n == 0 {
            return Ok(());
        }
        let scale = self
            .data
            .iter()
            .fold(0.0f64, |m, &v| m.max(v.abs()))
            .max(1e-30);
        let tol = scale * 1e-14;

        for k in 0..n {
            // Partial pivot: largest |entry| in column k at/below row k.
            let mut pivot_row = k;
            let mut pivot_mag = self.data[k * n + k].abs();
            for r in (k + 1)..n {
                let mag = self.data[r * n + k].abs();
                if mag > pivot_mag {
                    pivot_mag = mag;
                    pivot_row = r;
                }
            }
            if pivot_mag < tol {
                return Err(Error::SingularMatrix { row: k });
            }
            if pivot_row != k {
                for c in 0..n {
                    self.data.swap(k * n + c, pivot_row * n + c);
                }
                rhs.swap(k, pivot_row);
            }
            let pivot = self.data[k * n + k];
            for r in (k + 1)..n {
                let factor = self.data[r * n + k] / pivot;
                if factor == 0.0 {
                    continue;
                }
                self.data[r * n + k] = 0.0;
                for c in (k + 1)..n {
                    self.data[r * n + c] -= factor * self.data[k * n + c];
                }
                rhs[r] -= factor * rhs[k];
            }
        }
        // Back substitution.
        for k in (0..n).rev() {
            let mut sum = rhs[k];
            for c in (k + 1)..n {
                sum -= self.data[k * n + c] * rhs[c];
            }
            rhs[k] = sum / self.data[k * n + k];
        }
        Ok(())
    }
}

/// A reusable LU factorization (partial pivoting) of a [`DenseMatrix`].
///
/// [`LuFactors::factor_from`] performs exactly the elimination of
/// [`DenseMatrix::solve_in_place`], but keeps the elimination multipliers
/// (in the strict lower triangle) and the row-exchange sequence, so any
/// number of right-hand sides can later be solved in O(n²) by
/// [`LuFactors::solve`] — with results **bitwise identical** to a fresh
/// `solve_in_place` on the same matrix. The solver hot path leans on that
/// guarantee: reusing a factorization for an unchanged Jacobian cannot
/// perturb a waveform by even one ulp.
#[derive(Debug, Clone)]
pub struct LuFactors {
    n: usize,
    /// Row-major storage: upper triangle (diagonal included) holds `U`,
    /// strict lower triangle holds the elimination multipliers.
    lu: Vec<f64>,
    /// `swaps[k]` is the row exchanged with row `k` at elimination stage
    /// `k` (`k` itself when no exchange happened).
    swaps: Vec<usize>,
}

impl LuFactors {
    /// An empty factorization holder for `n × n` systems.
    pub fn new(n: usize) -> Self {
        LuFactors {
            n,
            lu: vec![0.0; n * n],
            swaps: vec![0; n],
        }
    }

    /// Matrix dimension of the stored factorization.
    pub fn dim(&self) -> usize {
        self.n
    }

    /// Factors `mat` (which is left untouched), replacing any previously
    /// stored factorization.
    ///
    /// # Errors
    ///
    /// Returns [`Error::SingularMatrix`] under exactly the same condition
    /// (and at the same row) as [`DenseMatrix::solve_in_place`].
    pub fn factor_from(&mut self, mat: &DenseMatrix) -> Result<(), Error> {
        self.factor_with(mat.n, |lu| lu.copy_from_slice(&mat.data))
    }

    /// Factors an `n × n` matrix assembled directly into the internal
    /// buffer by `fill` (which receives it zero-initialised-or-stale and
    /// must overwrite all `n²` entries). Skips the matrix copy that
    /// [`LuFactors::factor_from`] pays, for callers that would otherwise
    /// stage the matrix in a scratch buffer only to hand it over.
    ///
    /// # Errors
    ///
    /// Returns [`Error::SingularMatrix`] under exactly the same condition
    /// (and at the same row) as [`DenseMatrix::solve_in_place`].
    // Index loops mirror solve_in_place; iterator forms obscure the pivot
    // structure.
    #[allow(clippy::needless_range_loop)]
    pub fn factor_with(&mut self, n: usize, fill: impl FnOnce(&mut [f64])) -> Result<(), Error> {
        self.n = n;
        self.lu.resize(n * n, 0.0);
        fill(&mut self.lu);
        self.swaps.resize(n, 0);
        if n == 0 {
            return Ok(());
        }
        let scale = self
            .lu
            .iter()
            .fold(0.0f64, |m, &v| m.max(v.abs()))
            .max(1e-30);
        let tol = scale * 1e-14;

        for k in 0..n {
            let mut pivot_row = k;
            let mut pivot_mag = self.lu[k * n + k].abs();
            for r in (k + 1)..n {
                let mag = self.lu[r * n + k].abs();
                if mag > pivot_mag {
                    pivot_mag = mag;
                    pivot_row = r;
                }
            }
            if pivot_mag < tol {
                return Err(Error::SingularMatrix { row: k });
            }
            self.swaps[k] = pivot_row;
            if pivot_row != k {
                for c in 0..n {
                    self.lu.swap(k * n + c, pivot_row * n + c);
                }
            }
            let pivot = self.lu[k * n + k];
            for r in (k + 1)..n {
                let factor = self.lu[r * n + k] / pivot;
                if factor == 0.0 {
                    // A multiplier that underflows to zero must replay as a
                    // skip, exactly like solve_in_place's `continue`.
                    self.lu[r * n + k] = 0.0;
                    continue;
                }
                self.lu[r * n + k] = factor;
                for c in (k + 1)..n {
                    self.lu[r * n + c] -= factor * self.lu[k * n + c];
                }
            }
        }
        Ok(())
    }

    /// Factors like [`LuFactors::factor_with`] while eliminating `rhs` in
    /// the same sweep, then back-substitutes — leaving `rhs` holding the
    /// solution and the factorization stored for later [`LuFactors::solve`]
    /// calls.
    ///
    /// This is the factor-miss fast path: it fuses the O(n²) forward
    /// substitution into the elimination exactly as
    /// [`DenseMatrix::solve_in_place`] does (interleaved row swaps and
    /// multiplier updates), so a Newton iteration that must refactor pays
    /// no separate permutation-replay pass. The interleaved updates are
    /// bitwise identical to `factor_with` + [`LuFactors::solve`] — the
    /// same multipliers hit `rhs` in the same order.
    ///
    /// # Errors
    ///
    /// Returns [`Error::SingularMatrix`] under exactly the same condition
    /// (and at the same row) as [`DenseMatrix::solve_in_place`]; `rhs` is
    /// left partially eliminated in that case.
    ///
    /// # Panics
    ///
    /// Panics if `rhs.len() != n`.
    #[allow(clippy::needless_range_loop)]
    pub fn factor_and_solve_with(
        &mut self,
        n: usize,
        fill: impl FnOnce(&mut [f64]),
        rhs: &mut [f64],
    ) -> Result<(), Error> {
        assert_eq!(rhs.len(), n, "rhs length must equal matrix dimension");
        self.n = n;
        self.lu.resize(n * n, 0.0);
        fill(&mut self.lu);
        self.swaps.resize(n, 0);
        if n == 0 {
            return Ok(());
        }
        let scale = self
            .lu
            .iter()
            .fold(0.0f64, |m, &v| m.max(v.abs()))
            .max(1e-30);
        let tol = scale * 1e-14;

        for k in 0..n {
            let mut pivot_row = k;
            let mut pivot_mag = self.lu[k * n + k].abs();
            for r in (k + 1)..n {
                let mag = self.lu[r * n + k].abs();
                if mag > pivot_mag {
                    pivot_mag = mag;
                    pivot_row = r;
                }
            }
            if pivot_mag < tol {
                return Err(Error::SingularMatrix { row: k });
            }
            self.swaps[k] = pivot_row;
            if pivot_row != k {
                for c in 0..n {
                    self.lu.swap(k * n + c, pivot_row * n + c);
                }
                rhs.swap(k, pivot_row);
            }
            let pivot = self.lu[k * n + k];
            for r in (k + 1)..n {
                let factor = self.lu[r * n + k] / pivot;
                if factor == 0.0 {
                    // A multiplier that underflows to zero must replay as a
                    // skip, exactly like solve_in_place's `continue`.
                    self.lu[r * n + k] = 0.0;
                    continue;
                }
                self.lu[r * n + k] = factor;
                for c in (k + 1)..n {
                    self.lu[r * n + c] -= factor * self.lu[k * n + c];
                }
                rhs[r] -= factor * rhs[k];
            }
        }
        for k in (0..n).rev() {
            let mut sum = rhs[k];
            for c in (k + 1)..n {
                sum -= self.lu[k * n + c] * rhs[c];
            }
            rhs[k] = sum / self.lu[k * n + k];
        }
        Ok(())
    }

    /// Solves `A·x = rhs` in place for the matrix `A` last passed to
    /// [`LuFactors::factor_from`], replaying the stored row exchanges and
    /// multipliers. Bitwise identical to `A.solve_in_place(rhs)`.
    ///
    /// # Panics
    ///
    /// Panics if `rhs.len()` does not match the factored dimension.
    #[allow(clippy::needless_range_loop)]
    pub fn solve(&self, rhs: &mut [f64]) {
        let n = self.n;
        assert_eq!(rhs.len(), n, "rhs length must equal matrix dimension");
        // Apply the whole pivot permutation first: factor_from swaps stored
        // multiplier columns on later pivots (so L lives in final row
        // positions), which makes "permute, then substitute" the replay that
        // matches solve_in_place's interleaved updates bit for bit.
        for k in 0..n {
            let pivot_row = self.swaps[k];
            if pivot_row != k {
                rhs.swap(k, pivot_row);
            }
        }
        for k in 0..n {
            for r in (k + 1)..n {
                let factor = self.lu[r * n + k];
                if factor == 0.0 {
                    continue;
                }
                rhs[r] -= factor * rhs[k];
            }
        }
        for k in (0..n).rev() {
            let mut sum = rhs[k];
            for c in (k + 1)..n {
                sum -= self.lu[k * n + c] * rhs[c];
            }
            rhs[k] = sum / self.lu[k * n + k];
        }
    }
}

/// LU factorization over a frozen pivot sequence and structural pattern.
///
/// The first factorization runs the same dense partial-pivot elimination
/// as [`LuFactors`], then records the pivot sequence and — from a
/// caller-supplied structural pattern — the fill-in structure of the
/// factors. Subsequent factorizations *replay* that elimination touching
/// only structural positions, which on a sparse MNA system cuts the
/// O(n³) sweep to roughly the factor's nonzero count. Triangular solves
/// walk the same recorded structure.
///
/// The replay performs the same arithmetic as the dense elimination on
/// every structural position; skipped positions are structurally zero,
/// so results agree to rounding (not bitwise: the frozen pivot order can
/// differ from what fresh partial pivoting would choose). A replayed
/// pivot whose magnitude falls under the recorded threshold triggers a
/// transparent fallback: the matrix is refilled, factored densely with
/// fresh pivoting, and the structure re-recorded.
#[derive(Debug, Clone)]
pub struct SparseReplayLu {
    n: usize,
    /// Dense row-major storage; only structural positions are meaningful
    /// after a replayed factorization (the rest stay 0.0 from `fill`).
    lu: Vec<f64>,
    swaps: Vec<usize>,
    /// Stage-`k` multiplier rows (`r > k` with structural `(r, k)`).
    mrows: Vec<u32>,
    mrow_ptr: Vec<usize>,
    /// Stage-`k` update columns (`c > k` with structural `(k, c)`).
    ucols: Vec<u32>,
    ucol_ptr: Vec<usize>,
    /// Reciprocals of the U diagonal, so the back-substitution multiplies
    /// instead of divides (no bitwise contract on this engine).
    inv_diag: Vec<f64>,
    /// Multiplier values aligned with `mrows` and U values aligned with
    /// `ucols`: the triangular solves walk these contiguous copies instead
    /// of striding through the dense buffer.
    mvals: Vec<f64>,
    uvals: Vec<f64>,
    structured: bool,
    /// Pivot acceptance threshold recorded by the structuring pass.
    tol: f64,
}

impl SparseReplayLu {
    /// An empty holder for `n × n` systems.
    pub fn new(n: usize) -> Self {
        SparseReplayLu {
            n,
            lu: vec![0.0; n * n],
            swaps: vec![0; n],
            mrows: Vec::new(),
            mrow_ptr: Vec::new(),
            ucols: Vec::new(),
            ucol_ptr: Vec::new(),
            inv_diag: vec![0.0; n],
            mvals: Vec::new(),
            uvals: Vec::new(),
            structured: false,
            tol: 0.0,
        }
    }

    /// Drops the recorded structure (pattern or pivot sequence no longer
    /// trustworthy — e.g. the base matrix was rebuilt).
    pub fn invalidate_structure(&mut self) {
        self.structured = false;
    }

    /// Factors an `n × n` matrix assembled into the internal buffer by
    /// `fill`. `pattern` is the structural nonzero pattern of the
    /// assembled matrix, row-major in `ceil(n/64)` `u64` chunks per row;
    /// every position `fill` can make nonzero must be set (a superset is
    /// fine — structurally-present numeric zeros replay as no-ops).
    ///
    /// # Errors
    ///
    /// Returns [`Error::SingularMatrix`] when even a fresh dense
    /// factorization finds no acceptable pivot.
    pub fn factor_with(
        &mut self,
        n: usize,
        pattern: &[u64],
        fill: impl Fn(&mut [f64]),
    ) -> Result<(), Error> {
        self.n = n;
        self.lu.resize(n * n, 0.0);
        self.swaps.resize(n, 0);
        fill(&mut self.lu);
        if n == 0 {
            return Ok(());
        }
        if self.structured {
            match self.replay() {
                Ok(()) => return Ok(()),
                Err(_) => {
                    // Frozen pivot went bad on the new values: refill (the
                    // buffer is partially eliminated) and restructure.
                    self.structured = false;
                    fill(&mut self.lu);
                }
            }
        }
        self.dense_factor()?;
        self.record_structure(pattern);
        Ok(())
    }

    /// Replays the recorded elimination on the freshly filled buffer.
    fn replay(&mut self) -> Result<(), Error> {
        let n = self.n;
        for k in 0..n {
            let pr = self.swaps[k];
            if pr != k {
                for c in 0..n {
                    self.lu.swap(k * n + c, pr * n + c);
                }
            }
            let pivot = self.lu[k * n + k];
            if pivot.abs() < self.tol {
                return Err(Error::SingularMatrix { row: k });
            }
            // One reciprocal per stage instead of one divide per
            // multiplier row; the divide's long latency otherwise
            // serialises the elimination of short rows.
            let inv = 1.0 / pivot;
            self.inv_diag[k] = inv;
            // Row k is final once stage k starts: snapshot its U values
            // into the packed solve array.
            for j in self.ucol_ptr[k]..self.ucol_ptr[k + 1] {
                self.uvals[j] = self.lu[k * n + self.ucols[j] as usize];
            }
            for i in self.mrow_ptr[k]..self.mrow_ptr[k + 1] {
                let r = self.mrows[i] as usize;
                let factor = self.lu[r * n + k] * inv;
                self.mvals[i] = factor;
                if factor == 0.0 {
                    self.lu[r * n + k] = 0.0;
                    continue;
                }
                self.lu[r * n + k] = factor;
                for j in self.ucol_ptr[k]..self.ucol_ptr[k + 1] {
                    let c = self.ucols[j] as usize;
                    self.lu[r * n + c] -= factor * self.lu[k * n + c];
                }
            }
        }
        Ok(())
    }

    /// Fresh dense partial-pivot factorization (same algorithm and pivot
    /// acceptance as [`LuFactors::factor_with`]), recording the swaps.
    #[allow(clippy::needless_range_loop)] // mirrors LuFactors; pivot structure
    fn dense_factor(&mut self) -> Result<(), Error> {
        let n = self.n;
        let scale = self
            .lu
            .iter()
            .fold(0.0f64, |m, &v| m.max(v.abs()))
            .max(1e-30);
        self.tol = scale * 1e-14;
        for k in 0..n {
            let mut pivot_row = k;
            let mut pivot_mag = self.lu[k * n + k].abs();
            for r in (k + 1)..n {
                let mag = self.lu[r * n + k].abs();
                if mag > pivot_mag {
                    pivot_mag = mag;
                    pivot_row = r;
                }
            }
            if pivot_mag < self.tol {
                return Err(Error::SingularMatrix { row: k });
            }
            self.swaps[k] = pivot_row;
            if pivot_row != k {
                for c in 0..n {
                    self.lu.swap(k * n + c, pivot_row * n + c);
                }
            }
            let pivot = self.lu[k * n + k];
            for r in (k + 1)..n {
                let factor = self.lu[r * n + k] / pivot;
                if factor == 0.0 {
                    self.lu[r * n + k] = 0.0;
                    continue;
                }
                self.lu[r * n + k] = factor;
                for c in (k + 1)..n {
                    self.lu[r * n + c] -= factor * self.lu[k * n + c];
                }
            }
        }
        Ok(())
    }

    /// Symbolically eliminates `pattern` under the recorded pivot
    /// sequence, storing the resulting multiplier-row and update-column
    /// lists (fill-in included).
    fn record_structure(&mut self, pattern: &[u64]) {
        let n = self.n;
        let chunks = n.div_ceil(64);
        debug_assert_eq!(pattern.len(), n * chunks);
        let mut pat = pattern.to_vec();
        self.mrows.clear();
        self.ucols.clear();
        self.mrow_ptr.clear();
        self.ucol_ptr.clear();
        self.mrow_ptr.push(0);
        self.ucol_ptr.push(0);
        let bit = |pat: &[u64], r: usize, c: usize| pat[r * chunks + c / 64] >> (c % 64) & 1 == 1;
        for k in 0..n {
            let pr = self.swaps[k];
            if pr != k {
                for ch in 0..chunks {
                    pat.swap(k * chunks + ch, pr * chunks + ch);
                }
            }
            for c in (k + 1)..n {
                if bit(&pat, k, c) {
                    self.ucols.push(c as u32);
                }
            }
            for r in (k + 1)..n {
                if bit(&pat, r, k) {
                    self.mrows.push(r as u32);
                    // Fill-in: row r picks up row k's upper structure.
                    for ch in 0..chunks {
                        let mut add = pat[k * chunks + ch];
                        // Mask off columns ≤ k (already eliminated).
                        let lo = k + 1;
                        if ch * 64 < lo {
                            let drop = (lo - ch * 64).min(64);
                            if drop == 64 {
                                add = 0;
                            } else {
                                add &= !0u64 << drop;
                            }
                        }
                        pat[r * chunks + ch] |= add;
                    }
                }
            }
            self.mrow_ptr.push(self.mrows.len());
            self.ucol_ptr.push(self.ucols.len());
        }
        self.inv_diag.resize(n, 0.0);
        self.mvals.resize(self.mrows.len(), 0.0);
        self.uvals.resize(self.ucols.len(), 0.0);
        for k in 0..n {
            self.inv_diag[k] = 1.0 / self.lu[k * n + k];
            for j in self.ucol_ptr[k]..self.ucol_ptr[k + 1] {
                self.uvals[j] = self.lu[k * n + self.ucols[j] as usize];
            }
            for i in self.mrow_ptr[k]..self.mrow_ptr[k + 1] {
                self.mvals[i] = self.lu[self.mrows[i] as usize * n + k];
            }
        }
        self.structured = true;
    }

    /// Solves `A·x = rhs` in place against the last factorization,
    /// walking only the recorded structure. Matches [`LuFactors::solve`]
    /// on every structural position.
    ///
    /// # Panics
    ///
    /// Panics if `rhs.len()` does not match the factored dimension or no
    /// factorization has been recorded.
    pub fn solve(&self, rhs: &mut [f64]) {
        let n = self.n;
        assert_eq!(rhs.len(), n, "rhs length must equal matrix dimension");
        assert!(self.structured, "solve called before factor_with");
        for k in 0..n {
            let pr = self.swaps[k];
            if pr != k {
                rhs.swap(k, pr);
            }
        }
        for k in 0..n {
            let xk = rhs[k];
            for i in self.mrow_ptr[k]..self.mrow_ptr[k + 1] {
                let factor = self.mvals[i];
                if factor != 0.0 {
                    rhs[self.mrows[i] as usize] -= factor * xk;
                }
            }
        }
        for k in (0..n).rev() {
            let mut sum = rhs[k];
            for j in self.ucol_ptr[k]..self.ucol_ptr[k + 1] {
                sum -= self.uvals[j] * rhs[self.ucols[j] as usize];
            }
            rhs[k] = sum * self.inv_diag[k];
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn solves_identity() {
        let mut m = DenseMatrix::zeros(3);
        for i in 0..3 {
            m.set(i, i, 1.0);
        }
        let mut rhs = vec![1.0, 2.0, 3.0];
        m.solve_in_place(&mut rhs).unwrap();
        assert_eq!(rhs, vec![1.0, 2.0, 3.0]);
    }

    #[test]
    fn solves_small_system() {
        // 2x + y = 5; x + 3y = 10 → x = 1, y = 3.
        let mut m = DenseMatrix::zeros(2);
        m.set(0, 0, 2.0);
        m.set(0, 1, 1.0);
        m.set(1, 0, 1.0);
        m.set(1, 1, 3.0);
        let mut rhs = vec![5.0, 10.0];
        m.solve_in_place(&mut rhs).unwrap();
        assert!((rhs[0] - 1.0).abs() < 1e-12);
        assert!((rhs[1] - 3.0).abs() < 1e-12);
    }

    #[test]
    fn pivoting_handles_zero_diagonal() {
        // First diagonal entry zero requires a row swap.
        let mut m = DenseMatrix::zeros(2);
        m.set(0, 0, 0.0);
        m.set(0, 1, 1.0);
        m.set(1, 0, 1.0);
        m.set(1, 1, 0.0);
        let mut rhs = vec![2.0, 3.0];
        m.solve_in_place(&mut rhs).unwrap();
        assert!((rhs[0] - 3.0).abs() < 1e-12);
        assert!((rhs[1] - 2.0).abs() < 1e-12);
    }

    #[test]
    fn singular_matrix_is_reported() {
        let mut m = DenseMatrix::zeros(2);
        m.set(0, 0, 1.0);
        m.set(0, 1, 2.0);
        m.set(1, 0, 2.0);
        m.set(1, 1, 4.0); // rank 1
        let mut rhs = vec![1.0, 2.0];
        assert!(matches!(
            m.solve_in_place(&mut rhs),
            Err(Error::SingularMatrix { .. })
        ));
    }

    #[test]
    fn residual_is_small_for_random_system() {
        // Deterministic pseudo-random fill (LCG) to avoid rand dependency
        // in the hot path tests.
        let n = 12;
        let mut state = 0x1234_5678_u64;
        let mut next = move || {
            state = state
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            ((state >> 33) as f64 / (1u64 << 31) as f64) - 1.0
        };
        let mut m = DenseMatrix::zeros(n);
        for r in 0..n {
            for c in 0..n {
                m.set(r, c, next());
            }
            m.add(r, r, 4.0); // diagonal dominance ⇒ nonsingular
        }
        let x_true: Vec<f64> = (0..n).map(|i| i as f64 - 3.0).collect();
        let mut rhs = m.mul_vec(&x_true);
        let mut lu = m.clone();
        lu.solve_in_place(&mut rhs).unwrap();
        for (xs, xt) in rhs.iter().zip(&x_true) {
            assert!((xs - xt).abs() < 1e-10, "{xs} vs {xt}");
        }
    }

    #[test]
    fn clear_keeps_dimension() {
        let mut m = DenseMatrix::zeros(4);
        m.set(2, 3, 5.0);
        m.clear();
        assert_eq!(m.dim(), 4);
        assert_eq!(m.get(2, 3), 0.0);
    }

    #[test]
    fn empty_system_is_ok() {
        let mut m = DenseMatrix::zeros(0);
        let mut rhs: Vec<f64> = vec![];
        m.solve_in_place(&mut rhs).unwrap();
    }

    /// Deterministic pseudo-random stream shared by the parity tests.
    fn lcg(seed: u64) -> impl FnMut() -> f64 {
        let mut state = seed;
        move || {
            state = state
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            ((state >> 33) as f64 / (1u64 << 31) as f64) - 1.0
        }
    }

    #[test]
    fn factored_solve_is_bitwise_identical_to_solve_in_place() {
        for (n, seed) in [(1usize, 7u64), (2, 11), (5, 13), (12, 17), (23, 19)] {
            let mut next = lcg(seed);
            let mut m = DenseMatrix::zeros(n);
            for r in 0..n {
                for c in 0..n {
                    m.set(r, c, next());
                }
            }
            // No diagonal boost: exercise real pivoting paths.
            let rhs0: Vec<f64> = (0..n).map(|_| next()).collect();

            let mut direct = rhs0.clone();
            m.clone().solve_in_place(&mut direct).unwrap();

            let mut lu = LuFactors::new(n);
            lu.factor_from(&m).unwrap();
            let mut replayed = rhs0.clone();
            lu.solve(&mut replayed);

            for (a, b) in direct.iter().zip(&replayed) {
                assert_eq!(a.to_bits(), b.to_bits(), "n={n} seed={seed}: {a} vs {b}");
            }
        }
    }

    #[test]
    fn factorization_reuse_across_many_rhs() {
        let n = 9;
        let mut next = lcg(29);
        let mut m = DenseMatrix::zeros(n);
        for r in 0..n {
            for c in 0..n {
                m.set(r, c, next());
            }
            m.add(r, r, 3.0);
        }
        let mut lu = LuFactors::new(n);
        lu.factor_from(&m).unwrap();
        assert_eq!(lu.dim(), n);
        for _ in 0..4 {
            let rhs0: Vec<f64> = (0..n).map(|_| next()).collect();
            let mut direct = rhs0.clone();
            m.clone().solve_in_place(&mut direct).unwrap();
            let mut replayed = rhs0;
            lu.solve(&mut replayed);
            for (a, b) in direct.iter().zip(&replayed) {
                assert_eq!(a.to_bits(), b.to_bits());
            }
        }
    }

    #[test]
    fn factor_from_reports_singular_at_same_row() {
        let mut m = DenseMatrix::zeros(2);
        m.set(0, 0, 1.0);
        m.set(0, 1, 2.0);
        m.set(1, 0, 2.0);
        m.set(1, 1, 4.0); // rank 1
        let mut lu = LuFactors::new(2);
        let got = lu.factor_from(&m);
        let mut rhs = vec![1.0, 2.0];
        let want = m.solve_in_place(&mut rhs);
        match (got, want) {
            (Err(Error::SingularMatrix { row: a }), Err(Error::SingularMatrix { row: b })) => {
                assert_eq!(a, b)
            }
            other => panic!("expected matching singular reports, got {other:?}"),
        }
    }

    #[test]
    fn factor_empty_system_is_ok() {
        let mut lu = LuFactors::new(0);
        lu.factor_from(&DenseMatrix::zeros(0)).unwrap();
        let mut rhs: Vec<f64> = vec![];
        lu.solve(&mut rhs);
    }

    // ------------------------------------------- SparseReplayLu

    /// Row-major bitmask pattern of `m`'s nonzeros, `ceil(n/64)` words
    /// per row (the format `SparseReplayLu::factor_with` expects).
    fn pattern_of(m: &DenseMatrix) -> Vec<u64> {
        let n = m.dim();
        let words = n.div_ceil(64);
        let mut pat = vec![0u64; n * words];
        for r in 0..n {
            for c in 0..n {
                if m.get(r, c) != 0.0 {
                    pat[r * words + c / 64] |= 1u64 << (c % 64);
                }
            }
        }
        pat
    }

    /// A sparse diagonally-loaded test matrix shaped like a small MNA
    /// system: diagonal plus a few off-diagonal couplings.
    fn sparse_system(n: usize, seed: u64) -> DenseMatrix {
        let mut next = lcg(seed);
        let mut m = DenseMatrix::zeros(n);
        for r in 0..n {
            m.set(r, r, 2.0 + next().abs());
            let c1 = (r + 1) % n;
            let c2 = (r * 3 + 1) % n;
            m.add(r, c1, next());
            m.add(r, c2, next());
        }
        m
    }

    #[test]
    fn sparse_replay_matches_dense_solution() {
        for (n, seed) in [(1usize, 31u64), (4, 37), (9, 41), (17, 43), (30, 47)] {
            let m = sparse_system(n, seed);
            let mut next = lcg(seed ^ 0xABCD);
            let rhs0: Vec<f64> = (0..n).map(|_| next()).collect();

            let mut direct = rhs0.clone();
            m.clone().solve_in_place(&mut direct).unwrap();

            let mut slu = SparseReplayLu::new(n);
            slu.factor_with(n, &pattern_of(&m), |buf| buf.copy_from_slice(m.as_slice()))
                .unwrap();
            let mut replayed = rhs0.clone();
            slu.solve(&mut replayed);

            for (i, (a, b)) in direct.iter().zip(&replayed).enumerate() {
                assert!(
                    (a - b).abs() <= 1e-12 * a.abs().max(1.0),
                    "n={n} seed={seed} x[{i}]: dense {a} vs replay {b}"
                );
            }
        }
    }

    #[test]
    fn sparse_replay_refactorization_is_deterministic_and_tracks_values() {
        let n = 12;
        let m = sparse_system(n, 53);
        let pat = pattern_of(&m);
        let mut slu = SparseReplayLu::new(n);
        slu.factor_with(n, &pat, |buf| buf.copy_from_slice(m.as_slice()))
            .unwrap();
        let mut a = vec![1.0; n];
        slu.solve(&mut a);

        // Same values again: the replayed factorization must reproduce
        // the recorded one bitwise (same swaps, same arithmetic).
        slu.factor_with(n, &pat, |buf| buf.copy_from_slice(m.as_slice()))
            .unwrap();
        let mut b = vec![1.0; n];
        slu.solve(&mut b);
        for (x, y) in a.iter().zip(&b) {
            assert_eq!(x.to_bits(), y.to_bits());
        }

        // Perturbed values inside the same pattern: the replay must track
        // them, agreeing with a fresh dense solve to rounding.
        let mut m2 = m.clone();
        for r in 0..n {
            m2.add(r, r, 0.25);
        }
        slu.factor_with(n, &pat, |buf| buf.copy_from_slice(m2.as_slice()))
            .unwrap();
        let mut replayed = vec![1.0; n];
        slu.solve(&mut replayed);
        let mut direct = vec![1.0; n];
        m2.solve_in_place(&mut direct).unwrap();
        for (x, y) in direct.iter().zip(&replayed) {
            assert!((x - y).abs() <= 1e-12 * x.abs().max(1.0), "{x} vs {y}");
        }
    }

    #[test]
    fn sparse_replay_falls_back_when_the_frozen_pivot_degrades() {
        // First factorization freezes a pivot order for this matrix…
        let n = 6;
        let mut m = DenseMatrix::zeros(n);
        for r in 0..n {
            m.set(r, r, 4.0);
            m.set(r, (r + 1) % n, 1.0);
        }
        let mut slu = SparseReplayLu::new(n);
        // Pattern must cover both value sets (dense here, which is an
        // allowed superset).
        let full = vec![u64::MAX; n];
        slu.factor_with(n, &full, |buf| buf.copy_from_slice(m.as_slice()))
            .unwrap();

        // …then the values shift so that order's first pivot collapses.
        // The replay must fail internally and transparently restructure
        // with fresh pivoting instead of surfacing an error.
        m.set(0, 0, 1e-18);
        m.set(0, 1, 3.0);
        m.set(1, 0, 2.0);
        slu.factor_with(n, &full, |buf| buf.copy_from_slice(m.as_slice()))
            .unwrap();
        let mut replayed = vec![1.0; n];
        slu.solve(&mut replayed);
        let mut direct = vec![1.0; n];
        m.clone().solve_in_place(&mut direct).unwrap();
        for (x, y) in direct.iter().zip(&replayed) {
            assert!((x - y).abs() <= 1e-10 * x.abs().max(1.0), "{x} vs {y}");
        }
    }

    #[test]
    fn sparse_replay_invalidate_structure_forces_rerecord() {
        let n = 8;
        let m = sparse_system(n, 59);
        let pat = pattern_of(&m);
        let mut slu = SparseReplayLu::new(n);
        slu.factor_with(n, &pat, |buf| buf.copy_from_slice(m.as_slice()))
            .unwrap();

        // A matrix with a *different* sparsity pattern is only legal after
        // invalidation (the caller's contract when the base plan rebuilds).
        let m2 = sparse_system(n, 61);
        slu.invalidate_structure();
        slu.factor_with(n, &pattern_of(&m2), |buf| {
            buf.copy_from_slice(m2.as_slice())
        })
        .unwrap();
        let mut replayed = vec![1.0; n];
        slu.solve(&mut replayed);
        let mut direct = vec![1.0; n];
        m2.clone().solve_in_place(&mut direct).unwrap();
        for (x, y) in direct.iter().zip(&replayed) {
            assert!((x - y).abs() <= 1e-12 * x.abs().max(1.0), "{x} vs {y}");
        }
    }

    #[test]
    fn sparse_replay_reports_singular_systems() {
        let n = 3;
        let mut m = DenseMatrix::zeros(n);
        // Row 2 is a copy of row 1: rank 2.
        m.set(0, 0, 1.0);
        m.set(1, 0, 2.0);
        m.set(1, 1, 1.0);
        m.set(2, 0, 2.0);
        m.set(2, 1, 1.0);
        let mut slu = SparseReplayLu::new(n);
        let got = slu.factor_with(n, &vec![u64::MAX; n], |buf| {
            buf.copy_from_slice(m.as_slice())
        });
        assert!(matches!(got, Err(Error::SingularMatrix { .. })), "{got:?}");
    }
}
