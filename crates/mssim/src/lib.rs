//! # mssim — a small SPICE-class analog circuit simulator
//!
//! `mssim` is a from-scratch analog/mixed-signal circuit simulation engine
//! built to reproduce the experiments of *"A Pulse Width Modulation based
//! Power-elastic and Robust Mixed-signal Perceptron Design"* (DATE 2019)
//! without a proprietary simulator. It provides:
//!
//! * a [`Circuit`] netlist builder with resistors, capacitors, independent
//!   sources, voltage-controlled switches, diodes and level-1 MOSFETs,
//! * time-domain [`Waveform`]s (DC, pulse/PWM, piecewise-linear, sine),
//! * modified nodal analysis (MNA) with a dense partial-pivoting LU solver,
//! * a unified [`Session`] entry point running every analysis — DC
//!   operating point (Newton–Raphson with gmin and source stepping), DC
//!   sweep, AC, noise and fixed-step trapezoidal / backward-Euler
//!   transient ([`analysis::Transient`]) — with shared lint pre-flight
//!   and observer registration,
//! * structured instrumentation ([`telemetry`]): counters, histograms and
//!   typed events from the homotopy, Newton and stepping loops, at zero
//!   cost when no observer is attached,
//! * waveform post-processing ([`trace::Trace`]: averages, ripple, RMS,
//!   settling detection),
//! * parallel parameter sweeps and Monte-Carlo drivers ([`sweep`]),
//! * pre-flight static analysis of netlists ([`lint`]): singular-matrix
//!   topologies are rejected with named nodes/elements before any solve,
//! * static verification ([`verify`]): structural-solvability analysis
//!   (bipartite matching + Dulmage–Mendelsohn) and a stamp-plan verifier
//!   that proves compiled plans sound before Newton ever runs,
//! * numeric abstract interpretation ([`analyze`]): interval analysis of
//!   compiled stamp plans over declared parameter ranges (singular or
//!   sign-indefinite pivots, overflow, cancellation, certified condition
//!   bounds), a Krawczyk interval solver turning abstract stamps into
//!   guaranteed DC solution enclosures with static verdict triage
//!   ([`triage_circuit`]), plus static fault collapsing for campaign
//!   universes,
//! * a transient convergence-rescue ladder
//!   ([`Session::transient_rescued`]): timestep cutting, backward-Euler
//!   fallback and per-point gmin shunting, degrading gracefully to a
//!   partial waveform instead of aborting,
//! * non-destructive fault injection ([`faults`]): stuck switches and
//!   MOSFETs, open/shorted/drifted resistors, leaky capacitors, net
//!   bridges, supply brownout and PWM jitter, applied to a copy of a
//!   borrowed circuit for robustness campaigns.
//!
//! The engine follows the same numerical formulation as the core loop of a
//! production SPICE: nonlinear devices are linearised around the current
//! iterate and stamped as Norton companions, reactive elements become
//! integration companions, and the resulting linear system is solved by LU
//! factorisation each Newton iteration.
//!
//! ## Quickstart: an RC low-pass step response
//!
//! ```
//! use mssim::prelude::*;
//!
//! # fn main() -> Result<(), mssim::Error> {
//! let mut ckt = Circuit::new();
//! let vin = ckt.node("in");
//! let out = ckt.node("out");
//! ckt.vsource("V1", vin, Circuit::GND, Waveform::dc(1.0));
//! ckt.resistor("R1", vin, out, 1e3);
//! ckt.capacitor("C1", out, Circuit::GND, 1e-6);
//!
//! let tran = Transient::new(1e-5, 10e-3).use_initial_conditions();
//! let result = Session::new(&ckt).transient(&tran)?;
//! let v_end = result.voltage(out).last_value();
//! assert!((v_end - 1.0).abs() < 1e-3); // fully charged after 10 tau
//! # Ok(())
//! # }
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod analysis;
pub mod analyze;
pub mod complex;
pub mod elements;
pub mod error;
pub mod export;
pub mod faults;
pub mod linear;
pub mod lint;
pub mod netlist;
pub mod session;
pub mod sweep;
pub mod telemetry;
pub mod trace;
pub mod units;
pub mod verify;
pub mod waveform;

pub use analyze::{
    analyze_circuit, triage_circuit, AnalyzeReport, Ranges, StaticVerdict, TriageVerdict,
    VerdictBands,
};
pub use error::Error;
pub use netlist::{Circuit, ElementId, NodeId};
pub use session::Session;
pub use verify::{verify_circuit, PlanCode, PlanViolation, VerifyReport};
pub use waveform::Waveform;

/// Commonly used items, for glob import in examples and tests.
pub mod prelude {
    pub use crate::analysis::{
        AcResult, AdaptiveConfig, DcSolution, DcSweepResult, IntegrationMethod, NoiseResult,
        RescueIncident, RescuePolicy, RescueReport, Solution, Transient, TransientOutcome,
        TransientResult,
    };
    pub use crate::analyze::{
        analyze_circuit, collapse_faults, dc_enclosure, plan_key, solve_enclosure, triage_circuit,
        AnalyzeReport, Collapse, CollapseMember, DcEnclosure, Enclosure, Interval, Ranges,
        StaticVerdict, TriageVerdict, VerdictBands,
    };
    pub use crate::elements::{MosParams, MosPolarity};
    pub use crate::error::Error;
    pub use crate::faults::{Fault, LabeledFault};
    pub use crate::lint::{lint, LintCode, LintConfig, LintReport, Severity};
    pub use crate::netlist::{Circuit, ElementId, NodeId};
    pub use crate::session::Session;
    pub use crate::telemetry::{JsonlWriter, MemoryRecorder, Observer, Summary, Tee};
    pub use crate::trace::Trace;
    pub use crate::units::*;
    pub use crate::verify::{verify_circuit, PlanCode, PlanViolation, VerifyReport};
    pub use crate::waveform::Waveform;
}
