//! Parameter sweeps and Monte-Carlo drivers.
//!
//! These helpers parallelise the embarrassingly-parallel outer loops of the
//! paper's experiments (duty-cycle sweeps, frequency sweeps, supply sweeps,
//! mismatch Monte Carlo) over the available cores using std scoped
//! threads. Result order always matches input order.

use std::time::Instant;

use rand::rngs::StdRng;
use rand::SeedableRng;

use crate::telemetry::{dispatch, Event, Observer};

/// The work-stealing fan-out behind [`sweep`] and [`sweep_observed`]: runs
/// `f(point, index, worker)` on every point across `threads` workers,
/// scattering results back into input order.
fn sweep_core<P, T, F>(points: &[P], threads: usize, f: F) -> Vec<T>
where
    P: Sync,
    T: Send,
    F: Fn(&P, usize, usize) -> T + Sync,
{
    use std::sync::atomic::{AtomicUsize, Ordering};

    let n = points.len();
    if n == 0 {
        return Vec::new();
    }
    if threads <= 1 {
        return points.iter().enumerate().map(|(i, p)| f(p, i, 0)).collect();
    }

    let next = AtomicUsize::new(0);
    let mut partials: Vec<Vec<(usize, T)>> = Vec::with_capacity(threads);
    std::thread::scope(|scope| {
        let mut handles = Vec::with_capacity(threads);
        for worker in 0..threads {
            let f = &f;
            let next = &next;
            handles.push(scope.spawn(move || {
                let mut local: Vec<(usize, T)> = Vec::new();
                loop {
                    let idx = next.fetch_add(1, Ordering::Relaxed);
                    if idx >= n {
                        break;
                    }
                    local.push((idx, f(&points[idx], idx, worker)));
                }
                local
            }));
        }
        for handle in handles {
            match handle.join() {
                Ok(local) => partials.push(local),
                // Re-raise worker panics with their original payload.
                Err(payload) => std::panic::resume_unwind(payload),
            }
        }
    });

    // Scatter the tagged results back into input order.
    let mut slots: Vec<Option<T>> = (0..n).map(|_| None).collect();
    for (idx, value) in partials.into_iter().flatten() {
        debug_assert!(slots[idx].is_none(), "point {idx} computed twice");
        slots[idx] = Some(value);
    }
    slots
        .into_iter()
        .map(|s| s.expect("sweep slot unfilled"))
        .collect()
}

/// Runs `f` on every point, in parallel, preserving order.
///
/// The closure receives a reference to the point and its index. Panics in
/// worker threads are propagated.
///
/// Workers pull the next unclaimed point from a shared atomic counter
/// instead of owning a contiguous chunk, so heterogeneous workloads (a
/// frequency sweep where the low-frequency transients run 100× longer
/// than the high-frequency ones, say) spread across all cores instead of
/// serialising on whichever worker drew the expensive stretch.
///
/// # Examples
///
/// ```
/// let squares = mssim::sweep::sweep(&[1.0, 2.0, 3.0], |&x, _| x * x);
/// assert_eq!(squares, vec![1.0, 4.0, 9.0]);
/// ```
pub fn sweep<P, T, F>(points: &[P], f: F) -> Vec<T>
where
    P: Sync,
    T: Send,
    F: Fn(&P, usize) -> T + Sync,
{
    let threads = available_threads().min(points.len());
    sweep_core(points, threads, |p, i, _| f(p, i))
}

/// [`sweep`] with telemetry: emits one
/// [`Event::SweepPoint`](crate::telemetry::Event) per point (index,
/// wall-clock nanoseconds, executing worker) plus a `sweep.steals` counter
/// for every point that ran on a different worker than static chunking
/// would have assigned it — a direct measure of how much the work-stealing
/// queue rebalanced a skewed workload.
///
/// Workers record timings locally; the observer is invoked serially after
/// the join, in input order, so it needs no synchronisation.
///
/// # Examples
///
/// ```
/// use mssim::telemetry::MemoryRecorder;
///
/// let mut rec = MemoryRecorder::new();
/// let squares = mssim::sweep::sweep_observed(&[1.0, 2.0], &mut rec, |&x, _| x * x);
/// assert_eq!(squares, vec![1.0, 4.0]);
/// assert_eq!(rec.counter_value("sweep.points"), 2);
/// ```
pub fn sweep_observed<P, T, F>(points: &[P], observer: &mut dyn Observer, f: F) -> Vec<T>
where
    P: Sync,
    T: Send,
    F: Fn(&P, usize) -> T + Sync,
{
    let n = points.len();
    let threads = available_threads().min(n);
    let timed = sweep_core(points, threads, |p, i, worker| {
        let start = Instant::now();
        let value = f(p, i);
        (value, start.elapsed().as_nanos() as u64, worker)
    });
    let mut out = Vec::with_capacity(n);
    for (index, (value, wall_ns, thread)) in timed.into_iter().enumerate() {
        dispatch(
            observer,
            &Event::SweepPoint {
                index,
                wall_ns,
                thread,
            },
        );
        // The worker that would own this point if the range were split
        // into contiguous equal chunks.
        let owner = index * threads.max(1) / n;
        if thread != owner {
            observer.counter("sweep.steals", 1);
        }
        out.push(value);
    }
    out
}

/// Runs `trials` Monte-Carlo evaluations in parallel.
///
/// Each trial gets its own deterministic RNG derived from `seed` and the
/// trial index, so results are reproducible regardless of thread count.
///
/// # Examples
///
/// ```
/// use rand::Rng;
/// let xs = mssim::sweep::monte_carlo(100, 42, |rng, _| rng.gen_range(0.0..1.0));
/// assert_eq!(xs.len(), 100);
/// // Deterministic: same seed, same values.
/// let ys = mssim::sweep::monte_carlo(100, 42, |rng, _| rng.gen_range(0.0..1.0));
/// assert_eq!(xs, ys);
/// ```
pub fn monte_carlo<T, F>(trials: usize, seed: u64, f: F) -> Vec<T>
where
    T: Send,
    F: Fn(&mut StdRng, usize) -> T + Sync,
{
    let indices: Vec<usize> = (0..trials).collect();
    sweep(&indices, |&i, _| {
        let mut rng = trial_rng(seed, i);
        f(&mut rng, i)
    })
}

/// [`monte_carlo`] with telemetry: per-trial wall times, worker indices
/// and steal counts, delivered exactly as by [`sweep_observed`]. Trial
/// results are identical to [`monte_carlo`] with the same seed.
pub fn monte_carlo_observed<T, F>(
    trials: usize,
    seed: u64,
    observer: &mut dyn Observer,
    f: F,
) -> Vec<T>
where
    T: Send,
    F: Fn(&mut StdRng, usize) -> T + Sync,
{
    let indices: Vec<usize> = (0..trials).collect();
    sweep_observed(&indices, observer, |&i, _| {
        let mut rng = trial_rng(seed, i);
        f(&mut rng, i)
    })
}

/// Deterministic per-trial RNG: `StdRng` seeded by a SplitMix64 hash of
/// `(seed, trial)`.
pub fn trial_rng(seed: u64, trial: usize) -> StdRng {
    let mut z = seed ^ (trial as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^= z >> 31;
    StdRng::seed_from_u64(z)
}

/// Generates `n` evenly spaced points covering `[start, stop]` inclusive.
///
/// # Panics
///
/// Panics if `n < 2`.
///
/// # Examples
///
/// ```
/// let pts = mssim::sweep::linspace(0.0, 1.0, 5);
/// assert_eq!(pts, vec![0.0, 0.25, 0.5, 0.75, 1.0]);
/// ```
pub fn linspace(start: f64, stop: f64, n: usize) -> Vec<f64> {
    assert!(n >= 2, "linspace needs at least two points");
    (0..n)
        .map(|i| start + (stop - start) * i as f64 / (n - 1) as f64)
        .collect()
}

/// Generates `n` logarithmically spaced points covering `[start, stop]`
/// inclusive.
///
/// # Panics
///
/// Panics if `n < 2` or either endpoint is not strictly positive.
///
/// # Examples
///
/// ```
/// let pts = mssim::sweep::logspace(1.0, 100.0, 3);
/// assert!((pts[1] - 10.0).abs() < 1e-9);
/// ```
pub fn logspace(start: f64, stop: f64, n: usize) -> Vec<f64> {
    assert!(n >= 2, "logspace needs at least two points");
    assert!(
        start > 0.0 && stop > 0.0,
        "logspace endpoints must be positive"
    );
    let (l0, l1) = (start.ln(), stop.ln());
    (0..n)
        .map(|i| (l0 + (l1 - l0) * i as f64 / (n - 1) as f64).exp())
        .collect()
}

fn available_threads() -> usize {
    std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1)
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::Rng;

    #[test]
    fn sweep_preserves_order() {
        let points: Vec<u64> = (0..1000).collect();
        let out = sweep(&points, |&p, i| {
            assert_eq!(p, i as u64);
            p * 2
        });
        assert_eq!(out.len(), 1000);
        for (i, v) in out.iter().enumerate() {
            assert_eq!(*v, 2 * i as u64);
        }
    }

    /// A grossly skewed workload (first point far more expensive than the
    /// rest, as in a frequency sweep's low-frequency transients) must still
    /// come back in input order with every point computed exactly once.
    #[test]
    fn sweep_order_is_stable_under_skewed_workloads() {
        let points: Vec<u64> = (0..256).collect();
        let out = sweep(&points, |&p, i| {
            assert_eq!(p, i as u64);
            if i == 0 {
                // Busy work so the other workers drain the queue first.
                let mut acc = 0u64;
                for k in 0..2_000_000u64 {
                    acc = acc.wrapping_mul(6364136223846793005).wrapping_add(k);
                }
                std::hint::black_box(acc);
            }
            p * 3
        });
        assert_eq!(out.len(), 256);
        for (i, v) in out.iter().enumerate() {
            assert_eq!(*v, 3 * i as u64);
        }
    }

    #[test]
    fn sweep_worker_panics_propagate() {
        let points: Vec<u64> = (0..64).collect();
        let caught = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            sweep(&points, |&p, _| {
                assert!(p != 17, "boom at 17");
                p
            })
        }));
        assert!(caught.is_err(), "worker panic must propagate");
    }

    #[test]
    fn sweep_empty_and_single() {
        let empty: Vec<f64> = sweep(&[] as &[f64], |&x, _| x);
        assert!(empty.is_empty());
        let one = sweep(&[7.0], |&x, _| x + 1.0);
        assert_eq!(one, vec![8.0]);
    }

    #[test]
    fn monte_carlo_is_deterministic_and_decorrelated() {
        let a = monte_carlo(50, 7, |rng, _| rng.gen::<f64>());
        let b = monte_carlo(50, 7, |rng, _| rng.gen::<f64>());
        assert_eq!(a, b);
        // Different trials see different streams.
        assert!(a.windows(2).any(|w| w[0] != w[1]));
        // Different seeds see different streams.
        let c = monte_carlo(50, 8, |rng, _| rng.gen::<f64>());
        assert_ne!(a, c);
    }

    #[test]
    fn linspace_endpoints() {
        let pts = linspace(-1.0, 1.0, 11);
        assert_eq!(pts.len(), 11);
        assert_eq!(pts[0], -1.0);
        assert_eq!(pts[10], 1.0);
        assert!((pts[5] - 0.0).abs() < 1e-15);
    }

    #[test]
    fn logspace_is_geometric() {
        let pts = logspace(1e6, 1e9, 4);
        assert!((pts[0] - 1e6).abs() / 1e6 < 1e-12);
        assert!((pts[3] - 1e9).abs() / 1e9 < 1e-12);
        let r1 = pts[1] / pts[0];
        let r2 = pts[2] / pts[1];
        assert!((r1 - r2).abs() / r1 < 1e-9);
    }

    #[test]
    #[should_panic(expected = "at least two points")]
    fn linspace_rejects_single_point() {
        let _ = linspace(0.0, 1.0, 1);
    }

    #[test]
    fn trial_rng_distinct_streams() {
        let x: f64 = trial_rng(1, 0).gen();
        let y: f64 = trial_rng(1, 1).gen();
        assert_ne!(x, y);
    }

    #[test]
    fn sweep_observed_matches_sweep_and_counts_every_point() {
        use crate::telemetry::{Event, MemoryRecorder};
        let points: Vec<u64> = (0..128).collect();
        let plain = sweep(&points, |&p, _| p * 2);
        let mut rec = MemoryRecorder::new();
        let observed = sweep_observed(&points, &mut rec, |&p, _| p * 2);
        assert_eq!(plain, observed);
        assert_eq!(rec.counter_value("sweep.points"), 128);
        assert_eq!(rec.histogram_values("sweep.wall_ns").len(), 128);
        // Events arrive serially in input order.
        let indices: Vec<usize> = rec
            .events()
            .iter()
            .filter_map(|e| match e {
                Event::SweepPoint { index, .. } => Some(*index),
                _ => None,
            })
            .collect();
        assert_eq!(indices, (0..128).collect::<Vec<_>>());
    }

    #[test]
    fn monte_carlo_observed_is_deterministic() {
        use crate::telemetry::MemoryRecorder;
        let plain = monte_carlo(50, 7, |rng, _| rng.gen::<f64>());
        let mut rec = MemoryRecorder::new();
        let observed = monte_carlo_observed(50, 7, &mut rec, |rng, _| rng.gen::<f64>());
        assert_eq!(plain, observed);
        assert_eq!(rec.counter_value("sweep.points"), 50);
    }
}
