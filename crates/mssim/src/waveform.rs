//! Time-domain source waveforms.
//!
//! A [`Waveform`] describes the value of an independent source as a function
//! of time. The pulse waveform follows the SPICE `PULSE` convention and has
//! a convenience constructor [`Waveform::pwm`] for the duty-cycle-coded
//! signals that carry information in the PWM perceptron.

/// Value of an independent source over time.
#[derive(Debug, Clone, PartialEq)]
#[non_exhaustive]
pub enum Waveform {
    /// Constant value.
    Dc(f64),
    /// Periodic trapezoidal pulse (SPICE `PULSE` semantics).
    Pulse(Pulse),
    /// Piecewise-linear interpolation through `(time, value)` points;
    /// constant extrapolation outside the point range.
    Pwl(Vec<(f64, f64)>),
    /// Sinusoid `offset + amplitude * sin(2π f (t - delay))` for `t >= delay`.
    Sine {
        /// DC offset.
        offset: f64,
        /// Peak amplitude.
        amplitude: f64,
        /// Frequency in hertz.
        frequency: f64,
        /// Start delay in seconds.
        delay: f64,
    },
}

/// Periodic trapezoidal pulse parameters (SPICE `PULSE` semantics).
///
/// One period starting at `t = delay` consists of: `rise` seconds ramping
/// from `low` to `high`, `width` seconds at `high`, `fall` seconds ramping
/// back to `low`, and the remainder of `period` at `low`. Before `delay`
/// the value is `low`.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Pulse {
    /// Initial / low value.
    pub low: f64,
    /// Pulsed / high value.
    pub high: f64,
    /// Delay before the first rising edge, seconds.
    pub delay: f64,
    /// Rise time, seconds.
    pub rise: f64,
    /// Fall time, seconds.
    pub fall: f64,
    /// Time at the high value, seconds.
    pub width: f64,
    /// Repetition period, seconds.
    pub period: f64,
}

impl Pulse {
    /// Instantaneous value at time `t`.
    pub fn value(&self, t: f64) -> f64 {
        if t < self.delay || self.period <= 0.0 {
            return self.low;
        }
        let tp = (t - self.delay) % self.period;
        if tp < self.rise {
            let frac = if self.rise > 0.0 { tp / self.rise } else { 1.0 };
            self.low + (self.high - self.low) * frac
        } else if tp < self.rise + self.width {
            self.high
        } else if tp < self.rise + self.width + self.fall {
            let frac = if self.fall > 0.0 {
                (tp - self.rise - self.width) / self.fall
            } else {
                1.0
            };
            self.high + (self.low - self.high) * frac
        } else {
            self.low
        }
    }

    /// Fraction of each period spent high, counting half of each edge.
    pub fn duty_cycle(&self) -> f64 {
        if self.period <= 0.0 {
            return 0.0;
        }
        (self.width + 0.5 * (self.rise + self.fall)) / self.period
    }
}

/// Deterministic jitter description for [`Waveform::pwm_with_jitter`].
///
/// All randomness derives from `seed` through a SplitMix64 stream, so two
/// waveforms built from equal specs are bitwise identical — campaigns
/// stay reproducible.
#[derive(Debug, Clone, PartialEq)]
pub struct Jitter {
    /// Seed of the per-edge offset stream.
    pub seed: u64,
    /// Peak edge displacement as a fraction of the period: each edge
    /// moves by an independent uniform offset in `±edge_jitter` periods.
    pub edge_jitter: f64,
    /// Probability (0..=1) that a period's duty cycle glitches.
    pub glitch_probability: f64,
    /// Signed duty shift applied on a glitched period (result clamped to
    /// `0..=1`).
    pub glitch_duty: f64,
    /// Number of PWM periods materialised; the line parks low afterwards.
    pub periods: usize,
}

impl Jitter {
    /// Pure edge jitter (no glitches) over `periods` periods.
    pub fn edges(seed: u64, edge_jitter: f64, periods: usize) -> Self {
        Jitter {
            seed,
            edge_jitter,
            glitch_probability: 0.0,
            glitch_duty: 0.0,
            periods,
        }
    }
}

/// SplitMix64 step returning a uniform sample in `[0, 1)`.
fn splitmix_uniform(state: &mut u64) -> f64 {
    *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^= z >> 31;
    (z >> 11) as f64 / (1u64 << 53) as f64
}

impl Waveform {
    /// Constant waveform.
    pub fn dc(value: f64) -> Self {
        Waveform::Dc(value)
    }

    /// PWM clock: a 0→`amplitude` pulse train at `frequency` hertz with the
    /// given `duty` cycle (0..=1) and edge times of 1 % of the period.
    ///
    /// The effective duty cycle (time-average of the waveform divided by the
    /// amplitude) equals `duty` exactly because the flat-top width is
    /// shortened to compensate for the trapezoidal edges. Duty cycles that
    /// would make the flat top negative are clamped so the waveform stays
    /// well formed.
    ///
    /// # Panics
    ///
    /// Panics if `frequency <= 0`, `amplitude < 0`, or `duty` is outside
    /// `0.0..=1.0`.
    pub fn pwm(amplitude: f64, frequency: f64, duty: f64) -> Self {
        Self::pwm_with_edges(amplitude, frequency, duty, 0.01)
    }

    /// PWM clock with edge (rise = fall) times expressed as a fraction of
    /// the period.
    ///
    /// # Panics
    ///
    /// Panics on out-of-domain arguments (see [`Waveform::pwm`]) or if
    /// `edge_fraction` is not in `0.0..0.5`.
    pub fn pwm_with_edges(amplitude: f64, frequency: f64, duty: f64, edge_fraction: f64) -> Self {
        assert!(frequency > 0.0, "pwm frequency must be positive");
        assert!(amplitude >= 0.0, "pwm amplitude must be non-negative");
        assert!((0.0..=1.0).contains(&duty), "duty cycle must be in 0..=1");
        assert!(
            (0.0..0.5).contains(&edge_fraction),
            "edge fraction must be in 0..0.5"
        );
        // A 0 % or 100 % duty cycle is no pulse train at all: a real
        // generator parks the line at the rail.
        if duty == 0.0 {
            return Waveform::Dc(0.0);
        }
        if duty == 1.0 {
            return Waveform::Dc(amplitude);
        }
        let period = 1.0 / frequency;
        let edge = edge_fraction * period;
        // width chosen so that width + (rise+fall)/2 = duty * period
        let width = (duty * period - edge).clamp(0.0, period - 2.0 * edge);
        Waveform::Pulse(Pulse {
            low: 0.0,
            high: amplitude,
            delay: 0.0,
            rise: edge,
            fall: edge,
            width,
            period,
        })
    }

    /// PWM clock with deterministic per-edge timing jitter and optional
    /// duty glitches, materialised as a piecewise-linear waveform.
    ///
    /// Each rising and falling edge of each period is displaced by an
    /// independent uniform offset in `±jitter.edge_jitter` periods, drawn
    /// from a SplitMix64 stream seeded with `jitter.seed` — the same seed
    /// always produces the bitwise-identical waveform. A period may
    /// additionally *glitch*: with probability `jitter.glitch_probability`
    /// its duty cycle is shifted by `jitter.glitch_duty`. Because the
    /// edge offsets are symmetric and independent, the mean duty cycle
    /// over many periods is preserved (up to the glitch contribution).
    ///
    /// The waveform is finite: `jitter.periods` periods are emitted and
    /// the line parks low afterwards (PWL constant extrapolation). Since
    /// PWL points are breakpoints, adaptive transient analysis snaps to
    /// the *jittered* edges, not the nominal ones.
    ///
    /// # Panics
    ///
    /// Panics on out-of-domain arguments (see [`Waveform::pwm`]), if
    /// `edge_fraction` is not in `0.0..0.5` (strictly positive: a PWL
    /// edge cannot be vertical), or on an invalid [`Jitter`] (negative
    /// fields, `edge_jitter >= 0.25`, probability outside `0..=1`, or
    /// zero periods).
    pub fn pwm_with_jitter(
        amplitude: f64,
        frequency: f64,
        duty: f64,
        edge_fraction: f64,
        jitter: &Jitter,
    ) -> Self {
        assert!(frequency > 0.0, "pwm frequency must be positive");
        assert!(amplitude >= 0.0, "pwm amplitude must be non-negative");
        assert!((0.0..=1.0).contains(&duty), "duty cycle must be in 0..=1");
        assert!(
            edge_fraction > 0.0 && edge_fraction < 0.5,
            "edge fraction must be in 0.0..0.5 and nonzero for a jittered pwm"
        );
        assert!(
            (0.0..0.25).contains(&jitter.edge_jitter),
            "edge jitter must be in 0.0..0.25 periods"
        );
        assert!(
            (0.0..=1.0).contains(&jitter.glitch_probability),
            "glitch probability must be in 0..=1"
        );
        assert!(
            jitter.glitch_duty.is_finite(),
            "glitch duty shift must be finite"
        );
        assert!(jitter.periods > 0, "jittered pwm needs at least one period");

        let period = 1.0 / frequency;
        let edge = edge_fraction * period;
        // Minimum spacing keeping PWL times strictly increasing even when
        // jitter pushes edges together.
        let gap = period * 1e-9;
        let mut state = jitter.seed ^ 0x9E37_79B9_7F4A_7C15;
        let mut points: Vec<(f64, f64)> = vec![(0.0, 0.0)];
        let push = |points: &mut Vec<(f64, f64)>, t: f64, v: f64| {
            let last_t = points.last().map_or(0.0, |p| p.0);
            points.push((t.max(last_t + gap), v));
        };
        for p in 0..jitter.periods {
            let t0 = p as f64 * period;
            let mut duty_p = duty;
            if jitter.glitch_probability > 0.0
                && splitmix_uniform(&mut state) < jitter.glitch_probability
            {
                duty_p = (duty + jitter.glitch_duty).clamp(0.0, 1.0);
            }
            let jr = (2.0 * splitmix_uniform(&mut state) - 1.0) * jitter.edge_jitter * period;
            let jf = (2.0 * splitmix_uniform(&mut state) - 1.0) * jitter.edge_jitter * period;
            // Nominal corners mirror `pwm_with_edges`: the flat top is
            // shortened so duty counts half of each edge.
            let width = (duty_p * period - edge).clamp(0.0, period - 2.0 * edge);
            if width <= 0.0 {
                continue; // period glitched to (near-)zero duty: stay low
            }
            let rise_start = t0 + jr;
            let fall_start = rise_start + edge + width + jf;
            push(&mut points, rise_start, 0.0);
            push(&mut points, rise_start + edge, amplitude);
            push(&mut points, fall_start, amplitude);
            push(&mut points, fall_start + edge, 0.0);
        }
        // Terminal point so the constant extrapolation parks the line low.
        let t_end = jitter.periods as f64 * period;
        push(&mut points, t_end, 0.0);
        Waveform::pwl(points)
    }

    /// Piecewise-linear waveform through the given `(time, value)` points.
    ///
    /// # Panics
    ///
    /// Panics if `points` is empty or the times are not strictly increasing.
    pub fn pwl(points: Vec<(f64, f64)>) -> Self {
        assert!(!points.is_empty(), "pwl requires at least one point");
        for pair in points.windows(2) {
            assert!(
                pair[1].0 > pair[0].0,
                "pwl times must be strictly increasing"
            );
        }
        Waveform::Pwl(points)
    }

    /// Sinusoid `offset + amplitude·sin(2πf(t−delay))` for `t ≥ delay`.
    pub fn sine(offset: f64, amplitude: f64, frequency: f64) -> Self {
        Waveform::Sine {
            offset,
            amplitude,
            frequency,
            delay: 0.0,
        }
    }

    /// Instantaneous value at time `t` (seconds).
    pub fn value(&self, t: f64) -> f64 {
        match self {
            Waveform::Dc(v) => *v,
            Waveform::Pulse(p) => p.value(t),
            Waveform::Pwl(points) => pwl_value(points, t),
            Waveform::Sine {
                offset,
                amplitude,
                frequency,
                delay,
            } => {
                if t < *delay {
                    *offset
                } else {
                    offset
                        + amplitude * (2.0 * std::f64::consts::PI * frequency * (t - delay)).sin()
                }
            }
        }
    }

    /// Value at `t = 0`, used as the DC operating-point drive.
    pub fn initial_value(&self) -> f64 {
        self.value(0.0)
    }

    /// Repetition period, if the waveform is periodic.
    pub fn period(&self) -> Option<f64> {
        match self {
            Waveform::Pulse(p) if p.period > 0.0 => Some(p.period),
            Waveform::Sine { frequency, .. } if *frequency > 0.0 => Some(1.0 / frequency),
            _ => None,
        }
    }

    /// The next *breakpoint* strictly after time `t`: an instant where the
    /// waveform's slope changes discontinuously (pulse corners, PWL
    /// points). Adaptive transient analysis must not step across these,
    /// or a whole pulse could be skipped. Smooth waveforms return `None`.
    pub fn next_breakpoint(&self, t: f64) -> Option<f64> {
        const EPS_REL: f64 = 1e-12;
        match self {
            Waveform::Dc(_) | Waveform::Sine { .. } => None,
            Waveform::Pulse(p) => {
                if p.period <= 0.0 {
                    return None;
                }
                let eps = p.period * EPS_REL;
                // Corners within one period, relative to the delay.
                let corners = [0.0, p.rise, p.rise + p.width, p.rise + p.width + p.fall];
                if t < p.delay - eps {
                    return Some(p.delay);
                }
                let base = ((t - p.delay) / p.period).floor() * p.period + p.delay;
                for cycle in [base, base + p.period] {
                    for &c in &corners {
                        let bp = cycle + c;
                        if bp > t + eps {
                            return Some(bp);
                        }
                    }
                }
                None
            }
            Waveform::Pwl(points) => points
                .iter()
                .map(|&(pt, _)| pt)
                .find(|&pt| pt > t * (1.0 + EPS_REL) + f64::MIN_POSITIVE),
        }
    }
}

impl Default for Waveform {
    fn default() -> Self {
        Waveform::Dc(0.0)
    }
}

impl From<f64> for Waveform {
    fn from(value: f64) -> Self {
        Waveform::Dc(value)
    }
}

fn pwl_value(points: &[(f64, f64)], t: f64) -> f64 {
    match points {
        [] => 0.0,
        [only] => only.1,
        _ => {
            if t <= points[0].0 {
                return points[0].1;
            }
            if t >= points[points.len() - 1].0 {
                return points[points.len() - 1].1;
            }
            let idx = points.partition_point(|&(pt, _)| pt <= t);
            let (t0, v0) = points[idx - 1];
            let (t1, v1) = points[idx];
            v0 + (v1 - v0) * (t - t0) / (t1 - t0)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn dc_is_constant() {
        let w = Waveform::dc(2.5);
        assert_eq!(w.value(0.0), 2.5);
        assert_eq!(w.value(1.0), 2.5);
        assert_eq!(w.period(), None);
    }

    #[test]
    fn pwm_levels_and_period() {
        let w = Waveform::pwm(2.5, 500e6, 0.5);
        let period = w.period().expect("pwm is periodic");
        assert!((period - 2e-9).abs() < 1e-18);
        // Middle of the high phase.
        assert!((w.value(0.5e-9) - 2.5).abs() < 1e-12);
        // Low phase.
        assert!(w.value(1.8e-9).abs() < 1e-12);
    }

    #[test]
    fn pwm_effective_duty_matches_request() {
        for &duty in &[0.1, 0.25, 0.5, 0.75, 0.9] {
            let w = Waveform::pwm(1.0, 1e6, duty);
            if let Waveform::Pulse(p) = &w {
                assert!(
                    (p.duty_cycle() - duty).abs() < 1e-12,
                    "duty {duty} produced {}",
                    p.duty_cycle()
                );
            } else {
                panic!("pwm should be a pulse");
            }
        }
    }

    #[test]
    fn pwm_numerical_average_matches_duty() {
        let duty = 0.3;
        let w = Waveform::pwm(2.0, 1e6, duty);
        let period = w.period().unwrap();
        let n = 100_000;
        let mut sum = 0.0;
        for i in 0..n {
            let t = period * (i as f64 + 0.5) / n as f64;
            sum += w.value(t);
        }
        let avg = sum / n as f64;
        assert!(
            (avg - 2.0 * duty).abs() < 1e-3,
            "average {avg} vs expected {}",
            2.0 * duty
        );
    }

    #[test]
    fn pwm_extreme_duty_cycles_are_well_formed() {
        let w0 = Waveform::pwm(1.0, 1e6, 0.0);
        let w1 = Waveform::pwm(1.0, 1e6, 1.0);
        // Duty 0: almost always low; duty 1: flat top fills the period
        // minus edges.
        assert!(w0.value(0.5e-6) < 0.6); // middle of period
        assert!(w1.value(0.5e-6) > 0.99);
    }

    #[test]
    fn pulse_edges_are_linear() {
        let p = Pulse {
            low: 0.0,
            high: 1.0,
            delay: 0.0,
            rise: 0.2,
            fall: 0.2,
            width: 0.3,
            period: 1.0,
        };
        assert!((p.value(0.1) - 0.5).abs() < 1e-12); // mid-rise
        assert!((p.value(0.3) - 1.0).abs() < 1e-12); // top
        assert!((p.value(0.6) - 0.5).abs() < 1e-12); // mid-fall
        assert!(p.value(0.9).abs() < 1e-12); // low tail
        assert!((p.value(1.1) - 0.5).abs() < 1e-12); // periodic repeat
    }

    #[test]
    fn pulse_respects_delay() {
        let p = Pulse {
            low: 0.0,
            high: 1.0,
            delay: 1.0,
            rise: 0.0,
            fall: 0.0,
            width: 0.5,
            period: 1.0,
        };
        assert_eq!(p.value(0.5), 0.0);
        assert_eq!(p.value(1.25), 1.0);
    }

    #[test]
    fn pwl_interpolates_and_clamps() {
        let w = Waveform::pwl(vec![(0.0, 0.0), (1.0, 2.0), (2.0, 1.0)]);
        assert_eq!(w.value(-1.0), 0.0);
        assert!((w.value(0.5) - 1.0).abs() < 1e-12);
        assert!((w.value(1.5) - 1.5).abs() < 1e-12);
        assert_eq!(w.value(5.0), 1.0);
    }

    #[test]
    #[should_panic(expected = "strictly increasing")]
    fn pwl_rejects_unsorted_points() {
        let _ = Waveform::pwl(vec![(0.0, 0.0), (0.0, 1.0)]);
    }

    #[test]
    fn sine_value() {
        let w = Waveform::sine(1.0, 0.5, 1.0);
        assert!((w.value(0.25) - 1.5).abs() < 1e-12);
        assert!((w.value(0.75) - 0.5).abs() < 1e-12);
        assert_eq!(w.period(), Some(1.0));
    }

    #[test]
    #[should_panic(expected = "duty cycle must be in 0..=1")]
    fn pwm_rejects_bad_duty() {
        let _ = Waveform::pwm(1.0, 1e6, 1.5);
    }

    #[test]
    fn from_f64_is_dc() {
        let w: Waveform = 3.3.into();
        assert_eq!(w, Waveform::Dc(3.3));
    }

    #[test]
    fn pulse_breakpoints_walk_the_corners() {
        let p = Pulse {
            low: 0.0,
            high: 1.0,
            delay: 0.0,
            rise: 0.1,
            fall: 0.1,
            width: 0.3,
            period: 1.0,
        };
        let w = Waveform::Pulse(p);
        let mut t = -0.5;
        let mut seen = Vec::new();
        for _ in 0..9 {
            let bp = w.next_breakpoint(t).expect("pulses always break");
            assert!(bp > t);
            seen.push(bp);
            t = bp;
        }
        // Corners of cycle 0 and 1: 0, .1, .4, .5, 1.0, 1.1, 1.4, 1.5, 2.0
        let expect = [0.0, 0.1, 0.4, 0.5, 1.0, 1.1, 1.4, 1.5, 2.0];
        for (s, e) in seen.iter().zip(&expect) {
            assert!((s - e).abs() < 1e-9, "{seen:?}");
        }
    }

    #[test]
    fn breakpoints_respect_delay() {
        let w = Waveform::Pulse(Pulse {
            low: 0.0,
            high: 1.0,
            delay: 5.0,
            rise: 0.0,
            fall: 0.0,
            width: 0.5,
            period: 1.0,
        });
        assert_eq!(w.next_breakpoint(0.0), Some(5.0));
    }

    #[test]
    fn smooth_waveforms_have_no_breakpoints() {
        assert_eq!(Waveform::dc(1.0).next_breakpoint(0.0), None);
        assert_eq!(Waveform::sine(0.0, 1.0, 1e3).next_breakpoint(0.0), None);
    }

    /// Time-average of `w` over `[0, t_end]` on a fine uniform grid.
    fn grid_average(w: &Waveform, t_end: f64, n: usize) -> f64 {
        let mut sum = 0.0;
        for i in 0..n {
            let t = t_end * (i as f64 + 0.5) / n as f64;
            sum += w.value(t);
        }
        sum / n as f64
    }

    #[test]
    fn jittered_pwm_preserves_mean_duty() {
        let duty = 0.4;
        let periods = 200;
        let jit = Jitter::edges(42, 0.05, periods);
        let w = Waveform::pwm_with_jitter(1.0, 1e6, duty, 0.01, &jit);
        let avg = grid_average(&w, periods as f64 * 1e-6, 400_000);
        // Symmetric independent edge offsets cancel in the mean; the
        // residual is sampling noise plus the O(1/periods) edge effects.
        assert!(
            (avg - duty).abs() < 0.01,
            "mean duty {avg} drifted from {duty}"
        );
    }

    #[test]
    fn jittered_pwm_is_deterministic() {
        let jit = Jitter::edges(7, 0.03, 32);
        let a = Waveform::pwm_with_jitter(2.5, 500e6, 0.5, 0.01, &jit);
        let b = Waveform::pwm_with_jitter(2.5, 500e6, 0.5, 0.01, &jit);
        assert_eq!(a, b, "same seed must give the bitwise-identical pwl");
        let other = Jitter::edges(8, 0.03, 32);
        let c = Waveform::pwm_with_jitter(2.5, 500e6, 0.5, 0.01, &other);
        assert_ne!(a, c, "different seeds should move the edges");
    }

    #[test]
    fn jittered_pwm_edges_actually_move() {
        let jit = Jitter::edges(3, 0.1, 16);
        let w = Waveform::pwm_with_jitter(1.0, 1e6, 0.5, 0.01, &jit);
        let clean = Waveform::pwm_with_jitter(1.0, 1e6, 0.5, 0.01, &Jitter::edges(3, 0.0, 16));
        assert_ne!(w, clean);
        // Still a well-formed pwl: strictly increasing breakpoints.
        let Waveform::Pwl(points) = &w else {
            panic!("jittered pwm must be pwl")
        };
        for pair in points.windows(2) {
            assert!(pair[1].0 > pair[0].0);
        }
    }

    #[test]
    fn duty_glitches_shift_the_average() {
        let base = Jitter::edges(11, 0.0, 100);
        let glitchy = Jitter {
            glitch_probability: 1.0,
            glitch_duty: -0.2,
            ..base.clone()
        };
        let w_base = Waveform::pwm_with_jitter(1.0, 1e6, 0.5, 0.01, &base);
        let w_glitch = Waveform::pwm_with_jitter(1.0, 1e6, 0.5, 0.01, &glitchy);
        let t_end = 100.0 * 1e-6;
        let a0 = grid_average(&w_base, t_end, 200_000);
        let a1 = grid_average(&w_glitch, t_end, 200_000);
        assert!(
            (a0 - a1 - 0.2).abs() < 0.01,
            "every-period glitch of -0.2 duty should drop the average by 0.2 (got {a0} vs {a1})"
        );
    }

    #[test]
    fn jittered_pwm_parks_low_after_last_period() {
        let jit = Jitter::edges(1, 0.02, 4);
        let w = Waveform::pwm_with_jitter(1.0, 1e6, 0.5, 0.01, &jit);
        assert_eq!(w.value(10e-6), 0.0);
    }

    #[test]
    #[should_panic(expected = "edge jitter must be in 0.0..0.25")]
    fn jittered_pwm_rejects_wild_jitter() {
        let _ = Waveform::pwm_with_jitter(1.0, 1e6, 0.5, 0.01, &Jitter::edges(0, 0.4, 8));
    }

    #[test]
    fn pwl_breakpoints_are_its_points() {
        let w = Waveform::pwl(vec![(0.0, 0.0), (1.0, 2.0), (3.0, 1.0)]);
        assert_eq!(w.next_breakpoint(-1.0), Some(0.0));
        assert_eq!(w.next_breakpoint(0.5), Some(1.0));
        assert_eq!(w.next_breakpoint(1.0), Some(3.0));
        assert_eq!(w.next_breakpoint(3.0), None);
    }
}
