//! Waveform traces and measurements.
//!
//! A [`Trace`] is a borrowed view over a sampled signal `(t[i], v[i])`
//! produced by a transient analysis. All measurements integrate with the
//! trapezoidal rule over the (not necessarily uniform) time grid, matching
//! what a `.measure` statement would do in a SPICE deck.

/// Borrowed view of a sampled waveform.
#[derive(Debug, Clone, Copy)]
pub struct Trace<'a> {
    t: &'a [f64],
    v: &'a [f64],
}

impl<'a> Trace<'a> {
    /// Creates a trace over parallel time/value slices.
    ///
    /// # Panics
    ///
    /// Panics if the slices differ in length.
    pub fn new(t: &'a [f64], v: &'a [f64]) -> Self {
        assert_eq!(t.len(), v.len(), "time and value slices must match");
        Trace { t, v }
    }

    /// Number of samples.
    pub fn len(&self) -> usize {
        self.t.len()
    }

    /// `true` if the trace has no samples.
    pub fn is_empty(&self) -> bool {
        self.t.is_empty()
    }

    /// The sample times.
    pub fn times(&self) -> &'a [f64] {
        self.t
    }

    /// The sample values.
    pub fn values(&self) -> &'a [f64] {
        self.v
    }

    /// The final sample value.
    ///
    /// # Panics
    ///
    /// Panics if the trace is empty.
    pub fn last_value(&self) -> f64 {
        *self.v.last().expect("trace is empty")
    }

    /// Start and end times of the trace.
    ///
    /// # Panics
    ///
    /// Panics if the trace is empty.
    pub fn span(&self) -> (f64, f64) {
        (self.t[0], *self.t.last().expect("trace is empty"))
    }

    /// Value at time `time` by linear interpolation, clamped at the ends.
    ///
    /// # Panics
    ///
    /// Panics if the trace is empty.
    pub fn value_at(&self, time: f64) -> f64 {
        assert!(!self.is_empty(), "trace is empty");
        if time <= self.t[0] {
            return self.v[0];
        }
        if time >= *self.t.last().unwrap() {
            return *self.v.last().unwrap();
        }
        let idx = self.t.partition_point(|&ti| ti <= time);
        let (t0, v0) = (self.t[idx - 1], self.v[idx - 1]);
        let (t1, v1) = (self.t[idx], self.v[idx]);
        if t1 == t0 {
            v0
        } else {
            v0 + (v1 - v0) * (time - t0) / (t1 - t0)
        }
    }

    /// Minimum sample value.
    ///
    /// # Panics
    ///
    /// Panics if the trace is empty.
    pub fn min(&self) -> f64 {
        self.v.iter().copied().fold(f64::INFINITY, f64::min)
    }

    /// Maximum sample value.
    ///
    /// # Panics
    ///
    /// Panics if the trace is empty.
    pub fn max(&self) -> f64 {
        self.v.iter().copied().fold(f64::NEG_INFINITY, f64::max)
    }

    /// Trapezoidal time-average over the whole trace.
    ///
    /// # Panics
    ///
    /// Panics if the trace has fewer than two samples.
    pub fn average(&self) -> f64 {
        let (t0, t1) = self.span();
        self.average_between(t0, t1)
    }

    /// Trapezoidal time-average over `[from, to]`, interpolating at the
    /// window edges.
    ///
    /// # Panics
    ///
    /// Panics if the trace has fewer than two samples, if `from >= to`, or
    /// if the window lies outside the trace span.
    pub fn average_between(&self, from: f64, to: f64) -> f64 {
        self.integrate_between(from, to) / (to - from)
    }

    /// Trapezoidal integral of the signal over `[from, to]`.
    ///
    /// # Panics
    ///
    /// Same conditions as [`Trace::average_between`].
    pub fn integrate_between(&self, from: f64, to: f64) -> f64 {
        assert!(self.len() >= 2, "need at least two samples");
        assert!(from < to, "window must have positive width");
        let (start, end) = self.span();
        assert!(
            from >= start - 1e-18 && to <= end + 1e-18,
            "window [{from}, {to}] outside trace span [{start}, {end}]"
        );
        let mut sum = 0.0;
        let mut prev_t = from;
        let mut prev_v = self.value_at(from);
        let i0 = self.t.partition_point(|&ti| ti <= from);
        for i in i0..self.t.len() {
            let (ti, vi) = (self.t[i], self.v[i]);
            if ti >= to {
                break;
            }
            sum += 0.5 * (prev_v + vi) * (ti - prev_t);
            prev_t = ti;
            prev_v = vi;
        }
        let v_end = self.value_at(to);
        sum += 0.5 * (prev_v + v_end) * (to - prev_t);
        sum
    }

    /// RMS value over `[from, to]`.
    ///
    /// # Panics
    ///
    /// Same conditions as [`Trace::average_between`].
    pub fn rms_between(&self, from: f64, to: f64) -> f64 {
        assert!(self.len() >= 2, "need at least two samples");
        assert!(from < to, "window must have positive width");
        let mut sum = 0.0;
        let mut prev_t = from;
        let mut prev_v = self.value_at(from);
        let i0 = self.t.partition_point(|&ti| ti <= from);
        for i in i0..self.t.len() {
            let (ti, vi) = (self.t[i], self.v[i]);
            if ti >= to {
                break;
            }
            sum += 0.5 * (prev_v * prev_v + vi * vi) * (ti - prev_t);
            prev_t = ti;
            prev_v = vi;
        }
        let v_end = self.value_at(to);
        sum += 0.5 * (prev_v * prev_v + v_end * v_end) * (to - prev_t);
        (sum / (to - from)).sqrt()
    }

    /// Peak-to-peak excursion over `[from, to]`.
    ///
    /// # Panics
    ///
    /// Panics if the window contains no samples.
    pub fn ripple_between(&self, from: f64, to: f64) -> f64 {
        let mut lo = f64::INFINITY;
        let mut hi = f64::NEG_INFINITY;
        for (&ti, &vi) in self.t.iter().zip(self.v) {
            if ti >= from && ti <= to {
                lo = lo.min(vi);
                hi = hi.max(vi);
            }
        }
        assert!(lo <= hi, "window [{from}, {to}] contains no samples");
        hi - lo
    }

    /// Average over the last `cycles` whole periods of a periodic signal —
    /// the standard way to measure a PWM-averaged voltage free of both the
    /// start-up transient and partial-cycle bias.
    ///
    /// # Panics
    ///
    /// Panics if `period` or `cycles` is zero, or if the trace is shorter
    /// than the requested window.
    pub fn steady_state_average(&self, period: f64, cycles: usize) -> f64 {
        assert!(period > 0.0, "period must be positive");
        assert!(cycles > 0, "need at least one cycle");
        let (start, end) = self.span();
        let window = period * cycles as f64;
        assert!(
            end - start >= window,
            "trace span {} shorter than measurement window {window}",
            end - start
        );
        self.average_between(end - window, end)
    }

    /// First time after which the signal stays within `tol` of `target`
    /// until the end of the trace, or `None` if it never settles.
    pub fn settling_time(&self, target: f64, tol: f64) -> Option<f64> {
        let mut settled_since: Option<f64> = None;
        for (&ti, &vi) in self.t.iter().zip(self.v) {
            if (vi - target).abs() <= tol {
                settled_since.get_or_insert(ti);
            } else {
                settled_since = None;
            }
        }
        settled_since
    }

    /// Fraction of `[from, to]` the signal spends above `threshold` — the
    /// duty cycle of a (possibly analog) waveform, measured exactly with
    /// linear interpolation at the threshold crossings.
    ///
    /// # Panics
    ///
    /// Same conditions as [`Trace::average_between`].
    pub fn duty_cycle_between(&self, threshold: f64, from: f64, to: f64) -> f64 {
        assert!(self.len() >= 2, "need at least two samples");
        assert!(from < to, "window must have positive width");
        let mut high_time = 0.0;
        let mut prev_t = from;
        let mut prev_v = self.value_at(from);
        let i0 = self.t.partition_point(|&ti| ti <= from);
        let segment = |t0: f64, v0: f64, t1: f64, v1: f64| {
            let dt = t1 - t0;
            if dt <= 0.0 {
                return 0.0;
            }
            match (v0 > threshold, v1 > threshold) {
                (true, true) => dt,
                (false, false) => 0.0,
                (hi0, _) => {
                    // One crossing inside the segment.
                    let frac = (threshold - v0) / (v1 - v0);
                    if hi0 {
                        dt * frac
                    } else {
                        dt * (1.0 - frac)
                    }
                }
            }
        };
        for i in i0..self.t.len() {
            let (ti, vi) = (self.t[i], self.v[i]);
            if ti >= to {
                break;
            }
            high_time += segment(prev_t, prev_v, ti, vi);
            prev_t = ti;
            prev_v = vi;
        }
        let v_end = self.value_at(to);
        high_time += segment(prev_t, prev_v, to, v_end);
        high_time / (to - from)
    }

    /// Writes the trace as two-column CSV (`time,value`).
    pub fn to_csv(&self, header: &str) -> String {
        let mut out = String::with_capacity(self.len() * 24 + header.len() + 8);
        out.push_str("time,");
        out.push_str(header);
        out.push('\n');
        for (&t, &v) in self.t.iter().zip(self.v) {
            out.push_str(&format!("{t:e},{v:e}\n"));
        }
        out
    }
}

/// Owned waveform data, convertible to a [`Trace`] view — used for derived
/// signals such as instantaneous power.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct TraceData {
    /// Sample times in seconds.
    pub t: Vec<f64>,
    /// Sample values.
    pub v: Vec<f64>,
}

impl TraceData {
    /// Creates owned trace data.
    ///
    /// # Panics
    ///
    /// Panics if the vectors differ in length.
    pub fn new(t: Vec<f64>, v: Vec<f64>) -> Self {
        assert_eq!(t.len(), v.len(), "time and value vectors must match");
        TraceData { t, v }
    }

    /// Borrowed measurement view.
    pub fn as_trace(&self) -> Trace<'_> {
        Trace::new(&self.t, &self.v)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ramp() -> (Vec<f64>, Vec<f64>) {
        let t: Vec<f64> = (0..=10).map(|i| i as f64).collect();
        let v: Vec<f64> = t.iter().map(|&x| 2.0 * x).collect();
        (t, v)
    }

    #[test]
    fn interpolation() {
        let (t, v) = ramp();
        let tr = Trace::new(&t, &v);
        assert_eq!(tr.value_at(2.5), 5.0);
        assert_eq!(tr.value_at(-1.0), 0.0); // clamp left
        assert_eq!(tr.value_at(99.0), 20.0); // clamp right
        assert_eq!(tr.last_value(), 20.0);
        assert_eq!(tr.len(), 11);
        assert!(!tr.is_empty());
    }

    #[test]
    fn average_of_ramp() {
        let (t, v) = ramp();
        let tr = Trace::new(&t, &v);
        assert!((tr.average() - 10.0).abs() < 1e-12);
        assert!((tr.average_between(0.0, 5.0) - 5.0).abs() < 1e-12);
        // Window not aligned to samples.
        assert!((tr.average_between(1.5, 2.5) - 4.0).abs() < 1e-12);
    }

    #[test]
    fn integral_of_constant() {
        let t = vec![0.0, 1.0, 2.0];
        let v = vec![3.0, 3.0, 3.0];
        let tr = Trace::new(&t, &v);
        assert!((tr.integrate_between(0.0, 2.0) - 6.0).abs() < 1e-12);
        assert!((tr.integrate_between(0.25, 0.75) - 1.5).abs() < 1e-12);
    }

    #[test]
    fn rms_of_constant_and_ramp() {
        let t = vec![0.0, 1.0];
        let v = vec![2.0, 2.0];
        assert!((Trace::new(&t, &v).rms_between(0.0, 1.0) - 2.0).abs() < 1e-12);

        // RMS of v = t over [0,1] is 1/sqrt(3) — exact for trapezoid of v²
        // only in the fine-grid limit, so use a fine grid.
        let t: Vec<f64> = (0..=1000).map(|i| i as f64 / 1000.0).collect();
        let v = t.clone();
        let rms = Trace::new(&t, &v).rms_between(0.0, 1.0);
        assert!((rms - 1.0 / 3f64.sqrt()).abs() < 1e-4, "rms = {rms}");
    }

    #[test]
    fn min_max_ripple() {
        let t = vec![0.0, 1.0, 2.0, 3.0];
        let v = vec![1.0, 3.0, 0.5, 2.0];
        let tr = Trace::new(&t, &v);
        assert_eq!(tr.min(), 0.5);
        assert_eq!(tr.max(), 3.0);
        assert_eq!(tr.ripple_between(0.0, 3.0), 2.5);
        assert_eq!(tr.ripple_between(0.5, 1.5), 0.0);
    }

    #[test]
    fn steady_state_average_ignores_startup() {
        // Signal: 0 for t<5, then square wave period 1 between 1 and 3.
        let mut t = Vec::new();
        let mut v = Vec::new();
        let dt = 0.005;
        let mut time = 0.0;
        while time <= 10.0 {
            let val = if time < 5.0 {
                0.0
            } else if (time % 1.0) < 0.5 {
                1.0
            } else {
                3.0
            };
            t.push(time);
            v.push(val);
            time += dt;
        }
        let tr = Trace::new(&t, &v);
        let avg = tr.steady_state_average(1.0, 4);
        assert!((avg - 2.0).abs() < 0.02, "avg = {avg}");
    }

    #[test]
    fn settling_detection() {
        let t: Vec<f64> = (0..100).map(|i| i as f64 * 0.1).collect();
        let v: Vec<f64> = t.iter().map(|&x| 1.0 - (-x).exp()).collect();
        let tr = Trace::new(&t, &v);
        let ts = tr.settling_time(1.0, 0.05).expect("settles");
        // 1 - e^-t = 0.95 at t = ln 20 ≈ 3.0.
        assert!(ts > 2.5 && ts < 3.5, "ts = {ts}");
        assert!(tr.settling_time(5.0, 0.01).is_none());
    }

    #[test]
    #[should_panic(expected = "must match")]
    fn mismatched_lengths_panic() {
        let t = vec![0.0, 1.0];
        let v = vec![0.0];
        let _ = Trace::new(&t, &v);
    }

    #[test]
    #[should_panic(expected = "outside trace span")]
    fn out_of_span_window_panics() {
        let (t, v) = ramp();
        let _ = Trace::new(&t, &v).average_between(5.0, 20.0);
    }

    #[test]
    fn trace_data_roundtrip() {
        let td = TraceData::new(vec![0.0, 1.0], vec![1.0, 2.0]);
        assert!((td.as_trace().average() - 1.5).abs() < 1e-12);
    }

    #[test]
    fn duty_cycle_of_square_wave() {
        // 30 % duty square wave sampled finely.
        let n = 3000;
        let t: Vec<f64> = (0..=n).map(|i| i as f64 / n as f64 * 3.0).collect();
        let v: Vec<f64> = t
            .iter()
            .map(|&x| if x % 1.0 < 0.3 { 1.0 } else { 0.0 })
            .collect();
        let tr = Trace::new(&t, &v);
        let d = tr.duty_cycle_between(0.5, 0.0, 3.0);
        assert!((d - 0.3).abs() < 2e-3, "duty = {d}");
    }

    #[test]
    fn duty_cycle_with_interpolated_crossings() {
        // Triangle from 0 to 1 and back: above 0.5 exactly half the time.
        let t = vec![0.0, 1.0, 2.0];
        let v = vec![0.0, 1.0, 0.0];
        let tr = Trace::new(&t, &v);
        let d = tr.duty_cycle_between(0.5, 0.0, 2.0);
        assert!((d - 0.5).abs() < 1e-12, "duty = {d}");
        // Threshold at 0.25: above it 75 % of the time.
        let d = tr.duty_cycle_between(0.25, 0.0, 2.0);
        assert!((d - 0.75).abs() < 1e-12, "duty = {d}");
    }

    #[test]
    fn duty_cycle_of_constant_signals() {
        let t = vec![0.0, 1.0];
        let hi = vec![2.0, 2.0];
        let lo = vec![0.1, 0.1];
        assert_eq!(Trace::new(&t, &hi).duty_cycle_between(1.0, 0.0, 1.0), 1.0);
        assert_eq!(Trace::new(&t, &lo).duty_cycle_between(1.0, 0.0, 1.0), 0.0);
    }

    #[test]
    fn csv_rendering() {
        let t = vec![0.0, 1e-9];
        let v = vec![1.5, 2.5];
        let csv = Trace::new(&t, &v).to_csv("vout");
        let mut lines = csv.lines();
        assert_eq!(lines.next(), Some("time,vout"));
        assert_eq!(lines.next(), Some("0e0,1.5e0"));
        assert_eq!(lines.next(), Some("1e-9,2.5e0"));
    }
}
