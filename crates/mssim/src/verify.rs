//! Static verification: structural solvability of MNA systems and
//! soundness proofs for compiled stamp plans.
//!
//! Two independent analyses live here, both purely static — neither ever
//! evaluates a device model or factors a matrix:
//!
//! **Structural solvability (MS020-series lints).** From the sparsity
//! pattern the circuit induces on its MNA system (no numerics), a maximum
//! bipartite matching between equations and unknowns decides whether the
//! matrix can be nonsingular for *any* element values; a
//! Dulmage–Mendelsohn coarse decomposition then names the
//! under-determined unknowns and over-determined equations. Two companion
//! passes catch what the pattern alone cannot: cycles of voltage-defining
//! branches (whose ±1 incidence columns are linearly dependent even
//! though the pattern admits a perfect matching), and matched diagonal
//! blocks whose statically-known stamp magnitudes span so many decades
//! that LU pivoting is predictably fragile. The findings surface through
//! the ordinary lint machinery as MS020/MS021/MS022 (see
//! [`crate::lint`]), so every analysis pre-flights them.
//!
//! The pattern is *cancellation-aware*: contributions that provably sum
//! to exactly zero at a matrix entry (a resistor with both terminals on
//! one node, a VCVS output shorted to itself, a unit-gain VCVS
//! controlling itself) are dropped, and devices whose stamps always
//! cancel (a MOSFET with drain tied to source) are skipped, so the
//! matching sees the entries that can actually be nonzero. The soundness
//! direction is one-way by construction: an entry is dropped only when it
//! is zero for *every* valuation, so a failed matching proves the matrix
//! singular for all numerics — MS020 never denies a solvable circuit.
//!
//! **Plan verification (PL001-series).** An abstract interpreter over the
//! flat stamp programs of [`crate::analysis::plan`] proves four
//! properties per compiled plan: every pre-resolved index is in bounds
//! (PL001), no atom reads a value from a tier more dynamic than its own
//! (PL002), every value array a plan reads contributes to the bitwise
//! cache identity (PL003), and the multiset of write destinations equals
//! the reference assembler's stamp footprint (PL004). The verifier runs
//! automatically at plan-compile time under `debug_assertions`, over
//! every shipped circuit via `repro verify`, and on demand through
//! [`verify_circuit`].

use std::collections::HashMap;

use crate::analysis::mna::MnaLayout;
use crate::analysis::plan::{IterOp, PlanMode, StampPlan, ValRef};
use crate::elements::Element;
use crate::lint::{self, LintCode, LintContext, LintReport};
use crate::netlist::{Circuit, NodeId};

/// Conditioning span (max/min statically-known stamp magnitude within one
/// matched block) beyond which MS022 warns. Partial-pivoting LU loses
/// roughly `log10(span)` digits in the worst case; 12 decades leaves only
/// a few significant digits in an f64 solve. [`crate::analyze`] reuses the
/// same limit for its certified MS033 bound so the heuristic and the
/// certificate stay in lockstep.
pub(crate) const CONDITIONING_SPAN_LIMIT: f64 = 1e12;

// ---------------------------------------------------------------------------
// Structural solvability (MS020/MS021/MS022)
// ---------------------------------------------------------------------------

/// One MS020-series finding, ready for [`crate::lint`] to wrap in a
/// [`Diagnostic`](crate::lint::Diagnostic) with the configured severity.
pub(crate) struct StructuralFinding {
    pub code: LintCode,
    pub elements: Vec<String>,
    pub message: String,
    pub suggestion: Option<String>,
}

/// One merged entry of the cancellation-aware sparsity pattern.
#[derive(Clone, Copy, Default)]
struct PatternEntry {
    /// Exact sum of the statically-known contributions.
    static_sum: f64,
    /// Whether any contribution's value is only known at run time.
    dynamic: bool,
}

/// The cancellation-aware MNA sparsity pattern for one circuit/context.
struct StampPattern {
    n: usize,
    entries: HashMap<(usize, usize), PatternEntry>,
}

impl StampPattern {
    fn build(ckt: &Circuit, layout: &MnaLayout, ctx: LintContext) -> Self {
        let n = layout.size();
        let mut entries: HashMap<(usize, usize), PatternEntry> = HashMap::new();
        fn add_static(
            entries: &mut HashMap<(usize, usize), PatternEntry>,
            r: usize,
            c: usize,
            v: f64,
        ) {
            entries.entry((r, c)).or_default().static_sum += v;
        }
        // Four-entry conductance footprint with a run-time value: the
        // entries exist whenever the terminals are distinct and ungrounded.
        let mark_g4 = |entries: &mut HashMap<(usize, usize), PatternEntry>,
                       ra: Option<usize>,
                       rb: Option<usize>| {
            for (r, c) in [(ra, ra), (ra, rb), (rb, rb), (rb, ra)] {
                if let (Some(r), Some(c)) = (r, c) {
                    entries.entry((r, c)).or_default().dynamic = true;
                }
            }
        };
        let row = |node: NodeId| layout.node_row(node);

        for (idx, (_, _, e)) in ckt.elements().enumerate() {
            match *e {
                Element::Resistor { a, b, ohms } => {
                    let g = 1.0 / ohms;
                    let (ra, rb) = (row(a), row(b));
                    for (r, c, v) in [(ra, ra, g), (ra, rb, -g), (rb, rb, g), (rb, ra, -g)] {
                        if let (Some(r), Some(c)) = (r, c) {
                            add_static(&mut entries, r, c, v);
                        }
                    }
                }
                Element::Capacitor { a, b, .. } => {
                    // DC: the gmin leak; transient: the companion geq. Both
                    // are run-time values, and both cancel identically when
                    // the terminals coincide — skip the shorted case so the
                    // always-zero entries never reach the matching.
                    if a != b {
                        mark_g4(&mut entries, row(a), row(b));
                    }
                }
                Element::Inductor { a, b, .. } => {
                    let br = layout.branch_row(layout.branch_of[idx].expect("inductor branch"));
                    let (ra, rb) = (row(a), row(b));
                    for (r, v) in [(ra, 1.0), (rb, -1.0)] {
                        if let Some(r) = r {
                            add_static(&mut entries, r, br, v);
                        }
                    }
                    match ctx {
                        LintContext::Dc => {
                            // Ideal short: v(a) − v(b) = 0.
                            for (c, v) in [(ra, 1.0), (rb, -1.0)] {
                                if let Some(c) = c {
                                    add_static(&mut entries, br, c, v);
                                }
                            }
                        }
                        LintContext::TransientUic => {
                            // Companion: i − geq·(v(a)−v(b)) = ieq.
                            add_static(&mut entries, br, br, 1.0);
                            if a != b {
                                for c in [ra, rb].into_iter().flatten() {
                                    entries.entry((br, c)).or_default().dynamic = true;
                                }
                            }
                        }
                    }
                }
                Element::VoltageSource { pos, neg, .. } | Element::Vcvs { p: pos, n: neg, .. } => {
                    let br = layout.branch_row(layout.branch_of[idx].expect("source branch"));
                    let (rp, rn) = (row(pos), row(neg));
                    for (nd, v) in [(rp, 1.0), (rn, -1.0)] {
                        if let Some(nd) = nd {
                            add_static(&mut entries, nd, br, v);
                            add_static(&mut entries, br, nd, v);
                        }
                    }
                    if let Element::Vcvs { cp, cn, gain, .. } = *e {
                        for (c, v) in [(row(cp), -gain), (row(cn), gain)] {
                            if let Some(c) = c {
                                add_static(&mut entries, br, c, v);
                            }
                        }
                    }
                }
                Element::CurrentSource { .. } => {
                    // rhs only; no matrix footprint.
                }
                Element::Mosfet { d, g, s, .. } => {
                    // All six linearisation entries plus the channel gmin
                    // cancel exactly when d == s; otherwise mark them
                    // dynamic (their values follow the operating point).
                    if d != s {
                        let (rd, rg, rs) = (row(d), row(g), row(s));
                        for (r, c) in [(rd, rd), (rd, rg), (rd, rs), (rs, rd), (rs, rg), (rs, rs)] {
                            if let (Some(r), Some(c)) = (r, c) {
                                entries.entry((r, c)).or_default().dynamic = true;
                            }
                        }
                    }
                }
                Element::Switch { a, b, .. } => {
                    if a != b {
                        mark_g4(&mut entries, row(a), row(b));
                    }
                }
                Element::Diode { a, k, .. } => {
                    if a != k {
                        mark_g4(&mut entries, row(a), row(k));
                    }
                }
                Element::Vccs {
                    from,
                    to,
                    cp,
                    cn,
                    gm,
                } => {
                    let (rcp, rcn) = (row(cp), row(cn));
                    for (r, c, v) in [
                        (row(to), rcp, -gm),
                        (row(to), rcn, gm),
                        (row(from), rcp, gm),
                        (row(from), rcn, -gm),
                    ] {
                        if let (Some(r), Some(c)) = (r, c) {
                            add_static(&mut entries, r, c, v);
                        }
                    }
                }
            }
        }

        // Drop entries whose contributions are all static and sum to
        // exactly zero: they are zero for every valuation, so keeping
        // them would hide genuine structural singularity.
        entries.retain(|_, e| e.dynamic || e.static_sum != 0.0);
        StampPattern { n, entries }
    }

    /// Per-column row lists, sorted for deterministic reports.
    fn column_adjacency(&self) -> Vec<Vec<usize>> {
        let mut adj = vec![Vec::new(); self.n];
        for &(r, c) in self.entries.keys() {
            adj[c].push(r);
        }
        for rows in &mut adj {
            rows.sort_unstable();
        }
        adj
    }
}

/// Maximum bipartite matching (augmenting-path search) between columns
/// (unknowns) and rows (equations). Returns `(row_of_col, col_of_row)`.
fn max_matching(n: usize, col_adj: &[Vec<usize>]) -> (Vec<Option<usize>>, Vec<Option<usize>>) {
    let mut row_of_col: Vec<Option<usize>> = vec![None; n];
    let mut col_of_row: Vec<Option<usize>> = vec![None; n];

    fn try_augment(
        c: usize,
        col_adj: &[Vec<usize>],
        visited: &mut [bool],
        row_of_col: &mut [Option<usize>],
        col_of_row: &mut [Option<usize>],
    ) -> bool {
        for &r in &col_adj[c] {
            if visited[r] {
                continue;
            }
            visited[r] = true;
            let free = match col_of_row[r] {
                None => true,
                Some(c2) => try_augment(c2, col_adj, visited, row_of_col, col_of_row),
            };
            if free {
                row_of_col[c] = Some(r);
                col_of_row[r] = Some(c);
                return true;
            }
        }
        false
    }

    let mut visited = vec![false; n];
    for c in 0..n {
        visited.fill(false);
        try_augment(c, col_adj, &mut visited, &mut row_of_col, &mut col_of_row);
    }
    (row_of_col, col_of_row)
}

/// Dulmage–Mendelsohn coarse decomposition from a maximum matching: the
/// horizontal part (columns/rows reachable from unmatched columns by
/// alternating paths) is under-determined, the vertical part (reachable
/// from unmatched rows) is over-determined. With a perfect matching both
/// are empty and only the square part remains.
struct DmCoarse {
    /// Unknowns in the under-determined (horizontal) part.
    under_cols: Vec<usize>,
    /// Equations in the over-determined (vertical) part.
    over_rows: Vec<usize>,
}

fn dm_coarse(
    n: usize,
    col_adj: &[Vec<usize>],
    row_of_col: &[Option<usize>],
    col_of_row: &[Option<usize>],
) -> DmCoarse {
    // Row adjacency (row → columns with an entry) for the vertical sweep.
    let mut row_adj = vec![Vec::new(); n];
    for (c, rows) in col_adj.iter().enumerate() {
        for &r in rows {
            row_adj[r].push(c);
        }
    }

    // Horizontal: start from unmatched columns; col → row via any entry,
    // row → col via its matching edge.
    let mut col_in_h = vec![false; n];
    let mut row_in_h = vec![false; n];
    let mut stack: Vec<usize> = (0..n).filter(|&c| row_of_col[c].is_none()).collect();
    for &c in &stack {
        col_in_h[c] = true;
    }
    while let Some(c) = stack.pop() {
        for &r in &col_adj[c] {
            if row_in_h[r] {
                continue;
            }
            row_in_h[r] = true;
            if let Some(c2) = col_of_row[r] {
                if !col_in_h[c2] {
                    col_in_h[c2] = true;
                    stack.push(c2);
                }
            }
        }
    }

    // Vertical: start from unmatched rows; row → col via any entry,
    // col → row via its matching edge.
    let mut row_in_v = vec![false; n];
    let mut col_in_v = vec![false; n];
    let mut stack: Vec<usize> = (0..n).filter(|&r| col_of_row[r].is_none()).collect();
    for &r in &stack {
        row_in_v[r] = true;
    }
    while let Some(r) = stack.pop() {
        for &c in &row_adj[r] {
            if col_in_v[c] {
                continue;
            }
            col_in_v[c] = true;
            if let Some(r2) = row_of_col[c] {
                if !row_in_v[r2] {
                    row_in_v[r2] = true;
                    stack.push(r2);
                }
            }
        }
    }

    DmCoarse {
        under_cols: (0..n).filter(|&c| col_in_h[c]).collect(),
        over_rows: (0..n).filter(|&r| row_in_v[r]).collect(),
    }
}

/// Human name of unknown (column) `c`: a node voltage or a branch current.
fn unknown_name(ckt: &Circuit, layout: &MnaLayout, c: usize) -> String {
    let node_rows = layout.n_nodes - 1;
    if c < node_rows {
        format!("v({})", ckt.node_name(NodeId(c + 1)))
    } else {
        let b = c - node_rows;
        for (idx, (_, name, _)) in ckt.elements().enumerate() {
            if layout.branch_of[idx] == Some(b) {
                return format!("i({name})");
            }
        }
        format!("i(branch {b})")
    }
}

/// Human name of equation (row) `r`: a node's KCL or a branch constraint.
fn equation_name(ckt: &Circuit, layout: &MnaLayout, r: usize) -> String {
    let node_rows = layout.n_nodes - 1;
    if r < node_rows {
        format!("KCL@{}", ckt.node_name(NodeId(r + 1)))
    } else {
        let b = r - node_rows;
        for (idx, (_, name, _)) in ckt.elements().enumerate() {
            if layout.branch_of[idx] == Some(b) {
                return format!("branch({name})");
            }
        }
        format!("branch {b}")
    }
}

/// MS021: union-find over voltage-defining edges. Independent sources
/// (and, at DC, inductors) are merged silently first — cycles among them
/// are MS005/MS006's diagnoses and gate this pass anyway — then each VCVS
/// output edge that closes a cycle is reported: the cycle's ±1 incidence
/// columns sum to zero, so the system is singular despite a perfect
/// pattern matching.
fn check_voltage_constraint_cycles(
    ckt: &Circuit,
    ctx: LintContext,
    findings: &mut Vec<StructuralFinding>,
) {
    let mut parent: Vec<usize> = (0..ckt.node_count()).collect();
    fn find(parent: &mut [usize], mut x: usize) -> usize {
        while parent[x] != x {
            parent[x] = parent[parent[x]];
            x = parent[x];
        }
        x
    }
    let mut members: HashMap<usize, Vec<String>> = HashMap::new();

    // Silent pass: independent voltage constraints.
    for (_, name, e) in ckt.elements() {
        let edge = match *e {
            Element::VoltageSource { pos, neg, .. } => Some((pos.index(), neg.index())),
            // Inductors are ideal shorts only in the DC system; transient
            // companions give their branch column a diagonal entry, which
            // breaks the incidence-cycle dependency.
            Element::Inductor { a, b, .. } if ctx == LintContext::Dc => {
                Some((a.index(), b.index()))
            }
            _ => None,
        };
        let Some((u, v)) = edge else { continue };
        let (ru, rv) = (find(&mut parent, u), find(&mut parent, v));
        if ru == rv {
            continue; // MS005/MS006 territory.
        }
        parent[rv] = ru;
        let mut merged = members.remove(&ru).unwrap_or_default();
        merged.extend(members.remove(&rv).unwrap_or_default());
        merged.push(name.to_owned());
        members.insert(ru, merged);
    }

    // Reporting pass: VCVS output edges.
    for (_, name, e) in ckt.elements() {
        let Element::Vcvs { p, n, .. } = *e else {
            continue;
        };
        let (ru, rv) = (find(&mut parent, p.index()), find(&mut parent, n.index()));
        if ru == rv {
            let mut cycle = members.get(&ru).cloned().unwrap_or_default();
            cycle.push(name.to_owned());
            findings.push(StructuralFinding {
                code: LintCode::DependentVoltageConstraints,
                elements: cycle.clone(),
                message: format!(
                    "'{name}' closes a cycle of voltage-defining branches ({}); \
                     their branch-current columns are linearly dependent",
                    cycle.join(", ")
                ),
                suggestion: Some(
                    "break the cycle with a series resistance, or remove the redundant \
                     controlled source"
                        .to_owned(),
                ),
            });
            continue;
        }
        parent[rv] = ru;
        let mut merged = members.remove(&ru).unwrap_or_default();
        merged.extend(members.remove(&rv).unwrap_or_default());
        merged.push(name.to_owned());
        members.insert(ru, merged);
    }
}

/// MS022: Tarjan SCC over the matched-column digraph (edge `c → c'` when
/// column `c`'s matched row has an entry in column `c'`), then per
/// diagonal block the span of statically-known stamp magnitudes. Only
/// static values participate — device linearisations and companion terms
/// are operating-point dependent and would make the span meaningless.
fn check_conditioning(
    ckt: &Circuit,
    layout: &MnaLayout,
    pattern: &StampPattern,
    row_of_col: &[Option<usize>],
    findings: &mut Vec<StructuralFinding>,
) {
    let n = pattern.n;
    // Matched-column digraph.
    let mut adj = vec![Vec::new(); n];
    for (c, r) in row_of_col.iter().enumerate() {
        let r = r.expect("conditioning runs only on perfect matchings");
        for c2 in 0..n {
            if c2 != c && pattern.entries.contains_key(&(r, c2)) {
                adj[c].push(c2);
            }
        }
    }

    // Iterative Tarjan.
    let mut index = vec![usize::MAX; n];
    let mut low = vec![0usize; n];
    let mut on_stack = vec![false; n];
    let mut stack: Vec<usize> = Vec::new();
    let mut next_index = 0usize;
    let mut sccs: Vec<Vec<usize>> = Vec::new();
    let mut call: Vec<(usize, usize)> = Vec::new();
    for start in 0..n {
        if index[start] != usize::MAX {
            continue;
        }
        call.push((start, 0));
        while let Some(&mut (v, ref mut ei)) = call.last_mut() {
            if *ei == 0 {
                index[v] = next_index;
                low[v] = next_index;
                next_index += 1;
                stack.push(v);
                on_stack[v] = true;
            }
            if *ei < adj[v].len() {
                let w = adj[v][*ei];
                *ei += 1;
                if index[w] == usize::MAX {
                    call.push((w, 0));
                } else if on_stack[w] {
                    low[v] = low[v].min(index[w]);
                }
            } else {
                if low[v] == index[v] {
                    let mut scc = Vec::new();
                    loop {
                        let w = stack.pop().expect("tarjan stack");
                        on_stack[w] = false;
                        scc.push(w);
                        if w == v {
                            break;
                        }
                    }
                    sccs.push(scc);
                }
                call.pop();
                if let Some(&mut (parent, _)) = call.last_mut() {
                    low[parent] = low[parent].min(low[v]);
                }
            }
        }
    }

    for scc in sccs {
        let in_scc: Vec<bool> = {
            let mut m = vec![false; n];
            for &c in &scc {
                m[c] = true;
            }
            m
        };
        let mut min_mag = f64::INFINITY;
        let mut max_mag = 0.0f64;
        let mut count = 0usize;
        for &c in &scc {
            let r = row_of_col[c].expect("perfect matching");
            for &c2 in &scc {
                if let Some(e) = pattern.entries.get(&(r, c2)) {
                    if e.dynamic || !in_scc[c2] {
                        continue;
                    }
                    let mag = e.static_sum.abs();
                    if mag > 0.0 {
                        min_mag = min_mag.min(mag);
                        max_mag = max_mag.max(mag);
                        count += 1;
                    }
                }
            }
        }
        if count >= 2 && max_mag / min_mag > CONDITIONING_SPAN_LIMIT {
            let names: Vec<String> = scc.iter().map(|&c| unknown_name(ckt, layout, c)).collect();
            findings.push(StructuralFinding {
                code: LintCode::IllConditionedBlock,
                elements: names.clone(),
                message: format!(
                    "matched block {{{}}} spans {:.1} decades of stamp magnitude \
                     (|max| = {max_mag:.3e}, |min| = {min_mag:.3e}); LU pivoting will \
                     lose that many digits in the worst case",
                    names.join(", "),
                    (max_mag / min_mag).log10()
                ),
                suggestion: Some(
                    "rescale the extreme element values, or split the block with an \
                     explicit intermediate node"
                        .to_owned(),
                ),
            });
        }
    }
}

/// Runs the MS020-series structural passes over `ckt` for `ctx`.
///
/// Called by the lint engine once the MS001–MS011 topology lints found no
/// denials (a floating node already explains a singular matrix better
/// than an unmatched pattern column would).
pub(crate) fn structural_lint(ckt: &Circuit, ctx: LintContext) -> Vec<StructuralFinding> {
    let mut findings = Vec::new();
    let layout = MnaLayout::new(ckt);
    if layout.size() == 0 {
        return findings;
    }

    let pattern = StampPattern::build(ckt, &layout, ctx);
    let col_adj = pattern.column_adjacency();
    let (row_of_col, col_of_row) = max_matching(pattern.n, &col_adj);
    let deficiency = row_of_col.iter().filter(|m| m.is_none()).count();

    if deficiency > 0 {
        let dm = dm_coarse(pattern.n, &col_adj, &row_of_col, &col_of_row);
        let under: Vec<String> = dm
            .under_cols
            .iter()
            .map(|&c| unknown_name(ckt, &layout, c))
            .collect();
        let over: Vec<String> = dm
            .over_rows
            .iter()
            .map(|&r| equation_name(ckt, &layout, r))
            .collect();
        let mut parts = vec![format!(
            "the MNA system is structurally singular for every choice of element values \
             ({deficiency} of {} unknowns cannot be matched to an equation)",
            pattern.n
        )];
        if !under.is_empty() {
            parts.push(format!("under-determined: {}", under.join(", ")));
        }
        if !over.is_empty() {
            parts.push(format!("over-determined: {}", over.join(", ")));
        }
        let mut elements = under;
        elements.extend(over);
        findings.push(StructuralFinding {
            code: LintCode::StructurallySingular,
            elements,
            message: parts.join("; "),
            suggestion: Some(
                "every unknown needs an equation that can pin it: give the named nodes a \
                 current path and the named constraints an independent degree of freedom"
                    .to_owned(),
            ),
        });
    } else {
        check_conditioning(ckt, &layout, &pattern, &row_of_col, &mut findings);
    }

    check_voltage_constraint_cycles(ckt, ctx, &mut findings);
    findings
}

// ---------------------------------------------------------------------------
// Plan verification (PL001–PL004)
// ---------------------------------------------------------------------------

/// Identifies one class of compiled-plan defect proved by the verifier.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
#[non_exhaustive]
pub enum PlanCode {
    /// PL001: a pre-resolved matrix index, rhs row, device terminal row or
    /// value-slot index is out of bounds for the layout the plan claims to
    /// target.
    IndexOutOfBounds,
    /// PL002: an atom reads a value array from a tier more dynamic than
    /// the one it is placed in — e.g. a per-solve source value baked into
    /// the cached base matrix, whose identity key does not cover it.
    TierViolation,
    /// PL003: a value array the plan reads does not contribute to the
    /// bitwise cache identity (a device read row missing from
    /// `dyn_reads`, a companion slot count that disagrees with the
    /// layout, or a source list that diverges from the circuit). A gap
    /// here is a silent wrong-answer bug, not a performance bug.
    CacheKeyGap,
    /// PL004: the multiset of (row, col) / rhs-row write destinations the
    /// plan produces differs from the reference assembler's stamp
    /// footprint for the same circuit and mode.
    FootprintMismatch,
}

impl PlanCode {
    /// Stable short identifier, e.g. `"PL001"`.
    pub fn id(self) -> &'static str {
        match self {
            PlanCode::IndexOutOfBounds => "PL001",
            PlanCode::TierViolation => "PL002",
            PlanCode::CacheKeyGap => "PL003",
            PlanCode::FootprintMismatch => "PL004",
        }
    }

    /// Human-readable kebab-case name, e.g. `"tier-violation"`.
    pub fn name(self) -> &'static str {
        match self {
            PlanCode::IndexOutOfBounds => "index-out-of-bounds",
            PlanCode::TierViolation => "tier-violation",
            PlanCode::CacheKeyGap => "cache-key-gap",
            PlanCode::FootprintMismatch => "footprint-mismatch",
        }
    }
}

impl std::fmt::Display for PlanCode {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{} ({})", self.id(), self.name())
    }
}

/// One property violation found in a compiled stamp plan.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PlanViolation {
    /// Which soundness property is broken.
    pub code: PlanCode,
    /// What exactly is wrong, in terms of ops and indices.
    pub detail: String,
}

impl std::fmt::Display for PlanViolation {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}: {}", self.code, self.detail)
    }
}

/// `true` if `val` may live in the cached base tier without going stale
/// between base rebuilds. The base key covers gmin and the companion
/// `geq` bits, so those are safe there; source values and companion
/// history currents change per solve and are not part of the base key.
/// The rhs0 and iter tiers are refreshed every solve, so they admit any
/// value by construction.
fn base_tier_admits(val: ValRef) -> bool {
    matches!(
        val,
        ValRef::Const(_) | ValRef::Gmin { .. } | ValRef::CapGeq { .. } | ValRef::IndGeq { .. }
    )
}

/// Checks one [`ValRef`]'s slot indices and mode admissibility, pushing
/// PL001/PL002 violations as needed.
fn check_valref(val: ValRef, where_: &str, plan: &StampPlan, out: &mut Vec<PlanViolation>) {
    match val {
        ValRef::Const(_) | ValRef::Gmin { .. } => {}
        ValRef::CapGeq { slot, .. } | ValRef::CapIeq { slot, .. } => {
            if slot >= plan.n_cap_slots {
                out.push(PlanViolation {
                    code: PlanCode::IndexOutOfBounds,
                    detail: format!(
                        "{where_} reads capacitor slot {slot}, but the plan has only \
                         {} slots",
                        plan.n_cap_slots
                    ),
                });
            }
            if plan.mode == PlanMode::Dc {
                out.push(PlanViolation {
                    code: PlanCode::TierViolation,
                    detail: format!(
                        "{where_} reads a capacitor companion value in a DC-mode plan \
                         (no companion slice exists at solve time)"
                    ),
                });
            }
        }
        ValRef::IndGeq { slot, .. } | ValRef::IndIeq { slot } => {
            if slot >= plan.n_ind_slots {
                out.push(PlanViolation {
                    code: PlanCode::IndexOutOfBounds,
                    detail: format!(
                        "{where_} reads inductor slot {slot}, but the plan has only \
                         {} slots",
                        plan.n_ind_slots
                    ),
                });
            }
            if plan.mode == PlanMode::Dc {
                out.push(PlanViolation {
                    code: PlanCode::TierViolation,
                    detail: format!(
                        "{where_} reads an inductor companion value in a DC-mode plan \
                         (no companion slice exists at solve time)"
                    ),
                });
            }
        }
        ValRef::Src { src, .. } => {
            if src >= plan.sources.len() {
                out.push(PlanViolation {
                    code: PlanCode::IndexOutOfBounds,
                    detail: format!(
                        "{where_} reads source value {src}, but the plan lists only \
                         {} sources",
                        plan.sources.len()
                    ),
                });
            }
        }
    }
}

/// The write footprint of a plan or of the reference assembler: per
/// destination, how many additive contributions land there. `mat` is
/// keyed by flat index `row·n + col`, `rhs` by row.
#[derive(Default, PartialEq, Eq)]
struct Footprint {
    mat: HashMap<usize, u32>,
    rhs: HashMap<usize, u32>,
}

impl Footprint {
    fn mat_hit(&mut self, idx: usize) {
        *self.mat.entry(idx).or_insert(0) += 1;
    }
    fn rhs_hit(&mut self, row: usize) {
        *self.rhs.entry(row).or_insert(0) += 1;
    }
    /// Four-entry conductance footprint between two optional rows, in
    /// `stamp_conductance` order.
    fn cond4(&mut self, n: usize, ra: Option<usize>, rb: Option<usize>) {
        if let Some(ra) = ra {
            self.mat_hit(ra * n + ra);
            if let Some(rb) = rb {
                self.mat_hit(ra * n + rb);
            }
        }
        if let Some(rb) = rb {
            self.mat_hit(rb * n + rb);
            if let Some(ra) = ra {
                self.mat_hit(rb * n + ra);
            }
        }
    }
}

/// The stamp footprint `mna::assemble` produces for `ckt` in `mode`,
/// mirrored independently of the plan compiler (gshunt excluded on both
/// sides — it is a per-solve regularisation, not a circuit stamp). This
/// walker is the PL004 reference: it intentionally repeats the reference
/// assembler's structure rather than sharing code with the compiler it
/// checks.
fn reference_footprint(ckt: &Circuit, layout: &MnaLayout, mode: PlanMode) -> Footprint {
    let n = layout.size();
    let mut fp = Footprint::default();
    let row = |node: NodeId| layout.node_row(node);
    for (idx, (_, _, e)) in ckt.elements().enumerate() {
        match *e {
            Element::Resistor { a, b, .. } => fp.cond4(n, row(a), row(b)),
            Element::Capacitor { a, b, .. } => match mode {
                PlanMode::Tran => {
                    fp.cond4(n, row(a), row(b));
                    // stamp_current(b → a).
                    if let Some(ra) = row(a) {
                        fp.rhs_hit(ra);
                    }
                    if let Some(rb) = row(b) {
                        fp.rhs_hit(rb);
                    }
                }
                PlanMode::Dc => fp.cond4(n, row(a), row(b)),
            },
            Element::Inductor { a, b, .. } => {
                let br = layout.branch_row(layout.branch_of[idx].expect("inductor branch"));
                let (ra, rb) = (row(a), row(b));
                if let Some(ra) = ra {
                    fp.mat_hit(ra * n + br);
                }
                if let Some(rb) = rb {
                    fp.mat_hit(rb * n + br);
                }
                match mode {
                    PlanMode::Tran => {
                        fp.mat_hit(br * n + br);
                        if let Some(ra) = ra {
                            fp.mat_hit(br * n + ra);
                        }
                        if let Some(rb) = rb {
                            fp.mat_hit(br * n + rb);
                        }
                        fp.rhs_hit(br);
                    }
                    PlanMode::Dc => {
                        if let Some(ra) = ra {
                            fp.mat_hit(br * n + ra);
                        }
                        if let Some(rb) = rb {
                            fp.mat_hit(br * n + rb);
                        }
                        // The assembler writes rhs[br] = 0.0 here; a zero
                        // store on a zeroed rhs contributes nothing, and
                        // the plan rightly emits no atom for it.
                    }
                }
            }
            Element::VoltageSource { pos, neg, .. } => {
                let br = layout.branch_row(layout.branch_of[idx].expect("vsource branch"));
                if let Some(rp) = row(pos) {
                    fp.mat_hit(rp * n + br);
                    fp.mat_hit(br * n + rp);
                }
                if let Some(rn) = row(neg) {
                    fp.mat_hit(rn * n + br);
                    fp.mat_hit(br * n + rn);
                }
                fp.rhs_hit(br);
            }
            Element::CurrentSource { from, to, .. } => {
                if let Some(rt) = row(to) {
                    fp.rhs_hit(rt);
                }
                if let Some(rf) = row(from) {
                    fp.rhs_hit(rf);
                }
            }
            Element::Mosfet { d, g, s, .. } => {
                let (rd, rg, rs) = (row(d), row(g), row(s));
                if let Some(rd) = rd {
                    fp.mat_hit(rd * n + rd);
                    if let Some(rg) = rg {
                        fp.mat_hit(rd * n + rg);
                    }
                    if let Some(rs) = rs {
                        fp.mat_hit(rd * n + rs);
                    }
                    fp.rhs_hit(rd);
                }
                if let Some(rs_row) = rs {
                    if let Some(rd) = rd {
                        fp.mat_hit(rs_row * n + rd);
                    }
                    if let Some(rg) = rg {
                        fp.mat_hit(rs_row * n + rg);
                    }
                    fp.mat_hit(rs_row * n + rs_row);
                    fp.rhs_hit(rs_row);
                }
                // Channel gmin.
                fp.cond4(n, rd, rs);
            }
            Element::Switch { a, b, .. } => fp.cond4(n, row(a), row(b)),
            Element::Diode { a, k, .. } => {
                fp.cond4(n, row(a), row(k));
                // stamp_current(a → k).
                if let Some(rk) = row(k) {
                    fp.rhs_hit(rk);
                }
                if let Some(ra) = row(a) {
                    fp.rhs_hit(ra);
                }
            }
            Element::Vcvs {
                p, n: np, cp, cn, ..
            } => {
                let br = layout.branch_row(layout.branch_of[idx].expect("vcvs branch"));
                if let Some(rp) = row(p) {
                    fp.mat_hit(rp * n + br);
                    fp.mat_hit(br * n + rp);
                }
                if let Some(rn) = row(np) {
                    fp.mat_hit(rn * n + br);
                    fp.mat_hit(br * n + rn);
                }
                if let Some(rcp) = row(cp) {
                    fp.mat_hit(br * n + rcp);
                }
                if let Some(rcn) = row(cn) {
                    fp.mat_hit(br * n + rcn);
                }
            }
            Element::Vccs {
                from, to, cp, cn, ..
            } => {
                let (rcp, rcn) = (row(cp), row(cn));
                if let Some(rt) = row(to) {
                    if let Some(rcp) = rcp {
                        fp.mat_hit(rt * n + rcp);
                    }
                    if let Some(rcn) = rcn {
                        fp.mat_hit(rt * n + rcn);
                    }
                }
                if let Some(rf) = row(from) {
                    if let Some(rcp) = rcp {
                        fp.mat_hit(rf * n + rcp);
                    }
                    if let Some(rcn) = rcn {
                        fp.mat_hit(rf * n + rcn);
                    }
                }
            }
        }
    }
    fp
}

/// The write footprint a compiled plan produces when replayed, expanding
/// device ops exactly as `fill_mat`/`write_rhs` do.
fn plan_footprint(plan: &StampPlan) -> Footprint {
    let n = plan.n;
    let mut fp = Footprint::default();
    for op in &plan.base_ops {
        fp.mat_hit(op.idx);
    }
    for op in &plan.rhs0_ops {
        fp.rhs_hit(op.row);
    }
    for op in &plan.iter_ops {
        match *op {
            IterOp::Mat(ref m) => fp.mat_hit(m.idx),
            IterOp::Rhs(ref r) => fp.rhs_hit(r.row),
            IterOp::Mosfet { rd, rg, rs, .. } => {
                if let Some(rd) = rd {
                    fp.mat_hit(rd * n + rd);
                    if let Some(rg) = rg {
                        fp.mat_hit(rd * n + rg);
                    }
                    if let Some(rs) = rs {
                        fp.mat_hit(rd * n + rs);
                    }
                    fp.rhs_hit(rd);
                }
                if let Some(rs_row) = rs {
                    if let Some(rd) = rd {
                        fp.mat_hit(rs_row * n + rd);
                    }
                    if let Some(rg) = rg {
                        fp.mat_hit(rs_row * n + rg);
                    }
                    fp.mat_hit(rs_row * n + rs_row);
                    fp.rhs_hit(rs_row);
                }
                fp.cond4(n, rd, rs);
            }
            IterOp::Switch { ra, rb, .. } => fp.cond4(n, ra, rb),
            IterOp::Diode { ra, rk, .. } => {
                fp.cond4(n, ra, rk);
                if let Some(rk) = rk {
                    fp.rhs_hit(rk);
                }
                if let Some(ra) = ra {
                    fp.rhs_hit(ra);
                }
            }
        }
    }
    fp
}

/// Proves the four PL-series soundness properties of `plan` against the
/// circuit and layout it was compiled from. An empty result is a proof
/// (relative to the reference walker) that replaying the plan touches
/// exactly the assembler's destinations, never goes out of bounds, and
/// can never serve a stale cached system.
pub(crate) fn verify_plan(
    ckt: &Circuit,
    layout: &MnaLayout,
    plan: &StampPlan,
) -> Vec<PlanViolation> {
    let mut out = Vec::new();
    let n = plan.n;

    // PL001 — dimensions, op indices, device rows, slot and source ids.
    if n != layout.size() || plan.node_rows != layout.n_nodes - 1 {
        out.push(PlanViolation {
            code: PlanCode::IndexOutOfBounds,
            detail: format!(
                "plan dimensions ({}, {} node rows) disagree with the layout ({}, {})",
                n,
                plan.node_rows,
                layout.size(),
                layout.n_nodes - 1
            ),
        });
        // Every later bound would be checked against the wrong n.
        return out;
    }
    for (i, op) in plan.base_ops.iter().enumerate() {
        if op.idx >= n * n {
            out.push(PlanViolation {
                code: PlanCode::IndexOutOfBounds,
                detail: format!(
                    "base op {i} writes flat index {} in an n²={} matrix",
                    op.idx,
                    n * n
                ),
            });
        }
        check_valref(op.val, &format!("base op {i}"), plan, &mut out);
        if !base_tier_admits(op.val) {
            out.push(PlanViolation {
                code: PlanCode::TierViolation,
                detail: format!(
                    "base op {i} reads {:?}, which changes per solve; the base key \
                     (gshunt, gmin, companion geq bits) does not cover it, so the \
                     cached base matrix would go stale",
                    op.val
                ),
            });
        }
    }
    for (i, op) in plan.rhs0_ops.iter().enumerate() {
        if op.row >= n {
            out.push(PlanViolation {
                code: PlanCode::IndexOutOfBounds,
                detail: format!("rhs0 op {i} writes row {} in an n={n} rhs", op.row),
            });
        }
        check_valref(op.val, &format!("rhs0 op {i}"), plan, &mut out);
    }
    let row_ok = |r: Option<usize>| r.is_none_or(|r| r < plan.node_rows);
    for (i, op) in plan.iter_ops.iter().enumerate() {
        match *op {
            IterOp::Mat(ref m) => {
                if m.idx >= n * n {
                    out.push(PlanViolation {
                        code: PlanCode::IndexOutOfBounds,
                        detail: format!(
                            "iter op {i} writes flat index {} in an n²={} matrix",
                            m.idx,
                            n * n
                        ),
                    });
                }
                check_valref(m.val, &format!("iter op {i}"), plan, &mut out);
            }
            IterOp::Rhs(ref r) => {
                if r.row >= n {
                    out.push(PlanViolation {
                        code: PlanCode::IndexOutOfBounds,
                        detail: format!("iter op {i} writes row {} in an n={n} rhs", r.row),
                    });
                }
                check_valref(r.val, &format!("iter op {i}"), plan, &mut out);
            }
            IterOp::Mosfet { rd, rg, rs, .. } => {
                if ![rd, rg, rs].into_iter().all(row_ok) {
                    out.push(PlanViolation {
                        code: PlanCode::IndexOutOfBounds,
                        detail: format!(
                            "iter op {i} (mosfet) addresses a terminal row outside the \
                             {} node rows",
                            plan.node_rows
                        ),
                    });
                }
            }
            IterOp::Switch { ra, rb, rp, rn, .. } => {
                if ![ra, rb, rp, rn].into_iter().all(row_ok) {
                    out.push(PlanViolation {
                        code: PlanCode::IndexOutOfBounds,
                        detail: format!(
                            "iter op {i} (switch) addresses a terminal row outside the \
                             {} node rows",
                            plan.node_rows
                        ),
                    });
                }
            }
            IterOp::Diode { ra, rk, .. } => {
                if ![ra, rk].into_iter().all(row_ok) {
                    out.push(PlanViolation {
                        code: PlanCode::IndexOutOfBounds,
                        detail: format!(
                            "iter op {i} (diode) addresses a terminal row outside the \
                             {} node rows",
                            plan.node_rows
                        ),
                    });
                }
            }
        }
    }
    for (k, id) in plan.sources.iter().enumerate() {
        if id.index() >= ckt.element_count() {
            out.push(PlanViolation {
                code: PlanCode::IndexOutOfBounds,
                detail: format!(
                    "source {k} points at element {}, but the circuit has only {} elements",
                    id.index(),
                    ckt.element_count()
                ),
            });
        }
    }
    for &r in &plan.dyn_reads {
        if r >= n {
            out.push(PlanViolation {
                code: PlanCode::IndexOutOfBounds,
                detail: format!("dyn_reads lists solution row {r} in an n={n} system"),
            });
        }
    }
    if !out.is_empty() {
        // Out-of-bounds or mis-tiered ops make the remaining properties
        // meaningless (and the footprint expansion could itself index out
        // of range); report the fundamental failures alone.
        return out;
    }

    // PL003 — cache-key coverage.
    let read_row = |i: usize, what: &str, r: Option<usize>, out: &mut Vec<PlanViolation>| {
        if let Some(r) = r {
            if plan.dyn_reads.binary_search(&r).is_err() {
                out.push(PlanViolation {
                    code: PlanCode::CacheKeyGap,
                    detail: format!(
                        "iter op {i} ({what}) reads solution row {r}, which is missing \
                         from dyn_reads — the Newton bypass would reuse a stale system \
                         after that row moves"
                    ),
                });
            }
        }
    };
    for (i, op) in plan.iter_ops.iter().enumerate() {
        match *op {
            IterOp::Mat(_) | IterOp::Rhs(_) => {}
            IterOp::Mosfet { rd, rg, rs, .. } => {
                for r in [rd, rg, rs] {
                    read_row(i, "mosfet", r, &mut out);
                }
            }
            IterOp::Switch { rp, rn, .. } => {
                for r in [rp, rn] {
                    read_row(i, "switch", r, &mut out);
                }
            }
            IterOp::Diode { ra, rk, .. } => {
                for r in [ra, rk] {
                    read_row(i, "diode", r, &mut out);
                }
            }
        }
    }
    if plan.n_cap_slots != layout.n_caps || plan.n_ind_slots != layout.n_inds {
        out.push(PlanViolation {
            code: PlanCode::CacheKeyGap,
            detail: format!(
                "plan companion slot counts ({} cap, {} ind) disagree with the layout \
                 ({}, {}); the base key would compare the wrong geq bits",
                plan.n_cap_slots, plan.n_ind_slots, layout.n_caps, layout.n_inds
            ),
        });
    }
    let expected_sources: Vec<usize> = ckt
        .elements()
        .enumerate()
        .filter(|(_, (_, _, e))| {
            matches!(
                e,
                Element::VoltageSource { .. } | Element::CurrentSource { .. }
            )
        })
        .map(|(idx, _)| idx)
        .collect();
    let plan_sources: Vec<usize> = plan.sources.iter().map(|id| id.index()).collect();
    if plan_sources != expected_sources {
        out.push(PlanViolation {
            code: PlanCode::CacheKeyGap,
            detail: format!(
                "plan source list {plan_sources:?} does not match the circuit's \
                 independent sources {expected_sources:?}; rhs0 would read the wrong \
                 waveforms"
            ),
        });
    }

    // PL004 — write-coverage equivalence against the reference walker.
    let want = reference_footprint(ckt, layout, plan.mode);
    let got = plan_footprint(plan);
    if got != want {
        let mut diffs: Vec<String> = Vec::new();
        let keys: std::collections::BTreeSet<usize> =
            want.mat.keys().chain(got.mat.keys()).copied().collect();
        for idx in keys {
            let (w, g) = (
                want.mat.get(&idx).copied().unwrap_or(0),
                got.mat.get(&idx).copied().unwrap_or(0),
            );
            if w != g {
                diffs.push(format!(
                    "mat ({}, {}): assembler {w}, plan {g}",
                    idx / n,
                    idx % n
                ));
            }
        }
        let keys: std::collections::BTreeSet<usize> =
            want.rhs.keys().chain(got.rhs.keys()).copied().collect();
        for r in keys {
            let (w, g) = (
                want.rhs.get(&r).copied().unwrap_or(0),
                got.rhs.get(&r).copied().unwrap_or(0),
            );
            if w != g {
                diffs.push(format!("rhs {r}: assembler {w}, plan {g}"));
            }
        }
        out.push(PlanViolation {
            code: PlanCode::FootprintMismatch,
            detail: format!(
                "plan write footprint differs from the reference assembler at \
                 {} destination(s): {}",
                diffs.len(),
                diffs.join("; ")
            ),
        });
    }

    out
}

// ---------------------------------------------------------------------------
// Public entry point
// ---------------------------------------------------------------------------

/// The combined result of [`verify_circuit`]: the full lint report
/// (topology + structural solvability) and, when no lint denies, the
/// plan-verifier findings for both compiled modes.
#[derive(Debug)]
pub struct VerifyReport {
    /// Topology and structural-solvability diagnostics (MS001–MS022).
    pub lint: LintReport,
    /// PL001–PL004 violations across the DC and transient plans, empty
    /// when every compiled plan is proved sound. Each detail names the
    /// plan mode it was found in.
    pub plan_violations: Vec<PlanViolation>,
}

impl VerifyReport {
    /// `true` when nothing blocks analysis: no deny-level lint and no
    /// plan violation. Warnings may still be present in [`Self::lint`].
    pub fn is_sound(&self) -> bool {
        !self.lint.has_denials() && self.plan_violations.is_empty()
    }
}

impl std::fmt::Display for VerifyReport {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}", self.lint)?;
        if self.lint.has_denials() {
            // Plans are never compiled for a denied circuit.
            writeln!(f, "plans: not compiled (lint denied)")
        } else if self.plan_violations.is_empty() {
            writeln!(f, "plans: verified")
        } else {
            for v in &self.plan_violations {
                writeln!(f, "{v}")?;
            }
            writeln!(f, "plans: {} violation(s)", self.plan_violations.len())
        }
    }
}

/// Statically verifies `circuit` end to end: lints it (including the
/// MS020-series structural passes), and — when no lint denies — compiles
/// the DC and transient stamp plans and proves the PL-series soundness
/// properties for each.
///
/// # Examples
///
/// ```
/// use mssim::{verify_circuit, Circuit, Waveform};
///
/// let mut ckt = Circuit::new();
/// let a = ckt.node("a");
/// ckt.vsource("V1", a, Circuit::GND, Waveform::dc(1.0));
/// ckt.resistor("R1", a, Circuit::GND, 1e3);
/// assert!(verify_circuit(&ckt).is_sound());
/// ```
pub fn verify_circuit(circuit: &Circuit) -> VerifyReport {
    let lint = lint::lint(circuit);
    let mut plan_violations = Vec::new();
    if !lint.has_denials() {
        let layout = MnaLayout::new(circuit);
        for mode in [PlanMode::Dc, PlanMode::Tran] {
            let plan = StampPlan::compile(circuit, &layout, mode);
            let label = match mode {
                PlanMode::Dc => "dc plan",
                PlanMode::Tran => "tran plan",
            };
            plan_violations.extend(verify_plan(circuit, &layout, &plan).into_iter().map(
                |mut v| {
                    v.detail = format!("{label}: {}", v.detail);
                    v
                },
            ));
        }
    }
    VerifyReport {
        lint,
        plan_violations,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::analysis::plan::{MatOp, RhsOp};
    use crate::elements::MosParams;
    use crate::netlist::ElementId;
    use crate::waveform::Waveform;

    /// A circuit exercising every tier: source, resistor, cap, inductor,
    /// MOSFET and diode.
    fn mixed_circuit() -> Circuit {
        let mut ckt = Circuit::new();
        let vin = ckt.node("in");
        let mid = ckt.node("mid");
        let out = ckt.node("out");
        ckt.vsource("V1", vin, Circuit::GND, Waveform::dc(2.5));
        ckt.resistor("R1", vin, mid, 1e3);
        ckt.inductor("L1", mid, out, 1e-6);
        ckt.capacitor("C1", out, Circuit::GND, 1e-12);
        ckt.resistor("R2", out, Circuit::GND, 1e4);
        ckt.mosfet(
            "M1",
            mid,
            vin,
            Circuit::GND,
            MosParams::nmos(320e-9, 1.2e-6),
        );
        ckt.diode("D1", out, Circuit::GND, 1e-14, 1.0);
        ckt
    }

    fn compiled(mode: PlanMode) -> (Circuit, MnaLayout, StampPlan) {
        let ckt = mixed_circuit();
        let layout = MnaLayout::new(&ckt);
        let plan = StampPlan::compile(&ckt, &layout, mode);
        (ckt, layout, plan)
    }

    fn codes_of(violations: &[PlanViolation]) -> Vec<PlanCode> {
        violations.iter().map(|v| v.code).collect()
    }

    #[test]
    fn fresh_plans_verify_clean() {
        for mode in [PlanMode::Dc, PlanMode::Tran] {
            let (ckt, layout, plan) = compiled(mode);
            let violations = verify_plan(&ckt, &layout, &plan);
            assert!(violations.is_empty(), "{mode:?}: {violations:?}");
        }
    }

    // --- PL001 mutation: corrupt a pre-resolved index -------------------

    #[test]
    fn mutated_base_index_caught_as_pl001() {
        let (ckt, layout, mut plan) = compiled(PlanMode::Tran);
        let n = plan.n;
        plan.base_ops[0].idx = n * n; // one past the end
        let violations = verify_plan(&ckt, &layout, &plan);
        assert!(codes_of(&violations).contains(&PlanCode::IndexOutOfBounds));
    }

    #[test]
    fn mutated_rhs_row_caught_as_pl001() {
        let (ckt, layout, mut plan) = compiled(PlanMode::Tran);
        let n = plan.n;
        let row = plan
            .rhs0_ops
            .first()
            .map(|op| op.row)
            .expect("tran plan has rhs0 ops");
        plan.rhs0_ops[0].row = n + row; // out of range
        let violations = verify_plan(&ckt, &layout, &plan);
        assert!(codes_of(&violations).contains(&PlanCode::IndexOutOfBounds));
    }

    #[test]
    fn mutated_companion_slot_caught_as_pl001() {
        let (ckt, layout, mut plan) = compiled(PlanMode::Tran);
        let slots = plan.n_cap_slots;
        let op = plan
            .base_ops
            .iter_mut()
            .find(|op| matches!(op.val, ValRef::CapGeq { .. }))
            .expect("tran plan has cap geq atoms");
        op.val = ValRef::CapGeq {
            slot: slots,
            sign: 1.0,
        };
        let violations = verify_plan(&ckt, &layout, &plan);
        assert!(codes_of(&violations).contains(&PlanCode::IndexOutOfBounds));
    }

    // --- PL002 mutation: place an atom in a too-static tier -------------

    #[test]
    fn source_read_in_base_caught_as_pl002() {
        let (ckt, layout, mut plan) = compiled(PlanMode::Tran);
        assert!(!plan.sources.is_empty());
        // A per-solve source value baked into the cached base matrix: the
        // base key does not cover source bits, so this is the archetypal
        // silent-staleness bug.
        plan.base_ops.push(MatOp {
            idx: 0,
            val: ValRef::Src { src: 0, sign: 1.0 },
        });
        let violations = verify_plan(&ckt, &layout, &plan);
        assert!(codes_of(&violations).contains(&PlanCode::TierViolation));
    }

    #[test]
    fn companion_read_in_dc_plan_caught_as_pl002() {
        let (ckt, layout, mut plan) = compiled(PlanMode::Dc);
        // A DC solve has no companion slices; eval_val would panic.
        plan.rhs0_ops.push(RhsOp {
            row: 0,
            val: ValRef::CapIeq { slot: 0, sign: 1.0 },
        });
        let violations = verify_plan(&ckt, &layout, &plan);
        assert!(codes_of(&violations).contains(&PlanCode::TierViolation));
    }

    // --- PL003 mutation: break the cache-identity hookup ----------------

    #[test]
    fn pruned_dyn_reads_caught_as_pl003() {
        let (ckt, layout, mut plan) = compiled(PlanMode::Tran);
        assert!(!plan.dyn_reads.is_empty(), "mosfet/diode reads expected");
        plan.dyn_reads.clear();
        let violations = verify_plan(&ckt, &layout, &plan);
        assert!(codes_of(&violations).contains(&PlanCode::CacheKeyGap));
    }

    #[test]
    fn wrong_slot_count_caught_as_pl003() {
        let (ckt, layout, mut plan) = compiled(PlanMode::Tran);
        plan.n_cap_slots += 1;
        let violations = verify_plan(&ckt, &layout, &plan);
        assert!(codes_of(&violations).contains(&PlanCode::CacheKeyGap));
    }

    #[test]
    fn corrupted_source_list_caught_as_pl003() {
        let (ckt, layout, mut plan) = compiled(PlanMode::Tran);
        // Point the source list at a non-source element: rhs0 would read
        // the wrong waveform every solve.
        plan.sources[0] = ElementId(1);
        let violations = verify_plan(&ckt, &layout, &plan);
        assert!(codes_of(&violations).contains(&PlanCode::CacheKeyGap));
    }

    // --- PL004 mutation: change the write footprint ---------------------

    #[test]
    fn dropped_stamp_caught_as_pl004() {
        let (ckt, layout, mut plan) = compiled(PlanMode::Tran);
        plan.base_ops.pop();
        let violations = verify_plan(&ckt, &layout, &plan);
        assert!(codes_of(&violations).contains(&PlanCode::FootprintMismatch));
    }

    #[test]
    fn duplicated_stamp_caught_as_pl004() {
        let (ckt, layout, mut plan) = compiled(PlanMode::Tran);
        let dup = plan.base_ops[0];
        plan.base_ops.push(dup);
        let violations = verify_plan(&ckt, &layout, &plan);
        assert!(codes_of(&violations).contains(&PlanCode::FootprintMismatch));
    }

    // --- structural passes ----------------------------------------------

    #[test]
    fn degenerate_self_controlled_vcvs_is_ms020() {
        // v(p) − v(n) − 1·(v(p) − v(n)) = 0: the constraint row cancels
        // to nothing, so no valuation can make the matrix nonsingular.
        let mut ckt = Circuit::new();
        let a = ckt.node("a");
        let b = ckt.node("b");
        ckt.vsource("V1", a, Circuit::GND, Waveform::dc(1.0));
        ckt.resistor("R1", a, b, 1e3);
        ckt.resistor("R2", b, Circuit::GND, 1e3);
        ckt.vcvs("E1", a, b, a, b, 1.0);
        let findings = structural_lint(&ckt, LintContext::Dc);
        assert!(
            findings
                .iter()
                .any(|f| f.code == LintCode::StructurallySingular),
            "expected MS020"
        );
    }

    #[test]
    fn vcvs_loop_is_ms021() {
        // Two VCVS outputs in a loop: the pattern still matches perfectly
        // (±1 incidence is not generic), so only the cycle pass sees it.
        let mut ckt = Circuit::new();
        let a = ckt.node("a");
        let b = ckt.node("b");
        let c = ckt.node("c");
        ckt.vsource("V1", c, Circuit::GND, Waveform::dc(1.0));
        ckt.resistor("Rc", c, Circuit::GND, 1e3);
        ckt.vcvs("E1", a, b, c, Circuit::GND, 2.0);
        ckt.vcvs("E2", a, b, c, Circuit::GND, 3.0);
        ckt.resistor("Ra", a, Circuit::GND, 1e3);
        ckt.resistor("Rb", b, Circuit::GND, 1e3);
        let findings = structural_lint(&ckt, LintContext::Dc);
        assert!(
            findings
                .iter()
                .any(|f| f.code == LintCode::DependentVoltageConstraints),
            "expected MS021, got {:?}",
            findings.iter().map(|f| f.code).collect::<Vec<_>>()
        );
    }

    #[test]
    fn vcvs_parallel_with_vsource_is_ms021() {
        let mut ckt = Circuit::new();
        let a = ckt.node("a");
        let c = ckt.node("c");
        ckt.vsource("V1", a, Circuit::GND, Waveform::dc(1.0));
        ckt.vsource("V2", c, Circuit::GND, Waveform::dc(1.0));
        ckt.resistor("Rc", c, Circuit::GND, 1e3);
        ckt.vcvs("E1", a, Circuit::GND, c, Circuit::GND, 2.0);
        ckt.resistor("Ra", a, Circuit::GND, 1e3);
        let findings = structural_lint(&ckt, LintContext::Dc);
        assert!(findings
            .iter()
            .any(|f| f.code == LintCode::DependentVoltageConstraints));
    }

    #[test]
    fn extreme_magnitude_span_is_ms022() {
        // A chain keeps the extreme conductances on distinct entries: a
        // parallel pair would merge them into one summed diagonal and
        // the small magnitude would disappear into the large one.
        let mut ckt = Circuit::new();
        let a = ckt.node("a");
        let b = ckt.node("b");
        let c = ckt.node("c");
        ckt.vsource("V1", a, Circuit::GND, Waveform::dc(1.0));
        ckt.resistor("Rsmall", a, b, 1e-3); // g = 1e3
        ckt.resistor("Rhuge", b, c, 1e12); // g = 1e-12
        ckt.resistor("Rload", c, Circuit::GND, 1e12);
        let findings = structural_lint(&ckt, LintContext::Dc);
        assert!(
            findings
                .iter()
                .any(|f| f.code == LintCode::IllConditionedBlock),
            "expected MS022, got {:?}",
            findings.iter().map(|f| f.code).collect::<Vec<_>>()
        );
    }

    #[test]
    fn healthy_circuits_have_no_structural_findings() {
        let findings = structural_lint(&mixed_circuit(), LintContext::Dc);
        assert!(findings.is_empty(), "unexpected findings");
        let findings = structural_lint(&mixed_circuit(), LintContext::TransientUic);
        assert!(findings.is_empty(), "unexpected findings");
    }

    #[test]
    fn verify_circuit_is_sound_for_healthy_circuit() {
        let report = verify_circuit(&mixed_circuit());
        assert!(report.is_sound(), "{report}");
    }

    #[test]
    fn verify_circuit_reports_structural_denial() {
        let mut ckt = Circuit::new();
        let a = ckt.node("a");
        let b = ckt.node("b");
        ckt.vsource("V1", a, Circuit::GND, Waveform::dc(1.0));
        ckt.resistor("R1", a, b, 1e3);
        ckt.resistor("R2", b, Circuit::GND, 1e3);
        ckt.vcvs("E1", a, b, a, b, 1.0);
        let report = verify_circuit(&ckt);
        assert!(!report.is_sound());
        assert!(report
            .lint
            .denials()
            .any(|d| d.code == LintCode::StructurallySingular));
        // Denied circuits never reach plan compilation.
        assert!(report.plan_violations.is_empty());
    }
}
