//! Pre-flight static analysis (linting) of circuit netlists.
//!
//! Modified nodal analysis fails in well-understood ways: a node with no
//! element incident produces an all-zero matrix row, a loop of ideal
//! voltage sources produces linearly dependent branch rows, a cutset of
//! current sources makes the KCL equations inconsistent, and a node with
//! no DC-conductive path to ground is pinned only by the `gmin`
//! regularisation and converges to a meaningless voltage. All of these
//! used to surface deep inside an analysis as
//! [`Error::SingularMatrix`](crate::Error::SingularMatrix) with a bare
//! pivot-row number.
//!
//! This module predicts those failures *before* any matrix is assembled
//! and reports them as structured [`Diagnostic`]s that name the offending
//! nodes and elements and suggest a fix. Every analysis entry point
//! ([`dc_operating_point`](crate::analysis::dc_operating_point),
//! [`dc_sweep`](crate::analysis::dc_sweep),
//! [`Transient::run`](crate::analysis::Transient::run),
//! [`ac_analysis`](crate::analysis::ac_analysis),
//! [`noise_analysis`](crate::analysis::noise_analysis))
//! runs the lints as a pre-flight and refuses to start while deny-level
//! diagnostics are present, returning
//! [`Error::LintRejected`](crate::Error::LintRejected).
//!
//! # Lint codes
//!
//! | Code  | Name                     | Default  | Failure prevented |
//! |-------|--------------------------|----------|-------------------|
//! | MS001 | `empty-circuit`          | deny     | zero-sized MNA system |
//! | MS002 | `floating-node`          | deny     | detached subgraph ⇒ singular matrix |
//! | MS003 | `unused-node`            | deny     | node with no element ⇒ all-zero row |
//! | MS004 | `current-source-cutset`  | deny     | KCL inconsistency ⇒ singular/ill-posed system |
//! | MS005 | `voltage-source-loop`    | deny     | dependent branch rows ⇒ singular matrix |
//! | MS006 | `inductor-voltage-loop`  | deny¹    | DC: inductors are shorts ⇒ singular matrix |
//! | MS007 | `no-dc-path-to-ground`   | deny¹    | node pinned only by gmin ⇒ meaningless DC voltage |
//! | MS008 | `non-finite-parameter`   | deny     | NaN/∞ propagates through the solver |
//! | MS009 | `suspicious-value`       | warn     | likely unit mistake (mΩ vs MΩ, F vs pF) |
//! | MS010 | `shorted-element`        | warn     | element with both terminals on one node |
//! | MS011 | `duplicate-element-name` | deny     | ambiguous probes and sweeps |
//! | MS020 | `structurally-singular`  | deny     | no perfect equation/unknown matching ⇒ zero pivot for *any* values |
//! | MS021 | `dependent-voltage-constraints` | deny | cycle of voltage-defining branches ⇒ dependent branch rows |
//! | MS022 | `ill-conditioned-block`  | warn     | stamp-magnitude span predicts LU pivot trouble |
//! | MS030 | `guaranteed-singular-pivot` | deny  | pivot interval is `[0,0]` or straddles zero over declared ranges |
//! | MS031 | `non-finite-stamp-range` | deny     | stamp interval reaches NaN/∞/overflow over declared ranges |
//! | MS032 | `catastrophic-cancellation` | warn  | contributions cancel beyond ~12 decades of their magnitude |
//! | MS033 | `interval-ill-conditioned` | warn   | certified condition bound > 1e12 over declared ranges |
//! | MS034 | `enclosure-unbounded`    | warn     | interval solver could not certify a solution enclosure |
//! | MS035 | `verdict-certified`      | info     | settled-output verdict certified without simulation |
//!
//! MS030–MS035 are derived by the abstract interpreter in
//! [`crate::analyze`] (they need declared parameter ranges), not by the
//! pattern-based [`lint`] pass; MS034/MS035 come from its interval
//! solution solver ([`crate::analyze::triage_circuit`]).
//!
//! ¹ downgraded to warn for transient analysis started from initial
//! conditions (UIC), where inductor and capacitor companion models make
//! the system well-posed — unless the code's severity was set explicitly.
//!
//! # Examples
//!
//! ```
//! use mssim::lint::{lint, LintCode, Severity};
//! use mssim::{Circuit, Waveform};
//!
//! let mut ckt = Circuit::new();
//! let a = ckt.node("a");
//! let b = ckt.node("b");
//! ckt.vsource("V1", a, Circuit::GND, Waveform::dc(1.0));
//! ckt.vsource("V2", a, Circuit::GND, Waveform::dc(2.0)); // conflicting loop
//! ckt.resistor("R1", a, b, 1e3);
//! ckt.capacitor("C1", b, Circuit::GND, 1e-12);
//!
//! let report = lint(&ckt);
//! assert!(report.has_denials());
//! assert!(report
//!     .diagnostics()
//!     .iter()
//!     .any(|d| d.code == LintCode::VoltageSourceLoop && d.severity == Severity::Deny));
//! ```

use std::collections::HashMap;
use std::sync::Mutex;

use crate::elements::Element;
use crate::error::Error;
use crate::netlist::Circuit;

/// How a triggered lint is treated.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum Severity {
    /// The diagnostic is suppressed entirely.
    Allow,
    /// Purely informational: a positive certificate (e.g. MS035), never
    /// a defect. Reported, never blocks analysis.
    Info,
    /// The diagnostic is reported but does not block analysis.
    Warn,
    /// The diagnostic blocks analysis ([`Error::LintRejected`]).
    Deny,
}

impl std::fmt::Display for Severity {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(match self {
            Severity::Allow => "allow",
            Severity::Info => "info",
            Severity::Warn => "warn",
            Severity::Deny => "deny",
        })
    }
}

/// Identifies one class of netlist defect.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
#[non_exhaustive]
pub enum LintCode {
    /// MS001: the circuit contains no elements at all.
    EmptyCircuit,
    /// MS002: a node is used by elements but its subgraph never reaches
    /// ground, so its voltage is undefined.
    FloatingNode,
    /// MS003: a node was declared but no element connects to it, which
    /// produces an all-zero MNA row.
    UnusedNode,
    /// MS004: a region of the circuit is tied to the rest only through
    /// current sources, so KCL over the region is inconsistent.
    CurrentSourceCutset,
    /// MS005: a closed loop of ideal voltage sources (including a source
    /// shorted onto a single node), which over-determines the loop.
    VoltageSourceLoop,
    /// MS006: a closed loop of voltage sources and at least one inductor;
    /// inductors are DC shorts, so the DC system is singular.
    InductorVoltageLoop,
    /// MS007: a node has no DC-conductive path to ground (reached only
    /// through capacitors or not at all), so its DC voltage is set by the
    /// `gmin` regularisation rather than the circuit.
    NoDcPathToGround,
    /// MS008: an element parameter or source value is NaN or infinite.
    NonFiniteParameter,
    /// MS009: a parameter magnitude far outside the plausible physical
    /// range for its unit — usually a prefix mistake.
    SuspiciousValue,
    /// MS010: a two-terminal element with both terminals on the same node.
    ShortedElement,
    /// MS011: two elements share a name (defensive; the builder API
    /// already rejects this).
    DuplicateElementName,
    /// MS020: the MNA sparsity pattern admits no perfect matching between
    /// equations and unknowns, so the matrix is singular for *every*
    /// choice of element values. Detected by maximum bipartite matching
    /// with a Dulmage–Mendelsohn decomposition naming the
    /// under-determined unknowns and over-determined equations (see
    /// [`crate::verify`]).
    StructurallySingular,
    /// MS021: a cycle of voltage-defining branches (voltage sources,
    /// DC-shorted inductors, VCVS outputs) closed by a controlled source,
    /// which makes the branch constraint rows linearly dependent even
    /// though the sparsity pattern alone looks solvable.
    DependentVoltageConstraints,
    /// MS022: the statically-known stamp magnitudes inside one matched
    /// diagonal block span more than ~12 decades, predicting LU pivot
    /// trouble although the system is structurally sound.
    IllConditionedBlock,
    /// MS030: over the declared parameter ranges a node-row pivot is
    /// guaranteed zero (interval exactly `[0, 0]`) or sign-indefinite
    /// (interval straddles zero), so some concrete circuit inside the
    /// envelope yields a singular or sign-flipping pivot. Derived by
    /// [`crate::analyze`].
    GuaranteedSingularPivot,
    /// MS031: a matrix or rhs entry's abstract interval reaches NaN,
    /// infinity, or magnitudes past ~1e300 over the declared ranges, so
    /// concrete assembly can overflow. Derived by [`crate::analyze`].
    NonFiniteStampRange,
    /// MS032: an entry is accumulated from contributions whose summed
    /// magnitudes exceed the residual interval magnitude by more than
    /// ~12 decades — catastrophic cancellation destroys the addends'
    /// precision. Derived by [`crate::analyze`].
    CatastrophicCancellation,
    /// MS033: a Varah-style condition bound of the node-conductance
    /// block, evaluated on interval endpoints, exceeds ~1e12 — the
    /// numeric certificate form of MS022, valid over the whole declared
    /// range. Derived by [`crate::analyze`].
    IntervalIllConditioned,
    /// MS034: the interval linear solver could not certify a solution
    /// enclosure for the abstract MNA system — the Krawczyk contraction
    /// bound is ≥ 1 (or the midpoint system is singular/non-finite), so
    /// nothing can be concluded statically and the circuit must be
    /// simulated. Derived by [`crate::analyze::triage_circuit`].
    EnclosureUnbounded,
    /// MS035: the settled-output verdict of a faulted circuit was
    /// certified statically — the guaranteed Vout enclosure lies
    /// entirely inside (masked) or entirely outside (fail) the
    /// classification bands, so no transient is needed. A positive
    /// certificate, reported at info level. Derived by
    /// [`crate::analyze::triage_circuit`].
    VerdictCertified,
}

/// All analog lint codes, in report order.
pub const ALL_CODES: &[LintCode] = &[
    LintCode::EmptyCircuit,
    LintCode::FloatingNode,
    LintCode::UnusedNode,
    LintCode::CurrentSourceCutset,
    LintCode::VoltageSourceLoop,
    LintCode::InductorVoltageLoop,
    LintCode::NoDcPathToGround,
    LintCode::NonFiniteParameter,
    LintCode::SuspiciousValue,
    LintCode::ShortedElement,
    LintCode::DuplicateElementName,
    LintCode::StructurallySingular,
    LintCode::DependentVoltageConstraints,
    LintCode::IllConditionedBlock,
    LintCode::GuaranteedSingularPivot,
    LintCode::NonFiniteStampRange,
    LintCode::CatastrophicCancellation,
    LintCode::IntervalIllConditioned,
    LintCode::EnclosureUnbounded,
    LintCode::VerdictCertified,
];

impl LintCode {
    /// Stable short identifier, e.g. `"MS005"`.
    pub fn id(self) -> &'static str {
        match self {
            LintCode::EmptyCircuit => "MS001",
            LintCode::FloatingNode => "MS002",
            LintCode::UnusedNode => "MS003",
            LintCode::CurrentSourceCutset => "MS004",
            LintCode::VoltageSourceLoop => "MS005",
            LintCode::InductorVoltageLoop => "MS006",
            LintCode::NoDcPathToGround => "MS007",
            LintCode::NonFiniteParameter => "MS008",
            LintCode::SuspiciousValue => "MS009",
            LintCode::ShortedElement => "MS010",
            LintCode::DuplicateElementName => "MS011",
            LintCode::StructurallySingular => "MS020",
            LintCode::DependentVoltageConstraints => "MS021",
            LintCode::IllConditionedBlock => "MS022",
            LintCode::GuaranteedSingularPivot => "MS030",
            LintCode::NonFiniteStampRange => "MS031",
            LintCode::CatastrophicCancellation => "MS032",
            LintCode::IntervalIllConditioned => "MS033",
            LintCode::EnclosureUnbounded => "MS034",
            LintCode::VerdictCertified => "MS035",
        }
    }

    /// Human-readable kebab-case name, e.g. `"voltage-source-loop"`.
    pub fn name(self) -> &'static str {
        match self {
            LintCode::EmptyCircuit => "empty-circuit",
            LintCode::FloatingNode => "floating-node",
            LintCode::UnusedNode => "unused-node",
            LintCode::CurrentSourceCutset => "current-source-cutset",
            LintCode::VoltageSourceLoop => "voltage-source-loop",
            LintCode::InductorVoltageLoop => "inductor-voltage-loop",
            LintCode::NoDcPathToGround => "no-dc-path-to-ground",
            LintCode::NonFiniteParameter => "non-finite-parameter",
            LintCode::SuspiciousValue => "suspicious-value",
            LintCode::ShortedElement => "shorted-element",
            LintCode::DuplicateElementName => "duplicate-element-name",
            LintCode::StructurallySingular => "structurally-singular",
            LintCode::DependentVoltageConstraints => "dependent-voltage-constraints",
            LintCode::IllConditionedBlock => "ill-conditioned-block",
            LintCode::GuaranteedSingularPivot => "guaranteed-singular-pivot",
            LintCode::NonFiniteStampRange => "non-finite-stamp-range",
            LintCode::CatastrophicCancellation => "catastrophic-cancellation",
            LintCode::IntervalIllConditioned => "interval-ill-conditioned",
            LintCode::EnclosureUnbounded => "enclosure-unbounded",
            LintCode::VerdictCertified => "verdict-certified",
        }
    }

    /// Severity when the user has not configured the code.
    pub fn default_severity(self) -> Severity {
        match self {
            LintCode::SuspiciousValue
            | LintCode::ShortedElement
            | LintCode::IllConditionedBlock
            | LintCode::CatastrophicCancellation
            | LintCode::IntervalIllConditioned
            | LintCode::EnclosureUnbounded => Severity::Warn,
            LintCode::VerdictCertified => Severity::Info,
            _ => Severity::Deny,
        }
    }
}

impl std::fmt::Display for LintCode {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{} ({})", self.id(), self.name())
    }
}

/// Per-code severity configuration.
///
/// Codes not explicitly configured use [`LintCode::default_severity`].
/// Attach a config to a circuit with [`Circuit::set_lint_config`] to make
/// analysis pre-flights honour it.
///
/// # Examples
///
/// ```
/// use mssim::lint::{LintCode, LintConfig, Severity};
///
/// let cfg = LintConfig::new()
///     .allow(LintCode::SuspiciousValue)
///     .deny(LintCode::ShortedElement);
/// assert_eq!(cfg.severity(LintCode::ShortedElement), Severity::Deny);
/// assert!(!cfg.is_overridden(LintCode::FloatingNode));
/// ```
#[derive(Debug, Clone, Default, PartialEq)]
pub struct LintConfig {
    overrides: Vec<(LintCode, Severity)>,
}

impl LintConfig {
    /// A config in which every code has its default severity.
    pub fn new() -> Self {
        Self::default()
    }

    /// Sets `code` to the given severity (builder style).
    pub fn set(mut self, code: LintCode, severity: Severity) -> Self {
        self.set_severity(code, severity);
        self
    }

    /// Sets `code` to the given severity in place — the non-builder form
    /// for configs already attached to a circuit, reached through
    /// [`Circuit::lint_config_mut`], which also invalidates any memoized
    /// pre-flight verdicts computed under the old severities.
    pub fn set_severity(&mut self, code: LintCode, severity: Severity) {
        if let Some(slot) = self.overrides.iter_mut().find(|(c, _)| *c == code) {
            slot.1 = severity;
        } else {
            self.overrides.push((code, severity));
        }
    }

    /// Suppresses `code` entirely.
    pub fn allow(self, code: LintCode) -> Self {
        self.set(code, Severity::Allow)
    }

    /// Reports `code` without blocking analysis.
    pub fn warn(self, code: LintCode) -> Self {
        self.set(code, Severity::Warn)
    }

    /// Makes `code` block analysis.
    pub fn deny(self, code: LintCode) -> Self {
        self.set(code, Severity::Deny)
    }

    /// Effective severity of `code` under this config.
    pub fn severity(&self, code: LintCode) -> Severity {
        self.overrides
            .iter()
            .find(|(c, _)| *c == code)
            .map(|&(_, s)| s)
            .unwrap_or_else(|| code.default_severity())
    }

    /// `true` if the user explicitly configured `code` (context-based
    /// downgrades only apply to non-overridden codes).
    pub fn is_overridden(&self, code: LintCode) -> bool {
        self.overrides.iter().any(|(c, _)| *c == code)
    }
}

/// The analysis an upcoming run is linted for; relaxes DC-only rules
/// where the analysis is well-posed anyway.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum LintContext {
    /// A DC solve happens (operating point, sweep, AC/noise around an
    /// operating point, or a transient that starts from one).
    #[default]
    Dc,
    /// Transient from initial conditions: capacitor and inductor companion
    /// models conduct, so MS006/MS007 are downgraded to warnings when the
    /// node is reachable through reactive elements.
    TransientUic,
}

/// One reported defect.
#[derive(Debug, Clone, PartialEq)]
pub struct Diagnostic {
    /// Which lint fired.
    pub code: LintCode,
    /// Effective severity after config and context.
    pub severity: Severity,
    /// Names of the offending nodes and/or elements.
    pub elements: Vec<String>,
    /// What is wrong, in terms of the named nodes/elements.
    pub message: String,
    /// How to fix it, when a stock suggestion exists.
    pub suggestion: Option<String>,
}

impl std::fmt::Display for Diagnostic {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "{}: {} [{}]: {}",
            self.severity,
            self.code.id(),
            self.code.name(),
            self.message
        )?;
        if let Some(s) = &self.suggestion {
            write!(f, " (help: {s})")?;
        }
        Ok(())
    }
}

/// The outcome of linting one circuit.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct LintReport {
    diagnostics: Vec<Diagnostic>,
}

impl LintReport {
    /// All diagnostics, most severe first, in pass order within a severity.
    pub fn diagnostics(&self) -> &[Diagnostic] {
        &self.diagnostics
    }

    /// Diagnostics at deny level.
    pub fn denials(&self) -> impl Iterator<Item = &Diagnostic> {
        self.diagnostics
            .iter()
            .filter(|d| d.severity == Severity::Deny)
    }

    /// Diagnostics at warn level.
    pub fn warnings(&self) -> impl Iterator<Item = &Diagnostic> {
        self.diagnostics
            .iter()
            .filter(|d| d.severity == Severity::Warn)
    }

    /// `true` if any deny-level diagnostic is present.
    pub fn has_denials(&self) -> bool {
        self.denials().next().is_some()
    }

    /// `true` if nothing (warn or deny) was reported.
    pub fn is_clean(&self) -> bool {
        self.diagnostics.is_empty()
    }

    fn push(&mut self, severity: Severity, code: LintCode, d: Diagnostic) {
        debug_assert_eq!(d.code, code);
        if severity != Severity::Allow {
            self.diagnostics.push(d);
        }
    }
}

impl std::fmt::Display for LintReport {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        if self.diagnostics.is_empty() {
            return writeln!(f, "lint: clean");
        }
        for d in &self.diagnostics {
            writeln!(f, "{d}")?;
        }
        let denies = self.denials().count();
        let warns = self.warnings().count();
        writeln!(f, "lint: {denies} deny, {warns} warn")
    }
}

/// Lints `circuit` with its attached config (see
/// [`Circuit::set_lint_config`]) for a DC-style analysis.
pub fn lint(circuit: &Circuit) -> LintReport {
    lint_with(circuit, circuit.lint_config(), LintContext::Dc)
}

/// Lints `circuit` with an explicit config and analysis context.
pub fn lint_with(circuit: &Circuit, config: &LintConfig, context: LintContext) -> LintReport {
    let mut report = LintReport::default();
    let linter = Linter {
        ckt: circuit,
        cfg: config,
        ctx: context,
    };
    if linter.check_empty(&mut report) {
        return finish(report);
    }
    linter.check_connectivity(&mut report);
    linter.check_source_loops(&mut report);
    linter.check_parameters(&mut report);
    linter.check_shorted(&mut report);
    linter.check_duplicate_names(&mut report);
    linter.check_structural(&mut report);
    finish(report)
}

fn finish(mut report: LintReport) -> LintReport {
    // Most severe first; stable within a severity so pass order is kept.
    report
        .diagnostics
        .sort_by_key(|d| std::cmp::Reverse(d.severity));
    report
}

struct Linter<'a> {
    ckt: &'a Circuit,
    cfg: &'a LintConfig,
    ctx: LintContext,
}

impl Linter<'_> {
    /// Configured severity with context-sensitive downgrades for
    /// non-overridden codes.
    fn severity(&self, code: LintCode) -> Severity {
        let base = self.cfg.severity(code);
        if self.ctx == LintContext::TransientUic
            && !self.cfg.is_overridden(code)
            && code == LintCode::InductorVoltageLoop
        {
            // Inductor companions are resistive in the transient, so a
            // V/L loop only breaks the (skipped) DC solve.
            return Severity::Warn;
        }
        base
    }

    fn emit(
        &self,
        report: &mut LintReport,
        code: LintCode,
        severity: Severity,
        elements: Vec<String>,
        message: String,
        suggestion: Option<&str>,
    ) {
        report.push(
            severity,
            code,
            Diagnostic {
                code,
                severity,
                elements,
                message,
                suggestion: suggestion.map(str::to_owned),
            },
        );
    }

    fn check_empty(&self, report: &mut LintReport) -> bool {
        if self.ckt.element_count() > 0 {
            return false;
        }
        let sev = self.severity(LintCode::EmptyCircuit);
        self.emit(
            report,
            LintCode::EmptyCircuit,
            sev,
            Vec::new(),
            "circuit has no elements".to_owned(),
            Some("add at least one source and one load before running an analysis"),
        );
        true
    }

    /// MS002/MS003/MS004/MS007: flood fills from ground over progressively
    /// stricter edge sets. Each defective node is reported under the first
    /// (most fundamental) category that explains it.
    fn check_connectivity(&self, report: &mut LintReport) {
        let n = self.ckt.node_count();
        let mut used = vec![false; n];
        used[0] = true;
        for (_, _, e) in self.ckt.elements() {
            for nd in e.nodes() {
                used[nd.index()] = true;
            }
        }

        let reach_all = self.flood(|_| true);
        let reach_no_isrc = self.flood(|e| !matches!(e, Element::CurrentSource { .. }));
        let reach_cond = self.flood_conductive(false);
        let reach_cond_caps = self.flood_conductive(true);

        for idx in 1..n {
            let name = self.ckt.node_name(crate::netlist::NodeId(idx));
            if !used[idx] {
                let sev = self.severity(LintCode::UnusedNode);
                self.emit(
                    report,
                    LintCode::UnusedNode,
                    sev,
                    vec![name.to_owned()],
                    format!("node '{name}' is declared but no element connects to it"),
                    Some("remove the node or wire an element to it; an empty node makes the MNA row all zeros"),
                );
            } else if !reach_all[idx] {
                let sev = self.severity(LintCode::FloatingNode);
                self.emit(
                    report,
                    LintCode::FloatingNode,
                    sev,
                    vec![name.to_owned()],
                    format!("node '{name}' is not connected to ground"),
                    Some("connect the subgraph to ground (directly or through other elements)"),
                );
            } else if !reach_no_isrc[idx] {
                let crossing = self.crossing_current_sources(&reach_no_isrc);
                let sev = self.severity(LintCode::CurrentSourceCutset);
                self.emit(
                    report,
                    LintCode::CurrentSourceCutset,
                    sev,
                    crossing.clone(),
                    format!(
                        "node '{name}' is tied to the rest of the circuit only through current source(s) {}",
                        crossing.join(", ")
                    ),
                    Some("add a DC return path (e.g. a large resistor) in parallel with the current source"),
                );
            } else if !reach_cond[idx] {
                // Reached through capacitors (or gate/ctrl pins) only: the
                // DC voltage is set by gmin, not the circuit. Under UIC the
                // capacitor companion conducts, so reachable-through-caps
                // nodes are only worth a warning.
                let mut sev = self.severity(LintCode::NoDcPathToGround);
                if self.ctx == LintContext::TransientUic
                    && !self.cfg.is_overridden(LintCode::NoDcPathToGround)
                    && reach_cond_caps[idx]
                {
                    sev = Severity::Warn;
                }
                self.emit(
                    report,
                    LintCode::NoDcPathToGround,
                    sev,
                    vec![name.to_owned()],
                    format!("node '{name}' has no DC-conductive path to ground"),
                    Some("add a bleed resistor to ground, or drive the node through a conductive element"),
                );
            }
        }
    }

    /// Flood fill from ground over the elements selected by `keep`.
    fn flood(&self, keep: impl Fn(&Element) -> bool) -> Vec<bool> {
        let n = self.ckt.node_count();
        let mut reached = vec![false; n];
        reached[0] = true;
        let mut changed = true;
        while changed {
            changed = false;
            for (_, _, e) in self.ckt.elements() {
                if !keep(e) {
                    continue;
                }
                let nodes = e.nodes();
                if nodes.iter().any(|nd| reached[nd.index()]) {
                    for nd in nodes {
                        if !reached[nd.index()] {
                            reached[nd.index()] = true;
                            changed = true;
                        }
                    }
                }
            }
        }
        reached
    }

    /// Flood fill over DC-conductive terminal pairs only. MOSFET gates,
    /// switch control pins and current sources conduct no DC current;
    /// capacitors conduct only when `caps_conduct` (transient companions).
    fn flood_conductive(&self, caps_conduct: bool) -> Vec<bool> {
        let n = self.ckt.node_count();
        let mut reached = vec![false; n];
        reached[0] = true;
        let mut changed = true;
        while changed {
            changed = false;
            for (_, _, e) in self.ckt.elements() {
                let pair: Option<(usize, usize)> = match *e {
                    Element::Resistor { a, b, .. } | Element::Inductor { a, b, .. } => {
                        Some((a.index(), b.index()))
                    }
                    Element::Capacitor { a, b, .. } => {
                        caps_conduct.then_some((a.index(), b.index()))
                    }
                    Element::VoltageSource { pos, neg, .. } => Some((pos.index(), neg.index())),
                    Element::CurrentSource { .. } => None,
                    Element::Mosfet { d, s, .. } => Some((d.index(), s.index())),
                    Element::Switch { a, b, .. } => Some((a.index(), b.index())),
                    Element::Diode { a, k, .. } => Some((a.index(), k.index())),
                    // A VCVS output is an ideal (controlled) voltage
                    // source: it conducts. Its control pins and a VCCS
                    // conduct no current, like an independent isource.
                    Element::Vcvs { p, n, .. } => Some((p.index(), n.index())),
                    Element::Vccs { .. } => None,
                };
                if let Some((u, v)) = pair {
                    if reached[u] != reached[v] {
                        reached[u] = true;
                        reached[v] = true;
                        changed = true;
                    }
                }
            }
        }
        reached
    }

    /// Current sources with exactly one endpoint inside the non-reached
    /// region of `reach` — the cutset members.
    fn crossing_current_sources(&self, reach: &[bool]) -> Vec<String> {
        self.ckt
            .elements()
            .filter_map(|(_, name, e)| match *e {
                Element::CurrentSource { from, to, .. }
                    if reach[from.index()] != reach[to.index()] =>
                {
                    Some(name.to_owned())
                }
                _ => None,
            })
            .collect()
    }

    /// MS005/MS006: union-find over voltage-source edges, then inductor
    /// edges. An edge that closes a cycle is reported; the union-find
    /// state carries which elements merged each component so the report
    /// can name the whole loop.
    fn check_source_loops(&self, report: &mut LintReport) {
        let mut dsu = Dsu::new(self.ckt.node_count());
        // Track the member elements of each component so the diagnostic
        // can list the full loop, not just the closing edge.
        let mut members: HashMap<usize, Vec<String>> = HashMap::new();

        let pass = |report: &mut LintReport,
                    dsu: &mut Dsu,
                    members: &mut HashMap<usize, Vec<String>>,
                    code: LintCode,
                    filter: &dyn Fn(&Element) -> Option<(usize, usize)>| {
            for (_, name, e) in self.ckt.elements() {
                let Some((u, v)) = filter(e) else { continue };
                let (ru, rv) = (dsu.find(u), dsu.find(v));
                if ru == rv {
                    let mut loop_elems = members.get(&ru).cloned().unwrap_or_default();
                    loop_elems.push(name.to_owned());
                    let sev = self.severity(code);
                    let what = match code {
                        LintCode::VoltageSourceLoop => "voltage sources",
                        _ => "voltage sources and inductors",
                    };
                    self.emit(
                        report,
                        code,
                        sev,
                        loop_elems.clone(),
                        format!(
                            "'{name}' closes a loop of ideal {what} ({})",
                            loop_elems.join(", ")
                        ),
                        Some("break the loop with a small series resistance, or remove the redundant element"),
                    );
                    continue;
                }
                let root = dsu.union(ru, rv);
                let mut merged = members.remove(&ru).unwrap_or_default();
                merged.extend(members.remove(&rv).unwrap_or_default());
                merged.push(name.to_owned());
                members.insert(root, merged);
            }
        };

        pass(
            report,
            &mut dsu,
            &mut members,
            LintCode::VoltageSourceLoop,
            &|e| match *e {
                Element::VoltageSource { pos, neg, .. } => Some((pos.index(), neg.index())),
                _ => None,
            },
        );
        pass(
            report,
            &mut dsu,
            &mut members,
            LintCode::InductorVoltageLoop,
            &|e| match *e {
                Element::Inductor { a, b, .. } => Some((a.index(), b.index())),
                _ => None,
            },
        );
    }

    /// MS008/MS009: every numeric parameter must be finite, and a few
    /// magnitudes are compared against generous physical ranges to catch
    /// unit-prefix mistakes.
    fn check_parameters(&self, report: &mut LintReport) {
        for (_, name, e) in self.ckt.elements() {
            let non_finite = |what: &str, v: f64, report: &mut LintReport| {
                if !v.is_finite() {
                    let sev = self.severity(LintCode::NonFiniteParameter);
                    self.emit(
                        report,
                        LintCode::NonFiniteParameter,
                        sev,
                        vec![name.to_owned()],
                        format!("'{name}': {what} is {v}, which is not finite"),
                        Some("replace the NaN/infinite value; it would poison every solver iteration"),
                    );
                }
            };
            let suspicious = |what: &str, v: f64, lo: f64, hi: f64, report: &mut LintReport| {
                if v.is_finite() && (v < lo || v > hi) {
                    let sev = self.severity(LintCode::SuspiciousValue);
                    self.emit(
                        report,
                        LintCode::SuspiciousValue,
                        sev,
                        vec![name.to_owned()],
                        format!(
                            "'{name}': {what} of {v:.3e} is outside the plausible range [{lo:.0e}, {hi:.0e}]"
                        ),
                        Some("double-check the unit prefix (e.g. pF vs F, mΩ vs MΩ)"),
                    );
                }
            };
            match *e {
                Element::Resistor { ohms, .. } => {
                    non_finite("resistance", ohms, report);
                    suspicious("resistance", ohms, 1e-3, 1e12, report);
                }
                Element::Capacitor {
                    farads,
                    initial_voltage,
                    ..
                } => {
                    non_finite("capacitance", farads, report);
                    non_finite("initial voltage", initial_voltage, report);
                    suspicious("capacitance", farads, 1e-18, 1.0, report);
                }
                Element::Inductor {
                    henries,
                    initial_current,
                    ..
                } => {
                    non_finite("inductance", henries, report);
                    non_finite("initial current", initial_current, report);
                    suspicious("inductance", henries, 1e-15, 1e3, report);
                }
                Element::VoltageSource { ref waveform, .. }
                | Element::CurrentSource { ref waveform, .. } => {
                    non_finite("source value at t=0", waveform.value(0.0), report);
                }
                Element::Mosfet { ref params, .. } => {
                    non_finite("width", params.w, report);
                    non_finite("length", params.l, report);
                    non_finite("vth0", params.vth0, report);
                    non_finite("kp", params.kp, report);
                    non_finite("lambda", params.lambda, report);
                    suspicious("channel width", params.w, 1e-9, 1e-2, report);
                    suspicious("channel length", params.l, 1e-9, 1e-2, report);
                }
                Element::Switch {
                    threshold,
                    r_on,
                    r_off,
                    ..
                } => {
                    non_finite("threshold", threshold, report);
                    non_finite("r_on", r_on, report);
                    non_finite("r_off", r_off, report);
                    suspicious("on-resistance", r_on, 1e-3, 1e12, report);
                }
                Element::Diode { i_sat, n, .. } => {
                    non_finite("saturation current", i_sat, report);
                    non_finite("emission coefficient", n, report);
                }
                Element::Vcvs { gain, .. } => {
                    non_finite("gain", gain, report);
                    suspicious("gain magnitude", gain.abs(), 1e-12, 1e6, report);
                }
                Element::Vccs { gm, .. } => {
                    non_finite("transconductance", gm, report);
                    suspicious("transconductance magnitude", gm.abs(), 1e-15, 1e3, report);
                }
            }
        }
    }

    /// MS010: two-terminal elements (and switch contacts) with both
    /// terminals on the same node stamp nothing and usually indicate a
    /// wiring mistake.
    fn check_shorted(&self, report: &mut LintReport) {
        for (_, name, e) in self.ckt.elements() {
            let shorted = match *e {
                Element::Resistor { a, b, .. }
                | Element::Capacitor { a, b, .. }
                | Element::Inductor { a, b, .. }
                | Element::Switch { a, b, .. } => a == b,
                Element::VoltageSource { pos, neg, .. } => pos == neg,
                Element::CurrentSource { from, to, .. } => from == to,
                Element::Diode { a, k, .. } => a == k,
                Element::Vcvs { p, n, .. } => p == n,
                Element::Vccs { from, to, .. } => from == to,
                _ => false,
            };
            if shorted {
                let sev = self.severity(LintCode::ShortedElement);
                self.emit(
                    report,
                    LintCode::ShortedElement,
                    sev,
                    vec![name.to_owned()],
                    format!("'{name}' has both terminals on the same node"),
                    Some("rewire one terminal, or delete the element if it is intentional dead weight"),
                );
            }
            // A controlled source whose control terminals coincide sees a
            // control voltage that is identically zero: the element is a
            // constant-zero source in disguise.
            let ctrl_shorted = match *e {
                Element::Vcvs { cp, cn, .. } | Element::Vccs { cp, cn, .. } => cp == cn,
                _ => false,
            };
            if ctrl_shorted {
                let sev = self.severity(LintCode::ShortedElement);
                self.emit(
                    report,
                    LintCode::ShortedElement,
                    sev,
                    vec![name.to_owned()],
                    format!("'{name}' has both control terminals on the same node, so its control voltage is identically zero"),
                    Some("rewire a control terminal; a zero control voltage makes the source output a constant 0"),
                );
            }
        }
    }

    /// MS020/MS021/MS022: structural solvability of the induced MNA
    /// system (maximum matching, voltage-constraint cycles, conditioning
    /// spans — see [`crate::verify`]). Skipped while deny-level topology
    /// diagnostics are present: a floating node already explains the
    /// singularity, and the matching would only restate it less helpfully.
    fn check_structural(&self, report: &mut LintReport) {
        if report.has_denials() {
            return;
        }
        for finding in crate::verify::structural_lint(self.ckt, self.ctx) {
            let sev = self.severity(finding.code);
            self.emit(
                report,
                finding.code,
                sev,
                finding.elements,
                finding.message,
                finding.suggestion.as_deref(),
            );
        }
    }

    /// MS011: defensive duplicate-name scan. The builder API rejects
    /// duplicates eagerly, so this only fires for netlists constructed
    /// through future non-builder paths.
    fn check_duplicate_names(&self, report: &mut LintReport) {
        let mut seen: HashMap<&str, usize> = HashMap::new();
        for (_, name, _) in self.ckt.elements() {
            *seen.entry(name).or_insert(0) += 1;
        }
        for (name, count) in seen {
            if count > 1 {
                let sev = self.severity(LintCode::DuplicateElementName);
                self.emit(
                    report,
                    LintCode::DuplicateElementName,
                    sev,
                    vec![name.to_owned()],
                    format!("element name '{name}' is used {count} times"),
                    Some("rename the duplicates; probes and sweeps address elements by name"),
                );
            }
        }
    }
}

/// Union-find over node indices.
struct Dsu {
    parent: Vec<usize>,
}

impl Dsu {
    fn new(n: usize) -> Self {
        Dsu {
            parent: (0..n).collect(),
        }
    }

    fn find(&mut self, mut x: usize) -> usize {
        while self.parent[x] != x {
            self.parent[x] = self.parent[self.parent[x]];
            x = self.parent[x];
        }
        x
    }

    /// Merges the components of two roots, returning the surviving root.
    fn union(&mut self, ra: usize, rb: usize) -> usize {
        self.parent[rb] = ra;
        ra
    }
}

/// Memoized pre-flight verdicts, stored on the [`Circuit`] itself.
///
/// Analyses that re-enter `preflight` on an unmodified circuit (a DC
/// sweep followed by a transient, a Monte-Carlo loop re-running the same
/// netlist) pay the full lint walk only once. Entries are keyed by the
/// circuit's mutation revision plus the [`LintContext`]; any mutation
/// bumps the revision, so stale verdicts simply never match and are
/// evicted on the next store.
///
/// The interior mutex makes the cache usable from `&Circuit` (analyses
/// only hold shared references) and keeps `Circuit: Sync` for the sweep
/// drivers. Two threads racing on a cold cache both compute the verdict
/// and one store wins — wasted work, never a wrong answer.
pub(crate) struct LintCache {
    /// `(revision, context, deny-level violations)`; empty vec = clean.
    entries: Mutex<Vec<(u64, LintContext, Vec<String>)>>,
}

impl LintCache {
    fn lookup(&self, revision: u64, context: LintContext) -> Option<Vec<String>> {
        let entries = self.entries.lock().unwrap_or_else(|e| e.into_inner());
        entries
            .iter()
            .find(|(rev, ctx, _)| *rev == revision && *ctx == context)
            .map(|(_, _, v)| v.clone())
    }

    fn store(&self, revision: u64, context: LintContext, violations: Vec<String>) {
        let mut entries = self.entries.lock().unwrap_or_else(|e| e.into_inner());
        // Verdicts for older revisions can never match again; drop them.
        entries.retain(|(rev, ctx, _)| *rev == revision && *ctx != context);
        entries.push((revision, context, violations));
    }

    /// Number of live entries (test observability).
    #[cfg(test)]
    fn len(&self) -> usize {
        self.entries.lock().unwrap_or_else(|e| e.into_inner()).len()
    }
}

impl Default for LintCache {
    fn default() -> Self {
        LintCache {
            entries: Mutex::new(Vec::new()),
        }
    }
}

// Manual impls: `Circuit` derives Clone/Debug and a `Mutex` supports
// neither. Cloning carries the verdicts over (the clone starts at the
// same revision with identical contents, so they remain valid).
impl Clone for LintCache {
    fn clone(&self) -> Self {
        let entries = self.entries.lock().unwrap_or_else(|e| e.into_inner());
        LintCache {
            entries: Mutex::new(entries.clone()),
        }
    }
}

impl std::fmt::Debug for LintCache {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let entries = self.entries.lock().unwrap_or_else(|e| e.into_inner());
        f.debug_struct("LintCache")
            .field("entries", &entries.len())
            .finish()
    }
}

/// Runs the lints and refuses with [`Error::LintRejected`] if any
/// deny-level diagnostic is present. Used by every analysis entry point.
///
/// Verdicts are memoized per circuit revision and context in the
/// circuit's [`LintCache`], so repeated analyses on an unmodified
/// netlist lint once.
pub(crate) fn preflight(
    circuit: &Circuit,
    analysis: &'static str,
    context: LintContext,
) -> Result<(), Error> {
    let revision = circuit.revision();
    let violations = circuit
        .lint_cache()
        .lookup(revision, context)
        .unwrap_or_else(|| {
            let report = lint_with(circuit, circuit.lint_config(), context);
            let violations: Vec<String> = report.denials().map(|d| d.to_string()).collect();
            circuit
                .lint_cache()
                .store(revision, context, violations.clone());
            violations
        });
    if violations.is_empty() {
        Ok(())
    } else {
        Err(Error::LintRejected {
            analysis,
            violations,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::waveform::Waveform;

    fn codes(report: &LintReport) -> Vec<LintCode> {
        report.diagnostics().iter().map(|d| d.code).collect()
    }

    fn rc_divider() -> Circuit {
        let mut ckt = Circuit::new();
        let a = ckt.node("a");
        let b = ckt.node("b");
        ckt.vsource("V1", a, Circuit::GND, Waveform::dc(1.0));
        ckt.resistor("R1", a, b, 1e3);
        ckt.capacitor("C1", b, Circuit::GND, 1e-12);
        ckt.resistor("R2", b, Circuit::GND, 1e3);
        ckt
    }

    #[test]
    fn clean_circuit_is_clean() {
        let report = lint(&rc_divider());
        assert!(report.is_clean(), "unexpected: {report}");
    }

    #[test]
    fn preflight_memoizes_per_revision_and_context() {
        let ckt = rc_divider();
        assert_eq!(ckt.lint_cache().len(), 0);
        preflight(&ckt, "dc", LintContext::Dc).unwrap();
        assert_eq!(ckt.lint_cache().len(), 1);
        // Second run at the same revision reuses the verdict: still one
        // entry, and it must agree.
        preflight(&ckt, "dc", LintContext::Dc).unwrap();
        assert_eq!(ckt.lint_cache().len(), 1);
        // A different context is a distinct verdict at the same revision.
        preflight(&ckt, "transient", LintContext::TransientUic).unwrap();
        assert_eq!(ckt.lint_cache().len(), 2);
    }

    #[test]
    fn preflight_cache_invalidated_by_mutation() {
        let mut ckt = rc_divider();
        let src = ckt.find_element("V1").unwrap();
        preflight(&ckt, "dc", LintContext::Dc).unwrap();
        assert_eq!(ckt.lint_cache().len(), 1);
        // Swapping the waveform to a NaN value must flip the verdict —
        // the lint inspects the t=0 source value, so a stale cached
        // "clean" would wrongly admit the broken netlist.
        ckt.set_waveform(src, Waveform::dc(f64::NAN)).unwrap();
        let err = preflight(&ckt, "dc", LintContext::Dc).unwrap_err();
        assert!(matches!(err, Error::LintRejected { analysis: "dc", .. }));
        // Old-revision entries are evicted on store.
        assert_eq!(ckt.lint_cache().len(), 1);
        // Restoring the waveform restores the clean verdict.
        ckt.set_waveform(src, Waveform::dc(1.0)).unwrap();
        preflight(&ckt, "dc", LintContext::Dc).unwrap();
        assert_eq!(ckt.lint_cache().len(), 1);
    }

    #[test]
    fn preflight_cache_invalidated_by_lint_config_mutation() {
        let mut ckt = rc_divider();
        let b = ckt.node("b");
        ckt.resistor("Rshort", b, b, 1e3); // warn by default: preflight passes
        preflight(&ckt, "dc", LintContext::Dc).unwrap();
        assert_eq!(ckt.lint_cache().len(), 1);
        // Escalating a severity after a memoized clean verdict must
        // invalidate it — the same netlist is now supposed to be rejected.
        ckt.lint_config_mut()
            .set_severity(LintCode::ShortedElement, Severity::Deny);
        let err = preflight(&ckt, "dc", LintContext::Dc).unwrap_err();
        assert!(matches!(err, Error::LintRejected { analysis: "dc", .. }));
        // And relaxing it back re-admits the circuit.
        ckt.lint_config_mut()
            .set_severity(LintCode::ShortedElement, Severity::Allow);
        preflight(&ckt, "dc", LintContext::Dc).unwrap();
    }

    #[test]
    fn lint_cache_survives_clone() {
        let ckt = rc_divider();
        preflight(&ckt, "dc", LintContext::Dc).unwrap();
        let copy = ckt.clone();
        // The clone starts with the verdicts carried over and still valid.
        assert_eq!(copy.lint_cache().len(), 1);
        preflight(&copy, "dc", LintContext::Dc).unwrap();
        assert_eq!(copy.lint_cache().len(), 1);
    }

    #[test]
    fn empty_circuit_denied() {
        let report = lint(&Circuit::new());
        assert_eq!(codes(&report), vec![LintCode::EmptyCircuit]);
        assert!(report.has_denials());
    }

    #[test]
    fn unused_node_denied() {
        let mut ckt = rc_divider();
        ckt.node("orphan");
        let report = lint(&ckt);
        assert_eq!(codes(&report), vec![LintCode::UnusedNode]);
        assert_eq!(report.diagnostics()[0].elements, vec!["orphan"]);
    }

    #[test]
    fn detached_island_denied() {
        let mut ckt = rc_divider();
        let x = ckt.node("x");
        let y = ckt.node("y");
        ckt.resistor("Risland", x, y, 1e3);
        let report = lint(&ckt);
        assert_eq!(codes(&report), vec![LintCode::FloatingNode; 2]);
        assert!(report.diagnostics()[0]
            .message
            .contains("not connected to ground"));
    }

    #[test]
    fn current_source_cutset_denied() {
        let mut ckt = rc_divider();
        let z = ckt.node("z");
        ckt.isource("I1", Circuit::GND, z, Waveform::dc(1e-6));
        ckt.isource("I2", z, Circuit::GND, Waveform::dc(1e-6));
        let report = lint(&ckt);
        assert_eq!(codes(&report), vec![LintCode::CurrentSourceCutset]);
        let d = &report.diagnostics()[0];
        assert!(d.elements.contains(&"I1".to_owned()));
        assert!(d.elements.contains(&"I2".to_owned()));
    }

    #[test]
    fn isource_with_parallel_resistor_is_fine() {
        let mut ckt = rc_divider();
        let z = ckt.node("z");
        ckt.isource("I1", Circuit::GND, z, Waveform::dc(1e-6));
        ckt.resistor("Rpar", z, Circuit::GND, 1e6);
        assert!(lint(&ckt).is_clean());
    }

    #[test]
    fn voltage_source_loop_denied() {
        let mut ckt = rc_divider();
        let a = ckt.node("a");
        ckt.vsource("V2", a, Circuit::GND, Waveform::dc(2.0));
        let report = lint(&ckt);
        assert_eq!(codes(&report), vec![LintCode::VoltageSourceLoop]);
        let d = &report.diagnostics()[0];
        assert!(d.elements.contains(&"V1".to_owned()));
        assert!(d.elements.contains(&"V2".to_owned()));
    }

    #[test]
    fn shorted_vsource_is_a_self_loop() {
        let mut ckt = rc_divider();
        let a = ckt.node("a");
        ckt.vsource("Vshort", a, a, Waveform::dc(1.0));
        let report = lint(&ckt);
        assert!(codes(&report).contains(&LintCode::VoltageSourceLoop));
        assert!(codes(&report).contains(&LintCode::ShortedElement));
    }

    #[test]
    fn inductor_across_vsource_denied_for_dc() {
        let mut ckt = rc_divider();
        let a = ckt.node("a");
        ckt.inductor("L1", a, Circuit::GND, 1e-6);
        let report = lint(&ckt);
        assert_eq!(codes(&report), vec![LintCode::InductorVoltageLoop]);
    }

    #[test]
    fn inductor_loop_downgraded_under_uic() {
        let mut ckt = rc_divider();
        let a = ckt.node("a");
        ckt.inductor("L1", a, Circuit::GND, 1e-6);
        let report = lint_with(&ckt, &LintConfig::new(), LintContext::TransientUic);
        assert!(!report.has_denials());
        assert_eq!(report.warnings().count(), 1);
        // ...unless the user explicitly configured the code.
        let cfg = LintConfig::new().deny(LintCode::InductorVoltageLoop);
        let report = lint_with(&ckt, &cfg, LintContext::TransientUic);
        assert!(report.has_denials());
    }

    #[test]
    fn cap_only_node_has_no_dc_path() {
        let mut ckt = rc_divider();
        let b = ckt.node("b");
        let c = ckt.node("c");
        ckt.capacitor("Cc", b, c, 1e-12);
        ckt.capacitor("Cg", c, Circuit::GND, 1e-12);
        let report = lint(&ckt);
        assert_eq!(codes(&report), vec![LintCode::NoDcPathToGround]);
        assert!(report.has_denials());
        // Under UIC the capacitor companions conduct: warning only.
        let report = lint_with(&ckt, &LintConfig::new(), LintContext::TransientUic);
        assert!(!report.has_denials());
        assert_eq!(report.warnings().count(), 1);
    }

    #[test]
    fn floating_mosfet_gate_detected() {
        let mut ckt = rc_divider();
        let a = ckt.node("a");
        let gate = ckt.node("gate");
        ckt.mosfet(
            "M1",
            a,
            gate,
            Circuit::GND,
            crate::elements::MosParams::nmos(1e-6, 1e-6),
        );
        let report = lint(&ckt);
        assert_eq!(codes(&report), vec![LintCode::NoDcPathToGround]);
        // A floating gate stays broken even under UIC: no capacitor
        // companion will ever pin it.
        let report = lint_with(&ckt, &LintConfig::new(), LintContext::TransientUic);
        assert!(report.has_denials());
    }

    #[test]
    fn nan_parameter_denied() {
        let mut ckt = rc_divider();
        let b = ckt.node("b");
        ckt.capacitor_with_ic("Cbad", b, Circuit::GND, 1e-12, f64::NAN);
        let report = lint(&ckt);
        assert_eq!(codes(&report), vec![LintCode::NonFiniteParameter]);
        assert_eq!(report.diagnostics()[0].elements, vec!["Cbad"]);
    }

    #[test]
    fn unit_mistake_warned() {
        let mut ckt = rc_divider();
        let b = ckt.node("b");
        ckt.resistor("Rtiny", b, Circuit::GND, 1e-9);
        ckt.capacitor("Chuge", b, Circuit::GND, 3.0);
        let report = lint(&ckt);
        assert!(!report.has_denials());
        assert_eq!(report.warnings().count(), 2);
    }

    #[test]
    fn shorted_resistor_warned() {
        let mut ckt = rc_divider();
        let b = ckt.node("b");
        ckt.resistor("Rshort", b, b, 1e3);
        let report = lint(&ckt);
        assert_eq!(codes(&report), vec![LintCode::ShortedElement]);
        assert!(!report.has_denials());
    }

    #[test]
    fn config_overrides_are_respected() {
        let mut ckt = rc_divider();
        let b = ckt.node("b");
        ckt.resistor("Rshort", b, b, 1e3);
        let cfg = LintConfig::new().allow(LintCode::ShortedElement);
        assert!(lint_with(&ckt, &cfg, LintContext::Dc).is_clean());
        let cfg = LintConfig::new().deny(LintCode::ShortedElement);
        assert!(lint_with(&ckt, &cfg, LintContext::Dc).has_denials());
    }

    #[test]
    fn denials_sort_before_warnings() {
        let mut ckt = rc_divider();
        let b = ckt.node("b");
        ckt.resistor("Rshort", b, b, 1e3); // warn
        ckt.node("orphan"); // deny
        let report = lint(&ckt);
        assert_eq!(report.diagnostics()[0].severity, Severity::Deny);
        assert_eq!(
            report.diagnostics().last().unwrap().severity,
            Severity::Warn
        );
    }

    #[test]
    fn preflight_formats_violations() {
        let mut ckt = Circuit::new();
        let x = ckt.node("x");
        let y = ckt.node("y");
        ckt.resistor("R1", x, y, 1e3);
        let err = preflight(&ckt, "dc", LintContext::Dc).unwrap_err();
        match err {
            Error::LintRejected {
                analysis,
                violations,
            } => {
                assert_eq!(analysis, "dc");
                assert!(violations.iter().any(|v| v.contains("MS002")));
            }
            other => panic!("unexpected error: {other:?}"),
        }
    }
}
