//! Minimal complex arithmetic for AC (small-signal) analysis.
//!
//! A deliberate re-implementation rather than a dependency: the AC solver
//! needs exactly add/sub/mul/div, magnitude and phase — nothing more.

use std::fmt;
use std::ops::{Add, AddAssign, Div, Mul, Neg, Sub};

/// A complex number in rectangular form.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct Complex {
    /// Real part.
    pub re: f64,
    /// Imaginary part.
    pub im: f64,
}

impl Complex {
    /// Zero.
    pub const ZERO: Complex = Complex { re: 0.0, im: 0.0 };
    /// One.
    pub const ONE: Complex = Complex { re: 1.0, im: 0.0 };

    /// Creates a complex number.
    pub const fn new(re: f64, im: f64) -> Self {
        Complex { re, im }
    }

    /// A purely real value.
    pub const fn real(re: f64) -> Self {
        Complex { re, im: 0.0 }
    }

    /// A purely imaginary value (`j·im`).
    pub const fn imag(im: f64) -> Self {
        Complex { re: 0.0, im }
    }

    /// Magnitude `|z|`.
    pub fn abs(self) -> f64 {
        self.re.hypot(self.im)
    }

    /// Squared magnitude (cheaper than [`Complex::abs`]).
    pub fn norm_sqr(self) -> f64 {
        self.re * self.re + self.im * self.im
    }

    /// Phase angle in radians, `atan2(im, re)`.
    pub fn arg(self) -> f64 {
        self.im.atan2(self.re)
    }

    /// Phase angle in degrees.
    pub fn arg_deg(self) -> f64 {
        self.arg().to_degrees()
    }

    /// Magnitude in decibels, `20·log10|z|`.
    pub fn db(self) -> f64 {
        20.0 * self.abs().log10()
    }

    /// Complex conjugate.
    pub fn conj(self) -> Self {
        Complex::new(self.re, -self.im)
    }
}

impl Add for Complex {
    type Output = Complex;
    fn add(self, rhs: Complex) -> Complex {
        Complex::new(self.re + rhs.re, self.im + rhs.im)
    }
}

impl AddAssign for Complex {
    fn add_assign(&mut self, rhs: Complex) {
        self.re += rhs.re;
        self.im += rhs.im;
    }
}

impl Sub for Complex {
    type Output = Complex;
    fn sub(self, rhs: Complex) -> Complex {
        Complex::new(self.re - rhs.re, self.im - rhs.im)
    }
}

impl Neg for Complex {
    type Output = Complex;
    fn neg(self) -> Complex {
        Complex::new(-self.re, -self.im)
    }
}

impl Mul for Complex {
    type Output = Complex;
    fn mul(self, rhs: Complex) -> Complex {
        Complex::new(
            self.re * rhs.re - self.im * rhs.im,
            self.re * rhs.im + self.im * rhs.re,
        )
    }
}

impl Mul<f64> for Complex {
    type Output = Complex;
    fn mul(self, rhs: f64) -> Complex {
        Complex::new(self.re * rhs, self.im * rhs)
    }
}

impl Div for Complex {
    type Output = Complex;
    fn div(self, rhs: Complex) -> Complex {
        let d = rhs.norm_sqr();
        Complex::new(
            (self.re * rhs.re + self.im * rhs.im) / d,
            (self.im * rhs.re - self.re * rhs.im) / d,
        )
    }
}

impl From<f64> for Complex {
    fn from(re: f64) -> Self {
        Complex::real(re)
    }
}

impl fmt::Display for Complex {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.im >= 0.0 {
            write!(f, "{}+j{}", self.re, self.im)
        } else {
            write!(f, "{}-j{}", self.re, -self.im)
        }
    }
}

/// Dense complex matrix with partial-pivoting LU, mirroring
/// [`crate::linear::DenseMatrix`].
#[derive(Debug, Clone, PartialEq)]
pub struct ComplexMatrix {
    n: usize,
    data: Vec<Complex>,
}

impl ComplexMatrix {
    /// Creates an `n × n` zero matrix.
    pub fn zeros(n: usize) -> Self {
        ComplexMatrix {
            n,
            data: vec![Complex::ZERO; n * n],
        }
    }

    /// Matrix dimension.
    pub fn dim(&self) -> usize {
        self.n
    }

    /// Resets all entries to zero.
    pub fn clear(&mut self) {
        self.data.fill(Complex::ZERO);
    }

    /// Adds `value` at `(row, col)`.
    ///
    /// # Panics
    ///
    /// Panics if either index is out of bounds.
    #[inline]
    pub fn add(&mut self, row: usize, col: usize, value: Complex) {
        debug_assert!(row < self.n && col < self.n);
        self.data[row * self.n + col] += value;
    }

    /// Entry at `(row, col)`.
    ///
    /// # Panics
    ///
    /// Panics if either index is out of bounds.
    #[inline]
    pub fn get(&self, row: usize, col: usize) -> Complex {
        assert!(row < self.n && col < self.n);
        self.data[row * self.n + col]
    }

    /// Solves `self · x = rhs` in place (destroys the matrix, `rhs`
    /// becomes the solution).
    ///
    /// # Errors
    ///
    /// Returns [`crate::Error::SingularMatrix`] if elimination breaks
    /// down.
    ///
    /// # Panics
    ///
    /// Panics if `rhs.len() != n`.
    // Index loops mirror the textbook elimination; iterator forms obscure
    // the pivot structure.
    #[allow(clippy::needless_range_loop)]
    pub fn solve_in_place(&mut self, rhs: &mut [Complex]) -> Result<(), crate::Error> {
        let n = self.n;
        assert_eq!(rhs.len(), n);
        if n == 0 {
            return Ok(());
        }
        let scale = self
            .data
            .iter()
            .fold(0.0f64, |m, z| m.max(z.abs()))
            .max(1e-30);
        let tol = scale * 1e-14;
        for k in 0..n {
            let mut pivot_row = k;
            let mut pivot_mag = self.data[k * n + k].abs();
            for r in (k + 1)..n {
                let mag = self.data[r * n + k].abs();
                if mag > pivot_mag {
                    pivot_mag = mag;
                    pivot_row = r;
                }
            }
            if pivot_mag < tol {
                return Err(crate::Error::SingularMatrix { row: k });
            }
            if pivot_row != k {
                for c in 0..n {
                    self.data.swap(k * n + c, pivot_row * n + c);
                }
                rhs.swap(k, pivot_row);
            }
            let pivot = self.data[k * n + k];
            for r in (k + 1)..n {
                let factor = self.data[r * n + k] / pivot;
                if factor == Complex::ZERO {
                    continue;
                }
                self.data[r * n + k] = Complex::ZERO;
                for c in (k + 1)..n {
                    let sub = factor * self.data[k * n + c];
                    self.data[r * n + c] = self.data[r * n + c] - sub;
                }
                let sub = factor * rhs[k];
                rhs[r] = rhs[r] - sub;
            }
        }
        for k in (0..n).rev() {
            let mut sum = rhs[k];
            for c in (k + 1)..n {
                sum = sum - self.data[k * n + c] * rhs[c];
            }
            rhs[k] = sum / self.data[k * n + k];
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn arithmetic() {
        let a = Complex::new(1.0, 2.0);
        let b = Complex::new(3.0, -1.0);
        assert_eq!(a + b, Complex::new(4.0, 1.0));
        assert_eq!(a - b, Complex::new(-2.0, 3.0));
        assert_eq!(a * b, Complex::new(5.0, 5.0));
        let q = a / b;
        let back = q * b;
        assert!((back.re - a.re).abs() < 1e-12);
        assert!((back.im - a.im).abs() < 1e-12);
        assert_eq!(-a, Complex::new(-1.0, -2.0));
        assert_eq!(a.conj(), Complex::new(1.0, -2.0));
    }

    #[test]
    fn polar_quantities() {
        let z = Complex::new(3.0, 4.0);
        assert!((z.abs() - 5.0).abs() < 1e-12);
        assert!((z.norm_sqr() - 25.0).abs() < 1e-12);
        let j = Complex::imag(1.0);
        assert!((j.arg_deg() - 90.0).abs() < 1e-12);
        assert!((Complex::real(10.0).db() - 20.0).abs() < 1e-12);
    }

    #[test]
    fn display() {
        assert_eq!(Complex::new(1.0, 2.0).to_string(), "1+j2");
        assert_eq!(Complex::new(1.0, -2.0).to_string(), "1-j2");
    }

    #[test]
    fn complex_solve_small_system() {
        // (1+j)x = 2 → x = 1 − j.
        let mut m = ComplexMatrix::zeros(1);
        m.add(0, 0, Complex::new(1.0, 1.0));
        let mut rhs = vec![Complex::real(2.0)];
        m.solve_in_place(&mut rhs).unwrap();
        assert!((rhs[0].re - 1.0).abs() < 1e-12);
        assert!((rhs[0].im + 1.0).abs() < 1e-12);
    }

    #[test]
    fn complex_solve_with_pivoting() {
        // [[0, 1], [1, j]] x = [1, 0] → x0 = −j, x1 = 1.
        let mut m = ComplexMatrix::zeros(2);
        m.add(0, 1, Complex::ONE);
        m.add(1, 0, Complex::ONE);
        m.add(1, 1, Complex::imag(1.0));
        let mut rhs = vec![Complex::ONE, Complex::ZERO];
        m.solve_in_place(&mut rhs).unwrap();
        assert!((rhs[0] - Complex::imag(-1.0)).abs() < 1e-12);
        assert!((rhs[1] - Complex::ONE).abs() < 1e-12);
    }

    #[test]
    fn singular_complex_matrix() {
        let mut m = ComplexMatrix::zeros(2);
        m.add(0, 0, Complex::ONE);
        m.add(1, 0, Complex::ONE);
        let mut rhs = vec![Complex::ONE, Complex::ONE];
        assert!(m.solve_in_place(&mut rhs).is_err());
    }
}
