//! Structured instrumentation for every analysis the simulator runs.
//!
//! The paper's claims are validated by thousands of transient sweeps; when
//! one of them slows down or stops converging, the only visibility used to
//! be a single `SolverStats` struct buried in the plan solver. This module
//! makes the solver's behaviour observable end to end:
//!
//! * an [`Observer`] trait receiving **counters** (monotonic event tallies),
//!   **histograms** (distributions such as step sizes and per-point wall
//!   times) and typed [`Event`]s,
//! * instrumentation points threaded through the DC operating-point
//!   homotopy (gmin/source stepping), the Newton loop (iterations, residual
//!   norms, plan-cache hits), adaptive transient stepping (accepted and
//!   rejected steps, LTE, PWM-edge snaps) and the multi-core sweep driver
//!   (per-point wall time, steal counts),
//! * three ready-made sinks: [`MemoryRecorder`] for tests, [`JsonlWriter`]
//!   for schema-versioned machine-readable traces, and [`Summary`] for a
//!   human-readable table — composable with [`Tee`].
//!
//! # Zero overhead when disabled
//!
//! The hot loops never see the observer. The plan solver counts its work
//! unconditionally in `SolverStats` (a handful of integer increments it has
//! always performed); telemetry reads the counters *around* each solve and
//! publishes the delta. With no observer attached the probe is a `None`
//! check per solve — nothing per Newton iteration, nothing per stamp.
//!
//! Attach an observer through [`Session::observe`](crate::Session::observe):
//!
//! ```
//! use mssim::prelude::*;
//!
//! let mut ckt = Circuit::new();
//! let a = ckt.node("a");
//! ckt.vsource("V1", a, Circuit::GND, Waveform::dc(1.0));
//! ckt.resistor("R1", a, Circuit::GND, 1e3);
//!
//! let mut rec = MemoryRecorder::new();
//! let op = Session::new(&ckt).observe(&mut rec).dc_operating_point()?;
//! assert!((op.voltage(a) - 1.0).abs() < 1e-12);
//! assert!(rec.counter_value("newton.solves") >= 1);
//! # Ok::<(), mssim::Error>(())
//! ```

use std::collections::BTreeMap;
use std::io::{self, Write};

use crate::analysis::mna::{MnaLayout, NewtonOpts, SolveContext};
use crate::analysis::plan::{SolverEngine, SolverStats};
use crate::error::Error;
use crate::netlist::Circuit;

/// Schema identifier written as the first line of every JSONL trace.
pub const TRACE_SCHEMA: &str = "mssim-trace-v1";

/// Public snapshot of the plan solver's work counters.
///
/// Deltas of these appear on [`Event::NewtonSolve`] (work done by one
/// solve) and totals on [`Event::SolverReport`] (work done by one
/// analysis). The reference solver keeps no counters, so events carry
/// `None`/no report on that path.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct SolverCounters {
    /// Newton iterations executed.
    pub iterations: u64,
    /// Full O(n³) LU factorizations performed.
    pub factorizations: u64,
    /// O(n²) back-substitutions performed.
    pub back_substitutions: u64,
    /// Linear solves skipped because the assembled system was bit-identical
    /// to the previous one (solution cache or Newton bypass).
    pub bypasses: u64,
    /// Base-matrix rebuilds.
    pub rebases: u64,
    /// MOSFET evaluations performed by the batched device block (latency
    /// hits excluded).
    pub device_evals: u64,
    /// Devices whose trial voltages were clamped by the `fetlim`/`limvds`
    /// limiting heuristics (limited mode only).
    pub limit_clamps: u64,
    /// Devices that reused their previous linearisation because their
    /// terminal voltages stayed inside the latency band (limited mode
    /// only).
    pub latency_hits: u64,
}

impl SolverCounters {
    /// Counter-wise `self - before`; saturates so a mismatched pair can
    /// never underflow.
    pub fn delta_since(&self, before: &SolverCounters) -> SolverCounters {
        SolverCounters {
            iterations: self.iterations.saturating_sub(before.iterations),
            factorizations: self.factorizations.saturating_sub(before.factorizations),
            back_substitutions: self
                .back_substitutions
                .saturating_sub(before.back_substitutions),
            bypasses: self.bypasses.saturating_sub(before.bypasses),
            rebases: self.rebases.saturating_sub(before.rebases),
            device_evals: self.device_evals.saturating_sub(before.device_evals),
            limit_clamps: self.limit_clamps.saturating_sub(before.limit_clamps),
            latency_hits: self.latency_hits.saturating_sub(before.latency_hits),
        }
    }
}

impl From<SolverStats> for SolverCounters {
    fn from(s: SolverStats) -> Self {
        SolverCounters {
            iterations: s.iterations,
            factorizations: s.factorizations,
            back_substitutions: s.back_substitutions,
            bypasses: s.bypasses,
            rebases: s.rebases,
            device_evals: s.device_evals,
            limit_clamps: s.limit_clamps,
            latency_hits: s.latency_hits,
        }
    }
}

/// A typed instrumentation event.
///
/// New variants may be added in minor releases; match with a wildcard arm.
/// The JSONL encoding of each variant is part of the [`TRACE_SCHEMA`]
/// contract and only changes with the schema version.
#[non_exhaustive]
#[derive(Debug, Clone, PartialEq)]
pub enum Event {
    /// An analysis began (`"dc"`, `"dc-sweep"`, `"ac"`, `"noise"`,
    /// `"transient"`).
    AnalysisStart {
        /// Analysis name.
        analysis: &'static str,
    },
    /// The analysis finished successfully.
    AnalysisEnd {
        /// Analysis name.
        analysis: &'static str,
    },
    /// One stage of the DC operating-point homotopy concluded.
    Homotopy {
        /// `"direct"`, `"gmin"` or `"source"`.
        stage: &'static str,
        /// Step index within the stage (0 for the direct attempt).
        step: u32,
        /// Continuation parameter: the shunt conductance for gmin
        /// stepping, the source scale for source stepping, 0 for direct.
        param: f64,
        /// Whether this attempt converged.
        converged: bool,
    },
    /// One Newton solve (a full damped-iteration loop) converged.
    NewtonSolve {
        /// Analysis name.
        analysis: &'static str,
        /// Simulation time of the solve (0 for DC).
        time: f64,
        /// Iterations the loop took, from the solver's return value.
        iterations: u64,
        /// Plan-solver work delta for this solve; `None` on the
        /// reference path.
        plan: Option<SolverCounters>,
        /// Final-iteration maximum node-voltage update (a residual
        /// proxy); `None` on the reference path.
        max_dv: Option<f64>,
    },
    /// The adaptive transient controller accepted a step.
    StepAccepted {
        /// Time at the end of the accepted step.
        time: f64,
        /// Step size taken.
        dt: f64,
        /// Normalised local truncation error estimate.
        lte: f64,
    },
    /// The adaptive transient controller rejected and halved a step.
    StepRejected {
        /// Time the rejected step would have ended at.
        time: f64,
        /// Step size rejected.
        dt: f64,
        /// Normalised local truncation error estimate that triggered the
        /// rejection.
        lte: f64,
    },
    /// A step was truncated so the grid lands exactly on a waveform
    /// breakpoint (PWM edge).
    EdgeSnap {
        /// Time at the start of the snapped step.
        time: f64,
        /// Truncated step size.
        dt: f64,
        /// The breakpoint being snapped to.
        breakpoint: f64,
    },
    /// The transient convergence-rescue ladder tried to recover a
    /// non-converged time step (see
    /// [`RescuePolicy`](crate::analysis::RescuePolicy)).
    RescueAttempt {
        /// Ladder stage: `"dt_cut"`, `"be"` or `"gmin"`.
        stage: &'static str,
        /// Target time of the step being rescued.
        time: f64,
        /// (Sub)step size used by this attempt.
        dt: f64,
        /// Continuation parameter: the shunt conductance for the gmin
        /// stage, 0 otherwise.
        param: f64,
        /// Whether this attempt advanced the solution to `time`.
        converged: bool,
    },
    /// The rescue ladder finished with a verdict for one troubled step.
    RescueOutcome {
        /// Target time of the step.
        time: f64,
        /// Stage that recovered the step, or `"exhausted"`.
        stage: &'static str,
        /// Ladder rungs tried (including the successful one).
        attempts: u32,
        /// Whether the step was recovered.
        recovered: bool,
    },
    /// One point of a multi-core sweep finished.
    SweepPoint {
        /// Index of the point in the input slice.
        index: usize,
        /// Wall-clock time the point took, in nanoseconds.
        wall_ns: u64,
        /// Index of the worker thread that executed it.
        thread: usize,
    },
    /// Total plan-solver work for one analysis run.
    SolverReport {
        /// Analysis name.
        analysis: &'static str,
        /// Counter totals accumulated by the engine over the run.
        counters: SolverCounters,
    },
    /// The abstract interpreter ([`crate::analyze`]) finished one
    /// circuit.
    AnalyzeReport {
        /// Deny-level findings (MS030/MS031).
        denials: u32,
        /// Warn-level findings (MS032/MS033).
        warnings: u32,
    },
    /// Static fault collapsing partitioned a campaign universe before
    /// any transient ran.
    FaultCollapse {
        /// Faults in the input universe.
        universe: usize,
        /// Distinct equivalence classes found.
        classes: usize,
        /// Faults that needed their own transient (class representatives).
        simulated: usize,
        /// Faults statically indistinguishable from the golden netlist.
        golden: usize,
    },
    /// The static triage tier pre-classified a campaign universe from
    /// guaranteed solution enclosures before any transient ran.
    FaultTriage {
        /// Faults in the input universe.
        universe: usize,
        /// Faults certified `GuaranteedMasked` without simulation.
        masked: usize,
        /// Faults certified `GuaranteedFail` without simulation.
        failed: usize,
        /// Faults left for the transient/rescue pipeline.
        simulated: usize,
    },
    /// A serving-layer circuit breaker changed state (see the resilience
    /// layer in the perceptron crate): `closed` → `open` when the rolling
    /// failure rate trips, `open` → `half_open` after the cooldown,
    /// `half_open` → `closed`/`open` depending on the probe verdicts.
    ResilienceTrip {
        /// Fidelity tier the breaker guards (`"analytic"`,
        /// `"switch-level"`, `"circuit"`).
        tier: &'static str,
        /// State before the transition.
        from: &'static str,
        /// State after the transition (`"closed"`, `"open"`,
        /// `"half_open"`).
        to: &'static str,
        /// Rolling-window failure rate observed at the transition.
        failure_rate: f64,
    },
    /// A serving engine answered a query from a cheaper tier than the
    /// policy demanded — the answer was served flagged `degraded` with a
    /// certified error bound instead of failing the query.
    Degraded {
        /// Tier the policy demanded.
        demanded: &'static str,
        /// Tier that actually answered.
        served: &'static str,
        /// Why the ladder demoted: `"failure"`, `"timeout"` or
        /// `"breaker_open"`.
        reason: &'static str,
        /// Certified |served − reference| bound in volts.
        error_bound: f64,
    },
    /// A serving engine layered on `mssim` answered one inference batch
    /// (memo-cache hits plus per-tier evaluations).
    InferBatch {
        /// Queries in the batch.
        queries: usize,
        /// Queries answered from the memo cache.
        cache_hits: u64,
        /// Queries that fell through to an evaluator.
        cache_misses: u64,
        /// Cache entries discarded by capacity eviction during the batch.
        evictions: u64,
        /// Evaluations answered by the analytic tier.
        analytic: u64,
        /// Evaluations answered by the switch-level tier.
        switch_level: u64,
        /// Evaluations answered by the transistor-level tier.
        circuit: u64,
    },
}

/// Receiver for instrumentation emitted during an analysis.
///
/// All methods default to no-ops, so a sink only implements what it needs:
/// [`JsonlWriter`] keeps events, [`Summary`] keeps aggregates. Standard
/// counters and histograms are derived from events by the dispatcher, so a
/// counter-only observer still sees the Newton/step/cache tallies without
/// touching [`Observer::event`].
pub trait Observer {
    /// A named monotonic counter increased by `delta`.
    fn counter(&mut self, name: &'static str, delta: u64) {
        let _ = (name, delta);
    }

    /// One sample of a named distribution.
    fn histogram(&mut self, name: &'static str, value: f64) {
        let _ = (name, value);
    }

    /// A typed event. Counters and histograms derived from it have already
    /// been delivered when this is called.
    fn event(&mut self, event: &Event) {
        let _ = event;
    }
}

impl<T: Observer + ?Sized> Observer for &mut T {
    fn counter(&mut self, name: &'static str, delta: u64) {
        (**self).counter(name, delta);
    }

    fn histogram(&mut self, name: &'static str, value: f64) {
        (**self).histogram(name, value);
    }

    fn event(&mut self, event: &Event) {
        (**self).event(event);
    }
}

/// Delivers `event` to `obs`, first deriving the standard counters and
/// histograms it implies. One place defines the vocabulary:
///
/// * `newton.solves`, `newton.iterations`, `plan.factorizations`,
///   `plan.back_substitutions`, `plan.bypasses`, `plan.rebases`,
///   `newton.device_evals`, `newton.limit_clamps`, `newton.latency_hits`,
///   histogram `newton.max_dv`
/// * `homotopy.direct_attempts`, `homotopy.gmin_steps`,
///   `homotopy.source_steps`
/// * `tran.steps_accepted`, `tran.steps_rejected`, `tran.edge_snaps`,
///   histograms `tran.dt`, `tran.lte`
/// * `tran.rescue_attempts`, `tran.rescue_recoveries`,
///   `tran.rescue_exhausted`
/// * `sweep.points`, histogram `sweep.wall_ns`
/// * `analyze.runs`, `analyze.denials`, `analyze.warnings`
/// * `collapse.universe`, `collapse.simulated`
/// * `triage.universe`, `triage.masked`, `triage.failed`,
///   `triage.simulated`
/// * `infer.queries`, `infer.cache_hits`, `infer.cache_misses`,
///   `infer.cache_evictions`, `infer.tier_analytic`,
///   `infer.tier_switch_level`, `infer.tier_circuit`
/// * `resil.breaker_transitions`, `resil.breaker_open`,
///   `resil.breaker_half_open`, `resil.breaker_closed`
/// * `resil.degraded`, `resil.demote_failure`, `resil.demote_timeout`,
///   `resil.demote_breaker`, histogram `resil.error_bound`
///
/// Public so engines layered on top of `mssim` (e.g. fault-campaign
/// drivers) can report through the same vocabulary instead of
/// hand-rolling counter names.
pub fn dispatch(obs: &mut dyn Observer, event: &Event) {
    match *event {
        Event::NewtonSolve {
            iterations,
            plan,
            max_dv,
            ..
        } => {
            obs.counter("newton.solves", 1);
            obs.counter("newton.iterations", iterations);
            if let Some(p) = plan {
                obs.counter("plan.factorizations", p.factorizations);
                obs.counter("plan.back_substitutions", p.back_substitutions);
                obs.counter("plan.bypasses", p.bypasses);
                obs.counter("plan.rebases", p.rebases);
                obs.counter("newton.device_evals", p.device_evals);
                obs.counter("newton.limit_clamps", p.limit_clamps);
                obs.counter("newton.latency_hits", p.latency_hits);
            }
            if let Some(dv) = max_dv {
                obs.histogram("newton.max_dv", dv);
            }
        }
        Event::Homotopy { stage, .. } => {
            obs.counter(
                match stage {
                    "gmin" => "homotopy.gmin_steps",
                    "source" => "homotopy.source_steps",
                    _ => "homotopy.direct_attempts",
                },
                1,
            );
        }
        Event::StepAccepted { dt, lte, .. } => {
            obs.counter("tran.steps_accepted", 1);
            obs.histogram("tran.dt", dt);
            obs.histogram("tran.lte", lte);
        }
        Event::StepRejected { lte, .. } => {
            obs.counter("tran.steps_rejected", 1);
            obs.histogram("tran.lte", lte);
        }
        Event::EdgeSnap { .. } => {
            obs.counter("tran.edge_snaps", 1);
        }
        Event::RescueAttempt { .. } => {
            obs.counter("tran.rescue_attempts", 1);
        }
        Event::RescueOutcome { recovered, .. } => {
            obs.counter(
                if recovered {
                    "tran.rescue_recoveries"
                } else {
                    "tran.rescue_exhausted"
                },
                1,
            );
        }
        Event::SweepPoint { wall_ns, .. } => {
            obs.counter("sweep.points", 1);
            obs.histogram("sweep.wall_ns", wall_ns as f64);
        }
        Event::AnalyzeReport { denials, warnings } => {
            obs.counter("analyze.runs", 1);
            obs.counter("analyze.denials", u64::from(denials));
            obs.counter("analyze.warnings", u64::from(warnings));
        }
        Event::FaultCollapse {
            universe,
            simulated,
            ..
        } => {
            obs.counter("collapse.universe", universe as u64);
            obs.counter("collapse.simulated", simulated as u64);
        }
        Event::FaultTriage {
            universe,
            masked,
            failed,
            simulated,
        } => {
            obs.counter("triage.universe", universe as u64);
            obs.counter("triage.masked", masked as u64);
            obs.counter("triage.failed", failed as u64);
            obs.counter("triage.simulated", simulated as u64);
        }
        Event::ResilienceTrip { to, .. } => {
            obs.counter("resil.breaker_transitions", 1);
            obs.counter(
                match to {
                    "open" => "resil.breaker_open",
                    "half_open" => "resil.breaker_half_open",
                    _ => "resil.breaker_closed",
                },
                1,
            );
        }
        Event::Degraded {
            reason,
            error_bound,
            ..
        } => {
            obs.counter("resil.degraded", 1);
            obs.counter(
                match reason {
                    "timeout" => "resil.demote_timeout",
                    "breaker_open" => "resil.demote_breaker",
                    _ => "resil.demote_failure",
                },
                1,
            );
            obs.histogram("resil.error_bound", error_bound);
        }
        Event::InferBatch {
            queries,
            cache_hits,
            cache_misses,
            evictions,
            analytic,
            switch_level,
            circuit,
        } => {
            obs.counter("infer.queries", queries as u64);
            obs.counter("infer.cache_hits", cache_hits);
            obs.counter("infer.cache_misses", cache_misses);
            obs.counter("infer.cache_evictions", evictions);
            obs.counter("infer.tier_analytic", analytic);
            obs.counter("infer.tier_switch_level", switch_level);
            obs.counter("infer.tier_circuit", circuit);
        }
        Event::AnalysisStart { .. } | Event::AnalysisEnd { .. } | Event::SolverReport { .. } => {}
    }
    obs.event(event);
}

/// Internal instrumentation handle threaded through the analyses.
///
/// Wraps the optional observer so every emission site is a single `None`
/// check; [`Probe::solve`] additionally brackets an engine solve with a
/// counter snapshot to publish the per-solve work delta.
pub(crate) struct Probe<'a> {
    obs: Option<&'a mut dyn Observer>,
}

impl<'a> Probe<'a> {
    /// A disabled probe: every emission is a no-op.
    pub fn none() -> Self {
        Probe { obs: None }
    }

    /// A probe forwarding to `obs` when present.
    pub fn new(obs: Option<&'a mut dyn Observer>) -> Self {
        Probe { obs }
    }

    /// Whether an observer is attached.
    pub fn enabled(&self) -> bool {
        self.obs.is_some()
    }

    /// A shorter-lived probe sharing this probe's observer, for handing to
    /// a nested analysis by value.
    ///
    /// Goes through the `&mut T: Observer` blanket impl rather than plain
    /// reborrowing: the trait-object lifetime behind `&mut` is invariant,
    /// so `&'short mut (dyn Observer + 'long)` cannot shrink directly.
    pub fn reborrow(&mut self) -> Probe<'_> {
        match &mut self.obs {
            Some(o) => Probe { obs: Some(o) },
            None => Probe { obs: None },
        }
    }

    /// Emits a typed event (with its derived counters and histograms).
    pub fn emit(&mut self, event: Event) {
        if let Some(obs) = self.obs.as_deref_mut() {
            dispatch(obs, &event);
        }
    }

    /// Emits a bare counter increment.
    pub fn counter(&mut self, name: &'static str, delta: u64) {
        if let Some(obs) = self.obs.as_deref_mut() {
            obs.counter(name, delta);
        }
    }

    /// Runs one Newton solve through `engine`, publishing a
    /// [`Event::NewtonSolve`] with the engine's counter delta on success.
    /// A failed solve (homotopy probing) still accounts its work under
    /// `newton.failed_solves` / `newton.iterations` / `plan.*`, so counter
    /// totals always reconcile with the engine's own statistics.
    #[allow(clippy::too_many_arguments)] // mirrors SolverEngine::solve
    pub fn solve(
        &mut self,
        engine: &mut SolverEngine,
        ckt: &Circuit,
        layout: &MnaLayout,
        x: &mut [f64],
        ctx: SolveContext<'_>,
        opts: &NewtonOpts,
        analysis: &'static str,
    ) -> Result<usize, Error> {
        if self.obs.is_none() {
            return engine.solve(ckt, layout, x, ctx, opts, analysis);
        }
        let before = engine.counters();
        let result = engine.solve(ckt, layout, x, ctx, opts, analysis);
        let plan = match (engine.counters(), before) {
            (Some(after), Some(before)) => Some(after.delta_since(&before)),
            _ => None,
        };
        match &result {
            Ok(iter) => self.emit(Event::NewtonSolve {
                analysis,
                time: ctx.time,
                iterations: *iter as u64,
                plan,
                max_dv: engine.last_max_dv(),
            }),
            Err(_) => {
                self.counter("newton.failed_solves", 1);
                if let Some(p) = plan {
                    self.counter("newton.iterations", p.iterations);
                    self.counter("plan.factorizations", p.factorizations);
                    self.counter("plan.back_substitutions", p.back_substitutions);
                    self.counter("plan.bypasses", p.bypasses);
                    self.counter("plan.rebases", p.rebases);
                    self.counter("newton.device_evals", p.device_evals);
                    self.counter("newton.limit_clamps", p.limit_clamps);
                    self.counter("newton.latency_hits", p.latency_hits);
                }
            }
        }
        result
    }

    /// Emits the engine's counter totals as a [`Event::SolverReport`].
    /// No-op on the reference path, which keeps no counters.
    pub fn report(&mut self, engine: &SolverEngine, analysis: &'static str) {
        if self.enabled() {
            if let Some(counters) = engine.counters() {
                self.emit(Event::SolverReport { analysis, counters });
            }
        }
    }
}

/// In-memory sink for tests: keeps every counter total, every histogram
/// sample and every event, in arrival order.
#[derive(Debug, Default, Clone)]
pub struct MemoryRecorder {
    counters: BTreeMap<&'static str, u64>,
    histograms: BTreeMap<&'static str, Vec<f64>>,
    events: Vec<Event>,
}

impl MemoryRecorder {
    /// An empty recorder.
    pub fn new() -> Self {
        Self::default()
    }

    /// Total of the named counter (0 if never emitted).
    pub fn counter_value(&self, name: &str) -> u64 {
        self.counters.get(name).copied().unwrap_or(0)
    }

    /// All samples of the named histogram, in arrival order.
    pub fn histogram_values(&self, name: &str) -> &[f64] {
        self.histograms.get(name).map_or(&[], Vec::as_slice)
    }

    /// All events, in arrival order.
    pub fn events(&self) -> &[Event] {
        &self.events
    }

    /// Names of all counters seen, sorted.
    pub fn counter_names(&self) -> impl Iterator<Item = &'static str> + '_ {
        self.counters.keys().copied()
    }
}

impl Observer for MemoryRecorder {
    fn counter(&mut self, name: &'static str, delta: u64) {
        *self.counters.entry(name).or_insert(0) += delta;
    }

    fn histogram(&mut self, name: &'static str, value: f64) {
        self.histograms.entry(name).or_default().push(value);
    }

    fn event(&mut self, event: &Event) {
        self.events.push(event.clone());
    }
}

/// Appends a finite float as a JSON number, `null` otherwise (JSON has no
/// Inf/NaN).
fn push_json_f64(buf: &mut String, v: f64) {
    if v.is_finite() {
        buf.push_str(&format!("{v:?}"));
    } else {
        buf.push_str("null");
    }
}

fn push_json_counters(buf: &mut String, c: &SolverCounters) {
    buf.push_str(&format!(
        "{{\"iterations\":{},\"factorizations\":{},\"back_substitutions\":{},\"bypasses\":{},\"rebases\":{},\"device_evals\":{},\"limit_clamps\":{},\"latency_hits\":{}}}",
        c.iterations,
        c.factorizations,
        c.back_substitutions,
        c.bypasses,
        c.rebases,
        c.device_evals,
        c.limit_clamps,
        c.latency_hits
    ));
}

/// Encodes one event as a single JSON line (without the trailing newline).
fn event_json(event: &Event) -> String {
    let mut s = String::new();
    match *event {
        Event::AnalysisStart { analysis } => {
            s.push_str(&format!(
                "{{\"event\":\"analysis_start\",\"analysis\":\"{analysis}\"}}"
            ));
        }
        Event::AnalysisEnd { analysis } => {
            s.push_str(&format!(
                "{{\"event\":\"analysis_end\",\"analysis\":\"{analysis}\"}}"
            ));
        }
        Event::Homotopy {
            stage,
            step,
            param,
            converged,
        } => {
            s.push_str(&format!(
                "{{\"event\":\"homotopy\",\"stage\":\"{stage}\",\"step\":{step},\"param\":"
            ));
            push_json_f64(&mut s, param);
            s.push_str(&format!(",\"converged\":{converged}}}"));
        }
        Event::NewtonSolve {
            analysis,
            time,
            iterations,
            plan,
            max_dv,
        } => {
            s.push_str(&format!(
                "{{\"event\":\"newton_solve\",\"analysis\":\"{analysis}\",\"time\":"
            ));
            push_json_f64(&mut s, time);
            s.push_str(&format!(",\"iterations\":{iterations},\"plan\":"));
            match plan {
                Some(c) => push_json_counters(&mut s, &c),
                None => s.push_str("null"),
            }
            s.push_str(",\"max_dv\":");
            match max_dv {
                Some(dv) => push_json_f64(&mut s, dv),
                None => s.push_str("null"),
            }
            s.push('}');
        }
        Event::StepAccepted { time, dt, lte } => {
            s.push_str("{\"event\":\"step_accepted\",\"time\":");
            push_json_f64(&mut s, time);
            s.push_str(",\"dt\":");
            push_json_f64(&mut s, dt);
            s.push_str(",\"lte\":");
            push_json_f64(&mut s, lte);
            s.push('}');
        }
        Event::StepRejected { time, dt, lte } => {
            s.push_str("{\"event\":\"step_rejected\",\"time\":");
            push_json_f64(&mut s, time);
            s.push_str(",\"dt\":");
            push_json_f64(&mut s, dt);
            s.push_str(",\"lte\":");
            push_json_f64(&mut s, lte);
            s.push('}');
        }
        Event::EdgeSnap {
            time,
            dt,
            breakpoint,
        } => {
            s.push_str("{\"event\":\"edge_snap\",\"time\":");
            push_json_f64(&mut s, time);
            s.push_str(",\"dt\":");
            push_json_f64(&mut s, dt);
            s.push_str(",\"breakpoint\":");
            push_json_f64(&mut s, breakpoint);
            s.push('}');
        }
        Event::RescueAttempt {
            stage,
            time,
            dt,
            param,
            converged,
        } => {
            s.push_str(&format!(
                "{{\"event\":\"rescue_attempt\",\"stage\":\"{stage}\",\"time\":"
            ));
            push_json_f64(&mut s, time);
            s.push_str(",\"dt\":");
            push_json_f64(&mut s, dt);
            s.push_str(",\"param\":");
            push_json_f64(&mut s, param);
            s.push_str(&format!(",\"converged\":{converged}}}"));
        }
        Event::RescueOutcome {
            time,
            stage,
            attempts,
            recovered,
        } => {
            s.push_str("{\"event\":\"rescue_outcome\",\"time\":");
            push_json_f64(&mut s, time);
            s.push_str(&format!(
                ",\"stage\":\"{stage}\",\"attempts\":{attempts},\"recovered\":{recovered}}}"
            ));
        }
        Event::SweepPoint {
            index,
            wall_ns,
            thread,
        } => {
            s.push_str(&format!(
                "{{\"event\":\"sweep_point\",\"index\":{index},\"wall_ns\":{wall_ns},\"thread\":{thread}}}"
            ));
        }
        Event::SolverReport { analysis, counters } => {
            s.push_str(&format!(
                "{{\"event\":\"solver_report\",\"analysis\":\"{analysis}\",\"counters\":"
            ));
            push_json_counters(&mut s, &counters);
            s.push('}');
        }
        Event::AnalyzeReport { denials, warnings } => {
            s.push_str(&format!(
                "{{\"event\":\"analyze_report\",\"denials\":{denials},\"warnings\":{warnings}}}"
            ));
        }
        Event::FaultCollapse {
            universe,
            classes,
            simulated,
            golden,
        } => {
            s.push_str(&format!(
                "{{\"event\":\"fault_collapse\",\"universe\":{universe},\"classes\":{classes},\"simulated\":{simulated},\"golden\":{golden}}}"
            ));
        }
        Event::FaultTriage {
            universe,
            masked,
            failed,
            simulated,
        } => {
            s.push_str(&format!(
                "{{\"event\":\"fault_triage\",\"universe\":{universe},\"masked\":{masked},\"failed\":{failed},\"simulated\":{simulated}}}"
            ));
        }
        Event::ResilienceTrip {
            tier,
            from,
            to,
            failure_rate,
        } => {
            s.push_str(&format!(
                "{{\"event\":\"resilience_trip\",\"tier\":\"{tier}\",\"from\":\"{from}\",\"to\":\"{to}\",\"failure_rate\":"
            ));
            push_json_f64(&mut s, failure_rate);
            s.push('}');
        }
        Event::Degraded {
            demanded,
            served,
            reason,
            error_bound,
        } => {
            s.push_str(&format!(
                "{{\"event\":\"degraded\",\"demanded\":\"{demanded}\",\"served\":\"{served}\",\"reason\":\"{reason}\",\"error_bound\":"
            ));
            push_json_f64(&mut s, error_bound);
            s.push('}');
        }
        Event::InferBatch {
            queries,
            cache_hits,
            cache_misses,
            evictions,
            analytic,
            switch_level,
            circuit,
        } => {
            s.push_str(&format!(
                "{{\"event\":\"infer_batch\",\"queries\":{queries},\"cache_hits\":{cache_hits},\"cache_misses\":{cache_misses},\"evictions\":{evictions},\"analytic\":{analytic},\"switch_level\":{switch_level},\"circuit\":{circuit}}}"
            ));
        }
    }
    s
}

/// Schema-versioned JSONL event sink.
///
/// The first line written is a header `{"schema":"mssim-trace-v1"}`; each
/// subsequent line is one event. Counters and histograms are not written —
/// they are derivable from the event stream by replaying it through the
/// same dispatcher.
///
/// I/O errors are deferred: the writer goes quiet after the first failure
/// and [`JsonlWriter::finish`] reports it, so instrumentation can never
/// abort an analysis.
#[derive(Debug)]
pub struct JsonlWriter<W: Write> {
    out: W,
    error: Option<io::Error>,
}

impl<W: Write> JsonlWriter<W> {
    /// Wraps `out` and writes the schema header line.
    pub fn new(out: W) -> Self {
        let mut w = JsonlWriter { out, error: None };
        w.write_line(&format!("{{\"schema\":\"{TRACE_SCHEMA}\"}}"));
        w
    }

    fn write_line(&mut self, line: &str) {
        if self.error.is_some() {
            return;
        }
        if let Err(e) = self
            .out
            .write_all(line.as_bytes())
            .and_then(|()| self.out.write_all(b"\n"))
        {
            self.error = Some(e);
        }
    }

    /// Flushes and returns the inner writer, or the first I/O error the
    /// stream hit.
    ///
    /// # Errors
    ///
    /// Returns any write or flush error, deferred or current.
    pub fn finish(mut self) -> io::Result<W> {
        if let Some(e) = self.error.take() {
            return Err(e);
        }
        self.out.flush()?;
        Ok(self.out)
    }
}

impl<W: Write> Observer for JsonlWriter<W> {
    fn event(&mut self, event: &Event) {
        let line = event_json(event);
        self.write_line(&line);
    }
}

/// Running aggregate of one histogram.
#[derive(Debug, Clone, Copy, Default)]
struct HistStat {
    count: u64,
    sum: f64,
    min: f64,
    max: f64,
}

impl HistStat {
    fn add(&mut self, v: f64) {
        if self.count == 0 {
            self.min = v;
            self.max = v;
        } else {
            self.min = self.min.min(v);
            self.max = self.max.max(v);
        }
        self.count += 1;
        self.sum += v;
    }
}

/// Human-readable aggregation sink: counter totals plus count/mean/min/max
/// per histogram, rendered as a fixed-width table by [`Summary::render`].
#[derive(Debug, Default, Clone)]
pub struct Summary {
    counters: BTreeMap<&'static str, u64>,
    histograms: BTreeMap<&'static str, HistStat>,
}

impl Summary {
    /// An empty summary.
    pub fn new() -> Self {
        Self::default()
    }

    /// Total of the named counter (0 if never emitted).
    pub fn counter_value(&self, name: &str) -> u64 {
        self.counters.get(name).copied().unwrap_or(0)
    }

    /// Renders the aggregates as a fixed-width text table.
    pub fn render(&self) -> String {
        let mut out = String::new();
        if !self.counters.is_empty() {
            out.push_str(&format!("{:<28} {:>14}\n", "counter", "total"));
            for (name, total) in &self.counters {
                out.push_str(&format!("{name:<28} {total:>14}\n"));
            }
        }
        if !self.histograms.is_empty() {
            if !out.is_empty() {
                out.push('\n');
            }
            out.push_str(&format!(
                "{:<28} {:>10} {:>12} {:>12} {:>12}\n",
                "histogram", "count", "mean", "min", "max"
            ));
            for (name, h) in &self.histograms {
                let mean = if h.count > 0 {
                    h.sum / h.count as f64
                } else {
                    0.0
                };
                out.push_str(&format!(
                    "{name:<28} {:>10} {mean:>12.4e} {:>12.4e} {:>12.4e}\n",
                    h.count, h.min, h.max
                ));
            }
        }
        out
    }
}

impl Observer for Summary {
    fn counter(&mut self, name: &'static str, delta: u64) {
        *self.counters.entry(name).or_insert(0) += delta;
    }

    fn histogram(&mut self, name: &'static str, value: f64) {
        self.histograms.entry(name).or_default().add(value);
    }
}

/// Fans every emission out to two observers; nest for more.
#[derive(Debug, Default, Clone)]
pub struct Tee<A, B>(
    /// First receiver.
    pub A,
    /// Second receiver.
    pub B,
);

impl<A: Observer, B: Observer> Observer for Tee<A, B> {
    fn counter(&mut self, name: &'static str, delta: u64) {
        self.0.counter(name, delta);
        self.1.counter(name, delta);
    }

    fn histogram(&mut self, name: &'static str, value: f64) {
        self.0.histogram(name, value);
        self.1.histogram(name, value);
    }

    fn event(&mut self, event: &Event) {
        self.0.event(event);
        self.1.event(event);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_events() -> Vec<Event> {
        vec![
            Event::AnalysisStart {
                analysis: "transient",
            },
            Event::Homotopy {
                stage: "gmin",
                step: 3,
                param: 1e-4,
                converged: true,
            },
            Event::NewtonSolve {
                analysis: "transient",
                time: 1e-9,
                iterations: 3,
                plan: Some(SolverCounters {
                    iterations: 3,
                    factorizations: 1,
                    back_substitutions: 3,
                    bypasses: 0,
                    rebases: 1,
                    device_evals: 12,
                    limit_clamps: 1,
                    latency_hits: 4,
                }),
                max_dv: Some(0.5),
            },
            Event::StepAccepted {
                time: 2e-9,
                dt: 1e-9,
                lte: 1e-5,
            },
            Event::StepRejected {
                time: 3e-9,
                dt: 1e-9,
                lte: 1e-1,
            },
            Event::EdgeSnap {
                time: 3e-9,
                dt: 5e-10,
                breakpoint: 3.5e-9,
            },
            Event::RescueAttempt {
                stage: "dt_cut",
                time: 4e-9,
                dt: 5e-10,
                param: 0.0,
                converged: false,
            },
            Event::RescueAttempt {
                stage: "gmin",
                time: 4e-9,
                dt: 1e-9,
                param: 1e-6,
                converged: true,
            },
            Event::RescueOutcome {
                time: 4e-9,
                stage: "gmin",
                attempts: 2,
                recovered: true,
            },
            Event::SweepPoint {
                index: 7,
                wall_ns: 1200,
                thread: 2,
            },
            Event::SolverReport {
                analysis: "transient",
                counters: SolverCounters {
                    iterations: 3,
                    factorizations: 1,
                    back_substitutions: 3,
                    bypasses: 0,
                    rebases: 1,
                    device_evals: 12,
                    limit_clamps: 1,
                    latency_hits: 4,
                },
            },
            Event::AnalyzeReport {
                denials: 1,
                warnings: 2,
            },
            Event::FaultCollapse {
                universe: 49,
                classes: 48,
                simulated: 47,
                golden: 2,
            },
            Event::FaultTriage {
                universe: 49,
                masked: 2,
                failed: 18,
                simulated: 29,
            },
            Event::InferBatch {
                queries: 100,
                cache_hits: 90,
                cache_misses: 10,
                evictions: 0,
                analytic: 7,
                switch_level: 2,
                circuit: 1,
            },
            Event::ResilienceTrip {
                tier: "circuit",
                from: "closed",
                to: "open",
                failure_rate: 0.75,
            },
            Event::Degraded {
                demanded: "circuit",
                served: "analytic",
                reason: "breaker_open",
                error_bound: 0.05,
            },
            Event::AnalysisEnd {
                analysis: "transient",
            },
        ]
    }

    #[test]
    fn dispatch_derives_standard_counters_and_histograms() {
        let mut rec = MemoryRecorder::new();
        for e in sample_events() {
            dispatch(&mut rec, &e);
        }
        assert_eq!(rec.counter_value("newton.solves"), 1);
        assert_eq!(rec.counter_value("newton.iterations"), 3);
        assert_eq!(rec.counter_value("plan.factorizations"), 1);
        assert_eq!(rec.counter_value("plan.back_substitutions"), 3);
        assert_eq!(rec.counter_value("plan.rebases"), 1);
        assert_eq!(rec.counter_value("homotopy.gmin_steps"), 1);
        assert_eq!(rec.counter_value("tran.steps_accepted"), 1);
        assert_eq!(rec.counter_value("tran.steps_rejected"), 1);
        assert_eq!(rec.counter_value("tran.edge_snaps"), 1);
        assert_eq!(rec.counter_value("tran.rescue_attempts"), 2);
        assert_eq!(rec.counter_value("tran.rescue_recoveries"), 1);
        assert_eq!(rec.counter_value("tran.rescue_exhausted"), 0);
        assert_eq!(rec.counter_value("sweep.points"), 1);
        assert_eq!(rec.counter_value("triage.universe"), 49);
        assert_eq!(rec.counter_value("triage.masked"), 2);
        assert_eq!(rec.counter_value("triage.failed"), 18);
        assert_eq!(rec.counter_value("triage.simulated"), 29);
        assert_eq!(rec.counter_value("infer.queries"), 100);
        assert_eq!(rec.counter_value("infer.cache_hits"), 90);
        assert_eq!(rec.counter_value("infer.cache_misses"), 10);
        assert_eq!(rec.counter_value("infer.tier_analytic"), 7);
        assert_eq!(rec.counter_value("infer.tier_switch_level"), 2);
        assert_eq!(rec.counter_value("infer.tier_circuit"), 1);
        assert_eq!(rec.counter_value("resil.breaker_transitions"), 1);
        assert_eq!(rec.counter_value("resil.breaker_open"), 1);
        assert_eq!(rec.counter_value("resil.degraded"), 1);
        assert_eq!(rec.counter_value("resil.demote_breaker"), 1);
        assert_eq!(rec.histogram_values("resil.error_bound"), &[0.05]);
        assert_eq!(rec.histogram_values("tran.dt"), &[1e-9]);
        assert_eq!(rec.histogram_values("tran.lte"), &[1e-5, 1e-1]);
        assert_eq!(rec.histogram_values("newton.max_dv"), &[0.5]);
        assert_eq!(rec.events().len(), sample_events().len());
    }

    #[test]
    fn jsonl_writer_emits_header_and_one_line_per_event() {
        let mut w = JsonlWriter::new(Vec::new());
        for e in sample_events() {
            dispatch(&mut w, &e);
        }
        let bytes = w.finish().unwrap();
        let text = String::from_utf8(bytes).unwrap();
        let lines: Vec<&str> = text.lines().collect();
        assert_eq!(lines[0], format!("{{\"schema\":\"{TRACE_SCHEMA}\"}}"));
        assert_eq!(lines.len(), 1 + sample_events().len());
        // Every line is a JSON object with balanced braces and the
        // advertised event tag.
        for line in &lines[1..] {
            assert!(line.starts_with("{\"event\":\""), "{line}");
            assert!(line.ends_with('}'), "{line}");
            assert_eq!(
                line.matches('{').count(),
                line.matches('}').count(),
                "{line}"
            );
        }
        assert!(text.contains("\"event\":\"newton_solve\""));
        assert!(text.contains("\"iterations\":3"));
        assert!(text.contains("\"breakpoint\":3.5e-9"));
        assert!(text.contains("\"max_dv\":0.5"));
        assert!(text.contains("\"event\":\"rescue_attempt\""));
        assert!(text.contains("\"stage\":\"dt_cut\""));
        assert!(
            text.contains("\"event\":\"rescue_outcome\"")
                && text.contains("\"attempts\":2,\"recovered\":true")
        );
        assert!(
            text.contains("\"event\":\"resilience_trip\"")
                && text.contains("\"from\":\"closed\",\"to\":\"open\"")
        );
        assert!(
            text.contains("\"event\":\"degraded\"")
                && text.contains("\"reason\":\"breaker_open\",\"error_bound\":0.05")
        );
    }

    #[test]
    fn jsonl_writer_encodes_non_finite_as_null() {
        let mut w = JsonlWriter::new(Vec::new());
        w.event(&Event::StepAccepted {
            time: f64::NAN,
            dt: f64::INFINITY,
            lte: 0.0,
        });
        let text = String::from_utf8(w.finish().unwrap()).unwrap();
        assert!(text.contains("\"time\":null,\"dt\":null,\"lte\":0.0"));
    }

    #[test]
    fn summary_renders_counters_and_histogram_stats() {
        let mut s = Summary::new();
        for e in sample_events() {
            dispatch(&mut s, &e);
        }
        assert_eq!(s.counter_value("newton.solves"), 1);
        let table = s.render();
        assert!(table.contains("newton.iterations"));
        assert!(table.contains("tran.dt"));
        assert!(table.contains("mean"));
    }

    #[test]
    fn tee_forwards_to_both_sinks() {
        let mut tee = Tee(MemoryRecorder::new(), Summary::new());
        for e in sample_events() {
            dispatch(&mut tee, &e);
        }
        assert_eq!(tee.0.counter_value("newton.iterations"), 3);
        assert_eq!(tee.1.counter_value("newton.iterations"), 3);
    }

    #[test]
    fn counter_delta_saturates() {
        let a = SolverCounters {
            iterations: 5,
            ..Default::default()
        };
        let b = SolverCounters {
            iterations: 7,
            factorizations: 2,
            ..Default::default()
        };
        let d = b.delta_since(&a);
        assert_eq!(d.iterations, 2);
        assert_eq!(d.factorizations, 2);
        assert_eq!(a.delta_since(&b).iterations, 0);
    }

    #[test]
    fn probe_none_is_disabled() {
        let mut p = Probe::none();
        assert!(!p.enabled());
        p.emit(Event::AnalysisStart { analysis: "dc" });
        p.counter("x", 1);
    }
}
